(* CI perf-regression gate: compare a fresh BENCH_estimators.json
   against the committed baseline.

     bench_gate --baseline BENCH_committed.json --current BENCH_estimators.json

   Exit 0 when no hard failure (schema mismatch, missing entry, a
   slowdown beyond the fail threshold — 3x by default, tightened per
   estimator in Bench_gate — or an allocation metric over budget);
   warnings between --warn-ratio and the fail threshold print but do
   not gate — shared-runner wall clocks are noisy.  Exit 2 on
   malformed inputs.

   --ratchet additionally adopts the current document as the new
   baseline (overwriting the --baseline file) when the run is a clean,
   meaningful improvement (see Bench_gate.should_adopt); the gate's
   exit code is unchanged by adoption. *)

module Vjson = Rgleak_valid.Vjson
module Bench_gate = Rgleak_valid.Bench_gate

let copy_file ~src ~dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let () =
  let baseline = ref "" in
  let current = ref "" in
  let warn_ratio = ref 1.5 in
  let fail_ratio = ref 3.0 in
  let ratchet = ref false in
  let overhead = ref "" in
  let args =
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed bench document");
      ("--current", Arg.Set_string current, "FILE freshly measured document");
      ( "--overhead",
        Arg.Set_string overhead,
        "FILE validate a BENCH_overhead.json (rgleak-overhead/3) instead: \
         schema, histogram fields, and the disabled-cost budget" );
      ( "--warn-ratio",
        Arg.Set_float warn_ratio,
        "R report slowdowns beyond R (default 1.5)" );
      ( "--fail-ratio",
        Arg.Set_float fail_ratio,
        "R hard-fail slowdowns beyond R (default 3.0; exact tier is \
         tightened to 2.0)" );
      ( "--ratchet",
        Arg.Set ratchet,
        " adopt current as the new baseline when meaningfully faster" );
    ]
  in
  let usage =
    "bench_gate --baseline FILE --current FILE [options]\n\
     bench_gate --overhead FILE"
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !overhead <> "" then begin
    match Bench_gate.check_overhead (Vjson.parse_file !overhead) with
    | Ok () ->
      Printf.printf "overhead gate: %s PASS\n" !overhead;
      exit 0
    | Error msg ->
      Printf.eprintf "overhead gate: FAIL: %s\n" msg;
      exit 1
    | exception (Sys_error msg | Vjson.Parse_error msg) ->
      Printf.eprintf "bench_gate: %s\n" msg;
      exit 2
  end;
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  match
    let baseline = Vjson.parse_file !baseline in
    let current = Vjson.parse_file !current in
    Bench_gate.compare ~warn_ratio:!warn_ratio ~fail_ratio:!fail_ratio
      ~baseline ~current ()
  with
  | exception (Sys_error msg | Vjson.Parse_error msg | Invalid_argument msg)
    ->
    Printf.eprintf "bench_gate: %s\n" msg;
    exit 2
  | verdict ->
    Format.printf "%a" Bench_gate.pp verdict;
    if !ratchet then
      if Bench_gate.should_adopt verdict then begin
        copy_file ~src:!current ~dst:!baseline;
        Printf.printf
          "ratchet: adopted current run as the new baseline (best ratio \
           %.2fx)\n"
          verdict.Bench_gate.best_ratio
      end
      else
        Printf.printf
          "ratchet: kept existing baseline (best ratio %.2fx; adoption \
           needs a clean >= 10%% improvement)\n"
          verdict.Bench_gate.best_ratio;
    exit (if verdict.Bench_gate.pass then 0 else 1)
