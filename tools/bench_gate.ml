(* CI perf-regression gate: compare a fresh BENCH_estimators.json
   against the committed baseline.

     bench_gate --baseline BENCH_committed.json --current BENCH_estimators.json

   Exit 0 when no hard failure (schema mismatch, missing entry, or a
   slowdown beyond --fail-ratio); warnings between --warn-ratio and
   --fail-ratio print but do not gate — shared-runner wall clocks are
   noisy.  Exit 2 on malformed inputs. *)

module Vjson = Rgleak_valid.Vjson
module Bench_gate = Rgleak_valid.Bench_gate

let () =
  let baseline = ref "" in
  let current = ref "" in
  let warn_ratio = ref 1.5 in
  let fail_ratio = ref 3.0 in
  let args =
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed bench document");
      ("--current", Arg.Set_string current, "FILE freshly measured document");
      ( "--warn-ratio",
        Arg.Set_float warn_ratio,
        "R report slowdowns beyond R (default 1.5)" );
      ( "--fail-ratio",
        Arg.Set_float fail_ratio,
        "R hard-fail slowdowns beyond R (default 3.0)" );
    ]
  in
  let usage = "bench_gate --baseline FILE --current FILE [options]" in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  match
    let baseline = Vjson.parse_file !baseline in
    let current = Vjson.parse_file !current in
    Bench_gate.compare ~warn_ratio:!warn_ratio ~fail_ratio:!fail_ratio
      ~baseline ~current ()
  with
  | exception (Sys_error msg | Vjson.Parse_error msg | Invalid_argument msg)
    ->
    Printf.eprintf "bench_gate: %s\n" msg;
    exit 2
  | verdict ->
    Format.printf "%a" Bench_gate.pp verdict;
    exit (if verdict.Bench_gate.pass then 0 else 1)
