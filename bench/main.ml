(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) plus ablations, and exposes
   Bechamel micro-benchmarks for the estimator complexity claims.

   Usage:
     bench/main.exe                   run E1..E9 and ablations
     bench/main.exe --run fig6        run a single experiment
     bench/main.exe --run timing      time the estimators at 1 and N jobs
                                      and write BENCH_estimators.json
     bench/main.exe --run overhead    assert disabled telemetry costs < 1%
                                      on the exact loop (BENCH_overhead.json)
     bench/main.exe --run microbench  run the Bechamel micro-benchmarks
     bench/main.exe --jobs 8          size the parallel domain pool
     bench/main.exe --fast            reduced replica counts  *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
module Obs = Rgleak_obs.Obs
module Vjson = Rgleak_valid.Vjson

let fast = ref false
let jobs_override = ref None
let section name = Printf.printf "\n=== %s ===\n%!" name

let param = Process_param.default_channel_length
let corr_default = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

(* A typical ASIC cell mix used for the randomly-generated-circuit
   experiments (Figs. 3, 6, 7). *)
let default_mix =
  [
    ("INV_X1", 20.0); ("INV_X2", 5.0); ("NAND2_X1", 18.0); ("NAND3_X1", 6.0);
    ("NOR2_X1", 8.0); ("AND2_X1", 8.0); ("OR2_X1", 5.0); ("XOR2_X1", 4.0);
    ("AOI21_X1", 4.0); ("OAI21_X1", 4.0); ("BUF_X1", 5.0); ("MUX2_X1", 3.0);
    ("DFF_X1", 9.0); ("DFFR_X1", 2.0);
  ]

let default_hist = lazy (Histogram.of_weights default_mix)
let chars = lazy (Characterize.default_library ())

let pct a b = 100.0 *. (a -. b) /. b

(* ------------------------------------------------------------------ *)
(* E1: cell-model accuracy (paper section 2.1.2 text)                   *)
(* ------------------------------------------------------------------ *)

let run_e1 () =
  section "E1: analytical cell model vs Monte Carlo (paper 2.1.2)";
  let chars = Lazy.force chars in
  let m_errs = ref [] and s_errs = ref [] in
  Array.iter
    (fun (ch : Characterize.cell_char) ->
      Array.iter
        (fun (sc : Characterize.state_char) ->
          m_errs :=
            Float.abs (pct sc.Characterize.mu_analytic sc.Characterize.mu_mc)
            :: !m_errs;
          s_errs :=
            Float.abs (pct sc.Characterize.sigma_analytic sc.Characterize.sigma_mc)
            :: !s_errs)
        ch.Characterize.states)
    chars;
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let mx = List.fold_left Float.max 0.0 in
  Printf.printf "cells x states characterized : %d\n"
    (List.length !m_errs);
  Printf.printf "mean leakage error  : avg %.2f%%  max %.2f%%   (paper: avg 0.44%%, max < 2%%)\n"
    (avg !m_errs) (mx !m_errs);
  Printf.printf "std  leakage error  : avg %.2f%%  max %.2f%%   (paper: avg 3.1%%,  max ~10%%)\n"
    (avg !s_errs) (mx !s_errs)

(* ------------------------------------------------------------------ *)
(* E2 / Fig. 2: leakage correlation vs length correlation               *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  section "E2 (Fig. 2): leakage correlation vs channel-length correlation";
  let chars = Lazy.force chars in
  let sc name state = chars.(Library.index_of name).Characterize.states.(state) in
  let pairs =
    [
      ("NAND2(00) vs NOR3(000)", sc "NAND2_X1" 0, sc "NOR3_X1" 0);
      ("INV(0) vs INV(0)", sc "INV_X1" 0, sc "INV_X1" 0);
      ("NAND4(0000) vs DFF(s0)", sc "NAND4_X1" 0, sc "DFF_X1" 0);
    ]
  in
  let rng = Rng.create ~seed:2025 () in
  List.iter
    (fun (label, a, b) ->
      Printf.printf "%s\n  rho_L   analytic   monte-carlo\n" label;
      Array.iter
        (fun rho ->
          let an = Pair_correlation.analytic a b ~param ~rho in
          let mc =
            Pair_correlation.monte_carlo a b ~param ~rho
              ~samples:(if !fast then 20_000 else 100_000)
              ~rng
          in
          Printf.printf "  %5.2f   %8.4f   %8.4f\n" rho an mc)
        (Vector.linspace 0.0 1.0 11);
      let curve =
        Pair_correlation.curve ~points:21
          ~f:(fun ~rho -> Pair_correlation.analytic a b ~param ~rho)
          ()
      in
      Printf.printf "  max |f - identity| = %.4f (paper: near y = x)\n"
        (Pair_correlation.max_identity_deviation curve))
    pairs

(* ------------------------------------------------------------------ *)
(* E3 / Fig. 3: signal probability sweep                                *)
(* ------------------------------------------------------------------ *)

let run_fig3 () =
  section "E3 (Fig. 3): mean leakage vs signal probability";
  let chars = Lazy.force chars in
  let mixes =
    [
      ("typical ASIC mix", Lazy.force default_hist);
      ("multiplier-like (c6288 mix)",
       Histogram.of_weights (Benchmarks.find "c6288").Benchmarks.mix);
      ("uniform over library", Histogram.uniform ());
    ]
  in
  List.iter
    (fun (label, hist) ->
      let weights = Histogram.to_array hist in
      let curve = Signal_prob.sweep ~points:21 chars ~weights in
      Printf.printf "%s (per-gate mean leakage, nA)\n  p      mean\n" label;
      Array.iter (fun (p, v) -> Printf.printf "  %4.2f   %.4f\n" p v) curve;
      let vmin = Array.fold_left (fun m (_, v) -> Float.min m v) infinity curve in
      let vmax = Array.fold_left (fun m (_, v) -> Float.max m v) 0.0 curve in
      Printf.printf
        "  spread max/min = %.3fx, argmax p = %.2f (paper: effect not pronounced)\n"
        (vmax /. vmin)
        (Signal_prob.maximizing_p chars ~weights))
    mixes

(* ------------------------------------------------------------------ *)
(* E4 / Fig. 6: convergence of random circuits to the RG estimate       *)
(* ------------------------------------------------------------------ *)

let run_fig6 () =
  section "E4 (Fig. 6): random circuits vs RG estimate, error vs circuit size";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  Printf.printf "signal probability (max-leakage setting): p = %.2f\n"
    (Estimate.signal_p ctx);
  Printf.printf
    "%7s %5s  %23s  %23s\n" "gates" "reps" "mean err min/max (%)" "std err min/max (%)";
  let rng = Rng.create ~seed:4242 () in
  Array.iter
    (fun n ->
      let reps =
        let base = Stdlib.max 4 (Stdlib.min 30 (300_000 / n)) in
        if !fast then Stdlib.max 3 (base / 4) else base
      in
      let mean_lo = ref infinity and mean_hi = ref neg_infinity in
      let std_lo = ref infinity and std_hi = ref neg_infinity in
      for _ = 1 to reps do
        (* Multinomial type sampling: each circuit is an instance of the
           specified mix, with the natural count fluctuations across
           designs; the RG prediction uses the specified histogram. *)
        let placed =
          Generator.random_placed ~sampling:`Multinomial ~histogram:hist ~n
            ~rng ()
        in
        let tr =
          Estimator_exact.estimate ~corr:corr_default
            ~rgcorr:(Estimate.correlation ctx) placed
        in
        let spec =
          {
            Estimate.histogram = hist;
            n;
            width = Layout.width placed.Placer.layout;
            height = Layout.height placed.Placer.layout;
          }
        in
        let est = Estimate.run ~method_:Estimate.Linear ctx spec in
        let me = pct tr.Estimator_exact.mean est.Estimate.mean in
        let se = pct tr.Estimator_exact.std est.Estimate.std in
        if me < !mean_lo then mean_lo := me;
        if me > !mean_hi then mean_hi := me;
        if se < !std_lo then std_lo := se;
        if se > !std_hi then std_hi := se
      done;
      Printf.printf "%7d %5d  %10.3f / %-10.3f  %10.3f / %-10.3f\n" n reps
        !mean_lo !mean_hi !std_lo !std_hi)
    Generator.fig6_sizes;
  Printf.printf
    "(paper: max difference 2.2%% at 11,236 gates, shrinking with size)\n"

(* ------------------------------------------------------------------ *)
(* E5 / Table 1: ISCAS85 late-mode estimation                           *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "E5 (Table 1): % error in full-chip std dev, ISCAS85-like circuits";
  let chars = Lazy.force chars in
  let paper =
    [ ("c499", 1.04); ("c1355", 0.41); ("c432", 1.14); ("c1908", 0.36);
      ("c880", 0.74); ("c2670", 0.52); ("c5315", 0.23); ("c7552", 0.34);
      ("c6288", 1.38) ]
  in
  Printf.printf "%-7s %6s  %10s %10s  %9s %9s\n" "circuit" "gates"
    "true std" "RG std" "err(std)" "paper";
  List.iter
    (fun name ->
      let spec = Benchmarks.find name in
      let placed = Benchmarks.placed spec in
      let tr = Estimate.true_leakage ~chars ~corr:corr_default placed in
      let est =
        Estimate.late ~chars ~corr:corr_default ~method_:Estimate.Linear placed
      in
      Printf.printf "%-7s %6d  %10.2f %10.2f  %8.2f%% %8.2f%%\n" name
        spec.Benchmarks.gates tr.Estimate.std est.Estimate.std
        (Float.abs (pct est.Estimate.std tr.Estimate.std))
        (List.assoc name paper))
    Benchmarks.table1_names;
  Printf.printf "(mean errors are negligible, as in the paper: ";
  let placed = Benchmarks.placed (Benchmarks.find "c880") in
  let tr = Estimate.true_leakage ~chars ~corr:corr_default placed in
  let est = Estimate.late ~chars ~corr:corr_default ~method_:Estimate.Linear placed in
  Printf.printf "c880 mean err = %.4f%%)\n"
    (Float.abs (pct est.Estimate.mean tr.Estimate.mean))

(* ------------------------------------------------------------------ *)
(* E6: simplified correlation assumption (section 3.1.2)                *)
(* ------------------------------------------------------------------ *)

let run_e6 () =
  section "E6 (3.1.2): simplified rho_mn = rho_L assumption";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let layout = Layout.square ~n:3600 () in
  let check label corr =
    let std_of mapping =
      let ctx = Estimate.context ~mapping ~chars ~corr ~histogram:hist () in
      (Estimator_linear.estimate ~corr ~rgcorr:(Estimate.correlation ctx)
         ~layout ())
        .Estimator_linear.std
    in
    let exact = std_of Rg_correlation.Exact in
    let simpl = std_of Rg_correlation.Simplified in
    Printf.printf "%-28s std exact=%.2f simplified=%.2f  err=%.2f%%\n" label
      exact simpl
      (Float.abs (pct simpl exact))
  in
  check "WID + D2D" corr_default;
  let wid_only_param =
    Process_param.make ~name:"L-wid-only" ~nominal:90.0 ~sigma_d2d:0.0
      ~sigma_wid:(Process_param.sigma_total param)
  in
  check "WID only"
    (Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) wid_only_param);
  Printf.printf "(paper: error below 2.8%% in both cases)\n"

(* ------------------------------------------------------------------ *)
(* E7 / Fig. 7: integral vs linear-time agreement                       *)
(* ------------------------------------------------------------------ *)

let run_fig7 () =
  section "E7 (Fig. 7): % error, O(1) numerical integration vs O(n) sum";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rgcorr = Estimate.correlation ctx in
  Printf.printf "%9s  %12s  %12s  %10s\n" "gates" "linear std" "integral std"
    "err (%)";
  List.iter
    (fun n ->
      let layout = Layout.square ~n () in
      let w = Layout.width layout and h = Layout.height layout in
      let lin = Estimator_linear.estimate ~corr:corr_default ~rgcorr ~layout () in
      let integ =
        if Estimator_integral.polar_applicable ~corr:corr_default ~width:w ~height:h
        then Estimator_integral.polar ~corr:corr_default ~rgcorr ~n ~width:w ~height:h ()
        else Estimator_integral.rect_2d ~corr:corr_default ~rgcorr ~n ~width:w ~height:h ()
      in
      Printf.printf "%9d  %12.4g  %12.4g  %10.4f\n" n lin.Estimator_linear.std
        integ.Estimator_integral.std
        (Float.abs (pct integ.Estimator_integral.std lin.Estimator_linear.std)))
    [ 25; 100; 400; 1600; 6400; 10_000; 40_000; 102_400; 1_000_000 ];
  Printf.printf
    "(paper: > 1%% below 100 gates, < 0.1%% for large, < 0.01%% above 10k)\n"

(* ------------------------------------------------------------------ *)
(* E8: estimator runtime scaling + Bechamel micro-benchmarks            *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_scaling () =
  section "E8a: wall-clock scaling of the three estimators";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rgcorr = Estimate.correlation ctx in
  let rng = Rng.create ~seed:9001 () in
  Printf.printf "%9s  %12s  %12s  %12s\n" "gates" "exact (s)" "linear (s)"
    "integral (s)";
  List.iter
    (fun n ->
      let exact_time =
        if n <= 20_000 then begin
          let placed = Generator.random_placed ~histogram:hist ~n ~rng () in
          let _, t =
            time_it (fun () ->
                Estimator_exact.estimate ~corr:corr_default ~rgcorr placed)
          in
          Printf.sprintf "%12.4f" t
        end
        else Printf.sprintf "%12s" "-"
      in
      let layout = Layout.square ~n () in
      let _, t_lin =
        time_it (fun () ->
            Estimator_linear.estimate ~corr:corr_default ~rgcorr ~layout ())
      in
      let w = Layout.width layout and h = Layout.height layout in
      let _, t_int =
        time_it (fun () ->
            if Estimator_integral.polar_applicable ~corr:corr_default ~width:w ~height:h
            then
              ignore
                (Estimator_integral.polar ~corr:corr_default ~rgcorr ~n ~width:w
                   ~height:h ())
            else
              ignore
                (Estimator_integral.rect_2d ~corr:corr_default ~rgcorr ~n
                   ~width:w ~height:h ()))
      in
      Printf.printf "%9d  %s  %12.4f  %12.4f\n" n exact_time t_lin t_int)
    [ 1000; 10_000; 100_489; 1_000_000 ];
  Printf.printf "(O(n^2) vs O(n) vs O(1): the integral column is flat)\n"

let run_bechamel () =
  section "E8b: Bechamel micro-benchmarks";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rgcorr = Estimate.correlation ctx in
  let rng = Rng.create ~seed:31337 () in
  let placed_400 = Generator.random_placed ~histogram:hist ~n:400 ~rng () in
  let layout_10k = Layout.square ~n:10_000 () in
  let w = Layout.width layout_10k and h = Layout.height layout_10k in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"table1-exact-pairwise-n400"
        (Staged.stage (fun () ->
             ignore
               (Estimator_exact.estimate ~corr:corr_default ~rgcorr placed_400)));
      Test.make ~name:"fig7-linear-Eq17-n10000"
        (Staged.stage (fun () ->
             ignore
               (Estimator_linear.estimate ~corr:corr_default ~rgcorr
                  ~layout:layout_10k ())));
      Test.make ~name:"fig7-integral-2d-Eq20"
        (Staged.stage (fun () ->
             ignore
               (Estimator_integral.rect_2d ~corr:corr_default ~rgcorr ~n:10_000
                  ~width:w ~height:h ())));
      Test.make ~name:"fig7-integral-polar-Eq25"
        (Staged.stage (fun () ->
             ignore
               (Estimator_integral.polar ~corr:corr_default ~rgcorr ~n:10_000
                  ~width:w ~height:h ())));
      Test.make ~name:"fig2-rg-covariance-lookup"
        (Staged.stage (fun () -> ignore (Rg_correlation.f rgcorr ~rho_l:0.5)));
      Test.make ~name:"fig6-rg-model-build"
        (Staged.stage (fun () ->
             ignore (Random_gate.create ~chars ~histogram:hist ~p:0.5 ())));
      Test.make ~name:"fig3-signal-prob-sweep"
        (Staged.stage (fun () ->
             ignore
               (Signal_prob.sweep ~points:21 chars
                  ~weights:(Histogram.to_array hist))));
    ]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ())
          [ Toolkit.Instance.monotonic_clock ]
          test
      in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-34s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* E8c: parallel-runtime timing, tracked as BENCH_estimators.json       *)
(* ------------------------------------------------------------------ *)

type timing_entry = {
  estimator : string;
  n : int;
  jobs_used : int;
  cpus : int;  (** CPUs available when this entry was measured *)
  seconds : float;
  seconds_1job : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  alloc : (string * float) list;
      (** normalized minor-heap allocation (words per unit of work),
          measured on a dedicated single-domain pass *)
}

let speedup e = if e.seconds > 0.0 then e.seconds_1job /. e.seconds else 1.0

(* A 1-vs-N-job wall-clock ratio only measures parallel speedup when
   the host can actually run domains side by side; on a single CPU it
   measures scheduling overhead, and publishing it as "speedup" misled
   every consumer of the v2 schema.  v3 records the availability and
   withholds the ratio when it is meaningless. *)
let speedup_meaningful e = e.cpus > 1 && e.jobs_used > 1

let nproc () = Domain.recommended_domain_count ()

let write_bench_json ~path ~jobs entries =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"rgleak-bench-estimators/4\",\n";
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"nproc\": %d,\n" (nproc ());
  Printf.fprintf oc "  \"kernel_isa\": %S,\n" (Pair_kernel.selected_isa ());
  Printf.fprintf oc "  \"fast\": %b,\n" !fast;
  Printf.fprintf oc "  \"entries\": [\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    { \"estimator\": %S, \"n\": %d, \"jobs\": %d, \"cpus\": %d, \
         \"seconds\": %.6f, \"seconds_1job\": %.6f,%s\n"
        e.estimator e.n e.jobs_used e.cpus e.seconds e.seconds_1job
        (if speedup_meaningful e then
           Printf.sprintf " \"speedup\": %.3f," (speedup e)
         else "");
      Printf.fprintf oc "      \"counters\": {%s},\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) e.counters));
      Printf.fprintf oc "      \"gauges\": {%s},\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%S: %.6g" k v) e.gauges));
      Printf.fprintf oc "      \"alloc\": {%s} }%s\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%S: %.6g" k v) e.alloc))
        (if i = last then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_timing () =
  let jobs =
    match !jobs_override with Some j -> j | None -> Parallel.default_jobs ()
  in
  section
    (Printf.sprintf
       "E8c: estimator wall-clock at 1 vs %d jobs (writes BENCH_estimators.json)"
       jobs);
  if nproc () <= 1 then
    Printf.printf
      "warning: single-CPU host (nproc = 1): the 1-vs-%d-job comparison \
       measures scheduling overhead, not parallel speedup; speedup ratios \
       are omitted from the report\n%!"
      jobs;
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rgcorr = Estimate.correlation ctx in
  let rng = Rng.create ~seed:2718 () in
  let entries = ref [] in
  (* One timed measurement on the shared pool at [j] domains: sizing the
     shared pool and running a warm-up pass first keeps domain spawning,
     cold caches and lazy tables out of the timed window (the v1 schema
     timed transient pools, charging Domain.spawn to the parallel run). *)
  let timed_at ~j run =
    Parallel.set_default_jobs j;
    ignore (run ());
    time_it run
  in
  (* Work counters and pool gauges from one instrumented pass at [jobs]
     domains, captured outside the timed windows so tracing cannot
     perturb the measurement. *)
  let observe run =
    Obs.reset ();
    Obs.set_enabled true;
    ignore (run ());
    Obs.set_enabled false;
    let snap = Obs.snapshot () in
    (snap.Obs.counters, snap.Obs.gauges)
  in
  (* Normalized minor-heap allocation from a dedicated warm pass at one
     domain with telemetry off: at jobs = 1 every word lands on the
     submitting domain's minor counter, so unlike the multi-domain
     *.minor_words gauges the delta is exact, and dividing by the work
     units (pairs, samples) makes it host-independent. *)
  let alloc_of ~units ~metric run =
    Parallel.set_default_jobs 1;
    ignore (run ());
    let w0 = Gc.minor_words () in
    ignore (run ());
    let dw = Gc.minor_words () -. w0 in
    Parallel.set_default_jobs jobs;
    [ (metric, dw /. units) ]
  in
  let bench ~estimator ~n ?alloc ~equal run =
    let r1, t1 = timed_at ~j:1 run in
    let rj, tj = timed_at ~j:jobs run in
    if not (equal r1 rj) then
      failwith (estimator ^ ": jobs=1 and parallel results differ");
    let alloc =
      match alloc with
      | None -> []
      | Some (metric, units) -> alloc_of ~units ~metric run
    in
    let counters, gauges = observe run in
    let e =
      { estimator; n; jobs_used = jobs; cpus = nproc (); seconds = tj;
        seconds_1job = t1; counters; gauges; alloc }
    in
    entries := e :: !entries;
    Printf.printf "%-12s n=%8d   1 job %8.3f s   %2d jobs %8.3f s   %s\n%!"
      estimator n t1 jobs tj
      (if speedup_meaningful e then Printf.sprintf "speedup %.2fx" (speedup e)
       else "(single CPU: no speedup)")
  in
  let bits = Int64.bits_of_float in
  (* The O(n²) exact pair loop — the headline parallel path. *)
  let n_exact = if !fast then 5_000 else 20_000 in
  let placed = Generator.random_placed ~histogram:hist ~n:n_exact ~rng () in
  bench ~estimator:"exact" ~n:n_exact
    ~alloc:
      ( "minor_words_per_pair",
        float_of_int n_exact *. float_of_int (n_exact - 1) /. 2.0 )
    ~equal:(fun a b ->
      bits a.Estimator_exact.std = bits b.Estimator_exact.std)
    (fun () -> Estimator_exact.estimate ~corr:corr_default ~rgcorr placed);
  (* The Monte Carlo reference, replica-parallel. *)
  let n_mc = if !fast then 600 else 1_200 in
  let count = if !fast then 400 else 1_500 in
  let placed_mc = Generator.random_placed ~histogram:hist ~n:n_mc ~rng () in
  let mc =
    Mc_reference.prepare ~chars ~corr:corr_default ~p:(Estimate.signal_p ctx)
      placed_mc
  in
  bench ~estimator:"mc" ~n:n_mc
    ~alloc:("minor_words_per_sample", float_of_int count)
    ~equal:( = )
    (fun () -> Mc_reference.moments_stream mc ~seed:910 ~count);
  (* Library characterization across the pool. *)
  let l_points = 33 and mc_samples = if !fast then 1_000 else 5_000 in
  bench ~estimator:"characterize" ~n:Library.size
    ~equal:(fun a b ->
      bits a.(0).Characterize.states.(0).Characterize.mu_analytic
      = bits b.(0).Characterize.states.(0).Characterize.mu_analytic)
    (fun () ->
      Characterize.characterize_library ~l_points ~mc_samples ~param
        ~seed:1729 ());
  (* The O(n) and O(1) estimators for scale context (single-domain). *)
  let n_lin = if !fast then 40_000 else 1_000_000 in
  let layout = Layout.square ~n:n_lin () in
  bench ~estimator:"linear" ~n:n_lin ~equal:(fun _ _ -> true) (fun () ->
      Estimator_linear.estimate ~corr:corr_default ~rgcorr ~layout ());
  let w = Layout.width layout and h = Layout.height layout in
  bench ~estimator:"integral" ~n:n_lin ~equal:(fun _ _ -> true) (fun () ->
      if
        Estimator_integral.polar_applicable ~corr:corr_default ~width:w
          ~height:h
      then
        Estimator_integral.polar ~corr:corr_default ~rgcorr ~n:n_lin ~width:w
          ~height:h ()
      else
        Estimator_integral.rect_2d ~corr:corr_default ~rgcorr ~n:n_lin ~width:w
          ~height:h ());
  Parallel.set_default_jobs jobs;
  let path = "BENCH_estimators.json" in
  write_bench_json ~path ~jobs (List.rev !entries);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E8d: disabled-telemetry overhead budget                              *)
(* ------------------------------------------------------------------ *)

(* Asserts that the instrumentation compiled into the exact hot loop
   costs under 1% of its runtime while telemetry is disabled.  The
   per-site cost of a disabled probe (one atomic load and a branch) is
   measured with a microloop; the number of sites one estimate executes
   is read off an instrumented pass (row counts plus band spans); the
   product is compared against the measured uninstrumented runtime. *)
let run_overhead () =
  section "E8d: disabled-telemetry and disarmed-fault overhead on the exact hot loop";
  Obs.set_enabled false;
  Guard.Fault.clear ();
  let probes = 20_000_000 in
  let t0 = Obs.now_ns () in
  for _ = 1 to probes do
    Obs.count "overhead.probe" 1
  done;
  let site_ns =
    Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. float_of_int probes
  in
  (* Disabled histogram-record probe: like every other primitive it
     must reduce to one atomic load and a branch. *)
  let t0 = Obs.now_ns () in
  for _ = 1 to probes do
    Obs.hist_record "overhead.hist" 1.0
  done;
  let hist_site_ns =
    Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. float_of_int probes
  in
  (* Same discipline for a disarmed fault probe: one atomic load and a
     branch.  Accumulate the results so the loop cannot be dropped. *)
  let fired = ref 0 in
  let t0 = Obs.now_ns () in
  for _ = 1 to probes do
    if Guard.Fault.fire "parallel" then incr fired
  done;
  let fault_ns =
    Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. float_of_int probes
  in
  if !fired > 0 then failwith "disarmed fault probe fired";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rgcorr = Estimate.correlation ctx in
  let rng = Rng.create ~seed:2718 () in
  let n = if !fast then 5_000 else 10_000 in
  let placed = Generator.random_placed ~histogram:hist ~n ~rng () in
  let run () = Estimator_exact.estimate ~corr:corr_default ~rgcorr placed in
  ignore (run ());
  let _, seconds = time_it run in
  Obs.reset ();
  Obs.set_enabled true;
  ignore (run ());
  Obs.set_enabled false;
  let snap = Obs.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Obs.counters with Some v -> v | None -> 0
  in
  (* Sites per run: one counter bump per 256-row kernel tile (the old
     per-row bump went away with the flat kernel — pair counting is now
     a single bulk count), ~4 probes per pool band (task count, busy
     gauge, span open/close) and a handful of top-level spans and
     counters. *)
  let sites =
    float_of_int (counter "exact.tiles")
    +. (4.0 *. float_of_int (counter "pool.bands"))
    +. 16.0
  in
  (* Histogram-record sites per exact run: the per-band kernel timer
     adds two enabled-checks (clock gate + record gate) per band;
     price both at the measured hist-probe cost. *)
  let hist_sites = 2.0 *. float_of_int (counter "pool.bands") in
  (* Fault probes per exact run: one "parallel" probe at every pool-band
     task entry. *)
  let fault_sites = float_of_int (counter "pool.bands") in
  let telemetry_overhead = sites *. site_ns /. 1e9 /. seconds in
  let hist_overhead = hist_sites *. hist_site_ns /. 1e9 /. seconds in
  let fault_overhead = fault_sites *. fault_ns /. 1e9 /. seconds in
  let overhead = telemetry_overhead +. hist_overhead +. fault_overhead in
  let budget = 0.01 in
  Printf.printf "disabled obs probe    : %.2f ns/site\n" site_ns;
  Printf.printf "disabled hist probe   : %.2f ns/site\n" hist_site_ns;
  Printf.printf "disarmed fault probe  : %.2f ns/site\n" fault_ns;
  Printf.printf "sites per exact run   : %.0f obs + %.0f hist + %.0f fault (n=%d)\n"
    sites hist_sites fault_sites n;
  Printf.printf "exact runtime         : %.4f s\n" seconds;
  Printf.printf "overhead              : %.5f%% of runtime (budget %.1f%%)\n"
    (100.0 *. overhead) (100.0 *. budget);
  let path = "BENCH_overhead.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"rgleak-overhead/3\",\n\
    \  \"site_ns\": %.4f,\n\
    \  \"hist_site_ns\": %.4f,\n\
    \  \"fault_probe_ns\": %.4f,\n\
    \  \"sites_per_run\": %.0f,\n\
    \  \"hist_sites_per_run\": %.0f,\n\
    \  \"fault_sites_per_run\": %.0f,\n\
    \  \"exact_n\": %d,\n\
    \  \"exact_seconds\": %.6f,\n\
    \  \"telemetry_overhead_fraction\": %.8f,\n\
    \  \"hist_overhead_fraction\": %.8f,\n\
    \  \"fault_overhead_fraction\": %.8f,\n\
    \  \"overhead_fraction\": %.8f,\n\
    \  \"budget_fraction\": %.3f,\n\
    \  \"pass\": %b\n\
     }\n"
    site_ns hist_site_ns fault_ns sites hist_sites fault_sites n seconds
    telemetry_overhead hist_overhead fault_overhead overhead budget
    (overhead < budget);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if overhead >= budget then
    failwith
      "instrumentation overhead budget exceeded: disabled probes cost >= 1%"

(* ------------------------------------------------------------------ *)
(* E9: Vt variance negligibility                                        *)
(* ------------------------------------------------------------------ *)

let run_e9 () =
  section "E9: independent-Vt variance share vs correlated-L variance";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rg = Estimate.random_gate ctx in
  let rgcorr = Estimate.correlation ctx in
  Printf.printf "Vt mean multiplier (25 mV RDF): %.4f\n"
    (Vt_correction.mean_factor ());
  Printf.printf "%9s  %14s\n" "gates" "var(Vt)/var(L)";
  List.iter
    (fun n ->
      let ratio =
        Vt_correction.variance_ratio ~rg ~rgcorr ~corr:corr_default
          ~layout:(Layout.square ~n ()) ()
      in
      Printf.printf "%9d  %14.6f\n" n ratio)
    [ 100; 900; 10_000; 102_400; 1_000_000 ];
  Printf.printf
    "(paper 2.1: n sigma^2 vs n^2 sigma^2 -- Vt is negligible for large n)\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablations () =
  section "A1: spatial-correlation family ablation (same design, n = 10000)";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let n = 10_000 in
  let layout = Layout.square ~n () in
  List.iter
    (fun (label, fam) ->
      let corr = Corr_model.create fam param in
      let ctx = Estimate.context ~chars ~corr ~histogram:hist () in
      let r =
        Estimator_linear.estimate ~corr ~rgcorr:(Estimate.correlation ctx)
          ~layout ()
      in
      Printf.printf "%-28s std = %10.4g (%.2f%% of mean)\n" label
        r.Estimator_linear.std
        (100.0 *. r.Estimator_linear.std /. r.Estimator_linear.mean))
    [
      ("linear dmax=120um", Corr_model.Spherical { dmax = 120.0 });
      ("spherical dmax=120um", Corr_model.Spherical { dmax = 120.0 });
      ("exponential range=60um", Corr_model.Exponential { range = 60.0 });
      ("gaussian range=80um", Corr_model.Gaussian { range = 80.0 });
      ( "trunc-exp range=60,dmax=120",
        Corr_model.Truncated_exponential { range = 60.0; dmax = 120.0 } );
    ];

  section "A2: characterization resolution ablation (NAND2 state 00)";
  let fine = chars.(Library.index_of "NAND2_X1") in
  let ref_sc = fine.Characterize.states.(0) in
  List.iter
    (fun l_points ->
      let rng = Rng.create ~seed:808 () in
      let ch =
        Characterize.characterize ~l_points ~mc_samples:2000 ~param ~rng
          (Library.find "NAND2_X1")
      in
      let sc = ch.Characterize.states.(0) in
      Printf.printf
        "l_points=%3d  mu=%.5f (drift %+.3f%%)  sigma=%.5f (drift %+.3f%%)\n"
        l_points sc.Characterize.mu_analytic
        (pct sc.Characterize.mu_analytic ref_sc.Characterize.mu_analytic)
        sc.Characterize.sigma_analytic
        (pct sc.Characterize.sigma_analytic ref_sc.Characterize.sigma_analytic))
    [ 17; 33; 65; 97 ];

  section "A3: placement-strategy ablation (same netlist, n = 2500)";
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rng = Rng.create ~seed:606 () in
  let netlist = Generator.random_netlist ~histogram:hist ~n:2500 ~rng () in
  let layout = Layout.square ~n:2500 () in
  List.iter
    (fun (label, strategy) ->
      let placed = Placer.place ~strategy ~rng netlist layout in
      let tr =
        Estimator_exact.estimate ~corr:corr_default
          ~rgcorr:(Estimate.correlation ctx) placed
      in
      Printf.printf "%-12s true std = %.4g\n" label tr.Estimator_exact.std)
    [ ("sequential", Placer.Sequential); ("random", Placer.Random);
      ("clustered", Placer.Clustered) ]

(* ------------------------------------------------------------------ *)
(* Extension experiments                                               *)
(* ------------------------------------------------------------------ *)

let run_ext_temperature () =
  section "X1: leakage vs junction temperature (device-model extension)";
  let hist = Lazy.force default_hist in
  Printf.printf "%8s  %14s  %14s\n" "T (C)" "mean (uA)" "sigma (uA)";
  List.iter
    (fun temp_c ->
      let env = Rgleak_device.Mosfet.env_at ~temp_k:(273.15 +. temp_c) () in
      let chars_t =
        Characterize.characterize_library ~l_points:49 ~mc_samples:500 ~env
          ~param ~seed:1729 ()
      in
      let r =
        Estimate.early ~chars:chars_t ~corr:corr_default
          {
            Estimate.histogram = hist;
            n = 100_489;
            width = 1268.0;
            height = 1268.0;
          }
      in
      Printf.printf "%8.0f  %14.2f  %14.2f\n" temp_c
        (r.Estimate.mean /. 1000.0)
        (r.Estimate.std /. 1000.0))
    [ 25.0; 50.0; 75.0; 100.0; 125.0 ];
  Printf.printf "(subthreshold leakage grows steeply with T: V_th drop + kT/q)\n"

let run_ext_distribution () =
  section "X2: full leakage distribution vs brute-force Monte Carlo";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let rng = Rng.create ~seed:515 () in
  let placed = Generator.random_placed ~histogram:hist ~n:900 ~rng () in
  let ctx =
    Estimate.context ~p:0.5 ~chars ~corr:corr_default
      ~histogram:(Histogram.of_netlist placed.Placer.netlist) ()
  in
  let tr =
    Estimator_exact.estimate ~corr:corr_default
      ~rgcorr:(Estimate.correlation ctx) placed
  in
  let d =
    Distribution.of_moments ~mean:tr.Estimator_exact.mean
      ~std:tr.Estimator_exact.std ()
  in
  let dn =
    Distribution.of_moments ~shape:Distribution.Normal
      ~mean:tr.Estimator_exact.mean ~std:tr.Estimator_exact.std ()
  in
  let mc = Mc_reference.prepare ~chars ~corr:corr_default ~p:0.5 placed in
  let count = if !fast then 2000 else 8000 in
  let samples = Mc_reference.sample_many mc (Rng.create ~seed:516 ()) ~count in
  Printf.printf "n=900 random circuit, %d MC dies\n" count;
  Printf.printf "%8s  %12s  %12s  %12s\n" "quantile" "MC" "lognormal" "normal";
  List.iter
    (fun q ->
      Printf.printf "%8.3f  %12.1f  %12.1f  %12.1f\n" q
        (Stats.percentile samples (100.0 *. q))
        (Distribution.quantile d q)
        (Distribution.quantile dn q))
    [ 0.05; 0.25; 0.5; 0.75; 0.95; 0.99 ];
  Printf.printf
    "(the lognormal tracks the skewed MC tails; the normal undershoots)\n"

let run_ext_extraction () =
  section "X3: spatial-correlation extraction roundtrip (Xiong-style)";
  let truth = Corr_model.create (Corr_model.Spherical { dmax = 100.0 }) param in
  let rng = Rng.create ~seed:717 () in
  let locations =
    Array.init 81 (fun i ->
        {
          Variation.x = float_of_int (i mod 9) *. 22.0;
          y = float_of_int (i / 9) *. 22.0;
        })
  in
  let sampler = Variation.prepare truth locations in
  let dies = if !fast then 150 else 500 in
  let values = Array.init dies (fun _ -> Variation.sample sampler rng) in
  let samples = Corr_fit.empirical ~values ~locations ~bins:16 () in
  Printf.printf "truth: spherical dmax=100um, floor=0.50; %d dies measured\n" dies;
  Printf.printf "%-14s %10s %8s %12s\n" "family" "scale" "floor" "rss";
  List.iter
    (fun (r : Corr_fit.result) ->
      Printf.printf "%-14s %10.1f %8.3f %12.5f\n"
        (Corr_fit.family_name r.Corr_fit.family)
        r.Corr_fit.scale r.Corr_fit.floor r.Corr_fit.rss)
    (Corr_fit.fit ~sigma_total:(Process_param.sigma_total param) samples);
  let best = Corr_fit.best ~sigma_total:(Process_param.sigma_total param) samples in
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let layout = Layout.square ~n:2500 () in
  let std_of corr =
    let ctx = Estimate.context ~p:0.5 ~chars ~corr ~histogram:hist () in
    (Estimator_linear.estimate ~corr ~rgcorr:(Estimate.correlation ctx) ~layout ())
      .Estimator_linear.std
  in
  Printf.printf "chip sigma with truth: %.1f, with extracted model: %.1f (%.2f%%)\n"
    (std_of truth)
    (std_of best.Corr_fit.model)
    (Float.abs (pct (std_of best.Corr_fit.model) (std_of truth)))

let run_ext_regions () =
  section "X4: hierarchical multi-region estimation";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  (* consistency: a partition must reproduce the whole *)
  let single =
    Estimate.early ~p:0.5 ~method_:Estimate.Integral_2d ~chars
      ~corr:corr_default
      { Estimate.histogram = hist; n = 10_000; width = 400.0; height = 400.0 }
  in
  let quarter ~label ~x ~y =
    Multi_region.region ~label ~histogram:hist ~n:2500 ~x ~y ~width:200.0
      ~height:200.0 ()
  in
  let multi =
    Multi_region.estimate ~p:0.5 ~chars ~corr:corr_default
      [
        quarter ~label:"q00" ~x:0.0 ~y:0.0;
        quarter ~label:"q10" ~x:200.0 ~y:0.0;
        quarter ~label:"q01" ~x:0.0 ~y:200.0;
        quarter ~label:"q11" ~x:200.0 ~y:200.0;
      ]
  in
  Printf.printf
    "partition check: whole-die sigma %.2f vs 4-quadrant sigma %.2f (%.3f%%)\n"
    single.Estimate.std multi.Multi_region.std
    (Float.abs (pct multi.Multi_region.std single.Estimate.std));
  (* heterogeneous floorplan *)
  let sram = Histogram.of_weights [ ("SRAM6T", 1.0) ] in
  let het =
    Multi_region.estimate ~chars ~corr:corr_default
      [
        Multi_region.region ~label:"logic" ~histogram:hist ~n:8000 ~x:0.0
          ~y:0.0 ~width:300.0 ~height:300.0 ();
        Multi_region.region ~label:"sram" ~histogram:sram ~n:65_536 ~x:300.0
          ~y:0.0 ~width:300.0 ~height:300.0 ();
      ]
  in
  Printf.printf
    "heterogeneous die: mean %.4g, sigma %.4g, cross-region share %.0f%%\n"
    het.Multi_region.mean het.Multi_region.std
    (100.0 *. het.Multi_region.cross_share)

let run_ext_corners () =
  section "X5: process/temperature corner table";
  let hist = Lazy.force default_hist in
  let layout = Layout.square ~n:50_000 () in
  let spec =
    {
      Estimate.histogram = hist;
      n = 50_000;
      width = Layout.width layout;
      height = Layout.height layout;
    }
  in
  let results = Corners.analyze ~param ~corr:corr_default ~spec () in
  Format.printf "%a" Corners.pp results;
  let w = Corners.worst results in
  Printf.printf "worst corner: %s (%.1fx the typical mean)\n"
    w.Corners.corner.Corners.name
    (w.Corners.mean
    /. (List.find
          (fun r -> r.Corners.corner.Corners.name = "TT/25C")
          results)
         .Corners.mean)

let run_ext_profile () =
  section "X6: variance decomposition by pair separation";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let n = 10_000 in
  let layout = Layout.square ~n () in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let prof =
    Variance_profile.compute ~corr:corr_default
      ~rgcorr:(Estimate.correlation ctx) ~n ~width:(Layout.width layout)
      ~height:(Layout.height layout) ()
  in
  Format.printf "%a" Variance_profile.pp prof;
  Printf.printf "half-variance radius: %.1f um (die %.0f x %.0f, dmax 120)\n"
    (Variance_profile.radius_for_share prof ~share:0.5)
    (Layout.width layout) (Layout.height layout)

let run_ext_map () =
  section "X7: spatial leakage map and hotspot ratio";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let rg = Random_gate.create ~chars ~histogram:hist ~p:0.5 () in
  let n = 100_000 in
  let layout = Layout.square ~n () in
  let map =
    Leakage_map.compute ~tiles:12
      ~samples:(if !fast then 150 else 500)
      ~rg ~corr:corr_default ~n ~width:(Layout.width layout)
      ~height:(Layout.height layout) ()
  in
  print_string (Leakage_map.render map);
  Printf.printf
    "hotspot ratio %.3f; total of tile means %.4g vs chip mean %.4g (%.2f%%)\n"
    map.Leakage_map.hotspot_ratio (Leakage_map.total_mean map)
    (float_of_int n *. rg.Random_gate.mu)
    (Float.abs
       (pct (Leakage_map.total_mean map) (float_of_int n *. rg.Random_gate.mu)))

let run_baseline () =
  section "B1: cited baselines ([3] grid/PCA, [4] quadtree) vs RG vs exact";
  let chars = Lazy.force chars in
  Printf.printf "%-7s %9s | %9s %7s | %9s %7s | %9s %7s\n" "circuit"
    "true std" "CS std" "err" "AR std" "err" "RG std" "err";
  List.iter
    (fun name ->
      let placed = Benchmarks.placed (Benchmarks.find name) in
      let tr = Estimate.true_leakage ~chars ~corr:corr_default placed in
      let cs =
        Rgleak_baseline.Chang_sapatnekar.analyze ~chars ~corr:corr_default placed
      in
      let ar = Rgleak_baseline.Agarwal_roy.analyze ~chars ~corr:corr_default placed in
      let rg = Estimate.late ~chars ~corr:corr_default ~method_:Estimate.Linear placed in
      Printf.printf
        "%-7s %9.1f | %9.1f %+6.1f%% | %9.1f %+6.1f%% | %9.1f %+6.1f%%\n" name
        tr.Estimate.std cs.Rgleak_baseline.Chang_sapatnekar.std
        (pct cs.Rgleak_baseline.Chang_sapatnekar.std tr.Estimate.std)
        ar.Rgleak_baseline.Agarwal_roy.std
        (pct ar.Rgleak_baseline.Agarwal_roy.std tr.Estimate.std)
        rg.Estimate.std
        (pct rg.Estimate.std tr.Estimate.std))
    [ "c432"; "c880"; "c1908"; "c2670"; "c5315"; "c7552"; "c6288" ];
  Printf.printf
    "(both baselines use the first-order lognormal gate model, dropping the\n\
    \ log-quadratic curvature: ~-3%% mean, -7..-11%% sigma on this library;\n\
    \ the RG model keeps the exact cell law and stays within ~1%%)\n"

let run_ext_sleep () =
  section "X8: sleep-vector search (standby-leakage application)";
  let chars = Lazy.force chars in
  Printf.printf "%-8s %9s %12s %12s %10s\n" "circuit" "controls" "random nA"
    "best nA" "reduction";
  List.iter
    (fun name ->
      let nl = Benchmarks.netlist (Benchmarks.find name) in
      let sim = Sleep_vector.compile ~chars nl in
      let rng = Rng.create ~seed:11 () in
      let r =
        Sleep_vector.search ~restarts:(if !fast then 3 else 8) ~rng sim
      in
      Printf.printf "%-8s %9d %12.1f %12.1f %9.1f%%\n" name
        (Sleep_vector.num_controls sim)
        r.Sleep_vector.random_mean r.Sleep_vector.cost
        (100.0 *. r.Sleep_vector.improvement))
    [ "c432"; "c880"; "c1908"; "c2670" ];
  Printf.printf
    "(the paper's per-gate state spread, harvested: parking gates in\n\
    \ stacked-off states cuts standby leakage)\n"

let run_ext_within_cell () =
  section "X9: within-cell correlation assumption (paper 2.1.1) ablation";
  let env = Rgleak_device.Mosfet.default_env in
  let mu = param.Process_param.nominal in
  let sigma = Process_param.sigma_total param in
  let samples = if !fast then 3_000 else 10_000 in
  Printf.printf
    "MC cell moments when within-cell device lengths are only partially\n\
     correlated (rho_w = 1 is the paper's assumption):\n";
  Printf.printf "%-22s %6s | %10s %10s | %9s %9s\n" "cell/state" "rho_w" "mu"
    "sigma" "d mu" "d sigma";
  List.iter
    (fun (name, state_idx) ->
      let cell = Library.find name in
      let state = Cell.state_of_index cell state_idx in
      let ndev = Cell.device_count cell in
      let moments rho_w seed =
        let rng = Rng.create ~seed () in
        let acc = Stats.Acc.create () in
        let sr = sqrt rho_w and si = sqrt (1.0 -. rho_w) in
        for _ = 1 to samples do
          let shared = Rng.gaussian rng in
          let deltas =
            Array.init ndev (fun _ ->
                mu +. (sigma *. ((sr *. shared) +. (si *. Rng.gaussian rng))))
          in
          Stats.Acc.add acc
            (Cell.leakage ~l_of_device:(fun i -> deltas.(i)) ~env cell state)
        done;
        (Stats.Acc.mean acc, Stats.Acc.std acc)
      in
      let mu1, s1 = moments 1.0 1001 in
      List.iter
        (fun rho_w ->
          let m, s = moments rho_w 1001 in
          Printf.printf "%-22s %6.2f | %10.5f %10.5f | %+8.2f%% %+8.2f%%\n"
            (name ^ "/" ^ string_of_int state_idx)
            rho_w m s (pct m mu1) (pct s s1))
        [ 1.0; 0.9; 0.5; 0.0 ])
    [ ("NAND4_X1", 0); ("NOR4_X1", 0); ("FA_X1", 0); ("AOI22_X1", 0) ];
  Printf.printf
    "(full correlation is conservative: decorrelating devices inside a cell\n\
    \ barely moves the mean but shrinks the per-cell sigma, so the paper's\n\
    \ assumption errs on the safe side -- and is physically right anyway,\n\
    \ since a cell spans ~1 um against a >100 um correlation length)\n"

let run_ext_vdd () =
  section "X10: leakage vs supply voltage (DIBL effect)";
  let hist = Lazy.force default_hist in
  let layout = Layout.square ~n:50_000 () in
  let spec =
    {
      Estimate.histogram = hist;
      n = 50_000;
      width = Layout.width layout;
      height = Layout.height layout;
    }
  in
  Printf.printf "%8s %12s %12s %14s\n" "Vdd (V)" "mean (uA)" "sigma (uA)"
    "power (uW)";
  List.iter
    (fun vdd ->
      let env = Rgleak_device.Mosfet.env_at ~vdd ~temp_k:300.0 () in
      let chars_v =
        Characterize.characterize_library ~l_points:49 ~mc_samples:500 ~env
          ~param ~seed:1729 ()
      in
      let r = Estimate.early ~chars:chars_v ~corr:corr_default spec in
      Printf.printf "%8.2f %12.2f %12.2f %14.2f\n" vdd
        (r.Estimate.mean /. 1000.0)
        (r.Estimate.std /. 1000.0)
        (r.Estimate.mean /. 1000.0 *. vdd))
    [ 1.2; 1.1; 1.0; 0.9; 0.8 ];
  Printf.printf
    "(supply scaling cuts leakage power twice: through DIBL-reduced current\n\
    \ and through the V*I product)\n"

let run_ext_tail () =
  let module Tail_test = Rgleak_valid.Tail_test in
  section "X11: tail exceedance -- importance sampling vs brute force";
  let setup = Tail_test.prepare ~seed:42 Tail_test.default_scenario in
  let is_replicas = if !fast then 200 else 400 in
  let bf_replicas = 10 * is_replicas in
  Printf.printf "%8s | %22s | %32s | %6s\n" "level" "IS p (SE), n" "brute-force p [wilson], n" "pass";
  List.iter
    (fun level ->
      let budget = Tail_test.budget_at setup ~level in
      let eq =
        Tail_test.equivalence ~budget ~bf_replicas ~is_replicas setup
      in
      Printf.printf
        "%8g | %9.3g (%8.2g) %5d | %9.3g [%8.3g, %8.3g] %6d | %s\n" level
        eq.Tail_test.eq_is_p eq.Tail_test.eq_is_se is_replicas
        eq.Tail_test.eq_bf_p eq.Tail_test.eq_bf_lo eq.Tail_test.eq_bf_hi
        bf_replicas
        (if eq.Tail_test.eq_pass then "yes" else "NO"))
    [ 0.95; 0.99 ];
  Printf.printf
    "(the importance-sampled estimate lands inside the Wilson CI of a\n\
    \ brute-force run spending 10x the replicas: the mean shift puts about\n\
    \ half the proposal mass past the budget instead of the tail fraction)\n"

(* ------------------------------------------------------------------ *)
(* X12: incremental delta re-estimation vs full exact re-estimation    *)
(* ------------------------------------------------------------------ *)

(* Read-modify-write merge of extension entries into the committed
   timing document: the bench gate hard-fails on baseline entries
   missing from the current run, so `--run ext-delta` must never
   clobber what `--run timing` wrote — it only replaces rows whose
   estimator name it owns.  When the file is absent or unreadable a
   fresh document is started instead. *)
let bench_schema = "rgleak-bench-estimators/4"

let merge_bench_entries ~path entries =
  let names =
    List.filter_map
      (fun e ->
        match Vjson.mem "estimator" e with
        | Some (Vjson.Str s) -> Some s
        | _ -> None)
      entries
  in
  let existing =
    match Vjson.parse_file path with
    | doc -> (
      match (doc, Vjson.mem "schema" doc, Vjson.mem "entries" doc) with
      | Vjson.Obj kvs, Some (Vjson.Str s), Some (Vjson.Arr es)
        when s = bench_schema ->
        Some (kvs, es)
      | _ -> None)
    | exception (Sys_error _ | Vjson.Parse_error _) -> None
  in
  let header, kept =
    match existing with
    | Some (kvs, es) ->
      ( List.filter (fun (k, _) -> k <> "entries") kvs,
        List.filter
          (fun e ->
            match Vjson.mem "estimator" e with
            | Some (Vjson.Str name) -> not (List.mem name names)
            | _ -> true)
          es )
    | None ->
      ( [
          ("schema", Vjson.Str bench_schema);
          ("jobs", Vjson.Num (float_of_int (Parallel.default_jobs ())));
          ("nproc", Vjson.Num (float_of_int (nproc ())));
          ("kernel_isa", Vjson.Str (Pair_kernel.selected_isa ()));
          ("fast", Vjson.Bool !fast);
        ],
        [] )
  in
  let doc = Vjson.Obj (header @ [ ("entries", Vjson.Arr (kept @ entries)) ]) in
  let oc = open_out path in
  output_string oc (Vjson.to_string ~indent:2 doc);
  close_out oc

let run_ext_delta () =
  let jobs =
    match !jobs_override with Some j -> j | None -> Parallel.default_jobs ()
  in
  section "X12: delta swap latency vs full exact re-estimation (ext-delta)";
  let chars = Lazy.force chars in
  let hist = Lazy.force default_hist in
  let ctx = Estimate.context ~chars ~corr:corr_default ~histogram:hist () in
  let rgcorr = Estimate.correlation ctx in
  let rng = Rng.create ~seed:7411 () in
  let n = if !fast then 20_000 else 100_000 in
  let placed = Generator.random_placed ~histogram:hist ~n ~rng () in
  Parallel.set_default_jobs jobs;
  (* The cost a flavor change pays without the delta path: one full
     O(n²) exact re-estimate.  Warm pass first so lazy covariance
     tables stay out of the timed window. *)
  let full () = Estimator_exact.estimate ~corr:corr_default ~rgcorr placed in
  ignore (full ());
  let _, full_s = time_it full in
  (* The delta state (its cold build is itself a full pair loop), then
     a randomized swap plan through all three flavors. *)
  let st0, create_s =
    time_it (fun () ->
        Delta.create
          ~flavors:(Array.make n Vt_correction.Lvt)
          ~corr:corr_default ~rgcorr placed)
  in
  let swaps = if !fast then 48 else 96 in
  let swap_rng = Rng.create ~seed:7412 () in
  let plan =
    Array.init swaps (fun _ ->
        ( Rng.int swap_rng n,
          Vt_correction.all_flavors.(Rng.int swap_rng 3) ))
  in
  let apply_plan st0 =
    Array.fold_left
      (fun st (cell, flavor) -> fst (Delta.apply_swap st ~cell ~flavor))
      st0 plan
  in
  let st_warm = apply_plan st0 in
  let timed_plan ~j =
    Parallel.set_default_jobs j;
    let t0 = Unix.gettimeofday () in
    let st = apply_plan st0 in
    (st, Unix.gettimeofday () -. t0)
  in
  let _, total_1 = timed_plan ~j:1 in
  let st_final, total_j = timed_plan ~j:jobs in
  Parallel.set_default_jobs jobs;
  let swap_s = total_j /. float_of_int swaps in
  let swaps_per_s = if swap_s > 0.0 then 1.0 /. swap_s else 0.0 in
  let speedup = if swap_s > 0.0 then full_s /. swap_s else infinity in
  (* Correctness anchor: the swapped-to state must report the same bits
     as a cold rebuild of its final flavor assignment (the delta test
     battery pins this per-tier; here it guards the benchmarked path). *)
  let cold =
    Delta.create ~flavors:(Delta.flavors st_final) ~corr:corr_default ~rgcorr
      placed
  in
  let bits = Int64.bits_of_float in
  let tier_eq (a : Delta.tier) (b : Delta.tier) =
    bits a.Delta.mean = bits b.Delta.mean
    && bits a.Delta.variance = bits b.Delta.variance
  in
  let ri = Delta.result st_final and rc = Delta.result cold in
  if
    not
      (tier_eq ri.Delta.exact rc.Delta.exact
      && tier_eq ri.Delta.linear rc.Delta.linear
      && tier_eq ri.Delta.integral rc.Delta.integral)
  then failwith "ext-delta: swapped state differs from cold rebuild";
  ignore st_warm;
  Printf.printf "n = %d gates, %d-swap plan, %d jobs\n" n swaps jobs;
  Printf.printf "full exact re-estimate : %10.4f s\n" full_s;
  Printf.printf "delta state cold build : %10.4f s\n" create_s;
  Printf.printf "delta swap             : %10.6f s/swap (%.0f swaps/s)\n"
    swap_s swaps_per_s;
  Printf.printf "speedup vs full        : %10.1fx (acceptance: >= 50x)\n"
    speedup;
  Printf.printf "bitwise vs cold rebuild: ok (all three tiers)\n";
  let entry =
    Vjson.Obj
      [
        ("estimator", Vjson.Str "delta-swap");
        ("n", Vjson.Num (float_of_int n));
        ("jobs", Vjson.Num (float_of_int jobs));
        ("cpus", Vjson.Num (float_of_int (nproc ())));
        ("seconds", Vjson.Num total_j);
        ("seconds_1job", Vjson.Num total_1);
        ( "counters",
          Vjson.Obj [ ("delta.swaps", Vjson.Num (float_of_int swaps)) ] );
        ( "gauges",
          Vjson.Obj
            [
              ("delta.swap_s", Vjson.Num swap_s);
              ("delta.swaps_per_s", Vjson.Num swaps_per_s);
              ("delta.speedup_vs_full", Vjson.Num speedup);
              ("delta.full_exact_s", Vjson.Num full_s);
              ("delta.create_s", Vjson.Num create_s);
            ] );
        ("alloc", Vjson.Obj []);
      ]
  in
  let path = "BENCH_estimators.json" in
  merge_bench_entries ~path [ entry ];
  Printf.printf "merged delta-swap entry into %s\n" path;
  if speedup < 50.0 then
    failwith
      (Printf.sprintf
         "ext-delta: swap speedup %.1fx below the 50x acceptance floor"
         speedup)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", run_e1);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig6", run_fig6);
    ("table1", run_table1);
    ("e6", run_e6);
    ("fig7", run_fig7);
    ("scaling", run_scaling);
    ("e9", run_e9);
    ("ablations", run_ablations);
    ("ext-temp", run_ext_temperature);
    ("ext-dist", run_ext_distribution);
    ("ext-extract", run_ext_extraction);
    ("ext-regions", run_ext_regions);
    ("ext-corners", run_ext_corners);
    ("ext-profile", run_ext_profile);
    ("ext-map", run_ext_map);
    ("baseline", run_baseline);
    ("ext-sleep", run_ext_sleep);
    ("ext-withincell", run_ext_within_cell);
    ("ext-vdd", run_ext_vdd);
    ("ext-tail", run_ext_tail);
    ("ext-delta", run_ext_delta);
  ]

let () =
  let to_run = ref [] in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--run" :: name :: rest ->
      to_run := name :: !to_run;
      parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs_override := Some j
      | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
        exit 2);
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Option.iter Parallel.set_default_jobs !jobs_override;
  let names = if !to_run = [] then List.map fst experiments else List.rev !to_run in
  List.iter
    (fun name ->
      if name = "timing" then run_timing ()
      else if name = "overhead" then run_overhead ()
      else if name = "microbench" then run_bechamel ()
      else
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s\n" name;
          exit 2)
    names;
  Printf.printf "\nAll requested experiments completed.\n"
