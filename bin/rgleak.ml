(* Command-line interface to the full-chip leakage estimator.

   rgleak cells                         -- library inventory
   rgleak characterize --cell NAND2_X1  -- per-state characterization
   rgleak estimate ...                  -- early-mode estimate from a mix
   rgleak signoff --benchmark c7552     -- late-mode vs true leakage
   rgleak yield -n 100000 --budget 400  -- distribution quantiles / yield
   rgleak validate                      -- statistical validation harness *)

open Cmdliner
open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

(* ---------- shared argument parsing ---------- *)

(* Argument-parsing failures raise Guard.Error (Invalid_input _): the
   per-command diagnostics handler maps each diagnostic class to its
   own exit code (invalid input 2, numeric 3, internal 4). *)

let parse_corr s =
  let num what v =
    match float_of_string_opt v with
    | Some f -> f
    | None ->
      Guard.invalid
        (Printf.sprintf "bad %s %S in correlation spec %S" what v s)
  in
  match String.split_on_char ':' s with
  | [ "linear"; d ] -> Corr_model.Linear { dmax = num "distance" d }
  | [ "spherical"; d ] -> Corr_model.Spherical { dmax = num "distance" d }
  | [ "exp"; r ] -> Corr_model.Exponential { range = num "range" r }
  | [ "gauss"; r ] -> Corr_model.Gaussian { range = num "range" r }
  | [ "texp"; r; d ] ->
    Corr_model.Truncated_exponential
      { range = num "range" r; dmax = num "distance" d }
  | _ ->
    Guard.invalid
      (Printf.sprintf
         "cannot parse correlation %S (expected e.g. linear:120, exp:60, \
          gauss:80, spherical:120, texp:60:120)"
         s)

let parse_mix_pairs s =
  let entries = String.split_on_char ',' (String.trim s) in
  List.map
    (fun entry ->
      match String.split_on_char ':' (String.trim entry) with
      | [ name; w ] -> (
        match float_of_string_opt w with
        | Some w -> (String.trim name, w)
        | None ->
          Guard.invalid
            (Printf.sprintf "bad weight in mix entry %S (want CELL:WEIGHT)"
               entry))
      | _ ->
        Guard.invalid
          (Printf.sprintf "bad mix entry %S (want CELL:WEIGHT)" entry))
    entries

let parse_mix s = Histogram.of_weights (parse_mix_pairs s)

let corr_arg =
  let doc =
    "Within-die spatial correlation model: linear:DMAX, spherical:DMAX, \
     exp:RANGE, gauss:RANGE or texp:RANGE:DMAX (micrometres)."
  in
  Arg.(value & opt string "spherical:120" & info [ "corr" ] ~docv:"MODEL" ~doc)

let p_arg =
  let doc =
    "Signal probability in [0,1]; omit to use the conservative \
     maximum-leakage setting of the paper (section 2.1.4)."
  in
  Arg.(value & opt (some float) None & info [ "p" ] ~docv:"P" ~doc)

let method_arg =
  let doc = "Estimation method: auto, linear, int2d or polar." in
  Arg.(value & opt string "auto" & info [ "method" ] ~docv:"METHOD" ~doc)

let vt_arg =
  let doc = "Apply the random-dopant V_t multiplicative mean correction." in
  Arg.(value & flag & info [ "vt" ] ~doc)

let parse_method = function
  | "auto" -> Estimate.Auto
  | "linear" -> Estimate.Linear
  | "int2d" -> Estimate.Integral_2d
  | "polar" -> Estimate.Integral_polar
  | s ->
    Guard.invalid
      (Printf.sprintf "unknown method %S (expected auto, linear, int2d or polar)" s)

let corr_of s = Corr_model.create (parse_corr s) Process_param.default_channel_length

let char_arg =
  let doc =
    "Load a saved library characterization instead of recomputing it \
     (see 'characterize --save')."
  in
  Arg.(value & opt (some string) None & info [ "char" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sections (library characterization, \
     the O(n^2) exact reference, Monte Carlo replicas).  Defaults to the \
     runtime's recommended domain count.  Results are bit-identical for \
     every value."
  in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a positive job count, got %s" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some pos_int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs jobs = Option.iter Parallel.set_default_jobs jobs

(* ---------- telemetry flags (shared by every subcommand) ---------- *)

module Obs = Rgleak_obs.Obs
module Obs_export = Rgleak_obs.Export

module Ledger = Rgleak_obs.Ledger

type trace_opts = {
  trace : bool;
  trace_json : string option;
  trace_folded : string option;
  metrics_json : string option;
  ledger : string option;
}

let trace_active t =
  t.trace || t.trace_json <> None || t.trace_folded <> None
  || t.metrics_json <> None || t.ledger <> None

let trace_term =
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Enable telemetry and print the span tree and counter tables on \
             stderr.  Tracing never changes any numerical result.")
  in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write a Chrome trace-event file (open in \
             chrome://tracing or ui.perfetto.dev).")
  in
  let trace_folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-folded" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write collapsed stacks (span self-times) \
             for flamegraph.pl or speedscope.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Enable telemetry and write a flat metrics JSON document.")
  in
  let ledger =
    Arg.(
      value
      & opt ~vopt:(Some Ledger.default_path) (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            (Printf.sprintf
               "Enable telemetry and append one compact rgleak-run/1 record \
                (counters, histogram summaries, exit class) to $(docv) \
                (default %s) when the run finishes.  Aggregate with $(b,rgleak \
                report)."
               Ledger.default_path))
  in
  Term.(
    const (fun trace trace_json trace_folded metrics_json ledger ->
        { trace; trace_json; trace_folded; metrics_json; ledger })
    $ trace $ trace_json $ trace_folded $ metrics_json $ ledger)

(* The ledger records the subcommand by name: the first non-flag
   argument is exactly cmdliner's group selector. *)
let subcommand_of_argv () =
  let rec find i =
    if i >= Array.length Sys.argv then "rgleak"
    else if String.length Sys.argv.(i) > 0 && Sys.argv.(i).[0] <> '-' then
      Sys.argv.(i)
    else find (i + 1)
  in
  find 1

let with_telemetry t run =
  if not (trace_active t) then run ()
  else begin
    Obs.reset ();
    Obs.set_enabled true;
    (* Classified before with_diagnostics sees the exception, so the
       ledger can record the exit class of a failed run. *)
    let exit_class = function
      | Guard.Error d -> Guard.class_name d
      | Invalid_argument _ | Failure _ -> "invalid-input"
      | _ -> "internal"
    in
    let finish class_ =
      Obs.set_enabled false;
      let snap = Obs.snapshot () in
      if snap.Obs.dropped_spans > 0 then
        Printf.eprintf
          "rgleak: warning: telemetry dropped %d spans (per-domain cap); \
           span totals are incomplete\n\
           %!"
          snap.Obs.dropped_spans;
      if snap.Obs.dropped_tracks > 0 then
        Printf.eprintf
          "rgleak: warning: telemetry dropped %d track samples (per-domain \
           cap)\n\
           %!"
          snap.Obs.dropped_tracks;
      if t.trace then Obs_export.report stderr snap;
      Option.iter
        (fun path ->
          Obs_export.write_chrome_trace ~path snap;
          Printf.eprintf "trace: wrote Chrome trace to %s\n%!" path)
        t.trace_json;
      Option.iter
        (fun path ->
          Obs_export.write_folded ~path snap;
          Printf.eprintf "trace: wrote collapsed stacks to %s\n%!" path)
        t.trace_folded;
      Option.iter
        (fun path ->
          Obs_export.write_metrics_json ~path snap;
          Printf.eprintf "trace: wrote metrics to %s\n%!" path)
        t.metrics_json;
      Option.iter
        (fun path ->
          let line =
            Ledger.line
              ~subcommand:(subcommand_of_argv ())
              ~args:(List.tl (Array.to_list Sys.argv))
              ~exit_class:class_ ~t:(Unix.gettimeofday ()) snap
          in
          match Ledger.append ~path line with
          | Ok () -> ()
          | Error msg ->
            Printf.eprintf "rgleak: warning: ledger append failed: %s\n%!" msg)
        t.ledger
    in
    match run () with
    | v ->
      finish "ok";
      v
    | exception e ->
      finish (exit_class e);
      raise e
  end

(* ---------- robustness flags (shared by every subcommand) ---------- *)

type robust_opts = { fault_specs : string list; strict : bool }

let robust_term =
  let fault_specs =
    Arg.(
      value & opt_all string []
      & info [ "fault-spec" ] ~docv:"SITE:PROB:SEED"
          ~doc:
            "Deterministically inject faults at an instrumented site \
             (parallel, cholesky, quadrature, linear.f, cache): each probe at \
             SITE \
             fails with probability PROB, decided by a counter-indexed hash \
             of SEED.  Repeatable.  Identical specs reproduce the identical \
             fault sequence; disarmed probes cost one atomic load.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail fast: exit with the diagnostic's code on the first numeric \
             failure instead of degrading to another estimator tier.")
  in
  Term.(
    const (fun fault_specs strict -> { fault_specs; strict })
    $ fault_specs $ strict)

(* Exit codes: 0 success, 2 invalid input, 3 numeric breakdown, 4 internal
   bug.  (cmdliner reserves 124/125 for CLI-syntax and uncaught-exception
   errors.)  Fault specs are parsed and armed inside the protected region
   so a malformed --fault-spec exits 2 like any other bad argument. *)
let with_diagnostics ro run =
  let body () =
    let specs =
      List.map
        (fun s ->
          match Guard.Fault.parse_spec s with
          | Ok spec -> spec
          | Error msg -> Guard.invalid msg)
        ro.fault_specs
    in
    Guard.Fault.configure specs;
    Fun.protect run ~finally:Guard.Fault.clear
  in
  match Guard.protect body with
  | Ok () -> ()
  | Error d ->
    Printf.eprintf "rgleak: %s\n%!" (Guard.to_string d);
    exit (Guard.exit_code d)

let chars_of = function
  | None -> Characterize.default_library ()
  | Some path -> Char_io.load ~path

let print_result label (r : Estimate.result) =
  Printf.printf "%s\n" label;
  Printf.printf "  gates          : %d\n" r.Estimate.n;
  Printf.printf "  mean leakage   : %.4g nA (%.4g uA)\n" r.Estimate.mean
    (r.Estimate.mean /. 1000.0);
  Printf.printf "  std deviation  : %.4g nA (%.2f%% of mean)\n" r.Estimate.std
    (100.0 *. r.Estimate.std /. r.Estimate.mean);
  Printf.printf "  mean + 3 sigma : %.4g nA\n"
    (r.Estimate.mean +. (3.0 *. r.Estimate.std));
  Printf.printf "  method         : %s\n" r.Estimate.method_used;
  Printf.printf "  Vt mean factor : %.4f\n" r.Estimate.vt_mean_factor

(* ---------- cells ---------- *)

let cells_cmd =
  let run ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let env = Rgleak_device.Mosfet.default_env in
    Printf.printf "%-12s %6s %5s %5s %12s %12s\n" "cell" "states" "devs"
      "depth" "min leak nA" "max leak nA";
    Array.iter
      (fun cell ->
        let lo = ref infinity and hi = ref 0.0 in
        Array.iter
          (fun state ->
            let i = Cell.leakage ~env cell state in
            if i < !lo then lo := i;
            if i > !hi then hi := i)
          (Cell.states cell);
        Printf.printf "%-12s %6d %5d %5d %12.4f %12.4f\n" cell.Cell.name
          (Cell.num_states cell) (Cell.device_count cell)
          (Cell.max_stack_depth cell) !lo !hi)
      Library.cells;
    Printf.printf "%d cells total\n" Library.size
  in
  Cmd.v (Cmd.info "cells" ~doc:"List the standard-cell library")
    Term.(const run $ robust_term $ trace_term)

(* ---------- characterize ---------- *)

let characterize_cmd =
  let cell_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cell" ] ~docv:"NAME" ~doc:"Characterize only this cell.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the full-library characterization to a file for reuse.")
  in
  let temp_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "temp" ] ~docv:"CELSIUS"
          ~doc:"Characterize at this junction temperature (default 26.85 C = 300 K).")
  in
  let run cell_name save temp jobs ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    (* Validate the cell name before paying for characterization. *)
    let cell_index =
      match cell_name with
      | None -> None
      | Some name -> (
        try Some (Library.index_of name)
        with Not_found -> Guard.invalid (Printf.sprintf "unknown cell %S" name))
    in
    let chars =
      match temp with
      | None -> Characterize.default_library ()
      | Some celsius ->
        Characterize.characterize_library
          ~env:(Rgleak_device.Mosfet.env_at ~temp_k:(273.15 +. celsius) ())
          ?jobs ~param:Process_param.default_channel_length ~seed:1729 ()
    in
    (match save with
    | None -> ()
    | Some path ->
      Char_io.save ~path chars;
      Printf.printf "saved characterization to %s\n" path);
    let selected =
      match cell_index with
      | None -> Array.to_list chars
      | Some idx -> [ chars.(idx) ]
    in
    List.iter
      (fun (ch : Characterize.cell_char) ->
        Printf.printf "%s\n" ch.Characterize.cell.Cell.name;
        Printf.printf
          "  %5s %12s %12s %12s %12s %10s %10s %12s\n" "state" "mu(fit)"
          "sigma(fit)" "mu(MC)" "sigma(MC)" "b" "c" "rms(ln)";
        Array.iter
          (fun (sc : Characterize.state_char) ->
            Printf.printf
              "  %5d %12.5f %12.5f %12.5f %12.5f %10.5f %10.6f %12.5f\n"
              sc.Characterize.state_index sc.Characterize.mu_analytic
              sc.Characterize.sigma_analytic sc.Characterize.mu_mc
              sc.Characterize.sigma_mc sc.Characterize.fit.Mgf.b
              sc.Characterize.fit.Mgf.c sc.Characterize.fit_rms_log)
          ch.Characterize.states)
      selected
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Pre-characterize cells: per-state fitted and MC leakage statistics")
    Term.(
      const run $ cell_arg $ save_arg $ temp_arg $ jobs_arg $ robust_term
      $ trace_term)

(* ---------- estimate (early mode) ---------- *)

let estimate_cmd =
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let width_arg =
    Arg.(
      value & opt (some float) None
      & info [ "width" ] ~docv:"UM" ~doc:"Die width in micrometres (default: square die from gate count).")
  in
  let height_arg =
    Arg.(
      value & opt (some float) None
      & info [ "height" ] ~docv:"UM" ~doc:"Die height in micrometres.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,AND2_X1:8,OR2_X1:5,XOR2_X1:4,BUF_X1:5,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:"Cell-usage mix as CELL:WEIGHT pairs, comma separated.")
  in
  (* Under tracing, [estimate] additionally exercises every estimator
     tier on the same problem, so one trace shows the linear layout
     estimator, the integral tier and — for gate counts small enough
     to stay quick — the O(n^2) exact reference on a seeded random
     placement, which also lights up the pool worker lanes. *)
  let profile_tiers ?p ~chars ~corr ~histogram ~n ~width ~height () =
    Obs.span "estimate.profile_tiers" @@ fun () ->
    let ctx = Estimate.context ?p ~chars ~corr ~histogram () in
    let rgcorr = Estimate.correlation ctx in
    let layout = Layout.of_dims ~n ~width ~height in
    ignore (Estimator_linear.estimate ~corr ~rgcorr ~layout ());
    if Estimator_integral.polar_applicable ~corr ~width ~height then
      ignore (Estimator_integral.polar ~corr ~rgcorr ~n ~width ~height ())
    else ignore (Estimator_integral.rect_2d ~corr ~rgcorr ~n ~width ~height ());
    if n <= 5000 then begin
      let rng = Rng.create ~seed:7919 () in
      let placed = Generator.random_placed ~histogram ~n ~rng () in
      ignore (Estimator_exact.estimate ~corr ~rgcorr placed);
      prerr_endline "trace: profiled linear, integral and exact estimator tiers"
    end
    else
      prerr_endline
        "trace: profiled linear and integral tiers (exact skipped for n > 5000)"
  in
  let run n width height mix corr p method_ vt char_file jobs ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    (* Parse every argument before the (expensive) characterization so
       bad input fails fast with exit code 2. *)
    let histogram = parse_mix mix in
    let corr = corr_of corr in
    let method_ = parse_method method_ in
    let layout = Layout.square ~n () in
    let width = Option.value width ~default:(Layout.width layout) in
    let height = Option.value height ~default:(Layout.height layout) in
    let chars = chars_of char_file in
    let spec = { Estimate.histogram; n; width; height } in
    let ctx = Estimate.context ?p ~chars ~corr ~histogram () in
    let describe = function
      | Estimate.Auto -> "auto"
      | Estimate.Linear -> "linear"
      | Estimate.Integral_2d -> "int2d"
      | Estimate.Integral_polar -> "polar"
    in
    (* Best-effort degradation: when the requested tier breaks down
       numerically and --strict is off, report it on stderr and fall
       back through the remaining tiers; --strict turns the first
       failure into exit code 3. *)
    let rec attempt = function
      | [] -> Guard.numeric ~site:"estimate" "every estimator tier failed"
      | m :: rest -> (
        match Estimate.run_result ~method_:m ~with_vt:vt ctx spec with
        | Ok r -> r
        | Error d ->
          if ro.strict || rest = [] then raise (Guard.Error d);
          Printf.eprintf "rgleak: tier %s failed (%s); degrading to %s\n%!"
            (describe m) (Guard.to_string d)
            (describe (List.hd rest));
          attempt rest)
    in
    let tiers =
      method_
      :: List.filter (fun m -> m <> method_)
           [ Estimate.Linear; Estimate.Integral_polar; Estimate.Integral_2d ]
    in
    let r = attempt tiers in
    print_result
      (Printf.sprintf "early-mode estimate (%d gates on %.0f x %.0f um)" n
         width height)
      r;
    if trace_active tr then
      profile_tiers ?p ~chars ~corr ~histogram ~n ~width ~height ()
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Early-mode full-chip leakage estimate from high-level characteristics")
    Term.(
      const run $ n_arg $ width_arg $ height_arg $ mix_arg $ corr_arg $ p_arg
      $ method_arg $ vt_arg $ char_arg $ jobs_arg $ robust_term $ trace_term)

(* ---------- signoff (late mode on a benchmark) ---------- *)

let signoff_cmd =
  let bench_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "benchmark" ] ~docv:"NAME"
          ~doc:"ISCAS85 benchmark name (c432 .. c7552).")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-file" ] ~docv:"FILE"
          ~doc:"Sign off a circuit from an ISCAS .bench file (technology-mapped                 onto the library, then placed).")
  in
  let vfile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "verilog-file" ] ~docv:"FILE"
          ~doc:"Sign off a gate-level structural Verilog netlist (must \
                instantiate library cells).")
  in
  let placement_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "placement" ] ~docv:"FILE"
          ~doc:"Use this placement file (rgleak-placement format) instead of \
                placing randomly; applies to --bench-file/--verilog-file.")
  in
  let save_placement_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-placement" ] ~docv:"FILE"
          ~doc:"Write the placement used for the estimate to a file.")
  in
  let true_arg =
    Arg.(
      value & flag
      & info [ "true-leakage" ]
          ~doc:"Also run the O(n^2) exact pairwise reference and report the error.")
  in
  let run bench file vfile placement save_placement corr p method_ vt with_true
      jobs ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    (* Validate the source selection and parse every argument before the
       (expensive) characterization so bad input fails fast. *)
    (match (bench, file, vfile) with
    | Some _, None, None | None, Some _, None | None, None, Some _ -> ()
    | _ ->
      Guard.invalid
        "give exactly one of --benchmark, --bench-file or --verilog-file");
    let corr = corr_of corr in
    let method_ = parse_method method_ in
    let chars = Characterize.default_library () in
    let place_netlist netlist label =
      match placement with
      | Some path ->
        let pl = Placement_io.load ~path in
        let placed = Placement_io.apply netlist pl in
        Printf.printf "applied placement %s (max snap %.2f um)\n" path
          (Placement_io.max_snap_distance placed pl);
        (placed, label)
      | None ->
        let die_area = Netlist.total_area netlist /. 0.7 in
        let side = sqrt die_area in
        let layout =
          Layout.of_dims ~n:(Netlist.size netlist) ~width:side ~height:side
        in
        let rng = Rng.create ~seed:7919 () in
        (Placer.place ~strategy:Placer.Random ~rng netlist layout, label)
    in
    let placed, label =
      match (bench, file, vfile) with
      | Some name, None, None ->
        let spec =
          try Benchmarks.find name
          with Not_found ->
            Guard.invalid (Printf.sprintf "unknown benchmark %S" name)
        in
        ( Benchmarks.placed spec,
          Printf.sprintf "late-mode sign-off of %s (%s)" spec.Benchmarks.name
            spec.Benchmarks.description )
      | None, Some path, None ->
        let parsed = Bench_format.parse_file path in
        let netlist, report = Techmap.map parsed in
        Printf.printf
          "mapped %s: %d source gates -> %d library cells (%d decomposed, %d added)\n"
          parsed.Bench_format.name
          (Bench_format.gate_count parsed)
          (Netlist.size netlist) report.Techmap.decomposed report.Techmap.added;
        place_netlist netlist
          (Printf.sprintf "late-mode sign-off of %s (from %s)"
             parsed.Bench_format.name path)
      | None, None, Some path ->
        let netlist = Verilog.to_netlist (Verilog.parse_file path) in
        place_netlist netlist
          (Printf.sprintf "late-mode sign-off of %s (from %s)"
             netlist.Netlist.name path)
      | _ -> assert false (* rejected above *)
    in
    let r = Estimate.late ?p ~method_ ~with_vt:vt ~chars ~corr placed in
    (match save_placement with
    | None -> ()
    | Some path ->
      Placement_io.save ~path (Placement_io.of_placed placed);
      Printf.printf "saved placement to %s\n" path);
    print_result label r;
    if with_true then begin
      let tr = Estimate.true_leakage ?p ?jobs ~chars ~corr placed in
      Printf.printf "  true std       : %.4g nA (RG error %.2f%%)\n"
        tr.Estimate.std
        (100.0 *. Float.abs ((r.Estimate.std -. tr.Estimate.std) /. tr.Estimate.std))
    end
  in
  Cmd.v
    (Cmd.info "signoff"
       ~doc:"Late-mode estimate of a placed ISCAS85-like benchmark")
    Term.(
      const run $ bench_arg $ file_arg $ vfile_arg $ placement_arg
      $ save_placement_arg $ corr_arg $ p_arg $ method_arg $ vt_arg $ true_arg
      $ jobs_arg $ robust_term $ trace_term)

(* ---------- yield ---------- *)

let yield_cmd =
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"UA"
          ~doc:"Leakage budget in microamperes; reports the parametric yield.")
  in
  let run n mix corr p budget ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let histogram = parse_mix mix in
    let corr = corr_of corr in
    let layout = Layout.square ~n () in
    let chars = Characterize.default_library () in
    let spec =
      {
        Estimate.histogram;
        n;
        width = Layout.width layout;
        height = Layout.height layout;
      }
    in
    let r = Estimate.early ?p ~with_vt:true ~chars ~corr spec in
    let d = Distribution.of_estimate r in
    print_result (Printf.sprintf "leakage distribution (%d gates)" n) r;
    Printf.printf "quantiles (lognormal):\n";
    List.iter
      (fun q ->
        Printf.printf "  P%-5.1f : %10.2f uA\n" (100.0 *. q)
          (Distribution.quantile d q /. 1000.0))
      [ 0.5; 0.9; 0.99; 0.999 ];
    (match budget with
    | None -> ()
    | Some b ->
      Printf.printf "yield at %.1f uA budget: %.2f%%\n" b
        (100.0 *. Distribution.yield d ~budget:(b *. 1000.0)));
    Printf.printf "budget for 99%% yield: %.1f uA\n"
      (Distribution.budget_for_yield d ~yield:0.99 /. 1000.0)
  in
  Cmd.v
    (Cmd.info "yield"
       ~doc:"Leakage distribution quantiles and parametric yield vs a budget")
    Term.(
      const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ budget_arg $ robust_term
      $ trace_term)

(* ---------- sensitivity ---------- *)

let sensitivity_cmd =
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let run n mix corr p char_file ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let histogram = parse_mix mix in
    let corr = corr_of corr in
    let chars = chars_of char_file in
    let layout = Layout.square ~n () in
    let spec =
      {
        Estimate.histogram;
        n;
        width = Layout.width layout;
        height = Layout.height layout;
      }
    in
    let report = Sensitivity.analyze ~chars ~corr ?p spec in
    Format.printf "%a" Sensitivity.pp report
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"What-if report: how the leakage statistics respond to mix, die \
             and gate-count changes")
    Term.(
      const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ char_arg $ robust_term
      $ trace_term)

(* ---------- convert ---------- *)

let convert_cmd =
  let bench_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "benchmark" ] ~docv:"NAME"
          ~doc:"ISCAS85 benchmark to synthesize (c432 .. c7552).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let format_arg =
    Arg.(
      value & opt string "bench"
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: bench or verilog.")
  in
  let run name output format ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let spec =
      try Benchmarks.find name
      with Not_found ->
        Guard.invalid (Printf.sprintf "unknown benchmark %S" name)
    in
    (match format with
    | "bench" | "verilog" -> ()
    | f ->
      Guard.invalid
        (Printf.sprintf "unknown format %S (expected bench or verilog)" f));
    let netlist = Benchmarks.netlist spec in
    let text, gates =
      match format with
      | "bench" ->
        let bench = Techmap.netlist_to_bench netlist in
        (Bench_format.to_string bench, Bench_format.gate_count bench)
      | _ ->
        (Verilog.to_string (Verilog.of_netlist netlist), Netlist.size netlist)
    in
    let oc = open_out output in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s (%d gates, %s) to %s\n" spec.Benchmarks.name gates
      format output
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Export a synthesized benchmark netlist to .bench or Verilog")
    Term.(const run $ bench_arg $ out_arg $ format_arg $ robust_term $ trace_term)

(* ---------- corners ---------- *)

let corners_cmd =
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let run n mix corr p ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let histogram = parse_mix mix in
    let corr = corr_of corr in
    let layout = Layout.square ~n () in
    let spec =
      {
        Estimate.histogram;
        n;
        width = Layout.width layout;
        height = Layout.height layout;
      }
    in
    let results =
      Corners.analyze ?p ~param:Process_param.default_channel_length ~corr
        ~spec ()
    in
    Format.printf "%a" Corners.pp results;
    let w = Corners.worst results in
    Format.printf "worst corner: %s at %.2f uA (mean + 3 sigma)@."
      w.Corners.corner.Corners.name
      (w.Corners.p3sigma /. 1000.0)
  in
  Cmd.v
    (Cmd.info "corners"
       ~doc:"Leakage statistics across process/temperature corners")
    Term.(const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ robust_term $ trace_term)

(* ---------- profile ---------- *)

let profile_cmd =
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let run n mix corr p char_file ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let histogram = parse_mix mix in
    let corr = corr_of corr in
    let chars = chars_of char_file in
    let layout = Layout.square ~n () in
    let ctx = Estimate.context ?p ~chars ~corr ~histogram () in
    let prof =
      Variance_profile.compute ~corr ~rgcorr:(Estimate.correlation ctx) ~n
        ~width:(Layout.width layout) ~height:(Layout.height layout) ()
    in
    Format.printf "variance decomposition by pair separation:@.%a"
      Variance_profile.pp prof;
    Format.printf "half of the variance within %.1f um@."
      (Variance_profile.radius_for_share prof ~share:0.5)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Decompose the leakage variance by gate-pair separation")
    Term.(
      const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ char_arg $ robust_term
      $ trace_term)

(* ---------- map ---------- *)

let map_cmd =
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let tiles_arg =
    Arg.(value & opt int 12 & info [ "tiles" ] ~docv:"K" ~doc:"Tiles per axis.")
  in
  let samples_arg =
    Arg.(value & opt int 400 & info [ "samples" ] ~docv:"DIES" ~doc:"Sampled dies.")
  in
  let run n mix corr p char_file tiles samples ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let histogram = parse_mix mix in
    let corr = corr_of corr in
    let chars = chars_of char_file in
    let layout = Layout.square ~n () in
    let p =
      match p with
      | Some p -> p
      | None ->
        Signal_prob.maximizing_p chars ~weights:(Histogram.to_array histogram)
    in
    let rg = Random_gate.create ~chars ~histogram ~p () in
    let map =
      Leakage_map.compute ~tiles ~samples ~rg ~corr ~n
        ~width:(Layout.width layout) ~height:(Layout.height layout) ()
    in
    print_string (Leakage_map.render map);
    Printf.printf "hotspot ratio (peak tile / mean tile): %.3f over %d dies\n"
      map.Leakage_map.hotspot_ratio map.Leakage_map.samples
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Spatial leakage map: per-tile statistics and the hotspot ratio")
    Term.(
      const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ char_arg $ tiles_arg
      $ samples_arg $ robust_term $ trace_term)

(* ---------- sleep ---------- *)

let sleep_cmd =
  let bench_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "benchmark" ] ~docv:"NAME"
          ~doc:"ISCAS85 benchmark to search (c432 .. c7552).")
  in
  let restarts_arg =
    Arg.(value & opt int 8 & info [ "restarts" ] ~docv:"K" ~doc:"Greedy restarts.")
  in
  let run name restarts char_file ro tr =
    with_diagnostics ro @@ fun () ->
    with_telemetry tr @@ fun () ->
    let spec =
      try Benchmarks.find name
      with Not_found ->
        Guard.invalid (Printf.sprintf "unknown benchmark %S" name)
    in
    let chars = chars_of char_file in
    let nl = Benchmarks.netlist spec in
    let sim = Sleep_vector.compile ~chars nl in
    let rng = Rng.create ~seed:11 () in
    let r = Sleep_vector.search ~restarts ~rng sim in
    Printf.printf "sleep vector for %s (%d control bits):\n" spec.Benchmarks.name
      (Sleep_vector.num_controls sim);
    Printf.printf "  random-vector mean leakage : %.1f nA\n" r.Sleep_vector.random_mean;
    Printf.printf "  best vector leakage        : %.1f nA (%.1f%% lower)\n"
      r.Sleep_vector.cost
      (100.0 *. r.Sleep_vector.improvement);
    Printf.printf "  cost evaluations           : %d\n" r.Sleep_vector.evaluations;
    let bits =
      String.concat ""
        (List.map (fun b -> if b then "1" else "0")
           (Array.to_list r.Sleep_vector.vector))
    in
    Printf.printf "  vector (PIs then flops)    : %s\n" bits
  in
  Cmd.v
    (Cmd.info "sleep"
       ~doc:"Search for the minimum-leakage standby vector of a benchmark")
    Term.(const run $ bench_arg $ restarts_arg $ char_arg $ robust_term $ trace_term)

(* ---------- validate ---------- *)

let validate_cmd =
  let module Experiment = Rgleak_valid.Experiment in
  let module Golden_diff = Rgleak_valid.Golden_diff in
  let module Vjson = Rgleak_valid.Vjson in
  let sweep_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "sweep" ] ~docv:"NAME"
          ~doc:
            "Sweep to run: $(b,quick) (two small points, seconds) or \
             $(b,default) (the full paper-table sweep).")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Master seed.  The whole report is a pure function of (sweep, \
             seed): reruns and different $(b,--jobs) values reproduce it bit \
             for bit.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the rgleak-validate/1 report to $(docv).")
  in
  let golden_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"PATH"
          ~doc:
            "Diff the report against the committed baseline at $(docv).  \
             Drift within the baseline's MC confidence intervals is benign; \
             structural changes or drift beyond them exit non-zero.")
  in
  let run sweep_name seed json golden jobs ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    let sweep = Experiment.sweep_named sweep_name in
    let report = Experiment.run ?jobs ~seed sweep in
    Format.printf "%a" Experiment.pp_report report;
    Option.iter
      (fun path ->
        Experiment.write_json ~path report;
        Printf.printf "report written to %s\n" path)
      json;
    let golden_ok =
      match golden with
      | None -> true
      | Some path ->
        let baseline =
          try Vjson.parse_file path with
          | Sys_error msg -> Guard.invalid msg
          | Vjson.Parse_error msg ->
            Guard.invalid (Printf.sprintf "bad golden file %s: %s" path msg)
        in
        let diff =
          try
            Golden_diff.compare ~baseline ~current:(Experiment.to_json report)
          with Vjson.Parse_error msg ->
            Guard.invalid
              (Printf.sprintf "golden file %s is not a validate report: %s"
                 path msg)
        in
        Format.printf "%a" Golden_diff.pp diff;
        diff.Golden_diff.severity <> Golden_diff.Breaking
    in
    if not (report.Experiment.pass && golden_ok) then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Statistical validation: paper-table sweeps with Monte-Carlo \
          equivalence tests and golden-artifact regression")
    Term.(
      const run $ sweep_arg $ seed_arg $ json_arg $ golden_arg $ jobs_arg
      $ robust_term $ trace_term)

(* ---------- tail ---------- *)

let tail_cmd =
  let module Tail_test = Rgleak_valid.Tail_test in
  let module Golden_diff = Rgleak_valid.Golden_diff in
  let module Vjson = Rgleak_valid.Vjson in
  let n_arg =
    Arg.(required & opt (some int) None & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let budget_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "budget" ] ~docv:"UA"
          ~doc:
            "Leakage budget in microamperes; the subcommand estimates \
             P(leakage > budget).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 2000
      & info [ "replicas" ] ~docv:"DIES"
          ~doc:"Importance-sampled replicas (each one full correlated die).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Master seed.  The whole report is a pure function of the \
             arguments: reruns and different $(b,--jobs) values reproduce \
             it bit for bit.")
  in
  let shift_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "shift" ] ~docv:"NM"
          ~doc:
            "Manual uniform channel-length shift of the proposal (nm, \
             usually negative: shorter channels leak more).  Omit to \
             calibrate automatically so the budget sits near the proposal \
             median (~50% hit rate).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the rgleak-tail/1 report to $(docv).")
  in
  let golden_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"PATH"
          ~doc:
            "Diff the report against the committed baseline at $(docv).  \
             Drift of the exceedance probability within the baseline's own \
             CI is benign; structural changes or drift beyond it exit \
             non-zero.")
  in
  let run n mix corr p budget replicas seed shift char_file json golden jobs ro
      tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    (* Argument validation first: bad budgets/shifts are invalid-input
       diagnostics (exit 2), never NaN reports. *)
    if n <= 0 then Guard.invalid "gate count must be positive";
    if not (budget > 0.0 && Float.is_finite budget) then
      Guard.invalid "--budget must be a positive finite current in uA";
    if replicas < 2 then Guard.invalid "--replicas must be at least 2";
    Option.iter
      (fun d ->
        if not (Float.is_finite d && Float.abs d <= 30.0) then
          Guard.invalid
            "--shift must be a finite channel-length offset within +/-30 nm \
             (the characterization grid spans about +/-25 nm)")
      shift;
    (match p with
    | Some p when not (p >= 0.0 && p <= 1.0) ->
      Guard.invalid "p must be in [0, 1]"
    | _ -> ());
    let mix_pairs = parse_mix_pairs mix in
    let family = parse_corr corr in
    let chars = chars_of char_file in
    let p =
      match p with
      | Some p -> p
      | None ->
        Signal_prob.maximizing_p chars
          ~weights:(Histogram.to_array (Histogram.of_weights mix_pairs))
    in
    let scenario =
      {
        Tail_test.sc_n = n;
        sc_family = family;
        sc_p = p;
        sc_mix_name = mix;
        sc_mix = mix_pairs;
      }
    in
    let setup = Tail_test.prepare ~chars ~seed scenario in
    let budget_na = budget *. 1000.0 in
    let confidence = 0.95 in
    let r =
      Tail_test.run ?jobs ~confidence ?shift_delta:shift ~budget:budget_na
        ~replicas setup
    in
    let analytic_p = Tail_test.analytic_exceedance setup ~budget:budget_na in
    Format.printf "%a@." Rgleak_core.Tail.pp r;
    List.iter
      (fun (q : Rgleak_core.Tail.quantile) ->
        Printf.printf "  P%-7g quantile : %10.2f uA\n"
          (100.0 *. q.Rgleak_core.Tail.level)
          (q.Rgleak_core.Tail.value /. 1000.0))
      r.Rgleak_core.Tail.quantiles;
    Printf.printf "analytic lognormal P(> budget): %.4g\n" analytic_p;
    let doc =
      Tail_test.to_json
        {
          Tail_test.doc_n = n;
          doc_corr = corr;
          doc_mix = mix;
          doc_p = p;
          doc_seed = seed;
          doc_confidence = confidence;
          doc_analytic_p = Some analytic_p;
        }
        r
    in
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Vjson.to_string ~indent:2 doc));
        Printf.printf "report written to %s\n" path)
      json;
    let golden_ok =
      match golden with
      | None -> true
      | Some path ->
        let baseline =
          try Vjson.parse_file path with
          | Sys_error msg -> Guard.invalid msg
          | Vjson.Parse_error msg ->
            Guard.invalid (Printf.sprintf "bad golden file %s: %s" path msg)
        in
        let diff =
          try Golden_diff.compare_tail ~baseline ~current:doc
          with Vjson.Parse_error msg ->
            Guard.invalid
              (Printf.sprintf "golden file %s is not a tail report: %s" path
                 msg)
        in
        Format.printf "%a" Golden_diff.pp diff;
        diff.Golden_diff.severity <> Golden_diff.Breaking
    in
    if not golden_ok then exit 1
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Tail-risk estimation: importance-sampled P(leakage > budget) with \
          high quantiles, confidence intervals and ESS diagnostics")
    Term.(
      const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ budget_arg
      $ replicas_arg $ seed_arg $ shift_arg $ char_arg $ json_arg $ golden_arg
      $ jobs_arg $ robust_term $ trace_term)

(* ---------- optimize ---------- *)

let optimize_cmd =
  let module Golden_diff = Rgleak_valid.Golden_diff in
  let module Vjson = Rgleak_valid.Vjson in
  let module Cache = Rgleak_cache.Cache in
  let module Memo = Rgleak_cache.Memo in
  let n_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "n" ] ~docv:"GATES" ~doc:"Gate count.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "INV_X1:20,NAND2_X1:18,NOR2_X1:8,XOR2_X1:4,DFF_X1:9"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Cell-usage mix as CELL:WEIGHT pairs.")
  in
  let budget_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "budget" ] ~docv:"SLACK"
          ~doc:
            "Timing-slack proxy budget the greedy downgrade may spend: each \
             applied move costs the flavor delay-factor difference \
             (LVT$(i,->)SVT 0.15, SVT$(i,->)HVT 0.25).")
  in
  let start_arg =
    Arg.(
      value
      & opt string "lvt"
      & info [ "start" ] ~docv:"FLAVOR"
          ~doc:
            "Initial flavor of every cell: $(b,lvt) (the classic \
             fast-but-leaky starting point), $(b,svt) or $(b,hvt).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Placement seed.  The whole report is a pure function of the \
             arguments: reruns and different $(b,--jobs) values reproduce it \
             byte for byte.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the rgleak-optimize/1 report to $(docv).")
  in
  let golden_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"PATH"
          ~doc:
            "Diff the report against the committed baseline at $(docv).  The \
             report is deterministic, so any drift beyond bit-stability \
             epsilon (or any structural change) exits non-zero.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Memoize the packed per-(type-pair, distance-bin) covariance \
             tables in the content-addressed cache at $(docv).  Cached and \
             uncached runs are bit-identical (hex-float payload).")
  in
  let run n mix corr p budget start seed char_file cache_dir json golden jobs
      ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    if n <= 0 then Guard.invalid "gate count must be positive";
    (match p with
    | Some p when not (p >= 0.0 && p <= 1.0) ->
      Guard.invalid "p must be in [0, 1]"
    | _ -> ());
    let start_flavor =
      match Vt_correction.flavor_of_string start with
      | Some f -> f
      | None ->
        Guard.invalid
          (Printf.sprintf "unknown flavor %S (expected lvt, svt or hvt)" start)
    in
    let mix_pairs = parse_mix_pairs mix in
    let histogram = Histogram.of_weights mix_pairs in
    let corr_model = corr_of corr in
    let chars = chars_of char_file in
    let p =
      match p with
      | Some p -> p
      | None ->
        Signal_prob.maximizing_p chars ~weights:(Histogram.to_array histogram)
    in
    let rng = Rng.create ~seed () in
    let placed = Generator.random_placed ~histogram ~n ~rng () in
    let rg = Random_gate.create ~chars ~histogram ~p () in
    let rgcorr = Rg_correlation.create ~chars ~rg ~p () in
    let distance_points = 512 in
    let cov =
      match cache_dir with
      | None -> None
      | Some dir ->
        let cache =
          Cache.open_
            ~on_corrupt:(fun d ->
              Printf.eprintf "rgleak: warning: %s\n%!" (Guard.to_string d))
            ~dir ()
        in
        let used =
          Array.of_list
            (List.sort_uniq compare
               (Array.to_list
                  (Array.map
                     (fun inst -> inst.Netlist.cell_index)
                     placed.Placer.netlist.Netlist.instances)))
        in
        let dstep =
          Estimator_exact.distance_grid ~distance_points placed.Placer.layout
        in
        Some
          (Memo.delta_tables ~cache ~corr:corr_model ~rgcorr ~used
             ~distance_points ~dstep
             ~key_parts:[ "corr=" ^ corr ]
             ())
    in
    let st =
      Delta.create ~distance_points ?cov ?jobs
        ~flavors:(Array.make n start_flavor) ~corr:corr_model ~rgcorr placed
    in
    let r = Optimize.run ~budget st in
    let transition_count from_f to_f =
      List.length
        (List.filter
           (fun m ->
             m.Optimize.mv_from = from_f && m.Optimize.mv_to = to_f)
           r.Optimize.moves)
    in
    let reduction =
      let i = r.Optimize.initial.Delta.exact.Delta.mean in
      if i = 0.0 then 0.0
      else (i -. r.Optimize.final.Delta.exact.Delta.mean) /. i
    in
    Printf.printf "greedy multi-Vt downgrade (%d gates, start %s)\n" n
      (Vt_correction.flavor_name start_flavor);
    Printf.printf "  moves applied  : %d (LVT->SVT %d, LVT->HVT %d, SVT->HVT \
                   %d)\n"
      (List.length r.Optimize.moves)
      (transition_count Vt_correction.Lvt Vt_correction.Svt)
      (transition_count Vt_correction.Lvt Vt_correction.Hvt)
      (transition_count Vt_correction.Svt Vt_correction.Hvt);
    Printf.printf "  budget spent   : %.4g of %.4g\n" r.Optimize.spent
      r.Optimize.budget;
    Printf.printf "  mean leakage   : %.6g -> %.6g nA (-%.2f%%)\n"
      r.Optimize.initial.Delta.exact.Delta.mean
      r.Optimize.final.Delta.exact.Delta.mean
      (100.0 *. reduction);
    Printf.printf "  std deviation  : %.6g -> %.6g nA\n"
      r.Optimize.initial.Delta.exact.Delta.std
      r.Optimize.final.Delta.exact.Delta.std;
    let tier_fields prefix (t : Delta.tier) =
      [
        (prefix ^ "_mean", Vjson.Num t.Delta.mean);
        (prefix ^ "_std", Vjson.Num t.Delta.std);
      ]
    in
    let doc =
      Vjson.Obj
        ([
           ("schema", Vjson.Str Golden_diff.optimize_schema);
           ("n", Vjson.Num (float_of_int n));
           ("corr", Vjson.Str corr);
           ("mix", Vjson.Str mix);
           ("p", Vjson.Num p);
           ("seed", Vjson.Num (float_of_int seed));
           ("start", Vjson.Str (Vt_correction.flavor_name start_flavor));
           ("method", Vjson.Str "greedy-density");
           ("budget", Vjson.Num budget);
           ("spent", Vjson.Num r.Optimize.spent);
           ("swaps", Vjson.Num (float_of_int (List.length r.Optimize.moves)));
           ( "moves_lvt_svt",
             Vjson.Num
               (float_of_int
                  (transition_count Vt_correction.Lvt Vt_correction.Svt)) );
           ( "moves_lvt_hvt",
             Vjson.Num
               (float_of_int
                  (transition_count Vt_correction.Lvt Vt_correction.Hvt)) );
           ( "moves_svt_hvt",
             Vjson.Num
               (float_of_int
                  (transition_count Vt_correction.Svt Vt_correction.Hvt)) );
           ("leakage_reduction", Vjson.Num reduction);
         ]
        @ tier_fields "exact_initial" r.Optimize.initial.Delta.exact
        @ tier_fields "exact_final" r.Optimize.final.Delta.exact
        @ tier_fields "linear_initial" r.Optimize.initial.Delta.linear
        @ tier_fields "linear_final" r.Optimize.final.Delta.linear
        @ tier_fields "integral_initial" r.Optimize.initial.Delta.integral
        @ tier_fields "integral_final" r.Optimize.final.Delta.integral)
    in
    Option.iter
      (fun path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Vjson.to_string ~indent:2 doc));
        Printf.printf "report written to %s\n" path)
      json;
    let golden_ok =
      match golden with
      | None -> true
      | Some path ->
        let baseline =
          try Vjson.parse_file path with
          | Sys_error msg -> Guard.invalid msg
          | Vjson.Parse_error msg ->
            Guard.invalid (Printf.sprintf "bad golden file %s: %s" path msg)
        in
        let diff =
          try Golden_diff.compare_optimize ~baseline ~current:doc
          with Vjson.Parse_error msg ->
            Guard.invalid
              (Printf.sprintf "golden file %s is not an optimize report: %s"
                 path msg)
        in
        Format.printf "%a" Golden_diff.pp diff;
        diff.Golden_diff.severity <> Golden_diff.Breaking
    in
    if not golden_ok then exit 1
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Greedy multi-Vt leakage optimization on the incremental delta \
          estimator: downgrade cells toward slower flavors under a \
          timing-slack proxy budget, each swap re-estimated in O(n) and \
          bit-identical to a cold rebuild")
    Term.(
      const run $ n_arg $ mix_arg $ corr_arg $ p_arg $ budget_arg $ start_arg
      $ seed_arg $ char_arg $ cache_dir_arg $ json_arg $ golden_arg $ jobs_arg
      $ robust_term $ trace_term)

(* ---------- batch ---------- *)

let batch_cmd =
  let module Cache = Rgleak_cache.Cache in
  let module Batch = Rgleak_cache.Batch in
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "JSONL manifest: one scenario object per line (see the rgleak \
             batch section of the README for the fields).  Blank lines and \
             lines starting with # are skipped.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the rgleak-batch/1 JSONL report to $(docv) instead of \
             stdout.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Root of the content-addressed result cache.  Defaults to \
             \\$RGLEAK_CACHE_DIR, then \\$XDG_CACHE_HOME/rgleak, then \
             ~/.cache/rgleak.  Cached and uncached runs are bit-identical; \
             corrupt entries are deleted and recomputed.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the on-disk cache (compute everything in-process).")
  in
  let run manifest_path out cache_dir no_cache jobs ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    let text =
      try
        let ic = open_in_bin manifest_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg -> Guard.invalid msg
    in
    let scenarios = Batch.parse_manifest text in
    let cache =
      if no_cache then None
      else
        let dir =
          match cache_dir with Some d -> d | None -> Cache.default_dir ()
        in
        Some
          (Cache.open_
             ~on_corrupt:(fun d ->
               Printf.eprintf "rgleak: warning: %s\n%!" (Guard.to_string d))
             ~dir ())
    in
    let outcomes = Batch.run ?cache scenarios in
    let report = Batch.report outcomes in
    (match out with
    | None -> print_string report
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc report);
      Printf.eprintf "batch: wrote %d records to %s\n%!"
        (List.length outcomes) path);
    Option.iter
      (fun c ->
        let s = Cache.stats c in
        Printf.eprintf
          "batch: cache %s: %d hits, %d misses, %d corrupt, %d put errors, \
           %d B read, %d B written\n\
           %!"
          (Cache.dir c) s.Cache.hits s.Cache.misses s.Cache.corrupt
          s.Cache.put_errors s.Cache.bytes_read s.Cache.bytes_written)
      cache;
    let code = Batch.exit_code outcomes in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a JSONL manifest of scenarios on one warm pool, memoizing \
          characterization and correlation tables in a content-addressed \
          on-disk cache.  Reports are bit-identical across --jobs values and \
          across cold/warm caches; per-scenario failures become error \
          records and the exit code is the highest failure class.")
    Term.(
      const run $ manifest_arg $ out_arg $ cache_dir_arg $ no_cache_arg
      $ jobs_arg $ robust_term $ trace_term)

(* ---------- report ---------- *)

let report_cmd =
  let module Report = Rgleak_valid.Report in
  let module Vjson = Rgleak_valid.Vjson in
  let ledgers_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"LEDGER"
          ~doc:
            "rgleak-run/1 JSONL ledger files (written by the --ledger flag of \
             any subcommand).  All records from all files are pooled into one \
             window.")
  in
  let metrics_arg =
    Arg.(
      value & opt_all string []
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Also fold a --metrics-json document (rgleak-metrics/1 or /2) \
             into the window.  Repeatable.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the aggregated rgleak-report/1 document to $(docv) ('-' \
             for stdout).")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"BASELEDGER"
          ~doc:
            "Compare the window against a baseline ledger: histogram p50/p99 \
             ratios >= 2x (and cache hit-rate drops >= 0.20) are regressions \
             and exit 1; >= 1.5x ratios warn.")
  in
  let run ledgers metrics json diff ro =
    with_diagnostics ro @@ fun () ->
    if ledgers = [] && metrics = [] then
      Guard.invalid "rgleak report: need at least one LEDGER or --metrics file";
    let parse_ledger path =
      try Report.parse_ledger_file path with
      | Sys_error msg -> Guard.invalid msg
      | Vjson.Parse_error msg ->
        Guard.invalid (Printf.sprintf "%s: %s" path msg)
    in
    let parse_metrics path =
      try Report.parse_metrics_file path with
      | Sys_error msg -> Guard.invalid msg
      | Vjson.Parse_error msg ->
        Guard.invalid (Printf.sprintf "%s: %s" path msg)
    in
    let entries =
      List.concat_map parse_ledger ledgers @ List.map parse_metrics metrics
    in
    let agg = Report.aggregate entries in
    let write_json () =
      Option.iter
        (fun path ->
          let doc = Vjson.to_string ~indent:2 (Report.to_json agg) in
          if path = "-" then print_string doc
          else begin
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc doc);
            Printf.eprintf "report: wrote %s\n%!" path
          end)
        json
    in
    match diff with
    | None ->
      Report.pp stdout agg;
      write_json ()
    | Some base_path ->
      let baseline = Report.aggregate (parse_ledger base_path) in
      let findings = Report.diff ~baseline ~current:agg in
      Report.pp_diff stdout findings;
      write_json ();
      if Report.has_regression findings then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate run ledgers and metrics files into service-level fleet \
          telemetry: QPS, latency quantiles per tier (recomputed exactly from \
          pooled histogram buckets), cache hit rate, and exit-class counts; \
          --diff attributes latency and hit-rate regressions between two \
          windows.")
    Term.(
      const run $ ledgers_arg $ metrics_arg $ json_arg $ diff_arg
      $ robust_term)

(* ---------- serve / client ---------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the estimation daemon.")

let serve_cmd =
  let module Cache = Rgleak_cache.Cache in
  let module Serve = Rgleak_serve.Serve in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission cap: estimate requests arriving while $(docv) are \
             already queued are rejected with code 5 (server overloaded).  0 \
             rejects every estimate.")
  in
  let shed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shed-threshold" ] ~docv:"N"
          ~doc:
            "Load shedding: a request dequeued while at least $(docv) others \
             still wait runs its exact/mc-tier scenarios on the O(1) integral \
             tier instead, marking the records \"degraded\": true.  Default: \
             never shed.")
  in
  let cache_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-cap" ] ~docv:"BYTES"
          ~doc:
            "LRU size cap on the shared result cache: after each write the \
             coldest entries are evicted until total on-disk bytes fit.  \
             Default: unbounded.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Root of the shared content-addressed result cache.  Defaults to \
             \\$RGLEAK_CACHE_DIR, then \\$XDG_CACHE_HOME/rgleak, then \
             ~/.cache/rgleak.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the on-disk cache (compute everything in-process).")
  in
  let run socket_path max_queue shed_threshold cache_cap cache_dir no_cache
      jobs ro tr =
    with_diagnostics ro @@ fun () ->
    apply_jobs jobs;
    with_telemetry tr @@ fun () ->
    if max_queue < 0 then Guard.invalid "--max-queue must be >= 0";
    Option.iter
      (fun t -> if t < 0 then Guard.invalid "--shed-threshold must be >= 0")
      shed_threshold;
    Option.iter
      (fun b -> if b < 0 then Guard.invalid "--cache-cap must be >= 0")
      cache_cap;
    let cache =
      if no_cache then None
      else
        let dir =
          match cache_dir with Some d -> d | None -> Cache.default_dir ()
        in
        Some
          (Cache.open_
             ~on_corrupt:(fun d ->
               Printf.eprintf "rgleak: warning: %s\n%!" (Guard.to_string d))
             ?cap_bytes:cache_cap ~dir ())
    in
    Serve.run
      ~on_listen:(fun () ->
        Printf.eprintf "serve: listening on %s (max queue %d%s)\n%!"
          socket_path max_queue
          (match shed_threshold with
          | None -> ""
          | Some t -> Printf.sprintf ", shed threshold %d" t))
      { Serve.socket_path; max_queue; shed_threshold; cache };
    Printf.eprintf "serve: drained, exiting\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent estimation daemon on a Unix-domain socket: \
          length-prefixed rgleak-serve/1 requests (single scenarios or inline \
          manifests with the batch fields), fair round-robin admission onto \
          one warm pool and one shared LRU-capped cache, load shedding to the \
          integral tier under queue pressure, and a graceful SIGTERM drain \
          that flushes in-flight responses (and the run ledger, with \
          --ledger).  Responses are byte-identical to rgleak batch records \
          for the same manifest lines.")
    Term.(
      const run $ socket_arg $ max_queue_arg $ shed_arg $ cache_cap_arg
      $ cache_dir_arg $ no_cache_arg $ jobs_arg $ robust_term $ trace_term)

let client_cmd =
  let module Protocol = Rgleak_serve.Protocol in
  let module Client = Rgleak_serve.Client in
  let manifest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Send the JSONL manifest (same fields as rgleak batch; $(b,-) \
             reads stdin) as one estimate request and print the scenario \
             records.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the daemon's rgleak-serve-stats/1 JSON object.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Check the daemon is answering.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the daemon to drain in-flight requests and exit.")
  in
  let wait_arg =
    Arg.(
      value & opt float 0.0
      & info [ "wait" ] ~docv:"SECS"
          ~doc:
            "Retry until the daemon answers a ping or $(docv) elapse before \
             sending the request — the startup barrier for scripts.")
  in
  let run socket manifest stats ping shutdown wait ro =
    with_diagnostics ro @@ fun () ->
    let op, body =
      match (manifest, stats, ping, shutdown) with
      | Some path, false, false, false ->
        let text =
          try
            if path = "-" then In_channel.input_all In_channel.stdin
            else
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
          with Sys_error msg -> Guard.invalid msg
        in
        (Protocol.Estimate, text)
      | None, true, false, false -> (Protocol.Stats, "")
      | None, false, true, false -> (Protocol.Ping, "")
      | None, false, false, true -> (Protocol.Shutdown, "")
      | None, false, false, false ->
        Guard.invalid "pick one of --manifest, --stats, --ping, --shutdown"
      | _ ->
        Guard.invalid
          "--manifest, --stats, --ping and --shutdown are mutually exclusive"
    in
    if wait > 0.0 && not (Client.wait_ready ~socket ~timeout_s:wait) then
      Guard.invalid
        (Printf.sprintf "daemon on %s not ready after %gs" socket wait);
    match Client.request ~socket ~op ~body () with
    | Error msg -> Guard.invalid msg
    | Ok resp ->
      (match resp.Protocol.status with
      | Protocol.Ok -> print_string resp.Protocol.payload
      | Protocol.Error ->
        Printf.eprintf "rgleak: server: %s%!" resp.Protocol.payload);
      if resp.Protocol.code <> 0 then exit resp.Protocol.code
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running rgleak serve daemon: send a manifest for \
          estimation (records print to stdout, byte-identical to rgleak \
          batch), fetch serve stats, ping, or request a graceful shutdown.  \
          Exits with the response code: 0 ok, 2/3/4 the diagnostic classes, \
          5 server overloaded.")
    Term.(
      const run $ socket_arg $ manifest_arg $ stats_arg $ ping_arg
      $ shutdown_arg $ wait_arg $ robust_term)

let () =
  let info =
    Cmd.info "rgleak" ~version:"1.0.0"
      ~doc:
        "Statistical full-chip leakage estimation with within-die correlation \
         (Heloue, Azizi, Najm, DAC 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ cells_cmd; characterize_cmd; estimate_cmd; signoff_cmd; yield_cmd;
            sensitivity_cmd; corners_cmd; profile_cmd; map_cmd; sleep_cmd;
            convert_cmd; validate_cmd; tail_cmd; optimize_cmd; batch_cmd;
            report_cmd; serve_cmd; client_cmd ]))
