open Rgleak_num
open Rgleak_cells
open Testutil

(* A representative fitted triplet (NAND-like): decreasing, mildly
   convex leakage-vs-L in log space. *)
let tr = Mgf.triplet ~a:2000.0 ~b:(-0.09) ~c:0.0002
let mu = 90.0
let sigma = 4.24

let mc_moments ?(samples = 400_000) t ~seed =
  let rng = Rng.create ~seed () in
  let acc = Stats.Acc.create () in
  for _ = 1 to samples do
    let l = Rng.gaussian_mu_sigma rng ~mu ~sigma in
    Stats.Acc.add acc (t.Mgf.a *. exp ((t.Mgf.b *. l) +. (t.Mgf.c *. l *. l)))
  done;
  (Stats.Acc.mean acc, Stats.Acc.std acc)

let test_mean_vs_mc () =
  let m_mc, _ = mc_moments tr ~seed:101 in
  check_rel ~tol:0.01 "closed-form mean vs MC" m_mc (Mgf.mean tr ~mu ~sigma)

let test_std_vs_mc () =
  let _, s_mc = mc_moments tr ~seed:102 in
  check_rel ~tol:0.02 "closed-form std vs MC" s_mc (Mgf.std tr ~mu ~sigma)

let test_lognormal_limit () =
  (* c = 0: X is lognormal with ln X ~ N(ln a + b mu, b^2 sigma^2) *)
  let t0 = Mgf.triplet ~a:100.0 ~b:(-0.08) ~c:0.0 in
  let m = log 100.0 -. (0.08 *. mu) in
  let s = 0.08 *. sigma in
  check_rel ~tol:1e-12 "lognormal mean" (exp (m +. (s *. s /. 2.0)))
    (Mgf.mean t0 ~mu ~sigma);
  let var = (exp (s *. s) -. 1.0) *. exp ((2.0 *. m) +. (s *. s)) in
  check_rel ~tol:1e-12 "lognormal variance" var (Mgf.variance t0 ~mu ~sigma)

let test_k_params_paper_form () =
  (* K1 = c sigma^2, K2 = (mu + b/(2c))/sigma, K3 = ln a - b^2/(4c);
     and M_Y(t) from (K1,K2,K3) must equal the centered implementation *)
  let k1, k2, k3 = Mgf.k_params tr ~mu ~sigma in
  check_rel ~tol:1e-12 "K1" (tr.Mgf.c *. sigma *. sigma) k1;
  check_rel ~tol:1e-12 "K2" ((mu +. (tr.Mgf.b /. (2.0 *. tr.Mgf.c))) /. sigma) k2;
  check_rel ~tol:1e-9 "K3"
    (log tr.Mgf.a -. (tr.Mgf.b *. tr.Mgf.b /. (4.0 *. tr.Mgf.c)))
    k3;
  let paper_mgf t =
    (* Eq. 3 with the corrected -1/2 exponent *)
    exp ((k1 *. k2 *. k2 *. t /. (1.0 -. (2.0 *. k1 *. t))) +. (k3 *. t))
    /. sqrt (1.0 -. (2.0 *. k1 *. t))
  in
  check_rel ~tol:1e-9 "M_Y(1) matches Eq. 3 (corrected)" (paper_mgf 1.0)
    (Mgf.mgf_log tr ~mu ~sigma 1.0);
  check_rel ~tol:1e-9 "M_Y(2) matches Eq. 3 (corrected)" (paper_mgf 2.0)
    (Mgf.mgf_log tr ~mu ~sigma 2.0)

let test_divergence () =
  (* strongly convex curvature: second moment diverges *)
  let bad = Mgf.triplet ~a:1.0 ~b:0.0 ~c:0.02 in
  (* 2 * t * c * sigma^2 = 2*2*0.02*17.98 = 1.44 > 1 at t = 2 *)
  check_true "divergent second moment detected"
    (try
       ignore (Mgf.variance bad ~mu ~sigma);
       false
     with Mgf.Divergent -> true)

let test_triplet_validation () =
  Alcotest.check_raises "non-positive a rejected"
    (Invalid_argument "Mgf.triplet: a must be positive") (fun () ->
      ignore (Mgf.triplet ~a:0.0 ~b:1.0 ~c:0.0))

let tr2 = Mgf.triplet ~a:500.0 ~b:(-0.11) ~c:0.0004

let test_pair_rho_zero () =
  check_close ~tol:1e-9 "independent gates have zero covariance" 0.0
    (Mgf.pair_covariance tr tr2 ~mu ~sigma ~rho:0.0 /. 1e3)

let test_pair_rho_one_same_gate () =
  (* identical gates at rho = 1: covariance = variance *)
  check_rel ~tol:1e-9 "cov at rho 1 equals variance"
    (Mgf.variance tr ~mu ~sigma)
    (Mgf.pair_covariance tr tr ~mu ~sigma ~rho:1.0)

let test_pair_symmetry =
  qcheck ~count:200 "pair covariance is symmetric"
    QCheck2.Gen.(float_range 0.0 1.0)
    (fun rho ->
      let c1 = Mgf.pair_covariance tr tr2 ~mu ~sigma ~rho in
      let c2 = Mgf.pair_covariance tr2 tr ~mu ~sigma ~rho in
      Float.abs (c1 -. c2) < 1e-9 *. Float.max 1.0 (Float.abs c1))

let test_pair_monotone_in_rho () =
  (* both gates leak more at short L, so covariance grows with rho *)
  let prev = ref neg_infinity in
  for k = 0 to 10 do
    let rho = float_of_int k /. 10.0 in
    let c = Mgf.pair_covariance tr tr2 ~mu ~sigma ~rho in
    check_true "covariance increases with rho" (c > !prev);
    prev := c
  done

let test_pair_correlation_bounds =
  qcheck ~count:200 "leakage correlation within [0, 1]"
    QCheck2.Gen.(float_range 0.0 1.0)
    (fun rho ->
      let r = Mgf.pair_correlation tr tr2 ~mu ~sigma ~rho in
      r >= -1e-9 && r <= 1.0 +. 1e-9)

let test_pair_correlation_near_identity () =
  (* the Fig. 2 observation: f_{m,n} hugs the y = x line *)
  List.iter
    (fun rho ->
      let r = Mgf.pair_correlation tr tr2 ~mu ~sigma ~rho in
      check_in_range
        (Printf.sprintf "f(%.1f) near identity" rho)
        ~lo:(rho -. 0.08) ~hi:(rho +. 0.02) r)
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_pair_vs_mc () =
  let rho = 0.6 in
  let analytic = Mgf.pair_covariance tr tr2 ~mu ~sigma ~rho in
  let rng = Rng.create ~seed:103 () in
  let acc = Stats.Cov_acc.create () in
  for _ = 1 to 400_000 do
    let z1 = Rng.gaussian rng in
    let z2 = (rho *. z1) +. (sqrt (1.0 -. (rho *. rho)) *. Rng.gaussian rng) in
    let l1 = mu +. (sigma *. z1) and l2 = mu +. (sigma *. z2) in
    let x1 = tr.Mgf.a *. exp ((tr.Mgf.b *. l1) +. (tr.Mgf.c *. l1 *. l1)) in
    let x2 = tr2.Mgf.a *. exp ((tr2.Mgf.b *. l2) +. (tr2.Mgf.c *. l2 *. l2)) in
    Stats.Cov_acc.add acc x1 x2
  done;
  check_rel ~tol:0.03 "pair covariance vs MC" (Stats.Cov_acc.covariance acc)
    analytic

let test_centered_consistency =
  qcheck ~count:200 "centered form reproduces ln X"
    QCheck2.Gen.(float_range 70.0 110.0)
    (fun l ->
      let k0, beta = Mgf.centered tr ~mu in
      let delta = l -. mu in
      let direct = log tr.Mgf.a +. (tr.Mgf.b *. l) +. (tr.Mgf.c *. l *. l) in
      let via = k0 +. (beta *. delta) +. (tr.Mgf.c *. delta *. delta) in
      Float.abs (direct -. via) < 1e-9)

let suite =
  ( "mgf",
    [
      case "mean vs monte carlo" test_mean_vs_mc;
      case "std vs monte carlo" test_std_vs_mc;
      case "lognormal limit (c = 0)" test_lognormal_limit;
      case "paper K-parameters and Eq. 3" test_k_params_paper_form;
      case "divergence detection" test_divergence;
      case "triplet validation" test_triplet_validation;
      case "zero rho, zero covariance" test_pair_rho_zero;
      case "rho 1 gives variance" test_pair_rho_one_same_gate;
      test_pair_symmetry;
      case "covariance monotone in rho" test_pair_monotone_in_rho;
      test_pair_correlation_bounds;
      case "correlation near identity (Fig 2)" test_pair_correlation_near_identity;
      case "pair covariance vs MC" test_pair_vs_mc;
      test_centered_consistency;
    ] )
