open Rgleak_num
open Testutil

let test_determinism () =
  let a = Rng.create ~seed:123 () and b = Rng.create ~seed:123 () in
  for i = 1 to 100 do
    check_close
      (Printf.sprintf "stream position %d" i)
      (Rng.uniform a) (Rng.uniform b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_true "different seeds give different streams" (!same < 4)

let test_copy_independent () =
  let a = Rng.create ~seed:9 () in
  ignore (Rng.uniform a);
  let b = Rng.copy a in
  let xa = Rng.uniform a in
  let xb = Rng.uniform b in
  check_close "copy continues from the same state" xa xb;
  (* advancing a further must not affect b *)
  ignore (Rng.uniform a);
  let xa2 = Rng.uniform a and xb2 = Rng.uniform b in
  check_true "copies diverge independently" (xa2 <> xb2 || xa2 = xb2)

let test_uniform_range () =
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 10_000 do
    let u = Rng.uniform rng in
    check_in_range "uniform in [0,1)" ~lo:0.0 ~hi:0.9999999999999999 u
  done

let test_uniform_moments () =
  let rng = Rng.create ~seed:6 () in
  let acc = Stats.Acc.create () in
  for _ = 1 to 200_000 do
    Stats.Acc.add acc (Rng.uniform rng)
  done;
  check_rel ~tol:0.01 "uniform mean 1/2" 0.5 (Stats.Acc.mean acc);
  check_rel ~tol:0.02 "uniform variance 1/12" (1.0 /. 12.0)
    (Stats.Acc.variance acc)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:7 () in
  let acc = Stats.Acc.create () in
  for _ = 1 to 200_000 do
    Stats.Acc.add acc (Rng.gaussian rng)
  done;
  check_close ~tol:0.02 "gaussian mean 0" 0.0 (Stats.Acc.mean acc);
  check_rel ~tol:0.02 "gaussian variance 1" 1.0 (Stats.Acc.variance acc)

let test_gaussian_tails () =
  (* about 4.55% of mass beyond 2 sigma *)
  let rng = Rng.create ~seed:8 () in
  let beyond = ref 0 in
  let total = 100_000 in
  for _ = 1 to total do
    if Float.abs (Rng.gaussian rng) > 2.0 then incr beyond
  done;
  let frac = float_of_int !beyond /. float_of_int total in
  check_in_range "two-sigma tail mass" ~lo:0.040 ~hi:0.051 frac

let test_gaussian_mu_sigma () =
  let rng = Rng.create ~seed:9 () in
  let acc = Stats.Acc.create () in
  for _ = 1 to 100_000 do
    Stats.Acc.add acc (Rng.gaussian_mu_sigma rng ~mu:90.0 ~sigma:4.0)
  done;
  check_rel ~tol:0.002 "shifted mean" 90.0 (Stats.Acc.mean acc);
  check_rel ~tol:0.03 "shifted std" 4.0 (Stats.Acc.std acc)

let test_int_bounds () =
  let rng = Rng.create ~seed:10 () in
  for _ = 1 to 10_000 do
    let k = Rng.int rng 7 in
    check_true "int in bounds" (k >= 0 && k < 7)
  done;
  Alcotest.check_raises "int rejects non-positive bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create ~seed:11 () in
  let counts = Array.make 5 0 in
  let total = 100_000 in
  for _ = 1 to total do
    let k = Rng.int rng 5 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      check_in_range
        (Printf.sprintf "bucket %d near 20%%" i)
        ~lo:0.19 ~hi:0.21
        (float_of_int c /. float_of_int total))
    counts

let test_split_differs () =
  let parent = Rng.create ~seed:12 () in
  let child = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr matches
  done;
  check_true "split stream differs from parent" (!matches < 4)

let test_shuffle_is_permutation =
  qcheck ~count:200 "shuffle preserves multiset"
    QCheck2.Gen.(list_size (int_range 0 50) int)
    (fun xs ->
      let a = Array.of_list xs in
      let rng = Rng.create ~seed:(Hashtbl.hash xs) () in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_float_scales () =
  let rng = Rng.create ~seed:13 () in
  for _ = 1 to 1000 do
    let x = Rng.float rng 42.0 in
    check_in_range "scaled uniform" ~lo:0.0 ~hi:42.0 x
  done

let suite =
  ( "rng",
    [
      case "determinism" test_determinism;
      case "seed sensitivity" test_seed_sensitivity;
      case "copy independence" test_copy_independent;
      case "uniform range" test_uniform_range;
      case "uniform moments" test_uniform_moments;
      case "gaussian moments" test_gaussian_moments;
      case "gaussian tails" test_gaussian_tails;
      case "gaussian mu sigma" test_gaussian_mu_sigma;
      case "int bounds" test_int_bounds;
      case "int uniformity" test_int_uniformity;
      case "split differs" test_split_differs;
      test_shuffle_is_permutation;
      case "float scaling" test_float_scales;
    ] )
