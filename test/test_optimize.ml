(* Greedy multi-Vt optimizer: monotone descent, determinism, budget
   accounting, typed diagnostics, and the optimize golden comparator. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil
module Vjson = Rgleak_valid.Vjson
module Golden_diff = Rgleak_valid.Golden_diff
module Obs = Rgleak_obs.Obs

let param = Process_param.default_channel_length

let chars =
  lazy
    (let rng = Rng.create ~seed:88 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:49 ~mc_samples:1000 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let hist_small =
  lazy
    (Histogram.of_weights
       [ ("NAND2_X1", 3.0); ("INV_X1", 2.0); ("NOR2_X1", 1.0); ("DFF_X1", 1.0) ])

let rgcorr =
  lazy
    (let rg =
       Random_gate.create ~chars:(Lazy.force chars)
         ~histogram:(Lazy.force hist_small) ~p:0.5 ()
     in
     Rg_correlation.create ~chars:(Lazy.force chars) ~rg ~p:0.5 ())

let bits = Int64.bits_of_float

let check_result_bits name (a : Delta.result) (b : Delta.result) =
  let tier tn (x : Delta.tier) (y : Delta.tier) =
    if
      bits x.Delta.mean <> bits y.Delta.mean
      || bits x.Delta.variance <> bits y.Delta.variance
    then
      Alcotest.failf "%s [%s]: results differ bitwise (%.17g vs %.17g)" name tn
        x.Delta.mean y.Delta.mean
  in
  tier "exact" a.Delta.exact b.Delta.exact;
  tier "linear" a.Delta.linear b.Delta.linear;
  tier "integral" a.Delta.integral b.Delta.integral

(* All cells start LVT: the richest candidate set (both LVT→SVT and
   LVT→HVT chains live). *)
let make_state ?jobs ?(flavor = Vt_correction.Lvt) ~n ~seed () =
  let rng = Rng.create ~seed () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist_small) ~n ~rng ()
  in
  Delta.create ?jobs ~distance_points:128 ~flavors:(Array.make n flavor)
    ~corr ~rgcorr:(Lazy.force rgcorr) placed

let test_monotone_descent () =
  let st0 = make_state ~n:40 ~seed:17 () in
  let r = Optimize.run ~budget:3.0 st0 in
  check_true "some moves applied" (List.length r.Optimize.moves > 0);
  check_true "budget respected" (r.Optimize.spent <= r.Optimize.budget);
  let cost_sum =
    List.fold_left (fun s m -> s +. m.Optimize.mv_cost) 0.0 r.Optimize.moves
  in
  check_close ~tol:1e-12 "spent equals sum of move costs" cost_sum
    r.Optimize.spent;
  List.iter
    (fun m ->
      check_true "gain positive" (m.Optimize.mv_gain > 0.0);
      check_true "cost positive" (m.Optimize.mv_cost > 0.0))
    r.Optimize.moves;
  (* Replay the move log from the initial state: the exact-tier mean
     must strictly decrease at every step, and the replay must land on
     the reported final result bit for bit. *)
  let st = ref st0 in
  let mean = ref r.Optimize.initial.Delta.exact.Delta.mean in
  let last = ref r.Optimize.initial in
  List.iter
    (fun m ->
      check_true "move starts from the cell's current flavor"
        (Delta.flavor_of !st m.Optimize.mv_cell = m.Optimize.mv_from);
      let st', r' =
        Delta.apply_swap !st ~cell:m.Optimize.mv_cell ~flavor:m.Optimize.mv_to
      in
      st := st';
      last := r';
      let mean' = r'.Delta.exact.Delta.mean in
      check_true "exact mean strictly decreases" (mean' < !mean);
      mean := mean')
    r.Optimize.moves;
  check_result_bits "replayed final == reported final" !last r.Optimize.final

let test_determinism () =
  let run jobs =
    let st = make_state ?jobs ~n:35 ~seed:23 () in
    Optimize.run ~budget:2.5 st
  in
  let a = run None and b = run None in
  check_true "rerun produces the identical move list"
    (a.Optimize.moves = b.Optimize.moves);
  check_result_bits "rerun final bitwise" a.Optimize.final b.Optimize.final;
  let p1 = run (Some 1) and p4 = run (Some 4) in
  check_true "jobs 1 vs 4: identical move list"
    (p1.Optimize.moves = p4.Optimize.moves);
  check_result_bits "jobs 1 vs 4 final bitwise" p1.Optimize.final
    p4.Optimize.final

let test_budget_exhaustion () =
  let st = make_state ~n:25 ~seed:31 () in
  (* Cheapest possible move costs delay_factor(Svt) - delay_factor(Lvt)
     = 0.15, so a 0.05 budget affords nothing: normal termination. *)
  let r = Optimize.run ~budget:0.05 st in
  check_true "no moves under a starvation budget" (r.Optimize.moves = []);
  check_true "nothing spent" (r.Optimize.spent = 0.0);
  check_result_bits "final == initial" r.Optimize.initial r.Optimize.final

let test_empty_candidates_guard () =
  (* Every cell already at the slowest flavor: no downgrade exists. *)
  let st = make_state ~flavor:Vt_correction.Hvt ~n:10 ~seed:41 () in
  match Optimize.run ~budget:1.0 st with
  | _ -> Alcotest.fail "all-HVT state must have no candidates"
  | exception Guard.Error (Guard.Invalid_input _) -> ()

let test_invalid_budget_guard () =
  let st = make_state ~n:12 ~seed:2 () in
  let expect_invalid b =
    match Optimize.run ~budget:b st with
    | _ -> Alcotest.failf "budget %g must be rejected" b
    | exception Guard.Error (Guard.Invalid_input _) -> ()
  in
  expect_invalid 0.0;
  expect_invalid (-1.0);
  expect_invalid Float.nan;
  expect_invalid Float.infinity

let test_telemetry () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let st = make_state ~n:20 ~seed:5 () in
  let r = Optimize.run ~budget:2.0 st in
  let counters = (Obs.snapshot ()).Obs.counters in
  let applied = List.length r.Optimize.moves in
  check_true "opt.swaps matches applied moves"
    (List.assoc "opt.swaps" counters = applied);
  check_true "opt.delta_calls counted"
    (List.assoc "opt.delta_calls" counters >= applied);
  check_true "opt.candidates counted"
    (List.assoc "opt.candidates" counters > 0)

(* ---- the optimize golden comparator ---- *)

let optimize_doc ?(schema = "rgleak-optimize/1") ?(n = 40.0) ?(spent = 1.2)
    ?(corr = "spherical") () =
  Vjson.Obj
    [
      ("schema", Vjson.Str schema);
      ("corr", Vjson.Str corr);
      ("n", Vjson.Num n);
      ("budget", Vjson.Num 2.0);
      ("spent", Vjson.Num spent);
      ("swaps", Vjson.Num 17.0);
      ("exact_mean_initial", Vjson.Num 3.25e-6);
      ("exact_mean_final", Vjson.Num 1.75e-6);
      ("deterministic", Vjson.Bool true);
    ]

let test_golden_optimize_identical () =
  let doc = optimize_doc () in
  let d = Golden_diff.compare_document ~baseline:doc ~current:doc in
  check_true "self-compare is identical"
    (d.Golden_diff.severity = Golden_diff.Identical)

let test_golden_optimize_benign_epsilon () =
  let base = optimize_doc ~spent:1.2 () in
  let cur = optimize_doc ~spent:(1.2 *. (1.0 +. 1e-13)) () in
  let d = Golden_diff.compare_document ~baseline:base ~current:cur in
  check_true "sub-epsilon numeric drift is benign"
    (d.Golden_diff.severity = Golden_diff.Benign)

let test_golden_optimize_breaking () =
  let base = optimize_doc () in
  (* Numeric drift beyond the fallback epsilon. *)
  let d =
    Golden_diff.compare_document ~baseline:base
      ~current:(optimize_doc ~spent:1.35 ())
  in
  check_true "numeric drift is breaking"
    (d.Golden_diff.severity = Golden_diff.Breaking);
  (* String change. *)
  let d =
    Golden_diff.compare_document ~baseline:base
      ~current:(optimize_doc ~corr:"grid" ())
  in
  check_true "scenario string change is breaking"
    (d.Golden_diff.severity = Golden_diff.Breaking);
  (* Field presence change. *)
  let dropped =
    match base with
    | Vjson.Obj kvs ->
      Vjson.Obj (List.filter (fun (k, _) -> k <> "swaps") kvs)
    | j -> j
  in
  let d = Golden_diff.compare_document ~baseline:base ~current:dropped in
  check_true "dropped field is breaking"
    (d.Golden_diff.severity = Golden_diff.Breaking)

let suite =
  ( "optimize",
    [
      Alcotest.test_case "monotone descent + exact replay" `Quick
        test_monotone_descent;
      Alcotest.test_case "determinism across reruns and job counts" `Quick
        test_determinism;
      Alcotest.test_case "budget exhaustion is normal termination" `Quick
        test_budget_exhaustion;
      Alcotest.test_case "empty candidate set raises Invalid_input" `Quick
        test_empty_candidates_guard;
      Alcotest.test_case "invalid budgets raise Invalid_input" `Quick
        test_invalid_budget_guard;
      Alcotest.test_case "telemetry counters" `Quick test_telemetry;
      Alcotest.test_case "golden: self-compare identical" `Quick
        test_golden_optimize_identical;
      Alcotest.test_case "golden: sub-epsilon drift benign" `Quick
        test_golden_optimize_benign_epsilon;
      Alcotest.test_case "golden: structural/numeric drift breaking" `Quick
        test_golden_optimize_breaking;
    ] )
