open Rgleak_num
open Testutil

let test_pure_gaussian () =
  (* E[exp(b z)] for z ~ N(0, s2) is exp(b^2 s2 / 2) *)
  check_rel ~tol:1e-12 "linear exponent 1d" (exp (2.0 *. 2.0 *. 0.25 /. 2.0))
    (Quadform.expectation_exp_1d ~sigma2:0.25 ~a:0.0 ~b:2.0 ~c:0.0)

let test_chi_square () =
  (* E[exp(a z^2)] for z ~ N(0,1) is (1 - 2a)^{-1/2} *)
  check_rel ~tol:1e-12 "chi-square mgf" (1.0 /. sqrt (1.0 -. 0.4))
    (Quadform.expectation_exp_1d ~sigma2:1.0 ~a:0.2 ~b:0.0 ~c:0.0)

let test_divergence () =
  check_true "a sigma2 >= 1/2 diverges"
    (try
       ignore (Quadform.expectation_exp_1d ~sigma2:1.0 ~a:0.5 ~b:0.0 ~c:0.0);
       false
     with Quadform.Divergent -> true)

let test_general_matches_1d =
  qcheck ~count:300 "n=1 general case matches the scalar formula"
    QCheck2.Gen.(
      tup4 (float_range 0.01 1.0) (float_range (-0.4) 0.4)
        (float_range (-2.0) 2.0) (float_range (-1.0) 1.0))
    (fun (sigma2, a, b, c) ->
      if 2.0 *. a *. sigma2 >= 1.0 then true
      else begin
        let general =
          Quadform.expectation_exp
            ~sigma:(Matrix.of_arrays [| [| sigma2 |] |])
            ~a:(Matrix.of_arrays [| [| a |] |])
            ~b:[| b |] ~c
        in
        let scalar = Quadform.expectation_exp_1d ~sigma2 ~a ~b ~c in
        Float.abs (general -. scalar) < 1e-9 *. Float.max 1.0 scalar
      end)

let test_2d_independent_factorizes =
  qcheck ~count:300 "independent 2d factorizes into 1d product"
    QCheck2.Gen.(
      tup4 (float_range 0.01 0.5) (float_range (-0.3) 0.3)
        (float_range (-1.0) 1.0) (float_range (-0.3) 0.3))
    (fun (s2, a1, b1, a2) ->
      if (2.0 *. a1 *. s2 >= 1.0) || (2.0 *. a2 *. s2 >= 1.0) then true
      else begin
        let joint =
          Quadform.expectation_exp_2d ~var1:s2 ~var2:s2 ~cov:0.0 ~a11:a1
            ~a22:a2 ~a12:0.0 ~b1 ~b2:0.7 ~c:0.1
        in
        let p1 = Quadform.expectation_exp_1d ~sigma2:s2 ~a:a1 ~b:b1 ~c:0.1 in
        let p2 = Quadform.expectation_exp_1d ~sigma2:s2 ~a:a2 ~b:0.7 ~c:0.0 in
        Float.abs (joint -. (p1 *. p2)) < 1e-9 *. Float.max 1.0 (p1 *. p2)
      end)

let test_2d_perfect_correlation () =
  (* with cov = sqrt(var1 var2), z2 = z1 scaled: reduces to 1d *)
  let s = 0.3 in
  let joint =
    Quadform.expectation_exp_2d ~var1:(s *. s) ~var2:(s *. s) ~cov:(s *. s)
      ~a11:0.1 ~a22:0.2 ~a12:0.0 ~b1:0.5 ~b2:(-0.3) ~c:0.0
  in
  (* z1 = z2 = z: exponent = (0.1 + 0.2 + 2*0) z^2 + (0.5 - 0.3) z *)
  let direct =
    Quadform.expectation_exp_1d ~sigma2:(s *. s) ~a:0.3 ~b:0.2 ~c:0.0
  in
  check_rel ~tol:1e-9 "perfectly correlated pair collapses" direct joint

let test_2d_vs_monte_carlo () =
  let var1 = 0.09 and var2 = 0.04 and cov = 0.03 in
  let a11 = 0.4 and a22 = -0.2 and a12 = 0.15 in
  let b1 = -0.8 and b2 = 0.5 and c = 0.2 in
  let analytic =
    Quadform.expectation_exp_2d ~var1 ~var2 ~cov ~a11 ~a22 ~a12 ~b1 ~b2 ~c
  in
  let rng = Rng.create ~seed:31 () in
  let s1 = sqrt var1 in
  let acc = Stats.Acc.create () in
  for _ = 1 to 400_000 do
    let z1 = s1 *. Rng.gaussian rng in
    (* conditional: z2 | z1 ~ N(cov/var1 z1, var2 - cov^2/var1) *)
    let mu2 = cov /. var1 *. z1 in
    let s2c = sqrt (var2 -. (cov *. cov /. var1)) in
    let z2 = mu2 +. (s2c *. Rng.gaussian rng) in
    Stats.Acc.add acc
      (exp
         ((a11 *. z1 *. z1) +. (a22 *. z2 *. z2) +. (2.0 *. a12 *. z1 *. z2)
         +. (b1 *. z1) +. (b2 *. z2) +. c))
  done;
  check_rel ~tol:0.02 "2d quadform vs monte carlo" analytic (Stats.Acc.mean acc)

let test_semidefinite_sigma () =
  (* zero-variance component must behave as a constant *)
  let e =
    Quadform.expectation_exp_2d ~var1:0.04 ~var2:0.0 ~cov:0.0 ~a11:0.1
      ~a22:5.0 ~a12:0.0 ~b1:0.3 ~b2:100.0 ~c:0.0
  in
  let direct = Quadform.expectation_exp_1d ~sigma2:0.04 ~a:0.1 ~b:0.3 ~c:0.0 in
  check_rel ~tol:1e-9 "degenerate component ignored" direct e

let suite =
  ( "quadform",
    [
      case "pure gaussian exponent" test_pure_gaussian;
      case "chi-square mgf" test_chi_square;
      case "divergence detection" test_divergence;
      test_general_matches_1d;
      test_2d_independent_factorizes;
      case "perfect correlation collapse" test_2d_perfect_correlation;
      case "2d vs monte carlo" test_2d_vs_monte_carlo;
      case "semidefinite sigma" test_semidefinite_sigma;
    ] )
