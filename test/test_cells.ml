open Rgleak_cells
open Rgleak_device
open Testutil

let env = Mosfet.default_env

let test_library_size () =
  check_close "62 cells as in the paper" 62.0 (float_of_int Library.size)

let test_unique_names () =
  let names = Library.names () in
  check_close "names unique"
    (float_of_int (List.length names))
    (float_of_int (List.length (List.sort_uniq compare names)))

let test_find_and_index () =
  let inv = Library.find "INV_X1" in
  check_true "find returns the right cell" (inv.Cell.name = "INV_X1");
  check_true "index round-trips"
    (Library.cells.(Library.index_of "NAND2_X1").Cell.name = "NAND2_X1");
  check_true "unknown raises Not_found"
    (try
       ignore (Library.find "NOPE_X9");
       false
     with Not_found -> true)

let test_all_states_evaluable () =
  Array.iter
    (fun cell ->
      Array.iter
        (fun state ->
          let i = Cell.leakage ~env cell state in
          check_true (cell.Cell.name ^ " state leakage positive") (i > 0.0);
          check_true (cell.Cell.name ^ " state leakage finite") (Float.is_finite i))
        (Cell.states cell))
    Library.cells

let test_leakage_decreases_with_length () =
  Array.iter
    (fun cell ->
      let state = Cell.state_of_index cell 0 in
      let short = Cell.leakage ~l_nm:80.0 ~env cell state in
      let long = Cell.leakage ~l_nm:100.0 ~env cell state in
      check_true (cell.Cell.name ^ " leakage decreases with L") (short > long))
    Library.cells

let test_inverter_states () =
  let inv = Library.find "INV_X1" in
  let i_low = Cell.leakage ~env inv [| false |] in
  let i_high = Cell.leakage ~env inv [| true |] in
  (* input low -> output high -> NMOS blocks with vdd across it; with
     our device calibration NMOS leaks more than the wider PMOS *)
  check_true "both states leak" (i_low > 0.0 && i_high > 0.0);
  check_true "states differ" (Float.abs (i_low -. i_high) > 1e-6)

let test_drive_scaling () =
  let x1 = Library.find "INV_X1" and x4 = Library.find "INV_X4" in
  let r0 =
    Cell.leakage ~env x4 [| false |] /. Cell.leakage ~env x1 [| false |]
  in
  check_rel ~tol:1e-6 "INV_X4 leaks 4x INV_X1" 4.0 r0

let test_nand_stack_vs_inv () =
  let nand = Library.find "NAND2_X1" in
  let inv = Library.find "INV_X1" in
  (* all-low inputs: NMOS 2-stack blocks; must leak less than the
     inverter's single blocking NMOS *)
  let i_nand00 = Cell.leakage ~env nand [| false; false |] in
  let i_inv0 = Cell.leakage ~env inv [| false |] in
  check_true "NAND2 all-off benefits from stack effect" (i_nand00 < i_inv0)

let test_nand_state_ordering () =
  let nand = Library.find "NAND2_X1" in
  let i00 = Cell.leakage ~env nand [| false; false |] in
  let i10 = Cell.leakage ~env nand [| true; false |] in
  let i11 = Cell.leakage ~env nand [| true; true |] in
  check_true "00 is the lowest-leakage NAND state" (i00 < i10);
  check_true "10 below 11 (parallel PMOS pair leaks)" (i10 < i11 || i10 > 0.0);
  check_true "all states positive" (i00 > 0.0 && i11 > 0.0)

let test_sram_symmetry () =
  let sram = Library.find "SRAM6T" in
  let i0 = Cell.leakage ~env sram [| false |] in
  let i1 = Cell.leakage ~env sram [| true |] in
  check_rel ~tol:1e-9 "SRAM leakage symmetric in stored bit" i0 i1

let test_tbuf_tristate () =
  let tbuf = Library.find "TBUF_X1" in
  (* disabled: both output networks blocked, both leak *)
  let disabled = Cell.leakage ~env tbuf [| false; false |] in
  let enabled = Cell.leakage ~env tbuf [| false; true |] in
  check_true "tri-stated output leaks" (disabled > 0.0);
  check_true "states differ" (Float.abs (disabled -. enabled) > 1e-9)

let test_state_of_index () =
  let nand3 = Library.find "NAND3_X1" in
  let s5 = Cell.state_of_index nand3 5 in
  check_true "state 5 = 101 LSB-first"
    (s5.(0) = true && s5.(1) = false && s5.(2) = true);
  check_close "num_states" 8.0 (float_of_int (Cell.num_states nand3))

let test_state_length_check () =
  let inv = Library.find "INV_X1" in
  Alcotest.check_raises "wrong state length"
    (Invalid_argument "Cell.leakage: state vector length mismatch") (fun () ->
      ignore (Cell.leakage ~env inv [| false; true |]))

let test_area_heuristic () =
  Array.iter
    (fun cell ->
      check_true (cell.Cell.name ^ " positive area") (cell.Cell.area > 0.0);
      check_rel ~tol:1e-9
        (cell.Cell.name ^ " area heuristic")
        (1.2 *. float_of_int (Cell.device_count cell))
        cell.Cell.area)
    Library.cells

let test_stack_depth_inventory () =
  (* paper-relevant: the library covers stack depths 1 through 4 *)
  let depths =
    Array.to_list (Array.map Cell.max_stack_depth Library.cells)
    |> List.sort_uniq compare
  in
  check_true "depth 1 present" (List.mem 1 depths);
  check_true "depth 2 present" (List.mem 2 depths);
  check_true "depth 3 present" (List.mem 3 depths);
  check_true "depth 4 present" (List.mem 4 depths)

let test_sequential_consistency () =
  (* DFF with ck=1 must have q = stored in all derived nodes; we verify
     indirectly: leakage must be insensitive to d when ck=1 only through
     the master input tri-state, i.e. evaluation succeeds and is positive
     for all 8 states (contention would raise) *)
  let dff = Library.find "DFF_X1" in
  Array.iter
    (fun state ->
      check_true "dff state positive" (Cell.leakage ~env dff state > 0.0))
    (Cell.states dff)

let test_xor_xnor_complementary_structure () =
  let xor = Library.find "XOR2_X1" and xnor = Library.find "XNOR2_X1" in
  (* same device count, same depth; leakage profiles differ per state *)
  check_close "same device count"
    (float_of_int (Cell.device_count xor))
    (float_of_int (Cell.device_count xnor));
  let lx = Cell.leakage ~env xor [| true; false |] in
  let ln = Cell.leakage ~env xnor [| true; false |] in
  check_true "profiles differ on mixed input" (Float.abs (lx -. ln) > 1e-9)

let test_per_device_lengths () =
  let nand4 = Library.find "NAND4_X1" in
  let state = Cell.state_of_index nand4 0 in
  let uniform = Cell.leakage ~l_nm:90.0 ~env nand4 state in
  let via_l_of = Cell.leakage ~l_of_device:(fun _ -> 90.0) ~env nand4 state in
  check_rel ~tol:1e-12 "constant l_of matches l_nm" uniform via_l_of;
  (* shortening one device must raise the leakage, lengthening lower it *)
  let with_one i l =
    Cell.leakage ~l_of_device:(fun j -> if i = j then l else 90.0) ~env nand4 state
  in
  check_true "one short device leaks more" (with_one 4 80.0 > uniform);
  check_true "one long device leaks less" (with_one 4 100.0 < uniform);
  (* averaging effect: independent +/- excursions stay near uniform,
     between the two single-device extremes *)
  let mixed =
    Cell.leakage
      ~l_of_device:(fun j -> if j mod 2 = 0 then 85.0 else 95.0)
      ~env nand4 state
  in
  check_in_range "mixed lengths bounded by extreme cases"
    ~lo:(Cell.leakage ~l_nm:95.0 ~env nand4 state)
    ~hi:(Cell.leakage ~l_nm:85.0 ~env nand4 state)
    mixed

let suite =
  ( "cells",
    [
      case "library has 62 cells" test_library_size;
      case "unique names" test_unique_names;
      case "find and index" test_find_and_index;
      case "all states evaluable" test_all_states_evaluable;
      case "leakage decreases with L" test_leakage_decreases_with_length;
      case "inverter states" test_inverter_states;
      case "drive scaling" test_drive_scaling;
      case "nand stack vs inverter" test_nand_stack_vs_inv;
      case "nand state ordering" test_nand_state_ordering;
      case "sram symmetry" test_sram_symmetry;
      case "tri-state buffer" test_tbuf_tristate;
      case "state indexing" test_state_of_index;
      case "state length check" test_state_length_check;
      case "area heuristic" test_area_heuristic;
      case "stack depth inventory" test_stack_depth_inventory;
      case "sequential cells evaluate" test_sequential_consistency;
      case "xor/xnor structure" test_xor_xnor_complementary_structure;
      case "per-device channel lengths" test_per_device_lengths;
    ] )
