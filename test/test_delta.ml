(* The delta-equivalence battery: incremental swap updates must be
   bit-identical to cold full re-estimates of the same flavor
   assignment, on every tier, along any swap path. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil
module Obs = Rgleak_obs.Obs

let param = Process_param.default_channel_length

let chars =
  lazy
    (let rng = Rng.create ~seed:88 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:49 ~mc_samples:1000 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let hist_small =
  lazy
    (Histogram.of_weights
       [ ("NAND2_X1", 3.0); ("INV_X1", 2.0); ("NOR2_X1", 1.0); ("DFF_X1", 1.0) ])

let rgcorr =
  lazy
    (let rg =
       Random_gate.create ~chars:(Lazy.force chars)
         ~histogram:(Lazy.force hist_small) ~p:0.5 ()
     in
     Rg_correlation.create ~chars:(Lazy.force chars) ~rg ~p:0.5 ())

let make_placed ~n ~seed =
  let rng = Rng.create ~seed () in
  Generator.random_placed ~histogram:(Lazy.force hist_small) ~n ~rng ()

let make_state ?jobs ?flavors ~n ~seed () =
  Delta.create ?jobs ?flavors ~distance_points:128 ~corr
    ~rgcorr:(Lazy.force rgcorr) (make_placed ~n ~seed)

let bits = Int64.bits_of_float

let check_tier_bits name (a : Delta.tier) (b : Delta.tier) =
  if
    bits a.Delta.mean <> bits b.Delta.mean
    || bits a.Delta.variance <> bits b.Delta.variance
    || bits a.Delta.std <> bits b.Delta.std
  then
    Alcotest.failf "%s: tiers differ bitwise (mean %.17g vs %.17g, var %.17g vs %.17g)"
      name a.Delta.mean b.Delta.mean a.Delta.variance b.Delta.variance

let check_result_bits name (a : Delta.result) (b : Delta.result) =
  check_tier_bits (name ^ " [exact]") a.Delta.exact b.Delta.exact;
  check_tier_bits (name ^ " [linear]") a.Delta.linear b.Delta.linear;
  check_tier_bits (name ^ " [integral]") a.Delta.integral b.Delta.integral

let all_flavors = Vt_correction.all_flavors

(* ---- exact accumulator foundation ---- *)

let test_xsum_order_independence () =
  let rng = Rng.create ~seed:4242 () in
  for _trial = 1 to 20 do
    let terms =
      Array.init 200 (fun _ ->
          (* wide dynamic range plus signs: the regime where float
             summation order matters most *)
          let mag = (Rng.float rng 1.0 -. 0.5) *. 2.0 in
          mag *. (10.0 ** (Rng.float rng 24.0 -. 12.0)))
    in
    let forward = Xsum.create () in
    Array.iter (Xsum.add forward) terms;
    let backward = Xsum.create () in
    for i = Array.length terms - 1 downto 0 do
      Xsum.add backward terms.(i)
    done;
    let halves = Xsum.create () in
    let lo = Xsum.create () and hi = Xsum.create () in
    Array.iteri
      (fun i t -> Xsum.add (if i mod 2 = 0 then lo else hi) t)
      terms;
    Xsum.merge ~into:halves hi;
    Xsum.merge ~into:halves lo;
    if bits (Xsum.value forward) <> bits (Xsum.value backward) then
      Alcotest.fail "xsum: forward and backward sums differ";
    if bits (Xsum.value forward) <> bits (Xsum.value halves) then
      Alcotest.fail "xsum: merged partial sums differ"
  done

let test_xsum_exact_cancellation () =
  let a = Xsum.create () in
  Xsum.add a 1e300;
  Xsum.add a 1e-300;
  Xsum.add a (-1e300);
  check_true "exact retraction leaves the tiny term"
    (bits (Xsum.value a) = bits 1e-300);
  Xsum.add a (-1e-300);
  check_true "full cancellation is exactly zero" (Xsum.value a = 0.0)

let test_xsum_poison () =
  let a = Xsum.create () in
  Xsum.add a 1.0;
  Xsum.add a Float.nan;
  check_true "non-finite terms poison the accumulator"
    (Float.is_nan (Xsum.value a))

(* ---- cold-vs-incremental equivalence ---- *)

(* The acceptance battery: a 500-swap randomized sequence (self-swaps
   included by construction) where EVERY intermediate state must match
   a cold full rebuild bit for bit on all three tiers. *)
let test_500_swap_sequence () =
  let n = 60 in
  let seed = 7 in
  let st0 = make_state ~n ~seed () in
  let rng = Rng.create ~seed:1234 () in
  let flavors = Array.make n Vt_correction.Svt in
  let st = ref st0 in
  for k = 1 to 500 do
    let cell = Rng.int rng n in
    let flavor = all_flavors.(Rng.int rng 3) in
    let st', r = Delta.apply_swap !st ~cell ~flavor in
    st := st';
    flavors.(cell) <- flavor;
    (* Cold rebuild of the same assignment, sequentially. *)
    let cold = make_state ~jobs:1 ~flavors:(Array.copy flavors) ~n ~seed () in
    check_result_bits
      (Printf.sprintf "swap %d (cell %d)" k cell)
      (Delta.result cold) r
  done;
  (* The incremental state's own report is stable (pure function). *)
  check_result_bits "re-reported result" (Delta.result !st) (Delta.result !st)

let test_swap_then_revert () =
  let n = 80 in
  let st0 = make_state ~n ~seed:11 () in
  let r0 = Delta.result st0 in
  let st1, _ = Delta.apply_swap st0 ~cell:17 ~flavor:Vt_correction.Hvt in
  let st2, _ = Delta.apply_swap st1 ~cell:42 ~flavor:Vt_correction.Lvt in
  let st3, _ = Delta.apply_swap st2 ~cell:42 ~flavor:Vt_correction.Svt in
  let st4, r4 = Delta.apply_swap st3 ~cell:17 ~flavor:Vt_correction.Svt in
  check_result_bits "revert to the initial assignment" r0 r4;
  (* the original snapshot is untouched (immutability) *)
  check_result_bits "input state unmodified" r0 (Delta.result st0);
  ignore st4

let test_self_swap_neutral () =
  let st0 = make_state ~n:50 ~seed:3 () in
  let st1, _ = Delta.apply_swap st0 ~cell:10 ~flavor:Vt_correction.Lvt in
  let r1 = Delta.result st1 in
  let st2, r2 = Delta.apply_swap st1 ~cell:10 ~flavor:Vt_correction.Lvt in
  check_result_bits "self-swap is bit-neutral" r1 r2;
  check_true "self-swap keeps the flavor"
    (Delta.flavor_of st2 10 = Vt_correction.Lvt)

(* Random swap walks at property scale: cold-vs-incremental at the end
   of each walk (the 500-swap test covers every intermediate step). *)
let test_random_walks_qcheck () =
  let gen =
    QCheck2.Gen.(
      triple (int_range 10 90) (int_range 0 1000) (list_size (int_range 1 25) (pair (int_range 0 1000) (int_range 0 2))))
  in
  let prop (n, seed, swaps) =
    let st0 = make_state ~n ~seed () in
    let flavors = Array.make n Vt_correction.Svt in
    let st =
      List.fold_left
        (fun st (c, f) ->
          let cell = c mod n in
          let flavor = all_flavors.(f) in
          flavors.(cell) <- flavor;
          fst (Delta.apply_swap st ~cell ~flavor))
        st0 swaps
    in
    let cold = make_state ~jobs:1 ~flavors ~n ~seed () in
    check_result_bits "walk end state" (Delta.result cold) (Delta.result st);
    true
  in
  qcheck ~count:25 "random swap walks: cold == incremental" gen prop

(* ---- job-count invariance ---- *)

let test_jobs_bit_identity () =
  let n = 120 in
  let run jobs =
    let st = make_state ~jobs ~n ~seed:21 () in
    let st, _ = Delta.apply_swap st ~cell:3 ~flavor:Vt_correction.Hvt in
    let st, r = Delta.apply_swap st ~cell:77 ~flavor:Vt_correction.Lvt in
    ignore st;
    r
  in
  let r1 = run 1 in
  check_result_bits "jobs 1 vs 2" r1 (run 2);
  check_result_bits "jobs 1 vs 4" r1 (run 4)

(* ---- agreement with the standalone estimators at the SVT state ---- *)

let test_unit_state_matches_estimators () =
  let n = 150 and seed = 5 in
  let placed = make_placed ~n ~seed in
  let rgcorr = Lazy.force rgcorr in
  let st = Delta.create ~distance_points:128 ~corr ~rgcorr placed in
  let r = Delta.result st in
  let ex =
    Estimator_exact.estimate ~distance_points:128 ~corr ~rgcorr placed
  in
  (* Same per-pair terms, different summation association (exact
     accumulator vs 8-lane kernel): equal to reassociation tolerance. *)
  check_rel ~tol:1e-12 "exact mean" ex.Estimator_exact.mean r.Delta.exact.Delta.mean;
  check_rel ~tol:1e-12 "exact variance" ex.Estimator_exact.variance
    r.Delta.exact.Delta.variance;
  let layout = placed.Placer.layout in
  let lin = Estimator_linear.estimate ~corr ~rgcorr ~layout () in
  check_rel ~tol:1e-12 "linear mean" lin.Estimator_linear.mean
    r.Delta.linear.Delta.mean;
  check_rel ~tol:1e-12 "linear variance" lin.Estimator_linear.variance
    r.Delta.linear.Delta.variance;
  let int0 =
    Estimator_integral.rect_2d ~corr ~rgcorr ~n ~width:(Layout.width layout)
      ~height:(Layout.height layout) ()
  in
  (* At unit scales the recombination multiplies by exactly 1.0 and
     adds exactly 0.0: bitwise. *)
  check_true "integral mean bitwise"
    (bits int0.Estimator_integral.mean = bits r.Delta.integral.Delta.mean);
  check_true "integral variance bitwise"
    (bits int0.Estimator_integral.variance
    = bits r.Delta.integral.Delta.variance)

(* ---- O(n), not O(n²), per swap ---- *)

let test_swap_work_is_linear () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let n = 100 in
  let st = make_state ~n ~seed:9 () in
  let pairs_after_create =
    List.assoc "exact.pairs" (Obs.snapshot ()).Obs.counters
  in
  check_true "cold create visits the full triangle"
    (pairs_after_create >= n * (n - 1) / 2);
  let st, _ = Delta.apply_swap st ~cell:0 ~flavor:Vt_correction.Hvt in
  let st, _ = Delta.apply_swap st ~cell:1 ~flavor:Vt_correction.Lvt in
  ignore st;
  let pairs_after_swaps =
    List.assoc "exact.pairs" (Obs.snapshot ()).Obs.counters
  in
  let per_swap = (pairs_after_swaps - pairs_after_create) / 2 in
  check_true
    (Printf.sprintf "swap pair visits are O(n): %d for n=%d" per_swap n)
    (per_swap = 2 * (n - 1));
  let swaps = List.assoc "delta.swaps" (Obs.snapshot ()).Obs.counters in
  check_true "delta.swaps counted" (swaps = 2)

(* ---- O(1) prediction helpers ---- *)

let test_mean_delta_prediction () =
  let st = make_state ~n:70 ~seed:13 () in
  let r0 = Delta.result st in
  let predicted = Delta.mean_delta st ~cell:5 ~flavor:Vt_correction.Hvt in
  let _, r1 = Delta.apply_swap st ~cell:5 ~flavor:Vt_correction.Hvt in
  check_rel ~tol:1e-9 "mean_delta predicts the exact-tier mean change"
    (r1.Delta.exact.Delta.mean -. r0.Delta.exact.Delta.mean)
    predicted;
  check_true "cell_mean positive" (Delta.cell_mean st 5 > 0.0)

let test_bad_inputs () =
  let st = make_state ~n:20 ~seed:2 () in
  check_true "cell out of range rejected"
    (try
       ignore (Delta.apply_swap st ~cell:20 ~flavor:Vt_correction.Svt);
       false
     with Invalid_argument _ -> true);
  check_true "flavor array length mismatch rejected"
    (try
       ignore
         (make_state ~flavors:(Array.make 3 Vt_correction.Svt) ~n:20 ~seed:2 ());
       false
     with Invalid_argument _ -> true)

let suite =
  ( "delta",
    [
      Alcotest.test_case "xsum order independence" `Quick
        test_xsum_order_independence;
      Alcotest.test_case "xsum exact cancellation" `Quick
        test_xsum_exact_cancellation;
      Alcotest.test_case "xsum non-finite poison" `Quick test_xsum_poison;
      Alcotest.test_case "500-swap sequence: every state cold-equal" `Slow
        test_500_swap_sequence;
      Alcotest.test_case "swap then revert restores bits" `Quick
        test_swap_then_revert;
      Alcotest.test_case "self-swap is bit-neutral" `Quick
        test_self_swap_neutral;
      test_random_walks_qcheck ();
      Alcotest.test_case "jobs 1/2/4 bit identity" `Quick
        test_jobs_bit_identity;
      Alcotest.test_case "SVT state matches standalone estimators" `Quick
        test_unit_state_matches_estimators;
      Alcotest.test_case "swap work is O(n) via exact.pairs" `Quick
        test_swap_work_is_linear;
      Alcotest.test_case "mean_delta O(1) prediction" `Quick
        test_mean_delta_prediction;
      Alcotest.test_case "bad inputs rejected" `Quick test_bad_inputs;
    ] )
