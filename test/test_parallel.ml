(* The parallel runtime's contract is determinism: chunk and band
   boundaries depend only on the problem size, and reductions combine
   in chunk order, so every job count — including 1 — must produce
   bit-identical floats.  These tests drive real multi-domain pools
   (jobs = 2 and 4) against the inline path. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let bits = Int64.bits_of_float

let check_bits name expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %.17g and %.17g differ bitwise" name expected actual

(* A reduction whose result depends on evaluation order: float sums
   regroup under different chunkings, so this would catch any scheme
   that lets the pool size leak into the chunk boundaries. *)
let noise_sum pool =
  Parallel.parallel_for_reduce pool ~n:10_001
    ~init:(fun () -> 0.0)
    ~body:(fun acc i -> acc +. sin (float_of_int i *. 0.7))
    ~combine:( +. )

let test_reduce_deterministic () =
  let reference = Parallel.with_pool ~jobs:1 noise_sum in
  List.iter
    (fun jobs ->
      Parallel.with_pool ~jobs (fun pool ->
          check_bits
            (Printf.sprintf "parallel_for_reduce jobs=%d" jobs)
            reference (noise_sum pool)))
    [ 2; 4 ]

let test_reduce_edge_sizes () =
  Parallel.with_pool ~jobs:2 (fun pool ->
      let sum n =
        Parallel.parallel_for_reduce pool ~n
          ~init:(fun () -> 0)
          ~body:( + ) ~combine:( + )
      in
      check_true "n=0 returns init" (sum 0 = 0);
      check_true "n=1" (sum 1 = 0);
      (* fewer indices than the default chunk count *)
      check_true "n=7 sums 0..6" (sum 7 = 21);
      check_true "n=1000" (sum 1000 = 499_500))

let test_map_array_order () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 203 (fun i -> i) in
      let ys = Parallel.map_array pool (fun i -> (i * 2) + 1) xs in
      Array.iteri
        (fun i y -> check_true (Printf.sprintf "slot %d" i) (y = (i * 2) + 1))
        ys)

let test_run_thunks_exception () =
  Parallel.with_pool ~jobs:2 (fun pool ->
      match
        Parallel.run_thunks pool
          (Array.init 16 (fun i ->
               fun () -> if i = 11 then failwith "thunk-11" else i))
      with
      | _ -> Alcotest.fail "expected the thunk's exception to propagate"
      | exception Failure msg -> check_true "original exception" (msg = "thunk-11"))

let test_triangle_bands_cover =
  qcheck ~count:200 "triangle_bands partitions the rows"
    QCheck2.Gen.(pair (int_range 0 200) (int_range 1 50))
    (fun (n, bands) ->
      let bs = Parallel.triangle_bands ~bands n in
      let rows = max 0 (n - 1) in
      if rows = 0 then bs = [||]
      else begin
        let m = Array.length bs in
        m >= 1
        && fst bs.(0) = 0
        && snd bs.(m - 1) = rows
        && Array.for_all (fun (lo, hi) -> lo < hi) bs
        && Array.for_all
             (fun i -> snd bs.(i) = fst bs.(i + 1))
             (Array.init (m - 1) Fun.id)
      end)

let test_triangle_reduce_pairs () =
  (* Collect every (a, b) pair the scheduler hands out and check the
     multiset equals { (a, b) | 0 <= a < b < n } exactly. *)
  let n = 37 in
  let pairs =
    Parallel.with_pool ~jobs:2 (fun pool ->
        Parallel.triangle_reduce pool ~n
          ~init:(fun () -> [])
          ~row:(fun acc a ->
            let acc = ref acc in
            for b = a + 1 to n - 1 do
              acc := (a, b) :: !acc
            done;
            !acc)
          ~combine:(fun l r -> l @ r))
  in
  let expected = n * (n - 1) / 2 in
  check_true "pair count" (List.length pairs = expected);
  let seen = Hashtbl.create expected in
  List.iter
    (fun (a, b) ->
      check_true "pair in triangle" (0 <= a && a < b && b < n);
      check_true "pair seen once" (not (Hashtbl.mem seen (a, b)));
      Hashtbl.add seen (a, b) ())
    pairs

let test_tri_index_bijection () =
  let n = 9 in
  let hit = Array.make (Parallel.tri_size n) false in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let k = Parallel.tri_index ~n ~i ~j in
      check_true "index in range" (0 <= k && k < Parallel.tri_size n);
      check_true "index unused" (not hit.(k));
      hit.(k) <- true
    done
  done;
  check_true "all slots hit" (Array.for_all Fun.id hit);
  check_true "rejects lower triangle"
    (match Parallel.tri_index ~n ~i:3 ~j:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_default_jobs_override () =
  let saved = Parallel.default_jobs () in
  Parallel.set_default_jobs 3;
  check_true "override visible" (Parallel.default_jobs () = 3);
  check_true "shared pool resized" (Parallel.jobs (Parallel.default ()) = 3);
  Parallel.set_default_jobs saved

let test_rng_stream_matches_index () =
  (* stream i is a fixed function of (seed, i): distinct nearby streams,
     and re-derivation is exact. *)
  let a = Rng.stream ~seed:42 7 and b = Rng.stream ~seed:42 7 in
  for i = 1 to 50 do
    check_true (Printf.sprintf "redrawn stream draw %d" i)
      (Rng.bits64 a = Rng.bits64 b)
  done;
  let x = Rng.bits64 (Rng.stream ~seed:42 7) in
  let y = Rng.bits64 (Rng.stream ~seed:42 8) in
  let z = Rng.bits64 (Rng.stream ~seed:43 7) in
  check_true "adjacent streams differ" (x <> y);
  check_true "seeds separate streams" (x <> z)

(* --- integration: the three ported hot paths ---------------------- *)

let param = Process_param.default_channel_length
let corr = lazy (Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param)

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ])

let test_exact_estimator_jobs () =
  let chars = Characterize.default_library () in
  let corr = Lazy.force corr in
  let ctx =
    Estimate.context ~p:0.5 ~chars ~corr ~histogram:(Lazy.force hist) ()
  in
  let rng = Rng.create ~seed:77 () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist) ~n:600 ~rng ()
  in
  let rgcorr = Estimate.correlation ctx in
  let r1 = Estimator_exact.estimate ~jobs:1 ~corr ~rgcorr placed in
  let r4 = Estimator_exact.estimate ~jobs:4 ~corr ~rgcorr placed in
  check_bits "exact mean jobs 1 vs 4" r1.Estimator_exact.mean
    r4.Estimator_exact.mean;
  check_bits "exact variance jobs 1 vs 4" r1.Estimator_exact.variance
    r4.Estimator_exact.variance;
  check_bits "exact std jobs 1 vs 4" r1.Estimator_exact.std
    r4.Estimator_exact.std

let test_mc_stream_jobs () =
  let chars = Characterize.default_library () in
  let corr = Lazy.force corr in
  let rng = Rng.create ~seed:88 () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist) ~n:100 ~rng ()
  in
  let mc = Mc_reference.prepare ~chars ~corr ~p:0.5 placed in
  let count = 64 in
  let s1 = Mc_reference.sample_many_stream ~jobs:1 mc ~seed:303 ~count in
  let s2 = Mc_reference.sample_many_stream ~jobs:2 mc ~seed:303 ~count in
  let s4 = Mc_reference.sample_many_stream ~jobs:4 mc ~seed:303 ~count in
  for i = 0 to count - 1 do
    check_bits (Printf.sprintf "replica %d jobs 1 vs 2" i) s1.(i) s2.(i);
    check_bits (Printf.sprintf "replica %d jobs 1 vs 4" i) s1.(i) s4.(i);
    check_bits
      (Printf.sprintf "replica %d vs sample_stream" i)
      (Mc_reference.sample_stream mc ~seed:303 i)
      s1.(i)
  done;
  let m1, sd1 = Mc_reference.moments_stream ~jobs:1 mc ~seed:303 ~count in
  let m2, sd2 = Mc_reference.moments_stream ~jobs:2 mc ~seed:303 ~count in
  check_bits "mc mean jobs 1 vs 2" m1 m2;
  check_bits "mc std jobs 1 vs 2" sd1 sd2

(* The replica fill sizes its chunks from the pool: a few per domain,
   never below the 16-replica grain. *)
let test_mc_chunks_for () =
  let check name expected ~jobs ~count =
    Alcotest.(check int) name expected (Mc_reference.chunks_for ~jobs ~count)
  in
  check "tiny runs collapse to one chunk" 1 ~jobs:4 ~count:10;
  check "zero replicas still one chunk" 1 ~jobs:4 ~count:0;
  check "grain caps a single-domain run" 4 ~jobs:1 ~count:400;
  check "chunks scale with domains" 16 ~jobs:4 ~count:400;
  check "grain caps a wide pool" 25 ~jobs:16 ~count:400;
  (* the grain cap keeps average chunk size useful: count/chunks is at
     least half the grain (the ceiling division costs at most 2x) *)
  for jobs = 1 to 8 do
    for count = 2 to 200 do
      let c = Mc_reference.chunks_for ~jobs ~count in
      if c > 1 then
        check_true
          (Printf.sprintf "grain respected at jobs=%d count=%d" jobs count)
          (count / c >= 8)
    done
  done

(* Chunk decompositions differ between these job counts (the count sits
   past the single-domain cap), yet samples and moments must not. *)
let test_mc_chunking_jobs_invariant () =
  let chars = Characterize.default_library () in
  let corr = Lazy.force corr in
  let rng = Rng.create ~seed:89 () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist) ~n:60 ~rng ()
  in
  let mc = Mc_reference.prepare ~chars ~corr ~p:0.5 placed in
  List.iter
    (fun count ->
      check_true
        (Printf.sprintf "decompositions differ at count=%d" count)
        (Mc_reference.chunks_for ~jobs:1 ~count
        <> Mc_reference.chunks_for ~jobs:3 ~count);
      let s1 = Mc_reference.sample_many_stream ~jobs:1 mc ~seed:404 ~count in
      let s3 = Mc_reference.sample_many_stream ~jobs:3 mc ~seed:404 ~count in
      for i = 0 to count - 1 do
        check_bits (Printf.sprintf "count=%d replica %d" count i) s1.(i) s3.(i)
      done;
      let m1, sd1 = Mc_reference.moments_stream ~jobs:1 mc ~seed:404 ~count in
      let m3, sd3 = Mc_reference.moments_stream ~jobs:3 mc ~seed:404 ~count in
      check_bits (Printf.sprintf "count=%d mean" count) m1 m3;
      check_bits (Printf.sprintf "count=%d std" count) sd1 sd3)
    [ 65; 100; 130 ]

let test_characterize_jobs () =
  let one jobs =
    Characterize.characterize_library ~l_points:17 ~mc_samples:200 ~jobs ~param
      ~seed:5 ()
  in
  let a = one 1 and b = one 2 in
  check_true "same library size" (Array.length a = Array.length b);
  Array.iteri
    (fun ci (ca : Characterize.cell_char) ->
      let cb = b.(ci) in
      Array.iteri
        (fun si (sa : Characterize.state_char) ->
          let sb = cb.Characterize.states.(si) in
          let tag field =
            Printf.sprintf "%s %s/state %d" field ca.Characterize.cell.Cell.name si
          in
          check_bits (tag "mu_analytic") sa.Characterize.mu_analytic
            sb.Characterize.mu_analytic;
          check_bits (tag "sigma_analytic") sa.Characterize.sigma_analytic
            sb.Characterize.sigma_analytic;
          check_bits (tag "mu_mc") sa.Characterize.mu_mc sb.Characterize.mu_mc;
          check_bits (tag "sigma_mc") sa.Characterize.sigma_mc
            sb.Characterize.sigma_mc)
        ca.Characterize.states)
    a

let suite =
  ( "parallel",
    [
      case "parallel_for_reduce bit-identical across jobs"
        test_reduce_deterministic;
      case "parallel_for_reduce edge sizes" test_reduce_edge_sizes;
      case "map_array preserves order" test_map_array_order;
      case "run_thunks propagates exceptions" test_run_thunks_exception;
      test_triangle_bands_cover;
      case "triangle_reduce covers each pair once" test_triangle_reduce_pairs;
      case "tri_index is a bijection" test_tri_index_bijection;
      case "default jobs override" test_default_jobs_override;
      case "rng streams are reproducible" test_rng_stream_matches_index;
      slow_case "exact estimator jobs 1 vs 4" test_exact_estimator_jobs;
      case "mc reference streams across jobs" test_mc_stream_jobs;
      case "mc replica chunk sizing" test_mc_chunks_for;
      case "mc chunking jobs-invariant" test_mc_chunking_jobs_invariant;
      slow_case "characterization jobs 1 vs 2" test_characterize_jobs;
    ] )
