(* Robustness battery: structured-error properties, numeric guardrails
   and deterministic fault injection.

   The property tests randomize the correlation family, the die and the
   gate count and assert the invariants the guardrails are meant to
   protect; the fault tests arm the Guard.Fault probe sites and check
   that every failure surfaces as a typed diagnostic (never a hang, a
   NaN, or a silent wrong answer) and that identical specs reproduce
   identical runs. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length

let chars =
  lazy
    (let rng = Rng.create ~seed:4242 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:33 ~mc_samples:200 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ])

let context_of family =
  let corr = Corr_model.create family param in
  let ctx =
    Estimate.context ~p:0.5 ~chars:(Lazy.force chars) ~corr
      ~histogram:(Lazy.force hist) ()
  in
  (corr, Estimate.correlation ctx)

(* Arm fault sites for the duration of [f] only: a failing assertion
   must not leak armed probes into the rest of the suite. *)
let with_faults specs f =
  Guard.Fault.configure specs;
  Fun.protect f ~finally:Guard.Fault.clear

let spec site prob seed = { Guard.Fault.site; prob; seed }

(* ---- properties: invariants behind the guardrails ---- *)

let test_variances_nonnegative =
  qcheck_shrinking ~count:15 "variance finite and non-negative across tiers"
    ~shrink:(shrink_family_n ~n_lo:64) ~print:print_family_n
    QCheck2.Gen.(pair gen_family (int_range 64 900))
    (fun (family, n) ->
      let corr, rgcorr = context_of family in
      let layout = Layout.square ~n () in
      let width = Layout.width layout and height = Layout.height layout in
      let ok (v : float) = Float.is_finite v && v >= 0.0 in
      let lin = Estimator_linear.estimate ~corr ~rgcorr ~layout () in
      let rect = Estimator_integral.rect_2d ~corr ~rgcorr ~n ~width ~height () in
      ok lin.Estimator_linear.variance
      && ok rect.Estimator_integral.variance
      && ((not (Estimator_integral.polar_applicable ~corr ~width ~height))
         || ok
              (Estimator_integral.polar ~corr ~rgcorr ~n ~width ~height ())
                .Estimator_integral.variance))

let test_covariance_symmetric_psd =
  qcheck ~count:50 "site covariance symmetric; decompose_robust repairs it"
    QCheck2.Gen.(pair gen_psd_family (gen_sites ()))
    (fun (family, sites) ->
      let corr = Corr_model.create family param in
      let pts = Array.of_list sites in
      let k = Array.length pts in
      let dist (x1, y1) (x2, y2) = Float.hypot (x1 -. x2) (y1 -. y2) in
      let c =
        Matrix.init ~rows:k ~cols:k (fun i j ->
            Corr_model.total corr (dist pts.(i) pts.(j)))
      in
      let r = Cholesky.decompose_robust c in
      Matrix.is_symmetric c
      (* PSD families need at most rounding-level repair *)
      && r.Cholesky.jitter <= 1e-8
      && Matrix.rows r.Cholesky.factor = k)

let test_correlation_nonincreasing =
  qcheck ~count:200 "total correlation non-increasing in distance"
    QCheck2.Gen.(tup3 gen_family (float_range 0.0 200.0) (float_range 0.0 100.0))
    (fun (family, d, delta) ->
      let corr = Corr_model.create family param in
      Corr_model.total corr (d +. delta) <= Corr_model.total corr d +. 1e-12)

let test_cross_tier_agreement =
  qcheck_shrinking ~count:10 "tier means identical, integral stds agree"
    ~shrink:(shrink_family_n ~n_lo:400) ~print:print_family_n
    QCheck2.Gen.(pair gen_family (int_range 400 1600))
    (fun (family, n) ->
      let corr, rgcorr = context_of family in
      let layout = Layout.square ~n () in
      let width = Layout.width layout and height = Layout.height layout in
      let lin = Estimator_linear.estimate ~corr ~rgcorr ~layout () in
      let rect = Estimator_integral.rect_2d ~corr ~rgcorr ~n ~width ~height () in
      let polar2 =
        Estimator_integral.polar_2d ~corr ~rgcorr ~n ~width ~height ()
      in
      let close ?(tol = 1e-9) a b =
        Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)
      in
      (* all tiers share the closed-form mean n*mu *)
      close lin.Estimator_linear.mean rect.Estimator_integral.mean
      && close rect.Estimator_integral.mean polar2.Estimator_integral.mean
      (* Eq. 21 is an exact change of variables of Eq. 20 *)
      && close ~tol:1e-3 rect.Estimator_integral.std
           polar2.Estimator_integral.std
      (* discrete sum vs continuous integral: same asymptotics *)
      && close ~tol:0.1 lin.Estimator_linear.std rect.Estimator_integral.std)

let test_exact_jobs_invariant =
  qcheck_shrinking ~count:5 "exact estimator bit-identical across job counts"
    ~shrink:(shrink_family_n ~n_lo:30) ~print:print_family_n
    QCheck2.Gen.(pair gen_family (int_range 30 90))
    (fun (family, n) ->
      let corr, rgcorr = context_of family in
      let rng = Rng.create ~seed:n () in
      let placed =
        Generator.random_placed ~histogram:(Lazy.force hist) ~n ~rng ()
      in
      let r1 = Estimator_exact.estimate ~jobs:1 ~corr ~rgcorr placed in
      let r3 = Estimator_exact.estimate ~jobs:3 ~corr ~rgcorr placed in
      r1.Estimator_exact.mean = r3.Estimator_exact.mean
      && r1.Estimator_exact.variance = r3.Estimator_exact.variance)

(* ---- cholesky: jitter-retry guardrail ---- *)

(* Indefinite through a tiny off-diagonal excess: the plain
   semidefinite factorization must refuse it, the jitter ladder must
   repair it with a perturbation of the same order. *)
let near_singular_excess e =
  Matrix.of_arrays [| [| 1.0; 1.0 +. e |]; [| 1.0 +. e; 1.0 |] |]

let test_cholesky_guardrail_needed () =
  let a = near_singular_excess 5e-5 in
  (match Cholesky.decompose_semidefinite a with
  | exception Cholesky.Not_positive_definite _ -> ()
  | _ -> Alcotest.fail "decompose_semidefinite accepted an indefinite matrix");
  let r = Cholesky.decompose_robust a in
  check_true "needed more than one attempt" (r.Cholesky.attempts > 1);
  check_in_range "jitter of the same order as the defect" ~lo:1e-12 ~hi:1e-3
    r.Cholesky.jitter;
  (* the factor reproduces the (regularized) matrix *)
  let l = r.Cholesky.factor in
  let reconstructed = Matrix.mul l (Matrix.transpose l) in
  check_close ~tol:(r.Cholesky.jitter +. 1e-9) "LL^T ~ A (off-diagonal)"
    (Matrix.get a 0 1)
    (Matrix.get reconstructed 0 1)

let test_cholesky_fault_exhaustion () =
  with_faults [ spec "cholesky" 1.0 7 ] @@ fun () ->
  match Cholesky.decompose_robust (Matrix.identity 3) with
  | exception Guard.Error (Guard.Numeric { site = "cholesky"; _ }) -> ()
  | exception e -> raise e
  | _ -> Alcotest.fail "all-attempts fault should exhaust the ladder"

let test_cholesky_fault_disarmed () =
  with_faults [ spec "cholesky" 0.0 7 ] @@ fun () ->
  let r = Cholesky.decompose_robust (Matrix.identity 3) in
  check_true "clean factorization at prob 0" (r.Cholesky.attempts = 1);
  check_close "no regularization" 0.0 r.Cholesky.jitter

(* ---- quadrature: convergence guardrail and forced fallback ---- *)

let test_quadrature_guardrail_needed () =
  (* A spike narrow enough to defeat the fixed-order rule but wide
     enough that its nodes see it: the unguarded value must be visibly
     wrong, the guarded one falls back to adaptive Simpson. *)
  let sigma = 5e-3 in
  let f x =
    let z = (x -. 0.5) /. sigma in
    exp (-.(z *. z))
  in
  let truth = sigma *. sqrt Float.pi in
  let plain = Quadrature.gauss_legendre ~order:64 f ~lo:0.0 ~hi:1.0 in
  check_true "unguarded GL-64 misses the spike"
    (Float.abs (plain -. truth) > 1e-3 *. truth);
  let guarded = Quadrature.gauss_legendre_guarded ~order:64 f ~lo:0.0 ~hi:1.0 in
  check_rel ~tol:1e-3 "guarded quadrature recovers the spike" truth guarded

let test_quadrature_fault_forces_fallback () =
  let f x = exp (-.x) *. cos (3.0 *. x) in
  let reference = Quadrature.gauss_legendre ~order:64 f ~lo:0.0 ~hi:2.0 in
  let forced =
    with_faults [ spec "quadrature" 1.0 11 ] @@ fun () ->
    Quadrature.gauss_legendre_guarded ~order:64 f ~lo:0.0 ~hi:2.0
  in
  check_true "fallback path actually taken" (forced <> reference);
  check_rel ~tol:1e-6 "Simpson fallback agrees with converged GL" reference
    forced

let test_estimator_quadrature_fault_agreement () =
  (* Forcing every integral onto the fallback must not change the
     estimate beyond the quadrature tolerance. *)
  let corr, rgcorr = context_of (Corr_model.Spherical { dmax = 60.0 }) in
  let n = 2500 in
  let layout = Layout.square ~n () in
  let width = Layout.width layout and height = Layout.height layout in
  check_true "polar applicable on this die"
    (Estimator_integral.polar_applicable ~corr ~width ~height);
  let baseline = Estimator_integral.polar ~corr ~rgcorr ~n ~width ~height () in
  let faulted =
    with_faults [ spec "quadrature" 1.0 13 ] @@ fun () ->
    Estimator_integral.polar ~corr ~rgcorr ~n ~width ~height ()
  in
  check_rel ~tol:1e-4 "polar std under forced fallback"
    baseline.Estimator_integral.std faulted.Estimator_integral.std

(* ---- parallel pool: typed diagnostic, no hang ---- *)

let test_pool_fault_typed_diagnostic () =
  let corr, rgcorr = context_of (Corr_model.Spherical { dmax = 80.0 }) in
  let rng = Rng.create ~seed:99 () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist) ~n:60 ~rng ()
  in
  let faulted =
    with_faults [ spec "parallel" 1.0 5 ] @@ fun () ->
    Estimator_exact.estimate_result ~jobs:3 ~corr ~rgcorr placed
  in
  (match faulted with
  | Error (Guard.Numeric { site = "parallel"; _ }) -> ()
  | Error d -> Alcotest.failf "wrong diagnostic: %s" (Guard.to_string d)
  | Ok _ -> Alcotest.fail "pool fault at prob 1 must fail the estimate");
  (* the pool survives the fault: the next run is clean *)
  match Estimator_exact.estimate_result ~jobs:3 ~corr ~rgcorr placed with
  | Ok r -> check_true "clean rerun" (Float.is_finite r.Estimator_exact.std)
  | Error d -> Alcotest.failf "pool damaged by fault: %s" (Guard.to_string d)

(* ---- determinism: identical specs, identical runs ---- *)

let test_fault_sequence_deterministic () =
  let seq seed =
    with_faults [ spec "linear.f" 0.5 seed ] @@ fun () ->
    List.init 64 (fun _ -> Guard.Fault.fire "linear.f")
  in
  check_true "same seed, same sequence" (seq 123 = seq 123);
  check_true "sequence not degenerate"
    (List.exists Fun.id (seq 123) && not (List.for_all Fun.id (seq 123)))

let test_faulted_estimate_deterministic () =
  let corr, rgcorr = context_of (Corr_model.Spherical { dmax = 90.0 }) in
  let layout = Layout.square ~n:400 () in
  let run () =
    with_faults [ spec "linear.f" 0.5 77 ] @@ fun () ->
    Estimator_linear.estimate_result ~corr ~rgcorr ~layout ()
  in
  let a = run () and b = run () in
  (match (a, b) with
  | Ok ra, Ok rb ->
    check_true "identical values"
      (ra.Estimator_linear.mean = rb.Estimator_linear.mean
      && ra.Estimator_linear.variance = rb.Estimator_linear.variance)
  | Error da, Error db ->
    Alcotest.(check string)
      "identical diagnostics" (Guard.to_string da) (Guard.to_string db)
  | _ -> Alcotest.fail "same spec produced different outcomes");
  (* prob 1/2 over many offsets: some probe fires, so the NaN poison
     must have been caught at the boundary, not returned as a value *)
  match a with
  | Error (Guard.Numeric { site = "linear"; _ }) -> ()
  | Error d -> Alcotest.failf "wrong diagnostic: %s" (Guard.to_string d)
  | Ok _ -> Alcotest.fail "prob-1/2 fault over 400 sites should fire"

(* ---- linear estimator: F-memo presence bitmask ---- *)

let test_linear_memo_bitmask () =
  (* On a full 3x3 array the offset loop probes 24 off-diagonal offsets
     covering 8 distinct (|di|, |dj|) pairs.  With the fault site
     poisoning every computed value with NaN, the old NaN-sentinel memo
     recomputed on every probe (24 misses) and the poison stayed
     invisible to the memo; the presence bitmask memoizes NaN like any
     other value (8 misses) and the boundary check reports it. *)
  let corr, rgcorr = context_of (Corr_model.Spherical { dmax = 90.0 }) in
  let layout = Layout.square ~n:9 () in
  Rgleak_obs.Obs.reset ();
  Rgleak_obs.Obs.set_enabled true;
  let result =
    Fun.protect ~finally:(fun () -> Rgleak_obs.Obs.set_enabled false)
    @@ fun () ->
    with_faults [ spec "linear.f" 1.0 3 ] @@ fun () ->
    Estimator_linear.estimate_result ~corr ~rgcorr ~layout ()
  in
  let snap = Rgleak_obs.Obs.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Rgleak_obs.Obs.counters with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not recorded" name
  in
  Alcotest.(check int) "one miss per distinct offset" 8
    (counter "linear.memo_misses");
  Alcotest.(check int) "remaining probes hit the memo" 16
    (counter "linear.memo_hits");
  match result with
  | Error (Guard.Numeric { site = "linear"; _ }) -> ()
  | Error d -> Alcotest.failf "wrong diagnostic: %s" (Guard.to_string d)
  | Ok _ -> Alcotest.fail "NaN-poisoned memo must fail the boundary check"

(* ---- fault spec parsing ---- *)

let test_fault_spec_parsing () =
  (match Guard.Fault.parse_spec "cholesky:0.25:42" with
  | Ok { Guard.Fault.site = "cholesky"; prob = 0.25; seed = 42 } -> ()
  | Ok _ -> Alcotest.fail "mis-parsed a valid spec"
  | Error e -> Alcotest.failf "rejected a valid spec: %s" e);
  List.iter
    (fun bad ->
      match Guard.Fault.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [ "nosuch:1:1"; "cholesky:2.0:1"; "cholesky:-0.1:1"; "cholesky:x:1";
      "cholesky:1"; "" ]

let suite =
  ( "robustness",
    [
      test_variances_nonnegative;
      test_covariance_symmetric_psd;
      test_correlation_nonincreasing;
      test_cross_tier_agreement;
      test_exact_jobs_invariant;
      case "cholesky: guardrail needed and repairs" test_cholesky_guardrail_needed;
      case "cholesky: fault exhausts ladder" test_cholesky_fault_exhaustion;
      case "cholesky: prob-0 fault is free" test_cholesky_fault_disarmed;
      case "quadrature: guardrail needed on a spike"
        test_quadrature_guardrail_needed;
      case "quadrature: forced fallback agrees"
        test_quadrature_fault_forces_fallback;
      case "polar estimator: forced fallback agrees"
        test_estimator_quadrature_fault_agreement;
      case "pool fault: typed diagnostic, pool survives"
        test_pool_fault_typed_diagnostic;
      case "fault sequence deterministic per seed"
        test_fault_sequence_deterministic;
      case "faulted estimate deterministic" test_faulted_estimate_deterministic;
      case "linear F-memo uses a presence bitmask" test_linear_memo_bitmask;
      case "fault spec parsing" test_fault_spec_parsing;
    ] )
