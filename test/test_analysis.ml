(* Tests for the analysis extensions: process corners, the
   variance-by-distance profile, and parallel characterization. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length
let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("DFF_X1", 9.0) ])

let spec =
  lazy
    { Estimate.histogram = Lazy.force hist; n = 2500; width = 200.0; height = 200.0 }

(* ---- corners ---- *)

let corner_results =
  lazy
    (Corners.analyze
       ~corners:
         [ Corners.typical;
           { Corners.name = "FF/125C"; l_shift_sigmas = -3.0; temp_c = 125.0 } ]
       ~l_points:33 ~mc_samples:200 ~p:0.5 ~param ~corr ~spec:(Lazy.force spec) ())

let test_corner_ordering () =
  match Lazy.force corner_results with
  | [ tt; ff ] ->
    check_true "fast-hot corner leaks much more"
      (ff.Corners.mean > 3.0 *. tt.Corners.mean);
    check_true "fast-hot corner has larger spread" (ff.Corners.std > tt.Corners.std);
    check_rel ~tol:1e-9 "p3sigma consistency"
      (tt.Corners.mean +. (3.0 *. tt.Corners.std))
      tt.Corners.p3sigma
  | _ -> Alcotest.fail "expected two corner results"

let test_corner_worst () =
  let results = Lazy.force corner_results in
  let w = Corners.worst results in
  check_true "worst is the fast-hot corner" (w.Corners.corner.Corners.name = "FF/125C");
  List.iter
    (fun r -> check_true "worst dominates" (w.Corners.p3sigma >= r.Corners.p3sigma))
    results

let test_standard_corner_set () =
  check_close "four standard corners" 4.0
    (float_of_int (List.length Corners.standard_corners));
  check_true "typical corner has no shift"
    (Corners.typical.Corners.l_shift_sigmas = 0.0)

(* ---- variance profile ---- *)

let profile =
  lazy
    (let chars = Characterize.default_library () in
     let ctx =
       Estimate.context ~p:0.5 ~chars ~corr ~histogram:(Lazy.force hist) ()
     in
     ( Variance_profile.compute ~corr ~rgcorr:(Estimate.correlation ctx) ~n:2500
         ~width:200.0 ~height:200.0 (),
       ctx ))

let test_profile_monotone_to_one () =
  let prof, _ = Lazy.force profile in
  let prev = ref 0.0 in
  Array.iter
    (fun share ->
      check_true "cumulative share non-decreasing" (share >= !prev -. 1e-12);
      prev := share)
    prof.Variance_profile.cumulative_share;
  check_rel ~tol:1e-9 "ends at 1" 1.0
    prof.Variance_profile.cumulative_share.(Array.length prof.Variance_profile.cumulative_share - 1)

let test_profile_total_matches_estimator () =
  let prof, ctx = Lazy.force profile in
  let r =
    Estimator_integral.rect_2d ~corr ~rgcorr:(Estimate.correlation ctx) ~n:2500
      ~width:200.0 ~height:200.0 ()
  in
  (* the profile total additionally carries the exact diagonal term *)
  let rg = Estimate.random_gate ctx in
  let expected = r.Estimator_integral.variance +. (2500.0 *. rg.Random_gate.variance) in
  check_rel ~tol:5e-3 "profile total consistent with Eq. 20 + diagonal"
    expected prof.Variance_profile.total_variance

let test_profile_diagonal_share () =
  let prof, _ = Lazy.force profile in
  check_in_range "diagonal share small but positive" ~lo:1e-5 ~hi:0.2
    prof.Variance_profile.diagonal_share

let test_profile_radius_for_share () =
  let prof, _ = Lazy.force profile in
  let r50 = Variance_profile.radius_for_share prof ~share:0.5 in
  let r90 = Variance_profile.radius_for_share prof ~share:0.9 in
  check_true "quantile radii ordered" (r50 <= r90);
  check_true "radii within the die diagonal"
    (r90 <= sqrt ((200.0 ** 2.0) +. (200.0 ** 2.0)) +. 1e-9)

let test_profile_correlation_range_effect () =
  (* without a D2D floor, a shorter correlation range concentrates the
     variance at smaller separations (with a floor, the floor's mass at
     long range dominates the comparison instead) *)
  let chars = Characterize.default_library () in
  let wid_param =
    Process_param.make ~name:"wid" ~nominal:90.0 ~sigma_d2d:0.0
      ~sigma_wid:(Process_param.sigma_total param)
  in
  let prof_of dmax =
    let corr = Corr_model.create (Corr_model.Spherical { dmax }) wid_param in
    let ctx = Estimate.context ~p:0.5 ~chars ~corr ~histogram:(Lazy.force hist) () in
    Variance_profile.compute ~corr ~rgcorr:(Estimate.correlation ctx) ~n:2500
      ~width:200.0 ~height:200.0 ()
  in
  let share_at prof r =
    let idx = ref 0 in
    Array.iteri
      (fun i radius -> if radius <= r then idx := i)
      prof.Variance_profile.radii;
    prof.Variance_profile.cumulative_share.(!idx)
  in
  let short = prof_of 40.0 and long = prof_of 160.0 in
  check_true "short WID range concentrates variance at 60 um"
    (share_at short 60.0 > share_at long 60.0)

(* ---- parallel characterization ---- *)

let test_parallel_determinism () =
  let settings = (17, 100) in
  let l_points, mc_samples = settings in
  let seq =
    Characterize.characterize_library ~l_points ~mc_samples ~param ~seed:5 ()
  in
  let par =
    Characterize.characterize_library ~l_points ~mc_samples ~jobs:3 ~param
      ~seed:5 ()
  in
  Array.iteri
    (fun i (a : Characterize.cell_char) ->
      Array.iteri
        (fun s (sa : Characterize.state_char) ->
          let sb = par.(i).Characterize.states.(s) in
          check_close
            (Printf.sprintf "cell %d state %d identical analytic" i s)
            sa.Characterize.mu_analytic sb.Characterize.mu_analytic;
          check_close
            (Printf.sprintf "cell %d state %d identical mc" i s)
            sa.Characterize.mu_mc sb.Characterize.mu_mc)
        a.Characterize.states)
    seq

let test_corner_input_validation () =
  check_true "worst of empty rejected"
    (try
       ignore (Corners.worst []);
       false
     with Invalid_argument _ -> true);
  let rng = Rng.create ~seed:1 () in
  ignore rng;
  check_true "profile rejects bad points"
    (try
       let chars = Characterize.default_library () in
       let ctx = Estimate.context ~p:0.5 ~chars ~corr ~histogram:(Lazy.force hist) () in
       ignore
         (Variance_profile.compute ~points:1 ~corr
            ~rgcorr:(Estimate.correlation ctx) ~n:100 ~width:40.0 ~height:40.0 ());
       false
     with Invalid_argument _ -> true)

(* ---- leakage map ---- *)

let map_inputs =
  lazy
    (let chars = Characterize.default_library () in
     let rg =
       Random_gate.create ~chars ~histogram:(Lazy.force hist) ~p:0.5 ()
     in
     rg)

let test_map_total_matches_chip_mean () =
  let rg = Lazy.force map_inputs in
  let map =
    Leakage_map.compute ~tiles:8 ~samples:600 ~rg ~corr ~n:10_000 ~width:400.0
      ~height:400.0 ()
  in
  check_rel ~tol:0.06 "tile totals reproduce the chip mean"
    (10_000.0 *. rg.Random_gate.mu)
    (Leakage_map.total_mean map)

let test_map_shape_and_ordering () =
  let rg = Lazy.force map_inputs in
  let map =
    Leakage_map.compute ~tiles:6 ~samples:200 ~rg ~corr ~n:3600 ~width:240.0
      ~height:240.0 ()
  in
  check_close "tile count" 36.0 (float_of_int (Array.length map.Leakage_map.mean));
  Array.iteri
    (fun i m ->
      check_true "p95 at or above the mean" (map.Leakage_map.p95.(i) >= m *. 0.99))
    map.Leakage_map.mean;
  check_true "hotspot ratio at least 1" (map.Leakage_map.hotspot_ratio >= 1.0);
  let m, p = Leakage_map.tile map ~ix:0 ~iy:0 in
  check_true "tile accessor consistent" (p >= m *. 0.99)

let test_map_determinism () =
  let rg = Lazy.force map_inputs in
  let run () =
    Leakage_map.compute ~tiles:4 ~samples:50 ~seed:9 ~rg ~corr ~n:1600
      ~width:160.0 ~height:160.0 ()
  in
  let a = run () and b = run () in
  check_close "deterministic hotspot ratio" a.Leakage_map.hotspot_ratio
    b.Leakage_map.hotspot_ratio

let test_map_rejects_non_psd () =
  let rg = Lazy.force map_inputs in
  let bad = Corr_model.create (Corr_model.Linear { dmax = 120.0 }) param in
  check_true "non-PSD family rejected"
    (try
       ignore
         (Leakage_map.compute ~rg ~corr:bad ~n:1000 ~width:100.0 ~height:100.0 ());
       false
     with Invalid_argument _ -> true)

let test_map_render () =
  let rg = Lazy.force map_inputs in
  let map =
    Leakage_map.compute ~tiles:4 ~samples:50 ~rg ~corr ~n:1600 ~width:160.0
      ~height:160.0 ()
  in
  let s = Leakage_map.render map in
  (* header line + 4 rows of 4 glyphs *)
  check_close "render has 5 lines" 5.0
    (float_of_int
       (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))))

let suite =
  ( "analysis",
    [
      slow_case "corner ordering" test_corner_ordering;
      slow_case "worst corner" test_corner_worst;
      case "standard corner set" test_standard_corner_set;
      slow_case "profile monotone to one" test_profile_monotone_to_one;
      slow_case "profile total vs estimator" test_profile_total_matches_estimator;
      slow_case "profile diagonal share" test_profile_diagonal_share;
      slow_case "profile quantile radii" test_profile_radius_for_share;
      slow_case "profile range effect" test_profile_correlation_range_effect;
      slow_case "parallel characterization determinism" test_parallel_determinism;
      case "input validation" test_corner_input_validation;
      slow_case "map total vs chip mean" test_map_total_matches_chip_mean;
      slow_case "map shape and ordering" test_map_shape_and_ordering;
      case "map determinism" test_map_determinism;
      case "map rejects non-PSD family" test_map_rejects_non_psd;
      case "map render" test_map_render;
    ] )
