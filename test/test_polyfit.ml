open Rgleak_num
open Testutil

let test_eval () =
  check_close ~tol:1e-12 "constant" 3.0 (Polyfit.eval [| 3.0 |] 7.0);
  check_close ~tol:1e-12 "linear" 9.0 (Polyfit.eval [| 1.0; 2.0 |] 4.0);
  check_close ~tol:1e-12 "quadratic" 14.0 (Polyfit.eval [| 2.0; 1.0; 1.0 |] (-4.0));
  check_close ~tol:1e-12 "empty" 0.0 (Polyfit.eval [||] 1.0)

let test_exact_recovery =
  qcheck ~count:200 "fit recovers exact quadratics"
    QCheck2.Gen.(
      tup3 (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
        (float_range (-5.0) 5.0))
    (fun (c0, c1, c2) ->
      let xs = Vector.linspace (-2.0) 3.0 25 in
      let ys = Array.map (fun x -> c0 +. (c1 *. x) +. (c2 *. x *. x)) xs in
      let c = Polyfit.fit ~degree:2 xs ys in
      Float.abs (c.(0) -. c0) < 1e-7
      && Float.abs (c.(1) -. c1) < 1e-7
      && Float.abs (c.(2) -. c2) < 1e-7)

let test_overdetermined_least_squares () =
  (* y = x with one outlier; least squares line must sit between *)
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 0.0; 1.0; 2.0; 3.0; 8.0 |] in
  let c = Polyfit.fit ~degree:1 xs ys in
  check_true "slope pulled above 1" (c.(1) > 1.0);
  check_true "slope below outlier slope" (c.(1) < 2.0)

let test_ill_conditioned_offsets () =
  (* fitting around L = 90 nm: raw normal equations on x^4 terms would
     lose precision; centering must keep this accurate *)
  let xs = Vector.linspace 60.0 120.0 31 in
  let ys = Array.map (fun x -> 5.0 -. (0.08 *. x) +. (0.0013 *. x *. x)) xs in
  let c = Polyfit.fit ~degree:2 xs ys in
  check_rel ~tol:1e-6 "offset c0" 5.0 c.(0);
  check_rel ~tol:1e-6 "offset c1" (-0.08) c.(1);
  check_rel ~tol:1e-6 "offset c2" 0.0013 c.(2)

let test_degenerate_inputs () =
  Alcotest.check_raises "too few points"
    (Invalid_argument "Polyfit.fit: need more points than degree") (fun () ->
      ignore (Polyfit.fit ~degree:2 [| 1.0; 2.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Polyfit.fit: length mismatch") (fun () ->
      ignore (Polyfit.fit ~degree:1 [| 1.0; 2.0; 3.0 |] [| 1.0; 2.0 |]))

let test_log_quadratic_roundtrip =
  qcheck ~count:200 "fit_log_quadratic recovers (a, b, c)"
    QCheck2.Gen.(
      tup3 (float_range (-25.0) (-5.0)) (float_range (-0.2) (-0.01))
        (float_range 0.0 0.002))
    (fun (ln_a, b, c) ->
      let a = exp ln_a in
      let ls = Vector.linspace 70.0 110.0 20 in
      let currents =
        Array.map (fun l -> a *. exp ((b *. l) +. (c *. l *. l))) ls
      in
      let a', b', c' = Polyfit.fit_log_quadratic ~ls ~currents in
      Float.abs (log a' -. ln_a) < 1e-6
      && Float.abs (b' -. b) < 1e-7
      && Float.abs (c' -. c) < 1e-9)

let test_log_quadratic_rejects_nonpositive () =
  Alcotest.check_raises "non-positive current rejected"
    (Invalid_argument "Polyfit.fit_log_quadratic: currents must be positive")
    (fun () ->
      ignore
        (Polyfit.fit_log_quadratic ~ls:[| 1.0; 2.0; 3.0; 4.0 |]
           ~currents:[| 1.0; 0.0; 1.0; 1.0 |]))

let test_rms_residual () =
  let xs = [| 0.0; 1.0; 2.0 |] in
  let ys = [| 1.0; 2.0; 3.0 |] in
  check_close ~tol:1e-12 "zero residual on exact fit" 0.0
    (Polyfit.rms_residual ~coeffs:[| 1.0; 1.0 |] ~xs ~ys);
  check_close ~tol:1e-12 "unit residual" 1.0
    (Polyfit.rms_residual ~coeffs:[| 2.0; 1.0 |] ~xs ~ys)

let suite =
  ( "polyfit",
    [
      case "horner evaluation" test_eval;
      test_exact_recovery;
      case "overdetermined least squares" test_overdetermined_least_squares;
      case "conditioning at large offsets" test_ill_conditioned_offsets;
      case "degenerate inputs" test_degenerate_inputs;
      test_log_quadratic_roundtrip;
      case "log-quadratic rejects non-positive" test_log_quadratic_rejects_nonpositive;
      case "rms residual" test_rms_residual;
    ] )
