(* Tests for the production extensions: Gauss-Hermite quadrature,
   temperature-dependent device model, the Monte-Carlo reference
   simulator, the leakage distribution / yield module, multi-region
   estimation and spatial-correlation extraction. *)

open Rgleak_num
open Rgleak_process
open Rgleak_device
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length
let corr_linear = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let chars =
  lazy
    (let rng = Rng.create ~seed:99 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:49 ~mc_samples:500 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ])

(* ---- Gauss-Hermite ---- *)

let test_gh_moments () =
  let e f = Quadrature.normal_expectation f ~mu:0.0 ~sigma:1.0 in
  check_close ~tol:1e-12 "E[Z] = 0" 0.0 (e Fun.id);
  check_rel ~tol:1e-12 "E[Z^2] = 1" 1.0 (e (fun z -> z *. z));
  check_rel ~tol:1e-12 "E[Z^4] = 3" 3.0 (e (fun z -> z ** 4.0));
  check_rel ~tol:1e-12 "E[e^Z] = e^1/2" (exp 0.5) (e exp)

let test_gh_weights () =
  List.iter
    (fun n ->
      let nodes = Quadrature.gauss_hermite_nodes n in
      let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 nodes in
      (* integral of e^{-x^2} over the line is sqrt(pi) *)
      check_rel ~tol:1e-10
        (Printf.sprintf "order %d weights sum to sqrt(pi)" n)
        (sqrt Float.pi) total;
      Array.iter (fun (_, w) -> check_true "positive weight" (w > 0.0)) nodes)
    [ 1; 2; 5; 16; 64 ]

let test_gh_matches_gl =
  qcheck ~count:100 "GH normal expectation matches GL on [mu±8s]"
    QCheck2.Gen.(QCheck2.Gen.pair (float_range (-0.1) (-0.01)) (float_range 1.0 5.0))
    (fun (b, sigma) ->
      let mu = 90.0 in
      let f l = exp (b *. l) in
      let gh = Quadrature.normal_expectation ~order:64 f ~mu ~sigma in
      let pdf l =
        let z = (l -. mu) /. sigma in
        exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))
      in
      let gl =
        Quadrature.gauss_legendre ~order:96
          (fun l -> f l *. pdf l)
          ~lo:(mu -. (8.0 *. sigma))
          ~hi:(mu +. (8.0 *. sigma))
      in
      Float.abs (gh -. gl) < 1e-8 *. gh)

(* ---- temperature ---- *)

let test_env_at () =
  let hot = Mosfet.env_at ~temp_k:358.0 () in
  check_rel ~tol:1e-9 "thermal voltage scales with T" (0.0259 /. 300.0 *. 358.0)
    hot.Mosfet.v_thermal;
  check_close "default is 300K" 300.0 Mosfet.default_env.Mosfet.temp_k;
  Alcotest.check_raises "non-positive temperature"
    (Invalid_argument "Mosfet.env_at: temperature must be positive") (fun () ->
      ignore (Mosfet.env_at ~temp_k:0.0 ()))

let test_leakage_grows_with_temperature () =
  let nand = Library.find "NAND2_X1" in
  let leak temp_k =
    Cell.leakage ~env:(Mosfet.env_at ~temp_k ()) nand [| false; false |]
  in
  let cold = leak 298.0 and warm = leak 348.0 and hot = leak 398.0 in
  check_true "monotone in T" (cold < warm && warm < hot);
  check_in_range "25C -> 125C growth plausible" ~lo:2.0 ~hi:100.0 (hot /. cold)

let test_characterize_at_temperature () =
  let rng = Rng.create ~seed:303 () in
  let hot =
    Characterize.characterize ~l_points:33 ~mc_samples:500
      ~env:(Mosfet.env_at ~temp_k:398.0 ())
      ~param ~rng (Library.find "INV_X1")
  in
  let cold = (Lazy.force chars).(Library.index_of "INV_X1") in
  check_true "hot characterization has larger mean"
    (hot.Characterize.states.(0).Characterize.mu_analytic
    > cold.Characterize.states.(0).Characterize.mu_analytic)

(* ---- MC reference simulator ---- *)

let small_placed =
  lazy
    (let rng = Rng.create ~seed:404 () in
     Generator.random_placed ~histogram:(Lazy.force hist) ~n:300 ~rng ())

let test_mc_reference_matches_exact () =
  let placed = Lazy.force small_placed in
  let chars = Lazy.force chars in
  let mc = Mc_reference.prepare ~chars ~corr:corr_linear ~p:0.5 placed in
  check_close "gate count" 300.0 (float_of_int (Mc_reference.gate_count mc));
  let rng = Rng.create ~seed:405 () in
  let mean_mc, std_mc = Mc_reference.moments mc rng ~count:3000 in
  let ctx =
    Estimate.context ~p:0.5 ~chars ~corr:corr_linear
      ~histogram:(Histogram.of_netlist placed.Placer.netlist) ()
  in
  let tr =
    Estimator_exact.estimate ~corr:corr_linear
      ~rgcorr:(Estimate.correlation ctx) placed
  in
  check_rel ~tol:0.02 "MC mean vs exact pairwise" tr.Estimator_exact.mean mean_mc;
  check_rel ~tol:0.07 "MC std vs exact pairwise" tr.Estimator_exact.std std_mc

let test_mc_reference_determinism () =
  let placed = Lazy.force small_placed in
  let mc =
    Mc_reference.prepare ~chars:(Lazy.force chars) ~corr:corr_linear ~p:0.5
      placed
  in
  let a = Mc_reference.sample mc (Rng.create ~seed:1 ()) in
  let b = Mc_reference.sample mc (Rng.create ~seed:1 ()) in
  check_close "same seed, same sample" a b

let test_fixed_state_isolates_process_noise () =
  let placed = Lazy.force small_placed in
  let mc =
    Mc_reference.prepare ~chars:(Lazy.force chars) ~corr:corr_linear ~p:0.5
      placed
  in
  (* with frozen states, variance across dies comes only from process
     variation, so it must be below the full variance *)
  let rng1 = Rng.create ~seed:11 () and rng2 = Rng.create ~seed:11 () in
  let acc_fixed = Stats.Acc.create () and acc_full = Stats.Acc.create () in
  for _ = 1 to 1500 do
    Stats.Acc.add acc_fixed (Mc_reference.fixed_state_sample mc rng1 ~state_seed:77);
    Stats.Acc.add acc_full (Mc_reference.sample mc rng2)
  done;
  (* one frozen state assignment can sit above or below the average,
     but at chip scale the state-randomness share is small, so the two
     variances must be comparable *)
  let ratio = Stats.Acc.variance acc_fixed /. Stats.Acc.variance acc_full in
  check_in_range "fixed-state variance comparable to full" ~lo:0.6 ~hi:1.4 ratio

(* ---- distribution / yield ---- *)

let test_distribution_moment_matching =
  qcheck ~count:200 "lognormal moment matching round-trips"
    QCheck2.Gen.(QCheck2.Gen.pair (float_range 10.0 1e6) (float_range 0.0 0.8))
    (fun (mean, cv) ->
      let std = cv *. mean in
      let d = Distribution.of_moments ~mean ~std () in
      (* recompute mean/var of the fitted lognormal *)
      let m = exp (d.Distribution.mu_ln +. (d.Distribution.sigma_ln ** 2.0 /. 2.0)) in
      (* expm1: the naive exp(s²) - 1 cancels for small cv and made
         this property flaky *)
      let v =
        Float.expm1 (d.Distribution.sigma_ln ** 2.0)
        *. exp ((2.0 *. d.Distribution.mu_ln) +. (d.Distribution.sigma_ln ** 2.0))
      in
      Float.abs (m -. mean) < 1e-9 *. mean
      && Float.abs (sqrt v -. std) < 1e-9 *. Float.max std 1e-12)

let test_distribution_quantiles () =
  let d = Distribution.of_moments ~mean:1000.0 ~std:250.0 () in
  check_rel ~tol:1e-7 "median is exp(mu_ln)" (exp d.Distribution.mu_ln)
    (Distribution.quantile d 0.5);
  check_true "lognormal median below mean"
    (Distribution.quantile d 0.5 < 1000.0);
  let q99 = Distribution.quantile d 0.99 in
  check_rel ~tol:1e-9 "cdf/quantile roundtrip" 0.99 (Distribution.cdf d q99);
  let dn = Distribution.of_moments ~shape:Distribution.Normal ~mean:1000.0 ~std:250.0 () in
  check_rel ~tol:1e-7 "normal median is the mean" 1000.0 (Distribution.quantile dn 0.5);
  check_true "lognormal right tail heavier than normal"
    (Distribution.quantile d 0.999 > Distribution.quantile dn 0.999)

let test_yield_semantics () =
  let d = Distribution.of_moments ~mean:1000.0 ~std:250.0 () in
  let y1 = Distribution.yield d ~budget:800.0 in
  let y2 = Distribution.yield d ~budget:1200.0 in
  check_true "yield monotone in budget" (y2 > y1);
  check_rel ~tol:1e-9 "budget_for_yield inverts yield" 0.9
    (Distribution.yield d ~budget:(Distribution.budget_for_yield d ~yield:0.9));
  check_close "yield at zero budget" 0.0 (Distribution.yield d ~budget:0.0)

let test_distribution_vs_mc () =
  (* the lognormal fitted to the analytical moments should track the MC
     distribution of a real design, including the upper quantiles *)
  let placed = Lazy.force small_placed in
  let chars = Lazy.force chars in
  let ctx =
    Estimate.context ~p:0.5 ~chars ~corr:corr_linear
      ~histogram:(Histogram.of_netlist placed.Placer.netlist) ()
  in
  let tr =
    Estimator_exact.estimate ~corr:corr_linear
      ~rgcorr:(Estimate.correlation ctx) placed
  in
  let d =
    Distribution.of_moments ~mean:tr.Estimator_exact.mean
      ~std:tr.Estimator_exact.std ()
  in
  let mc = Mc_reference.prepare ~chars ~corr:corr_linear ~p:0.5 placed in
  let samples = Mc_reference.sample_many mc (Rng.create ~seed:500 ()) ~count:4000 in
  List.iter
    (fun q ->
      let analytic = Distribution.quantile d q in
      let empirical = Stats.percentile samples (100.0 *. q) in
      check_rel ~tol:0.08
        (Printf.sprintf "quantile %.2f vs MC" q)
        empirical analytic)
    [ 0.25; 0.5; 0.75; 0.95 ]

(* ---- multi-region ---- *)

let test_multi_region_partition_consistency () =
  let chars = Lazy.force chars in
  let h = Lazy.force hist in
  let single =
    Estimate.early ~p:0.5 ~method_:Estimate.Integral_2d ~chars ~corr:corr_linear
      { Estimate.histogram = h; n = 6400; width = 320.0; height = 320.0 }
  in
  let half ~label ~x =
    Multi_region.region ~label ~histogram:h ~n:3200 ~x ~y:0.0 ~width:160.0
      ~height:320.0 ()
  in
  let multi =
    Multi_region.estimate ~p:0.5 ~chars ~corr:corr_linear
      [ half ~label:"left" ~x:0.0; half ~label:"right" ~x:160.0 ]
  in
  check_rel ~tol:1e-3 "partitioned std equals whole-die std"
    single.Estimate.std multi.Multi_region.std;
  check_rel ~tol:1e-9 "partitioned mean equals whole-die mean"
    single.Estimate.mean multi.Multi_region.mean;
  check_in_range "cross share in (0,1)" ~lo:0.01 ~hi:0.99
    multi.Multi_region.cross_share

let test_multi_region_overlap_rejected () =
  let h = Lazy.force hist in
  let r1 = Multi_region.region ~histogram:h ~n:100 ~x:0.0 ~y:0.0 ~width:100.0 ~height:100.0 () in
  let r2 = Multi_region.region ~histogram:h ~n:100 ~x:50.0 ~y:50.0 ~width:100.0 ~height:100.0 () in
  check_true "overlapping regions rejected"
    (try
       ignore (Multi_region.estimate ~chars:(Lazy.force chars) ~corr:corr_linear [ r1; r2 ]);
       false
     with Invalid_argument _ -> true)

let test_multi_region_far_apart_wid_only () =
  (* without D2D, regions beyond the correlation range are independent:
     cross share ~ 0 and the variance is the sum of the parts *)
  let chars = Lazy.force chars in
  let h = Lazy.force hist in
  let wid_param =
    Process_param.make ~name:"wid" ~nominal:90.0 ~sigma_d2d:0.0
      ~sigma_wid:(Process_param.sigma_total param)
  in
  let corr = Corr_model.create (Corr_model.Linear { dmax = 50.0 }) wid_param in
  let r ~label ~x =
    Multi_region.region ~label ~histogram:h ~n:1000 ~x ~y:0.0 ~width:100.0
      ~height:100.0 ()
  in
  let multi =
    Multi_region.estimate ~p:0.5 ~chars ~corr
      [ r ~label:"a" ~x:0.0; r ~label:"b" ~x:5000.0 ]
  in
  check_in_range "cross share vanishes" ~lo:(-1e-6) ~hi:1e-6
    multi.Multi_region.cross_share

let test_multi_region_heterogeneous () =
  let chars = Lazy.force chars in
  let logic = Lazy.force hist in
  let sram = Histogram.of_weights [ ("SRAM6T", 1.0) ] in
  let r1 =
    Multi_region.region ~label:"sram" ~histogram:sram ~n:20_000 ~x:0.0 ~y:0.0
      ~width:150.0 ~height:150.0 ()
  in
  let r2 =
    Multi_region.region ~label:"logic" ~histogram:logic ~n:4000 ~x:150.0 ~y:0.0
      ~width:150.0 ~height:150.0 ()
  in
  let r = Multi_region.estimate ~chars ~corr:corr_linear [ r1; r2 ] in
  check_true "positive estimate" (r.Multi_region.mean > 0.0 && r.Multi_region.std > 0.0);
  check_close "two region means reported" 2.0
    (float_of_int (Array.length r.Multi_region.region_means));
  let total_of_regions =
    Array.fold_left (fun acc (_, m) -> acc +. m) 0.0 r.Multi_region.region_means
  in
  check_rel ~tol:1e-9 "mean is the sum of region means" total_of_regions
    r.Multi_region.mean

(* ---- correlation extraction ---- *)

let test_corr_fit_noiseless_roundtrip () =
  (* samples generated directly from a known model must be recovered *)
  let truth = Corr_model.create (Corr_model.Linear { dmax = 150.0 }) param in
  let samples =
    Array.map
      (fun d ->
        { Corr_fit.distance = d; correlation = Corr_model.total truth d; weight = 1.0 })
      (Vector.linspace 5.0 400.0 40)
  in
  let r =
    Corr_fit.fit_family ~sigma_total:(Process_param.sigma_total param)
      Corr_fit.Fit_linear samples
  in
  check_rel ~tol:0.02 "recovered dmax" 150.0 r.Corr_fit.scale;
  check_close ~tol:0.01 "recovered floor" 0.5 r.Corr_fit.floor;
  check_true "tiny residual" (r.Corr_fit.rss < 1e-4)

let test_corr_fit_family_selection () =
  let truth = Corr_model.create (Corr_model.Gaussian { range = 100.0 }) param in
  let samples =
    Array.map
      (fun d ->
        { Corr_fit.distance = d; correlation = Corr_model.total truth d; weight = 1.0 })
      (Vector.linspace 5.0 400.0 40)
  in
  let results = Corr_fit.fit ~sigma_total:(Process_param.sigma_total param) samples in
  (match results with
  | best :: _ ->
    check_true "gaussian family wins on gaussian data"
      (best.Corr_fit.family = Corr_fit.Fit_gaussian)
  | [] -> Alcotest.fail "no fit results");
  (* results sorted by residual *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Corr_fit.rss <= b.Corr_fit.rss && sorted rest
    | _ -> true
  in
  check_true "results sorted by rss" (sorted results)

let test_corr_fit_from_sampled_dies () =
  (* end-to-end: sample dies from a known model, build empirical
     correlations, extract, compare chip-sigma impact *)
  let truth = Corr_model.create (Corr_model.Spherical { dmax = 100.0 }) param in
  let rng = Rng.create ~seed:606 () in
  let locations =
    Array.init 64 (fun i ->
        { Variation.x = float_of_int (i mod 8) *. 25.0;
          y = float_of_int (i / 8) *. 25.0 })
  in
  let sampler = Variation.prepare truth locations in
  let values = Array.init 400 (fun _ -> Variation.sample sampler rng) in
  let samples = Corr_fit.empirical ~values ~locations ~bins:16 () in
  check_true "empirical produced samples" (Array.length samples > 5);
  let r =
    Corr_fit.best ~sigma_total:(Process_param.sigma_total param) samples
  in
  check_in_range "extracted floor near 0.5" ~lo:0.35 ~hi:0.65 r.Corr_fit.floor;
  (* the extracted model must predict nearly the same chip sigma *)
  let chars = Lazy.force chars in
  let h = Lazy.force hist in
  let layout = Layout.square ~n:900 () in
  let std_of corr =
    let ctx = Estimate.context ~p:0.5 ~chars ~corr ~histogram:h () in
    (Estimator_linear.estimate ~corr ~rgcorr:(Estimate.correlation ctx) ~layout ())
      .Estimator_linear.std
  in
  check_rel ~tol:0.10 "chip sigma with extracted vs true model"
    (std_of truth) (std_of r.Corr_fit.model)

let test_corr_fit_validation () =
  check_true "too few samples rejected"
    (try
       ignore
         (Corr_fit.fit_family ~sigma_total:1.0 Corr_fit.Fit_linear
            [| { Corr_fit.distance = 1.0; correlation = 0.9; weight = 1.0 } |]);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "extensions",
    [
      case "gauss-hermite moments" test_gh_moments;
      case "gauss-hermite weights" test_gh_weights;
      test_gh_matches_gl;
      case "temperature environment" test_env_at;
      case "leakage grows with temperature" test_leakage_grows_with_temperature;
      case "characterize at temperature" test_characterize_at_temperature;
      slow_case "mc reference vs exact estimator" test_mc_reference_matches_exact;
      case "mc reference determinism" test_mc_reference_determinism;
      slow_case "fixed-state sampling" test_fixed_state_isolates_process_noise;
      test_distribution_moment_matching;
      case "distribution quantiles" test_distribution_quantiles;
      case "yield semantics" test_yield_semantics;
      slow_case "distribution vs monte carlo" test_distribution_vs_mc;
      slow_case "multi-region partition consistency"
        test_multi_region_partition_consistency;
      case "multi-region overlap rejected" test_multi_region_overlap_rejected;
      slow_case "multi-region independence at distance"
        test_multi_region_far_apart_wid_only;
      case "multi-region heterogeneous" test_multi_region_heterogeneous;
      case "correlation fit roundtrip" test_corr_fit_noiseless_roundtrip;
      case "correlation family selection" test_corr_fit_family_selection;
      slow_case "correlation extraction from dies" test_corr_fit_from_sampled_dies;
      case "correlation fit validation" test_corr_fit_validation;
    ] )
