(* Cross-module property tests: invariants that tie the layers together,
   checked over randomized inputs with QCheck. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length

let chars =
  lazy
    (let rng = Rng.create ~seed:777 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:33 ~mc_samples:200 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ])

(* variance grows with correlation range: more correlation, more n^2 mass *)
let test_sigma_monotone_in_range =
  qcheck ~count:25 "chip sigma monotone in correlation range"
    QCheck2.Gen.(QCheck2.Gen.pair (float_range 20.0 150.0) (float_range 1.05 2.0))
    (fun (dmax, factor) ->
      let std_of dmax =
        let corr = Corr_model.create (Corr_model.Spherical { dmax }) param in
        let ctx =
          Estimate.context ~p:0.5 ~chars:(Lazy.force chars) ~corr
            ~histogram:(Lazy.force hist) ()
        in
        (Estimator_linear.estimate ~corr ~rgcorr:(Estimate.correlation ctx)
           ~layout:(Layout.square ~n:400 ()) ())
          .Estimator_linear.std
      in
      std_of (dmax *. factor) >= std_of dmax -. 1e-9)

(* the RG mean is linear under histogram blending *)
let test_rg_mean_linear_in_mixing =
  qcheck ~count:50 "RG mean linear under histogram blending"
    QCheck2.Gen.(float_range 0.0 1.0)
    (fun t ->
      let chars = Lazy.force chars in
      let h1 = Histogram.of_weights [ ("INV_X1", 1.0) ] in
      let h2 = Histogram.of_weights [ ("DFF_X1", 1.0) ] in
      let blend =
        Histogram.of_weights
          [ ("INV_X1", Float.max 1e-9 (1.0 -. t)); ("DFF_X1", Float.max 1e-9 t) ]
      in
      let mu h = (Random_gate.create ~chars ~histogram:h ~p:0.5 ()).Random_gate.mu in
      let direct = mu blend in
      let expected = ((1.0 -. t) *. mu h1) +. (t *. mu h2) in
      Float.abs (direct -. expected) < 1e-6 *. Float.max 1.0 expected)

(* occurrence counts are symmetric under offset negation, even with a
   partial last row *)
let test_occurrences_negation_symmetry =
  qcheck ~count:200 "occ(i,j) = occ(-i,-j) including partial rows"
    QCheck2.Gen.(
      tup3 (int_range 1 150) (int_range (-12) 12) (int_range (-12) 12))
    (fun (n, di, dj) ->
      let l = Layout.square ~n () in
      Layout.occurrences l ~di ~dj = Layout.occurrences l ~di:(-di) ~dj:(-dj))

(* largest-remainder rounding is within one gate of proportionality *)
let test_counts_within_one =
  qcheck ~count:200 "histogram counts within 1 of n*alpha"
    QCheck2.Gen.(int_range 1 20_000)
    (fun n ->
      let h = Lazy.force hist in
      let counts = Histogram.counts_for h ~n in
      let ok = ref true in
      Array.iteri
        (fun i c ->
          let exact = Histogram.frequency h i *. float_of_int n in
          if Float.abs (float_of_int c -. exact) > 1.0 +. 1e-9 then ok := false)
        counts;
      !ok)

(* distribution quantile is monotone in probability *)
let test_quantile_monotone =
  qcheck ~count:200 "distribution quantile monotone"
    QCheck2.Gen.(
      tup3 (float_range 100.0 1e5) (float_range 0.05 0.6)
        (QCheck2.Gen.pair (float_range 0.01 0.98) (float_range 0.001 0.01)))
    (fun (mean, cv, (p, dp)) ->
      let d = Distribution.of_moments ~mean ~std:(cv *. mean) () in
      Distribution.quantile d (p +. dp) >= Distribution.quantile d p)

(* pairwise leakage correlation bounded by the same-gate value *)
let test_pair_corr_bounded =
  qcheck ~count:100 "f_mn(rho) <= f_mn(1) and non-negative"
    QCheck2.Gen.(float_range 0.0 1.0)
    (fun rho ->
      let chars = Lazy.force chars in
      let a = chars.(Library.index_of "NAND3_X1").Characterize.states.(0) in
      let b = chars.(Library.index_of "NOR2_X1").Characterize.states.(0) in
      let f r = Pair_correlation.analytic a b ~param ~rho:r in
      f rho >= -1e-9 && f rho <= f 1.0 +. 1e-9)

(* techmap: a K-input AND tree must contain exactly ceil((K-1)/3) cells
   (each AND cell of fan-in f reduces the signal count by f-1, and the
   decomposition always uses the largest available fan-in first) *)
let test_techmap_tree_size =
  qcheck ~count:50 "AND tree cell count"
    QCheck2.Gen.(int_range 2 24)
    (fun k ->
      let inputs = List.init k (fun i -> Printf.sprintf "i%d" i) in
      let text =
        String.concat "\n"
          (List.map (fun i -> Printf.sprintf "INPUT(%s)" i) inputs
          @ [ "OUTPUT(z)";
              Printf.sprintf "z = AND(%s)" (String.concat ", " inputs) ])
      in
      let nl, _ = Techmap.map (Bench_format.parse_string text) in
      (* each cell of fan-in f removes f-1 signals; k-1 removals total;
         max fan-in 4 -> at least ceil((k-1)/3) cells *)
      let cells = Netlist.size nl in
      cells >= (k - 1 + 2) / 3 && cells <= k - 1)

(* estimate scale-invariance: scaling all distances and the correlation
   range together leaves the variance unchanged *)
let test_scale_invariance =
  qcheck ~count:20 "joint geometric rescaling leaves sigma unchanged"
    QCheck2.Gen.(float_range 0.5 3.0)
    (fun scale ->
      let chars = Lazy.force chars in
      let std_of ~dmax ~width ~height =
        let corr = Corr_model.create (Corr_model.Spherical { dmax }) param in
        let ctx =
          Estimate.context ~p:0.5 ~chars ~corr ~histogram:(Lazy.force hist) ()
        in
        (Estimator_integral.rect_2d ~corr ~rgcorr:(Estimate.correlation ctx)
           ~n:900 ~width ~height ())
          .Estimator_integral.std
      in
      let base = std_of ~dmax:80.0 ~width:120.0 ~height:120.0 in
      let scaled =
        std_of ~dmax:(80.0 *. scale) ~width:(120.0 *. scale)
          ~height:(120.0 *. scale)
      in
      Float.abs (scaled -. base) < 1e-6 *. base)

(* exporting any generated netlist over the mappable cells always
   produces a structurally valid .bench *)
let test_export_always_valid =
  qcheck ~count:30 "netlist export always validates"
    QCheck2.Gen.(QCheck2.Gen.pair (int_range 5 300) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed ()
      and h =
        Histogram.of_weights
          [ ("INV_X1", 2.0); ("NAND2_X1", 3.0); ("NOR3_X1", 1.0);
            ("XOR2_X1", 1.0); ("DFF_X1", 1.0); ("AOI21_X1", 1.0);
            ("MUX2_X1", 1.0); ("FA_X1", 1.0) ]
      in
      let nl = Generator.random_netlist ~histogram:h ~n ~rng () in
      Bench_format.validate (Techmap.netlist_to_bench nl) = Ok ())

(* multinomial generation matches the histogram in expectation *)
let test_multinomial_concentration =
  qcheck ~count:10 "multinomial counts concentrate around n*alpha"
    QCheck2.Gen.(int_range 2_000 10_000)
    (fun n ->
      let h = Lazy.force hist in
      let rng = Rng.create ~seed:n () in
      let nl = Generator.random_netlist ~sampling:`Multinomial ~histogram:h ~n ~rng () in
      let counts = Netlist.cell_counts nl in
      let ok = ref true in
      List.iter
        (fun i ->
          let alpha = Histogram.frequency h i in
          let expected = alpha *. float_of_int n in
          let tolerance = 6.0 *. sqrt (expected *. (1.0 -. alpha)) +. 1.0 in
          if Float.abs (float_of_int counts.(i) -. expected) > tolerance then
            ok := false)
        (Histogram.support h);
      !ok)

(* char_io roundtrip over randomized subsets of the library settings *)
let test_char_io_random_settings =
  qcheck ~count:5 "char_io roundtrip across characterization settings"
    QCheck2.Gen.(QCheck2.Gen.pair (int_range 9 33) (int_range 50 300))
    (fun (l_points, mc_samples) ->
      let rng = Rng.create ~seed:(l_points + mc_samples) () in
      let ch =
        Characterize.characterize ~l_points ~mc_samples ~param ~rng
          (Library.find "NOR2_X1")
      in
      (* wrap in a single-element "library" snapshot via to_string of a
         full array is required; use the one cell padded by itself *)
      let arr = [| ch |] in
      let restored = Char_io.of_string (Char_io.to_string arr) in
      Array.length restored = 1
      && (restored.(0).Characterize.states.(0).Characterize.mu_analytic
          = ch.Characterize.states.(0).Characterize.mu_analytic))

let suite =
  ( "properties",
    [
      test_sigma_monotone_in_range;
      test_rg_mean_linear_in_mixing;
      test_occurrences_negation_symmetry;
      test_counts_within_one;
      test_quantile_monotone;
      test_pair_corr_bounded;
      test_techmap_tree_size;
      test_scale_invariance;
      test_export_always_valid;
      test_multinomial_concentration;
      test_char_io_random_settings;
    ] )
