(* Expect-style CLI tests: spawn the real rgleak binary and assert the
   per-diagnostic-class exit codes (0 success, 2 invalid input, 3
   numeric breakdown), the best-effort tier degradation, and the
   determinism of fault-injected runs.  Kept out of the main suite so
   its process spawns do not interleave with the in-process tests. *)

let rgleak = "../bin/rgleak.exe"

let run ?(out = "/dev/null") args =
  let cmd =
    Printf.sprintf "%s > %s 2>/dev/null"
      (Filename.quote_command rgleak args)
      (Filename.quote out)
  in
  match Unix.system cmd with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED s -> Alcotest.failf "rgleak killed by signal %d" s
  | Unix.WSTOPPED s -> Alcotest.failf "rgleak stopped by signal %d" s

let check_exit name expected args =
  Alcotest.(check int) name expected (run args)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* invalid input exits 2, before any expensive characterization *)
let test_invalid_input () =
  check_exit "unknown method" 2
    [ "estimate"; "-n"; "500"; "--method"; "bogus" ];
  check_exit "malformed mix" 2 [ "estimate"; "-n"; "500"; "--mix"; "INV_X1" ];
  check_exit "malformed correlation" 2
    [ "estimate"; "-n"; "500"; "--corr"; "spherical" ];
  check_exit "unknown fault site" 2
    [ "estimate"; "-n"; "500"; "--fault-spec"; "nosuch:1:1" ];
  check_exit "out-of-range fault probability" 2
    [ "estimate"; "-n"; "500"; "--fault-spec"; "cholesky:2:1" ];
  check_exit "conflicting signoff sources" 2
    [ "signoff"; "--benchmark"; "c432"; "--bench-file"; "x.bench" ];
  check_exit "unknown cell" 2 [ "characterize"; "--cell"; "NOPE" ]

(* fault-spec edge cases: every malformed shape must exit 2 before any
   estimation work, including duplicates that List.assoc would silently
   shadow if configure accepted them *)
let test_fault_spec_edge_cases () =
  check_exit "empty spec" 2 [ "estimate"; "-n"; "200"; "--fault-spec"; "" ];
  check_exit "missing fields" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "cholesky:1" ];
  check_exit "too many fields" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "cholesky:1:1:1" ];
  check_exit "non-numeric probability" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "cholesky:often:1" ];
  check_exit "negative probability" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "cholesky:-0.1:1" ];
  check_exit "probability above one" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "quadrature:1.5:1" ];
  check_exit "non-integer seed" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "cholesky:0.5:x" ];
  check_exit "site name with wrong case" 2
    [ "estimate"; "-n"; "200"; "--fault-spec"; "Cholesky:0.5:1" ];
  check_exit "duplicate site" 2
    [ "estimate"; "-n"; "200";
      "--fault-spec"; "cholesky:0.5:1"; "--fault-spec"; "cholesky:1:2" ];
  (* distinct sites stay legal *)
  check_exit "two distinct sites accepted" 0
    [ "estimate"; "-n"; "200";
      "--fault-spec"; "cholesky:0:1"; "--fault-spec"; "quadrature:0:2" ]

(* a numeric breakdown under --strict exits 3 *)
let test_numeric_strict () =
  check_exit "poisoned F memo, strict" 3
    [ "estimate"; "-n"; "200"; "--method"; "linear";
      "--fault-spec"; "linear.f:1:1"; "--strict" ]

(* without --strict the failing tier is skipped and the run succeeds *)
let test_best_effort_degradation () =
  check_exit "poisoned F memo, best effort" 0
    [ "estimate"; "-n"; "200"; "--method"; "linear";
      "--fault-spec"; "linear.f:1:1" ]

(* identical fault specs give byte-identical output *)
let test_fault_determinism () =
  let args out =
    run ~out
      [ "estimate"; "-n"; "200"; "--method"; "linear";
        "--fault-spec"; "linear.f:0.5:42" ]
  in
  let t1 = Filename.temp_file "rgleak_cli" ".out"
  and t2 = Filename.temp_file "rgleak_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove t1; Sys.remove t2)
    (fun () ->
      let c1 = args t1 and c2 = args t2 in
      Alcotest.(check int) "same exit code" c1 c2;
      Alcotest.(check string) "byte-identical stdout" (read_file t1)
        (read_file t2))

(* ---------- batch ---------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rgleak_cli_batch_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let batch_manifest =
  {|{"id": "a", "n": 300, "mix": "INV_X1:3,NAND2_X1:2", "corr": "spherical:120", "tier": "linear", "seed": 7}
{"id": "b", "n": 120, "mix": "INV_X1:1,NOR2_X1:1", "corr": "spherical:120", "tier": "mc", "seed": 5, "replicas": 24}
|}

(* batch reports must be bit-identical across --jobs values *)
let test_batch_jobs_determinism () =
  with_temp_dir @@ fun dir ->
  let manifest = Filename.concat dir "m.jsonl" in
  write_file manifest batch_manifest;
  let out_of jobs =
    let out = Filename.concat dir (Printf.sprintf "out_j%d.jsonl" jobs) in
    let code =
      run
        [ "batch"; manifest; "--no-cache"; "--jobs"; string_of_int jobs;
          "--out"; out ]
    in
    Alcotest.(check int) (Printf.sprintf "jobs %d exits 0" jobs) 0 code;
    read_file out
  in
  Alcotest.(check string)
    "reports identical across --jobs 1/4" (out_of 1) (out_of 4)

(* cold and warm cache runs must produce byte-identical reports, and
   the warm run must actually hit the cache *)
let test_batch_cold_warm () =
  with_temp_dir @@ fun dir ->
  let manifest = Filename.concat dir "m.jsonl" in
  write_file manifest batch_manifest;
  let go tag =
    let out = Filename.concat dir (tag ^ ".jsonl") in
    let metrics = Filename.concat dir (tag ^ "-metrics.json") in
    let code =
      run
        [ "batch"; manifest; "--cache-dir"; Filename.concat dir "cache";
          "--out"; out; "--metrics-json"; metrics ]
    in
    Alcotest.(check int) (tag ^ " exits 0") 0 code;
    (read_file out, read_file metrics)
  in
  let cold, _ = go "cold" in
  let warm, warm_metrics = go "warm" in
  Alcotest.(check string) "cold and warm reports identical" cold warm;
  let hit_line =
    String.split_on_char '\n' warm_metrics
    |> List.exists (fun l ->
           let t = String.trim l in
           String.length t > 13
           && String.sub t 0 13 = {|"cache.hits":|}
           &&
           let v = String.trim (String.sub t 13 (String.length t - 13)) in
           v <> "0" && v <> "0,")
  in
  Alcotest.(check bool) "warm run recorded cache hits" true hit_line

(* manifest-level errors exit 2 before any scenario runs *)
let test_batch_manifest_errors () =
  with_temp_dir @@ fun dir ->
  let path name contents =
    let p = Filename.concat dir name in
    write_file p contents;
    p
  in
  let empty = path "empty.jsonl" "# only a comment\n\n" in
  Alcotest.(check int) "empty manifest exits 2" 2
    (run [ "batch"; empty; "--no-cache" ]);
  let bad = path "bad.jsonl" {|{"n": 10, "mix": "INV_X1:1"}|} in
  Alcotest.(check int) "missing corr field exits 2" 2
    (run [ "batch"; bad; "--no-cache" ]);
  Alcotest.(check int) "missing manifest file exits 2" 2
    (run [ "batch"; Filename.concat dir "nosuch.jsonl"; "--no-cache" ])

(* ---------- run ledger and fleet report ---------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains name hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in:\n%s" name needle hay

(* ---------- tail ---------- *)

let tail_args = [ "tail"; "-n"; "120"; "--budget"; "0.5"; "--replicas"; "200" ]

(* the rgleak-tail/1 report carries every contract field *)
let test_tail_schema () =
  with_temp_dir @@ fun dir ->
  let json = Filename.concat dir "tail.json" in
  Alcotest.(check int) "tail exits 0" 0 (run (tail_args @ [ "--json"; json ]));
  let doc = read_file json in
  List.iter
    (fun field -> check_contains "tail report field" doc ("\"" ^ field ^ "\""))
    [ "schema"; "n"; "corr"; "mix"; "p"; "seed"; "replicas"; "confidence";
      "budget_na"; "delta_nm"; "shift_norm2"; "p_exceed"; "se"; "ci_lo";
      "ci_hi"; "wilson_lo"; "wilson_hi"; "hits"; "hit_rate"; "ess";
      "mean_weight"; "max_weight"; "analytic_p"; "quantiles"; "level";
      "leakage_na" ];
  check_contains "schema id" doc {|"schema": "rgleak-tail/1"|}

(* invalid budgets and shifts are input diagnostics: exit 2 before any
   factorization or sampling *)
let test_tail_invalid_input () =
  check_exit "zero budget" 2
    [ "tail"; "-n"; "120"; "--budget"; "0"; "--replicas"; "200" ];
  check_exit "negative budget" 2
    [ "tail"; "-n"; "120"; "--budget=-2"; "--replicas"; "200" ];
  check_exit "nan budget" 2
    [ "tail"; "-n"; "120"; "--budget"; "nan"; "--replicas"; "200" ];
  check_exit "shift beyond the characterization grid" 2
    (tail_args @ [ "--shift"; "99" ]);
  check_exit "one replica" 2
    [ "tail"; "-n"; "120"; "--budget"; "0.5"; "--replicas"; "1" ];
  check_exit "bad signal probability" 2 (tail_args @ [ "-p"; "1.5" ])

(* an injected cholesky fault surfaces as a numeric diagnostic *)
let test_tail_fault_exit () =
  check_exit "cholesky fault exits 3" 3
    (tail_args @ [ "--fault-spec"; "cholesky:1:1" ])

(* the report is a pure function of the arguments: reruns and --jobs
   variations are byte-identical *)
let test_tail_determinism () =
  with_temp_dir @@ fun dir ->
  let go tag jobs =
    let out = Filename.concat dir (tag ^ ".json") in
    let code =
      run (tail_args @ [ "--jobs"; string_of_int jobs; "--json"; out ])
    in
    Alcotest.(check int) (tag ^ " exits 0") 0 code;
    read_file out
  in
  let a = go "a" 1 in
  Alcotest.(check string) "rerun byte-identical" a (go "b" 1);
  Alcotest.(check string) "jobs 4 byte-identical" a (go "j4" 4)

(* ---------- optimize ---------- *)

let optimize_args = [ "optimize"; "-n"; "120"; "--budget"; "2"; "--seed"; "7" ]

(* the rgleak-optimize/1 report carries every contract field *)
let test_optimize_schema () =
  with_temp_dir @@ fun dir ->
  let json = Filename.concat dir "optimize.json" in
  Alcotest.(check int) "optimize exits 0" 0
    (run (optimize_args @ [ "--json"; json ]));
  let doc = read_file json in
  List.iter
    (fun field ->
      check_contains "optimize report field" doc ("\"" ^ field ^ "\""))
    [ "schema"; "n"; "corr"; "mix"; "p"; "seed"; "start"; "method"; "budget";
      "spent"; "swaps"; "moves_lvt_svt"; "moves_lvt_hvt"; "moves_svt_hvt";
      "leakage_reduction"; "exact_initial_mean"; "exact_initial_std";
      "exact_final_mean"; "exact_final_std"; "linear_initial_mean";
      "linear_final_mean"; "integral_initial_mean"; "integral_final_mean" ];
  check_contains "schema id" doc {|"schema": "rgleak-optimize/1"|}

(* invalid budgets and start flavors are input diagnostics: exit 2
   before any staging (note the --budget=-3 form: a bare "-3" operand
   is a CLI syntax error, not our diagnostic) *)
let test_optimize_invalid_input () =
  check_exit "zero budget" 2
    [ "optimize"; "-n"; "120"; "--budget"; "0"; "--seed"; "7" ];
  check_exit "negative budget" 2
    [ "optimize"; "-n"; "120"; "--budget=-3"; "--seed"; "7" ];
  check_exit "nan budget" 2
    [ "optimize"; "-n"; "120"; "--budget"; "nan"; "--seed"; "7" ];
  check_exit "unknown start flavor" 2 (optimize_args @ [ "--start"; "xvt" ]);
  check_exit "all-HVT start has no downgrades" 2
    (optimize_args @ [ "--start"; "hvt" ]);
  check_exit "bad signal probability" 2 (optimize_args @ [ "-p"; "1.5" ])

(* an injected delta fault poisons the recombined variance: exit 3 *)
let test_optimize_fault_exit () =
  check_exit "delta fault exits 3" 3
    (optimize_args @ [ "--fault-spec"; "delta:1:11" ])

(* the report is a pure function of the arguments: reruns and --jobs
   variations are byte-identical *)
let test_optimize_determinism () =
  with_temp_dir @@ fun dir ->
  let go tag jobs =
    let out = Filename.concat dir (tag ^ ".json") in
    let code =
      run (optimize_args @ [ "--jobs"; string_of_int jobs; "--json"; out ])
    in
    Alcotest.(check int) (tag ^ " exits 0") 0 code;
    read_file out
  in
  let a = go "a" 1 in
  Alcotest.(check string) "rerun byte-identical" a (go "b" 1);
  Alcotest.(check string) "jobs 4 byte-identical" a (go "j4" 4)

(* every run with --ledger appends one parseable rgleak-run/1 record *)
let test_ledger_written () =
  with_temp_dir @@ fun dir ->
  let ledger = Filename.concat (Filename.concat dir "sub") "ledger.jsonl" in
  let go () =
    Alcotest.(check int) "estimate with --ledger exits 0" 0
      (run
         [ "estimate"; "-n"; "200"; "--method"; "linear"; "--ledger"; ledger ])
  in
  go ();
  go ();
  let lines =
    read_file ledger |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one record per run" 2 (List.length lines);
  List.iter
    (fun l ->
      check_contains "run schema" l {|"schema":"rgleak-run/1"|};
      check_contains "subcommand recorded" l {|"subcommand":"estimate"|};
      check_contains "exit class recorded" l {|"exit_class":"ok"|})
    lines

(* a failing run still lands in the ledger, with its diagnostic class *)
let test_ledger_records_failures () =
  with_temp_dir @@ fun dir ->
  let ledger = Filename.concat dir "ledger.jsonl" in
  Alcotest.(check int) "invalid input exits 2" 2
    (run
       [ "estimate"; "-n"; "200"; "--method"; "bogus"; "--ledger"; ledger ]);
  check_contains "failure recorded" (read_file ledger)
    {|"exit_class":"invalid-input"|}

let test_report_over_ledger () =
  with_temp_dir @@ fun dir ->
  let ledger = Filename.concat dir "ledger.jsonl" in
  Alcotest.(check int) "run one" 0
    (run [ "estimate"; "-n"; "200"; "--method"; "linear"; "--ledger"; ledger ]);
  Alcotest.(check int) "run two" 0
    (run [ "estimate"; "-n"; "150"; "--method"; "linear"; "--ledger"; ledger ]);
  let json = Filename.concat dir "report.json" in
  Alcotest.(check int) "report exits 0" 0
    (run [ "report"; ledger; "--json"; json ]);
  let doc = read_file json in
  check_contains "report schema" doc {|"schema": "rgleak-report/1"|};
  check_contains "both runs counted" doc {|"runs": 2|};
  check_contains "runs attributed to estimate" doc {|"estimate": 2|};
  (* a window diffed against itself never regresses *)
  Alcotest.(check int) "self-diff exits 0" 0
    (run [ "report"; ledger; "--diff"; ledger ])

let test_report_missing_input () =
  Alcotest.(check int) "missing ledger exits 2" 2
    (run [ "report"; "/nonexistent/ledger.jsonl" ]);
  Alcotest.(check int) "no inputs at all exits 2" 2 (run [ "report" ])

(* ---------- serve ---------- *)

(* Spawn the daemon as a real child process (stderr to a log file),
   hand the test its socket and pid, and always reap it. *)
let with_daemon ?(args = []) dir f =
  let sock = Filename.concat dir "serve.sock" in
  let errlog = Filename.concat dir "serve.err" in
  let err_fd =
    Unix.openfile errlog [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let argv = Array.of_list ((rgleak :: [ "serve"; "--socket"; sock ]) @ args) in
  let pid = Unix.create_process rgleak argv Unix.stdin Unix.stdout err_fd in
  Unix.close err_fd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check int)
        "daemon answers ping" 0
        (run [ "client"; "--socket"; sock; "--ping"; "--wait"; "10" ]);
      f ~sock ~pid)

(* The rgleak-batch/1 report minus its header line: what the daemon's
   estimate responses must reproduce byte for byte. *)
let records_of_report s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let serve_manifest = batch_manifest

let batch_reference dir =
  let manifest = Filename.concat dir "m.jsonl" in
  write_file manifest serve_manifest;
  let ref_out = Filename.concat dir "batch-ref.jsonl" in
  Alcotest.(check int) "reference batch exits 0" 0
    (run [ "batch"; manifest; "--no-cache"; "--out"; ref_out ]);
  (manifest, records_of_report (read_file ref_out))

(* daemon responses are byte-identical to batch records, duplicates hit
   the shared cache, and the stats endpoint reports it *)
let test_serve_byte_identity_and_cache () =
  with_temp_dir @@ fun dir ->
  let manifest, reference = batch_reference dir in
  with_daemon ~args:[ "--cache-dir"; Filename.concat dir "cache" ] dir
  @@ fun ~sock ~pid:_ ->
  let ask tag =
    let out = Filename.concat dir (tag ^ ".out") in
    Alcotest.(check int) (tag ^ " exits 0") 0
      (run ~out [ "client"; "--socket"; sock; "--manifest"; manifest ]);
    read_file out
  in
  Alcotest.(check string)
    "cold response byte-identical to batch records" reference (ask "cold");
  Alcotest.(check string)
    "duplicate response byte-identical too" reference (ask "warm");
  let stats_out = Filename.concat dir "stats.json" in
  Alcotest.(check int) "stats exits 0" 0
    (run ~out:stats_out [ "client"; "--socket"; sock; "--stats" ]);
  let stats = read_file stats_out in
  check_contains "stats schema" stats {|"schema": "rgleak-serve-stats/1"|};
  check_contains "both requests counted" stats {|"requests": 2|};
  check_contains "cache enabled" stats {|"enabled": true|};
  if contains stats {|"hits": 0,|} then
    Alcotest.failf "duplicate request produced no cache hits:\n%s" stats

(* eight concurrent clients, all served, all byte-identical *)
let test_serve_concurrent_clients () =
  with_temp_dir @@ fun dir ->
  let manifest, reference = batch_reference dir in
  with_daemon ~args:[ "--cache-dir"; Filename.concat dir "cache" ] dir
  @@ fun ~sock ~pid:_ ->
  let spawn i =
    let out = Filename.concat dir (Printf.sprintf "c%d.out" i) in
    let out_fd =
      Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let pid =
      Unix.create_process rgleak
        [| rgleak; "client"; "--socket"; sock; "--manifest"; manifest |]
        Unix.stdin out_fd Unix.stderr
    in
    Unix.close out_fd;
    (pid, out)
  in
  let clients = List.init 8 spawn in
  List.iteri
    (fun i (pid, out) ->
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, status ->
        Alcotest.failf "client %d failed: %s" i
          (match status with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      Alcotest.(check string)
        (Printf.sprintf "client %d byte-identical" i)
        reference (read_file out))
    clients

(* queue pressure sheds exact/mc tiers to the integral tier, marked *)
let test_serve_shedding () =
  with_temp_dir @@ fun dir ->
  let manifest = Filename.concat dir "exact.jsonl" in
  write_file manifest
    {|{"id": "ex", "n": 200, "mix": "INV_X1:1", "corr": "spherical:100", "tier": "exact"}
|};
  with_daemon ~args:[ "--no-cache"; "--shed-threshold"; "0" ] dir
  @@ fun ~sock ~pid:_ ->
  let out = Filename.concat dir "shed.out" in
  Alcotest.(check int) "degraded request still succeeds" 0
    (run ~out [ "client"; "--socket"; sock; "--manifest"; manifest ]);
  let resp = read_file out in
  check_contains "record keeps its id" resp {|"id": "ex"|};
  check_contains "record marked degraded" resp {|"degraded": true|};
  check_contains "requested tier recorded" resp {|"requested_tier": "exact"|};
  let stats_out = Filename.concat dir "stats.json" in
  Alcotest.(check int) "stats exits 0" 0
    (run ~out:stats_out [ "client"; "--socket"; sock; "--stats" ]);
  check_contains "shed counted" (read_file stats_out) {|"sheds": 1|}

(* a full admission queue rejects with the overload code *)
let test_serve_overload_rejection () =
  with_temp_dir @@ fun dir ->
  let manifest = Filename.concat dir "m.jsonl" in
  write_file manifest serve_manifest;
  with_daemon ~args:[ "--no-cache"; "--max-queue"; "0" ] dir
  @@ fun ~sock ~pid:_ ->
  Alcotest.(check int) "estimate rejected with code 5" 5
    (run [ "client"; "--socket"; sock; "--manifest"; manifest ]);
  let stats_out = Filename.concat dir "stats.json" in
  Alcotest.(check int) "stats still answered" 0
    (run ~out:stats_out [ "client"; "--socket"; sock; "--stats" ]);
  check_contains "rejection counted" (read_file stats_out) {|"rejected": 1|}

(* request-level errors carry the diagnostic class *)
let test_serve_error_classes () =
  with_temp_dir @@ fun dir ->
  let bad = Filename.concat dir "bad.jsonl" in
  write_file bad "this is not json\n";
  with_daemon ~args:[ "--no-cache" ] dir @@ fun ~sock ~pid:_ ->
  Alcotest.(check int) "malformed manifest exits 2" 2
    (run [ "client"; "--socket"; sock; "--manifest"; bad ]);
  Alcotest.(check int) "client without an op exits 2" 2
    (run [ "client"; "--socket"; sock ])

(* SIGTERM drains and flushes the final ledger line; exit 0 *)
let test_serve_sigterm_drain () =
  with_temp_dir @@ fun dir ->
  let manifest = Filename.concat dir "m.jsonl" in
  write_file manifest serve_manifest;
  let ledger = Filename.concat dir "ledger.jsonl" in
  with_daemon ~args:[ "--no-cache"; "--ledger"; ledger ] dir
  @@ fun ~sock ~pid ->
  Alcotest.(check int) "request before the drain" 0
    (run [ "client"; "--socket"; sock; "--manifest"; manifest ]);
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> Alcotest.failf "drain exited %d" c
  | _, Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d" s
  | _, Unix.WSTOPPED s -> Alcotest.failf "daemon stopped by signal %d" s);
  let line = read_file ledger in
  check_contains "final ledger line present" line {|"schema":"rgleak-run/1"|};
  check_contains "attributed to serve" line {|"subcommand":"serve"|};
  check_contains "clean exit class" line {|"exit_class":"ok"|};
  Alcotest.(check bool) "socket unlinked after drain" false (Sys.file_exists sock)

(* an unbindable socket path is invalid input *)
let test_serve_bind_error () =
  check_exit "unbindable socket exits 2" 2
    [ "serve"; "--socket"; "/nonexistent-rgleak-dir/serve.sock" ];
  check_exit "client to a dead socket exits 2" 2
    [ "client"; "--socket"; "/nonexistent-rgleak-dir/serve.sock"; "--ping" ]

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "rgleak-cli"
    [
      ( "exit-codes",
        [
          case "invalid input exits 2" test_invalid_input;
          case "fault-spec edge cases exit 2" test_fault_spec_edge_cases;
          case "numeric breakdown exits 3 under --strict" test_numeric_strict;
          case "best-effort degradation exits 0" test_best_effort_degradation;
          case "fault runs are deterministic" test_fault_determinism;
        ] );
      ( "batch",
        [
          case "reports identical across --jobs" test_batch_jobs_determinism;
          case "cold/warm cache runs identical with hits"
            test_batch_cold_warm;
          case "manifest errors exit 2" test_batch_manifest_errors;
        ] );
      ( "tail",
        [
          case "report carries the rgleak-tail/1 contract" test_tail_schema;
          case "invalid budget/shift exit 2" test_tail_invalid_input;
          case "injected cholesky fault exits 3" test_tail_fault_exit;
          case "byte-identical across reruns and --jobs" test_tail_determinism;
        ] );
      ( "optimize",
        [
          case "report carries the rgleak-optimize/1 contract"
            test_optimize_schema;
          case "invalid budget/start exit 2" test_optimize_invalid_input;
          case "injected delta fault exits 3" test_optimize_fault_exit;
          case "byte-identical across reruns and --jobs"
            test_optimize_determinism;
        ] );
      ( "ledger",
        [
          case "--ledger appends one record per run" test_ledger_written;
          case "failing runs land with their diagnostic class"
            test_ledger_records_failures;
          case "report aggregates a ledger window" test_report_over_ledger;
          case "report rejects missing inputs" test_report_missing_input;
        ] );
      ( "serve",
        [
          case "responses byte-identical to batch, duplicates hit the cache"
            test_serve_byte_identity_and_cache;
          case "eight concurrent clients all served identically"
            test_serve_concurrent_clients;
          case "queue pressure sheds to the integral tier"
            test_serve_shedding;
          case "full queue rejects with the overload code"
            test_serve_overload_rejection;
          case "request errors carry the diagnostic class"
            test_serve_error_classes;
          case "SIGTERM drains and flushes the ledger"
            test_serve_sigterm_drain;
          case "unbindable socket is invalid input" test_serve_bind_error;
        ] );
    ]
