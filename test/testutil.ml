(* Shared helpers for the test suites. *)

let check_close ?(tol = 1e-9) name expected actual =
  let ok =
    if Float.is_nan expected || Float.is_nan actual then false
    else Float.abs (expected -. actual) <= tol
  in
  if not ok then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.3g)" name expected
      actual tol

let check_rel ?(tol = 1e-6) name expected actual =
  let scale = Float.max (Float.abs expected) 1e-30 in
  let ok = Float.abs (expected -. actual) /. scale <= tol in
  if not ok then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %.3g)" name expected
      actual tol

let check_in_range name ~lo ~hi actual =
  if not (actual >= lo && actual <= hi) then
    Alcotest.failf "%s: %.12g outside [%.12g, %.12g]" name actual lo hi

let check_true name cond = Alcotest.(check bool) name true cond

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f
