(* Shared helpers for the test suites. *)

let check_close ?(tol = 1e-9) name expected actual =
  let ok =
    if Float.is_nan expected || Float.is_nan actual then false
    else Float.abs (expected -. actual) <= tol
  in
  if not ok then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.3g)" name expected
      actual tol

let check_rel ?(tol = 1e-6) name expected actual =
  let scale = Float.max (Float.abs expected) 1e-30 in
  let ok = Float.abs (expected -. actual) /. scale <= tol in
  if not ok then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %.3g)" name expected
      actual tol

let check_in_range name ~lo ~hi actual =
  if not (actual >= lo && actual <= hi) then
    Alcotest.failf "%s: %.12g outside [%.12g, %.12g]" name actual lo hi

let check_true name cond = Alcotest.(check bool) name true cond

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* ---- domain generators shared by the property batteries ---- *)

(* WID families that are positive semi-definite on 2-D point sets
   (safe to Cholesky-factor without repair). *)
let gen_psd_family =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun dmax -> Rgleak_process.Corr_model.Spherical { dmax })
          (float_range 30.0 150.0);
        map
          (fun range -> Rgleak_process.Corr_model.Exponential { range })
          (float_range 10.0 80.0);
        map
          (fun range -> Rgleak_process.Corr_model.Gaussian { range })
          (float_range 10.0 80.0);
      ])

(* Any supported WID family, including the ones that are only valid
   covariances in 1-D (Linear) or not guaranteed PSD (truncated exp):
   the analytical estimators must accept all of them. *)
let gen_family =
  QCheck2.Gen.(
    oneof
      [
        gen_psd_family;
        map
          (fun dmax -> Rgleak_process.Corr_model.Linear { dmax })
          (float_range 30.0 150.0);
        map
          (fun (range, dmax) ->
            Rgleak_process.Corr_model.Truncated_exponential { range; dmax })
          (pair (float_range 10.0 60.0) (float_range 60.0 150.0));
      ])

(* A small cloud of die locations (µm), duplicates allowed so the
   perfectly-correlated (semi-definite) corner is exercised too. *)
let gen_sites ?(max_points = 12) () =
  QCheck2.Gen.(
    list_size (int_range 2 max_points)
      (pair (float_range 0.0 200.0) (float_range 0.0 200.0)))
