(* Shared helpers for the test suites. *)

let check_close ?(tol = 1e-9) name expected actual =
  let ok =
    if Float.is_nan expected || Float.is_nan actual then false
    else Float.abs (expected -. actual) <= tol
  in
  if not ok then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.3g)" name expected
      actual tol

let check_rel ?(tol = 1e-6) name expected actual =
  let scale = Float.max (Float.abs expected) 1e-30 in
  let ok = Float.abs (expected -. actual) /. scale <= tol in
  if not ok then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %.3g)" name expected
      actual tol

let check_in_range name ~lo ~hi actual =
  if not (actual >= lo && actual <= hi) then
    Alcotest.failf "%s: %.12g outside [%.12g, %.12g]" name actual lo hi

let check_true name cond = Alcotest.(check bool) name true cond

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* ---- failure shrinking ----

   QCheck2's integrated shrinking only walks a generator's own
   derivation tree, which for the composite domain values below (a
   correlation family paired with a design size) produces long, opaque
   shrink traces or none at all.  These helpers shrink explicitly: a
   shrinker proposes strictly-smaller candidates, [minimize] greedily
   descends while the property keeps failing, and [qcheck_shrinking]
   reports the minimal counterexample it lands on. *)

let minimize ~shrink ~fails x =
  let rec go x =
    match List.find_opt fails (shrink x) with
    | Some smaller -> go smaller
    | None -> x
  in
  go x

let qcheck_shrinking ?(count = 100) ~shrink ~print name gen prop =
  let run x = try Ok (prop x) with e -> Error e in
  qcheck ~count name gen (fun x ->
      match run x with
      | Ok true -> true
      | _ ->
        let fails y =
          match run y with Ok true -> false | Ok false | Error _ -> true
        in
        let x' = minimize ~shrink ~fails x in
        let why =
          match run x' with
          | Ok true -> assert false (* [minimize] only returns failures *)
          | Ok false -> "property is false"
          | Error e -> Printexc.to_string e
        in
        QCheck2.Test.fail_reportf
          "minimal counterexample: %s@\n  failure: %s@\n  (original: %s)"
          (print x') why (print x))

(* Candidate steps from [x] toward [floor]: the floor itself first (the
   biggest jump), then the midpoint — geometric descent when iterated
   by [minimize]. *)
let shrink_toward ~floor x =
  if x <= floor then []
  else
    let mid = floor +. ((x -. floor) /. 2.0) in
    if mid < x *. 0.999 then [ floor; mid ] else [ floor ]

(* Halve a design size toward a lower bound. *)
let shrink_size ?(lo = 2) n =
  if n <= lo then []
  else
    let mid = (n + lo) / 2 in
    if mid < n then [ lo; mid ] else [ lo ]

(* Shrink a family's correlation range toward the small end of the
   generator's support (tight η: nearly uncorrelated sites), keeping
   the family itself — a failure that survives the shrink then names
   the family and the smallest range that still breaks it. *)
let shrink_family f =
  let open Rgleak_process.Corr_model in
  match f with
  | Spherical { dmax } ->
    List.map (fun dmax -> Spherical { dmax }) (shrink_toward ~floor:30.0 dmax)
  | Exponential { range } ->
    List.map (fun range -> Exponential { range }) (shrink_toward ~floor:10.0 range)
  | Gaussian { range } ->
    List.map (fun range -> Gaussian { range }) (shrink_toward ~floor:10.0 range)
  | Linear { dmax } ->
    List.map (fun dmax -> Linear { dmax }) (shrink_toward ~floor:30.0 dmax)
  | Truncated_exponential { range; dmax } ->
    List.map
      (fun range -> Truncated_exponential { range; dmax })
      (shrink_toward ~floor:10.0 range)
    @ List.map
        (fun dmax -> Truncated_exponential { range; dmax })
        (shrink_toward ~floor:60.0 dmax)

let shrink_pair sa sb (a, b) =
  List.map (fun a' -> (a', b)) (sa a) @ List.map (fun b' -> (a, b')) (sb b)

let print_family f =
  let open Rgleak_process.Corr_model in
  match f with
  | Linear { dmax } -> Printf.sprintf "linear:%g" dmax
  | Spherical { dmax } -> Printf.sprintf "spherical:%g" dmax
  | Exponential { range } -> Printf.sprintf "exp:%g" range
  | Gaussian { range } -> Printf.sprintf "gauss:%g" range
  | Truncated_exponential { range; dmax } -> Printf.sprintf "texp:%g:%g" range dmax

let print_family_n (f, n) = Printf.sprintf "family %s, n = %d" (print_family f) n

(* The common shape: a correlation family paired with a design size. *)
let shrink_family_n ?(n_lo = 2) x =
  shrink_pair shrink_family (shrink_size ~lo:n_lo) x

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* ---- domain generators shared by the property batteries ---- *)

(* WID families that are positive semi-definite on 2-D point sets
   (safe to Cholesky-factor without repair). *)
let gen_psd_family =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun dmax -> Rgleak_process.Corr_model.Spherical { dmax })
          (float_range 30.0 150.0);
        map
          (fun range -> Rgleak_process.Corr_model.Exponential { range })
          (float_range 10.0 80.0);
        map
          (fun range -> Rgleak_process.Corr_model.Gaussian { range })
          (float_range 10.0 80.0);
      ])

(* Any supported WID family, including the ones that are only valid
   covariances in 1-D (Linear) or not guaranteed PSD (truncated exp):
   the analytical estimators must accept all of them. *)
let gen_family =
  QCheck2.Gen.(
    oneof
      [
        gen_psd_family;
        map
          (fun dmax -> Rgleak_process.Corr_model.Linear { dmax })
          (float_range 30.0 150.0);
        map
          (fun (range, dmax) ->
            Rgleak_process.Corr_model.Truncated_exponential { range; dmax })
          (pair (float_range 10.0 60.0) (float_range 60.0 150.0));
      ])

(* A small cloud of die locations (µm), duplicates allowed so the
   perfectly-correlated (semi-definite) corner is exercised too. *)
let gen_sites ?(max_points = 12) () =
  QCheck2.Gen.(
    list_size (int_range 2 max_points)
      (pair (float_range 0.0 200.0) (float_range 0.0 200.0)))
