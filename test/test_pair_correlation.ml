open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Testutil

let param = Process_param.default_channel_length

let sc_of name state =
  let rng = Rng.create ~seed:77 () in
  let ch =
    Characterize.characterize ~l_points:65 ~mc_samples:1000 ~param ~rng
      (Library.find name)
  in
  ch.Characterize.states.(state)

let nand_off = lazy (sc_of "NAND2_X1" 0)
let nor_off = lazy (sc_of "NOR3_X1" 0)
let inv_off = lazy (sc_of "INV_X1" 0)

let test_endpoints () =
  let a = Lazy.force nand_off and b = Lazy.force nor_off in
  check_close ~tol:1e-9 "analytic f(0) = 0" 0.0
    (Pair_correlation.analytic a b ~param ~rho:0.0);
  check_in_range "analytic f(1) near 1" ~lo:0.97 ~hi:1.0
    (Pair_correlation.analytic a b ~param ~rho:1.0)

let test_same_gate_rho_one () =
  let a = Lazy.force inv_off in
  check_close ~tol:1e-9 "same gate at rho 1 fully correlated" 1.0
    (Pair_correlation.analytic a a ~param ~rho:1.0)

let test_monotone =
  qcheck ~count:100 "f increases with rho"
    QCheck2.Gen.(QCheck2.Gen.pair (float_range 0.0 0.9) (float_range 0.01 0.1))
    (fun (rho, d) ->
      let a = Lazy.force nand_off and b = Lazy.force nor_off in
      let f1 = Pair_correlation.analytic a b ~param ~rho in
      let f2 = Pair_correlation.analytic a b ~param ~rho:(Float.min 1.0 (rho +. d)) in
      f2 >= f1 -. 1e-12)

let test_near_identity () =
  (* Fig. 2 and the 3.1.2 simplified assumption: f hugs y = x *)
  let a = Lazy.force nand_off and b = Lazy.force nor_off in
  let curve =
    Pair_correlation.curve ~points:11
      ~f:(fun ~rho -> Pair_correlation.analytic a b ~param ~rho)
      ()
  in
  check_true "max deviation from identity below 0.08"
    (Pair_correlation.max_identity_deviation curve < 0.08)

let test_mc_matches_analytic () =
  let a = Lazy.force nand_off and b = Lazy.force nor_off in
  let rng = Rng.create ~seed:78 () in
  List.iter
    (fun rho ->
      let an = Pair_correlation.analytic a b ~param ~rho in
      let mc =
        Pair_correlation.monte_carlo a b ~param ~rho ~samples:60_000 ~rng
      in
      check_close ~tol:0.03
        (Printf.sprintf "MC vs analytic at rho %.2f" rho)
        an mc)
    [ 0.2; 0.5; 0.8 ]

let test_mc_range_validation () =
  let a = Lazy.force nand_off in
  let rng = Rng.create ~seed:79 () in
  Alcotest.check_raises "rho out of range"
    (Invalid_argument "Pair_correlation.monte_carlo: correlation out of range")
    (fun () ->
      ignore (Pair_correlation.monte_carlo a a ~param ~rho:1.5 ~samples:10 ~rng))

let test_curve_shape () =
  let a = Lazy.force inv_off in
  let curve =
    Pair_correlation.curve ~points:5
      ~f:(fun ~rho -> Pair_correlation.analytic a a ~param ~rho)
      ()
  in
  check_close "curve length" 5.0 (float_of_int (Array.length curve));
  check_close ~tol:1e-12 "first abscissa" 0.0 (fst curve.(0));
  check_close ~tol:1e-12 "last abscissa" 1.0 (fst curve.(4))

let suite =
  ( "pair_correlation",
    [
      case "endpoints" test_endpoints;
      case "same gate at rho one" test_same_gate_rho_one;
      test_monotone;
      case "near identity (Fig 2)" test_near_identity;
      case "monte carlo matches analytic" test_mc_matches_analytic;
      case "mc input validation" test_mc_range_validation;
      case "curve helper" test_curve_shape;
    ] )
