open Rgleak_num
open Rgleak_cells
open Rgleak_circuit
open Testutil

(* ---- netlist ---- *)

let mk_instances types =
  Array.mapi
    (fun i cell_index -> { Netlist.id = i; cell_index; fanin = [| -1 |] })
    types

let test_netlist_create () =
  let nl = Netlist.create ~name:"t" ~num_primary_inputs:2 (mk_instances [| 0; 1; 0 |]) in
  check_close "size" 3.0 (float_of_int (Netlist.size nl));
  let counts = Netlist.cell_counts nl in
  check_close "count of cell 0" 2.0 (float_of_int counts.(0));
  check_close "count of cell 1" 1.0 (float_of_int counts.(1));
  check_true "positive area" (Netlist.total_area nl > 0.0)

let test_netlist_validation () =
  Alcotest.check_raises "forward fanin rejected"
    (Invalid_argument "Netlist.create: fanin must reference earlier instances")
    (fun () ->
      let bad =
        [| { Netlist.id = 0; cell_index = 0; fanin = [| 1 |] };
           { Netlist.id = 1; cell_index = 0; fanin = [||] } |]
      in
      ignore (Netlist.create ~name:"bad" ~num_primary_inputs:0 bad));
  Alcotest.check_raises "non-dense ids rejected"
    (Invalid_argument "Netlist.create: ids must be dense and ordered") (fun () ->
      let bad = [| { Netlist.id = 1; cell_index = 0; fanin = [||] } |] in
      ignore (Netlist.create ~name:"bad" ~num_primary_inputs:0 bad))

(* ---- histogram ---- *)

let test_histogram_normalization () =
  let h = Histogram.of_weights [ ("INV_X1", 3.0); ("NAND2_X1", 1.0) ] in
  check_close ~tol:1e-12 "inv frequency" 0.75
    (Histogram.frequency h (Library.index_of "INV_X1"));
  check_close ~tol:1e-12 "nand frequency" 0.25
    (Histogram.frequency h (Library.index_of "NAND2_X1"));
  let total = Array.fold_left ( +. ) 0.0 (Histogram.to_array h) in
  check_close ~tol:1e-12 "sums to one" 1.0 total

let test_histogram_counts_roundtrip =
  qcheck ~count:100 "counts_for sums to n"
    QCheck2.Gen.(int_range 1 5000)
    (fun n ->
      let h =
        Histogram.of_weights
          [ ("INV_X1", 2.0); ("NAND2_X1", 3.0); ("NOR2_X1", 1.0); ("DFF_X1", 0.5) ]
      in
      let counts = Histogram.counts_for h ~n in
      Array.fold_left ( + ) 0 counts = n)

let test_histogram_counts_proportions () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("NAND2_X1", 1.0) ] in
  let counts = Histogram.counts_for h ~n:1000 in
  check_close "even split" 500.0
    (float_of_int counts.(Library.index_of "INV_X1"))

let test_histogram_of_netlist_roundtrip () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("XOR2_X1", 3.0) ] in
  let rng = Rng.create ~seed:5 () in
  let nl = Generator.random_netlist ~histogram:h ~n:400 ~rng () in
  let h2 = Histogram.of_netlist nl in
  check_true "extracted histogram matches target"
    (Histogram.distance_l1 h h2 < 0.01)

let test_histogram_support () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("XOR2_X1", 3.0) ] in
  let support = Histogram.support h in
  check_close "support size" 2.0 (float_of_int (List.length support));
  check_true "support contains inv" (List.mem (Library.index_of "INV_X1") support)

let test_histogram_uniform () =
  let h = Histogram.uniform () in
  check_close ~tol:1e-12 "uniform frequency" (1.0 /. 62.0) (Histogram.frequency h 0)

(* ---- layout ---- *)

let test_layout_square () =
  let l = Layout.square ~n:100 () in
  check_close "cols" 10.0 (float_of_int l.Layout.cols);
  check_close "full rows" 10.0 (float_of_int l.Layout.full_rows);
  check_close "no partial" 0.0 (float_of_int l.Layout.partial);
  check_close "site count" 100.0 (float_of_int (Layout.site_count l));
  check_close ~tol:1e-12 "width" 40.0 (Layout.width l)

let test_layout_partial_row () =
  let l = Layout.square ~n:103 () in
  check_close "site count preserved" 103.0 (float_of_int (Layout.site_count l));
  check_true "partial row present" (l.Layout.partial > 0)

let test_layout_positions () =
  let l = Layout.square ~n:4 ~site_w:2.0 ~site_h:2.0 () in
  let x0, y0 = Layout.position l 0 in
  check_close ~tol:1e-12 "first site x" 1.0 x0;
  check_close ~tol:1e-12 "first site y" 1.0 y0;
  let x3, y3 = Layout.position l 3 in
  check_close ~tol:1e-12 "last site x" 3.0 x3;
  check_close ~tol:1e-12 "last site y" 3.0 y3

let test_layout_of_dims () =
  let l = Layout.of_dims ~n:100 ~width:50.0 ~height:50.0 in
  check_close "site count" 100.0 (float_of_int (Layout.site_count l));
  check_rel ~tol:0.2 "width approximated" 50.0 (Layout.width l)

(* brute-force occurrence counting to validate the closed form *)
let brute_occurrences l ~di ~dj =
  let n = Layout.site_count l in
  let cols = l.Layout.cols in
  let count = ref 0 in
  for a = 0 to n - 1 do
    let ra = a / cols and ca = a mod cols in
    let rb = ra + dj and cb = ca + di in
    if cb >= 0 && cb < cols then begin
      let b = (rb * cols) + cb in
      if rb >= 0 && b >= 0 && b < n && b / cols = rb then incr count
    end
  done;
  !count

let test_occurrences_full_grid () =
  let l = Layout.square ~n:36 () in
  (* Eq. 16: (m - |i|)(k - |j|) *)
  for di = -6 to 6 do
    for dj = -6 to 6 do
      let expected =
        Stdlib.max 0 (6 - abs di) * Stdlib.max 0 (6 - abs dj)
      in
      check_close
        (Printf.sprintf "occ(%d,%d)" di dj)
        (float_of_int expected)
        (float_of_int (Layout.occurrences l ~di ~dj))
    done
  done

let test_occurrences_matches_brute =
  qcheck ~count:150 "closed-form occurrences match brute force"
    QCheck2.Gen.(
      tup3 (int_range 1 40) (int_range (-8) 8) (int_range (-8) 8))
    (fun (n, di, dj) ->
      let l = Layout.square ~n () in
      Layout.occurrences l ~di ~dj = brute_occurrences l ~di ~dj)

let test_occurrence_totals =
  qcheck ~count:50 "occurrences sum to n^2"
    QCheck2.Gen.(int_range 1 200)
    (fun n -> Layout.check_occurrence_total (Layout.square ~n ()))

let test_distance_of_offset () =
  let l = Layout.square ~n:9 ~site_w:3.0 ~site_h:4.0 () in
  check_close ~tol:1e-12 "3-4-5 offset" 5.0
    (Layout.distance_of_offset l ~di:1 ~dj:1)

(* ---- placer ---- *)

let test_placement_is_injective () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:9 () in
  let placed = Generator.random_placed ~histogram:h ~n:50 ~rng () in
  let sites = Array.copy placed.Placer.site_of_instance in
  Array.sort compare sites;
  let distinct = ref true in
  Array.iteri (fun i s -> if i > 0 && s = sites.(i - 1) then distinct := false) sites;
  check_true "no two instances share a site" !distinct

let test_sequential_placement () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:10 () in
  let nl = Generator.random_netlist ~histogram:h ~n:10 ~rng () in
  let layout = Layout.square ~n:10 () in
  let placed = Placer.place ~strategy:Placer.Sequential nl layout in
  for i = 0 to 9 do
    check_close "identity placement" (float_of_int i)
      (float_of_int placed.Placer.site_of_instance.(i))
  done

let test_placer_capacity () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:11 () in
  let nl = Generator.random_netlist ~histogram:h ~n:10 ~rng () in
  let layout = Layout.square ~n:5 () in
  Alcotest.check_raises "too small layout"
    (Invalid_argument "Placer.place: not enough sites for the netlist")
    (fun () -> ignore (Placer.place ~strategy:Placer.Sequential nl layout))

let test_extraction () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("NAND2_X1", 1.0) ] in
  let rng = Rng.create ~seed:12 () in
  let placed = Generator.random_placed ~histogram:h ~n:100 ~rng () in
  let h2, n, w, hgt = Placer.extract_characteristics placed in
  check_close "extracted n" 100.0 (float_of_int n);
  check_true "extracted histogram close" (Histogram.distance_l1 h h2 < 0.03);
  check_true "positive dims" (w > 0.0 && hgt > 0.0)

(* ---- generator & benchmarks ---- *)

let test_generator_counts () =
  let h = Histogram.of_weights [ ("INV_X1", 7.0); ("NAND2_X1", 3.0) ] in
  let rng = Rng.create ~seed:13 () in
  let nl = Generator.random_netlist ~histogram:h ~n:1000 ~rng () in
  let counts = Netlist.cell_counts nl in
  check_close "inv count" 700.0
    (float_of_int counts.(Library.index_of "INV_X1"));
  check_close "nand count" 300.0
    (float_of_int counts.(Library.index_of "NAND2_X1"))

let test_fig6_sizes () =
  Array.iter
    (fun n ->
      let r = int_of_float (Float.round (sqrt (float_of_int n))) in
      check_close (Printf.sprintf "%d is a perfect square" n)
        (float_of_int n)
        (float_of_int (r * r)))
    Generator.fig6_sizes;
  check_close "paper's largest size" 11236.0
    (float_of_int Generator.fig6_sizes.(Array.length Generator.fig6_sizes - 1))

let test_benchmark_specs () =
  check_close "ten benchmarks" 10.0 (float_of_int (Array.length Benchmarks.specs));
  check_close "table 1 lists nine" 9.0
    (float_of_int (List.length Benchmarks.table1_names));
  List.iter
    (fun name -> ignore (Benchmarks.find name))
    Benchmarks.table1_names;
  let c6288 = Benchmarks.find "c6288" in
  check_close "published c6288 gate count" 2406.0 (float_of_int c6288.Benchmarks.gates)

let test_benchmark_netlists () =
  List.iter
    (fun name ->
      let spec = Benchmarks.find name in
      let nl = Benchmarks.netlist spec in
      check_close (name ^ " gate count")
        (float_of_int spec.Benchmarks.gates)
        (float_of_int (Netlist.size nl)))
    [ "c432"; "c499"; "c6288" ]

let test_benchmark_placement () =
  let placed = Benchmarks.placed (Benchmarks.find "c432") in
  check_close "c432 placed completely" 160.0
    (float_of_int (Netlist.size placed.Placer.netlist));
  check_true "die sized from area"
    (Layout.width placed.Placer.layout > 10.0)

let test_benchmark_determinism () =
  let a = Benchmarks.netlist (Benchmarks.find "c880") in
  let b = Benchmarks.netlist (Benchmarks.find "c880") in
  check_true "same seed, same netlist"
    (Netlist.cell_counts a = Netlist.cell_counts b)

(* ---- placement I/O ---- *)

let test_placement_roundtrip () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("NAND2_X1", 1.0) ] in
  let rng = Rng.create ~seed:77 () in
  let placed = Generator.random_placed ~histogram:h ~n:120 ~rng () in
  let pl = Placement_io.of_placed placed in
  let restored = Placement_io.of_string (Placement_io.to_string pl) in
  check_close "count preserved" 120.0
    (float_of_int (Array.length restored.Placement_io.positions));
  check_close ~tol:1e-12 "width preserved" pl.Placement_io.width
    restored.Placement_io.width;
  let applied = Placement_io.apply placed.Placer.netlist restored in
  (* re-applying an extracted placement over the same-geometry grid must
     put every instance back exactly *)
  check_close ~tol:1e-9 "positions reproduced exactly" 0.0
    (Placement_io.max_snap_distance applied restored)

let test_placement_snapping () =
  (* jittered coordinates snap to nearby sites without collisions *)
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:78 () in
  let placed = Generator.random_placed ~histogram:h ~n:64 ~rng () in
  let pl = Placement_io.of_placed placed in
  let jittered =
    {
      pl with
      Placement_io.positions =
        Array.map
          (fun (x, y) ->
            (x +. Rng.float rng 1.0 -. 0.5, y +. Rng.float rng 1.0 -. 0.5))
          pl.Placement_io.positions;
    }
  in
  let applied = Placement_io.apply placed.Placer.netlist jittered in
  let sites = Array.copy applied.Placer.site_of_instance in
  Array.sort compare sites;
  let distinct = ref true in
  Array.iteri (fun i s -> if i > 0 && s = sites.(i - 1) then distinct := false) sites;
  check_true "no site collisions after snapping" !distinct;
  check_true "snap distance bounded by a site pitch"
    (Placement_io.max_snap_distance applied jittered < 6.0)

let test_placement_errors () =
  check_true "bad header rejected"
    (try
       ignore (Placement_io.of_string "not-a-placement\n");
       false
     with Placement_io.Format_error _ -> true);
  check_true "duplicate id rejected"
    (try
       ignore
         (Placement_io.of_string
            "rgleak-placement 1\ndie 10 10\n0 1 1\n0 2 2\n");
       false
     with Placement_io.Format_error _ -> true);
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:79 () in
  let nl = Generator.random_netlist ~histogram:h ~n:10 ~rng () in
  check_true "count mismatch rejected"
    (try
       ignore
         (Placement_io.apply nl
            { Placement_io.width = 10.0; height = 10.0; positions = [| (1.0, 1.0) |] });
       false
     with Invalid_argument _ -> true)

let suite =
  ( "circuit",
    [
      case "netlist create" test_netlist_create;
      case "netlist validation" test_netlist_validation;
      case "histogram normalization" test_histogram_normalization;
      test_histogram_counts_roundtrip;
      case "histogram proportions" test_histogram_counts_proportions;
      case "histogram extraction roundtrip" test_histogram_of_netlist_roundtrip;
      case "histogram support" test_histogram_support;
      case "uniform histogram" test_histogram_uniform;
      case "square layout" test_layout_square;
      case "partial row layout" test_layout_partial_row;
      case "site positions" test_layout_positions;
      case "layout from dims" test_layout_of_dims;
      case "occurrences on full grid (Eq 16)" test_occurrences_full_grid;
      test_occurrences_matches_brute;
      test_occurrence_totals;
      case "offset distance" test_distance_of_offset;
      case "placement injective" test_placement_is_injective;
      case "sequential placement" test_sequential_placement;
      case "placer capacity check" test_placer_capacity;
      case "late-mode extraction" test_extraction;
      case "generator matches histogram" test_generator_counts;
      case "fig 6 sizes" test_fig6_sizes;
      case "benchmark specs" test_benchmark_specs;
      case "benchmark netlists" test_benchmark_netlists;
      case "benchmark placement" test_benchmark_placement;
      case "benchmark determinism" test_benchmark_determinism;
      case "placement roundtrip" test_placement_roundtrip;
      case "placement snapping" test_placement_snapping;
      case "placement errors" test_placement_errors;
    ] )
