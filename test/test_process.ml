open Rgleak_num
open Rgleak_process
open Testutil

let param = Process_param.default_channel_length

let test_param_accessors () =
  check_close ~tol:1e-12 "total variance" 18.0 (Process_param.variance_total param);
  check_rel ~tol:1e-12 "total sigma" (sqrt 18.0) (Process_param.sigma_total param);
  check_close ~tol:1e-12 "d2d fraction (equal split)" 0.5
    (Process_param.d2d_fraction param)

let test_param_validation () =
  Alcotest.check_raises "negative sigma rejected"
    (Invalid_argument "Process_param.make: sigmas must be non-negative")
    (fun () ->
      ignore
        (Process_param.make ~name:"x" ~nominal:1.0 ~sigma_d2d:(-1.0)
           ~sigma_wid:1.0));
  Alcotest.check_raises "non-positive nominal rejected"
    (Invalid_argument "Process_param.make: nominal must be positive") (fun () ->
      ignore
        (Process_param.make ~name:"x" ~nominal:0.0 ~sigma_d2d:1.0 ~sigma_wid:1.0))

let all_families =
  [
    ("exponential", Corr_model.Exponential { range = 100.0 });
    ("gaussian", Corr_model.Gaussian { range = 100.0 });
    ("linear", Corr_model.Linear { dmax = 200.0 });
    ("spherical", Corr_model.Spherical { dmax = 200.0 });
    ( "truncated-exponential",
      Corr_model.Truncated_exponential { range = 80.0; dmax = 200.0 } );
  ]

let test_families_valid () =
  List.iter
    (fun (name, fam) ->
      let m = Corr_model.create fam param in
      check_true
        (name ^ " is a valid correlation")
        (Corr_model.is_valid_correlation m ~samples:500 ~upto:1000.0))
    all_families

let test_total_at_zero () =
  List.iter
    (fun (name, fam) ->
      let m = Corr_model.create fam param in
      check_close ~tol:1e-12 (name ^ " rho(0) = 1") 1.0 (Corr_model.total m 0.0))
    all_families

let test_floor_reached () =
  List.iter
    (fun (name, fam) ->
      let m = Corr_model.create fam param in
      let far = Corr_model.total m 1e7 in
      check_close ~tol:1e-3
        (name ^ " approaches the D2D floor")
        (Corr_model.floor m) far)
    all_families

let test_dmax_semantics () =
  let lin = Corr_model.create (Corr_model.Linear { dmax = 200.0 }) param in
  (match Corr_model.wid_dmax lin with
  | Some d -> check_close "linear dmax" 200.0 d
  | None -> Alcotest.fail "linear family must report dmax");
  check_close ~tol:1e-12 "wid zero at dmax" 0.0 (Corr_model.wid lin 200.0);
  check_close ~tol:1e-12 "wid zero beyond dmax" 0.0 (Corr_model.wid lin 300.0);
  let expo = Corr_model.create (Corr_model.Exponential { range = 100.0 }) param in
  check_true "exponential has no dmax" (Corr_model.wid_dmax expo = None)

let test_truncated_exponential_endpoints () =
  let m =
    Corr_model.create
      (Corr_model.Truncated_exponential { range = 50.0; dmax = 150.0 })
      param
  in
  check_close ~tol:1e-12 "starts at 1" 1.0 (Corr_model.wid m 0.0);
  check_close ~tol:1e-12 "exactly 0 at dmax" 0.0 (Corr_model.wid m 150.0)

let test_total_formula =
  qcheck ~count:300 "total = floor + (1-floor) * wid"
    QCheck2.Gen.(float_range 0.0 500.0)
    (fun d ->
      let m = Corr_model.create (Corr_model.Linear { dmax = 200.0 }) param in
      let expected =
        Corr_model.floor m +. ((1.0 -. Corr_model.floor m) *. Corr_model.wid m d)
      in
      Float.abs (Corr_model.total m d -. expected) < 1e-12)

let test_invalid_family () =
  Alcotest.check_raises "non-positive range"
    (Invalid_argument "Corr_model: range must be positive") (fun () ->
      ignore (Corr_model.create (Corr_model.Exponential { range = 0.0 }) param))

let test_sampler_marginals () =
  let m = Corr_model.create (Corr_model.Linear { dmax = 100.0 }) param in
  let locs =
    [| { Variation.x = 0.0; y = 0.0 }; { Variation.x = 30.0; y = 40.0 };
       { Variation.x = 500.0; y = 0.0 } |]
  in
  let sampler = Variation.prepare m locs in
  check_close "location count" 3.0 (float_of_int (Variation.locations_count sampler));
  let rng = Rng.create ~seed:42 () in
  let accs = Array.init 3 (fun _ -> Stats.Acc.create ()) in
  let cov01 = Stats.Cov_acc.create () and cov02 = Stats.Cov_acc.create () in
  for _ = 1 to 40_000 do
    let v = Variation.sample sampler rng in
    Array.iteri (fun i acc -> Stats.Acc.add acc v.(i)) accs;
    Stats.Cov_acc.add cov01 v.(0) v.(1);
    Stats.Cov_acc.add cov02 v.(0) v.(2)
  done;
  Array.iteri
    (fun i acc ->
      check_rel ~tol:0.005
        (Printf.sprintf "marginal mean %d" i)
        90.0 (Stats.Acc.mean acc);
      check_rel ~tol:0.03
        (Printf.sprintf "marginal std %d" i)
        (sqrt 18.0) (Stats.Acc.std acc))
    accs;
  (* locations 0-1 are 50 um apart: wid corr 0.5, total = .5 + .5*.5 = .75;
     locations 0-2 beyond dmax: total = floor = 0.5 *)
  check_close ~tol:0.02 "near-pair total correlation" 0.75
    (Stats.Cov_acc.correlation cov01);
  check_close ~tol:0.02 "far-pair floor correlation" 0.5
    (Stats.Cov_acc.correlation cov02)

let test_sample_pair_correlation () =
  let m = Corr_model.create (Corr_model.Linear { dmax = 100.0 }) param in
  let rng = Rng.create ~seed:43 () in
  let acc = Stats.Cov_acc.create () in
  for _ = 1 to 60_000 do
    let v1, v2 = Variation.sample_pair m ~rho_wid:0.4 rng in
    Stats.Cov_acc.add acc v1 v2
  done;
  (* total correlation = 0.5 + 0.5*0.4 = 0.7 *)
  check_close ~tol:0.015 "pair total correlation" 0.7
    (Stats.Cov_acc.correlation acc)

let test_distance () =
  check_close ~tol:1e-12 "3-4-5 triangle" 5.0
    (Variation.distance { Variation.x = 0.0; y = 0.0 }
       { Variation.x = 3.0; y = 4.0 })

let suite =
  ( "process",
    [
      case "parameter accessors" test_param_accessors;
      case "parameter validation" test_param_validation;
      case "families are valid correlations" test_families_valid;
      case "rho(0) = 1" test_total_at_zero;
      case "floor at large distance" test_floor_reached;
      case "dmax semantics" test_dmax_semantics;
      case "truncated exponential endpoints" test_truncated_exponential_endpoints;
      test_total_formula;
      case "invalid family rejected" test_invalid_family;
      slow_case "sampler marginals and correlation" test_sampler_marginals;
      case "sample_pair correlation" test_sample_pair_correlation;
      case "distance" test_distance;
    ] )
