open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Testutil

let param = Process_param.default_channel_length

(* One shared characterization of a few representative cells, built at a
   reduced grid for test speed. *)
let char_of name =
  let rng = Rng.create ~seed:55 () in
  Characterize.characterize ~l_points:65 ~mc_samples:30_000 ~param ~rng
    (Library.find name)

let inv_char = lazy (char_of "INV_X1")
let nand_char = lazy (char_of "NAND2_X1")
let nor3_char = lazy (char_of "NOR3_X1")

let test_state_count () =
  let ch = Lazy.force nand_char in
  check_close "NAND2 has 4 characterized states" 4.0
    (float_of_int (Array.length ch.Characterize.states))

let test_table_matches_simulator () =
  let ch = Lazy.force inv_char in
  let env = Rgleak_device.Mosfet.default_env in
  let cell = ch.Characterize.cell in
  List.iter
    (fun l ->
      let direct = Cell.leakage ~l_nm:l ~env cell [| false |] in
      let table = Characterize.leakage_at ch.Characterize.states.(0) l in
      check_rel ~tol:5e-3
        (Printf.sprintf "table vs simulator at L=%g" l)
        direct table)
    [ 80.0; 85.0; 90.0; 95.0; 100.0 ]

let test_fit_quality () =
  Array.iter
    (fun (sc : Characterize.state_char) ->
      check_true "fit rms (log space) below 5%" (sc.Characterize.fit_rms_log < 0.05))
    (Lazy.force nand_char).Characterize.states

let test_fit_signs () =
  (* leakage decreases with L: b + 2cL < 0 over the fit range *)
  Array.iter
    (fun (sc : Characterize.state_char) ->
      let tr = sc.Characterize.fit in
      let slope l = tr.Mgf.b +. (2.0 *. tr.Mgf.c *. l) in
      check_true "log-leakage slope negative at nominal" (slope 90.0 < 0.0))
    (Lazy.force nor3_char).Characterize.states

let test_analytic_close_to_reference () =
  (* the paper's 2.1.2 result: mean within ~2%, std within ~10% *)
  List.iter
    (fun ch ->
      Array.iter
        (fun (sc : Characterize.state_char) ->
          let merr =
            Float.abs ((sc.Characterize.mu_analytic -. sc.Characterize.mu_ref)
                       /. sc.Characterize.mu_ref)
          in
          let serr =
            Float.abs
              ((sc.Characterize.sigma_analytic -. sc.Characterize.sigma_ref)
              /. sc.Characterize.sigma_ref)
          in
          check_true "mean error under 2%" (merr < 0.02);
          check_true "std error under 10%" (serr < 0.10))
        ch.Characterize.states)
    [ Lazy.force inv_char; Lazy.force nand_char; Lazy.force nor3_char ]

let test_mc_close_to_reference () =
  (* MC is an estimator of the quadrature reference *)
  Array.iter
    (fun (sc : Characterize.state_char) ->
      check_rel ~tol:0.02 "MC mean vs quadrature" sc.Characterize.mu_ref
        sc.Characterize.mu_mc;
      check_rel ~tol:0.05 "MC std vs quadrature" sc.Characterize.sigma_ref
        sc.Characterize.sigma_mc)
    (Lazy.force inv_char).Characterize.states

let test_determinism () =
  let a = char_of "NOR2_X1" and b = char_of "NOR2_X1" in
  Array.iteri
    (fun i (sa : Characterize.state_char) ->
      let sb = b.Characterize.states.(i) in
      check_close "same seed, same MC mean" sa.Characterize.mu_mc
        sb.Characterize.mu_mc)
    a.Characterize.states

let test_positive_moments () =
  Array.iter
    (fun (sc : Characterize.state_char) ->
      check_true "positive analytic mean" (sc.Characterize.mu_analytic > 0.0);
      check_true "positive analytic std" (sc.Characterize.sigma_analytic > 0.0);
      check_true "positive mc mean" (sc.Characterize.mu_mc > 0.0))
    (Lazy.force nand_char).Characterize.states

let test_default_library_cached () =
  let t0 = Unix.gettimeofday () in
  let a = Characterize.default_library () in
  let _ = Unix.gettimeofday () in
  let b = Characterize.default_library () in
  let t2 = Unix.gettimeofday () in
  check_true "memoized result is the same array" (a == b);
  check_true "second call instantaneous" (t2 -. t0 < 60.0);
  check_close "full library characterized" 62.0 (float_of_int (Array.length a))

let test_grid_validation () =
  let rng = Rng.create ~seed:1 () in
  Alcotest.check_raises "too few grid points"
    (Invalid_argument "Characterize: need at least 8 grid points") (fun () ->
      ignore
        (Characterize.characterize ~l_points:4 ~param ~rng (Library.find "INV_X1")))

let suite =
  ( "characterize",
    [
      case "state count" test_state_count;
      case "table matches simulator" test_table_matches_simulator;
      case "fit quality" test_fit_quality;
      case "fit slope sign" test_fit_signs;
      case "analytic vs reference accuracy (paper 2.1.2)"
        test_analytic_close_to_reference;
      case "mc vs reference" test_mc_close_to_reference;
      case "determinism" test_determinism;
      case "positive moments" test_positive_moments;
      slow_case "default library memoization" test_default_library_cached;
      case "grid validation" test_grid_validation;
    ] )
