open Rgleak_num
open Testutil

let test_exact_at_nodes () =
  let t = Interp.of_points [| (0.0, 1.0); (1.0, 3.0); (2.0, 2.0) |] in
  check_close ~tol:1e-15 "node 0" 1.0 (Interp.eval t 0.0);
  check_close ~tol:1e-15 "node 1" 3.0 (Interp.eval t 1.0);
  check_close ~tol:1e-15 "node 2" 2.0 (Interp.eval t 2.0)

let test_midpoints () =
  let t = Interp.of_points [| (0.0, 0.0); (2.0, 4.0) |] in
  check_close ~tol:1e-15 "midpoint" 2.0 (Interp.eval t 1.0);
  check_close ~tol:1e-15 "quarter" 1.0 (Interp.eval t 0.5)

let test_clamping () =
  let t = Interp.of_points [| (0.0, 1.0); (1.0, 2.0) |] in
  check_close ~tol:1e-15 "clamp below" 1.0 (Interp.eval t (-5.0));
  check_close ~tol:1e-15 "clamp above" 2.0 (Interp.eval t 10.0)

let test_unsorted_input () =
  let t = Interp.of_points [| (2.0, 20.0); (0.0, 0.0); (1.0, 10.0) |] in
  check_close ~tol:1e-15 "sorted internally" 5.0 (Interp.eval t 0.5)

let test_duplicate_rejected () =
  Alcotest.check_raises "duplicate abscissa"
    (Invalid_argument "Interp.of_points: duplicate abscissa") (fun () ->
      ignore (Interp.of_points [| (1.0, 1.0); (1.0, 2.0) |]))

let test_of_fun () =
  let t = Interp.of_fun (fun x -> x *. x) ~lo:0.0 ~hi:2.0 ~n:201 in
  check_close ~tol:1e-4 "fine tabulation of x^2" 1.0 (Interp.eval t 1.0);
  check_close ~tol:1e-4 "off-node" 2.25 (Interp.eval t 1.5);
  let lo, hi = Interp.domain t in
  check_close "domain lo" 0.0 lo;
  check_close "domain hi" 2.0 hi;
  check_close "size" 201.0 (float_of_int (Interp.size t))

let test_linear_exact =
  qcheck ~count:200 "linear functions reproduced exactly"
    QCheck2.Gen.(
      tup3 (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
        (float_range (-0.99) 0.99))
    (fun (a, b, x) ->
      let t = Interp.of_fun (fun u -> a +. (b *. u)) ~lo:(-1.0) ~hi:1.0 ~n:17 in
      Float.abs (Interp.eval t x -. (a +. (b *. x))) < 1e-9)

let test_monotone_lookup =
  qcheck ~count:200 "evaluation between bracketing node values"
    QCheck2.Gen.(float_range 0.0 0.999)
    (fun x ->
      let t = Interp.of_fun exp ~lo:0.0 ~hi:1.0 ~n:11 in
      let v = Interp.eval t x in
      v >= 1.0 -. 1e-12 && v <= exp 1.0 +. 1e-12)

let suite =
  ( "interp",
    [
      case "exact at nodes" test_exact_at_nodes;
      case "midpoints" test_midpoints;
      case "clamping" test_clamping;
      case "unsorted input" test_unsorted_input;
      case "duplicate rejected" test_duplicate_rejected;
      case "tabulated function" test_of_fun;
      test_linear_exact;
      test_monotone_lookup;
    ] )
