(* The content-addressed cache and the batch engine.

   The contract under test: keys are stable across restarts (pure
   content hashes), warm runs replay the cold run's floats bit for bit,
   corruption (on-disk or fault-injected) degrades to a recompute and a
   diagnostic — never a crash or a changed result — and the empty-input
   guards return typed Invalid_input diagnostics. *)

open Rgleak_num
module Cache = Rgleak_cache.Cache
module Memo = Rgleak_cache.Memo
module Batch = Rgleak_cache.Batch
module Characterize = Rgleak_cells.Characterize
module Histogram = Rgleak_circuit.Histogram
module Layout = Rgleak_circuit.Layout
module Placer = Rgleak_circuit.Placer
module Corr_model = Rgleak_process.Corr_model
module Process_param = Rgleak_process.Process_param
module Random_gate = Rgleak_core.Random_gate
module Rg_correlation = Rgleak_core.Rg_correlation
module Estimator_linear = Rgleak_core.Estimator_linear
module Mc_reference = Rgleak_core.Mc_reference
module Experiment = Rgleak_valid.Experiment

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rgleak_cache_test_%d_%d" (Unix.getpid ()) !n)
    in
    (* Cache.open_ creates directories lazily; no mkdir needed here. *)
    dir

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Guard.Error Invalid_input" name
  | exception Guard.Error (Guard.Invalid_input _) -> ()

(* --- the store ------------------------------------------------------ *)

(* The key is a pure function of the part list: these literals pin the
   hash so a rebuild, a restart or another platform addresses the same
   entries (an accidental algorithm change would orphan every cache). *)
let test_key_stability () =
  Alcotest.(check string)
    "pinned digest" "c899d7cd06102a9d8c7a6ecdb67d783e"
    (Cache.key [ "a"; "bc" ]);
  Alcotest.(check string)
    "pinned digest 2" "56881f02774bf192b185174ec9fa299c"
    (Cache.key [ "ab"; "c" ]);
  Alcotest.(check bool)
    "part boundaries matter" false
    (Cache.key [ "a"; "bc" ] = Cache.key [ "ab"; "c" ]);
  Alcotest.(check string)
    "same parts, same key"
    (Cache.key [ "x"; "y"; "z" ])
    (Cache.key [ "x"; "y"; "z" ])

let test_put_get_counters () =
  let c = Cache.open_ ~dir:(fresh_dir ()) () in
  let key = Cache.key [ "payload" ] in
  Alcotest.(check (option string))
    "miss on empty store" None
    (Cache.get c ~kind:"t" ~version:1 ~key);
  Cache.put c ~kind:"t" ~version:1 ~key "hello";
  Alcotest.(check (option string))
    "hit after put" (Some "hello")
    (Cache.get c ~kind:"t" ~version:1 ~key);
  Alcotest.(check (option string))
    "other version is a different namespace" None
    (Cache.get c ~kind:"t" ~version:2 ~key);
  Alcotest.(check (option string))
    "other kind is a different namespace" None
    (Cache.get c ~kind:"u" ~version:1 ~key);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "bytes read" 5 s.Cache.bytes_read;
  Alcotest.(check int) "bytes written" 5 s.Cache.bytes_written;
  Alcotest.(check int) "no corruption" 0 s.Cache.corrupt

let corrupt_entry_on_disk dir =
  (* Flip a byte in every stored entry file under [dir]. *)
  let rec walk path =
    if Sys.is_directory path then
      Array.iter (fun f -> walk (Filename.concat path f)) (Sys.readdir path)
    else begin
      let ic = open_in_bin path in
      let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let i = Bytes.length s - 1 in
      Bytes.set s i (if Bytes.get s i = 'x' then 'y' else 'x');
      let oc = open_out_bin path in
      output_string oc (Bytes.to_string s);
      close_out oc
    end
  in
  walk dir

let test_corruption_recovery () =
  let dir = fresh_dir () in
  let diags = ref [] in
  let c = Cache.open_ ~on_corrupt:(fun d -> diags := d :: !diags) ~dir () in
  let key = Cache.key [ "poisoned" ] in
  Cache.put c ~kind:"t" ~version:1 ~key "payload-bytes";
  corrupt_entry_on_disk dir;
  Alcotest.(check (option string))
    "corrupt entry reads as miss" None
    (Cache.get c ~kind:"t" ~version:1 ~key);
  Alcotest.(check int) "corruption counted" 1 (Cache.stats c).Cache.corrupt;
  (match !diags with
  | [ Guard.Invalid_input msg ] ->
    Alcotest.(check bool)
      "diagnostic names the entry" true
      (contains msg "corrupt cache entry")
  | _ -> Alcotest.fail "expected exactly one Invalid_input diagnostic");
  (* The bad entry was deleted: the next read is a plain miss and a
     re-put works again. *)
  Alcotest.(check (option string))
    "entry deleted" None
    (Cache.get c ~kind:"t" ~version:1 ~key);
  Alcotest.(check int) "still one corruption" 1 (Cache.stats c).Cache.corrupt;
  Cache.put c ~kind:"t" ~version:1 ~key "payload-bytes";
  Alcotest.(check (option string))
    "store recovers" (Some "payload-bytes")
    (Cache.get c ~kind:"t" ~version:1 ~key)

let test_fault_site () =
  let c = Cache.open_ ~dir:(fresh_dir ()) () in
  let key = Cache.key [ "fault" ] in
  Cache.put c ~kind:"t" ~version:1 ~key "v";
  Guard.Fault.configure [ { Guard.Fault.site = "cache"; prob = 1.0; seed = 1 } ];
  Fun.protect ~finally:Guard.Fault.clear (fun () ->
      Alcotest.(check (option string))
        "armed cache site forces the corrupt path" None
        (Cache.get c ~kind:"t" ~version:1 ~key));
  Alcotest.(check int) "counted as corrupt" 1 (Cache.stats c).Cache.corrupt

(* --- memoized artifacts -------------------------------------------- *)

let asic_mix =
  [ ("INV_X1", 3.0); ("NAND2_X1", 2.0); ("NOR2_X1", 1.0); ("DFF_X1", 1.0) ]

let build_rgcorr ?cache ~key_parts () =
  let chars = Characterize.default_library () in
  let histogram = Histogram.of_weights asic_mix in
  let p = 0.5 in
  let rg = Random_gate.create ~chars ~histogram ~p () in
  Memo.correlation ?cache ~chars ~rg ~p ~key_parts ()

let test_rgcorr_cold_warm_identical () =
  let c = Cache.open_ ~dir:(fresh_dir ()) () in
  let key_parts = [ "test-rgcorr"; "asic"; "p=0.5" ] in
  let cold = build_rgcorr ~cache:c ~key_parts () in
  let warm = build_rgcorr ~cache:c ~key_parts () in
  Alcotest.(check int) "one miss then one hit" 1 (Cache.stats c).Cache.hits;
  List.iter
    (fun rho_l ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "f bit-identical at rho=%g" rho_l)
        (Rg_correlation.f cold ~rho_l)
        (Rg_correlation.f warm ~rho_l))
    [ 0.0; 0.137; 0.5; 0.83; 1.0 ];
  Alcotest.(check (float 0.0))
    "sigma_bar bit-identical"
    (Rg_correlation.sigma_bar cold)
    (Rg_correlation.sigma_bar warm);
  List.iter
    (fun rho_l ->
      Alcotest.(check (float 0.0))
        "pair covariance bit-identical"
        (Rg_correlation.cell_pair_covariance cold ~ci:0 ~cj:0 ~rho_l)
        (Rg_correlation.cell_pair_covariance warm ~ci:0 ~cj:0 ~rho_l))
    [ 0.25; 0.75 ]

let linear_result ?cache ~dir_tag () =
  ignore dir_tag;
  let chars = Characterize.default_library () in
  let histogram = Histogram.of_weights asic_mix in
  let p = 0.5 in
  let rg = Random_gate.create ~chars ~histogram ~p () in
  let rgcorr =
    Memo.correlation ?cache ~chars ~rg ~p ~key_parts:[ "lin-test" ] ()
  in
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in
  let layout = Layout.of_dims ~n:300 ~width:70.0 ~height:70.0 in
  Memo.with_linear_memo ?cache ~key_parts:[ "lin-test"; "spherical:120" ]
    ~rows:(Layout.rows layout) ~cols:layout.Layout.cols (fun memo ->
      Estimator_linear.estimate ~memo ~corr ~rgcorr ~layout ())

let test_linear_memo_cold_warm_identical () =
  let c = Cache.open_ ~dir:(fresh_dir ()) () in
  let cold = linear_result ~cache:c ~dir_tag:"a" () in
  let stats_cold = Cache.stats c in
  let warm = linear_result ~cache:c ~dir_tag:"b" () in
  let stats_warm = Cache.stats c in
  Alcotest.(check bool)
    "warm run hit the store" true
    (stats_warm.Cache.hits > stats_cold.Cache.hits);
  Alcotest.(check (float 0.0))
    "mean bit-identical" cold.Estimator_linear.mean warm.Estimator_linear.mean;
  Alcotest.(check (float 0.0))
    "variance bit-identical" cold.Estimator_linear.variance
    warm.Estimator_linear.variance;
  (* And both match the never-cached computation. *)
  let plain = linear_result ~dir_tag:"c" () in
  Alcotest.(check (float 0.0))
    "cached equals uncached" plain.Estimator_linear.mean
    cold.Estimator_linear.mean

let test_poisoned_memo_recovers () =
  let dir = fresh_dir () in
  let c = Cache.open_ ~dir () in
  let cold = linear_result ~cache:c ~dir_tag:"a" () in
  corrupt_entry_on_disk dir;
  let after = linear_result ~cache:c ~dir_tag:"b" () in
  Alcotest.(check bool)
    "corruption detected" true
    ((Cache.stats c).Cache.corrupt > 0);
  Alcotest.(check (float 0.0))
    "recomputed result identical" cold.Estimator_linear.mean
    after.Estimator_linear.mean

let test_characterization_cached () =
  let c = Cache.open_ ~dir:(fresh_dir ()) () in
  let cold = Memo.characterization ~cache:c ~temp_celsius:None () in
  let warm = Memo.characterization ~cache:c ~temp_celsius:None () in
  Alcotest.(check int) "warm hit" 1 (Cache.stats c).Cache.hits;
  Alcotest.(check int) "same cell count" (Array.length cold)
    (Array.length warm);
  Array.iteri
    (fun i cc ->
      let wc = warm.(i) in
      Array.iteri
        (fun s (st : Characterize.state_char) ->
          let wt = wc.Characterize.states.(s) in
          if
            not
              (st.Characterize.mu_analytic = wt.Characterize.mu_analytic
              && st.Characterize.sigma_analytic = wt.Characterize.sigma_analytic
              )
          then
            Alcotest.failf "cell %d state %d: cached moments differ" i s)
        cc.Characterize.states)
    cold

(* --- empty-input guards --------------------------------------------- *)

let test_empty_mix_guard () =
  check_invalid "empty mix" (fun () -> Histogram.of_weights [])

let test_empty_design_guard () =
  let chars = Characterize.default_library () in
  let netlist =
    Rgleak_circuit.Netlist.create ~name:"empty" ~num_primary_inputs:1 [||]
  in
  let layout = Layout.square ~n:4 () in
  let placed = Placer.place ~strategy:Placer.Sequential netlist layout in
  let corr =
    Corr_model.create
      (Corr_model.Spherical { dmax = 120.0 })
      Process_param.default_channel_length
  in
  check_invalid "zero-gate MC design" (fun () ->
      Mc_reference.prepare ~chars ~corr ~p:0.5 placed)

let test_empty_sweep_guard () =
  let sweep = { Experiment.quick_sweep with Experiment.points = [] } in
  check_invalid "empty sweep" (fun () -> Experiment.run ~seed:42 sweep)

(* --- batch manifests ------------------------------------------------ *)

let manifest_line =
  {|{"n": 60, "mix": "INV_X1:1,NOR2_X1:1", "corr": "spherical:120", "tier": "linear", "seed": 3}|}

let test_manifest_errors () =
  check_invalid "empty manifest" (fun () -> Batch.parse_manifest "");
  check_invalid "comments only" (fun () ->
      Batch.parse_manifest "# nothing\n\n# here\n");
  check_invalid "malformed JSON" (fun () -> Batch.parse_manifest "{nope\n");
  check_invalid "unknown field" (fun () ->
      Batch.parse_manifest
        {|{"n": 10, "mix": "INV_X1:1", "corr": "exp:60", "bogus": 1}|});
  check_invalid "unknown cell" (fun () ->
      Batch.parse_manifest {|{"n": 10, "mix": "NOPE_X9:1", "corr": "exp:60"}|});
  check_invalid "empty mix string" (fun () ->
      Batch.parse_manifest {|{"n": 10, "mix": "", "corr": "exp:60"}|});
  check_invalid "zero gates" (fun () ->
      Batch.parse_manifest {|{"n": 0, "mix": "INV_X1:1", "corr": "exp:60"}|});
  check_invalid "width without height" (fun () ->
      Batch.parse_manifest
        {|{"n": 10, "mix": "INV_X1:1", "corr": "exp:60", "width": 40}|});
  check_invalid "unknown tier" (fun () ->
      Batch.parse_manifest
        {|{"n": 10, "mix": "INV_X1:1", "corr": "exp:60", "tier": "warp"}|})

let test_manifest_ids_content_derived () =
  (* The derived id must not depend on the line position: the same
     scenario parsed from line 1 and line 3 gets the same id. *)
  let first = List.hd (Batch.parse_manifest manifest_line) in
  let shifted =
    List.hd (Batch.parse_manifest ("# pad\n\n" ^ manifest_line))
  in
  Alcotest.(check string)
    "id is a pure content hash" first.Batch.s_id shifted.Batch.s_id;
  Alcotest.(check int) "line is tracked" 3 shifted.Batch.s_line;
  Alcotest.(check bool)
    "key parts carry no line info" true
    (Batch.scenario_key_parts first = Batch.scenario_key_parts shifted)

let test_batch_run_and_report () =
  let scenarios = Batch.parse_manifest manifest_line in
  let outcomes = Batch.run scenarios in
  Alcotest.(check int) "all ok" 0 (Batch.exit_code outcomes);
  let report = Batch.report outcomes in
  let lines = String.split_on_char '\n' (String.trim report) in
  Alcotest.(check int) "header + one record" 2 (List.length lines);
  Alcotest.(check bool)
    "header carries the schema" true
    (contains (List.hd lines) "rgleak-batch/1");
  (* Per-scenario failures become error records, not exceptions: the
     polar tier refuses a correlation family with no finite support
     radius, and that surfaces as an invalid-input record (exit class
     2), not a crash. *)
  let bad =
    Batch.parse_manifest
      {|{"n": 40, "mix": "INV_X1:1", "corr": "exp:60", "tier": "polar", "seed": 1}|}
  in
  match Batch.run bad with
  | [ o ] ->
    Alcotest.(check int) "invalid-input class surfaces as exit 2" 2
      (Batch.exit_code [ o ]);
    Alcotest.(check bool)
      "record is an error record" true
      (contains (Rgleak_valid.Vjson.to_string o.Batch.o_json)
         {|"status": "error"|})
  | _ -> Alcotest.fail "expected one outcome"

(* --- LRU eviction --------------------------------------------------- *)

(* One entry's on-disk footprint, measured rather than assumed, so the
   cap arithmetic below tracks any header format change. *)
let entry_size () =
  let c = Cache.open_ ~cap_bytes:max_int ~dir:(fresh_dir ()) () in
  Cache.put c ~kind:"k" ~version:1 ~key:(Cache.key [ "probe" ])
    (String.make 100 'p');
  Cache.total_bytes c

let test_lru_eviction_under_cap () =
  let sz = entry_size () in
  let c = Cache.open_ ~cap_bytes:(2 * sz) ~dir:(fresh_dir ()) () in
  let key i = Cache.key [ string_of_int i ] in
  let put i = Cache.put c ~kind:"k" ~version:1 ~key:(key i) (String.make 100 'p')
  and get i = Cache.get c ~kind:"k" ~version:1 ~key:(key i) in
  put 1;
  put 2;
  Alcotest.(check int) "two entries fit the cap" (2 * sz) (Cache.total_bytes c);
  put 3;
  (* Coldest (1) evicted, newest exempt. *)
  Alcotest.(check bool) "coldest entry evicted" true (get 1 = None);
  Alcotest.(check bool) "warm entry kept" true (get 2 <> None);
  Alcotest.(check bool) "new entry kept" true (get 3 <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction counted" 1 s.Cache.evictions;
  Alcotest.(check int) "evicted bytes counted" sz s.Cache.bytes_evicted;
  Alcotest.(check int) "total back under cap" (2 * sz) (Cache.total_bytes c)

let test_lru_recency_survival () =
  let sz = entry_size () in
  let c = Cache.open_ ~cap_bytes:(2 * sz) ~dir:(fresh_dir ()) () in
  let key i = Cache.key [ string_of_int i ] in
  let put i = Cache.put c ~kind:"k" ~version:1 ~key:(key i) (String.make 100 'p')
  and get i = Cache.get c ~kind:"k" ~version:1 ~key:(key i) in
  put 1;
  put 2;
  ignore (get 1);
  (* A hit refreshes recency: now 2 is the coldest. *)
  put 3;
  Alcotest.(check bool) "recently-hit entry survives" true (get 1 <> None);
  Alcotest.(check bool) "stale entry evicted" true (get 2 = None);
  Alcotest.(check bool) "new entry kept" true (get 3 <> None)

let test_lru_keep_exempt_and_complete_reads () =
  (* A cap smaller than one entry still admits the entry just written
     (eviction never selects it), and every hit returns the complete
     payload even as writes evict around it — the "never evicted
     mid-read" contract through a single handle. *)
  let c = Cache.open_ ~cap_bytes:1 ~dir:(fresh_dir ()) () in
  let payload i = String.init 2048 (fun j -> Char.chr ((i + j) mod 256)) in
  let key i = Cache.key [ "p"; string_of_int i ] in
  for i = 1 to 4 do
    Cache.put c ~kind:"k" ~version:1 ~key:(key i) (payload i);
    (match Cache.get c ~kind:"k" ~version:1 ~key:(key i) with
    | Some p ->
      Alcotest.(check string)
        (Printf.sprintf "hit %d returns the complete payload" i)
        (payload i) p
    | None -> Alcotest.failf "entry %d missing right after its put" i);
    (* Everything but the newest write has been evicted. *)
    if i > 1 then
      Alcotest.(check bool)
        "previous entry evicted" true
        (Cache.get c ~kind:"k" ~version:1 ~key:(key (i - 1)) = None)
  done;
  Alcotest.(check int) "three evictions" 3 (Cache.stats c).Cache.evictions

let test_lru_index_survives_reopen () =
  let dir = fresh_dir () in
  let c = Cache.open_ ~cap_bytes:max_int ~dir () in
  Cache.put c ~kind:"k" ~version:1 ~key:(Cache.key [ "a" ]) "one";
  Cache.put c ~kind:"k" ~version:1 ~key:(Cache.key [ "b" ]) "two";
  let total = Cache.total_bytes c in
  Alcotest.(check bool) "nonzero total" true (total > 0);
  let c2 = Cache.open_ ~cap_bytes:max_int ~dir () in
  Alcotest.(check int) "reopened handle re-indexes the entries" total
    (Cache.total_bytes c2);
  (* An uncapped handle keeps no index at all. *)
  let c3 = Cache.open_ ~dir () in
  Alcotest.(check int) "uncapped handle keeps no index" 0 (Cache.total_bytes c3)

let suite =
  ( "cache",
    [
      Alcotest.test_case "key is stable and boundary-safe" `Quick
        test_key_stability;
      Alcotest.test_case "put/get round trip with counters" `Quick
        test_put_get_counters;
      Alcotest.test_case "corrupt entries are deleted and reported" `Quick
        test_corruption_recovery;
      Alcotest.test_case "the cache fault site forces recompute" `Quick
        test_fault_site;
      Alcotest.test_case "rgcorr tables reload bit-identically" `Quick
        test_rgcorr_cold_warm_identical;
      Alcotest.test_case "linear F memo reloads bit-identically" `Quick
        test_linear_memo_cold_warm_identical;
      Alcotest.test_case "poisoned memo entry recovers" `Quick
        test_poisoned_memo_recovers;
      Alcotest.test_case "characterization round-trips through the cache"
        `Quick test_characterization_cached;
      Alcotest.test_case "empty mix is Invalid_input" `Quick
        test_empty_mix_guard;
      Alcotest.test_case "zero-gate MC design is Invalid_input" `Quick
        test_empty_design_guard;
      Alcotest.test_case "empty sweep is Invalid_input" `Quick
        test_empty_sweep_guard;
      Alcotest.test_case "manifest errors are Invalid_input" `Quick
        test_manifest_errors;
      Alcotest.test_case "scenario ids derive from content, not position"
        `Quick test_manifest_ids_content_derived;
      Alcotest.test_case "batch runs and reports" `Quick
        test_batch_run_and_report;
      Alcotest.test_case "LRU evicts the coldest past the cap" `Quick
        test_lru_eviction_under_cap;
      Alcotest.test_case "LRU hits refresh recency" `Quick
        test_lru_recency_survival;
      Alcotest.test_case "LRU never evicts the entry just written or mid-read"
        `Quick test_lru_keep_exempt_and_complete_reads;
      Alcotest.test_case "LRU index survives reopen" `Quick
        test_lru_index_survives_reopen;
    ] )
