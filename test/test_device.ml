open Rgleak_device
open Testutil

let env = Mosfet.default_env
let n = Mosfet.nmos ()
let p = Mosfet.pmos ()

let test_vth_rolloff () =
  (* threshold decreases as channel shortens *)
  check_true "short channel has lower Vth"
    (Mosfet.vth n ~l_nm:75.0 < Mosfet.vth n ~l_nm:90.0);
  check_true "long channel approaches Vth0"
    (Mosfet.vth n ~l_nm:400.0 > Mosfet.vth n ~l_nm:90.0);
  check_in_range "Vth at nominal is plausible" ~lo:0.15 ~hi:0.40
    (Mosfet.vth n ~l_nm:90.0);
  Alcotest.check_raises "non-positive L rejected"
    (Invalid_argument "Mosfet.vth: channel length must be positive") (fun () ->
      ignore (Mosfet.vth n ~l_nm:0.0))

let test_current_monotone_vgs =
  qcheck ~count:200 "current increases with vgs"
    QCheck2.Gen.(
      QCheck2.Gen.pair (float_range (-0.5) 0.2) (float_range 0.01 0.19))
    (fun (vgs, dv) ->
      let i1 = Mosfet.subthreshold_current env n ~vgs ~vds:1.0 ~l_nm:90.0 in
      let i2 = Mosfet.subthreshold_current env n ~vgs:(vgs +. dv) ~vds:1.0 ~l_nm:90.0 in
      i2 > i1)

let test_current_monotone_length =
  qcheck ~count:200 "current decreases with channel length"
    QCheck2.Gen.(QCheck2.Gen.pair (float_range 70.0 110.0) (float_range 1.0 10.0))
    (fun (l, dl) ->
      let i1 = Mosfet.subthreshold_current env n ~vgs:0.0 ~vds:1.0 ~l_nm:l in
      let i2 = Mosfet.subthreshold_current env n ~vgs:0.0 ~vds:1.0 ~l_nm:(l +. dl) in
      i2 < i1)

let test_current_vds_zero () =
  check_close "no current at vds = 0" 0.0
    (Mosfet.subthreshold_current env n ~vgs:0.0 ~vds:0.0 ~l_nm:90.0);
  check_close "no reverse conduction modeled" 0.0
    (Mosfet.subthreshold_current env n ~vgs:0.0 ~vds:(-0.5) ~l_nm:90.0)

let test_dvt_shift () =
  let base = Mosfet.subthreshold_current env n ~vgs:0.0 ~vds:1.0 ~l_nm:90.0 in
  let shifted = Mosfet.subthreshold_current ~dvt:0.05 env n ~vgs:0.0 ~vds:1.0 ~l_nm:90.0 in
  (* +50mV Vt should cut leakage by about exp(0.05/(1.4*0.0259)) ~ 3.97 *)
  check_rel ~tol:1e-6 "dvt factor" (exp (0.05 /. (1.4 *. 0.0259))) (base /. shifted)

let test_exponential_slope () =
  (* subthreshold swing: decade per n*vt*ln10 volts of vgs *)
  let i1 = Mosfet.subthreshold_current env n ~vgs:0.0 ~vds:1.0 ~l_nm:90.0 in
  let swing = n.Mosfet.n_swing *. env.Mosfet.v_thermal *. log 10.0 in
  let i2 = Mosfet.subthreshold_current env n ~vgs:(-.swing) ~vds:1.0 ~l_nm:90.0 in
  check_rel ~tol:1e-9 "one decade per swing" 10.0 (i1 /. i2)

(* ---- networks ---- *)

let dev = Network.device
let state_all_off k = Array.make k false

let stack k = Network.series (List.init k (fun i -> dev i))

let test_stack_effect_ordering () =
  let leak k =
    Network.leakage ~env ~params:n (stack k) (state_all_off k)
  in
  let i1 = leak 1 and i2 = leak 2 and i3 = leak 3 and i4 = leak 4 in
  check_true "2-stack below single" (i2 < i1);
  check_true "3-stack below 2-stack" (i3 < i2);
  check_true "4-stack below 3-stack" (i4 < i3);
  check_in_range "2-stack suppression factor" ~lo:4.0 ~hi:20.0 (i1 /. i2)

let test_stack_partial_on () =
  (* one ON transistor in a 2-stack shorts it back to a single device *)
  let net = stack 2 in
  let both_off = Network.leakage ~env ~params:n net [| false; false |] in
  let one_on = Network.leakage ~env ~params:n net [| true; false |] in
  let single = Network.leakage ~env ~params:n (dev 0) [| false |] in
  check_rel ~tol:1e-9 "shorted stack equals single" single one_on;
  check_true "partial-on leaks more than all-off" (one_on > both_off)

let test_parallel_adds () =
  let par = Network.parallel [ dev 0; dev 1 ] in
  let both = Network.leakage ~env ~params:n par [| false; false |] in
  let single = Network.leakage ~env ~params:n (dev 0) [| false |] in
  check_rel ~tol:1e-9 "parallel doubles leakage" (2.0 *. single) both

let test_conducting_raises () =
  check_true "conducting network raises"
    (try
       ignore (Network.leakage ~env ~params:n (dev 0) [| true |]);
       false
     with Network.Conducting -> true)

let test_conducts_logic () =
  let nand_pd = Network.series [ dev 0; dev 1 ] in
  check_true "series conducts when all on"
    (Network.conducts ~kind:Mosfet.Nmos nand_pd [| true; true |]);
  check_true "series blocked by one off"
    (not (Network.conducts ~kind:Mosfet.Nmos nand_pd [| true; false |]));
  let nand_pu = Network.parallel [ dev 0; dev 1 ] in
  check_true "pmos parallel conducts when one low"
    (Network.conducts ~kind:Mosfet.Pmos nand_pu [| true; false |]);
  check_true "pmos parallel blocked when all high"
    (not (Network.conducts ~kind:Mosfet.Pmos nand_pu [| true; true |]))

let test_width_scaling () =
  let i1 = Network.leakage ~env ~params:n (dev 0) [| false |] in
  let i2 = Network.leakage ~env ~params:n (dev ~w_mult:2.0 0) [| false |] in
  check_rel ~tol:1e-9 "leakage proportional to width" 2.0 (i2 /. i1)

let test_pmos_network () =
  (* a PMOS pull-up blocked high: full vdd across it *)
  let i = Network.leakage ~env ~params:p (dev 0) [| true |] in
  check_true "pmos leaks when off" (i > 0.0);
  let i2 = Network.leakage ~env ~params:p (Network.series [ dev 0; dev 1 ]) [| true; true |] in
  check_true "pmos stack effect" (i2 < i)

let test_stack_internal_consistency () =
  (* current through a 2-stack must be less than through either device
     alone with full vdd, and more than a device with zero vds *)
  let i2 = Network.leakage ~env ~params:n (stack 2) [| false; false |] in
  let single = Network.leakage ~env ~params:n (dev 0) [| false |] in
  check_true "stack below single" (i2 < single);
  check_true "stack strictly positive" (i2 > 0.0)

let test_depth_and_counts () =
  let net =
    Network.parallel [ Network.series [ dev 0; dev 1; dev 2 ]; dev 3 ]
  in
  check_close "depth" 3.0 (float_of_int (Network.depth net));
  check_close "device count" 4.0 (float_of_int (Network.device_count net));
  check_true "inputs sorted" (Network.inputs net = [ 0; 1; 2; 3 ])

let test_mixed_series_parallel () =
  (* series [dev; parallel [dev; dev]] all off: must solve and be below
     a single device *)
  let net = Network.series [ dev 0; Network.parallel [ dev 1; dev 2 ] ] in
  let i = Network.leakage ~env ~params:n net (state_all_off 3) in
  let single = Network.leakage ~env ~params:n (dev 0) [| false |] in
  check_true "mixed network below single" (i < single);
  check_true "mixed network positive" (i > 0.0);
  (* the parallel pair leaks more than a single bottom device would, so
     the mixed stack should leak a bit more than a plain 2-stack *)
  let plain2 = Network.leakage ~env ~params:n (stack 2) [| false; false |] in
  check_true "parallel bottom raises stack leakage" (i > plain2)

let test_leakage_monotone_in_vdd =
  qcheck ~count:50 "network leakage increases with supply"
    QCheck2.Gen.(QCheck2.Gen.pair (float_range 0.7 1.1) (float_range 0.02 0.15))
    (fun (vdd, dv) ->
      let at vdd =
        Network.leakage
          ~env:(Mosfet.env_at ~vdd ~temp_k:300.0 ())
          ~params:n (stack 2) [| false; false |]
      in
      at (vdd +. dv) > at vdd)

let test_stack_bounded_by_weakest_device () =
  (* series current cannot exceed what any single member would carry
     with the full supply across it *)
  let i2 = Network.leakage ~env ~params:n (stack 2) [| false; false |] in
  let i3 = Network.leakage ~env ~params:n (stack 3) [| false; false; false |] in
  let single = Network.leakage ~env ~params:n (dev 0) [| false |] in
  check_true "2-stack bounded" (i2 <= single);
  check_true "3-stack bounded" (i3 <= i2)

let suite =
  ( "device",
    [
      case "vth roll-off" test_vth_rolloff;
      test_current_monotone_vgs;
      test_current_monotone_length;
      case "vds edge cases" test_current_vds_zero;
      case "dvt shift" test_dvt_shift;
      case "subthreshold swing" test_exponential_slope;
      case "stack effect ordering" test_stack_effect_ordering;
      case "partially-on stack" test_stack_partial_on;
      case "parallel addition" test_parallel_adds;
      case "conducting raises" test_conducting_raises;
      case "conducts logic" test_conducts_logic;
      case "width scaling" test_width_scaling;
      case "pmos networks" test_pmos_network;
      case "stack consistency" test_stack_internal_consistency;
      case "depth and counts" test_depth_and_counts;
      case "mixed series-parallel" test_mixed_series_parallel;
      test_leakage_monotone_in_vdd;
      case "stack bounded by weakest" test_stack_bounded_by_weakest_device;
    ] )
