(* Telemetry contract tests: spans nest and close (even on exceptions),
   work counters are bit-identical across job counts, the exporters
   emit well-formed JSON, and — the core guarantee — enabling tracing
   leaves every estimator result bitwise unchanged. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil
module Obs = Rgleak_obs.Obs
module Export = Rgleak_obs.Export

let bits = Int64.bits_of_float

let check_bits name expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %.17g and %.17g differ bitwise" name expected actual

(* Every test leaves the global switch off so the other suites (and
   their timing) are unaffected. *)
let with_telemetry f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect f ~finally:(fun () -> Obs.set_enabled false)

(* ---------- a minimal JSON reader (no external deps) ---------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      String.iter expect word;
      value
    in
    let string_body () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
            (* code points escaped by the exporters are all < 0x80 *)
            let hex = String.sub s (!pos + 1) 4 in
            Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0x7f));
            pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "empty input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else Obj (members [])
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else Arr (elements [])
      | Some '"' -> Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
    and members acc =
      skip_ws ();
      let key = string_body () in
      skip_ws ();
      expect ':';
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        members ((key, v) :: acc)
      | Some '}' ->
        advance ();
        List.rev ((key, v) :: acc)
      | _ -> fail "expected , or } in object"
    and elements acc =
      let v = value () in
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        elements (v :: acc)
      | Some ']' ->
        advance ();
        List.rev (v :: acc)
      | _ -> fail "expected , or ] in array"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  (* Re-serialize, for the round-trip check.  Numbers use %.17g so the
     parse of the output reproduces the same floats. *)
  let rec to_string = function
    | Null -> "null"
    | Bool b -> string_of_bool b
    | Num f -> Printf.sprintf "%.17g" f
    | Str s -> Printf.sprintf "%S" s
    | Arr vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"
    | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (to_string v)) kvs)
      ^ "}"

  let mem key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let get key j =
    match mem key j with
    | Some v -> v
    | None -> Alcotest.failf "json: missing key %S" key

  let str = function Str s -> s | _ -> Alcotest.fail "json: expected string"
  let num = function Num f -> f | _ -> Alcotest.fail "json: expected number"
  let arr = function Arr vs -> vs | _ -> Alcotest.fail "json: expected array"
end

(* ---------- span semantics ---------- *)

let test_spans_nest () =
  with_telemetry @@ fun () ->
  check_true "outside any span" (Obs.current_path () = "");
  Obs.span "outer" (fun () ->
      check_true "path inside outer" (Obs.current_path () = "outer");
      Obs.span "inner" (fun () ->
          check_true "nested path" (Obs.current_path () = "outer/inner"));
      check_true "inner popped" (Obs.current_path () = "outer"));
  check_true "outer popped" (Obs.current_path () = "");
  let s = Obs.snapshot () in
  let find path =
    match
      List.find_opt (fun (e : Obs.span_event) -> e.Obs.path = path) s.Obs.spans
    with
    | Some e -> e
    | None -> Alcotest.failf "span %s not recorded" path
  in
  let outer = find "outer" and inner = find "outer/inner" in
  check_true "outer depth" (outer.Obs.depth = 0);
  check_true "inner depth" (inner.Obs.depth = 1);
  check_true "inner starts after outer"
    (Int64.compare inner.Obs.start_ns outer.Obs.start_ns >= 0);
  check_true "inner ends within outer"
    (Int64.compare
       (Int64.add inner.Obs.start_ns inner.Obs.dur_ns)
       (Int64.add outer.Obs.start_ns outer.Obs.dur_ns)
    <= 0)

let test_spans_close_on_exception () =
  with_telemetry @@ fun () ->
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  check_true "stack popped after raise" (Obs.current_path () = "");
  let s = Obs.snapshot () in
  check_true "raising span still recorded"
    (List.exists (fun (e : Obs.span_event) -> e.Obs.path = "boom") s.Obs.spans)

let test_disabled_is_passthrough () =
  Obs.set_enabled false;
  Obs.reset ();
  let r = Obs.span "ghost" (fun () -> Obs.count "ghost.counter" 1; 42) in
  check_true "span returns body result" (r = 42);
  let s = Obs.snapshot () in
  check_true "no spans recorded while disabled" (s.Obs.spans = []);
  check_true "no counters recorded while disabled" (s.Obs.counters = [])

(* ---------- counters are jobs-invariant ---------- *)

(* Work counters count items of the problem decomposition (pairs,
   replicas, cells, chunks, bands), never pool activity per domain, so
   the merged values must be identical for jobs = 1, 2 and 4. *)
let counters_with_jobs run j =
  with_telemetry @@ fun () ->
  run j;
  (Obs.snapshot ()).Obs.counters

let check_counters_invariant name run =
  match List.map (counters_with_jobs run) [ 1; 2; 4 ] with
  | [ c1; c2; c4 ] ->
    let show c =
      String.concat "; "
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) c)
    in
    if c1 <> c2 || c1 <> c4 then
      Alcotest.failf "%s counters vary with jobs:\n 1: %s\n 2: %s\n 4: %s" name
        (show c1) (show c2) (show c4);
    check_true (name ^ " produced counters") (c1 <> [])
  | _ -> assert false

let small_ctx =
  lazy
    (let chars = Characterize.default_library () in
     let corr =
       Corr_model.create
         (Corr_model.Spherical { dmax = 120.0 })
         Process_param.default_channel_length
     in
     let histogram =
       Histogram.of_weights
         [ ("INV_X1", 2.0); ("NAND2_X1", 1.0); ("DFF_X1", 1.0) ]
     in
     let ctx = Estimate.context ~chars ~corr ~histogram () in
     (chars, corr, histogram, ctx))

let test_exact_counters_invariant () =
  let _, corr, histogram, ctx = Lazy.force small_ctx in
  let rng = Rng.create ~seed:99 () in
  let placed = Generator.random_placed ~histogram ~n:300 ~rng () in
  check_counters_invariant "exact" (fun jobs ->
      ignore
        (Estimator_exact.estimate ~jobs ~corr
           ~rgcorr:(Estimate.correlation ctx) placed))

let test_mc_counters_invariant () =
  let chars, corr, histogram, _ = Lazy.force small_ctx in
  let rng = Rng.create ~seed:100 () in
  let placed = Generator.random_placed ~histogram ~n:60 ~rng () in
  let mc = Mc_reference.prepare ~chars ~corr ~p:0.5 placed in
  check_counters_invariant "mc" (fun jobs ->
      ignore (Mc_reference.moments_stream ~jobs mc ~seed:4 ~count:50))

let test_characterize_counters_invariant () =
  check_counters_invariant "characterize" (fun jobs ->
      ignore
        (Characterize.characterize_library ~l_points:9 ~mc_samples:40 ~jobs
           ~param:Process_param.default_channel_length ~seed:5 ()))

(* ---------- histograms ---------- *)

let test_hist_bucketing () =
  let module H = Obs.Hist in
  (* non-positive and NaN values land in the underflow bucket *)
  check_true "zero is underflow" (H.bucket_of 0.0 = 0);
  check_true "negative is underflow" (H.bucket_of (-3.5) = 0);
  check_true "nan is underflow" (H.bucket_of Float.nan = 0);
  (* values beyond the top octave clamp into the overflow bucket *)
  check_true "huge is overflow" (H.bucket_of 1e300 = H.overflow);
  check_true "infinity is overflow" (H.bucket_of Float.infinity = H.overflow);
  (* every ordinary value lands inside its bucket's bounds *)
  List.iter
    (fun v ->
      let b = H.bucket_of v in
      let lo, hi = H.bounds b in
      if b <= 0 || b >= H.overflow then
        Alcotest.failf "value %g unexpectedly out of the ordinary range" v;
      if not (v >= lo && v < hi) then
        Alcotest.failf "value %g outside bucket %d bounds [%g, %g)" v b lo hi)
    [ 1e-9; 2.5e-6; 1e-3; 0.5; 1.0; 1.125; 1.5; 3.0; 7.7; 1e3; 1e6 ];
  (* ordinary bucket boundaries are contiguous and strictly increasing *)
  for b = 1 to H.overflow - 2 do
    let lo, hi = H.bounds b in
    let lo', _ = H.bounds (b + 1) in
    if not (lo < hi) then Alcotest.failf "bucket %d is empty" b;
    if bits hi <> bits lo' then
      Alcotest.failf "buckets %d and %d are not contiguous" b (b + 1)
  done

let test_hist_quantiles () =
  let s =
    with_telemetry @@ fun () ->
    for i = 1 to 100 do
      Obs.hist_record "lat" (float_of_int i)
    done;
    Obs.snapshot ()
  in
  let h = List.assoc "lat" s.Obs.hists in
  check_true "count" (h.Obs.h_count = 100);
  check_bits "exact min tracked" 1.0 h.Obs.h_min;
  check_bits "exact max tracked" 100.0 h.Obs.h_max;
  let q p = Obs.hist_quantile h p in
  (* the rank-50 sample is 50; its bucket upper bound is within the
     1/sub relative bucket width *)
  check_true "p50 within one bucket of the true median"
    (q 0.5 >= 50.0 && q 0.5 <= 50.0 *. (1.0 +. 2.0 /. float_of_int Obs.Hist.sub));
  check_true "quantiles are monotone"
    (q 0.1 <= q 0.5 && q 0.5 <= q 0.9 && q 0.9 <= q 0.99);
  check_bits "p100 is the exact max" 100.0 (q 1.0);
  check_true "p0 is bounded by the first bucket"
    (q 0.0 >= 1.0 && q 0.0 <= 1.0 *. (1.0 +. 2.0 /. float_of_int Obs.Hist.sub))

(* Extreme quantiles are where the old ceil-based rank overshot: for
   10_000 samples, 0.9999 *. 10000. rounds to 9999.000000000002, whose
   ceiling is rank 10_000 — silently reporting the max instead of the
   rank-9999 sample.  The near-integer snap must keep p999/p9999 inside
   their own buckets. *)
let test_hist_extreme_quantiles () =
  let s =
    with_telemetry @@ fun () ->
    for i = 1 to 10_000 do
      Obs.hist_record "tailq" (float_of_int i)
    done;
    Obs.snapshot ()
  in
  let h = List.assoc "tailq" s.Obs.hists in
  let q p = Obs.hist_quantile h p in
  let rel = 2.0 /. float_of_int Obs.Hist.sub in
  (* rank 0.999 * 10000 = 9990, rank 0.9999 * 10000 = 9999: both must
     resolve below the exact max, within one bucket of the true sample *)
  check_true "p999 within one bucket of rank 9990"
    (q 0.999 >= 9990.0 *. (1.0 -. rel) && q 0.999 <= 9990.0 *. (1.0 +. rel));
  check_true "p9999 within one bucket of rank 9999"
    (q 0.9999 >= 9999.0 *. (1.0 -. rel) && q 0.9999 <= 9999.0 *. (1.0 +. rel));
  check_true "p9999 below the exact max" (q 0.9999 < 10_000.0);
  check_bits "p100 still the exact max" 10_000.0 (q 1.0)

let test_hist_quantile_overflow_clamp () =
  let s =
    with_telemetry @@ fun () ->
    Obs.hist_record "ovf" 1.0;
    Obs.hist_record "ovf" 1e300;
    Obs.hist_record "ovf" Float.infinity;
    Obs.snapshot ()
  in
  let h = List.assoc "ovf" s.Obs.hists in
  (* quantiles landing in the overflow bucket clamp to the tracked max,
     never to a bucket bound beyond it *)
  check_bits "overflow quantile clamps to exact max" Float.infinity
    (Obs.hist_quantile h 0.99);
  check_true "low quantile still finite" (Obs.hist_quantile h 0.1 < 2.0)

let test_hist_single_value () =
  let s =
    with_telemetry @@ fun () ->
    Obs.hist_record "one" 42.0;
    Obs.snapshot ()
  in
  let h = List.assoc "one" s.Obs.hists in
  List.iter
    (fun p ->
      let v = Obs.hist_quantile h p in
      if not (v >= 42.0 *. 0.99 && v <= 42.0 *. 1.01) then
        Alcotest.failf "single-value hist quantile %g gave %g" p v)
    [ 0.0; 0.5; 0.999; 0.9999; 1.0 ];
  check_bits "p100 of single value exact" 42.0 (Obs.hist_quantile h 1.0)

(* The deterministic projection of a histogram — bucket counts, count,
   min, max — must be bit-identical across job counts when the recorded
   values are; h_sum merges in registration order and is exempt, like
   gauges. *)
let hist_with_jobs j =
  with_telemetry @@ fun () ->
  Parallel.with_pool ~jobs:j (fun pool ->
      ignore
        (Parallel.parallel_for_reduce ~label:"hist-probe" pool ~n:1000
           ~init:(fun () -> 0)
           ~body:(fun acc i ->
             Obs.hist_record "probe.value"
               (float_of_int (1 + (i * 7 mod 97)));
             acc + 1)
           ~combine:( + )));
  let s = Obs.snapshot () in
  let h = List.assoc "probe.value" s.Obs.hists in
  (h.Obs.h_count, bits h.Obs.h_min, bits h.Obs.h_max, h.Obs.h_buckets)

let test_hist_merge_invariant () =
  match List.map hist_with_jobs [ 1; 2; 4 ] with
  | [ h1; h2; h4 ] ->
    if h1 <> h2 || h1 <> h4 then
      Alcotest.fail "histogram bucket merge varies with job count";
    let count, _, _, buckets = h1 in
    check_true "all samples recorded" (count = 1000);
    check_true "buckets are sparse and sorted"
      (List.sort compare buckets = buckets && buckets <> [])
  | _ -> assert false

(* ---------- tracks and caps ---------- *)

let test_dropped_tracks_counted () =
  let cap = 1 lsl 16 in
  let s =
    with_telemetry @@ fun () ->
    for i = 1 to cap + 10 do
      Obs.track "flood" (float_of_int i)
    done;
    Obs.snapshot ()
  in
  check_true "tracks stop at the per-domain cap"
    (List.length s.Obs.tracks = cap);
  check_true "excess samples counted as dropped" (s.Obs.dropped_tracks = 10)

(* ---------- tracing never changes results ---------- *)

let test_estimators_bitwise_with_tracing () =
  let _, corr, histogram, ctx = Lazy.force small_ctx in
  let rgcorr = Estimate.correlation ctx in
  let rng = Rng.create ~seed:321 () in
  let placed = Generator.random_placed ~histogram ~n:400 ~rng () in
  let layout = Layout.square ~n:2500 () in
  let w = Layout.width layout and h = Layout.height layout in
  let run_all () =
    let ex = Estimator_exact.estimate ~jobs:2 ~corr ~rgcorr placed in
    let lin = Estimator_linear.estimate ~corr ~rgcorr ~layout () in
    let pol =
      Estimator_integral.polar ~corr ~rgcorr ~n:2500 ~width:w ~height:h ()
    in
    let rect =
      Estimator_integral.rect_2d ~order:24 ~corr ~rgcorr ~n:2500 ~width:w
        ~height:h ()
    in
    [
      ("exact.mean", ex.Estimator_exact.mean);
      ("exact.std", ex.Estimator_exact.std);
      ("linear.mean", lin.Estimator_linear.mean);
      ("linear.std", lin.Estimator_linear.std);
      ("polar.std", pol.Estimator_integral.std);
      ("rect.std", rect.Estimator_integral.std);
    ]
  in
  Obs.set_enabled false;
  let off = run_all () in
  let on = with_telemetry run_all in
  List.iter2
    (fun (name, a) (_, b) -> check_bits ("tracing on vs off: " ^ name) a b)
    off on

(* ---------- exporters ---------- *)

let sample_snapshot () =
  with_telemetry @@ fun () ->
  Obs.span "alpha" (fun () ->
      Obs.count "work.items" 3;
      Obs.gauge_add "busy_s" 1.5;
      Obs.hist_record "lat_s" 0.25;
      Obs.hist_record "lat_s" 0.5;
      Obs.track "depth" 2.0;
      Obs.span "beta" (fun () -> Obs.count "work.items" 4));
  Obs.gauge_max "queue_max" 7.0;
  Obs.snapshot ()

let test_chrome_trace_valid () =
  let s = sample_snapshot () in
  let json = Json.parse (Export.chrome_trace s) in
  let events = Json.arr (Json.get "traceEvents" json) in
  let phase e = Json.str (Json.get "ph" e) in
  let xs = List.filter (fun e -> phase e = "X") events in
  check_true "has complete events" (List.length xs = 2);
  let paths =
    List.map (fun e -> Json.str (Json.get "path" (Json.get "args" e))) xs
  in
  check_true "alpha span present" (List.mem "alpha" paths);
  check_true "beta span nested path" (List.mem "alpha/beta" paths);
  List.iter
    (fun e ->
      check_true "ts is non-negative" (Json.num (Json.get "ts" e) >= 0.0);
      check_true "dur is non-negative" (Json.num (Json.get "dur" e) >= 0.0))
    xs;
  check_true "has metadata events"
    (List.exists (fun e -> phase e = "M") events);
  let counter_events = List.filter (fun e -> phase e = "C") events in
  check_true "has counter events"
    (List.exists
       (fun e -> Json.str (Json.get "name" e) = "work.items")
       counter_events);
  (* every recorded track sample becomes a timeline counter event *)
  let depth_samples =
    List.filter
      (fun e -> Json.str (Json.get "name" e) = "depth")
      counter_events
  in
  check_true "track sample rendered as a C event"
    (List.length depth_samples = 1);
  List.iter
    (fun e ->
      check_true "track C event carries its value"
        (Json.num (Json.get "value" (Json.get "args" e)) = 2.0);
      check_true "track C event is time-stamped"
        (Json.num (Json.get "ts" e) >= 0.0))
    depth_samples;
  (* round-trip: serialize the parsed document and parse it again *)
  check_true "chrome trace round-trips"
    (Json.parse (Json.to_string json) = json)

let test_metrics_json_valid () =
  let s = sample_snapshot () in
  let json = Json.parse (Export.metrics_json s) in
  check_true "schema tag"
    (Json.str (Json.get "schema" json) = "rgleak-metrics/2");
  (* every v1 field keeps its v1 shape *)
  let counters = Json.get "counters" json in
  check_true "counter merged across spans"
    (Json.num (Json.get "work.items" counters) = 7.0);
  let gauges = Json.get "gauges" json in
  check_true "sum gauge exported"
    (Json.num (Json.get "busy_s" gauges) = 1.5);
  check_true "max gauge exported"
    (Json.num (Json.get "queue_max" gauges) = 7.0);
  let spans = Json.arr (Json.get "spans" json) in
  let span_paths = List.map (fun e -> Json.str (Json.get "path" e)) spans in
  check_true "span aggregate paths"
    (List.mem "alpha" span_paths && List.mem "alpha/beta" span_paths);
  (* v2 additions: histogram summaries with sparse buckets, GC totals *)
  let lat = Json.get "lat_s" (Json.get "hists" json) in
  check_true "hist count exported" (Json.num (Json.get "count" lat) = 2.0);
  check_true "hist min exported" (Json.num (Json.get "min" lat) = 0.25);
  check_true "hist max exported" (Json.num (Json.get "max" lat) = 0.5);
  let buckets =
    match Json.get "buckets" lat with
    | Json.Obj kvs -> kvs
    | _ -> Alcotest.fail "buckets is not an object"
  in
  check_true "sparse buckets sum to count"
    (List.fold_left (fun acc (_, c) -> acc + int_of_float (Json.num c)) 0 buckets
    = 2);
  let gc = Json.get "gc" json in
  check_true "gc totals exported" (Json.num (Json.get "minor_words" gc) >= 0.0);
  check_true "metrics round-trips" (Json.parse (Json.to_string json) = json)

(* ---------- collapsed-stack export ---------- *)

let spin ns =
  let t0 = Obs.now_ns () in
  while Int64.sub (Obs.now_ns ()) t0 < ns do
    ()
  done

let test_folded_export () =
  let s =
    with_telemetry @@ fun () ->
    (* spans long enough that self time survives microsecond rounding;
       the root's name exercises frame sanitization *)
    Obs.span "root one" (fun () ->
        spin 400_000L;
        Obs.span "leaf" (fun () -> spin 400_000L));
    Obs.snapshot ()
  in
  let out = Export.folded s in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
  in
  let value_of stack =
    let prefix = stack ^ " " in
    let plen = String.length prefix in
    match
      List.find_opt
        (fun l -> String.length l > plen && String.sub l 0 plen = prefix)
        lines
    with
    | None -> Alcotest.failf "no folded line for stack %S in:\n%s" stack out
    | Some l -> (
      match int_of_string_opt (String.sub l plen (String.length l - plen)) with
      | Some v -> v
      | None -> Alcotest.failf "folded value is not an integer: %S" l)
  in
  (* space in the span name is sanitized to '_' *)
  let root = value_of "root_one" and leaf = value_of "root_one;leaf" in
  (* each frame spun for 400 us of its own; self time excludes the
     child's share, so both frames report roughly their own spin *)
  check_true "root self time covers its own spin" (root >= 300);
  check_true "leaf self time covers its own spin" (leaf >= 300)

let test_pool_metrics_recorded () =
  let s =
    with_telemetry @@ fun () ->
    Parallel.with_pool ~jobs:2 (fun pool ->
        ignore
          (Parallel.parallel_for_reduce ~label:"probe" pool ~n:64
             ~init:(fun () -> 0)
             ~body:(fun acc _ -> acc + 1)
             ~combine:( + )));
    Obs.snapshot ()
  in
  let counter name =
    match List.assoc_opt name s.Obs.counters with Some v -> v | None -> 0
  in
  check_true "chunk counter recorded" (counter "pool.chunks" > 0);
  check_true "task counter recorded" (counter "pool.tasks" > 0);
  check_true "worker busy gauges recorded"
    (List.exists
       (fun (name, v) ->
         String.length name > 12
         && String.sub name 0 12 = "pool.worker."
         && v >= 0.0)
       s.Obs.gauges)

(* Histogram site names are a process-global namespace shared by every
   subsystem that records latencies; two subsystems silently writing
   the same site would merge unrelated distributions.  declare_hist
   makes ownership explicit: first owner wins, re-declaring is
   idempotent, a different owner is a programming error. *)
let test_hist_site_registry () =
  Obs.declare_hist ~owner:"test_obs" "test_obs.unique_site_s";
  (* idempotent for the same owner, including after a reset (the
     registry outlives metric state) *)
  Obs.declare_hist ~owner:"test_obs" "test_obs.unique_site_s";
  Obs.reset ();
  Obs.declare_hist ~owner:"test_obs" "test_obs.unique_site_s";
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Obs.declare_hist ~owner:"impostor" "test_obs.unique_site_s" with
  | () -> Alcotest.fail "cross-owner re-declaration must raise"
  | exception Invalid_argument msg ->
    check_true "collision message names both owners"
      (contains msg "test_obs" && contains msg "impostor"));
  (* declared sites record normally *)
  let s =
    with_telemetry @@ fun () ->
    Obs.hist_record "test_obs.unique_site_s" 0.125;
    Obs.snapshot ()
  in
  check_true "declared site records"
    (List.mem_assoc "test_obs.unique_site_s" s.Obs.hists)

let suite =
  ( "obs",
    [
      case "spans nest and record depth" test_spans_nest;
      case "spans close on exceptions" test_spans_close_on_exception;
      case "disabled telemetry records nothing" test_disabled_is_passthrough;
      case "exact counters identical across jobs 1/2/4"
        test_exact_counters_invariant;
      case "mc counters identical across jobs 1/2/4"
        test_mc_counters_invariant;
      case "characterize counters identical across jobs 1/2/4"
        test_characterize_counters_invariant;
      case "histogram buckets cover and clamp values" test_hist_bucketing;
      case "histogram quantiles bound the true ranks" test_hist_quantiles;
      case "histogram merge identical across jobs 1/2/4"
        test_hist_merge_invariant;
      case "track samples beyond the cap are counted dropped"
        test_dropped_tracks_counted;
      case "estimator results bitwise unchanged by tracing"
        test_estimators_bitwise_with_tracing;
      case "chrome trace is valid JSON with nested spans"
        test_chrome_trace_valid;
      case "metrics JSON matches the snapshot" test_metrics_json_valid;
      case "folded stacks carry sanitized frames and self time"
        test_folded_export;
      case "pool records chunk/task counters and worker gauges"
        test_pool_metrics_recorded;
      case "histogram site registry rejects cross-owner collisions"
        test_hist_site_registry;
    ] )
