(* Tests for netlist logic simulation and sleep-vector search. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let chars =
  lazy
    (let rng = Rng.create ~seed:1234 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:33 ~mc_samples:100
           ~param:Process_param.default_channel_length ~rng:(Rng.split rng)
           cell)
       Library.cells)

(* Hand-built 2-gate netlist: INV fed by a primary input, NAND2 fed by
   the PI and the INV output. *)
let tiny =
  lazy
    (Netlist.create ~name:"tiny" ~num_primary_inputs:1
       [|
         { Netlist.id = 0; cell_index = Library.index_of "INV_X1"; fanin = [| -1 |] };
         {
           Netlist.id = 1;
           cell_index = Library.index_of "NAND2_X1";
           fanin = [| -1; 0 |];
         };
       |])

let test_cost_matches_hand_computation () =
  let chars = Lazy.force chars in
  let sim = Sleep_vector.compile ~chars (Lazy.force tiny) in
  check_close "one control bit" 1.0 (float_of_int (Sleep_vector.num_controls sim));
  let mu cell state = chars.(Library.index_of cell).Characterize.states.(state).Characterize.mu_analytic in
  (* pi = 0: inv state 0; inv output 1; nand state (a=0, b=1) = index 2 *)
  check_rel ~tol:1e-9 "cost at pi=0"
    (mu "INV_X1" 0 +. mu "NAND2_X1" 2)
    (Sleep_vector.cost sim [| false |]);
  (* pi = 1: inv state 1; inv output 0; nand state (a=1, b=0) = index 1 *)
  check_rel ~tol:1e-9 "cost at pi=1"
    (mu "INV_X1" 1 +. mu "NAND2_X1" 1)
    (Sleep_vector.cost sim [| true |])

let test_search_finds_tiny_optimum () =
  let chars = Lazy.force chars in
  let sim = Sleep_vector.compile ~chars (Lazy.force tiny) in
  let rng = Rng.create ~seed:3 () in
  let r = Sleep_vector.search ~restarts:2 ~samples:20 ~rng sim in
  let c0 = Sleep_vector.cost sim [| false |] in
  let c1 = Sleep_vector.cost sim [| true |] in
  check_rel ~tol:1e-9 "search found the exhaustive optimum"
    (Float.min c0 c1) r.Sleep_vector.cost

let test_search_beats_random_mean () =
  let chars = Lazy.force chars in
  let nl = Benchmarks.netlist (Benchmarks.find "c432") in
  let sim = Sleep_vector.compile ~chars nl in
  let rng = Rng.create ~seed:4 () in
  let r = Sleep_vector.search ~restarts:4 ~samples:100 ~rng sim in
  check_true "improvement positive" (r.Sleep_vector.improvement > 0.0);
  check_true "best below random mean" (r.Sleep_vector.cost < r.Sleep_vector.random_mean);
  let mn, mean, mx = Sleep_vector.random_cost_stats sim rng ~samples:100 in
  check_true "random stats ordered" (mn <= mean && mean <= mx);
  check_true "search at or below random minimum"
    (r.Sleep_vector.cost <= mn +. 1e-9)

let test_flops_are_controls () =
  let chars = Lazy.force chars in
  let rng = Rng.create ~seed:6 () in
  let h = Histogram.of_weights [ ("NAND2_X1", 3.0); ("DFF_X1", 2.0) ] in
  let nl = Generator.random_netlist ~histogram:h ~n:50 ~rng () in
  let dffs =
    Array.fold_left
      (fun acc inst ->
        if Library.cells.(inst.Netlist.cell_index).Cell.name = "DFF_X1" then
          acc + 1
        else acc)
      0 nl.Netlist.instances
  in
  let sim = Sleep_vector.compile ~chars nl in
  check_close "controls = PIs + flops"
    (float_of_int (nl.Netlist.num_primary_inputs + dffs))
    (float_of_int (Sleep_vector.num_controls sim))

let test_sram_rejected () =
  let chars = Lazy.force chars in
  let nl =
    Netlist.create ~name:"s" ~num_primary_inputs:1
      [| { Netlist.id = 0; cell_index = Library.index_of "SRAM6T"; fanin = [| -1 |] } |]
  in
  check_true "sram rejected"
    (try
       ignore (Sleep_vector.compile ~chars nl);
       false
     with Invalid_argument _ -> true)

let test_vector_length_checked () =
  let chars = Lazy.force chars in
  let sim = Sleep_vector.compile ~chars (Lazy.force tiny) in
  check_true "wrong vector length rejected"
    (try
       ignore (Sleep_vector.cost sim [| true; false |]);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "sleep_vector",
    [
      case "cost matches hand computation" test_cost_matches_hand_computation;
      case "tiny optimum found" test_search_finds_tiny_optimum;
      slow_case "search beats random" test_search_beats_random_mean;
      case "flop states are controls" test_flops_are_controls;
      case "sram rejected" test_sram_rejected;
      case "vector length check" test_vector_length_checked;
    ] )
