(* Tail estimation: importance-sampling weights, determinism, the
   degenerate-shift guards and the IS-vs-brute-force equivalence gate.

   Everything runs on one shared small validation setup (192 gates,
   spherical(120)) so the O(n^3) preparation happens once. *)

open Rgleak_num
open Rgleak_core
open Rgleak_valid
open Testutil

let setup = lazy (Tail_test.prepare ~seed:42 Tail_test.default_scenario)
let bits = Int64.bits_of_float

let check_bits name expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: expected %h, got %h" name expected actual

(* A zero shift is the identity proposal: every log weight must be
   exactly 0.0 (not just close), and the estimate must degenerate to
   plain Monte Carlo hit counting. *)
let test_zero_shift_unit_weights () =
  let s = Lazy.force setup in
  let shift = Mc_reference.uniform_shift s.Tail_test.mc ~delta:0.0 in
  let w =
    Mc_reference.sample_weighted_stream s.Tail_test.mc ~shift ~seed:7
      ~count:64
  in
  Array.iteri
    (fun i lw ->
      if bits lw <> bits 0.0 then
        Alcotest.failf "zero-shift log weight %d is %h, not +0.0" i lw)
    w.Mc_reference.log_weights;
  let budget = Tail_test.budget_at s ~level:0.9 in
  let r =
    Tail.estimate ~mc:s.Tail_test.mc ~budget ~shift ~seed:7 ~replicas:200 ()
  in
  check_bits "zero-shift p_exceed is the plain MC hit fraction"
    (float_of_int r.Tail.hits /. 200.0)
    r.Tail.p_exceed;
  check_bits "zero-shift mean weight is exactly 1" 1.0 r.Tail.mean_weight

(* E[w] = 1 under the proposal: the calibrated run's mean weight must
   sit near unity — far off means the likelihood ratio is wrong. *)
let test_mean_weight_near_unity () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.99 in
  let r = Tail_test.run ~budget ~replicas:400 s in
  check_in_range "mean weight near 1" ~lo:0.5 ~hi:2.0 r.Tail.mean_weight;
  check_true "p_exceed positive" (r.Tail.p_exceed > 0.0);
  check_true "p_exceed below 1" (r.Tail.p_exceed < 1.0);
  check_true "delta-method CI ordered"
    (r.Tail.ci_delta.Tail.lo <= r.Tail.p_exceed
    && r.Tail.p_exceed <= r.Tail.ci_delta.Tail.hi);
  check_true "wilson CI ordered"
    (r.Tail.ci_wilson.Tail.lo <= r.Tail.ci_wilson.Tail.hi);
  (* the quantile walk is on the same weighted sample: levels ascend,
     leakages ascend with them *)
  let qs = r.Tail.quantiles in
  List.iteri
    (fun i (q : Tail.quantile) ->
      if i > 0 then begin
        let prev = List.nth qs (i - 1) in
        check_true "quantile levels ascend" (q.Tail.level > prev.Tail.level);
        check_true "quantile values ascend" (q.Tail.value >= prev.Tail.value)
      end)
    qs

(* The calibration targets the proposal median at the budget: the hit
   rate must land in a broad band around 1/2 — the whole point of the
   shift is that exceedances stop being rare under the proposal. *)
let test_calibration_hit_rate () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.999 in
  let r = Tail_test.run ~budget ~replicas:400 s in
  check_in_range "calibrated hit rate near 1/2" ~lo:0.2 ~hi:0.8
    r.Tail.hit_rate;
  check_true "shift pushes toward shorter channels" (r.Tail.delta < 0.0)

(* Bit-identical across --jobs: the replica-indexed streams and the
   sequential reduction must make every field reproduce exactly. *)
let test_jobs_determinism () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.99 in
  let runs =
    List.map (fun jobs -> Tail_test.run ~jobs ~budget ~replicas:300 s) [ 1; 2; 4 ]
  in
  match runs with
  | r1 :: rest ->
    List.iteri
      (fun i r ->
        let tag = Printf.sprintf "jobs run %d" (i + 2) in
        if bits r.Tail.p_exceed <> bits r1.Tail.p_exceed then
          Alcotest.failf "%s: p_exceed differs" tag;
        if bits r.Tail.se <> bits r1.Tail.se then
          Alcotest.failf "%s: se differs" tag;
        if bits r.Tail.ess <> bits r1.Tail.ess then
          Alcotest.failf "%s: ess differs" tag;
        if bits r.Tail.max_weight <> bits r1.Tail.max_weight then
          Alcotest.failf "%s: max_weight differs" tag;
        if r.Tail.hits <> r1.Tail.hits then Alcotest.failf "%s: hits differ" tag;
        List.iter2
          (fun (a : Tail.quantile) (b : Tail.quantile) ->
            if bits a.Tail.value <> bits b.Tail.value then
              Alcotest.failf "%s: quantile %g differs" tag a.Tail.level)
          r.Tail.quantiles r1.Tail.quantiles)
      rest
  | [] -> assert false

(* A pathological shift must surface as a typed numeric diagnostic at
   site "tail" (ESS collapse), never as NaN in the report. *)
let test_degenerate_shift_guard () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.99 in
  match Tail_test.run ~shift_delta:(-28.0) ~budget ~replicas:100 s with
  | r -> Alcotest.failf "degenerate shift produced p=%g" r.Tail.p_exceed
  | exception Guard.Error (Guard.Numeric { site = "tail"; _ }) -> ()

let test_degenerate_shift_result () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.99 in
  let shift = Mc_reference.uniform_shift s.Tail_test.mc ~delta:(-28.0) in
  match
    Tail.estimate_result ~mc:s.Tail_test.mc ~budget ~shift ~seed:1
      ~replicas:100 ()
  with
  | Ok r -> Alcotest.failf "degenerate shift produced p=%g" r.Tail.p_exceed
  | Error (Guard.Numeric { site = "tail"; detail }) ->
    check_true "diagnostic names the collapse"
      (String.length detail > 0)
  | Error d -> Alcotest.failf "wrong diagnostic class: %s" (Guard.to_string d)

let test_invalid_arguments () =
  let s = Lazy.force setup in
  let shift = Mc_reference.uniform_shift s.Tail_test.mc ~delta:(-5.0) in
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: accepted" name
    | exception Guard.Error (Guard.Invalid_input _) -> ()
  in
  expect_invalid "one replica" (fun () ->
      Tail.estimate ~mc:s.Tail_test.mc ~budget:500.0 ~shift ~seed:1
        ~replicas:1 ());
  expect_invalid "negative budget" (fun () ->
      Tail.estimate ~mc:s.Tail_test.mc ~budget:(-1.0) ~shift ~seed:1
        ~replicas:10 ());
  expect_invalid "nan budget" (fun () ->
      Tail.estimate ~mc:s.Tail_test.mc ~budget:Float.nan ~shift ~seed:1
        ~replicas:10 ());
  expect_invalid "bad quantile level" (fun () ->
      Tail.estimate ~quantile_levels:[ 1.5 ] ~mc:s.Tail_test.mc ~budget:500.0
        ~shift ~seed:1 ~replicas:10 ())

(* The acceptance gate: the IS estimate with n replicas lands inside
   the Wilson 95% CI of a brute-force run with 10n replicas. *)
let test_equivalence_gate () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.99 in
  let eq =
    Tail_test.equivalence ~budget ~bf_replicas:2000 ~is_replicas:200 s
  in
  check_true "10x asymmetry recorded"
    (eq.Tail_test.eq_bf_replicas = 10 * eq.Tail_test.eq_is_replicas);
  if not eq.Tail_test.eq_pass then
    Alcotest.failf
      "IS %.4g outside brute-force Wilson CI [%.4g, %.4g] (bf p %.4g)"
      eq.Tail_test.eq_is_p eq.Tail_test.eq_bf_lo eq.Tail_test.eq_bf_hi
      eq.Tail_test.eq_bf_p

let test_equivalence_asymmetry_guard () =
  let s = Lazy.force setup in
  match Tail_test.equivalence ~budget:500.0 ~bf_replicas:100 ~is_replicas:50 s with
  | _ -> Alcotest.fail "accepted a 2x replica asymmetry"
  | exception Invalid_argument _ -> ()

(* The analytic lognormal-sum cross-check at a calibrated budget. *)
let test_analytic_gate () =
  let s = Lazy.force setup in
  let budget = Tail_test.budget_at s ~level:0.99 in
  let a = Tail_test.analytic ~budget ~replicas:400 s in
  if not a.Tail_test.an_pass then
    Alcotest.failf "IS %.4g vs analytic %.4g: log10 ratio %.3f exceeds %.2f"
      a.Tail_test.an_is_p a.Tail_test.an_cs_p a.Tail_test.an_log10_ratio
      Tail_test.analytic_tolerance_log10

let suite =
  ( "tail",
    [
      case "zero shift has exactly unit weights" test_zero_shift_unit_weights;
      case "mean weight near unity" test_mean_weight_near_unity;
      case "calibration puts the budget near the proposal median"
        test_calibration_hit_rate;
      case "bit-identical across jobs 1/2/4" test_jobs_determinism;
      case "degenerate shift raises a typed tail guard"
        test_degenerate_shift_guard;
      case "degenerate shift folds into a diagnostic result"
        test_degenerate_shift_result;
      case "invalid arguments rejected" test_invalid_arguments;
      case "IS matches brute force with 10x fewer replicas"
        test_equivalence_gate;
      case "equivalence gate insists on the asymmetry"
        test_equivalence_asymmetry_guard;
      case "IS matches the lognormal-sum analytic tail" test_analytic_gate;
    ] )
