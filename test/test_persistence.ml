(* Tests for characterization persistence (Char_io) and the what-if
   sensitivity report. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length

let small_chars =
  lazy
    (let rng = Rng.create ~seed:121 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:33 ~mc_samples:200 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

(* ---- char_io ---- *)

let states_equal (a : Characterize.state_char) (b : Characterize.state_char) =
  a.Characterize.state_index = b.Characterize.state_index
  && Float.abs (a.Characterize.mu_analytic -. b.Characterize.mu_analytic) < 1e-12
  && Float.abs (a.Characterize.sigma_analytic -. b.Characterize.sigma_analytic) < 1e-12
  && Float.abs (a.Characterize.mu_mc -. b.Characterize.mu_mc) < 1e-12
  && Float.abs (a.Characterize.fit.Mgf.a -. b.Characterize.fit.Mgf.a) < 1e-12
  && Float.abs (a.Characterize.fit.Mgf.b -. b.Characterize.fit.Mgf.b) < 1e-15
  && Float.abs (a.Characterize.fit.Mgf.c -. b.Characterize.fit.Mgf.c) < 1e-18
  && Interp.size a.Characterize.table = Interp.size b.Characterize.table

let test_string_roundtrip () =
  let chars = Lazy.force small_chars in
  let restored = Char_io.of_string (Char_io.to_string chars) in
  check_close "cell count preserved"
    (float_of_int (Array.length chars))
    (float_of_int (Array.length restored));
  Array.iteri
    (fun i (ch : Characterize.cell_char) ->
      let rh = restored.(i) in
      check_true "cell identity"
        (ch.Characterize.cell.Cell.name = rh.Characterize.cell.Cell.name);
      Array.iteri
        (fun s sc ->
          check_true
            (Printf.sprintf "%s state %d roundtrips"
               ch.Characterize.cell.Cell.name s)
            (states_equal sc rh.Characterize.states.(s)))
        ch.Characterize.states)
    chars

let test_tables_roundtrip_numerically () =
  let chars = Lazy.force small_chars in
  let restored = Char_io.of_string (Char_io.to_string chars) in
  let sc = chars.(Library.index_of "NAND2_X1").Characterize.states.(0) in
  let rc = restored.(Library.index_of "NAND2_X1").Characterize.states.(0) in
  List.iter
    (fun l ->
      check_close ~tol:1e-12
        (Printf.sprintf "table value at %g" l)
        (Characterize.leakage_at sc l)
        (Characterize.leakage_at rc l))
    [ 75.0; 82.5; 90.0; 97.5; 105.0 ]

let test_param_roundtrip () =
  let chars = Lazy.force small_chars in
  let restored = Char_io.of_string (Char_io.to_string chars) in
  let p = restored.(0).Characterize.param in
  check_close ~tol:1e-12 "nominal" 90.0 p.Process_param.nominal;
  check_close ~tol:1e-12 "sigma split" 3.0 p.Process_param.sigma_d2d

let test_file_roundtrip () =
  let chars = Lazy.force small_chars in
  let path = Filename.temp_file "rgleak_char" ".txt" in
  Char_io.save ~path chars;
  let restored = Char_io.load ~path in
  Sys.remove path;
  check_close "file roundtrip cell count"
    (float_of_int (Array.length chars))
    (float_of_int (Array.length restored))

let test_format_errors () =
  let expect_error text =
    try
      ignore (Char_io.of_string text);
      false
    with Char_io.Format_error _ -> true
  in
  check_true "empty input rejected" (expect_error "");
  check_true "bad magic rejected" (expect_error "hello 1\n");
  check_true "bad version rejected"
    (expect_error "rgleak-characterization 99\nparam L 90 3 3\nend\n");
  check_true "unknown cell rejected"
    (expect_error
       "rgleak-characterization 1\nparam L 90 3 3\ncell NOPE_X7 2\nend\n");
  check_true "truncated input rejected"
    (expect_error "rgleak-characterization 1\nparam L 90 3 3\ncell INV_X1 2\n")

let test_loaded_chars_estimate_identically () =
  let chars = Lazy.force small_chars in
  let restored = Char_io.of_string (Char_io.to_string chars) in
  let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param in
  let hist = Histogram.of_weights [ ("INV_X1", 2.0); ("NAND2_X1", 3.0) ] in
  let spec = { Estimate.histogram = hist; n = 400; width = 80.0; height = 80.0 } in
  let a = Estimate.early ~p:0.5 ~chars ~corr spec in
  let b = Estimate.early ~p:0.5 ~chars:restored ~corr spec in
  check_close ~tol:1e-9 "identical mean" a.Estimate.mean b.Estimate.mean;
  check_close ~tol:1e-9 "identical std" a.Estimate.std b.Estimate.std

(* ---- sensitivity ---- *)

let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let spec =
  lazy
    {
      Estimate.histogram =
        Histogram.of_weights
          [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ];
      n = 2500;
      width = 200.0;
      height = 200.0;
    }

let report =
  lazy (Sensitivity.analyze ~chars:(Lazy.force small_chars) ~corr ~p:0.5 (Lazy.force spec))

let test_report_shape () =
  let r = Lazy.force report in
  check_close "one entry per support cell" 4.0
    (float_of_int (Array.length r.Sensitivity.cells));
  check_true "positive base stats" (r.Sensitivity.mean > 0.0 && r.Sensitivity.std > 0.0);
  let shares =
    Array.fold_left
      (fun acc c -> acc +. c.Sensitivity.mean_share)
      0.0 r.Sensitivity.cells
  in
  check_rel ~tol:1e-6 "mean shares sum to 1" 1.0 shares

let test_mean_gradient_identity () =
  (* the finite-difference mean gradient must match n (mu_i - mu_bar) *)
  let r = Lazy.force report in
  let chars = Lazy.force small_chars in
  let s = Lazy.force spec in
  let rg =
    Random_gate.create ~chars ~histogram:s.Estimate.histogram ~p:0.5 ()
  in
  let nf = float_of_int s.Estimate.n in
  Array.iter
    (fun c ->
      let analytic =
        nf *. (Random_gate.mean_of_cell rg c.Sensitivity.cell_index -. rg.Random_gate.mu)
      in
      check_rel ~tol:0.02
        (Printf.sprintf "mean gradient for %s" c.Sensitivity.cell_name)
        analytic c.Sensitivity.d_mean_d_alpha)
    r.Sensitivity.cells

let test_gradient_signs () =
  (* DFF leaks far more than NAND2: shifting mix toward DFF must raise
     the mean, toward NAND2 must lower it *)
  let r = Lazy.force report in
  let find name =
    match
      Array.find_opt (fun c -> c.Sensitivity.cell_name = name) r.Sensitivity.cells
    with
    | Some c -> c
    | None -> Alcotest.failf "cell %s missing from report" name
  in
  check_true "toward DFF raises mean" ((find "DFF_X1").Sensitivity.d_mean_d_alpha > 0.0);
  check_true "toward NAND2 lowers mean"
    ((find "NAND2_X1").Sensitivity.d_mean_d_alpha < 0.0)

let test_die_upsize_reduces_sigma () =
  let r = Lazy.force report in
  check_in_range "upsizing decorrelates" ~lo:0.5 ~hi:1.0
    r.Sensitivity.die_upsize_std_ratio

let test_growth_sensitivities () =
  let r = Lazy.force report in
  check_true "adding gates adds mean" (r.Sensitivity.d_mean_d_n > 0.0);
  check_true "adding gates adds spread" (r.Sensitivity.d_std_d_n > 0.0)

let test_epsilon_validation () =
  check_true "bad epsilon rejected"
    (try
       ignore
         (Sensitivity.analyze ~epsilon:0.9 ~chars:(Lazy.force small_chars)
            ~corr ~p:0.5 (Lazy.force spec));
       false
     with Invalid_argument _ -> true)

let suite =
  ( "persistence",
    [
      case "char_io string roundtrip" test_string_roundtrip;
      case "char_io tables numeric" test_tables_roundtrip_numerically;
      case "char_io param" test_param_roundtrip;
      case "char_io file roundtrip" test_file_roundtrip;
      case "char_io format errors" test_format_errors;
      case "loaded characterization estimates identically"
        test_loaded_chars_estimate_identically;
      slow_case "sensitivity report shape" test_report_shape;
      slow_case "mean gradient identity" test_mean_gradient_identity;
      slow_case "gradient signs" test_gradient_signs;
      slow_case "die upsizing" test_die_upsize_reduces_sigma;
      slow_case "growth sensitivities" test_growth_sensitivities;
      case "epsilon validation" test_epsilon_validation;
    ] )
