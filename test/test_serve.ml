(* The serve daemon's pure parts: the rgleak-serve/1 frame codec
   (incremental decode over partial reads, hard rejection of malformed
   or oversized headers) and the round-robin admission scheduler
   (per-client FIFO, cross-client fairness, vanished-client cleanup).
   The daemon's socket behavior is exercised end-to-end in test_cli. *)

module Protocol = Rgleak_serve.Protocol
module Sched = Rgleak_serve.Serve.Sched

(* --- protocol codec ------------------------------------------------- *)

let test_request_round_trip () =
  List.iter
    (fun (op, body) ->
      let enc = Protocol.encode_request { Protocol.op; body } in
      match Protocol.decode_request enc with
      | Protocol.Got (req, consumed) ->
        Alcotest.(check bool) "op round-trips" true (req.Protocol.op = op);
        Alcotest.(check string) "body round-trips" body req.Protocol.body;
        Alcotest.(check int) "whole frame consumed" (String.length enc)
          consumed
      | Protocol.Need_more -> Alcotest.fail "complete frame decoded Need_more"
      | Protocol.Bad reason -> Alcotest.failf "complete frame decoded Bad: %s" reason)
    [
      (Protocol.Ping, "");
      (Protocol.Stats, "");
      (Protocol.Shutdown, "");
      (Protocol.Estimate, "{\"n\": 100}\n{\"n\": 200}\n");
      (* Framing is length-based: payload bytes are opaque, including
         newlines and the magic itself. *)
      (Protocol.Estimate, "rgleak-serve/1 ping 0\n\x00\xff");
    ]

let test_response_round_trip () =
  List.iter
    (fun (status, code, payload) ->
      let enc = Protocol.encode_response { Protocol.status; code; payload } in
      match Protocol.decode_response enc with
      | Protocol.Got (resp, consumed) ->
        Alcotest.(check bool) "status round-trips" true
          (resp.Protocol.status = status);
        Alcotest.(check int) "code round-trips" code resp.Protocol.code;
        Alcotest.(check string) "payload round-trips" payload
          resp.Protocol.payload;
        Alcotest.(check int) "whole frame consumed" (String.length enc)
          consumed
      | _ -> Alcotest.fail "complete response failed to decode")
    [
      (Protocol.Ok, 0, "");
      (Protocol.Ok, 3, "{\"id\": \"a\"}\n");
      (Protocol.Error, 5, "server overloaded\n");
    ]

let test_partial_frames_need_more () =
  let enc =
    Protocol.encode_request
      { Protocol.op = Protocol.Estimate; body = "{\"n\": 100}\n" }
  in
  for i = 0 to String.length enc - 1 do
    match Protocol.decode_request (String.sub enc 0 i) with
    | Protocol.Need_more -> ()
    | Protocol.Got _ -> Alcotest.failf "prefix %d decoded a full frame" i
    | Protocol.Bad reason -> Alcotest.failf "prefix %d decoded Bad: %s" i reason
  done

let test_trailing_bytes_left () =
  let a = Protocol.encode_request { Protocol.op = Protocol.Ping; body = "" } in
  let b =
    Protocol.encode_request { Protocol.op = Protocol.Estimate; body = "xyz" }
  in
  match Protocol.decode_request (a ^ b) with
  | Protocol.Got (req, consumed) ->
    Alcotest.(check bool) "first frame first" true
      (req.Protocol.op = Protocol.Ping);
    Alcotest.(check int) "consumed exactly the first frame" (String.length a)
      consumed
  | _ -> Alcotest.fail "concatenated frames failed to decode"

let check_bad name buf =
  match Protocol.decode_request buf with
  | Protocol.Bad _ -> ()
  | Protocol.Got _ -> Alcotest.failf "%s: decoded a frame" name
  | Protocol.Need_more -> Alcotest.failf "%s: Need_more instead of Bad" name

let test_malformed_frames_rejected () =
  check_bad "wrong magic" "rgleak-serve/2 ping 0\n";
  check_bad "unknown op" "rgleak-serve/1 frobnicate 0\n";
  check_bad "missing length" "rgleak-serve/1 ping\n";
  check_bad "non-numeric length" "rgleak-serve/1 ping many\n";
  check_bad "negative length" "rgleak-serve/1 ping -1\n";
  check_bad "oversized length"
    (Printf.sprintf "rgleak-serve/1 estimate %d\n" (Protocol.max_payload + 1));
  (* Garbage with no newline cannot be a slow header forever. *)
  check_bad "endless junk" (String.make 200 'x');
  match Protocol.decode_response "rgleak-serve/1 maybe 0 0\n" with
  | Protocol.Bad _ -> ()
  | _ -> Alcotest.fail "bad response status decoded"

(* --- admission scheduler -------------------------------------------- *)

let drain sched =
  let rec go acc =
    match Sched.next sched with
    | None -> List.rev acc
    | Some (_, x) -> go (x :: acc)
  in
  go []

let test_sched_round_robin () =
  let s = Sched.create () in
  (* Client 1 streams three requests before clients 2 and 3 arrive:
     fairness serves the newcomers before client 1's backlog. *)
  Sched.admit s ~client:1 "a1";
  Sched.admit s ~client:1 "a2";
  Sched.admit s ~client:1 "a3";
  Sched.admit s ~client:2 "b1";
  Sched.admit s ~client:3 "c1";
  Alcotest.(check int) "depth counts all" 5 (Sched.depth s);
  Alcotest.(check (list string))
    "round-robin across clients"
    [ "a1"; "b1"; "c1"; "a2"; "a3" ]
    (drain s);
  Alcotest.(check int) "drained" 0 (Sched.depth s)

let test_sched_fifo_per_client () =
  let s = Sched.create () in
  List.iter (fun x -> Sched.admit s ~client:7 x) [ "1"; "2"; "3"; "4" ];
  Alcotest.(check (list string))
    "single client stays FIFO" [ "1"; "2"; "3"; "4" ] (drain s)

let test_sched_forget () =
  let s = Sched.create () in
  Sched.admit s ~client:1 "a1";
  Sched.admit s ~client:2 "b1";
  Sched.admit s ~client:1 "a2";
  Sched.forget s ~client:1;
  Alcotest.(check int) "forgotten items leave the depth" 1 (Sched.depth s);
  Alcotest.(check (list string)) "only the survivor served" [ "b1" ] (drain s);
  (* Readmission after forget works (stale ring entries are skipped). *)
  Sched.admit s ~client:1 "a3";
  Alcotest.(check (list string)) "client can come back" [ "a3" ] (drain s)

let test_sched_interleaved_admit_next () =
  let s = Sched.create () in
  Sched.admit s ~client:1 "a1";
  Sched.admit s ~client:2 "b1";
  (match Sched.next s with
  | Some (1, "a1") -> ()
  | _ -> Alcotest.fail "expected a1 first");
  Sched.admit s ~client:1 "a2";
  (* Client 2 has waited longer: it goes before client 1's new item. *)
  Alcotest.(check (list string)) "waiting client first" [ "b1"; "a2" ] (drain s)

let suite =
  ( "serve",
    [
      Alcotest.test_case "request frames round-trip" `Quick
        test_request_round_trip;
      Alcotest.test_case "response frames round-trip" `Quick
        test_response_round_trip;
      Alcotest.test_case "every partial frame is Need_more" `Quick
        test_partial_frames_need_more;
      Alcotest.test_case "decode consumes exactly one frame" `Quick
        test_trailing_bytes_left;
      Alcotest.test_case "malformed frames are rejected" `Quick
        test_malformed_frames_rejected;
      Alcotest.test_case "scheduler is round-robin across clients" `Quick
        test_sched_round_robin;
      Alcotest.test_case "scheduler is FIFO within a client" `Quick
        test_sched_fifo_per_client;
      Alcotest.test_case "forget drops a client's queue" `Quick
        test_sched_forget;
      Alcotest.test_case "late admissions respect waiting clients" `Quick
        test_sched_interleaved_admit_next;
    ] )
