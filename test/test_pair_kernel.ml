(* The flat pair kernel's contract is threefold: the C stub (scalar or
   SIMD) is bit-identical to the pure-OCaml lane-contract mirror, the
   binned covariance tables reproduce the direct per-pair evaluation,
   and the whole exact estimator built on top is allocation-free in
   its inner loop and bit-stable across runs and job counts. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let bits = Int64.bits_of_float

let check_bits name expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: %.17g and %.17g differ bitwise" name expected actual

(* --- synthetic buffers (kernel-level tests) ----------------------- *)

(* Random staged geometry, built exactly the way the estimator stages a
   placed design: cells counting-sorted by type, packed tables indexed
   through a dense nu x nu base map. *)
let make_buffers ~seed ~n ~nu ~distance_points =
  let rng = Rng.create ~seed () in
  let dmax = (sqrt 2.0 *. 100.0) +. 1e-9 in
  let dstep = dmax /. float_of_int (distance_points - 1) in
  let cell_ty = Array.init n (fun _ -> Rng.int rng nu) in
  let px = Array.init n (fun _ -> Rng.float rng 100.0) in
  let py = Array.init n (fun _ -> Rng.float rng 100.0) in
  let seg = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (nu + 1) in
  let next = Array.make nu 0 in
  Array.iter (fun t -> next.(t) <- next.(t) + 1) cell_ty;
  let start = ref 0 in
  Bigarray.Array1.set seg 0 0;
  for t = 0 to nu - 1 do
    let c = next.(t) in
    next.(t) <- !start;
    start := !start + c;
    Bigarray.Array1.set seg (t + 1) !start
  done;
  let xs = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let ys = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let ty = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    let t = cell_ty.(i) in
    let pos = next.(t) in
    next.(t) <- pos + 1;
    Bigarray.Array1.set xs pos px.(i);
    Bigarray.Array1.set ys pos py.(i);
    Bigarray.Array1.set ty pos t
  done;
  let tri = Parallel.tri_size nu in
  let cov =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
      (tri * distance_points)
  in
  for i = 0 to (tri * distance_points) - 1 do
    Bigarray.Array1.set cov i (Rng.float rng 2.0 -. 1.0)
  done;
  let base = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (nu * nu) in
  for idx = 0 to (nu * nu) - 1 do
    let ti = idx / nu and tj = idx mod nu in
    let i = Stdlib.min ti tj and j = Stdlib.max ti tj in
    Bigarray.Array1.set base idx
      (Parallel.tri_index ~n:nu ~i ~j * distance_points)
  done;
  {
    Pair_kernel.xs;
    ys;
    ty;
    seg;
    base;
    cov;
    nu;
    inv_dstep = 1.0 /. dstep;
    kmax = distance_points - 2;
  }

let test_stub_matches_ocaml_mirror =
  qcheck ~count:60 "C scalar kernel is bitwise the OCaml lane mirror"
    QCheck2.Gen.(
      quad (int_range 2 120) (int_range 1 5) (int_range 4 32) (int_range 0 1000))
    (fun (n, nu, distance_points, seed) ->
      let b = make_buffers ~seed ~n ~nu ~distance_points in
      let lo = seed mod n and span = 1 + (seed mod 17) in
      let hi = Stdlib.min n (lo + span) in
      bits (Pair_kernel.sum ~isa:Scalar b ~lo:0 ~hi:n)
      = bits (Pair_kernel.sum_ocaml b ~lo:0 ~hi:n)
      && bits (Pair_kernel.sum ~isa:Scalar b ~lo ~hi)
         = bits (Pair_kernel.sum_ocaml b ~lo ~hi))

let test_simd_matches_scalar () =
  (* Auto plus every ISA the host supports must reproduce the scalar
     bits exactly (fixed 8-lane summation order, no FMA contraction). *)
  let b = make_buffers ~seed:7 ~n:1500 ~nu:5 ~distance_points:64 in
  let reference = Pair_kernel.sum ~isa:Scalar b ~lo:0 ~hi:1500 in
  List.iter
    (fun isa ->
      if Pair_kernel.available isa then
        check_bits
          (Printf.sprintf "%s vs scalar" (Pair_kernel.isa_name isa))
          reference
          (Pair_kernel.sum ~isa b ~lo:0 ~hi:1500))
    [ Pair_kernel.Auto; Pair_kernel.Avx2; Pair_kernel.Avx512 ];
  (* Tiled subranges sum to the full range bitwise only when the tile
     boundaries match; here just confirm each subrange is ISA-stable. *)
  List.iter
    (fun (lo, hi) ->
      check_bits
        (Printf.sprintf "auto vs scalar rows [%d, %d)" lo hi)
        (Pair_kernel.sum ~isa:Scalar b ~lo ~hi)
        (Pair_kernel.sum ~isa:Auto b ~lo ~hi))
    [ (0, 1); (17, 63); (256, 512); (1499, 1500) ]

let test_validate_rejects () =
  let b = make_buffers ~seed:3 ~n:50 ~nu:3 ~distance_points:8 in
  let expect_invalid name f =
    match f () with
    | (_ : float) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "bad row range" (fun () ->
      Pair_kernel.sum b ~lo:0 ~hi:51);
  expect_invalid "negative lo" (fun () -> Pair_kernel.sum b ~lo:(-1) ~hi:10);
  expect_invalid "seg not ending at n" (fun () ->
      let seg = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 4 in
      Bigarray.Array1.fill seg 0;
      Pair_kernel.sum { b with Pair_kernel.seg } ~lo:0 ~hi:50);
  expect_invalid "kmax beyond table" (fun () ->
      Pair_kernel.sum
        { b with Pair_kernel.kmax = Bigarray.Array1.dim b.Pair_kernel.cov }
        ~lo:0 ~hi:50)

(* --- binned covariance tables (estimator staging) ----------------- *)

let param = Process_param.default_channel_length
let corr = lazy (Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param)

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ])

let fixture =
  lazy
    (let chars = Characterize.default_library () in
     let corr = Lazy.force corr in
     let ctx =
       Estimate.context ~p:0.5 ~chars ~corr ~histogram:(Lazy.force hist) ()
     in
     let rng = Rng.create ~seed:77 () in
     let placed =
       Generator.random_placed ~histogram:(Lazy.force hist) ~n:600 ~rng ()
     in
     (corr, Estimate.correlation ctx, placed))

let used_of placed =
  Array.of_list
    (List.sort_uniq compare
       (Array.to_list
          (Array.map
             (fun inst -> inst.Netlist.cell_index)
             placed.Placer.netlist.Netlist.instances)))

let test_binned_tables_match_direct () =
  let corr, rgcorr, placed = Lazy.force fixture in
  let used = used_of placed in
  let nu = Array.length used in
  let distance_points = 512 in
  let dstep = 120.0 /. float_of_int (distance_points - 1) in
  let cov =
    Rg_correlation.binned_pair_tables rgcorr ~used ~distance_points ~dstep
      ~rho_of_d:(fun d -> Corr_model.total corr d)
  in
  (* Grid nodes are exact: the table holds the direct evaluation. *)
  for ti = 0 to nu - 1 do
    for tj = ti to nu - 1 do
      let base = Parallel.tri_index ~n:nu ~i:ti ~j:tj * distance_points in
      List.iter
        (fun k ->
          let d = float_of_int k *. dstep in
          check_bits
            (Printf.sprintf "node (%d,%d) k=%d" ti tj k)
            (Rg_correlation.cell_pair_covariance rgcorr ~ci:used.(ti)
               ~cj:used.(tj)
               ~rho_l:(Corr_model.total corr d))
            (Bigarray.Array1.get cov (base + k)))
        [ 0; 1; distance_points / 2; distance_points - 1 ]
    done
  done;
  (* Off-node distances: linear interpolation tracks the direct value
     to bin tolerance.  The scale is the d = 0 covariance (the largest
     entry); at 512 bins over a smooth spherical model the interp
     error is far below 1e-3 of that scale. *)
  let scale =
    Float.abs
      (Rg_correlation.cell_pair_covariance rgcorr ~ci:used.(0) ~cj:used.(0)
         ~rho_l:(Corr_model.total corr 0.0))
  in
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 200 do
    let d = Rng.float rng 120.0 in
    let ti = Rng.int rng nu and tj = Rng.int rng nu in
    let i = Stdlib.min ti tj and j = Stdlib.max ti tj in
    let base = Parallel.tri_index ~n:nu ~i ~j * distance_points in
    let pos = d /. dstep in
    let k = int_of_float pos in
    let k = Stdlib.min k (distance_points - 2) in
    let t0 = Bigarray.Array1.get cov (base + k) in
    let t1 = Bigarray.Array1.get cov (base + k + 1) in
    let interp = t0 +. ((pos -. float_of_int k) *. (t1 -. t0)) in
    let direct =
      Rg_correlation.cell_pair_covariance rgcorr ~ci:used.(i) ~cj:used.(j)
        ~rho_l:(Corr_model.total corr d)
    in
    check_close ~tol:(1e-3 *. scale)
      (Printf.sprintf "interp d=%.3f types (%d,%d)" d i j)
      direct interp
  done

(* --- whole-estimator determinism ---------------------------------- *)

let test_estimate_cold_warm_and_jobs () =
  let corr, rgcorr, placed = Lazy.force fixture in
  let cold = Estimator_exact.estimate ~jobs:1 ~corr ~rgcorr placed in
  let warm = Estimator_exact.estimate ~jobs:1 ~corr ~rgcorr placed in
  check_bits "cold vs warm mean" cold.Estimator_exact.mean
    warm.Estimator_exact.mean;
  check_bits "cold vs warm variance" cold.Estimator_exact.variance
    warm.Estimator_exact.variance;
  List.iter
    (fun jobs ->
      let r = Estimator_exact.estimate ~jobs ~corr ~rgcorr placed in
      check_bits
        (Printf.sprintf "jobs=1 vs jobs=%d variance" jobs)
        cold.Estimator_exact.variance r.Estimator_exact.variance;
      check_bits
        (Printf.sprintf "jobs=1 vs jobs=%d std" jobs)
        cold.Estimator_exact.std r.Estimator_exact.std)
    [ 2; 4 ]

let test_estimate_matches_reference () =
  (* The historical row-at-a-time oracle: same staging, same tables,
     same clamp; differs only by summation order, so the means are
     bitwise equal and the variances agree to reassociation level. *)
  let corr, rgcorr, placed = Lazy.force fixture in
  let flat = Estimator_exact.estimate ~jobs:1 ~corr ~rgcorr placed in
  let oracle = Estimator_exact.estimate_reference ~jobs:1 ~corr ~rgcorr placed in
  check_bits "mean vs reference" oracle.Estimator_exact.mean
    flat.Estimator_exact.mean;
  check_rel ~tol:1e-12 "variance vs reference" oracle.Estimator_exact.variance
    flat.Estimator_exact.variance;
  check_rel ~tol:1e-12 "std vs reference" oracle.Estimator_exact.std
    flat.Estimator_exact.std

(* --- allocation discipline ---------------------------------------- *)

let minor_words_of f =
  ignore (f ());
  (* warm: lazy tables, pool setup *)
  let w0 = Gc.minor_words () in
  ignore (f ());
  Gc.minor_words () -. w0

let test_kernel_allocation_free () =
  let b = make_buffers ~seed:11 ~n:2000 ~nu:5 ~distance_points:64 in
  let dw = minor_words_of (fun () -> Pair_kernel.sum b ~lo:0 ~hi:2000) in
  if dw > 256.0 then
    Alcotest.failf "kernel call allocated %.0f minor words (want ~0)" dw

let test_estimate_allocation_budget () =
  (* Whole estimate at n = 2000 on one domain with telemetry off: only
     the O(n + nu^2) staging may allocate; amortized over the n(n-1)/2
     pairs that is well under 0.05 minor words per pair (the bench-gate
     budget).  Any boxed value reintroduced into the pair loop would
     blow this up by orders of magnitude. *)
  let corr, rgcorr, _ = Lazy.force fixture in
  let rng = Rng.create ~seed:99 () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist) ~n:2000 ~rng ()
  in
  let enabled_before = Rgleak_obs.Obs.enabled () in
  Rgleak_obs.Obs.set_enabled false;
  let dw =
    minor_words_of (fun () ->
        Estimator_exact.estimate ~jobs:1 ~corr ~rgcorr placed)
  in
  Rgleak_obs.Obs.set_enabled enabled_before;
  let pairs = float_of_int (2000 * 1999 / 2) in
  let per_pair = dw /. pairs in
  if per_pair > 0.05 then
    Alcotest.failf "estimate allocated %.4f minor words/pair (budget 0.05)"
      per_pair

let test_mc_allocation_budget () =
  (* Streaming MC on one domain: per-sample allocation is bounded by
     the per-draw transients (~16 words per gate), far below the
     64 words/gate bench-gate budget; the DLS scratch amortizes the
     per-replica arrays away. *)
  let corr, _, _ = Lazy.force fixture in
  let chars = Characterize.default_library () in
  let rng = Rng.create ~seed:41 () in
  let placed =
    Generator.random_placed ~histogram:(Lazy.force hist) ~n:600 ~rng ()
  in
  let mc = Mc_reference.prepare ~chars ~corr ~p:0.5 placed in
  let count = 50 in
  let dw =
    minor_words_of (fun () ->
        Mc_reference.sample_many_stream ~jobs:1 mc ~seed:910 ~count)
  in
  let per_sample = dw /. float_of_int count in
  if per_sample > 64.0 *. 600.0 then
    Alcotest.failf "MC allocated %.0f minor words/sample (budget %d)"
      per_sample
      (64 * 600)

(* --- allocation-free staging of the samplers ---------------------- *)

let test_variation_sample_into_bitwise () =
  let corr = Lazy.force corr in
  let rng = Rng.create ~seed:123 () in
  let locations =
    Array.init 40 (fun _ ->
        { Variation.x = Rng.float rng 100.0; y = Rng.float rng 100.0 })
  in
  let sampler = Variation.prepare corr locations in
  let n = Variation.locations_count sampler in
  let r1 = Rng.create ~seed:321 () and r2 = Rng.create ~seed:321 () in
  let z = Array.make n 0.0 in
  let wid = Array.make n 0.0 in
  let out = Array.make n 0.0 in
  for round = 1 to 3 do
    let a = Variation.sample sampler r1 in
    Variation.sample_into sampler r2 ~z ~wid ~out;
    Array.iteri
      (fun i v ->
        check_bits (Printf.sprintf "round %d location %d" round i) v out.(i))
      a
  done;
  (* Both paths consumed the identical RNG stream. *)
  check_bits "rng streams still aligned" (Rng.uniform r1) (Rng.uniform r2)

let suite =
  ( "pair_kernel",
    [
      test_stub_matches_ocaml_mirror;
      case "SIMD paths match scalar bitwise" test_simd_matches_scalar;
      case "buffer validation rejects bad shapes" test_validate_rejects;
      case "binned tables match direct covariance" test_binned_tables_match_direct;
      case "estimate: cold/warm and jobs 1/2/4 bitwise" test_estimate_cold_warm_and_jobs;
      case "estimate matches row-at-a-time oracle" test_estimate_matches_reference;
      case "kernel call allocates nothing" test_kernel_allocation_free;
      case "estimate stays under the per-pair budget" test_estimate_allocation_budget;
      case "MC stays under the per-sample budget" test_mc_allocation_budget;
      case "Variation.sample_into is bitwise sample" test_variation_sample_into_bitwise;
    ] )
