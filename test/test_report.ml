(* Fleet-telemetry tests: ledger lines round-trip through the report
   parser, concurrent appenders never interleave within a line, the
   aggregator reproduces single-run quantiles exactly from the pooled
   sparse buckets, the diff engine flags injected regressions, and the
   committed mini-ledger golden stays in sync with its report. *)

open Testutil
module Obs = Rgleak_obs.Obs
module Ledger = Rgleak_obs.Ledger
module Report = Rgleak_valid.Report
module Vjson = Rgleak_valid.Vjson

(* Build a merged histogram by recording through the real telemetry
   core (same bucketing as production call sites). *)
let hist_of values =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      List.iter (Obs.hist_record "h") values;
      List.assoc "h" (Obs.snapshot ()).Obs.hists)

let entry ?(subcommand = "batch") ?(exit_class = "ok") ?(elapsed = 1.0)
    ?(counters = []) ?(hists = []) () =
  {
    Report.e_subcommand = subcommand;
    e_args_digest = Ledger.args_digest [ subcommand ];
    e_exit_class = exit_class;
    e_elapsed_s = elapsed;
    e_counters = counters;
    e_hists = hists;
    e_gc_minor = 0.0;
    e_gc_major = 0.0;
  }

(* ---------- ledger line <-> report entry round-trip ---------- *)

let test_ledger_round_trip () =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  Obs.count "cache.lookups" 5;
  Obs.count "pool.tasks" 12;
  (* dyadic values survive the ledger's %.9g formatting exactly *)
  List.iter (Obs.hist_record "batch.scenario_s") [ 0.25; 0.5; 0.5; 4.0 ];
  let snap = Obs.snapshot () in
  let args = [ "batch"; "m.jsonl"; "--jobs"; "4" ] in
  let line =
    Ledger.line ~subcommand:"batch" ~args ~exit_class:"ok" ~t:1234.5 snap
  in
  (* the line itself is one valid JSON document with the run schema *)
  let doc = Vjson.parse line in
  check_true "run schema tag"
    (Vjson.str (Vjson.get "schema" doc) = Ledger.schema);
  match Report.parse_ledger_string (line ^ "\n\n" ^ line ^ "\n") with
  | [ e; e' ] ->
    check_true "blank lines skipped, both records parsed" (e = e');
    check_true "subcommand" (e.Report.e_subcommand = "batch");
    check_true "args digest"
      (e.Report.e_args_digest = Ledger.args_digest args);
    check_true "exit class" (e.Report.e_exit_class = "ok");
    check_true "counters carried"
      (List.assoc "cache.lookups" e.Report.e_counters = 5
      && List.assoc "pool.tasks" e.Report.e_counters = 12);
    let h = List.assoc "batch.scenario_s" e.Report.e_hists in
    let h0 = List.assoc "batch.scenario_s" snap.Obs.hists in
    check_true "hist count survives" (h.Obs.h_count = h0.Obs.h_count);
    check_true "hist min/max survive"
      (h.Obs.h_min = h0.Obs.h_min && h.Obs.h_max = h0.Obs.h_max);
    check_true "sparse buckets survive exactly"
      (h.Obs.h_buckets = h0.Obs.h_buckets)
  | es -> Alcotest.failf "expected 2 ledger entries, got %d" (List.length es)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_malformed_ledger_line () =
  Obs.reset ();
  let ok_line =
    Ledger.line ~subcommand:"estimate" ~args:[] ~exit_class:"ok"
      (Obs.snapshot ())
  in
  match Report.parse_ledger_string (ok_line ^ "\nnot json\n") with
  | exception Vjson.Parse_error msg ->
    check_true "error names the line number" (contains msg "line 2")
  | _ -> Alcotest.fail "malformed line did not raise"

(* ---------- concurrent appenders ---------- *)

let test_concurrent_append () =
  let path = Filename.temp_file "rgleak_ledger" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.reset ();
  let snap = Obs.snapshot () in
  let writers = 4 and per_writer = 25 in
  let write_all w =
    for i = 1 to per_writer do
      let line =
        Ledger.line
          ~subcommand:(Printf.sprintf "w%d" w)
          ~args:[ string_of_int i ] ~exit_class:"ok" snap
      in
      match Ledger.append ~path line with
      | Ok () -> ()
      | Error msg -> failwith msg
    done
  in
  let domains =
    List.init writers (fun w -> Domain.spawn (fun () -> write_all w))
  in
  List.iter Domain.join domains;
  let entries = Report.parse_ledger_file path in
  check_true "every appended line parses"
    (List.length entries = writers * per_writer);
  for w = 0 to writers - 1 do
    let mine =
      List.filter
        (fun e -> e.Report.e_subcommand = Printf.sprintf "w%d" w)
        entries
    in
    check_true "no writer lost a record" (List.length mine = per_writer)
  done

(* ---------- aggregation ---------- *)

let test_aggregate_reproduces_quantiles () =
  let values = List.init 200 (fun i -> 0.001 *. float_of_int (i + 1)) in
  let h = hist_of values in
  (* one run's report must reproduce that run's own quantiles *)
  let agg = Report.aggregate [ entry ~hists:[ ("lat_s", h) ] () ] in
  let h' = List.assoc "lat_s" agg.Report.hists in
  check_true "single-run p50 reproduced"
    (Obs.hist_quantile h' 0.5 = Obs.hist_quantile h 0.5);
  check_true "single-run p99 reproduced"
    (Obs.hist_quantile h' 0.99 = Obs.hist_quantile h 0.99);
  (* two identical runs: counts double, quantiles unchanged *)
  let agg2 =
    Report.aggregate
      [ entry ~hists:[ ("lat_s", h) ] (); entry ~hists:[ ("lat_s", h) ] () ]
  in
  let h2 = List.assoc "lat_s" agg2.Report.hists in
  check_true "bucket counts add exactly"
    (h2.Obs.h_count = 2 * h.Obs.h_count
    && List.for_all2
         (fun (i, c) (i', c') -> i = i' && c = 2 * c')
         h2.Obs.h_buckets h.Obs.h_buckets);
  check_true "pooled quantiles of identical runs unchanged"
    (Obs.hist_quantile h2 0.5 = Obs.hist_quantile h 0.5)

let test_aggregate_counts_and_cache () =
  let es =
    [
      entry ~subcommand:"batch" ~elapsed:2.0
        ~counters:[ ("cache.hits", 9); ("cache.lookups", 10); ("cache.misses", 1) ]
        ();
      entry ~subcommand:"estimate" ~elapsed:1.0 ();
      entry ~subcommand:"estimate" ~exit_class:"invalid-input" ~elapsed:0.5 ();
    ]
  in
  let agg = Report.aggregate es in
  check_true "run count" (agg.Report.runs = 3);
  check_true "wall time summed" (agg.Report.wall_s = 3.5);
  check_true "by subcommand"
    (List.assoc "estimate" agg.Report.by_subcommand = 2
    && List.assoc "batch" agg.Report.by_subcommand = 1);
  check_true "by exit class"
    (List.assoc "ok" agg.Report.by_exit_class = 2
    && List.assoc "invalid-input" agg.Report.by_exit_class = 1);
  (match Report.cache_hit_rate agg with
  | Some r -> check_true "hit rate" (abs_float (r -. 0.9) < 1e-12)
  | None -> Alcotest.fail "cache hit rate missing");
  check_true "no lookups means no hit rate"
    (Report.cache_hit_rate (Report.aggregate [ entry () ]) = None);
  let json = Report.to_json agg in
  check_true "report schema"
    (Vjson.str (Vjson.get "schema" json) = "rgleak-report/1");
  check_true "report JSON round-trips"
    (Vjson.parse (Vjson.to_string json) = json)

(* ---------- regression diff ---------- *)

let test_diff_flags_regression () =
  let base_h = hist_of (List.init 100 (fun i -> 0.01 +. 0.0001 *. float_of_int i)) in
  (* injected ~2.5x latency regression *)
  let cur_h = hist_of (List.init 100 (fun i -> 0.025 +. 0.00025 *. float_of_int i)) in
  let baseline = Report.aggregate [ entry ~hists:[ ("lat_s", base_h) ] () ] in
  let current = Report.aggregate [ entry ~hists:[ ("lat_s", cur_h) ] () ] in
  let findings = Report.diff ~baseline ~current in
  check_true "2.5x slowdown is a regression"
    (List.exists
       (fun f ->
         f.Report.f_metric = "lat_s" && f.Report.f_level = Report.Regression)
       findings);
  check_true "has_regression reports it" (Report.has_regression findings);
  (* the reverse direction (a speedup) must not regress *)
  let back = Report.diff ~baseline:current ~current:baseline in
  check_true "speedups never regress" (not (Report.has_regression back));
  (* identical windows produce no findings at all *)
  check_true "identical windows are clean"
    (Report.diff ~baseline ~current:baseline = [])

let test_diff_flags_hit_rate_drop () =
  let cached hits misses =
    Report.aggregate
      [
        entry
          ~counters:
            [
              ("cache.hits", hits);
              ("cache.misses", misses);
              ("cache.lookups", hits + misses);
            ]
          ();
      ]
  in
  let findings =
    Report.diff ~baseline:(cached 90 10) ~current:(cached 50 50)
  in
  check_true "0.4 hit-rate drop is a regression"
    (List.exists
       (fun f ->
         f.Report.f_metric = "cache.hit_rate"
         && f.Report.f_level = Report.Regression)
       findings)

(* ---------- committed mini-ledger golden ---------- *)

let mini_ledger = "../../../data/golden/mini_ledger.jsonl"
let mini_report = "../../../data/golden/mini_ledger_report.json"

let test_mini_ledger_golden () =
  if not (Sys.file_exists mini_ledger && Sys.file_exists mini_report) then ()
  else begin
    let entries = Report.parse_ledger_file mini_ledger in
    check_true "fixture has several runs" (List.length entries >= 3);
    let agg = Report.aggregate entries in
    let fresh = Report.to_json agg in
    let committed = Vjson.parse_file mini_report in
    if fresh <> committed then
      Alcotest.failf
        "committed mini-ledger report drifted; regenerate with\n\
        \  dune exec bin/rgleak.exe -- report %s --json %s\n\
         fresh:\n\
         %s"
        mini_ledger mini_report
        (Vjson.to_string ~indent:2 fresh)
  end

let suite =
  ( "report",
    [
      case "ledger lines round-trip through the parser"
        test_ledger_round_trip;
      case "malformed ledger lines name their line number"
        test_malformed_ledger_line;
      case "concurrent appenders never interleave records"
        test_concurrent_append;
      case "aggregation reproduces single-run quantiles"
        test_aggregate_reproduces_quantiles;
      case "aggregation attributes runs, exits and cache hits"
        test_aggregate_counts_and_cache;
      case "diff flags an injected 2.5x latency regression"
        test_diff_flags_regression;
      case "diff flags a cache hit-rate collapse"
        test_diff_flags_hit_rate_drop;
      case "committed mini-ledger report stays in sync"
        test_mini_ledger_golden;
    ] )
