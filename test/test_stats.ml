open Rgleak_num
open Testutil

let test_acc_basic () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "count" 8.0 (float_of_int (Stats.Acc.count acc));
  check_close ~tol:1e-12 "mean" 5.0 (Stats.Acc.mean acc);
  check_close ~tol:1e-12 "sample variance" (32.0 /. 7.0) (Stats.Acc.variance acc);
  check_close ~tol:1e-12 "min" 2.0 (Stats.Acc.min acc);
  check_close ~tol:1e-12 "max" 9.0 (Stats.Acc.max acc)

let test_acc_degenerate () =
  let acc = Stats.Acc.create () in
  check_close "variance of empty" 0.0 (Stats.Acc.variance acc);
  Stats.Acc.add acc 42.0;
  check_close "variance of singleton" 0.0 (Stats.Acc.variance acc);
  check_close "mean of singleton" 42.0 (Stats.Acc.mean acc)

let test_acc_matches_two_pass =
  qcheck ~count:200 "Welford matches two-pass variance"
    QCheck2.Gen.(list_size (int_range 2 100) (float_range (-100.0) 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
        /. float_of_int (n - 1)
      in
      let acc = Stats.Acc.create () in
      Array.iter (Stats.Acc.add acc) a;
      Float.abs (Stats.Acc.variance acc -. var) < 1e-8 *. Float.max 1.0 var)

let test_acc_shift_invariance () =
  (* numerically nasty: large offset, small spread *)
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1e9 +. 1.0; 1e9 +. 2.0; 1e9 +. 3.0 ];
  check_rel ~tol:1e-9 "variance under large offset" 1.0 (Stats.Acc.variance acc)

let test_cov_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_close ~tol:1e-12 "perfect correlation" 1.0 (Stats.correlation xs ys);
  let ys_neg = Array.map (fun y -> -.y) ys in
  check_close ~tol:1e-12 "perfect anticorrelation" (-1.0)
    (Stats.correlation xs ys_neg);
  check_close ~tol:1e-12 "cov linear" (10.0 /. 3.0) (Stats.covariance xs ys)

let test_cov_constant () =
  let xs = [| 1.0; 1.0; 1.0 |] and ys = [| 1.0; 2.0; 3.0 |] in
  check_close "correlation with constant is 0" 0.0 (Stats.correlation xs ys)

let test_corr_bounds =
  qcheck ~count:300 "correlation in [-1,1]"
    QCheck2.Gen.(
      list_size (int_range 2 50)
        (pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0)))
    (fun pairs ->
      let xs = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      let r = Stats.correlation xs ys in
      r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let test_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_close ~tol:1e-12 "median" 3.0 (Stats.percentile xs 50.0);
  check_close ~tol:1e-12 "p0 is min" 1.0 (Stats.percentile xs 0.0);
  check_close ~tol:1e-12 "p100 is max" 5.0 (Stats.percentile xs 100.0);
  check_close ~tol:1e-12 "p25 interpolates" 2.0 (Stats.percentile xs 25.0);
  (* input untouched *)
  check_close "input not sorted in place" 5.0 xs.(0)

let test_histogram () =
  let xs = [| 0.0; 0.1; 0.2; 0.9; 1.0 |] in
  let h = Stats.histogram xs ~bins:2 in
  check_close "bin count" 2.0 (float_of_int (Array.length h));
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  check_close "histogram conserves mass" 5.0 (float_of_int total)

let test_histogram_mass =
  qcheck ~count:200 "histogram conserves mass"
    QCheck2.Gen.(
      pair (list_size (int_range 1 200) (float_range (-5.0) 5.0)) (int_range 1 20))
    (fun (xs, bins) ->
      let a = Array.of_list xs in
      let h = Stats.histogram a ~bins in
      Array.fold_left (fun acc (_, c) -> acc + c) 0 h = Array.length a)

let test_relative_error () =
  check_close ~tol:1e-12 "relative error" 0.1
    (Stats.relative_error ~actual:1.1 ~reference:1.0);
  Alcotest.check_raises "zero reference rejected"
    (Invalid_argument "Stats.relative_error: zero reference") (fun () ->
      ignore (Stats.relative_error ~actual:1.0 ~reference:0.0))

let test_cov_acc_matches_array () =
  let rng = Rng.create ~seed:3 () in
  let n = 1000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let ys = Array.mapi (fun i x -> (0.5 *. x) +. (0.5 *. Rng.gaussian rng) +. float_of_int (i mod 2)) xs in
  let acc = Stats.Cov_acc.create () in
  Array.iteri (fun i x -> Stats.Cov_acc.add acc x ys.(i)) xs;
  check_rel ~tol:1e-9 "cov acc vs arrays" (Stats.covariance xs ys)
    (Stats.Cov_acc.covariance acc);
  check_rel ~tol:1e-9 "corr acc vs arrays" (Stats.correlation xs ys)
    (Stats.Cov_acc.correlation acc)

let suite =
  ( "stats",
    [
      case "accumulator basics" test_acc_basic;
      case "accumulator degenerate" test_acc_degenerate;
      test_acc_matches_two_pass;
      case "accumulator shift invariance" test_acc_shift_invariance;
      case "covariance basics" test_cov_basic;
      case "correlation with constant" test_cov_constant;
      test_corr_bounds;
      case "percentile" test_percentile;
      case "histogram" test_histogram;
      test_histogram_mass;
      case "relative error" test_relative_error;
      case "cov accumulator vs arrays" test_cov_acc_matches_array;
    ] )
