(* Golden regression tests: every path here is deterministic (fixed
   seeds, fixed characterization settings), so the exact values below
   must be stable across refactorings.  A failure means numerical
   behaviour changed — intentionally or not — and EXPERIMENTS.md needs
   re-measuring if it was intentional. *)

open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let chars = lazy (Characterize.default_library ())
let param = Process_param.default_channel_length
let corr = lazy (Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param)

let hist =
  lazy
    (Histogram.of_weights
       [ ("INV_X1", 20.0); ("NAND2_X1", 18.0); ("NOR2_X1", 8.0); ("DFF_X1", 9.0) ])

let test_cell_stats () =
  let sc = (Lazy.force chars).(Library.index_of "NAND2_X1").Characterize.states.(0) in
  check_rel ~tol:1e-6 "NAND2 state-0 analytic mean" 0.1732180321
    sc.Characterize.mu_analytic;
  check_rel ~tol:1e-6 "NAND2 state-0 analytic std" 0.06613326441
    sc.Characterize.sigma_analytic;
  check_rel ~tol:1e-6 "NAND2 state-0 fitted b" (-0.335614906) sc.Characterize.fit.Mgf.b;
  check_rel ~tol:1e-6 "NAND2 state-0 fitted c" 0.001421124909 sc.Characterize.fit.Mgf.c

let test_linear_estimate () =
  let spec =
    { Estimate.histogram = Lazy.force hist; n = 900; width = 120.0; height = 120.0 }
  in
  let r =
    Estimate.early ~p:0.5 ~method_:Estimate.Linear ~chars:(Lazy.force chars)
      ~corr:(Lazy.force corr) spec
  in
  check_rel ~tol:1e-6 "golden linear mean" 2158.029676 r.Estimate.mean;
  check_rel ~tol:1e-6 "golden linear std" 633.6915121 r.Estimate.std

let test_integral_estimate () =
  let spec =
    { Estimate.histogram = Lazy.force hist; n = 900; width = 120.0; height = 120.0 }
  in
  let r =
    Estimate.early ~p:0.5 ~method_:Estimate.Integral_2d ~chars:(Lazy.force chars)
      ~corr:(Lazy.force corr) spec
  in
  check_rel ~tol:1e-6 "golden 2-D integral std" 625.4400336 r.Estimate.std

let test_c432_true_leakage () =
  let placed = Benchmarks.placed (Benchmarks.find "c432") in
  let tr =
    Estimate.true_leakage ~chars:(Lazy.force chars) ~corr:(Lazy.force corr) placed
  in
  check_rel ~tol:1e-6 "golden c432 true mean" 256.5925014 tr.Estimate.mean;
  check_rel ~tol:1e-6 "golden c432 true std" 88.52415622 tr.Estimate.std

let test_signal_probability () =
  let weights = Histogram.to_array (Lazy.force hist) in
  check_rel ~tol:1e-9 "golden p*" 0.51
    (Signal_prob.maximizing_p (Lazy.force chars) ~weights);
  check_rel ~tol:1e-6 "golden per-gate mean at p = 0.5" 2.397810752
    (Signal_prob.design_mean (Lazy.force chars) ~weights ~p:0.5)

let test_vt_factor () =
  check_rel ~tol:1e-9 "golden Vt mean factor"
    (exp (0.025 *. 0.025 /. (2.0 *. ((1.4 *. 0.0259) ** 2.0))))
    (Vt_correction.mean_factor ())

let suite =
  ( "golden",
    [
      slow_case "cell statistics" test_cell_stats;
      slow_case "linear estimate" test_linear_estimate;
      slow_case "integral estimate" test_integral_estimate;
      slow_case "c432 true leakage" test_c432_true_leakage;
      slow_case "signal probability" test_signal_probability;
      case "vt factor" test_vt_factor;
    ] )
