open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Testutil

let param = Process_param.default_channel_length

let small_chars =
  lazy
    (let rng = Rng.create ~seed:66 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:49 ~mc_samples:2000 ~param
           ~rng:(Rng.split rng) cell)
       Rgleak_cells.Library.cells)

let test_state_probs_sum =
  qcheck ~count:100 "state probabilities sum to 1"
    QCheck2.Gen.(QCheck2.Gen.pair (int_range 0 6) (float_range 0.0 1.0))
    (fun (num_inputs, p) ->
      let probs = Signal_prob.state_probabilities ~num_inputs ~p in
      let total = Array.fold_left ( +. ) 0.0 probs in
      Float.abs (total -. 1.0) < 1e-12)

let test_state_probs_degenerate () =
  let probs0 = Signal_prob.state_probabilities ~num_inputs:3 ~p:0.0 in
  check_close ~tol:1e-15 "p=0 concentrates on state 0" 1.0 probs0.(0);
  let probs1 = Signal_prob.state_probabilities ~num_inputs:3 ~p:1.0 in
  check_close ~tol:1e-15 "p=1 concentrates on last state" 1.0 probs1.(7)

let test_state_prob_formula () =
  (* state 5 = bits 101 at p: p * (1-p) * p *)
  let p = 0.3 in
  check_rel ~tol:1e-12 "state 101 probability"
    (p *. (1.0 -. p) *. p)
    (Signal_prob.state_probability ~num_inputs:3 ~p 5)

let test_out_of_range_p () =
  Alcotest.check_raises "p outside [0,1]"
    (Invalid_argument "Signal_prob: p must be in [0,1]") (fun () ->
      ignore (Signal_prob.state_probability ~num_inputs:2 ~p:1.5 0))

let test_weighted_stats_interpolates () =
  let chars = Lazy.force small_chars in
  let nand = chars.(Library.index_of "NAND2_X1") in
  let w0 = Signal_prob.weighted_stats nand ~p:0.0 in
  let w1 = Signal_prob.weighted_stats nand ~p:1.0 in
  let wm = Signal_prob.weighted_stats nand ~p:0.5 in
  (* degenerate p picks out single states exactly *)
  check_rel ~tol:1e-9 "p=0 equals state-0 mean"
    nand.Characterize.states.(0).Characterize.mu_analytic w0.Signal_prob.mu;
  check_rel ~tol:1e-9 "p=1 equals state-3 mean"
    nand.Characterize.states.(3).Characterize.mu_analytic w1.Signal_prob.mu;
  check_in_range "p=0.5 mean between extremes"
    ~lo:(Float.min w0.Signal_prob.mu w1.Signal_prob.mu)
    ~hi:(Float.max w0.Signal_prob.mu w1.Signal_prob.mu +. wm.Signal_prob.mu)
    wm.Signal_prob.mu

let test_mixture_sigma_exceeds_state_sigma () =
  (* mixing distinct states adds variance beyond the within-state one *)
  let chars = Lazy.force small_chars in
  let nor = chars.(Library.index_of "NOR2_X1") in
  let w = Signal_prob.weighted_stats nor ~p:0.5 in
  let min_state_sigma =
    Array.fold_left
      (fun acc (sc : Characterize.state_char) ->
        Float.min acc sc.Characterize.sigma_analytic)
      infinity nor.Characterize.states
  in
  check_true "mixture sigma above smallest state sigma"
    (w.Signal_prob.sigma_mixture > min_state_sigma)

let test_design_mean_weights () =
  let chars = Lazy.force small_chars in
  let weights = Array.make Library.size 0.0 in
  weights.(Library.index_of "INV_X1") <- 1.0;
  let dm = Signal_prob.design_mean chars ~weights ~p:0.5 in
  let direct = (Signal_prob.weighted_stats chars.(Library.index_of "INV_X1") ~p:0.5).Signal_prob.mu in
  check_rel ~tol:1e-12 "single-cell design mean" direct dm

let test_sweep_shape () =
  let chars = Lazy.force small_chars in
  let weights = Array.make Library.size (1.0 /. float_of_int Library.size) in
  let curve = Signal_prob.sweep ~points:21 chars ~weights in
  check_close "sweep length" 21.0 (float_of_int (Array.length curve));
  check_close ~tol:1e-12 "sweep starts at 0" 0.0 (fst curve.(0));
  check_close ~tol:1e-12 "sweep ends at 1" 1.0 (fst curve.(20));
  Array.iter (fun (_, v) -> check_true "positive mean" (v > 0.0)) curve

let test_maximizing_p_is_argmax () =
  let chars = Lazy.force small_chars in
  let weights = Array.make Library.size (1.0 /. float_of_int Library.size) in
  let p_star = Signal_prob.maximizing_p ~points:21 chars ~weights in
  let at p = Signal_prob.design_mean chars ~weights ~p in
  let v_star = at p_star in
  Array.iter
    (fun (p, v) ->
      check_true (Printf.sprintf "argmax beats p=%.2f" p) (v_star >= v -. 1e-12))
    (Signal_prob.sweep ~points:21 chars ~weights);
  check_in_range "argmax in [0,1]" ~lo:0.0 ~hi:1.0 p_star

let test_chip_level_flatness () =
  (* Fig. 3: the chip-level signal-probability effect is far smaller
     than the per-gate state spread (which can reach 10x+) *)
  let chars = Lazy.force small_chars in
  let weights = Array.make Library.size (1.0 /. float_of_int Library.size) in
  let curve = Signal_prob.sweep ~points:21 chars ~weights in
  let vmin = Array.fold_left (fun acc (_, v) -> Float.min acc v) infinity curve in
  let vmax = Array.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 curve in
  check_true "chip-level spread below 2x" (vmax /. vmin < 2.0)

let suite =
  ( "signal_prob",
    [
      test_state_probs_sum;
      case "degenerate p" test_state_probs_degenerate;
      case "state probability formula" test_state_prob_formula;
      case "p range validation" test_out_of_range_p;
      case "weighted stats at extremes" test_weighted_stats_interpolates;
      case "mixture variance" test_mixture_sigma_exceeds_state_sigma;
      case "design mean weighting" test_design_mean_weights;
      case "sweep shape" test_sweep_shape;
      case "maximizing p is the argmax" test_maximizing_p_is_argmax;
      case "chip-level flatness (Fig 3)" test_chip_level_flatness;
    ] )
