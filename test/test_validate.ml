(* Tier-1 subset of the validation harness: the statistical machinery
   (equivalence gates, kurtosis-adjusted intervals), the JSON
   round-trip the golden baselines rest on, the golden-diff drift
   classes, and one real quick-sweep run checked for pass status,
   bit-reproducibility across job counts, and agreement with the
   committed baseline.  The full paper-table sweep runs under
   `make check` / `rgleak validate`, not here. *)

open Rgleak_num
open Rgleak_valid
open Testutil

(* ---- Stat_test: intervals and the equivalence gate ---- *)

let test_intervals () =
  check_close ~tol:1e-3 "z at 95%" 1.960 (Stats.z_of_confidence 0.95);
  check_close ~tol:1e-3 "z at 99%" 2.576 (Stats.z_of_confidence 0.99);
  let i = Stat_test.mean_interval ~mean:100.0 ~std:20.0 ~count:400 ~confidence:0.95 in
  check_close "mean se = std/sqrt n" 1.0 i.Stat_test.se;
  check_close ~tol:1e-3 "mean half-width" 1.960 (Stat_test.half_width i);
  (* normal kurtosis recovers the normal-theory SE up to O(1/n) *)
  let se_n = Stats.std_se ~std:20.0 ~count:400 in
  let se_k = Stats.std_se_kurtosis ~std:20.0 ~kurtosis:3.0 ~count:400 in
  check_rel ~tol:3e-3 "kurtosis 3 matches normal theory" se_n se_k;
  (* heavy tails widen, light tails never narrow below normal *)
  check_true "kurtosis 9 widens"
    (Stats.std_se_kurtosis ~std:20.0 ~kurtosis:9.0 ~count:400 > 1.9 *. se_k);
  check_close "kurtosis 1.5 floored at normal" se_k
    (Stats.std_se_kurtosis ~std:20.0 ~kurtosis:1.5 ~count:400)

let test_equivalence_gate () =
  let reference = Stat_test.interval ~center:100.0 ~se:2.0 ~confidence:0.95 in
  let hw = Stat_test.half_width reference in
  let verdict value budget_rel =
    Stat_test.equivalent ~value ~reference ~budget_rel
  in
  check_true "center passes" (verdict 100.0 0.0).Stat_test.pass;
  check_true "inside CI passes" (verdict (100.0 +. (0.9 *. hw)) 0.0).Stat_test.pass;
  check_true "outside CI fails" (not (verdict (100.0 +. (1.1 *. hw)) 0.0).Stat_test.pass);
  (* a model-error budget widens the gate by budget_rel * |center| *)
  check_true "budget rescues CI miss"
    (verdict (100.0 +. hw +. 4.9) 0.05).Stat_test.pass;
  check_true "beyond CI + budget fails"
    (not (verdict (100.0 +. hw +. 5.1) 0.05).Stat_test.pass);
  check_true "NaN never passes" (not (verdict Float.nan 0.5).Stat_test.pass);
  check_true "infinity never passes"
    (not (verdict Float.infinity 0.5).Stat_test.pass);
  check_close "z in SE units" 2.5 (verdict 105.0 0.0).Stat_test.z;
  (match Stat_test.equivalent ~value:1.0 ~reference ~budget_rel:(-0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget accepted")

let test_kurtosis () =
  (* two-point symmetric sample: kurtosis is exactly 1 *)
  check_close "two-point kurtosis" 1.0
    (Stats.kurtosis [| 1.0; -1.0; 1.0; -1.0; 1.0; -1.0 |]);
  (* uniform samples: kurtosis -> 9/5 *)
  let rng = Rng.create ~seed:7 () in
  let xs = Array.init 30_000 (fun _ -> Rng.uniform rng) in
  check_close ~tol:0.05 "uniform kurtosis" 1.8 (Stats.kurtosis xs);
  (match Stats.kurtosis [| 2.0; 2.0; 2.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero variance accepted")

(* ---- Vjson: the round-trip the golden engine rests on ---- *)

let sample_doc =
  Vjson.Obj
    [
      ("schema", Vjson.Str "x/1");
      ("pi", Vjson.Num 3.1415926535897931);
      ("tiny", Vjson.Num 1.2345678901234567e-21);
      ("count", Vjson.Num 400.0);
      ("flag", Vjson.Bool true);
      ("nothing", Vjson.Null);
      ( "items",
        Vjson.Arr
          [
            Vjson.Num (-0.1);
            Vjson.Str "a \"quoted\"\nline";
            Vjson.Obj [ ("k", Vjson.Arr []) ];
            Vjson.Obj [];
          ] );
    ]

let test_vjson_roundtrip () =
  let compact = Vjson.to_string sample_doc in
  let pretty = Vjson.to_string ~indent:2 sample_doc in
  check_true "compact parses back" (Vjson.parse compact = sample_doc);
  check_true "pretty parses back" (Vjson.parse pretty = sample_doc);
  (* %.17g float round-trip is exact, not approximate *)
  let rng = Rng.create ~seed:12 () in
  for _ = 1 to 200 do
    let f = (Rng.uniform rng -. 0.5) *. exp (40.0 *. (Rng.uniform rng -. 0.5)) in
    match Vjson.parse (Vjson.to_string (Vjson.Num f)) with
    | Vjson.Num f' ->
      if Int64.bits_of_float f <> Int64.bits_of_float f' then
        Alcotest.failf "float %h drifted to %h over the round-trip" f f'
    | _ -> Alcotest.fail "number parsed as non-number"
  done

let test_vjson_errors () =
  List.iter
    (fun s ->
      match Vjson.parse s with
      | exception Vjson.Parse_error _ -> ()
      | _ -> Alcotest.failf "malformed %S accepted" s)
    [ ""; "{"; "tru"; "1..2"; "{\"a\" 1}"; "[1, ]"; "\"open"; "{} garbage" ]

(* ---- golden diff drift classes ---- *)

(* Structural helper: apply [f] to the value at an object/array path. *)
let rec update path f j =
  match (path, j) with
  | [], v -> f v
  | k :: rest, Vjson.Obj kvs ->
    Vjson.Obj
      (List.map (fun (k', v) -> if k' = k then (k', update rest f v) else (k', v)) kvs)
  | k :: rest, Vjson.Arr vs ->
    Vjson.Arr (List.mapi (fun i v -> if string_of_int i = k then update rest f v else v) vs)
  | _ -> Alcotest.fail "bad update path"

let quick_report = lazy (Experiment.run ~seed:42 Experiment.quick_sweep)

let test_quick_sweep_passes () =
  let r = Lazy.force quick_report in
  check_true "schema id" (r.Experiment.schema = "rgleak-validate/1");
  check_true "all points pass" r.Experiment.pass;
  List.iter
    (fun (p : Experiment.point_report) ->
      check_true (p.Experiment.point.Experiment.label ^ " mc ok")
        (p.Experiment.mc.Experiment.mc_status = "ok");
      List.iter
        (fun (t : Experiment.tier_report) ->
          check_true
            (p.Experiment.point.Experiment.label ^ "/" ^ t.Experiment.tier)
            (t.Experiment.status = "ok" && t.Experiment.tier_pass))
        p.Experiment.tiers;
      (* the exact tier is its own relative-error reference *)
      match p.Experiment.tiers with
      | exact :: _ ->
        check_close "exact mean_rel_err = 0" 0.0
          (Option.get exact.Experiment.mean_rel_err)
      | [] -> Alcotest.fail "no tiers")
    r.Experiment.point_reports

let test_golden_self_identical () =
  let j = Experiment.to_json (Lazy.force quick_report) in
  let d = Golden_diff.compare ~baseline:j ~current:j in
  check_true "self-compare identical" (d.Golden_diff.severity = Golden_diff.Identical);
  check_true "no findings" (d.Golden_diff.findings = [])

let test_golden_drift_classes () =
  let j = Experiment.to_json (Lazy.force quick_report) in
  let mc_se =
    Vjson.num
      (Vjson.get "mean_se"
         (Vjson.get "mc" (List.nth (Vjson.arr (Vjson.get "points" j)) 0)))
  in
  let shift_mean delta doc =
    update [ "points"; "0"; "mc"; "mean" ]
      (fun v -> Vjson.Num (Vjson.num v +. delta))
      doc
  in
  (* drift within the baseline's own CI: benign *)
  let d = Golden_diff.compare ~baseline:(shift_mean (0.5 *. mc_se) j) ~current:j in
  check_true "within-CI drift benign" (d.Golden_diff.severity = Golden_diff.Benign);
  (* drift beyond the CI: breaking *)
  let d = Golden_diff.compare ~baseline:(shift_mean (10.0 *. mc_se) j) ~current:j in
  check_true "beyond-CI drift breaking"
    (d.Golden_diff.severity = Golden_diff.Breaking);
  (* structural: a flipped pass flag *)
  let flipped =
    update [ "points"; "0"; "pass" ] (fun _ -> Vjson.Bool false) j
  in
  let d = Golden_diff.compare ~baseline:flipped ~current:j in
  check_true "pass flip breaking" (d.Golden_diff.severity = Golden_diff.Breaking);
  (* structural: a tier status change *)
  let errored =
    update [ "points"; "0"; "tiers"; "1"; "status" ]
      (fun _ -> Vjson.Str "error:numeric")
      j
  in
  let d = Golden_diff.compare ~baseline:errored ~current:j in
  check_true "status change breaking"
    (d.Golden_diff.severity = Golden_diff.Breaking);
  (* structural: schema change short-circuits *)
  let reschema = update [ "schema" ] (fun _ -> Vjson.Str "rgleak-validate/2") j in
  let d = Golden_diff.compare ~baseline:reschema ~current:j in
  check_true "schema change breaking"
    (d.Golden_diff.severity = Golden_diff.Breaking)

(* the committed baseline must match a fresh run bit for bit *)
let test_committed_baseline () =
  let path = "../../../data/golden/validate_quick.json" in
  if not (Sys.file_exists path) then ()
  else begin
    let baseline = Vjson.parse_file path in
    let current = Experiment.to_json (Lazy.force quick_report) in
    let d = Golden_diff.compare ~baseline ~current in
    if d.Golden_diff.severity <> Golden_diff.Identical then
      Alcotest.failf "committed baseline drifted:\n%s"
        (Format.asprintf "%a" Golden_diff.pp d)
  end

(* ---- determinism: the report is a pure function of (sweep, seed) ---- *)

let tiny_sweep =
  {
    Experiment.sweep_name = "tiny";
    confidence = 0.99;
    budgets = Experiment.quick_sweep.Experiment.budgets;
    points =
      [
        {
          Experiment.label = "tiny";
          n = 100;
          aspect = 1.0;
          family = Rgleak_process.Corr_model.Spherical { dmax = 80.0 };
          p = 0.5;
          mix_name = "asic";
          mix = [ ("INV_X1", 2.0); ("NAND2_X1", 1.0); ("DFF_X1", 1.0) ];
          (* 65 replicas: past the single-domain chunk cap, so jobs 1
             and 3 decompose the MC fill differently *)
          replicas = 65;
        };
      ];
  }

let test_report_jobs_invariant () =
  let run jobs =
    Vjson.to_string (Experiment.to_json (Experiment.run ~jobs ~seed:11 tiny_sweep))
  in
  let r1 = run 1 in
  Alcotest.(check string) "jobs 1 vs 2" r1 (run 2);
  Alcotest.(check string) "jobs 1 vs 3" r1 (run 3)

let test_report_seed_sensitivity () =
  let run seed =
    Vjson.to_string (Experiment.to_json (Experiment.run ~jobs:1 ~seed tiny_sweep))
  in
  check_true "different seeds differ" (run 11 <> run 12)

(* ---- shrinking helpers ---- *)

let test_minimize () =
  (* greedy descent lands on a local minimum: it fails, and none of its
     shrink candidates do *)
  let fails n = n >= 37 in
  let m = minimize ~shrink:(shrink_size ~lo:2) ~fails 500 in
  check_true "minimum still fails" (fails m);
  check_true "minimum is locally minimal"
    (List.for_all (fun c -> not (fails c)) (shrink_size ~lo:2 m));
  check_true "shrunk well below start" (m < 100);
  (* family ranges descend to their floor when the family always fails *)
  let f = Rgleak_process.Corr_model.Gaussian { range = 77.0 } in
  match minimize ~shrink:shrink_family ~fails:(fun _ -> true) f with
  | Rgleak_process.Corr_model.Gaussian { range } ->
    check_close "range at floor" 10.0 range
  | _ -> Alcotest.fail "family changed under shrinking"

let suite =
  ( "validate",
    [
      case "intervals and standard errors" test_intervals;
      case "equivalence gate" test_equivalence_gate;
      case "kurtosis estimator" test_kurtosis;
      case "vjson round-trip" test_vjson_roundtrip;
      case "vjson rejects malformed input" test_vjson_errors;
      case "quick sweep passes" test_quick_sweep_passes;
      case "golden self-compare identical" test_golden_self_identical;
      case "golden drift classes" test_golden_drift_classes;
      case "committed baseline identical" test_committed_baseline;
      case "report jobs-invariant" test_report_jobs_invariant;
      case "report seed-sensitive" test_report_seed_sensitivity;
      case "shrinking finds minimal counterexamples" test_minimize;
    ] )
