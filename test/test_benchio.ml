(* Tests for the .bench netlist format and the technology mapper. *)

open Rgleak_num
open Rgleak_cells
open Rgleak_circuit
open Testutil

let c17_text =
  {|# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let c17 = lazy (Bench_format.parse_string ~name:"c17" c17_text)

let test_parse_c17 () =
  let b = Lazy.force c17 in
  check_close "5 primary inputs" 5.0
    (float_of_int (List.length b.Bench_format.primary_inputs));
  check_close "2 primary outputs" 2.0
    (float_of_int (List.length b.Bench_format.primary_outputs));
  check_close "6 gates" 6.0 (float_of_int (Bench_format.gate_count b));
  check_true "c17 validates" (Bench_format.validate b = Ok ())

let test_parse_comments_and_spaces () =
  let b =
    Bench_format.parse_string
      "  INPUT( a )  # trailing comment\n\n# full comment\nOUTPUT(z)\nz = NOT( a )\n"
  in
  check_true "whitespace tolerated" (b.Bench_format.primary_inputs = [ "a" ]);
  check_true "gate parsed"
    ((List.hd b.Bench_format.gates).Bench_format.gate_type = Bench_format.Not)

let test_parse_errors () =
  let expect_error text =
    try
      ignore (Bench_format.parse_string text);
      false
    with Bench_format.Parse_error _ -> true
  in
  check_true "garbage line rejected" (expect_error "hello world\n");
  check_true "unknown gate rejected" (expect_error "z = FROB(a)\n");
  check_true "missing paren rejected" (expect_error "z = NAND(a, b\n");
  check_true "empty inputs rejected" (expect_error "z = NAND()\n")

let test_validate_catches_structure () =
  let undefined = Bench_format.parse_string "OUTPUT(z)\nz = NOT(ghost)\n" in
  check_true "undefined net caught"
    (match Bench_format.validate undefined with Error _ -> true | Ok () -> false);
  let dup =
    Bench_format.parse_string "INPUT(a)\nz = NOT(a)\nz = NOT(a)\n"
  in
  check_true "duplicate definition caught"
    (match Bench_format.validate dup with Error _ -> true | Ok () -> false);
  let arity = Bench_format.parse_string "INPUT(a)\nz = NAND(a)\n" in
  check_true "bad arity caught"
    (match Bench_format.validate arity with Error _ -> true | Ok () -> false)

let test_print_parse_roundtrip () =
  let b = Lazy.force c17 in
  let b2 = Bench_format.parse_string ~name:"c17" (Bench_format.to_string b) in
  check_true "roundtrip preserves inputs"
    (b.Bench_format.primary_inputs = b2.Bench_format.primary_inputs);
  check_true "roundtrip preserves gate count"
    (Bench_format.gate_count b = Bench_format.gate_count b2);
  check_true "roundtrip preserves gates" (b.Bench_format.gates = b2.Bench_format.gates)

let test_parse_data_file () =
  let path = "../../../data/c17.bench" in
  if Sys.file_exists path then begin
    let b = Bench_format.parse_file path in
    check_close "c17.bench gates" 6.0 (float_of_int (Bench_format.gate_count b))
  end
  else (* running from an unexpected cwd; the string fixture covers it *)
    check_true "data file not present here" true

(* ---- techmap ---- *)

let test_map_c17 () =
  let nl, rep = Techmap.map (Lazy.force c17) in
  check_close "one instance per NAND2" 6.0 (float_of_int (Netlist.size nl));
  check_close "all native" 6.0 (float_of_int rep.Techmap.native);
  check_close "nothing decomposed" 0.0 (float_of_int rep.Techmap.decomposed);
  Array.iter
    (fun inst ->
      check_true "mapped to NAND2"
        (Library.cells.(inst.Netlist.cell_index).Cell.name = "NAND2_X1"))
    nl.Netlist.instances

let test_map_drive_variant () =
  let nl, _ = Techmap.map ~drive:`X2 (Lazy.force c17) in
  Array.iter
    (fun inst ->
      check_true "X2 variant chosen"
        (Library.cells.(inst.Netlist.cell_index).Cell.name = "NAND2_X2"))
    nl.Netlist.instances

let test_map_wide_gates () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(z)\n\
     z = AND(a, b, c, d, e, f)\n"
  in
  let nl, rep = Techmap.map (Bench_format.parse_string text) in
  check_close "6-and decomposed" 1.0 (float_of_int rep.Techmap.decomposed);
  check_true "tree has more than one cell" (Netlist.size nl > 1);
  (* all cells must be AND-family *)
  Array.iter
    (fun inst ->
      let name = Library.cells.(inst.Netlist.cell_index).Cell.name in
      check_true "AND-family cell" (String.length name >= 3 && String.sub name 0 3 = "AND"))
    nl.Netlist.instances

let test_map_wide_nand_semantics () =
  (* NAND(a..e) = NOT(AND(a..e)): the top cell must be a NAND *)
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\n\
     z = NAND(a, b, c, d, e)\n"
  in
  let nl, _ = Techmap.map (Bench_format.parse_string text) in
  let last = nl.Netlist.instances.(Netlist.size nl - 1) in
  let name = Library.cells.(last.Netlist.cell_index).Cell.name in
  check_true "top cell is NAND" (String.sub name 0 4 = "NAND")

let test_map_xor_chain () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\nz = XNOR(a, b, c, d)\n"
  in
  let nl, _ = Techmap.map (Bench_format.parse_string text) in
  (* 4-input XNOR -> XOR2, XOR2, XNOR2 *)
  check_close "three 2-input parity cells" 3.0 (float_of_int (Netlist.size nl));
  let last = nl.Netlist.instances.(Netlist.size nl - 1) in
  check_true "complement at the top"
    (Library.cells.(last.Netlist.cell_index).Cell.name = "XNOR2_X1")

let test_map_sequential_cycle () =
  (* a loop through a DFF must map (sequential cut), a combinational
     loop must be rejected *)
  let seq =
    "INPUT(a)\nOUTPUT(q)\nq = DFF(w)\nw = NAND(a, q)\n"
  in
  let nl, _ = Techmap.map (Bench_format.parse_string seq) in
  check_close "both gates mapped" 2.0 (float_of_int (Netlist.size nl));
  let comb = "INPUT(a)\nOUTPUT(x)\nx = NAND(a, y)\ny = NAND(a, x)\n" in
  check_true "combinational cycle rejected"
    (try
       ignore (Techmap.map (Bench_format.parse_string comb));
       false
     with Invalid_argument _ -> true)

let test_map_invalid_rejected () =
  let bad = Bench_format.parse_string "OUTPUT(z)\nz = NOT(ghost)\n" in
  check_true "invalid circuit rejected by map"
    (try
       ignore (Techmap.map bad);
       false
     with Invalid_argument _ -> true)

let test_export_roundtrip () =
  let rng = Rng.create ~seed:17 () in
  let hist =
    Histogram.of_weights
      [ ("INV_X1", 2.0); ("NAND2_X1", 3.0); ("NOR3_X1", 1.0); ("XOR2_X1", 1.0);
        ("DFF_X1", 1.0); ("AOI21_X1", 1.0) ]
  in
  let gen = Generator.random_netlist ~histogram:hist ~n:200 ~rng () in
  let exported = Techmap.netlist_to_bench gen in
  check_true "export validates" (Bench_format.validate exported = Ok ());
  let reparsed = Bench_format.parse_string (Bench_format.to_string exported) in
  let remapped, _ = Techmap.map reparsed in
  check_close "gate count preserved through export/import"
    (float_of_int (Netlist.size gen))
    (float_of_int (Netlist.size remapped))

let test_export_rejects_sram () =
  let inst = [| { Netlist.id = 0; cell_index = Library.index_of "SRAM6T"; fanin = [| -1 |] } |] in
  let nl = Netlist.create ~name:"sram" ~num_primary_inputs:1 inst in
  check_true "SRAM has no bench projection"
    (try
       ignore (Techmap.netlist_to_bench nl);
       false
     with Invalid_argument _ -> true)

let test_mapped_circuit_estimates () =
  (* end-to-end: parse -> map -> place -> estimate *)
  let nl, _ = Techmap.map (Lazy.force c17) in
  let layout = Layout.square ~n:(Netlist.size nl) () in
  let rng = Rng.create ~seed:3 () in
  let placed = Placer.place ~strategy:Placer.Random ~rng nl layout in
  let h, n, w, hh = Placer.extract_characteristics placed in
  check_close "extracted n" 6.0 (float_of_int n);
  check_true "extracted dims positive" (w > 0.0 && hh > 0.0);
  check_true "histogram concentrated on NAND2"
    (Histogram.frequency h (Library.index_of "NAND2_X1") > 0.99)

let suite =
  ( "benchio",
    [
      case "parse c17" test_parse_c17;
      case "comments and whitespace" test_parse_comments_and_spaces;
      case "parse errors" test_parse_errors;
      case "structural validation" test_validate_catches_structure;
      case "print/parse roundtrip" test_print_parse_roundtrip;
      case "data file" test_parse_data_file;
      case "map c17" test_map_c17;
      case "drive variants" test_map_drive_variant;
      case "wide AND decomposition" test_map_wide_gates;
      case "wide NAND semantics" test_map_wide_nand_semantics;
      case "xor chain" test_map_xor_chain;
      case "sequential cycle cut" test_map_sequential_cycle;
      case "invalid circuit rejected" test_map_invalid_rejected;
      case "export/import roundtrip" test_export_roundtrip;
      case "sram not exportable" test_export_rejects_sram;
      case "mapped circuit estimates" test_mapped_circuit_estimates;
    ] )
