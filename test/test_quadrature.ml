open Rgleak_num
open Testutil

let test_gl_polynomial_exactness () =
  (* order-n Gauss-Legendre is exact for degree 2n-1 *)
  let f x = (5.0 *. (x ** 7.0)) -. (3.0 *. (x ** 4.0)) +. x -. 2.0 in
  (* exact integral on [0,2]: 5*2^8/8 - 3*2^5/5 + 2^2/2 - 4 *)
  let exact = (5.0 *. 256.0 /. 8.0) -. (3.0 *. 32.0 /. 5.0) +. 2.0 -. 4.0 in
  check_rel ~tol:1e-13 "order 4 exact for degree 7" exact
    (Quadrature.gauss_legendre ~order:4 f ~lo:0.0 ~hi:2.0)

let test_gl_known_integrals () =
  check_rel ~tol:1e-12 "sin on [0,pi]" 2.0
    (Quadrature.gauss_legendre sin ~lo:0.0 ~hi:Float.pi);
  check_rel ~tol:1e-12 "exp on [0,1]" (Float.exp 1.0 -. 1.0)
    (Quadrature.gauss_legendre exp ~lo:0.0 ~hi:1.0);
  check_rel ~tol:1e-10 "gaussian mass" 1.0
    (Quadrature.gauss_legendre Special.normal_pdf ~lo:(-8.0) ~hi:8.0)

let test_gl_reversed_empty () =
  check_close ~tol:1e-15 "zero-width interval" 0.0
    (Quadrature.gauss_legendre sin ~lo:1.0 ~hi:1.0)

let test_adaptive_simpson () =
  check_rel ~tol:1e-9 "simpson sin" 2.0
    (Quadrature.adaptive_simpson sin ~lo:0.0 ~hi:Float.pi);
  (* sharp peak: adaptive must resolve it *)
  let peak x = 1.0 /. (1e-4 +. ((x -. 0.37) ** 2.0)) in
  let exact =
    (Float.atan ((1.0 -. 0.37) /. 0.01) +. Float.atan (0.37 /. 0.01)) /. 0.01
  in
  check_rel ~tol:1e-6 "simpson sharp peak" exact
    (Quadrature.adaptive_simpson ~tol:1e-10 peak ~lo:0.0 ~hi:1.0)

let test_gl_matches_simpson =
  qcheck ~count:100 "GL and adaptive Simpson agree on smooth functions"
    QCheck2.Gen.(
      tup3 (float_range 0.1 3.0) (float_range (-2.0) 2.0) (float_range 0.5 2.0))
    (fun (a, b, w) ->
      let f x = exp (-.a *. x *. x) *. cos (b *. x) in
      let gl = Quadrature.gauss_legendre ~order:64 f ~lo:(-.w) ~hi:w in
      let si = Quadrature.adaptive_simpson ~tol:1e-12 f ~lo:(-.w) ~hi:w in
      Float.abs (gl -. si) < 1e-8 *. Float.max 1.0 (Float.abs gl))

let test_gl_2d () =
  check_rel ~tol:1e-12 "xy on unit square" 0.25
    (Quadrature.gauss_legendre_2d
       (fun x y -> x *. y)
       ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0);
  (* separable gaussian *)
  let f x y = Special.normal_pdf x *. Special.normal_pdf y in
  check_rel ~tol:1e-9 "2d gaussian mass" 1.0
    (Quadrature.gauss_legendre_2d ~order:96 f ~x_lo:(-8.0) ~x_hi:8.0
       ~y_lo:(-8.0) ~y_hi:8.0)

let test_gl_2d_paper_kernel () =
  (* the Eq. 20 kernel with rho = 1 has a closed form:
     4/A^2 * int (W-x)(H-y) = 4/A^2 * W^2/2 * H^2/2 = 1 *)
  let w = 100.0 and h = 60.0 in
  let integral =
    Quadrature.gauss_legendre_2d
      (fun x y -> (w -. x) *. (h -. y))
      ~x_lo:0.0 ~x_hi:w ~y_lo:0.0 ~y_hi:h
  in
  check_rel ~tol:1e-12 "Eq 20 normalization" 1.0
    (4.0 /. ((w *. h) ** 2.0) *. integral)

let test_nodes_properties () =
  List.iter
    (fun n ->
      let nodes = Quadrature.gauss_legendre_nodes n in
      check_close
        (Printf.sprintf "order %d count" n)
        (float_of_int n)
        (float_of_int (Array.length nodes));
      let wsum = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 nodes in
      check_rel ~tol:1e-12
        (Printf.sprintf "order %d weights sum to 2" n)
        2.0 wsum;
      Array.iter
        (fun (x, w) ->
          check_in_range "node in (-1,1)" ~lo:(-1.0) ~hi:1.0 x;
          check_true "positive weight" (w > 0.0))
        nodes)
    [ 1; 2; 3; 5; 16; 64; 128 ]

let test_trapezoid_convergence () =
  let coarse = Quadrature.trapezoid sin ~lo:0.0 ~hi:Float.pi ~n:16 in
  let fine = Quadrature.trapezoid sin ~lo:0.0 ~hi:Float.pi ~n:1024 in
  check_true "trapezoid converges toward 2"
    (Float.abs (fine -. 2.0) < Float.abs (coarse -. 2.0));
  check_rel ~tol:1e-5 "fine trapezoid" 2.0 fine

let suite =
  ( "quadrature",
    [
      case "polynomial exactness" test_gl_polynomial_exactness;
      case "known integrals" test_gl_known_integrals;
      case "degenerate interval" test_gl_reversed_empty;
      case "adaptive simpson" test_adaptive_simpson;
      test_gl_matches_simpson;
      case "2d tensor rule" test_gl_2d;
      case "Eq 20 kernel normalization" test_gl_2d_paper_kernel;
      case "node properties" test_nodes_properties;
      case "trapezoid" test_trapezoid_convergence;
    ] )
