open Rgleak_num
open Testutil

let test_erf_values () =
  (* reference values from Abramowitz & Stegun *)
  check_close ~tol:2e-7 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~tol:2e-7 "erf 0.5" 0.5204998778 (Special.erf 0.5);
  check_close ~tol:2e-7 "erf 1" 0.8427007929 (Special.erf 1.0);
  check_close ~tol:2e-7 "erf 2" 0.9953222650 (Special.erf 2.0);
  check_close ~tol:2e-7 "erf -1" (-0.8427007929) (Special.erf (-1.0))

let test_erfc_large () =
  check_true "erfc stays positive for large x" (Special.erfc 10.0 > 0.0);
  check_true "erfc tiny for large x" (Special.erfc 10.0 < 1e-40);
  check_close ~tol:1e-7 "erfc(-x) = 2 - erfc(x)" 2.0
    (Special.erfc 3.0 +. Special.erfc (-3.0))

let test_cdf_values () =
  check_close ~tol:1e-7 "cdf 0" 0.5 (Special.normal_cdf 0.0);
  check_close ~tol:1e-7 "cdf 1.96" 0.9750021049 (Special.normal_cdf 1.96);
  check_close ~tol:1e-7 "cdf -1.96" 0.0249978951 (Special.normal_cdf (-1.96))

let test_pdf () =
  check_close ~tol:1e-12 "pdf 0" (1.0 /. sqrt (2.0 *. Float.pi))
    (Special.normal_pdf 0.0);
  check_rel ~tol:1e-12 "pdf symmetric" (Special.normal_pdf 1.3)
    (Special.normal_pdf (-1.3))

let test_quantile_known () =
  check_close ~tol:1e-7 "quantile 0.5" 0.0 (Special.normal_quantile 0.5);
  check_close ~tol:1e-6 "quantile 0.975" 1.9599639845 (Special.normal_quantile 0.975);
  check_close ~tol:1e-6 "quantile 0.025" (-1.9599639845) (Special.normal_quantile 0.025);
  check_close ~tol:1e-5 "quantile 0.999" 3.0902323062 (Special.normal_quantile 0.999)

let test_quantile_roundtrip =
  qcheck ~count:500 "cdf (quantile p) = p"
    QCheck2.Gen.(float_range 1e-6 (1.0 -. 1e-6))
    (fun p ->
      let x = Special.normal_quantile p in
      Float.abs (Special.normal_cdf x -. p) < 1e-7)

let test_quantile_domain () =
  Alcotest.check_raises "quantile rejects 0"
    (Invalid_argument "Special.normal_quantile: argument must be in (0,1)")
    (fun () -> ignore (Special.normal_quantile 0.0));
  Alcotest.check_raises "quantile rejects 1"
    (Invalid_argument "Special.normal_quantile: argument must be in (0,1)")
    (fun () -> ignore (Special.normal_quantile 1.0))

(* Reference survival-function values computed with 50-digit erfc
   (mpmath-style evaluation of Q(x) = erfc(x/sqrt 2)/2).  The erfc
   engine is the NR Chebyshev fit, so the checks run at its documented
   ~1.2e-7 *relative* accuracy — the point being that the error stays
   relative all the way into the deep tail, where an absolute-accuracy
   path through the CDF loses every significant digit. *)
let test_sf_values () =
  check_rel ~tol:2e-7 "sf 0" 0.5 (Special.normal_sf 0.0);
  check_rel ~tol:2e-7 "sf 0.5" 0.3085375387259869 (Special.normal_sf 0.5);
  check_rel ~tol:2e-7 "sf 1" 0.15865525393145707 (Special.normal_sf 1.0);
  check_rel ~tol:2e-7 "sf 2" 0.02275013194817922 (Special.normal_sf 2.0);
  check_rel ~tol:2e-7 "sf 3" 0.0013498980316300957 (Special.normal_sf 3.0);
  check_rel ~tol:2e-7 "sf 4" 3.1671241833119965e-05 (Special.normal_sf 4.0);
  check_rel ~tol:2e-7 "sf 6" 9.865876450377012e-10 (Special.normal_sf 6.0);
  check_rel ~tol:2e-7 "sf 8" 6.220960574271819e-16 (Special.normal_sf 8.0);
  check_rel ~tol:2e-7 "sf 10" 7.619853024160593e-24 (Special.normal_sf 10.0);
  check_rel ~tol:2e-7 "sf 20" 2.7536241186063314e-89 (Special.normal_sf 20.0);
  check_rel ~tol:2e-7 "sf -1" 0.8413447460685429 (Special.normal_sf (-1.0));
  check_rel ~tol:2e-7 "sf -3" 0.9986501019683699 (Special.normal_sf (-3.0))

(* The naive 1 - cdf(x) dies at x ~ 8.3 where the cdf rounds to 1;
   normal_sf must keep full relative precision far beyond. *)
let test_sf_beats_cdf_complement () =
  check_true "1 - cdf underflows at 9" (1.0 -. Special.normal_cdf 9.0 = 0.0);
  check_true "sf still accurate at 9" (Special.normal_sf 9.0 > 1e-19);
  check_true "sf positive at 35" (Special.normal_sf 35.0 > 0.0);
  check_true "sf monotone deep" (Special.normal_sf 30.0 > Special.normal_sf 35.0)

let test_tail_quantile_known () =
  check_close ~tol:1e-7 "tail quantile 0.5" 0.0 (Special.normal_tail_quantile 0.5);
  check_rel ~tol:2e-7 "tail quantile 0.025" 1.9599639845400545
    (Special.normal_tail_quantile 0.025);
  check_rel ~tol:1e-12 "tail quantile matches quantile in the bulk"
    (Special.normal_quantile 0.9) (-.Special.normal_tail_quantile 0.9)

let test_tail_quantile_roundtrip =
  (* log-uniform tail probabilities down to 1e-280: sf (tail_quantile q)
     must reproduce q to high relative accuracy -- exactly the regime
     where normal_quantile's absolute tolerance is useless. *)
  qcheck ~count:500 "sf (tail_quantile q) = q into the deep tail"
    QCheck2.Gen.(float_range (-280.0) (-1.0))
    (fun lq ->
      let q = 10.0 ** lq in
      let x = Special.normal_tail_quantile q in
      let q' = Special.normal_sf x in
      Float.abs (q' -. q) /. q < 1e-9)

let test_tail_quantile_domain () =
  Alcotest.check_raises "tail quantile rejects 0"
    (Invalid_argument "Special.normal_tail_quantile: argument must be in (0,1)")
    (fun () -> ignore (Special.normal_tail_quantile 0.0));
  Alcotest.check_raises "tail quantile rejects 1"
    (Invalid_argument "Special.normal_tail_quantile: argument must be in (0,1)")
    (fun () -> ignore (Special.normal_tail_quantile 1.0))

let test_log_sum_exp () =
  check_close ~tol:1e-12 "lse of single" 3.0 (Special.log_sum_exp [| 3.0 |]);
  check_close ~tol:1e-12 "lse of equal pair" (log 2.0)
    (Special.log_sum_exp [| 0.0; 0.0 |]);
  (* huge magnitudes must not overflow *)
  check_close ~tol:1e-9 "lse large args" (1000.0 +. log 2.0)
    (Special.log_sum_exp [| 1000.0; 1000.0 |]);
  check_close ~tol:1e-12 "lse dominated" 500.0
    (Special.log_sum_exp [| 500.0; -500.0 |])

let test_lse_matches_direct =
  qcheck ~count:300 "lse matches direct computation for small args"
    QCheck2.Gen.(list_size (int_range 1 10) (float_range (-5.0) 5.0))
    (fun xs ->
      let a = Array.of_list xs in
      let direct = log (Array.fold_left (fun acc x -> acc +. exp x) 0.0 a) in
      Float.abs (Special.log_sum_exp a -. direct) < 1e-9)

let suite =
  ( "special",
    [
      case "erf values" test_erf_values;
      case "erfc large arguments" test_erfc_large;
      case "normal cdf values" test_cdf_values;
      case "normal pdf" test_pdf;
      case "quantile known values" test_quantile_known;
      test_quantile_roundtrip;
      case "quantile domain" test_quantile_domain;
      case "survival function reference values" test_sf_values;
      case "survival function deep-tail precision" test_sf_beats_cdf_complement;
      case "tail quantile known values" test_tail_quantile_known;
      test_tail_quantile_roundtrip;
      case "tail quantile domain" test_tail_quantile_domain;
      case "log-sum-exp" test_log_sum_exp;
      test_lse_matches_direct;
    ] )
