open Rgleak_num
open Testutil

let test_erf_values () =
  (* reference values from Abramowitz & Stegun *)
  check_close ~tol:2e-7 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~tol:2e-7 "erf 0.5" 0.5204998778 (Special.erf 0.5);
  check_close ~tol:2e-7 "erf 1" 0.8427007929 (Special.erf 1.0);
  check_close ~tol:2e-7 "erf 2" 0.9953222650 (Special.erf 2.0);
  check_close ~tol:2e-7 "erf -1" (-0.8427007929) (Special.erf (-1.0))

let test_erfc_large () =
  check_true "erfc stays positive for large x" (Special.erfc 10.0 > 0.0);
  check_true "erfc tiny for large x" (Special.erfc 10.0 < 1e-40);
  check_close ~tol:1e-7 "erfc(-x) = 2 - erfc(x)" 2.0
    (Special.erfc 3.0 +. Special.erfc (-3.0))

let test_cdf_values () =
  check_close ~tol:1e-7 "cdf 0" 0.5 (Special.normal_cdf 0.0);
  check_close ~tol:1e-7 "cdf 1.96" 0.9750021049 (Special.normal_cdf 1.96);
  check_close ~tol:1e-7 "cdf -1.96" 0.0249978951 (Special.normal_cdf (-1.96))

let test_pdf () =
  check_close ~tol:1e-12 "pdf 0" (1.0 /. sqrt (2.0 *. Float.pi))
    (Special.normal_pdf 0.0);
  check_rel ~tol:1e-12 "pdf symmetric" (Special.normal_pdf 1.3)
    (Special.normal_pdf (-1.3))

let test_quantile_known () =
  check_close ~tol:1e-7 "quantile 0.5" 0.0 (Special.normal_quantile 0.5);
  check_close ~tol:1e-6 "quantile 0.975" 1.9599639845 (Special.normal_quantile 0.975);
  check_close ~tol:1e-6 "quantile 0.025" (-1.9599639845) (Special.normal_quantile 0.025);
  check_close ~tol:1e-5 "quantile 0.999" 3.0902323062 (Special.normal_quantile 0.999)

let test_quantile_roundtrip =
  qcheck ~count:500 "cdf (quantile p) = p"
    QCheck2.Gen.(float_range 1e-6 (1.0 -. 1e-6))
    (fun p ->
      let x = Special.normal_quantile p in
      Float.abs (Special.normal_cdf x -. p) < 1e-7)

let test_quantile_domain () =
  Alcotest.check_raises "quantile rejects 0"
    (Invalid_argument "Special.normal_quantile: argument must be in (0,1)")
    (fun () -> ignore (Special.normal_quantile 0.0));
  Alcotest.check_raises "quantile rejects 1"
    (Invalid_argument "Special.normal_quantile: argument must be in (0,1)")
    (fun () -> ignore (Special.normal_quantile 1.0))

let test_log_sum_exp () =
  check_close ~tol:1e-12 "lse of single" 3.0 (Special.log_sum_exp [| 3.0 |]);
  check_close ~tol:1e-12 "lse of equal pair" (log 2.0)
    (Special.log_sum_exp [| 0.0; 0.0 |]);
  (* huge magnitudes must not overflow *)
  check_close ~tol:1e-9 "lse large args" (1000.0 +. log 2.0)
    (Special.log_sum_exp [| 1000.0; 1000.0 |]);
  check_close ~tol:1e-12 "lse dominated" 500.0
    (Special.log_sum_exp [| 500.0; -500.0 |])

let test_lse_matches_direct =
  qcheck ~count:300 "lse matches direct computation for small args"
    QCheck2.Gen.(list_size (int_range 1 10) (float_range (-5.0) 5.0))
    (fun xs ->
      let a = Array.of_list xs in
      let direct = log (Array.fold_left (fun acc x -> acc +. exp x) 0.0 a) in
      Float.abs (Special.log_sum_exp a -. direct) < 1e-9)

let suite =
  ( "special",
    [
      case "erf values" test_erf_values;
      case "erfc large arguments" test_erfc_large;
      case "normal cdf values" test_cdf_values;
      case "normal pdf" test_pdf;
      case "quantile known values" test_quantile_known;
      test_quantile_roundtrip;
      case "quantile domain" test_quantile_domain;
      case "log-sum-exp" test_log_sum_exp;
      test_lse_matches_direct;
    ] )
