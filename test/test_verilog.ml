(* Tests for the structural-Verilog reader/writer. *)

open Rgleak_num
open Rgleak_cells
open Rgleak_circuit
open Testutil

let tiny_src =
  {|
// comment
module top (a, b, y);
  input a, b;
  output y;
  wire n1; /* block
              comment */
  INV_X1   u1 (.Z(n1), .A(a));
  NAND2_X1 u2 (.Z(y), .A(n1), .B(b));
endmodule
|}

let test_parse_tiny () =
  let m = Verilog.parse_string tiny_src in
  check_true "module name" (m.Verilog.name = "top");
  check_true "ports" (m.Verilog.ports = [ "a"; "b"; "y" ]);
  check_true "inputs" (m.Verilog.inputs = [ "a"; "b" ]);
  check_true "outputs" (m.Verilog.outputs = [ "y" ]);
  check_true "wires" (m.Verilog.wires = [ "n1" ]);
  check_close "two instances" 2.0 (float_of_int (List.length m.Verilog.instances))

let test_lower_tiny () =
  let nl = Verilog.to_netlist (Verilog.parse_string tiny_src) in
  check_close "two netlist instances" 2.0 (float_of_int (Netlist.size nl));
  let counts = Netlist.cell_counts nl in
  check_close "one inverter" 1.0 (float_of_int counts.(Library.index_of "INV_X1"));
  check_close "one nand" 1.0 (float_of_int counts.(Library.index_of "NAND2_X1"));
  (* the nand must be driven by the inverter *)
  let nand =
    Array.to_list nl.Netlist.instances
    |> List.find (fun i ->
           Library.cells.(i.Netlist.cell_index).Cell.name = "NAND2_X1")
  in
  check_true "nand reads the inverter output"
    (Array.exists (fun f -> f >= 0) nand.Netlist.fanin)

let test_positional_connections () =
  let src =
    "module m (a, y);\n input a;\n output y;\n INV_X1 u1 (y, a);\nendmodule\n"
  in
  let nl = Verilog.to_netlist (Verilog.parse_string src) in
  check_close "positional instance lowered" 1.0 (float_of_int (Netlist.size nl))

let test_parse_errors () =
  let expect_parse_error s =
    try
      ignore (Verilog.parse_string s);
      false
    with Verilog.Parse_error _ -> true
  in
  check_true "vectors rejected"
    (expect_parse_error "module m (a);\n input [3:0] a;\nendmodule\n");
  check_true "missing semicolon"
    (expect_parse_error "module m (a)\n input a;\nendmodule\n");
  check_true "garbage rejected" (expect_parse_error "hello\n");
  check_true "unterminated comment" (expect_parse_error "module m (); /* oops")

let test_semantic_errors () =
  let expect_invalid s =
    try
      ignore (Verilog.to_netlist (Verilog.parse_string s));
      false
    with Invalid_argument _ -> true
  in
  check_true "unknown cell"
    (expect_invalid
       "module m (a, y);\n input a;\n output y;\n FROB_X1 u1 (.Z(y), .A(a));\nendmodule\n");
  check_true "undriven net"
    (expect_invalid
       "module m (y);\n output y;\n INV_X1 u1 (.Z(y), .A(ghost));\nendmodule\n");
  check_true "no output port"
    (expect_invalid
       "module m (a, y);\n input a;\n output y;\n INV_X1 u1 (.A(a), .B(y));\nendmodule\n");
  check_true "combinational cycle"
    (expect_invalid
       "module m (x, y);\n output x, y;\n INV_X1 u1 (.Z(x), .A(y));\n INV_X1 u2 (.Z(y), .A(x));\nendmodule\n")

let test_sequential_cycle_ok () =
  let src =
    "module m (a, q);\n input a;\n output q;\n wire w;\n\
     DFF_X1 u1 (.Q(q), .A(w));\n NAND2_X1 u2 (.Z(w), .A(a), .B(q));\nendmodule\n"
  in
  let nl = Verilog.to_netlist (Verilog.parse_string src) in
  check_close "flop loop lowered" 2.0 (float_of_int (Netlist.size nl))

let test_roundtrip_generated =
  qcheck ~count:20 "generated netlists roundtrip through Verilog"
    QCheck2.Gen.(QCheck2.Gen.pair (int_range 10 200) (int_range 0 500))
    (fun (n, seed) ->
      let rng = Rng.create ~seed () in
      let h =
        Histogram.of_weights
          [ ("INV_X1", 2.0); ("NAND2_X1", 3.0); ("NOR3_X1", 1.0);
            ("XOR2_X1", 1.0); ("DFF_X1", 1.0); ("AOI22_X1", 1.0) ]
      in
      let gen = Generator.random_netlist ~histogram:h ~n ~rng () in
      let text = Verilog.to_string (Verilog.of_netlist gen) in
      let back = Verilog.to_netlist (Verilog.parse_string text) in
      Netlist.size back = n && Netlist.cell_counts back = Netlist.cell_counts gen)

let test_print_stability () =
  let m = Verilog.parse_string tiny_src in
  let printed = Verilog.to_string m in
  let reparsed = Verilog.parse_string printed in
  check_true "printer output reparses to the same module"
    (Verilog.to_string reparsed = printed)

let suite =
  ( "verilog",
    [
      case "parse tiny module" test_parse_tiny;
      case "lower tiny module" test_lower_tiny;
      case "positional connections" test_positional_connections;
      case "parse errors" test_parse_errors;
      case "semantic errors" test_semantic_errors;
      case "sequential cycle" test_sequential_cycle_ok;
      test_roundtrip_generated;
      case "printer stability" test_print_stability;
    ] )
