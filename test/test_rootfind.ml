open Rgleak_num
open Testutil

let test_bisect_known () =
  check_close ~tol:1e-9 "root of cos x - x" 0.7390851332
    (Rootfind.bisect (fun x -> cos x -. x) ~lo:0.0 ~hi:1.0);
  check_close ~tol:1e-9 "sqrt 2 via x^2-2" (sqrt 2.0)
    (Rootfind.bisect (fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0)

let test_bisect_endpoint_roots () =
  check_close "root at lo" 0.0 (Rootfind.bisect (fun x -> x) ~lo:0.0 ~hi:1.0);
  check_close "root at hi" 1.0
    (Rootfind.bisect (fun x -> x -. 1.0) ~lo:0.0 ~hi:1.0)

let test_bisect_no_bracket () =
  check_true "no bracket raises"
    (try
       ignore (Rootfind.bisect (fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:1.0);
       false
     with Rootfind.No_bracket -> true)

let test_brent_known () =
  check_close ~tol:1e-9 "brent cos x - x" 0.7390851332
    (Rootfind.brent (fun x -> cos x -. x) ~lo:0.0 ~hi:1.0);
  check_close ~tol:1e-8 "brent cube root" (Float.cbrt 5.0)
    (Rootfind.brent (fun x -> (x ** 3.0) -. 5.0) ~lo:0.0 ~hi:3.0)

let test_brent_stiff () =
  (* exponential-dominated function like the stack-solver continuity
     equations: f(v) = e^{-20 v} - e^{-20 (1 - v)} has root at 0.5 *)
  let f v = exp (-20.0 *. v) -. exp (-20.0 *. (1.0 -. v)) in
  check_close ~tol:1e-9 "stiff symmetric root" 0.5
    (Rootfind.brent f ~lo:0.0 ~hi:1.0)

let test_brent_matches_bisect =
  qcheck ~count:200 "brent agrees with bisect on random cubics"
    QCheck2.Gen.(
      tup3 (float_range (-2.0) 2.0) (float_range (-2.0) 2.0)
        (float_range (-2.0) 2.0))
    (fun (a, b, c) ->
      (* f(x) = x^3 + a x^2 + b x + c on a wide bracket; skip when no
         sign change *)
      let f x = (x ** 3.0) +. (a *. x *. x) +. (b *. x) +. c in
      let lo = -10.0 and hi = 10.0 in
      if f lo *. f hi > 0.0 then true
      else begin
        let rb = Rootfind.brent f ~lo ~hi in
        let rbi = Rootfind.bisect f ~lo ~hi in
        (* cubics may have multiple roots; both must at least be roots *)
        Float.abs (f rb) < 1e-6 && Float.abs (f rbi) < 1e-6
      end)

let test_newton () =
  check_close ~tol:1e-9 "newton sqrt 2" (sqrt 2.0)
    (Rootfind.newton
       ~f:(fun x -> (x *. x) -. 2.0)
       ~df:(fun x -> 2.0 *. x)
       1.0);
  check_true "newton zero derivative fails"
    (try
       ignore (Rootfind.newton ~f:(fun _ -> 1.0) ~df:(fun _ -> 0.0) 0.0);
       false
     with Failure _ -> true)

let suite =
  ( "rootfind",
    [
      case "bisect known roots" test_bisect_known;
      case "bisect endpoint roots" test_bisect_endpoint_roots;
      case "bisect no bracket" test_bisect_no_bracket;
      case "brent known roots" test_brent_known;
      case "brent stiff exponential" test_brent_stiff;
      test_brent_matches_bisect;
      case "newton" test_newton;
    ] )
