open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length

(* Shared reduced-cost characterization over the full library. *)
let chars =
  lazy
    (let rng = Rng.create ~seed:88 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:49 ~mc_samples:1000 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let corr_linear = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let hist_small =
  lazy
    (Histogram.of_weights
       [ ("NAND2_X1", 3.0); ("INV_X1", 2.0); ("NOR2_X1", 1.0); ("DFF_X1", 1.0) ])

let rg_small ?(p = 0.5) () =
  Random_gate.create ~chars:(Lazy.force chars) ~histogram:(Lazy.force hist_small)
    ~p ()

(* ---- random gate (Eqs. 6-8) ---- *)

let test_rg_weights_sum () =
  let rg = rg_small () in
  let total =
    Array.fold_left
      (fun acc (c : Random_gate.component) -> acc +. c.Random_gate.weight)
      0.0 rg.Random_gate.components
  in
  check_close ~tol:1e-9 "expanded weights sum to 1" 1.0 total

let test_rg_mean_hand_computed () =
  (* Eq. 7 against a hand-computed weighting on a 2-cell histogram *)
  let chars = Lazy.force chars in
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("NAND2_X1", 3.0) ] in
  let rg = Random_gate.create ~chars ~histogram:h ~p:0.5 () in
  let inv = chars.(Library.index_of "INV_X1") in
  let nand = chars.(Library.index_of "NAND2_X1") in
  let mu_inv =
    0.5 *. (inv.Characterize.states.(0).Characterize.mu_analytic
            +. inv.Characterize.states.(1).Characterize.mu_analytic)
  in
  let mu_nand =
    Array.fold_left
      (fun acc (sc : Characterize.state_char) ->
        acc +. (0.25 *. sc.Characterize.mu_analytic))
      0.0 nand.Characterize.states
  in
  check_rel ~tol:1e-9 "Eq. 7 mean" ((0.25 *. mu_inv) +. (0.75 *. mu_nand))
    rg.Random_gate.mu

let test_rg_second_moment () =
  (* Eq. 8: E[X^2] >= mu^2 always, and variance consistent *)
  let rg = rg_small () in
  check_true "second moment dominates mean squared"
    (rg.Random_gate.second_moment >= rg.Random_gate.mu *. rg.Random_gate.mu);
  check_rel ~tol:1e-12 "variance identity"
    (rg.Random_gate.second_moment -. (rg.Random_gate.mu *. rg.Random_gate.mu))
    rg.Random_gate.variance

let test_rg_variance_exceeds_type_mixture () =
  (* mixing distinct cell types adds variance: RG variance must exceed
     the weighted within-type variance *)
  let rg = rg_small () in
  let within =
    Array.fold_left
      (fun acc (c : Random_gate.component) ->
        acc +. (c.Random_gate.weight *. c.Random_gate.sigma *. c.Random_gate.sigma))
      0.0 rg.Random_gate.components
  in
  check_true "type randomness adds variance" (rg.Random_gate.variance >= within -. 1e-9)

let test_rg_full_library_check () =
  let rg =
    Random_gate.create ~chars:(Lazy.force chars) ~histogram:(Histogram.uniform ())
      ~p:0.5 ()
  in
  check_true "positive mean" (rg.Random_gate.mu > 0.0);
  check_true "many expanded components" (Random_gate.num_components rg > 200)

let test_rg_requires_full_library () =
  Alcotest.check_raises "partial characterization rejected"
    (Invalid_argument "Random_gate.create: expected a full-library characterization")
    (fun () ->
      ignore
        (Random_gate.create
           ~chars:(Array.sub (Lazy.force chars) 0 3)
           ~histogram:(Lazy.force hist_small) ~p:0.5 ()))

(* ---- correlation structure (Eqs. 9-11) ---- *)

let rgcorr_small ?mapping () =
  let rg = rg_small () in
  Rg_correlation.create ?mapping ~chars:(Lazy.force chars) ~rg ~p:0.5 ()

let test_f_endpoints () =
  let rc = rgcorr_small () in
  check_close ~tol:1e-6 "F(0) = 0 (independent lengths)" 0.0
    (Rg_correlation.f rc ~rho_l:0.0 /. (Rg_correlation.rg rc).Random_gate.variance);
  let f1 = Rg_correlation.f rc ~rho_l:1.0 in
  check_true "F(1) positive" (f1 > 0.0);
  check_true "F(1) below total variance (type randomness excluded)"
    (f1 <= (Rg_correlation.rg rc).Random_gate.variance +. 1e-9)

let test_f_monotone () =
  let rc = rgcorr_small () in
  let prev = ref neg_infinity in
  for k = 0 to 20 do
    let rho = float_of_int k /. 20.0 in
    let f = Rg_correlation.f rc ~rho_l:rho in
    check_true "F monotone in rho" (f >= !prev -. 1e-12);
    prev := f
  done

let test_simplified_vs_exact_close () =
  (* the paper's 3.1.2 check: the simplified mapping changes the chip
     standard deviation by only a few percent (pointwise F differences
     at low rho are larger but carry little weight) *)
  let exact = rgcorr_small ~mapping:Rg_correlation.Exact () in
  let simpl = rgcorr_small ~mapping:Rg_correlation.Simplified () in
  let layout = Layout.square ~n:900 () in
  let std_of rgcorr =
    (Estimator_linear.estimate ~corr:corr_linear ~rgcorr ~layout ())
      .Estimator_linear.std
  in
  check_rel ~tol:0.05 "chip std with simplified mapping (< 2.8% in paper)"
    (std_of exact) (std_of simpl);
  (* pointwise the two mappings stay in the same ballpark *)
  List.iter
    (fun rho ->
      let fe = Rg_correlation.f exact ~rho_l:rho in
      let fs = Rg_correlation.f simpl ~rho_l:rho in
      check_rel ~tol:0.15
        (Printf.sprintf "pointwise F at rho %.2f" rho)
        fe fs)
    [ 0.3; 0.5; 0.7; 0.9 ]

let test_simplified_is_linear () =
  let simpl = rgcorr_small ~mapping:Rg_correlation.Simplified () in
  let f_half = Rg_correlation.f simpl ~rho_l:0.5 in
  let f_one = Rg_correlation.f simpl ~rho_l:1.0 in
  check_rel ~tol:1e-9 "simplified F linear in rho" (0.5 *. f_one) f_half;
  let sb = Rg_correlation.sigma_bar simpl in
  check_rel ~tol:1e-9 "simplified F(1) = sigma_bar^2" (sb *. sb) f_one

let test_cell_pair_covariance_support () =
  let rc = rgcorr_small () in
  let i_inv = Library.index_of "INV_X1" in
  let i_and3 = Library.index_of "AND3_X1" in
  check_true "support includes histogram cells" (Rg_correlation.in_support rc i_inv);
  check_true "non-histogram cells outside support"
    (not (Rg_correlation.in_support rc i_and3));
  Alcotest.check_raises "outside support raises"
    (Invalid_argument "Rg_correlation.cell_pair_covariance: cell outside support")
    (fun () ->
      ignore (Rg_correlation.cell_pair_covariance rc ~ci:i_and3 ~cj:i_inv ~rho_l:0.5))

let test_f_aggregates_pairs () =
  (* F(rho) must equal the alpha-weighted sum of cell-pair covariances *)
  let rc = rgcorr_small () in
  let h = Lazy.force hist_small in
  let cells = Histogram.support h in
  let rho = 0.6 in
  let agg = ref 0.0 in
  List.iter
    (fun ci ->
      List.iter
        (fun cj ->
          agg :=
            !agg
            +. (Histogram.frequency h ci *. Histogram.frequency h cj
               *. Rg_correlation.cell_pair_covariance rc ~ci ~cj ~rho_l:rho))
        cells)
    cells;
  check_rel ~tol:1e-9 "F equals weighted pair sum" !agg
    (Rg_correlation.f rc ~rho_l:rho)

(* ---- estimators ---- *)

let make_placed ~n ~seed =
  let rng = Rng.create ~seed () in
  Generator.random_placed ~histogram:(Lazy.force hist_small) ~n ~rng ()

let ctx () =
  Estimate.context ~p:0.5 ~chars:(Lazy.force chars) ~corr:corr_linear
    ~histogram:(Lazy.force hist_small) ()

let test_linear_matches_bruteforce_sum () =
  (* Eq. 17 must reproduce the naive double sum over sites exactly *)
  let c = ctx () in
  let rgcorr = Estimate.correlation c in
  let rg = Estimate.random_gate c in
  let layout = Layout.square ~n:37 () in
  let r = Estimator_linear.estimate ~corr:corr_linear ~rgcorr ~layout () in
  (* naive O(n^2) over sites with the same RG quantities *)
  let n = Layout.site_count layout in
  let brute = ref 0.0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a = b then brute := !brute +. rg.Random_gate.variance
      else begin
        let xa, ya = Layout.position layout a in
        let xb, yb = Layout.position layout b in
        let d = sqrt (((xa -. xb) ** 2.0) +. ((ya -. yb) ** 2.0)) in
        let rho_l = Corr_model.total corr_linear d in
        brute := !brute +. Rg_correlation.f rgcorr ~rho_l
      end
    done
  done;
  check_rel ~tol:1e-9 "Eq 17 equals brute-force site sum" !brute
    r.Estimator_linear.variance;
  check_rel ~tol:1e-12 "Eq 13 mean" (float_of_int n *. rg.Random_gate.mu)
    r.Estimator_linear.mean

let test_integral_close_to_linear_large_n () =
  (* Fig. 7: integral converges to the linear sum as n grows *)
  let c = ctx () in
  let rgcorr = Estimate.correlation c in
  let err_at n =
    let layout = Layout.square ~n () in
    let lin = Estimator_linear.estimate ~corr:corr_linear ~rgcorr ~layout () in
    let integ =
      Estimator_integral.rect_2d ~corr:corr_linear ~rgcorr ~n
        ~width:(Layout.width layout) ~height:(Layout.height layout) ()
    in
    Float.abs
      ((sqrt integ.Estimator_integral.variance
       -. sqrt lin.Estimator_linear.variance)
      /. sqrt lin.Estimator_linear.variance)
  in
  let e_small = err_at 100 in
  let e_large = err_at 4900 in
  check_true "error shrinks with n" (e_large < e_small);
  check_true "large-n error below 1%" (e_large < 0.01)

let test_polar_matches_rect () =
  (* when applicable, the polar single integral equals the 2-D one *)
  let c = ctx () in
  let rgcorr = Estimate.correlation c in
  let n = 4900 in
  let layout = Layout.square ~n () in
  let w = Layout.width layout and h = Layout.height layout in
  check_true "polar applicable for this die"
    (Estimator_integral.polar_applicable ~corr:corr_linear ~width:w ~height:h);
  let r2 = Estimator_integral.rect_2d ~corr:corr_linear ~rgcorr ~n ~width:w ~height:h () in
  let rp = Estimator_integral.polar ~corr:corr_linear ~rgcorr ~n ~width:w ~height:h () in
  check_rel ~tol:2e-3 "polar equals rectangular"
    (sqrt r2.Estimator_integral.variance)
    (sqrt rp.Estimator_integral.variance)

let test_polar_2d_matches_rect () =
  (* Eq. 21 is an exact mapping of Eq. 20; the two quadratures agree *)
  let c = ctx () in
  let rgcorr = Estimate.correlation c in
  List.iter
    (fun (n, w, h) ->
      let r2 =
        Estimator_integral.rect_2d ~corr:corr_linear ~rgcorr ~n ~width:w
          ~height:h ()
      in
      let rp =
        Estimator_integral.polar_2d ~corr:corr_linear ~rgcorr ~n ~width:w
          ~height:h ()
      in
      check_rel ~tol:2e-3
        (Printf.sprintf "Eq 21 vs Eq 20 at n=%d %gx%g" n w h)
        (sqrt r2.Estimator_integral.variance)
        (sqrt rp.Estimator_integral.variance))
    [ (400, 80.0, 80.0); (2500, 200.0, 50.0); (10_000, 400.0, 400.0) ]

let test_finite_size_bound () =
  check_rel ~tol:1e-9 "2% at ten thousand gates" 0.02
    (Estimate.finite_size_error_bound ~n:10_000);
  check_true "monotone decreasing"
    (Estimate.finite_size_error_bound ~n:100_000
    < Estimate.finite_size_error_bound ~n:10_000);
  check_in_range "covers the measured Fig 6 band at 11236 gates" ~lo:0.015
    ~hi:0.05
    (Estimate.finite_size_error_bound ~n:11_236);
  check_true "invalid n rejected"
    (try
       ignore (Estimate.finite_size_error_bound ~n:0);
       false
     with Invalid_argument _ -> true)

let test_polar_rejects_wide_correlation () =
  let c = ctx () in
  let rgcorr = Estimate.correlation c in
  let expo = Corr_model.create (Corr_model.Exponential { range = 100.0 }) param in
  check_true "exponential never admissible"
    (not (Estimator_integral.polar_applicable ~corr:expo ~width:1000.0 ~height:1000.0));
  check_true "polar raises when inapplicable"
    (try
       ignore
         (Estimator_integral.polar ~corr:expo ~rgcorr ~n:100 ~width:1000.0
            ~height:1000.0 ());
       false
     with Invalid_argument _ -> true)

let test_exact_vs_rg_small_circuit () =
  (* Fig. 6 in miniature: a specific random circuit's true leakage is
     close to the RG estimate, within a finite-size tolerance *)
  let c = ctx () in
  let placed = make_placed ~n:400 ~seed:21 in
  let tr = Estimator_exact.estimate ~corr:corr_linear ~rgcorr:(Estimate.correlation c) placed in
  let spec = Estimate.spec_of_placed placed in
  let rg_est = Estimate.run ~method_:Estimate.Linear c spec in
  check_rel ~tol:0.02 "means agree" rg_est.Estimate.mean tr.Estimator_exact.mean;
  check_rel ~tol:0.10 "stds agree within finite-size error"
    rg_est.Estimate.std tr.Estimator_exact.std

let test_exact_convergence_with_n () =
  (* the paper's thesis: the RG error shrinks as circuits grow *)
  let c = ctx () in
  let err_at ~n ~seed =
    let placed = make_placed ~n ~seed in
    let tr = Estimator_exact.estimate ~corr:corr_linear ~rgcorr:(Estimate.correlation c) placed in
    let rg_est = Estimate.run ~method_:Estimate.Linear c (Estimate.spec_of_placed placed) in
    Float.abs ((tr.Estimator_exact.std -. rg_est.Estimate.std) /. rg_est.Estimate.std)
  in
  let small = err_at ~n:64 ~seed:31 in
  let large = err_at ~n:1600 ~seed:32 in
  check_true "relative std error shrinks with circuit size" (large < small)

let test_estimate_api () =
  let c = ctx () in
  let spec =
    { Estimate.histogram = Lazy.force hist_small; n = 900; width = 120.0; height = 120.0 }
  in
  let r = Estimate.run c spec in
  check_true "auto picks linear for small n"
    (r.Estimate.method_used = "linear (Eq. 17)");
  let big = { spec with Estimate.n = 250_000; width = 2000.0; height = 2000.0 } in
  let rb = Estimate.run c big in
  check_true "auto picks an integral for large n"
    (rb.Estimate.method_used <> "linear (Eq. 17)");
  check_true "positive estimates" (r.Estimate.mean > 0.0 && r.Estimate.std > 0.0)

let test_estimate_histogram_guard () =
  let c = ctx () in
  let spec =
    { Estimate.histogram = Histogram.uniform (); n = 100; width = 40.0; height = 40.0 }
  in
  check_true "mismatched histogram rejected"
    (try
       ignore (Estimate.run c spec);
       false
     with Invalid_argument _ -> true)

let test_vt_factors () =
  let f = Vt_correction.mean_factor () in
  check_true "mean factor above 1" (f > 1.0);
  check_true "mean factor modest" (f < 2.0);
  let v = Vt_correction.per_gate_variance_multiplier () in
  check_true "variance multiplier positive" (v > 0.0);
  (* larger sigma_vt, larger factor *)
  check_true "factor monotone in sigma"
    (Vt_correction.mean_factor ~sigma_vt:0.05 () > f)

let test_vt_ratio_shrinks () =
  let c = ctx () in
  let rg = Estimate.random_gate c in
  let rgcorr = Estimate.correlation c in
  let ratio n =
    Vt_correction.variance_ratio ~rg ~rgcorr ~corr:corr_linear
      ~layout:(Layout.square ~n ()) ()
  in
  let r100 = ratio 100 and r10000 = ratio 10_000 in
  check_true "Vt variance share vanishes with n" (r10000 < r100);
  check_true "Vt share negligible at 10k gates" (r10000 < 0.05)

let test_vt_flavor_triples () =
  let open Vt_correction in
  check_true "offsets ordered around SVT"
    (vth_offset Lvt < 0.0 && vth_offset Svt = 0.0 && vth_offset Hvt > 0.0);
  check_true "SVT scale is exactly one" (leakage_scale Svt = 1.0);
  check_true "LVT leaks more, HVT less"
    (leakage_scale Lvt > 1.0
    && leakage_scale Hvt > 0.0
    && leakage_scale Hvt < 1.0);
  check_true "delay ordering is the leakage ordering reversed"
    (delay_factor Lvt < delay_factor Svt && delay_factor Svt < delay_factor Hvt);
  Array.iteri
    (fun i f ->
      check_true "flavor_index is the array position" (flavor_index f = i);
      check_true "name round-trips" (flavor_of_string (flavor_name f) = Some f);
      check_true "parse is case-insensitive"
        (flavor_of_string (String.uppercase_ascii (flavor_name f)) = Some f))
    all_flavors;
  check_true "unknown flavor rejected" (flavor_of_string "xvt" = None);
  (* Per cell type: the flavored mean-leakage triple keeps the
     LVT > SVT > HVT ordering, with every flavor still positive. *)
  let c = ctx () in
  let rg = Estimate.random_gate c in
  Array.iteri
    (fun ci cell ->
      let mu = Random_gate.mean_of_cell rg ci in
      check_true (cell.Cell.name ^ ": positive SVT mean") (mu > 0.0);
      let l = mu *. leakage_scale Lvt
      and s = mu *. leakage_scale Svt
      and h = mu *. leakage_scale Hvt in
      check_true (cell.Cell.name ^ ": LVT > SVT > HVT > 0")
        (l > s && s > h && h > 0.0))
    Library.cells

let test_vt_ratio_sigma_regression () =
  (* The regression the flavor work depends on: variance_ratio must be
     strictly positive, monotone in σ_vt, and pinned against the
     closed-form n·E[μ²]·Var(factor) / chip-variance construction. *)
  let c = ctx () in
  let rg = Estimate.random_gate c in
  let rgcorr = Estimate.correlation c in
  let layout = Layout.square ~n:400 () in
  let ratio sigma_vt =
    Vt_correction.variance_ratio ~rg ~rgcorr ~corr:corr_linear ~layout
      ~sigma_vt ()
  in
  let r_small = ratio 0.015 and r_default = ratio 0.025 and r_big = ratio 0.05 in
  check_true "ratio positive" (r_small > 0.0);
  check_true "ratio monotone in sigma_vt"
    (r_small < r_default && r_default < r_big);
  let lin =
    Estimator_linear.estimate ~corr:corr_linear
      ~rgcorr:(Estimate.correlation c) ~layout ()
  in
  let expected =
    Vt_correction.chip_variance_from_vt ~rg ~n:400 ~sigma_vt:0.025 ()
    /. lin.Estimator_linear.variance
  in
  check_rel ~tol:1e-12 "ratio matches its closed-form construction" expected
    r_default

let test_with_vt_applies_factor () =
  let c = ctx () in
  let spec =
    { Estimate.histogram = Lazy.force hist_small; n = 400; width = 80.0; height = 80.0 }
  in
  let base = Estimate.run c spec in
  let vt = Estimate.run ~with_vt:true c spec in
  check_rel ~tol:1e-12 "vt factor applied to mean"
    (base.Estimate.mean *. base.Estimate.vt_mean_factor)
    vt.Estimate.mean

let suite =
  ( "core",
    [
      case "rg weights sum to 1" test_rg_weights_sum;
      case "rg mean (Eq. 7)" test_rg_mean_hand_computed;
      case "rg second moment (Eq. 8)" test_rg_second_moment;
      case "rg type-mixture variance" test_rg_variance_exceeds_type_mixture;
      case "rg over full library" test_rg_full_library_check;
      case "rg library check" test_rg_requires_full_library;
      case "F endpoints" test_f_endpoints;
      case "F monotone" test_f_monotone;
      case "simplified vs exact mapping (3.1.2)" test_simplified_vs_exact_close;
      case "simplified mapping is linear" test_simplified_is_linear;
      case "pair covariance support" test_cell_pair_covariance_support;
      case "F aggregates cell pairs (Eq. 10)" test_f_aggregates_pairs;
      slow_case "Eq. 17 equals brute force" test_linear_matches_bruteforce_sum;
      slow_case "integral converges to linear (Fig. 7)"
        test_integral_close_to_linear_large_n;
      slow_case "polar equals rectangular" test_polar_matches_rect;
      slow_case "Eq 21 equals Eq 20" test_polar_2d_matches_rect;
      case "finite-size error bound" test_finite_size_bound;
      case "polar applicability" test_polar_rejects_wide_correlation;
      slow_case "true leakage vs RG estimate" test_exact_vs_rg_small_circuit;
      slow_case "convergence with circuit size (Fig. 6)"
        test_exact_convergence_with_n;
      case "estimate API method selection" test_estimate_api;
      case "estimate histogram guard" test_estimate_histogram_guard;
      case "vt correction factors" test_vt_factors;
      slow_case "vt variance ratio shrinks (E9)" test_vt_ratio_shrinks;
      case "vt flavor triples (LVT/SVT/HVT)" test_vt_flavor_triples;
      case "vt variance_ratio regression" test_vt_ratio_sigma_regression;
      case "with_vt applies the factor" test_with_vt_applies_factor;
    ] )
