(* Tests for the Chang-Sapatnekar grid/PCA baseline and its substrate
   (Jacobi eigendecomposition, grid variable model). *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Rgleak_baseline
open Testutil

let param = Process_param.default_channel_length
let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

(* ---- eigen ---- *)

let gen_spd =
  QCheck2.Gen.(
    int_range 2 12 >>= fun n ->
    list_repeat (n * n) (float_range (-2.0) 2.0) >|= fun entries ->
    let b =
      Matrix.init ~rows:n ~cols:n (fun i j -> List.nth entries ((i * n) + j))
    in
    Matrix.add
      (Matrix.mul b (Matrix.transpose b))
      (Matrix.scale 0.01 (Matrix.identity n)))

let test_eigen_reconstruction =
  qcheck ~count:60 "V diag(l) V' reconstructs the matrix" gen_spd (fun a ->
      let d = Eigen.symmetric a in
      Matrix.max_abs_diff a (Eigen.reconstruct d) < 1e-8)

let test_eigen_orthonormal =
  qcheck ~count:60 "eigenvectors orthonormal" gen_spd (fun a ->
      let d = Eigen.symmetric a in
      let n = Matrix.rows a in
      let vtv =
        Matrix.mul (Matrix.transpose d.Eigen.eigenvectors) d.Eigen.eigenvectors
      in
      Matrix.max_abs_diff vtv (Matrix.identity n) < 1e-10)

let test_eigen_descending =
  qcheck ~count:60 "eigenvalues sorted descending" gen_spd (fun a ->
      let d = Eigen.symmetric a in
      let ok = ref true in
      Array.iteri
        (fun i l -> if i > 0 && l > d.Eigen.eigenvalues.(i - 1) +. 1e-12 then ok := false)
        d.Eigen.eigenvalues;
      !ok)

let test_eigen_known () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1 *)
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let d = Eigen.symmetric a in
  check_close ~tol:1e-10 "lambda max" 3.0 d.Eigen.eigenvalues.(0);
  check_close ~tol:1e-10 "lambda min" 1.0 d.Eigen.eigenvalues.(1)

let test_eigen_validation () =
  check_true "non-symmetric rejected"
    (try
       ignore (Eigen.symmetric (Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 1.0 |] |]));
       false
     with Invalid_argument _ -> true)

let test_principal_components () =
  (* rank-1 matrix: one component carries everything *)
  let a = Matrix.of_arrays [| [| 4.0; 4.0 |]; [| 4.0; 4.0 |] |] in
  let d = Eigen.symmetric a in
  check_close "rank-1 needs one component" 1.0
    (float_of_int (Eigen.principal_components d))

(* ---- grid model ---- *)

let model = lazy (Grid_model.build ~grid:6 ~corr ~width:240.0 ~height:240.0 ())

let test_grid_covariance_diagonal () =
  let m = Lazy.force model in
  let sigma2 = Process_param.variance_total param in
  for r = 0 to Grid_model.num_regions m - 1 do
    check_rel ~tol:5e-3
      (Printf.sprintf "region %d variance preserved" r)
      sigma2
      (Grid_model.covariance m r r)
  done

let test_grid_covariance_matches_corr () =
  let m = Lazy.force model in
  (* adjacent region centers are 40 um apart on this grid *)
  let expected = Process_param.variance_total param *. Corr_model.total corr 40.0 in
  check_rel ~tol:1e-2 "neighbor covariance from rho(d)" expected
    (Grid_model.covariance m 0 1)

let test_grid_region_lookup () =
  let m = Lazy.force model in
  check_close "origin in region 0" 0.0
    (float_of_int (Grid_model.region_of_position m ~x:1.0 ~y:1.0));
  check_close "far corner in last region" 35.0
    (float_of_int (Grid_model.region_of_position m ~x:239.0 ~y:239.0));
  check_close "coordinates clamp" 35.0
    (float_of_int (Grid_model.region_of_position m ~x:1e9 ~y:1e9))

let test_grid_sampling_statistics () =
  let m = Lazy.force model in
  let rng = Rng.create ~seed:44 () in
  let acc0 = Stats.Acc.create () in
  let cov01 = Stats.Cov_acc.create () in
  for _ = 1 to 30_000 do
    let field = Grid_model.sample m rng in
    Stats.Acc.add acc0 field.(0);
    Stats.Cov_acc.add cov01 field.(0) field.(1)
  done;
  check_close ~tol:0.1 "sampled mean zero" 0.0 (Stats.Acc.mean acc0);
  check_rel ~tol:0.03 "sampled variance" (Process_param.variance_total param)
    (Stats.Acc.variance acc0);
  check_rel ~tol:0.05 "sampled neighbor covariance"
    (Grid_model.covariance m 0 1)
    (Stats.Cov_acc.covariance cov01)

(* ---- chang-sapatnekar ---- *)

let chars = lazy (Characterize.default_library ())

let cs_and_true =
  lazy
    (let chars = Lazy.force chars in
     let placed = Benchmarks.placed (Benchmarks.find "c880") in
     let cs = Chang_sapatnekar.analyze ~chars ~corr placed in
     let tr = Estimate.true_leakage ~chars ~corr placed in
     (cs, tr))

let test_cs_mean_close () =
  let cs, tr = Lazy.force cs_and_true in
  (* first-order linearization loses the curvature mass: a few percent
     low, never high *)
  let err = (cs.Chang_sapatnekar.mean -. tr.Estimate.mean) /. tr.Estimate.mean in
  check_in_range "CS mean low by 0..6%" ~lo:(-0.06) ~hi:0.001 err

let test_cs_std_ballpark () =
  let cs, tr = Lazy.force cs_and_true in
  let err = (cs.Chang_sapatnekar.std -. tr.Estimate.std) /. tr.Estimate.std in
  check_in_range "CS sigma within the known first-order band" ~lo:(-0.20)
    ~hi:0.02 err

let test_cs_distribution_consistent () =
  let cs, _ = Lazy.force cs_and_true in
  let d = cs.Chang_sapatnekar.distribution in
  check_rel ~tol:1e-9 "distribution mean matches" cs.Chang_sapatnekar.mean
    d.Distribution.mean;
  check_rel ~tol:1e-9 "distribution std matches" cs.Chang_sapatnekar.std
    d.Distribution.std

let test_cs_grid_insensitive_when_corr_wide () =
  (* with dmax comparable to the die, grid refinement barely moves sigma *)
  let chars = Lazy.force chars in
  let placed = Benchmarks.placed (Benchmarks.find "c432") in
  let at grid = (Chang_sapatnekar.analyze ~grid ~chars ~corr placed).Chang_sapatnekar.std in
  check_rel ~tol:0.02 "grid 4 vs 16" (at 4) (at 16)

let test_cs_report_fields () =
  let cs, _ = Lazy.force cs_and_true in
  check_true "groups formed" (cs.Chang_sapatnekar.groups > 0);
  check_true "components retained" (cs.Chang_sapatnekar.components >= 1)

(* ---- quadtree model ---- *)

let qt = lazy (Quadtree_model.build ~levels:5 ~corr ~width:240.0 ~height:240.0 ())

let test_qt_variances () =
  let m = Lazy.force qt in
  let total = Array.fold_left ( +. ) 0.0 m.Quadtree_model.level_variance in
  check_rel ~tol:1e-9 "level variances sum to total" total
    (Process_param.variance_total param);
  Array.iter
    (fun v -> check_true "non-negative level variance" (v >= 0.0))
    m.Quadtree_model.level_variance

let test_qt_correlation_properties () =
  let m = Lazy.force qt in
  check_rel ~tol:1e-9 "same point fully correlated" 1.0
    (Quadtree_model.correlation m ~x1:10.0 ~y1:10.0 ~x2:10.0 ~y2:10.0);
  let c = Quadtree_model.correlation m ~x1:10.0 ~y1:10.0 ~x2:230.0 ~y2:230.0 in
  check_in_range "far corners keep only coarse levels" ~lo:0.0 ~hi:0.7 c

let test_qt_correlation_monotone_levels () =
  (* same finest cell implies full correlation *)
  let m = Lazy.force qt in
  let cell_w = 240.0 /. 16.0 in
  let c =
    Quadtree_model.correlation m ~x1:(cell_w *. 0.3) ~y1:(cell_w *. 0.3)
      ~x2:(cell_w *. 0.6) ~y2:(cell_w *. 0.6)
  in
  check_rel ~tol:1e-9 "same finest cell fully correlated" 1.0 c

let test_qt_tracks_target () =
  let m = Lazy.force qt in
  let rms = Quadtree_model.correlation_error m corr ~samples:3000 ~seed:31 in
  check_in_range "quadtree approximates rho(d) coarsely" ~lo:0.0 ~hi:0.2 rms

let test_qt_cell_of () =
  let m = Lazy.force qt in
  check_close "level 0 has one cell" 0.0
    (float_of_int (Quadtree_model.cell_of m ~level:0 ~x:239.0 ~y:239.0));
  check_close "finest far corner" 255.0
    (float_of_int (Quadtree_model.cell_of m ~level:4 ~x:239.0 ~y:239.0))

let test_ar_matches_cs_family () =
  (* the two baselines share the gate model; their results must agree
     with each other within the correlation-model difference *)
  let chars = Lazy.force chars in
  let placed = Benchmarks.placed (Benchmarks.find "c880") in
  let cs = Chang_sapatnekar.analyze ~chars ~corr placed in
  let ar = Agarwal_roy.analyze ~chars ~corr placed in
  check_rel ~tol:1e-3 "identical means (same gate model)"
    cs.Chang_sapatnekar.mean ar.Agarwal_roy.mean;
  check_rel ~tol:0.08 "sigmas agree across correlation models"
    cs.Chang_sapatnekar.std ar.Agarwal_roy.std;
  check_true "quadtree rms reported" (ar.Agarwal_roy.correlation_rms > 0.0)

let test_ar_sigma_band () =
  let chars = Lazy.force chars in
  let placed = Benchmarks.placed (Benchmarks.find "c1908") in
  let ar = Agarwal_roy.analyze ~chars ~corr placed in
  let tr = Estimate.true_leakage ~chars ~corr placed in
  let err = (ar.Agarwal_roy.std -. tr.Estimate.std) /. tr.Estimate.std in
  check_in_range "AR sigma in the first-order band" ~lo:(-0.20) ~hi:0.02 err

let suite =
  ( "baseline",
    [
      test_eigen_reconstruction;
      test_eigen_orthonormal;
      test_eigen_descending;
      case "known eigenvalues" test_eigen_known;
      case "eigen validation" test_eigen_validation;
      case "principal components" test_principal_components;
      case "grid covariance diagonal" test_grid_covariance_diagonal;
      case "grid covariance vs rho" test_grid_covariance_matches_corr;
      case "grid region lookup" test_grid_region_lookup;
      slow_case "grid sampling statistics" test_grid_sampling_statistics;
      slow_case "CS mean close to true" test_cs_mean_close;
      slow_case "CS sigma in first-order band" test_cs_std_ballpark;
      slow_case "CS distribution consistency" test_cs_distribution_consistent;
      slow_case "CS grid insensitivity" test_cs_grid_insensitive_when_corr_wide;
      slow_case "CS report fields" test_cs_report_fields;
      case "quadtree level variances" test_qt_variances;
      case "quadtree correlation properties" test_qt_correlation_properties;
      case "quadtree same-cell correlation" test_qt_correlation_monotone_levels;
      case "quadtree tracks target" test_qt_tracks_target;
      case "quadtree cell lookup" test_qt_cell_of;
      slow_case "AR consistent with CS" test_ar_matches_cs_family;
      slow_case "AR sigma band" test_ar_sigma_band;
    ] )
