(* Edge cases and error paths across the libraries: input validation,
   degenerate sizes, and pretty-printer smoke tests. *)

open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
open Rgleak_core
open Testutil

let param = Process_param.default_channel_length
let corr = Corr_model.create (Corr_model.Spherical { dmax = 120.0 }) param

let small_chars =
  lazy
    (let rng = Rng.create ~seed:2222 () in
     Array.map
       (fun cell ->
         Characterize.characterize ~l_points:17 ~mc_samples:50 ~param
           ~rng:(Rng.split rng) cell)
       Library.cells)

let expect_invalid name f =
  check_true name
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* ---- numerics ---- *)

let test_quadrature_low_orders () =
  (* order 1 (midpoint-like) integrates linear functions exactly *)
  check_rel ~tol:1e-12 "order 1 on linear" 4.0
    (Quadrature.gauss_legendre ~order:1 (fun x -> 2.0 *. x) ~lo:0.0 ~hi:2.0);
  check_rel ~tol:1e-12 "order 2 on cubic" 4.0
    (Quadrature.gauss_legendre ~order:2 (fun x -> x ** 3.0) ~lo:0.0 ~hi:2.0)

let test_matrix_symmetry_predicate () =
  check_true "symmetric detected"
    (Matrix.is_symmetric (Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 3.0 |] |]));
  check_true "asymmetric detected"
    (not
       (Matrix.is_symmetric
          (Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 3.0 |] |])));
  check_true "non-square not symmetric"
    (not (Matrix.is_symmetric (Matrix.create ~rows:2 ~cols:3)))

let test_vector_edges () =
  expect_invalid "dot dimension mismatch" (fun () ->
      Vector.dot [| 1.0 |] [| 1.0; 2.0 |]);
  let y = [| 1.0 |] in
  Vector.axpy ~alpha:0.0 [| 5.0 |] y;
  check_close "axpy with zero alpha" 1.0 y.(0)

let test_interp_two_points () =
  let t = Interp.of_points [| (0.0, 1.0); (1.0, 3.0) |] in
  check_close ~tol:1e-12 "minimal table interpolates" 2.0 (Interp.eval t 0.5);
  check_true "to_points roundtrip" (Interp.to_points t = [| (0.0, 1.0); (1.0, 3.0) |])

(* ---- circuit ---- *)

let test_histogram_errors () =
  expect_invalid "of_counts wrong length" (fun () -> Histogram.of_counts [| 1; 2 |]);
  expect_invalid "of_weights all zero" (fun () ->
      Histogram.of_weights [ ("INV_X1", 0.0) ]);
  expect_invalid "negative weight" (fun () ->
      Histogram.of_weights [ ("INV_X1", -1.0) ])

let test_generator_errors () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:1 () in
  expect_invalid "non-positive size" (fun () ->
      Generator.random_netlist ~histogram:h ~n:0 ~rng ())

let test_layout_single_site () =
  let l = Layout.square ~n:1 () in
  check_close "one site" 1.0 (float_of_int (Layout.site_count l));
  check_close "occ(0,0) = 1" 1.0 (float_of_int (Layout.occurrences l ~di:0 ~dj:0));
  check_close "occ(1,0) = 0" 0.0 (float_of_int (Layout.occurrences l ~di:1 ~dj:0));
  check_true "totals hold for n=1" (Layout.check_occurrence_total l)

let test_single_gate_estimate () =
  (* the whole pipeline must survive n = 1 *)
  let chars = Lazy.force small_chars in
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let spec = { Estimate.histogram = h; n = 1; width = 4.0; height = 4.0 } in
  let r = Estimate.early ~p:0.5 ~method_:Estimate.Linear ~chars ~corr spec in
  let inv = chars.(Library.index_of "INV_X1") in
  let mu =
    0.5
    *. (inv.Characterize.states.(0).Characterize.mu_analytic
       +. inv.Characterize.states.(1).Characterize.mu_analytic)
  in
  check_rel ~tol:1e-9 "single-gate mean is the cell mean" mu r.Estimate.mean;
  check_true "single-gate sigma positive" (r.Estimate.std > 0.0)

(* ---- core ---- *)

let test_cross_rg_validation () =
  let chars = Lazy.force small_chars in
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rg_a = Random_gate.create ~chars ~histogram:h ~p:0.5 () in
  (* different length statistics *)
  let other_param =
    Process_param.make ~name:"other" ~nominal:65.0 ~sigma_d2d:2.0 ~sigma_wid:2.0
  in
  let rng = Rng.create ~seed:9 () in
  let other_chars =
    Array.map
      (fun cell ->
        Characterize.characterize ~l_points:9 ~mc_samples:20 ~param:other_param
          ~rng:(Rng.split rng) cell)
      Library.cells
  in
  let rg_b = Random_gate.create ~chars:other_chars ~histogram:h ~p:0.5 () in
  expect_invalid "cross-RG with mismatched length stats" (fun () ->
      Rg_correlation.create_cross ~rg_a ~rg_b ())

let test_estimator_validation () =
  let chars = Lazy.force small_chars in
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let ctx = Estimate.context ~p:0.5 ~chars ~corr ~histogram:h () in
  expect_invalid "non-positive gate count" (fun () ->
      Estimate.run ctx { Estimate.histogram = h; n = 0; width = 1.0; height = 1.0 });
  expect_invalid "integral with bad dims" (fun () ->
      Estimator_integral.rect_2d ~corr ~rgcorr:(Estimate.correlation ctx) ~n:10
        ~width:0.0 ~height:1.0 ())

let test_distribution_validation () =
  expect_invalid "non-positive mean" (fun () ->
      Distribution.of_moments ~mean:0.0 ~std:1.0 ());
  expect_invalid "negative std" (fun () ->
      Distribution.of_moments ~mean:1.0 ~std:(-1.0) ());
  let d = Distribution.of_moments ~mean:10.0 ~std:0.0 () in
  check_close ~tol:1e-9 "zero-spread cdf step" 1.0 (Distribution.cdf d 11.0);
  expect_invalid "quantile at 0" (fun () -> Distribution.quantile d 0.0)

let test_map_tile_bounds () =
  let chars = Lazy.force small_chars in
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rg = Random_gate.create ~chars ~histogram:h ~p:0.5 () in
  let map =
    Leakage_map.compute ~tiles:3 ~samples:20 ~rg ~corr ~n:90 ~width:40.0
      ~height:40.0 ()
  in
  expect_invalid "tile out of range" (fun () -> Leakage_map.tile map ~ix:3 ~iy:0)

(* ---- printers (smoke) ---- *)

let test_pretty_printers () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let chars = Lazy.force small_chars in
  let h = Histogram.of_weights [ ("INV_X1", 1.0); ("NAND2_X1", 1.0) ] in
  let spec = { Estimate.histogram = h; n = 100; width = 40.0; height = 40.0 } in
  let r = Estimate.early ~p:0.5 ~method_:Estimate.Linear ~chars ~corr spec in
  Estimate.pp_result fmt r;
  Format.fprintf fmt "@.";
  Process_param.pp fmt param;
  Format.fprintf fmt "@.";
  Corr_model.pp fmt corr;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  check_true "printers produced text" (String.length s > 40);
  check_true "result mentions the method"
    (let rec contains i =
       i + 6 <= String.length s && (String.sub s i 6 = "linear" || contains (i + 1))
     in
     contains 0)

let test_netlist_pp () =
  let h = Histogram.of_weights [ ("INV_X1", 1.0) ] in
  let rng = Rng.create ~seed:2 () in
  let nl = Generator.random_netlist ~histogram:h ~n:10 ~rng () in
  let s = Format.asprintf "%a" Netlist.pp_summary nl in
  check_true "netlist summary mentions gate count"
    (let rec contains i =
       i + 2 <= String.length s && (String.sub s i 2 = "10" || contains (i + 1))
     in
     contains 0)

let suite =
  ( "edge_cases",
    [
      case "low-order quadrature" test_quadrature_low_orders;
      case "matrix symmetry predicate" test_matrix_symmetry_predicate;
      case "vector edges" test_vector_edges;
      case "two-point interpolation" test_interp_two_points;
      case "histogram errors" test_histogram_errors;
      case "generator errors" test_generator_errors;
      case "single-site layout" test_layout_single_site;
      case "single-gate estimate" test_single_gate_estimate;
      case "cross-RG validation" test_cross_rg_validation;
      case "estimator validation" test_estimator_validation;
      case "distribution validation" test_distribution_validation;
      case "map tile bounds" test_map_tile_bounds;
      case "pretty printers" test_pretty_printers;
      case "netlist summary" test_netlist_pp;
    ] )
