open Rgleak_num
open Testutil

let test_vector_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  check_close ~tol:1e-12 "dot" 32.0 (Vector.dot x y);
  check_close ~tol:1e-12 "norm" (sqrt 14.0) (Vector.norm2 x);
  check_close ~tol:1e-12 "add" 9.0 (Vector.add x y).(2);
  check_close ~tol:1e-12 "sub" (-3.0) (Vector.sub x y).(0);
  check_close ~tol:1e-12 "scale" 6.0 (Vector.scale 2.0 x).(2);
  let y' = Vector.copy y in
  Vector.axpy ~alpha:2.0 x y';
  check_close ~tol:1e-12 "axpy" 12.0 y'.(2)

let test_linspace () =
  let v = Vector.linspace 0.0 1.0 5 in
  check_close ~tol:1e-15 "first" 0.0 v.(0);
  check_close ~tol:1e-15 "last exactly hi" 1.0 v.(4);
  check_close ~tol:1e-15 "step" 0.25 v.(1);
  Alcotest.check_raises "linspace needs 2 points"
    (Invalid_argument "Vector.linspace: need at least two points") (fun () ->
      ignore (Vector.linspace 0.0 1.0 1))

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_close ~tol:1e-12 "mul 00" 19.0 (Matrix.get c 0 0);
  check_close ~tol:1e-12 "mul 01" 22.0 (Matrix.get c 0 1);
  check_close ~tol:1e-12 "mul 10" 43.0 (Matrix.get c 1 0);
  check_close ~tol:1e-12 "mul 11" 50.0 (Matrix.get c 1 1)

let test_matrix_identity =
  qcheck ~count:100 "A * I = A"
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (list_size (int_range 1 6) (float_range (-10.0) 10.0)))
    (fun rows ->
      match rows with
      | [] -> true
      | first :: _ ->
        let cols = List.length first in
        if cols = 0 || List.exists (fun r -> List.length r <> cols) rows then
          true (* skip ragged *)
        else begin
          let a =
            Matrix.of_arrays
              (Array.of_list (List.map Array.of_list rows))
          in
          let prod = Matrix.mul a (Matrix.identity cols) in
          Matrix.max_abs_diff a prod < 1e-12
        end)

let test_transpose () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Matrix.transpose a in
  check_close "t rows" 3.0 (float_of_int (Matrix.rows at));
  check_close "t cols" 2.0 (float_of_int (Matrix.cols at));
  check_close ~tol:1e-12 "t value" 6.0 (Matrix.get at 2 1)

let test_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_close ~tol:1e-12 "mul_vec 0" 3.0 y.(0);
  check_close ~tol:1e-12 "mul_vec 1" 7.0 y.(1)

let test_det_inv_2x2 () =
  let a = Matrix.of_arrays [| [| 3.0; 1.0 |]; [| 2.0; 4.0 |] |] in
  check_close ~tol:1e-12 "det" 10.0 (Matrix.det2 a);
  let inv = Matrix.inv2 a in
  let prod = Matrix.mul a inv in
  check_true "A * A^-1 = I"
    (Matrix.max_abs_diff prod (Matrix.identity 2) < 1e-12)

(* Random SPD matrix: A = B Bᵀ + eps I. *)
let gen_spd =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    list_repeat (n * n) (float_range (-2.0) 2.0) >|= fun entries ->
    let b =
      Matrix.init ~rows:n ~cols:n (fun i j -> List.nth entries ((i * n) + j))
    in
    let a = Matrix.mul b (Matrix.transpose b) in
    Matrix.add a (Matrix.scale 0.1 (Matrix.identity n)))

let test_cholesky_roundtrip =
  qcheck ~count:100 "L Lᵀ reconstructs SPD matrix" gen_spd (fun a ->
      let l = Cholesky.decompose a in
      let recon = Matrix.mul l (Matrix.transpose l) in
      Matrix.max_abs_diff a recon < 1e-8)

let test_cholesky_solve =
  qcheck ~count:100 "solve satisfies A x = b" gen_spd (fun a ->
      let n = Matrix.rows a in
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let l = Cholesky.decompose a in
      let x = Cholesky.solve l b in
      let ax = Matrix.mul_vec a x in
      Vector.max_abs_diff ax b < 1e-6)

let test_cholesky_rejects_indefinite () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  check_true "indefinite raises"
    (try
       ignore (Cholesky.decompose a);
       false
     with Cholesky.Not_positive_definite _ -> true)

let test_cholesky_semidefinite () =
  (* perfectly correlated 2x2: rank 1 *)
  let a = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let l = Cholesky.decompose_semidefinite a in
  let recon = Matrix.mul l (Matrix.transpose l) in
  check_true "semidefinite factor reconstructs" (Matrix.max_abs_diff a recon < 1e-8)

let test_cholesky_sample_covariance () =
  (* sample from a known 2x2 covariance and verify empirically *)
  let cov = Matrix.of_arrays [| [| 2.0; 0.6 |]; [| 0.6; 1.0 |] |] in
  let l = Cholesky.decompose cov in
  let rng = Rng.create ~seed:21 () in
  let acc = Stats.Cov_acc.create () in
  let acc1 = Stats.Acc.create () and acc2 = Stats.Acc.create () in
  for _ = 1 to 100_000 do
    let z = Cholesky.sample l rng in
    Stats.Cov_acc.add acc z.(0) z.(1);
    Stats.Acc.add acc1 z.(0);
    Stats.Acc.add acc2 z.(1)
  done;
  check_rel ~tol:0.03 "sampled var 1" 2.0 (Stats.Acc.variance acc1);
  check_rel ~tol:0.03 "sampled var 2" 1.0 (Stats.Acc.variance acc2);
  check_rel ~tol:0.05 "sampled cov" 0.6 (Stats.Cov_acc.covariance acc)

let test_log_det () =
  let a = Matrix.of_arrays [| [| 4.0; 0.0 |]; [| 0.0; 9.0 |] |] in
  let l = Cholesky.decompose a in
  check_close ~tol:1e-12 "log det" (log 36.0) (Cholesky.log_det l)

let suite =
  ( "linalg",
    [
      case "vector ops" test_vector_ops;
      case "linspace" test_linspace;
      case "matrix multiply" test_matrix_mul;
      test_matrix_identity;
      case "transpose" test_transpose;
      case "matrix-vector" test_mul_vec;
      case "2x2 det and inverse" test_det_inv_2x2;
      test_cholesky_roundtrip;
      test_cholesky_solve;
      case "cholesky rejects indefinite" test_cholesky_rejects_indefinite;
      case "cholesky semidefinite" test_cholesky_semidefinite;
      case "cholesky sampling covariance" test_cholesky_sample_covariance;
      case "log determinant" test_log_det;
    ] )
