(** Cache-backed memoization of the estimator pipeline's shared work.

    Three artifact kinds are content-addressed in a {!Cache.t}:

    - [chars] — full-library characterization tables
      ({!Rgleak_cells.Characterize.characterize_library}), serialized
      through {!Rgleak_cells.Char_io} (whose [%.17g] text format
      round-trips every float bit-for-bit);
    - [rgcorr] — the RG correlation structure's F and per-cell-pair
      covariance tables ({!Rgleak_core.Rg_correlation.tables});
    - [linmemo] — the linear estimator's per-offset F memo
      ({!Rgleak_core.Estimator_linear.memo}).

    Floats inside the [rgcorr]/[linmemo] payloads are printed as hex
    float literals ([%h]), so a cache hit replays the {e identical}
    bits the cold run computed — cached and uncached runs are
    bit-identical by construction.

    Every deserializer is defensive: a payload that passed the store's
    integrity check but no longer parses (e.g. written by code with a
    mismatched notion of the format, which the kind version should
    prevent) is treated as a miss and recomputed — the cache never
    turns into a crash or a wrong result. *)

val library_fingerprint : unit -> string
(** Digest of the compiled-in cell library's structure (names, state
    counts, input counts) — part of every key, so a library change
    invalidates all dependent entries. *)

val chars_key_parts : temp_celsius:float option -> string list
(** Canonical key parts identifying a library characterization:
    library fingerprint, process parameter, characterization settings
    and the (optional) junction temperature. *)

val characterization :
  ?cache:Cache.t ->
  ?jobs:int ->
  temp_celsius:float option ->
  unit ->
  Rgleak_cells.Characterize.cell_char array
(** The default-settings library characterization at the given
    temperature ([None] = the default 300 K library), loaded from the
    cache when possible, else computed (on the shared pool) and
    stored. *)

val correlation :
  ?cache:Cache.t ->
  ?mapping:Rgleak_core.Rg_correlation.mapping ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  rg:Rgleak_core.Random_gate.t ->
  p:float ->
  key_parts:string list ->
  unit ->
  Rgleak_core.Rg_correlation.t
(** The RG correlation structure for [rg]: tables restored from the
    cache when possible, else tabulated ({!Rgleak_core.Rg_correlation.create})
    and stored.  [key_parts] must canonically identify (characterization,
    cell mix, signal probability, RG mode, mapping) — the batch engine
    derives them from the scenario. *)

val delta_tables :
  ?cache:Cache.t ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rgleak_core.Rg_correlation.t ->
  used:int array ->
  distance_points:int ->
  dstep:float ->
  key_parts:string list ->
  unit ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The packed per-(type-pair, distance-bin) covariance tables the
    delta estimator stages
    ({!Rgleak_core.Rg_correlation.binned_pair_tables}): restored from
    the cache when possible, else computed and stored.  The key closes
    over every input of the computation — the correlation structure's
    {!Rgleak_core.Rg_correlation.table_fingerprint}, the bin geometry
    ([distance_points], [dstep]), the [used] cell set — plus
    [key_parts], which must name the spatial correlation model.
    Payload floats are hex literals, so warm and cold runs hand the
    delta estimator bit-identical tables. *)

val with_linear_memo :
  ?cache:Cache.t ->
  key_parts:string list ->
  rows:int ->
  cols:int ->
  (Rgleak_core.Estimator_linear.memo -> 'a) ->
  'a
(** Runs the continuation with a linear-estimator F memo for the given
    layout shape: pre-filled from the cache on a hit, empty otherwise.
    On a miss the filled memo is stored after the continuation returns
    normally (never after an exception, so a poisoned run cannot
    persist poison).  [key_parts] must identify (correlation structure,
    correlation model, layout shape). *)
