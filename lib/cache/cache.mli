(** Content-addressed on-disk result cache.

    The paper's thesis is that leakage statistics are a function of a
    small set of high-level characteristics — which makes most of the
    expensive work (library characterization, correlation-function
    tables, linear-estimator F memos) {e shared} across the many
    scenario evaluations a sign-off or design-space sweep performs.
    This store memoizes those artifacts on disk, keyed by a stable
    content hash of the canonical inputs.

    {b Addressing.}  {!key} hashes a list of canonical string parts
    (length-prefixed, so part boundaries are unambiguous) with MD5 —
    stable across process restarts, platforms and OCaml versions.
    Entries are further namespaced by a [kind] and an integer
    [version]: bumping the version of a kind invalidates every entry
    of that kind without touching others.

    {b Failure semantics.}  The cache is an accelerator, never an
    authority: corrupt entries (truncation, bit rot, a stale writer —
    detected by a payload digest recorded in the entry header) are
    deleted, surfaced through the [on_corrupt] callback as a typed
    {!Rgleak_num.Guard.diagnostic}, and treated as misses so callers
    recompute.  Write failures (read-only directory, disk full) are
    swallowed and counted; a run with a broken cache directory
    degrades to uncached speed but never crashes or changes results.
    The ["cache"] {!Rgleak_num.Guard.Fault} site deterministically
    forces reads down the corrupt path for testing.

    {b Eviction.}  By default the store only grows.  Opening with
    [~cap_bytes] turns on a least-recently-used size cap: the handle
    indexes every entry on open (recency seeded from file mtimes) and,
    after each write, evicts the coldest entries until total on-disk
    bytes fit the cap.  Hits refresh recency (in memory, and
    best-effort on the file mtime so recency survives restarts).
    Eviction only ever runs inside {!put} and never selects the entry
    just written, so a payload returned by {!get} is always a complete
    read — an entry is never deleted mid-read through its own handle.
    A concurrent reader in another process at worst sees a miss and
    recomputes; correctness never depends on an entry staying.

    {b Counters.}  Hits, misses, corruption events, evictions and byte
    traffic are kept per handle ({!stats}) and mirrored into
    {!Rgleak_obs.Obs} counters ([cache.hits], [cache.misses],
    [cache.corrupt], [cache.bytes_read], [cache.bytes_written],
    [cache.put_errors], [cache.evictions], [cache.bytes_evicted]) so
    they land in [--metrics-json] exports.

    Handles must be driven from one domain at a time (the batch engine
    runs scenarios sequentially; pool workers never touch the cache). *)

type t

type stats = {
  hits : int;
  misses : int;
  corrupt : int;  (** entries rejected by the integrity check *)
  put_errors : int;  (** failed writes (swallowed) *)
  bytes_read : int;  (** payload bytes of successful hits *)
  bytes_written : int;  (** payload bytes of successful puts *)
  evictions : int;  (** entries removed by the LRU size cap *)
  bytes_evicted : int;  (** on-disk bytes of evicted entries *)
}

val default_dir : unit -> string
(** [$RGLEAK_CACHE_DIR], else [$XDG_CACHE_HOME/rgleak], else
    [$HOME/.cache/rgleak], else [_rgleak_cache] in the working
    directory. *)

val open_ :
  ?on_corrupt:(Rgleak_num.Guard.diagnostic -> unit) ->
  ?cap_bytes:int ->
  dir:string ->
  unit ->
  t
(** A handle rooted at [dir] (created lazily on first write).
    [on_corrupt] (default: ignore) observes every integrity failure.
    [cap_bytes] (default: unbounded) caps total on-disk entry bytes
    (header + payload) with LRU eviction; the single entry most
    recently written is exempt, so a cap smaller than one entry still
    admits that entry. *)

val dir : t -> string

val total_bytes : t -> int
(** Indexed on-disk entry bytes.  Always [0] when the handle was
    opened without [cap_bytes] (no index is maintained). *)

val key : string list -> string
(** Stable content hash (32 hex chars) of the canonical parts.  Parts
    are length-prefixed before hashing, so [["ab"; "c"]] and
    [["a"; "bc"]] address different entries. *)

val get : t -> kind:string -> version:int -> key:string -> string option
(** The stored payload, or [None] on miss or on a corrupt entry (which
    is deleted and reported). *)

val put : t -> kind:string -> version:int -> key:string -> string -> unit
(** Stores a payload (atomic write-then-rename; concurrent writers of
    the same key are idempotent because content-addressing makes their
    payloads identical).  Failures are swallowed and counted. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zeroes the per-handle counters (the mirrored {!Rgleak_obs.Obs}
    counters are managed by that library's [reset]). *)
