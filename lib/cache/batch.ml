module Guard = Rgleak_num.Guard
module Rng = Rgleak_num.Rng
module Parallel = Rgleak_num.Parallel
module Corr_model = Rgleak_process.Corr_model
module Process_param = Rgleak_process.Process_param
module Characterize = Rgleak_cells.Characterize
module Library = Rgleak_cells.Library
module Signal_prob = Rgleak_cells.Signal_prob
module Histogram = Rgleak_circuit.Histogram
module Layout = Rgleak_circuit.Layout
module Generator = Rgleak_circuit.Generator
module Placer = Rgleak_circuit.Placer
module Random_gate = Rgleak_core.Random_gate
module Estimate = Rgleak_core.Estimate
module Estimator_exact = Rgleak_core.Estimator_exact
module Mc_reference = Rgleak_core.Mc_reference
module Tail = Rgleak_core.Tail
module Vt_correction = Rgleak_core.Vt_correction
module Vjson = Rgleak_valid.Vjson
module Obs = Rgleak_obs.Obs

type tier = Auto | Linear | Integral_2d | Integral_polar | Exact | Mc | Tail

type scenario = {
  s_id : string;
  s_line : int;
  s_n : int;
  s_mix : (string * float) list;
  s_family : Corr_model.wid_family;
  s_p : float option;
  s_tier : tier;
  s_seed : int;
  s_aspect : float;
  s_dims : (float * float) option;
  s_vt : bool;
  s_replicas : int;
  s_temp : float option;
  s_budget : float option;
  s_shift : float option;
}

let tier_name = function
  | Auto -> "auto"
  | Linear -> "linear"
  | Integral_2d -> "int2d"
  | Integral_polar -> "polar"
  | Exact -> "exact"
  | Mc -> "mc"
  | Tail -> "tail"

let () =
  Obs.declare_hist ~owner:"batch" "batch.scenario_s";
  List.iter
    (fun t -> Obs.declare_hist ~owner:"batch" ("batch.tier." ^ t ^ "_s"))
    [ "auto"; "linear"; "int2d"; "polar"; "exact"; "mc"; "tail" ]

let tier_of_name line = function
  | "auto" -> Auto
  | "linear" -> Linear
  | "int2d" -> Integral_2d
  | "polar" -> Integral_polar
  | "exact" -> Exact
  | "mc" -> Mc
  | "tail" -> Tail
  | s ->
    Guard.invalid
      (Printf.sprintf
         "manifest line %d: unknown tier %S (want auto, linear, int2d, \
          polar, exact, mc or tail)"
         line s)

(* Canonical spellings use hex floats so a key never depends on decimal
   rendering quirks. *)
let family_canon = function
  | Corr_model.Linear { dmax } -> Printf.sprintf "linear:%h" dmax
  | Corr_model.Spherical { dmax } -> Printf.sprintf "spherical:%h" dmax
  | Corr_model.Exponential { range } -> Printf.sprintf "exp:%h" range
  | Corr_model.Gaussian { range } -> Printf.sprintf "gauss:%h" range
  | Corr_model.Truncated_exponential { range; dmax } ->
    Printf.sprintf "texp:%h:%h" range dmax

let mix_canon mix =
  List.sort compare mix
  |> List.map (fun (name, w) -> Printf.sprintf "%s:%h" name w)
  |> String.concat ","

let p_canon = function None -> "auto" | Some p -> Printf.sprintf "%h" p

let geom_canon s =
  match s.s_dims with
  | Some (w, h) -> Printf.sprintf "dims:%h:%h" w h
  | None -> Printf.sprintf "aspect:%h" s.s_aspect

let scenario_key_parts s =
  Memo.chars_key_parts ~temp_celsius:s.s_temp
  @ [
      "mix=" ^ mix_canon s.s_mix;
      "corr=" ^ family_canon s.s_family;
      "p=" ^ p_canon s.s_p;
      Printf.sprintf "n=%d" s.s_n;
      "geom=" ^ geom_canon s;
      "tier=" ^ tier_name s.s_tier;
      Printf.sprintf "seed=%d" s.s_seed;
      Printf.sprintf "vt=%b" s.s_vt;
    ]
  @ (match s.s_tier with
    | Mc -> [ Printf.sprintf "replicas=%d" s.s_replicas ]
    | Tail ->
      [
        Printf.sprintf "replicas=%d" s.s_replicas;
        (match s.s_budget with
        | Some b -> Printf.sprintf "budget=%h" b
        | None -> "budget=none");
        (match s.s_shift with
        | Some d -> Printf.sprintf "shift=%h" d
        | None -> "shift=auto");
      ]
    | _ -> [])

let derived_id s = String.sub (Cache.key (scenario_key_parts s)) 0 12

(* --- manifest parsing ----------------------------------------------- *)

let known_fields =
  [
    "id"; "n"; "mix"; "corr"; "p"; "tier"; "seed"; "aspect"; "width";
    "height"; "vt"; "replicas"; "temp"; "budget"; "shift";
  ]

let fail_line line fmt =
  Printf.ksprintf
    (fun s -> Guard.invalid (Printf.sprintf "manifest line %d: %s" line s))
    fmt

let parse_family line s =
  let num what v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f && f > 0.0 -> f
    | _ -> fail_line line "bad %s %S in correlation spec %S" what v s
  in
  match String.split_on_char ':' s with
  | [ "linear"; d ] -> Corr_model.Linear { dmax = num "distance" d }
  | [ "spherical"; d ] -> Corr_model.Spherical { dmax = num "distance" d }
  | [ "exp"; r ] -> Corr_model.Exponential { range = num "range" r }
  | [ "gauss"; r ] -> Corr_model.Gaussian { range = num "range" r }
  | [ "texp"; r; d ] ->
    Corr_model.Truncated_exponential
      { range = num "range" r; dmax = num "distance" d }
  | _ ->
    fail_line line
      "cannot parse correlation %S (expected e.g. linear:120, exp:60, \
       gauss:80, spherical:120, texp:60:120)"
      s

let parse_mix line s =
  let entries = String.split_on_char ',' (String.trim s) in
  List.map
    (fun entry ->
      match String.split_on_char ':' (String.trim entry) with
      | [ name; w ] -> (
        let name = String.trim name in
        (match Library.index_of name with
        | _ -> ()
        | exception Not_found -> fail_line line "unknown cell %S" name);
        match float_of_string_opt w with
        | Some w when Float.is_finite w && w >= 0.0 -> (name, w)
        | _ -> fail_line line "bad weight in mix entry %S" entry)
      | _ -> fail_line line "bad mix entry %S (want CELL:WEIGHT)" entry)
    entries

let parse_scenario ~line json =
  let fields =
    match json with
    | Vjson.Obj kvs -> kvs
    | _ -> fail_line line "expected a JSON object"
  in
  List.iter
    (fun (k, _) ->
      if not (List.mem k known_fields) then
        fail_line line "unknown field %S (known: %s)" k
          (String.concat ", " known_fields))
    fields;
  let field k = List.assoc_opt k fields in
  let str k v =
    match v with
    | Vjson.Str s -> s
    | _ -> fail_line line "field %S must be a string" k
  in
  let num k v =
    match v with
    | Vjson.Num x when Float.is_finite x -> x
    | _ -> fail_line line "field %S must be a finite number" k
  in
  let int k v =
    let x = num k v in
    if Float.is_integer x then int_of_float x
    else fail_line line "field %S must be an integer" k
  in
  let required k =
    match field k with
    | Some v -> v
    | None -> fail_line line "missing required field %S" k
  in
  let n = int "n" (required "n") in
  if n < 1 then fail_line line "n must be at least 1";
  let mix_s = str "mix" (required "mix") in
  if String.trim mix_s = "" then fail_line line "empty cell mix";
  let s_mix = parse_mix line mix_s in
  let s_family = parse_family line (str "corr" (required "corr")) in
  let s_p =
    Option.map
      (fun v ->
        let p = num "p" v in
        if p < 0.0 || p > 1.0 then fail_line line "p must be in [0, 1]";
        p)
      (field "p")
  in
  let s_tier =
    match field "tier" with
    | None -> Auto
    | Some v -> tier_of_name line (str "tier" v)
  in
  let s_seed = match field "seed" with None -> 0 | Some v -> int "seed" v in
  let s_aspect =
    match field "aspect" with
    | None -> 1.0
    | Some v ->
      let a = num "aspect" v in
      if a <= 0.0 then fail_line line "aspect must be positive";
      a
  in
  let dim k =
    Option.map
      (fun v ->
        let d = num k v in
        if d <= 0.0 then fail_line line "%s must be positive" k;
        d)
      (field k)
  in
  let s_dims =
    match (dim "width", dim "height") with
    | Some w, Some h -> Some (w, h)
    | None, None -> None
    | _ -> fail_line line "width and height must be given together"
  in
  let s_vt =
    match field "vt" with
    | None -> false
    | Some (Vjson.Bool b) -> b
    | Some _ -> fail_line line "field \"vt\" must be a boolean"
  in
  let s_replicas =
    match field "replicas" with
    | None -> 400
    | Some v ->
      let r = int "replicas" v in
      if r < 2 then fail_line line "replicas must be at least 2";
      r
  in
  let s_temp = Option.map (num "temp") (field "temp") in
  (* Tail-only fields: [budget] (µA, required for the tail tier) and
     [shift] (nm, optional manual override of the calibrated shift). *)
  let s_budget =
    Option.map
      (fun v ->
        let b = num "budget" v in
        if not (b > 0.0) then fail_line line "budget must be positive";
        b)
      (field "budget")
  in
  let s_shift = Option.map (num "shift") (field "shift") in
  (match s_tier with
  | Tail ->
    if s_budget = None then
      fail_line line "tail tier requires a budget field (uA)"
  | _ ->
    if s_budget <> None then
      fail_line line "field \"budget\" only applies to the tail tier";
    if s_shift <> None then
      fail_line line "field \"shift\" only applies to the tail tier");
  let s =
    {
      s_id = "";
      s_line = line;
      s_n = n;
      s_mix;
      s_family;
      s_p;
      s_tier;
      s_seed;
      s_aspect;
      s_dims;
      s_vt;
      s_replicas;
      s_temp;
      s_budget;
      s_shift;
    }
  in
  let s_id =
    match field "id" with
    | Some v ->
      let id = str "id" v in
      if id = "" then fail_line line "empty id" else id
    | None -> derived_id s
  in
  { s with s_id }

let parse_manifest text =
  let scenarios = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i raw ->
         let line = i + 1 in
         let trimmed = String.trim raw in
         if trimmed <> "" && trimmed.[0] <> '#' then
           let json =
             try Vjson.parse trimmed
             with Vjson.Parse_error msg ->
               fail_line line "malformed JSON (%s)" msg
           in
           scenarios := parse_scenario ~line json :: !scenarios);
  match List.rev !scenarios with
  | [] -> Guard.invalid "empty manifest: no scenarios to run"
  | scenarios -> scenarios

(* --- execution ------------------------------------------------------- *)

type ctx_entry = {
  e_chars : Characterize.cell_char array;
  e_histogram : Histogram.t;
  e_p : float;
  e_rgcorr : Rgleak_core.Rg_correlation.t;
  e_parts : string list;  (** cache key parts of the structure *)
}

type state = {
  cache : Cache.t option;
  chars_tbl : (string, Characterize.cell_char array) Hashtbl.t;
  ctx_tbl : (string, ctx_entry) Hashtbl.t;
}

let chars_for state ~temp_celsius =
  let parts = Memo.chars_key_parts ~temp_celsius in
  let k = String.concat "\x00" parts in
  match Hashtbl.find_opt state.chars_tbl k with
  | Some chars -> chars
  | None ->
    let chars = Memo.characterization ?cache:state.cache ~temp_celsius () in
    Hashtbl.replace state.chars_tbl k chars;
    chars

let ctx_for state scen =
  let chars_parts = Memo.chars_key_parts ~temp_celsius:scen.s_temp in
  let parts =
    chars_parts
    @ [
        "mix=" ^ mix_canon scen.s_mix;
        "p=" ^ p_canon scen.s_p;
        "mode=analytic";
        "mapping=exact";
      ]
  in
  let k = String.concat "\x00" parts in
  match Hashtbl.find_opt state.ctx_tbl k with
  | Some e -> e
  | None ->
    let e_chars = chars_for state ~temp_celsius:scen.s_temp in
    let e_histogram = Histogram.of_weights scen.s_mix in
    let e_p =
      match scen.s_p with
      | Some p -> p
      | None ->
        Signal_prob.maximizing_p e_chars
          ~weights:(Histogram.to_array e_histogram)
    in
    let rg = Random_gate.create ~chars:e_chars ~histogram:e_histogram ~p:e_p () in
    let e_rgcorr =
      Memo.correlation ?cache:state.cache ~chars:e_chars ~rg ~p:e_p
        ~key_parts:parts ()
    in
    let e = { e_chars; e_histogram; e_p; e_rgcorr; e_parts = parts } in
    Hashtbl.replace state.ctx_tbl k e;
    e

let layout_of scen =
  let width, height =
    match scen.s_dims with
    | Some (w, h) -> (w, h)
    | None ->
      (* Near-square site grid at the default 4 µm pitch, like the
         validation experiments: area = 16·n µm². *)
      let area = 16.0 *. float_of_int scen.s_n in
      (sqrt (area *. scen.s_aspect), sqrt (area /. scen.s_aspect))
  in
  Layout.of_dims ~n:scen.s_n ~width ~height

(* Placement/MC seeds are pure functions of the scenario's own seed
   field (same derivation pattern as the validation experiments), never
   of its manifest position — that is what makes records invariant
   under manifest reordering. *)
let mc_seed scen = scen.s_seed + 104729

let placed_of scen ~histogram layout =
  let rng = Rng.stream ~seed:scen.s_seed 0 in
  let netlist =
    Generator.random_netlist ~histogram ~n:scen.s_n ~rng ()
  in
  Placer.place ~strategy:Placer.Random ~rng netlist layout

let ok_record scen ~p ~layout ?replicas ~mean ~std ~method_used () =
  let base =
    [
      ("id", Vjson.Str scen.s_id);
      ("status", Vjson.Str "ok");
      ("tier", Vjson.Str (tier_name scen.s_tier));
      ("n", Vjson.Num (float_of_int scen.s_n));
      ("seed", Vjson.Num (float_of_int scen.s_seed));
      ("p", Vjson.Num p);
      ("width", Vjson.Num (Layout.width layout));
      ("height", Vjson.Num (Layout.height layout));
      ("mean", Vjson.Num mean);
      ("std", Vjson.Num std);
      ("method", Vjson.Str method_used);
    ]
  in
  let extra =
    match replicas with
    | Some r -> [ ("replicas", Vjson.Num (float_of_int r)) ]
    | None -> []
  in
  Vjson.Obj (base @ extra)

let run_scenario state scen =
  let ctx_e = ctx_for state scen in
  let corr =
    Corr_model.create scen.s_family Process_param.default_channel_length
  in
  let layout = layout_of scen in
  match scen.s_tier with
  | (Auto | Linear | Integral_2d | Integral_polar) as t ->
    let spec =
      {
        Estimate.histogram = ctx_e.e_histogram;
        n = scen.s_n;
        width = Layout.width layout;
        height = Layout.height layout;
      }
    in
    let method_ =
      match t with
      | Auto -> Estimate.Auto
      | Linear -> Estimate.Linear
      | Integral_2d -> Estimate.Integral_2d
      | Integral_polar -> Estimate.Integral_polar
      | Exact | Mc | Tail -> assert false
    in
    let ctx =
      Estimate.context_with ~corr ~rgcorr:ctx_e.e_rgcorr
        ~histogram:ctx_e.e_histogram ~p:ctx_e.e_p ()
    in
    let run_est lin_memo =
      Estimate.run ?lin_memo ~method_ ~with_vt:scen.s_vt ctx spec
    in
    (* Mirror Estimate.run's Auto rule: the F memo only matters when
       the linear tier will actually execute. *)
    let uses_linear = t = Linear || (t = Auto && scen.s_n <= 2000) in
    let r =
      if uses_linear then
        let key_parts =
          ctx_e.e_parts
          @ [
              "corr=" ^ family_canon scen.s_family;
              Printf.sprintf "site=%h:%h" layout.Layout.site_w
                layout.Layout.site_h;
            ]
        in
        Memo.with_linear_memo ?cache:state.cache ~key_parts
          ~rows:(Layout.rows layout) ~cols:layout.Layout.cols (fun memo ->
            run_est (Some memo))
      else run_est None
    in
    ok_record scen ~p:ctx_e.e_p ~layout ~mean:r.Estimate.mean
      ~std:r.Estimate.std ~method_used:r.Estimate.method_used ()
  | Exact ->
    let placed = placed_of scen ~histogram:ctx_e.e_histogram layout in
    let r = Estimator_exact.estimate ~corr ~rgcorr:ctx_e.e_rgcorr placed in
    let mean =
      if scen.s_vt then
        r.Estimator_exact.mean *. Vt_correction.mean_factor ()
      else r.Estimator_exact.mean
    in
    ok_record scen ~p:ctx_e.e_p ~layout ~mean ~std:r.Estimator_exact.std
      ~method_used:"exact pairwise (O(n^2))" ()
  | Mc ->
    let placed = placed_of scen ~histogram:ctx_e.e_histogram layout in
    let mc =
      Mc_reference.prepare ~chars:ctx_e.e_chars ~corr ~p:ctx_e.e_p placed
    in
    let mean, std =
      Mc_reference.moments_stream mc ~seed:(mc_seed scen)
        ~count:scen.s_replicas
    in
    ok_record scen ~p:ctx_e.e_p ~layout ~replicas:scen.s_replicas ~mean ~std
      ~method_used:"monte-carlo reference" ()
  | Tail ->
    let placed = placed_of scen ~histogram:ctx_e.e_histogram layout in
    let mc =
      Mc_reference.prepare ~chars:ctx_e.e_chars ~corr ~p:ctx_e.e_p placed
    in
    let budget_na =
      match scen.s_budget with
      | Some b -> b *. 1000.0 (* manifest budgets are µA; totals are nA *)
      | None -> assert false (* enforced at parse time *)
    in
    let delta =
      match scen.s_shift with
      | Some d -> d
      | None -> Mc_reference.calibrate_shift mc ~budget:budget_na
    in
    let shift = Mc_reference.uniform_shift mc ~delta in
    let r =
      Tail.estimate ~mc ~budget:budget_na ~shift ~seed:(mc_seed scen)
        ~replicas:scen.s_replicas ()
    in
    let quantile name level =
      match
        List.find_opt (fun (q : Tail.quantile) -> q.Tail.level = level)
          r.Tail.quantiles
      with
      | Some q -> [ (name, Vjson.Num q.Tail.value) ]
      | None -> []
    in
    Vjson.Obj
      ([
         ("id", Vjson.Str scen.s_id);
         ("status", Vjson.Str "ok");
         ("tier", Vjson.Str (tier_name scen.s_tier));
         ("n", Vjson.Num (float_of_int scen.s_n));
         ("seed", Vjson.Num (float_of_int scen.s_seed));
         ("p", Vjson.Num ctx_e.e_p);
         ("width", Vjson.Num (Layout.width layout));
         ("height", Vjson.Num (Layout.height layout));
         ("replicas", Vjson.Num (float_of_int scen.s_replicas));
         ("budget_na", Vjson.Num budget_na);
         ("delta_nm", Vjson.Num r.Tail.delta);
         ("p_exceed", Vjson.Num r.Tail.p_exceed);
         ("se", Vjson.Num r.Tail.se);
         ("ess", Vjson.Num r.Tail.ess);
         ("hits", Vjson.Num (float_of_int r.Tail.hits));
       ]
      @ quantile "p99_na" 0.99
      @ quantile "p999_na" 0.999
      @ quantile "p9999_na" 0.9999
      @ [ ("method", Vjson.Str "importance-sampled tail") ])

type outcome = { o_id : string; o_json : Vjson.t; o_code : int }

type engine = state

let engine ?cache () =
  (* Touch the shared pool once so every scenario reuses warm domains. *)
  ignore (Parallel.default ());
  { cache; chars_tbl = Hashtbl.create 4; ctx_tbl = Hashtbl.create 8 }

let run_one state scen =
  (* Per-scenario latency distributions, overall and per tier —
     the service-level histograms `rgleak report` aggregates. *)
  let timed () =
    Obs.hist_time "batch.scenario_s" @@ fun () ->
    Obs.hist_time ("batch.tier." ^ tier_name scen.s_tier ^ "_s")
    @@ fun () -> run_scenario state scen
  in
  match Guard.protect timed with
  | Ok json -> { o_id = scen.s_id; o_json = json; o_code = 0 }
  | Error d ->
    {
      o_id = scen.s_id;
      o_json =
        Vjson.Obj
          [
            ("id", Vjson.Str scen.s_id);
            ("status", Vjson.Str "error");
            ("class", Vjson.Str (Guard.class_name d));
            ("error", Vjson.Str (Guard.to_string d));
          ];
      o_code = Guard.exit_code d;
    }

let run ?cache scenarios = List.map (run_one (engine ?cache ())) scenarios

let report outcomes =
  let header =
    Vjson.Obj
      [
        ("schema", Vjson.Str "rgleak-batch/1");
        ("scenarios", Vjson.Num (float_of_int (List.length outcomes)));
      ]
  in
  String.concat "\n"
    (Vjson.to_string header
    :: List.map (fun o -> Vjson.to_string o.o_json) outcomes)
  ^ "\n"

let exit_code outcomes =
  List.fold_left (fun acc o -> max acc o.o_code) 0 outcomes
