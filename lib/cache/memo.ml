module Guard = Rgleak_num.Guard
module Characterize = Rgleak_cells.Characterize
module Char_io = Rgleak_cells.Char_io
module Library = Rgleak_cells.Library
module Cell = Rgleak_cells.Cell
module Process_param = Rgleak_process.Process_param
module Mosfet = Rgleak_device.Mosfet
module Rg_correlation = Rgleak_core.Rg_correlation
module Estimator_linear = Rgleak_core.Estimator_linear

(* Kind versions: bump when the payload format or the semantics of the
   computation behind a kind change, so stale entries self-invalidate. *)
let chars_version = 1
let rgcorr_version = 1
let linmemo_version = 1
let deltacov_version = 1

let library_fingerprint =
  let fp = lazy (
    let b = Buffer.create 1024 in
    Array.iter
      (fun (c : Cell.t) ->
        Buffer.add_string b
          (Printf.sprintf "%s/%d/%d;" c.Cell.name c.Cell.num_inputs
             (Cell.device_count c)))
      Library.cells;
    Digest.to_hex (Digest.string (Buffer.contents b)))
  in
  fun () -> Lazy.force fp

let param_part (p : Process_param.t) =
  Printf.sprintf "param=%s:%h:%h:%h" p.Process_param.name
    p.Process_param.nominal p.Process_param.sigma_d2d
    p.Process_param.sigma_wid

(* Canonical record of the settings `characterization` below actually
   uses (Characterize defaults + seed).  If those defaults ever change,
   this literal — or chars_version — must change with them. *)
let chars_settings = "l_points=97;span=6;mc=20000;seed=1729;vdd=default"

let chars_key_parts ~temp_celsius =
  [
    "lib=" ^ library_fingerprint ();
    param_part Process_param.default_channel_length;
    chars_settings;
    (match temp_celsius with
    | None -> "temp=default"
    | Some t -> Printf.sprintf "temp=%h" t);
  ]

let compute_characterization ?jobs ~temp_celsius () =
  match temp_celsius with
  | None -> Characterize.default_library ()
  | Some t ->
    let env = Mosfet.env_at ~temp_k:(273.15 +. t) () in
    Characterize.characterize_library ?jobs ~env
      ~param:Process_param.default_channel_length ~seed:1729 ()

let characterization ?cache ?jobs ~temp_celsius () =
  match cache with
  | None -> compute_characterization ?jobs ~temp_celsius ()
  | Some c -> (
    let key = Cache.key (chars_key_parts ~temp_celsius) in
    let store chars =
      Cache.put c ~kind:"chars" ~version:chars_version ~key
        (Char_io.to_string chars);
      chars
    in
    match Cache.get c ~kind:"chars" ~version:chars_version ~key with
    | Some payload -> (
      match Char_io.of_string payload with
      | chars -> chars
      | exception Char_io.Format_error _ ->
        (* Integrity-valid but unparseable: written by an incompatible
           producer.  Recompute and overwrite. *)
        store (compute_characterization ?jobs ~temp_celsius ()))
    | None -> store (compute_characterization ?jobs ~temp_celsius ()))

(* Correlation tables: a line-oriented text payload with hex-float
   literals, so a reload replays the exact bits of the cold run.

     rgleak-rgcorr 1
     mapping exact|simplified
     points <p>
     sigma_bar <%h>
     support <k> <i0> ... <ik-1>
     f <%h>{p}
     pair <si> <sj> <%h>{p}     (k*k lines, row-major)
     end
*)

let render_floats b xs =
  Array.iter (fun x -> Printf.bprintf b " %h" x) xs

let render_tables (tb : Rg_correlation.tables) =
  let b = Buffer.create 8192 in
  Buffer.add_string b "rgleak-rgcorr 1\n";
  Printf.bprintf b "mapping %s\n"
    (match tb.Rg_correlation.t_mapping with
    | Rg_correlation.Exact -> "exact"
    | Rg_correlation.Simplified -> "simplified");
  Printf.bprintf b "points %d\n" tb.Rg_correlation.t_points;
  Printf.bprintf b "sigma_bar %h\n" tb.Rg_correlation.t_sigma_bar;
  Printf.bprintf b "support %d"
    (Array.length tb.Rg_correlation.t_support_cells);
  Array.iter (Printf.bprintf b " %d") tb.Rg_correlation.t_support_cells;
  Buffer.add_char b '\n';
  Buffer.add_string b "f";
  render_floats b tb.Rg_correlation.t_f_table;
  Buffer.add_char b '\n';
  let ns = Array.length tb.Rg_correlation.t_support_cells in
  for si = 0 to ns - 1 do
    for sj = 0 to ns - 1 do
      Printf.bprintf b "pair %d %d" si sj;
      render_floats b tb.Rg_correlation.t_pair_tables.((si * ns) + sj);
      Buffer.add_char b '\n'
    done
  done;
  Buffer.add_string b "end\n";
  Buffer.contents b

exception Parse of string

let parse_tables payload : Rg_correlation.tables =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "bad integer %S" s
  in
  let float_of s =
    match float_of_string_opt s with
    | Some x -> x
    | None -> fail "bad float %S" s
  in
  let lines =
    String.split_on_char '\n' payload |> List.filter (fun l -> l <> "")
  in
  let words l =
    String.split_on_char ' ' l |> List.filter (fun w -> w <> "")
  in
  match List.map words lines with
  | [ "rgleak-rgcorr"; "1" ]
    :: [ "mapping"; mp ]
    :: [ "points"; pts ]
    :: [ "sigma_bar"; sb ]
    :: ("support" :: nsup :: sup)
    :: ("f" :: fs)
    :: rest ->
    let mapping =
      match mp with
      | "exact" -> Rg_correlation.Exact
      | "simplified" -> Rg_correlation.Simplified
      | _ -> fail "bad mapping %S" mp
    in
    let points = int_of pts in
    let ns = int_of nsup in
    if List.length sup <> ns then fail "support count mismatch";
    let support = Array.of_list (List.map int_of sup) in
    let f_table = Array.of_list (List.map float_of fs) in
    if Array.length f_table <> points then fail "f table length mismatch";
    let pair_tables = Array.make (ns * ns) [||] in
    let rec consume rest idx =
      match rest with
      | [ "end" ] :: [] ->
        if idx <> ns * ns then fail "missing pair tables";
        ()
      | ("pair" :: si :: sj :: xs) :: tl ->
        let si = int_of si and sj = int_of sj in
        if si < 0 || si >= ns || sj < 0 || sj >= ns then
          fail "pair index out of range";
        let tbl = Array.of_list (List.map float_of xs) in
        if Array.length tbl <> points then fail "pair table length mismatch";
        pair_tables.((si * ns) + sj) <- tbl;
        consume tl (idx + 1)
      | _ -> fail "malformed pair section"
    in
    consume rest 0;
    {
      Rg_correlation.t_mapping = mapping;
      t_points = points;
      t_support_cells = support;
      t_f_table = f_table;
      t_pair_tables = pair_tables;
      t_sigma_bar = float_of sb;
    }
  | _ -> fail "malformed rgcorr payload"

let correlation ?cache ?mapping ~chars ~rg ~p ~key_parts () =
  let compute () = Rg_correlation.create ?mapping ~chars ~rg ~p () in
  match cache with
  | None -> compute ()
  | Some c -> (
    let key = Cache.key ("rgcorr" :: key_parts) in
    let store rgcorr =
      Cache.put c ~kind:"rgcorr" ~version:rgcorr_version ~key
        (render_tables (Rg_correlation.tables rgcorr));
      rgcorr
    in
    match Cache.get c ~kind:"rgcorr" ~version:rgcorr_version ~key with
    | Some payload -> (
      match Rg_correlation.of_tables ~rg (parse_tables payload) with
      | rgcorr -> rgcorr
      | exception (Parse _ | Invalid_argument _) -> store (compute ()))
    | None -> store (compute ()))

(* Linear F memo: sparse (offset index, value) pairs.

     rgleak-linmemo 1
     shape <rows> <cols>
     count <k>
     <idx> <%h>                  (k lines, increasing idx)
     end
*)

let render_memo memo =
  let rows, cols = Estimator_linear.memo_shape memo in
  let entries = Estimator_linear.memo_to_list memo in
  let b = Buffer.create 4096 in
  Buffer.add_string b "rgleak-linmemo 1\n";
  Printf.bprintf b "shape %d %d\n" rows cols;
  Printf.bprintf b "count %d\n" (List.length entries);
  List.iter (fun (idx, v) -> Printf.bprintf b "%d %h\n" idx v) entries;
  Buffer.add_string b "end\n";
  Buffer.contents b

let parse_memo payload ~rows ~cols =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt in
  let lines =
    String.split_on_char '\n' payload |> List.filter (fun l -> l <> "")
  in
  let words l =
    String.split_on_char ' ' l |> List.filter (fun w -> w <> "")
  in
  match List.map words lines with
  | [ "rgleak-linmemo"; "1" ]
    :: [ "shape"; r; c ]
    :: [ "count"; k ]
    :: rest ->
    if int_of_string_opt r <> Some rows || int_of_string_opt c <> Some cols
    then fail "shape mismatch";
    let k =
      match int_of_string_opt k with
      | Some k -> k
      | None -> fail "bad count"
    in
    let memo = Estimator_linear.memo_create ~rows ~cols in
    let rec consume rest n =
      match rest with
      | [ "end" ] :: [] -> if n <> k then fail "entry count mismatch"
      | [ idx; v ] :: tl ->
        let idx =
          match int_of_string_opt idx with
          | Some i when i >= 0 && i < rows * cols -> i
          | _ -> fail "bad entry index"
        in
        let v =
          match float_of_string_opt v with
          | Some v -> v
          | None -> fail "bad entry value"
        in
        Estimator_linear.memo_set memo ~idx ~value:v;
        consume tl (n + 1)
      | _ -> fail "malformed entry"
    in
    consume rest 0;
    memo
  | _ -> fail "malformed linmemo payload"

(* Delta covariance tables: the packed per-(type-pair, distance-bin)
   f_{m,n}(ρ) bigarray the delta estimator stages once per chip.  The
   payload is line-oriented hex floats, so a warm load replays the cold
   run's exact bits — which is what keeps the delta battery's bitwise
   guarantees intact across cache hits.

     rgleak-deltacov 1
     dim <len>
     <%h>                        (len lines, bin-major packed order)
     end

   The key combines the correlation structure's own table fingerprint
   (every float the tables derive from), the binning geometry, the used
   cell set, and caller key parts naming the spatial model — the full
   input closure of [binned_pair_tables]. *)

let render_deltacov cov =
  let len = Bigarray.Array1.dim cov in
  let b = Buffer.create (len * 16) in
  Buffer.add_string b "rgleak-deltacov 1\n";
  Printf.bprintf b "dim %d\n" len;
  for i = 0 to len - 1 do
    Printf.bprintf b "%h\n" (Bigarray.Array1.unsafe_get cov i)
  done;
  Buffer.add_string b "end\n";
  Buffer.contents b

let parse_deltacov payload ~len =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt in
  let lines =
    String.split_on_char '\n' payload |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "rgleak-deltacov 1" :: dim :: rest ->
    (match String.split_on_char ' ' dim with
    | [ "dim"; d ] when int_of_string_opt d = Some len -> ()
    | _ -> fail "deltacov dim mismatch");
    let cov = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
    let rec consume rest i =
      match rest with
      | [ "end" ] -> if i <> len then fail "deltacov value count mismatch"
      | v :: tl ->
        if i >= len then fail "deltacov value count mismatch";
        (match float_of_string_opt v with
        | Some x -> Bigarray.Array1.unsafe_set cov i x
        | None -> fail "bad deltacov value %S" v);
        consume tl (i + 1)
      | [] -> fail "deltacov missing end"
    in
    consume rest 0;
    cov
  | _ -> fail "malformed deltacov payload"

let delta_tables ?cache ~corr ~rgcorr ~used ~distance_points ~dstep ~key_parts
    () =
  let compute () =
    Rg_correlation.binned_pair_tables rgcorr ~used ~distance_points ~dstep
      ~rho_of_d:(fun d -> Rgleak_process.Corr_model.total corr d)
  in
  match cache with
  | None -> compute ()
  | Some c -> (
    let nu = Array.length used in
    let len = Rgleak_num.Parallel.tri_size nu * distance_points in
    let key =
      Cache.key
        ("deltacov"
        :: ("tables=" ^ Rg_correlation.table_fingerprint rgcorr)
        :: Printf.sprintf "points=%d" distance_points
        :: Printf.sprintf "dstep=%h" dstep
        :: ("used="
           ^ String.concat ","
               (Array.to_list (Array.map string_of_int used)))
        :: key_parts)
    in
    let store cov =
      Cache.put c ~kind:"deltacov" ~version:deltacov_version ~key
        (render_deltacov cov);
      cov
    in
    match Cache.get c ~kind:"deltacov" ~version:deltacov_version ~key with
    | Some payload -> (
      match parse_deltacov payload ~len with
      | cov -> cov
      | exception Parse _ -> store (compute ()))
    | None -> store (compute ()))

let with_linear_memo ?cache ~key_parts ~rows ~cols f =
  match cache with
  | None -> f (Estimator_linear.memo_create ~rows ~cols)
  | Some c -> (
    let key =
      Cache.key
        ("linmemo" :: Printf.sprintf "shape=%dx%d" rows cols :: key_parts)
    in
    let cold () =
      let memo = Estimator_linear.memo_create ~rows ~cols in
      let r = f memo in
      Cache.put c ~kind:"linmemo" ~version:linmemo_version ~key
        (render_memo memo);
      r
    in
    match Cache.get c ~kind:"linmemo" ~version:linmemo_version ~key with
    | Some payload -> (
      match parse_memo payload ~rows ~cols with
      | memo -> f memo
      | exception Parse _ -> cold ())
    | None -> cold ())
