(** The batch engine behind [rgleak batch]: many scenarios, one warm
    pool, one cache.

    A manifest is JSONL — one scenario object per line (blank lines and
    [#] comment lines are skipped):

    {v
    {"id": "sweep-a", "n": 1200, "mix": "INV_X1:3,NAND2_X1:2",
     "corr": "spherical:120", "tier": "linear", "seed": 7}
    v}

    Fields: [n] (gates, required), [mix] (CELL:WEIGHT list, required),
    [corr] (correlation spec as in the CLI, required); optional [id]
    (defaults to a content-derived hash), [p] (signal probability;
    default: the conservative maximizing setting), [tier] ("auto",
    "linear", "int2d", "polar", "exact", "mc", "tail"; default "auto"),
    [seed] (default 0), [aspect] (default 1), [width]/[height] (µm,
    both or neither; override [aspect]), [vt] (default false),
    [replicas] (MC dies, default 400, [mc] and [tail] only), [temp]
    (junction temperature in °C; default: the library's 300 K),
    [budget] (µA, required for the [tail] tier: the exceedance
    threshold) and [shift] (nm, [tail] only: manual proposal shift
    overriding the automatic budget calibration).

    Malformed JSON, unknown fields, unknown cells and out-of-range
    values are {e manifest} errors: parsing raises
    {!Rgleak_num.Guard.Error} ([Invalid_input]) naming the line, and
    the whole run exits 2.  So does an empty manifest.  Failures
    {e inside} a scenario (e.g. a numeric breakdown, an injected
    fault) are folded into that scenario's report record; the other
    scenarios still run.

    {b Determinism.}  A scenario's record is a pure function of the
    scenario's content — per-scenario seeds derive from its [seed]
    field, never from its line number, and every estimator tier
    reduces in a fixed order on the shared pool.  Reports are
    therefore bit-identical across [--jobs] values, across cold and
    warm caches, and scenario records are invariant under manifest
    reordering (only the record order follows the manifest). *)

type tier = Auto | Linear | Integral_2d | Integral_polar | Exact | Mc | Tail

type scenario = {
  s_id : string;  (** explicit id, or derived from the content key *)
  s_line : int;  (** 1-based manifest line (diagnostics only) *)
  s_n : int;
  s_mix : (string * float) list;
  s_family : Rgleak_process.Corr_model.wid_family;
  s_p : float option;  (** [None] = maximizing setting *)
  s_tier : tier;
  s_seed : int;
  s_aspect : float;
  s_dims : (float * float) option;  (** explicit width × height (µm) *)
  s_vt : bool;
  s_replicas : int;
  s_temp : float option;  (** °C; [None] = default 300 K library *)
  s_budget : float option;  (** µA; required for the [tail] tier *)
  s_shift : float option;  (** nm; [None] = calibrate at the budget *)
}

val tier_name : tier -> string

val scenario_key_parts : scenario -> string list
(** The canonical content key parts of a scenario (library fingerprint,
    process parameter, mix, correlation, tier, seed, geometry, ...) —
    what the default id and the cache addressing derive from.  Line
    numbers and explicit ids do not participate. *)

val parse_manifest : string -> scenario list
(** Parses JSONL manifest text.  Raises {!Rgleak_num.Guard.Error}
    ([Invalid_input]) on malformed lines, unknown fields or values, and
    on an empty manifest. *)

type outcome = {
  o_id : string;
  o_json : Rgleak_valid.Vjson.t;  (** the report record *)
  o_code : int;  (** 0, or the {!Rgleak_num.Guard.exit_code} class *)
}

type engine
(** One run's worth of shared state: the warm pool handle, the
    in-memory characterization/correlation tables, and the (optional)
    on-disk cache.  The serve daemon creates one engine per request so
    every request's shared work flows through the one disk cache. *)

val engine : ?cache:Cache.t -> unit -> engine
(** A fresh engine on the warm shared pool (touching the pool so the
    first scenario reuses warm domains). *)

val run_one : engine -> scenario -> outcome
(** Executes one scenario.  Never raises for per-scenario failures —
    those become error records carrying the diagnostic class.  A
    scenario's record is a pure function of the scenario content:
    bit-identical across engines, job counts and cache states. *)

val run : ?cache:Cache.t -> scenario list -> outcome list
(** Executes the scenarios in manifest order on the warm shared pool,
    sharing characterizations and correlation structures in memory
    within the run and through [cache] across runs.  Never raises for
    per-scenario failures — those become error records.  Equivalent to
    folding {!run_one} over one fresh {!engine}. *)

val report : outcome list -> string
(** The [rgleak-batch/1] JSONL report: a header line, then one record
    per scenario in manifest order. *)

val exit_code : outcome list -> int
(** 0 when every record is ok, else the highest failure class
    (invalid-input 2 < numeric 3 < internal 4). *)
