module Guard = Rgleak_num.Guard
module Obs = Rgleak_obs.Obs

let () =
  Obs.declare_hist ~owner:"cache" "cache.get_s";
  Obs.declare_hist ~owner:"cache" "cache.put_s"

type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  put_errors : int;
  bytes_read : int;
  bytes_written : int;
  evictions : int;
  bytes_evicted : int;
}

(* LRU index entry: on-disk size and a monotone recency stamp (larger =
   hotter).  Only maintained when the handle has a size cap. *)
type indexed = { mutable i_bytes : int; mutable i_seq : int }

type t = {
  root : string;
  on_corrupt : Guard.diagnostic -> unit;
  cap_bytes : int option;
  index : (string, indexed) Hashtbl.t;  (* entry path -> size/recency *)
  mutable total : int;  (* sum of indexed sizes *)
  mutable seq : int;  (* recency clock *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_corrupt : int;
  mutable n_put_errors : int;
  mutable n_bytes_read : int;
  mutable n_bytes_written : int;
  mutable n_evictions : int;
  mutable n_bytes_evicted : int;
}

let default_dir () =
  match Sys.getenv_opt "RGLEAK_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "rgleak"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some d when d <> "" ->
        Filename.concat (Filename.concat d ".cache") "rgleak"
      | _ -> "_rgleak_cache"))

(* Seed the LRU index from the entries already on disk, ordering their
   initial recency by mtime (hits bump the mtime best-effort, so the
   ordering approximately survives restarts). *)
let scan_entries root =
  let found = ref [] in
  let dirents d = try Sys.readdir d with Sys_error _ -> [||] in
  Array.iter
    (fun kind ->
      let kdir = Filename.concat root kind in
      if (try Sys.is_directory kdir with Sys_error _ -> false) then
        Array.iter
          (fun shard ->
            let sdir = Filename.concat kdir shard in
            if (try Sys.is_directory sdir with Sys_error _ -> false) then
              Array.iter
                (fun name ->
                  if Filename.check_suffix name ".rgc" then
                    let path = Filename.concat sdir name in
                    match Unix.stat path with
                    | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                      found := (path, st_size, st_mtime) :: !found
                    | _ | (exception Unix.Unix_error _) -> ())
                (dirents sdir))
          (dirents kdir))
    (dirents root);
  List.sort (fun (_, _, a) (_, _, b) -> compare a b) !found

let open_ ?(on_corrupt = fun _ -> ()) ?cap_bytes ~dir () =
  let t =
    {
      root = dir;
      on_corrupt;
      cap_bytes;
      index = Hashtbl.create 64;
      total = 0;
      seq = 0;
      n_hits = 0;
      n_misses = 0;
      n_corrupt = 0;
      n_put_errors = 0;
      n_bytes_read = 0;
      n_bytes_written = 0;
      n_evictions = 0;
      n_bytes_evicted = 0;
    }
  in
  if cap_bytes <> None then
    List.iter
      (fun (path, bytes, _) ->
        t.seq <- t.seq + 1;
        Hashtbl.replace t.index path { i_bytes = bytes; i_seq = t.seq };
        t.total <- t.total + bytes)
      (scan_entries dir);
  t

let dir t = t.root

let total_bytes t = t.total

let capped t = t.cap_bytes <> None

let index_forget t path =
  match Hashtbl.find_opt t.index path with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.index path;
    t.total <- t.total - e.i_bytes

let index_touch t path =
  match Hashtbl.find_opt t.index path with
  | None -> ()
  | Some e ->
    t.seq <- t.seq + 1;
    e.i_seq <- t.seq;
    (* Best-effort mtime bump so LRU order survives a restart. *)
    (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ())

let index_insert t path bytes =
  index_forget t path;
  t.seq <- t.seq + 1;
  Hashtbl.replace t.index path { i_bytes = bytes; i_seq = t.seq };
  t.total <- t.total + bytes

(* Evict coldest-first until the cap fits; [keep] (the entry just
   written) is exempt so one oversized payload cannot evict itself. *)
let evict_to_cap t ~keep =
  match t.cap_bytes with
  | None -> ()
  | Some cap ->
    let rec loop () =
      if t.total > cap then begin
        let victim = ref None in
        Hashtbl.iter
          (fun path e ->
            if path <> keep then
              match !victim with
              | Some (_, v) when v.i_seq <= e.i_seq -> ()
              | _ -> victim := Some (path, e))
          t.index;
        match !victim with
        | None -> ()
        | Some (path, e) ->
          (try Sys.remove path with Sys_error _ -> ());
          Hashtbl.remove t.index path;
          t.total <- t.total - e.i_bytes;
          t.n_evictions <- t.n_evictions + 1;
          t.n_bytes_evicted <- t.n_bytes_evicted + e.i_bytes;
          Obs.count "cache.evictions" 1;
          Obs.count "cache.bytes_evicted" e.i_bytes;
          loop ()
      end
    in
    loop ()

(* Length-prefixed concatenation makes part boundaries unambiguous, so
   the key is a pure function of the part *list*, not of the joined
   text.  MD5 (Stdlib Digest) is stable across restarts and platforms;
   this is an integrity/addressing hash, not a security boundary. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let header_magic = "rgleak-cache/1"

let entry_path t ~kind ~version ~key =
  let shard = String.sub key 0 2 in
  List.fold_left Filename.concat t.root
    [ Printf.sprintf "%s-v%d" kind version; shard; key ^ ".rgc" ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let record_hit t n =
  t.n_hits <- t.n_hits + 1;
  t.n_bytes_read <- t.n_bytes_read + n;
  Obs.count "cache.hits" 1;
  Obs.count "cache.bytes_read" n;
  (* Cumulative running total as a timeline track: renders as a
     monotone staircase in the Chrome trace. *)
  Obs.track "cache.hits" (float_of_int t.n_hits)

let record_miss t =
  t.n_misses <- t.n_misses + 1;
  Obs.count "cache.misses" 1;
  Obs.track "cache.misses" (float_of_int t.n_misses)

let record_corrupt t ~path detail =
  t.n_corrupt <- t.n_corrupt + 1;
  Obs.count "cache.corrupt" 1;
  (try Sys.remove path with Sys_error _ -> ());
  index_forget t path;
  t.on_corrupt
    (Guard.Invalid_input
       (Printf.sprintf "corrupt cache entry %s (%s); recomputing" path detail))

(* Entry layout: one header line, then the raw payload.
     rgleak-cache/1 <kind> <version> <payload-bytes> <payload-md5>\n
   The digest covers the payload only; kind/version in the header catch
   a file renamed or copied across namespaces. *)
let parse_entry ~kind ~version contents =
  match String.index_opt contents '\n' with
  | None -> Error "no header line"
  | Some nl -> (
    let header = String.sub contents 0 nl in
    let payload =
      String.sub contents (nl + 1) (String.length contents - nl - 1)
    in
    match String.split_on_char ' ' header with
    | [ magic; k; v; bytes; md5 ] ->
      if magic <> header_magic then Error "bad magic"
      else if k <> kind then Error (Printf.sprintf "kind %S, want %S" k kind)
      else if v <> string_of_int version then
        Error (Printf.sprintf "version %s, want %d" v version)
      else if int_of_string_opt bytes <> Some (String.length payload) then
        Error "payload length mismatch (truncated or overwritten)"
      else if Digest.to_hex (Digest.string payload) <> md5 then
        Error "payload digest mismatch"
      else Ok payload
    | _ -> Error "malformed header")

let get t ~kind ~version ~key =
  Obs.hist_time "cache.get_s" @@ fun () ->
  let path = entry_path t ~kind ~version ~key in
  match read_file path with
  | exception Sys_error _ ->
    record_miss t;
    None
  | contents -> (
    if Guard.Fault.fire "cache" then begin
      record_corrupt t ~path "injected fault";
      record_miss t;
      None
    end
    else
      match parse_entry ~kind ~version contents with
      | Ok payload ->
        record_hit t (String.length payload);
        if capped t then index_touch t path;
        Some payload
      | Error detail ->
        record_corrupt t ~path detail;
        record_miss t;
        None)

let put t ~kind ~version ~key payload =
  Obs.hist_time "cache.put_s" @@ fun () ->
  let path = entry_path t ~kind ~version ~key in
  try
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Hashtbl.hash key)
    in
    let oc = open_out_bin tmp in
    (try
       Printf.fprintf oc "%s %s %d %d %s\n" header_magic kind version
         (String.length payload)
         (Digest.to_hex (Digest.string payload));
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    t.n_bytes_written <- t.n_bytes_written + String.length payload;
    Obs.count "cache.bytes_written" (String.length payload);
    if capped t then begin
      let size =
        try (Unix.stat path).Unix.st_size
        with Unix.Unix_error _ -> String.length payload
      in
      index_insert t path size;
      evict_to_cap t ~keep:path
    end
  with Sys_error _ | Unix.Unix_error _ ->
    t.n_put_errors <- t.n_put_errors + 1;
    Obs.count "cache.put_errors" 1

let stats t =
  {
    hits = t.n_hits;
    misses = t.n_misses;
    corrupt = t.n_corrupt;
    put_errors = t.n_put_errors;
    bytes_read = t.n_bytes_read;
    bytes_written = t.n_bytes_written;
    evictions = t.n_evictions;
    bytes_evicted = t.n_bytes_evicted;
  }

let reset_stats t =
  t.n_hits <- 0;
  t.n_misses <- 0;
  t.n_corrupt <- 0;
  t.n_put_errors <- 0;
  t.n_bytes_read <- 0;
  t.n_bytes_written <- 0;
  t.n_evictions <- 0;
  t.n_bytes_evicted <- 0
