module Guard = Rgleak_num.Guard
module Obs = Rgleak_obs.Obs
module Vjson = Rgleak_valid.Vjson
module Cache = Rgleak_cache.Cache
module Batch = Rgleak_cache.Batch

let () = Obs.declare_hist ~owner:"serve" "serve.request_s"

module Sched = struct
  (* Per-client FIFO queues plus a ring of client ids with pending
     work: [next] serves the ring head and re-appends it while it
     still has items, giving round-robin fairness at request
     granularity.  Stale ring entries (from [forget]) are skipped. *)
  type 'a t = {
    queues : (int, 'a Queue.t) Hashtbl.t;
    ring : int Queue.t;
    mutable n : int;
  }

  let create () = { queues = Hashtbl.create 8; ring = Queue.create (); n = 0 }
  let depth t = t.n

  let admit t ~client x =
    let q =
      match Hashtbl.find_opt t.queues client with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.queues client q;
        Queue.push client t.ring;
        q
    in
    Queue.push x q;
    t.n <- t.n + 1

  let rec next t =
    if Queue.is_empty t.ring then None
    else
      let c = Queue.pop t.ring in
      match Hashtbl.find_opt t.queues c with
      | None -> next t
      | Some q ->
        if Queue.is_empty q then begin
          Hashtbl.remove t.queues c;
          next t
        end
        else begin
          let x = Queue.pop q in
          t.n <- t.n - 1;
          if Queue.is_empty q then Hashtbl.remove t.queues c
          else Queue.push c t.ring;
          Some (c, x)
        end

  let forget t ~client =
    match Hashtbl.find_opt t.queues client with
    | None -> ()
    | Some q ->
      t.n <- t.n - Queue.length q;
      Hashtbl.remove t.queues client
end

type config = {
  socket_path : string;
  max_queue : int;
  shed_threshold : int option;
  cache : Cache.t option;
}

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  mutable out : string;  (* response bytes not yet written *)
  mutable eof : bool;  (* peer write side closed; flush then close *)
  mutable dead : bool;  (* write failed; discard connection and queue *)
  mutable pending : int;  (* admitted requests not yet answered *)
}

type item = { i_conn : conn; i_scens : Batch.scenario list }

type server = {
  cfg : config;
  listen_fd : Unix.file_descr;
  sched : item Sched.t;
  started : float;
  mutable conns : conn list;
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable stop_req : bool;
  mutable next_cid : int;
  mutable n_requests : int;
  mutable n_sheds : int;
  mutable n_rejected : int;
  mutable n_errors : int;
}

let send_response c resp =
  if not c.dead then c.out <- c.out ^ Protocol.encode_response resp

let mark_dead srv c =
  if not c.dead then begin
    c.dead <- true;
    Sched.forget srv.sched ~client:c.cid
  end

(* ---------- request execution ---------- *)

let is_sheddable = function Batch.Exact | Batch.Mc -> true | _ -> false

let degrade_record requested o =
  match o.Batch.o_json with
  | Vjson.Obj fields ->
    {
      o with
      Batch.o_json =
        Vjson.Obj
          (fields
          @ [
              ("degraded", Vjson.Bool true);
              ("requested_tier", Vjson.Str (Batch.tier_name requested));
            ]);
    }
  | _ -> o

let run_item srv ~shed item =
  Obs.span "serve.request" @@ fun () ->
  Obs.hist_time "serve.request_s" @@ fun () ->
  let engine = Batch.engine ?cache:srv.cfg.cache () in
  let outcomes =
    List.map
      (fun scen ->
        if shed && is_sheddable scen.Batch.s_tier then begin
          srv.n_sheds <- srv.n_sheds + 1;
          Obs.count "serve.sheds" 1;
          degrade_record scen.Batch.s_tier
            (Batch.run_one engine { scen with Batch.s_tier = Batch.Integral_2d })
        end
        else Batch.run_one engine scen)
      item.i_scens
  in
  let payload =
    String.concat ""
      (List.map (fun o -> Vjson.to_string o.Batch.o_json ^ "\n") outcomes)
  in
  (payload, Batch.exit_code outcomes)

let exec_one srv =
  match Sched.next srv.sched with
  | None -> ()
  | Some (_, item) ->
    let c = item.i_conn in
    c.pending <- c.pending - 1;
    if not c.dead then begin
      srv.n_requests <- srv.n_requests + 1;
      Obs.count "serve.requests" 1;
      let shed =
        match srv.cfg.shed_threshold with
        | Some th -> Sched.depth srv.sched >= th
        | None -> false
      in
      let resp =
        match Guard.protect (fun () -> run_item srv ~shed item) with
        | Ok (payload, code) -> { Protocol.status = Protocol.Ok; code; payload }
        | Error d ->
          srv.n_errors <- srv.n_errors + 1;
          {
            Protocol.status = Protocol.Error;
            code = Guard.exit_code d;
            payload = Guard.to_string d ^ "\n";
          }
      in
      send_response c resp
    end

(* ---------- stats ---------- *)

let stats_json srv =
  let snap = Obs.snapshot () in
  let q p =
    match List.assoc_opt "serve.request_s" snap.Obs.hists with
    | Some h when h.Obs.h_count > 0 -> Obs.hist_quantile h p
    | _ -> 0.0
  in
  let uptime = Unix.gettimeofday () -. srv.started in
  let num n = Vjson.Num (float_of_int n) in
  let cache_obj =
    match srv.cfg.cache with
    | None -> Vjson.Obj [ ("enabled", Vjson.Bool false) ]
    | Some c ->
      let s = Cache.stats c in
      let looked = s.Cache.hits + s.Cache.misses in
      Vjson.Obj
        [
          ("enabled", Vjson.Bool true);
          ("hits", num s.Cache.hits);
          ("misses", num s.Cache.misses);
          ( "hit_rate",
            Vjson.Num
              (if looked = 0 then 0.0
               else float_of_int s.Cache.hits /. float_of_int looked) );
          ("evictions", num s.Cache.evictions);
          ("bytes_evicted", num s.Cache.bytes_evicted);
          ("bytes", num (Cache.total_bytes c));
        ]
  in
  Vjson.to_string
    (Vjson.Obj
       [
         ("schema", Vjson.Str "rgleak-serve-stats/1");
         ("uptime_s", Vjson.Num uptime);
         ("requests", num srv.n_requests);
         ( "qps",
           Vjson.Num
             (if uptime > 0.0 then float_of_int srv.n_requests /. uptime
              else 0.0) );
         ("latency_p50_s", Vjson.Num (q 0.5));
         ("latency_p99_s", Vjson.Num (q 0.99));
         ("queue_depth", num (Sched.depth srv.sched));
         ("clients", num (List.length srv.conns));
         ("sheds", num srv.n_sheds);
         ("rejected", num srv.n_rejected);
         ("errors", num srv.n_errors);
         ("cache", cache_obj);
       ])
  ^ "\n"

(* ---------- frame handling ---------- *)

let handle_request srv c (req : Protocol.request) =
  match req.Protocol.op with
  | Protocol.Ping ->
    send_response c { Protocol.status = Protocol.Ok; code = 0; payload = "" }
  | Protocol.Stats ->
    send_response c
      { Protocol.status = Protocol.Ok; code = 0; payload = stats_json srv }
  | Protocol.Shutdown ->
    send_response c { Protocol.status = Protocol.Ok; code = 0; payload = "" };
    srv.stop_req <- true
  | Protocol.Estimate -> (
    match Guard.protect (fun () -> Batch.parse_manifest req.Protocol.body) with
    | Error d ->
      srv.n_errors <- srv.n_errors + 1;
      send_response c
        {
          Protocol.status = Protocol.Error;
          code = Guard.exit_code d;
          payload = Guard.to_string d ^ "\n";
        }
    | Ok scens ->
      if Sched.depth srv.sched >= srv.cfg.max_queue then begin
        srv.n_rejected <- srv.n_rejected + 1;
        Obs.count "serve.rejected" 1;
        send_response c
          {
            Protocol.status = Protocol.Error;
            code = 5;
            payload =
              Printf.sprintf "server overloaded: queue full (max %d)\n"
                srv.cfg.max_queue;
          }
      end
      else begin
        Sched.admit srv.sched ~client:c.cid { i_conn = c; i_scens = scens };
        c.pending <- c.pending + 1;
        Obs.track "serve.queue_depth" (float_of_int (Sched.depth srv.sched))
      end)

let rec drain_frames srv c =
  if not c.dead then begin
    let buf = Buffer.contents c.inbuf in
    match Protocol.decode_request buf with
    | Protocol.Need_more -> ()
    | Protocol.Bad reason ->
      srv.n_errors <- srv.n_errors + 1;
      send_response c
        {
          Protocol.status = Protocol.Error;
          code = 2;
          payload = "protocol error: " ^ reason ^ "\n";
        };
      (* The stream cannot be resynchronized: stop reading, flush the
         diagnostic, then close. *)
      c.eof <- true;
      Buffer.clear c.inbuf
    | Protocol.Got (req, consumed) ->
      Buffer.clear c.inbuf;
      Buffer.add_substring c.inbuf buf consumed (String.length buf - consumed);
      handle_request srv c req;
      drain_frames srv c
  end

(* ---------- event loop ---------- *)

let read_chunk = Bytes.create 65536

let read_conn srv c =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> mark_dead srv c
  | 0 ->
    c.eof <- true;
    drain_frames srv c
  | n ->
    Buffer.add_subbytes c.inbuf read_chunk 0 n;
    drain_frames srv c

let flush_conn srv c =
  match Unix.write_substring c.fd c.out 0 (String.length c.out) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> mark_dead srv c
  | n -> c.out <- String.sub c.out n (String.length c.out - n)

let rec accept_loop srv =
  match Unix.accept srv.listen_fd with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
    Unix.set_nonblock fd;
    srv.next_cid <- srv.next_cid + 1;
    srv.conns <-
      {
        fd;
        cid = srv.next_cid;
        inbuf = Buffer.create 256;
        out = "";
        eof = false;
        dead = false;
        pending = 0;
      }
      :: srv.conns;
    accept_loop srv

let bind_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.set_nonblock fd;
     Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Guard.invalid
       (Printf.sprintf "cannot bind socket %s: %s%s" path
          (Unix.error_message e)
          (if e = Unix.EADDRINUSE then
             " (another daemon running, or a stale socket file)"
           else "")));
  Unix.listen fd 64;
  fd

let drain_grace_s = 10.0

let run ?(on_listen = fun () -> ()) cfg =
  if not (Obs.enabled ()) then Obs.set_enabled true;
  let listen_fd = bind_socket cfg.socket_path in
  on_listen ();
  let srv =
    {
      cfg;
      listen_fd;
      sched = Sched.create ();
      started = Unix.gettimeofday ();
      conns = [];
      draining = false;
      drain_deadline = infinity;
      stop_req = false;
      next_cid = 0;
      n_requests = 0;
      n_sheds = 0;
      n_rejected = 0;
      n_errors = 0;
    }
  in
  (* Warm the shared pool before the first request arrives. *)
  ignore (Rgleak_num.Parallel.default ());
  let stop = ref false in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigpipe prev_pipe;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        srv.conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
  @@ fun () ->
  let finished () =
    srv.draining
    && (Sched.depth srv.sched = 0
        && List.for_all (fun c -> c.out = "" || c.dead) srv.conns
       || Unix.gettimeofday () > srv.drain_deadline)
  in
  while not (finished ()) do
    if (!stop || srv.stop_req) && not srv.draining then begin
      srv.draining <- true;
      srv.drain_deadline <- Unix.gettimeofday () +. drain_grace_s
    end;
    (* Reap finished and vanished connections. *)
    srv.conns <-
      List.filter
        (fun c ->
          if c.dead || (c.eof && c.pending = 0 && c.out = "") then begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            false
          end
          else true)
        srv.conns;
    let rds =
      if srv.draining then []
      else
        listen_fd
        :: List.filter_map
             (fun c -> if c.eof || c.dead then None else Some c.fd)
             srv.conns
    in
    let wrs =
      List.filter_map
        (fun c -> if c.out <> "" && not c.dead then Some c.fd else None)
        srv.conns
    in
    let timeout = if Sched.depth srv.sched > 0 then 0.0 else 0.25 in
    let rd_ready, wr_ready, _ =
      try Unix.select rds wrs [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq listen_fd rd_ready then accept_loop srv;
    List.iter
      (fun c ->
        if (not c.eof) && (not c.dead) && List.memq c.fd rd_ready then
          read_conn srv c)
      srv.conns;
    List.iter
      (fun c ->
        if c.out <> "" && (not c.dead) && List.memq c.fd wr_ready then
          flush_conn srv c)
      srv.conns;
    (* One admitted request per iteration keeps the socket responsive
       while long tiers run between I/O rounds. *)
    exec_one srv
  done
