(** The [rgleak serve] daemon: a persistent estimation service on a
    Unix-domain socket.

    One single-threaded event loop owns the socket, the admission
    queue and the shared warm {!Rgleak_num.Parallel} pool; estimator
    work runs between I/O rounds, one admitted request at a time, so
    responses per connection always come back in request order and the
    pool is never entered re-entrantly.  Each admitted request runs on
    a fresh {!Rgleak_cache.Batch} engine over the one shared
    {!Rgleak_cache.Cache} handle — so repeated scenarios hit the disk
    cache (visibly, in the stats), and within a request the semantics
    are exactly [rgleak batch]'s, making [ok] records byte-identical
    to that subcommand's output for the same manifest lines at any
    job count.

    {b Admission and fairness.}  [estimate] requests are parsed
    immediately (malformed manifests answer [error 2] without
    queueing) and admitted only while the queue is shorter than
    [max_queue]; past the cap the request is rejected with code [5]
    ([server overloaded]) and counted.  The queue is drained
    round-robin across connections ({!Sched}), so a client streaming
    many requests cannot starve a newcomer.

    {b Load shedding.}  With [shed_threshold] set, a request dequeued
    while the queue still holds at least that many others runs its
    [exact]/[mc]-tier scenarios on the O(1) 2-D integral tier instead;
    the affected records carry ["degraded": true] and
    ["requested_tier"] so callers can tell, and each rewrite counts
    toward [sheds].  [shed_threshold 0] degrades every eligible
    scenario — the deterministic setting the tests use.

    {b Shutdown.}  SIGTERM (or a [shutdown] request) stops accepting
    connections, drains every admitted request, flushes the responses,
    unlinks the socket and returns normally — so the CLI wrapper's
    ledger line is the final act of a clean exit 0.

    The loop enables {!Rgleak_obs.Obs} telemetry: every request is a
    [serve.request] span with its latency in the [serve.request_s]
    histogram, and the [stats] op answers a compact
    [rgleak-serve-stats/1] JSON object (uptime, request count, QPS,
    p50/p99 latency, queue depth, sheds, rejections, cache hit rate
    and eviction counters). *)

(** Fair round-robin admission queue: each client keeps FIFO order,
    service cycles across clients with pending work.  Pure bookkeeping
    (no I/O), exposed for direct testing. *)
module Sched : sig
  type 'a t

  val create : unit -> 'a t
  val depth : 'a t -> int

  val admit : 'a t -> client:int -> 'a -> unit
  (** Appends to [client]'s queue (joining the service ring on first
      pending item). *)

  val next : 'a t -> (int * 'a) option
  (** The next (client, item) in round-robin order, or [None] when
      empty. *)

  val forget : 'a t -> client:int -> unit
  (** Drops every pending item of [client] (a vanished connection). *)
end

type config = {
  socket_path : string;
  max_queue : int;  (** admission cap; 0 rejects every estimate *)
  shed_threshold : int option;  (** [None] never sheds *)
  cache : Rgleak_cache.Cache.t option;
}

val run : ?on_listen:(unit -> unit) -> config -> unit
(** Binds, calls [on_listen] (the readiness banner hook), serves until
    SIGTERM or a [shutdown] request, drains, and returns.  Raises
    {!Rgleak_num.Guard.Error} ([Invalid_input]) when the socket path
    cannot be bound. *)
