(** The [rgleak-serve/1] wire protocol: length-prefixed frames over a
    Unix-domain stream socket.

    A request frame is one ASCII header line followed by exactly
    [LEN] payload bytes:

    {v
    rgleak-serve/1 <op> <LEN>\n<payload>
    v}

    where [<op>] is [estimate], [stats], [ping] or [shutdown].  The
    [estimate] payload is JSONL manifest text with exactly the
    [rgleak batch] scenario fields (a single scenario is a one-line
    manifest); the other ops carry an empty payload.

    A response frame mirrors the shape:

    {v
    rgleak-serve/1 <status> <code> <LEN>\n<payload>
    v}

    with [<status>] either [ok] or [error] and [<code>] the run class:
    [0] ok, [2]/[3]/[4] the {!Rgleak_num.Guard} CLI exit classes
    (invalid-input / numeric / internal), [5] server overloaded
    (admission rejection).  An [estimate] response with [status ok]
    carries the scenario records (one compact JSON object per line,
    byte-identical to the corresponding [rgleak batch] records) and
    [code] equal to the records' highest failure class; an [error]
    response means the request itself failed and the payload is a
    human-readable diagnostic.

    The length prefix makes framing independent of payload content;
    the decoder is incremental so servers and clients can feed it
    partial reads.  Payloads over {!max_payload} are rejected before
    buffering. *)

val magic : string
(** ["rgleak-serve/1"]. *)

val max_payload : int
(** Frame payload hard cap (16 MiB): a decoder fed a larger length
    answers [Bad] without waiting for the bytes. *)

type op = Estimate | Stats | Ping | Shutdown

val op_name : op -> string
val op_of_name : string -> op option

type request = { op : op; body : string }

type status = Ok | Error

type response = { status : status; code : int; payload : string }

val encode_request : request -> string
val encode_response : response -> string

(** Incremental decode result: [Need_more] when the buffer holds only
    a partial frame, [Got (frame, consumed)] with the byte count to
    drop from the front of the buffer, [Bad reason] on a malformed
    header (the connection cannot be resynchronized and should be
    closed). *)
type 'a decode = Need_more | Got of 'a * int | Bad of string

val decode_request : string -> request decode
(** Decodes the frame starting at offset 0 of the buffer. *)

val decode_response : string -> response decode
