let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | written -> go (off + written)
  in
  go 0

let read_response fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Protocol.decode_response (Buffer.contents buf) with
    | Protocol.Got (resp, _) -> Ok resp
    | Protocol.Bad reason -> Error ("malformed response: " ^ reason)
    | Protocol.Need_more -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) ->
        Error ("read: " ^ Unix.error_message e)
      | 0 -> Error "connection closed before a full response"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ())
  in
  go ()

let request ~socket ~op ?(body = "") () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message e))
      | () -> (
        match write_all fd (Protocol.encode_request { Protocol.op; body }) with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("write: " ^ Unix.error_message e)
        | () -> read_response fd))

let wait_ready ~socket ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match request ~socket ~op:Protocol.Ping () with
    | Ok { Protocol.status = Protocol.Ok; _ } -> true
    | _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        (try ignore (Unix.select [] [] [] 0.05)
         with Unix.Unix_error _ -> ());
        go ()
      end
  in
  go ()
