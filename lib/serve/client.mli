(** Blocking client for the [rgleak serve] daemon: one request, one
    response, over a fresh connection.  Errors (no daemon, refused
    connection, truncated or malformed reply) come back as [Error]
    strings — never exceptions — so callers map them to their own
    diagnostics. *)

val request :
  socket:string ->
  op:Protocol.op ->
  ?body:string ->
  unit ->
  (Protocol.response, string) result
(** Connects to [socket], sends one frame, reads the full response.
    [body] defaults to empty (only [Estimate] carries one). *)

val wait_ready : socket:string -> timeout_s:float -> bool
(** Polls the daemon with [Ping] until it answers or [timeout_s]
    elapses — the startup barrier scripts and tests use instead of
    sleeping. *)
