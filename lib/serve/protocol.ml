let magic = "rgleak-serve/1"
let max_payload = 16 * 1024 * 1024

(* A header is the magic, two or three short tokens and a newline;
   anything longer without a newline is garbage, not a slow sender. *)
let max_header = 128

type op = Estimate | Stats | Ping | Shutdown

let op_name = function
  | Estimate -> "estimate"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "estimate" -> Some Estimate
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = { op : op; body : string }
type status = Ok | Error
type response = { status : status; code : int; payload : string }

let encode_request { op; body } =
  Printf.sprintf "%s %s %d\n%s" magic (op_name op) (String.length body) body

let encode_response { status; code; payload } =
  Printf.sprintf "%s %s %d %d\n%s" magic
    (match status with Ok -> "ok" | Error -> "error")
    code (String.length payload) payload

type 'a decode = Need_more | Got of 'a * int | Bad of string

(* Shared framing: find the header line, validate the length field,
   wait for the payload.  [of_tokens] interprets the header tokens
   before the trailing length. *)
let decode_frame of_tokens buf =
  match String.index_opt buf '\n' with
  | None ->
    if String.length buf > max_header then Bad "oversized header line"
    else Need_more
  | Some nl when nl > max_header -> Bad "oversized header line"
  | Some nl -> (
    let header = String.sub buf 0 nl in
    match String.split_on_char ' ' header with
    | m :: rest when m = magic -> (
      match List.rev rest with
      | len_s :: rev_tokens -> (
        match int_of_string_opt len_s with
        | None -> Bad (Printf.sprintf "bad frame length %S" len_s)
        | Some len when len < 0 || len > max_payload ->
          Bad (Printf.sprintf "frame length %d out of range" len)
        | Some len -> (
          match of_tokens (List.rev rev_tokens) with
          | Result.Error reason -> Bad reason
          | Result.Ok mk ->
            if String.length buf < nl + 1 + len then Need_more
            else Got (mk (String.sub buf (nl + 1) len), nl + 1 + len)))
      | [] -> Bad "truncated header")
    | _ -> Bad "bad magic")

let decode_request buf =
  decode_frame
    (function
      | [ name ] -> (
        match op_of_name name with
        | Some op -> Result.Ok (fun body -> { op; body })
        | None -> Result.Error (Printf.sprintf "unknown op %S" name))
      | _ -> Result.Error "malformed request header")
    buf

let decode_response buf =
  decode_frame
    (function
      | [ status_s; code_s ] -> (
        match
          ( (match status_s with
            | "ok" -> Some Ok
            | "error" -> Some Error
            | _ -> None),
            int_of_string_opt code_s )
        with
        | Some status, Some code ->
          Result.Ok (fun payload -> { status; code; payload })
        | _ ->
          Result.Error
            (Printf.sprintf "malformed response header %S %S" status_s code_s))
      | _ -> Result.Error "malformed response header")
    buf
