type triplet = { a : float; b : float; c : float }

exception Divergent

let triplet ~a ~b ~c =
  if a <= 0.0 then invalid_arg "Mgf.triplet: a must be positive";
  { a; b; c }

(* Centered parametrization: with L = mu + delta, delta ~ N(0, sigma²),
   Y = ln X = k0 + beta*delta + c*delta² where k0 = ln a + b mu + c mu²
   and beta = b + 2 c mu.  This form is exactly equivalent to the
   paper's (K1, K2, K3) and handles c = 0 without a special case. *)
let centered t ~mu =
  let k0 = log t.a +. (t.b *. mu) +. (t.c *. mu *. mu) in
  let beta = t.b +. (2.0 *. t.c *. mu) in
  (k0, beta)

let k_params t ~mu ~sigma =
  let k1 = t.c *. sigma *. sigma in
  let k2 =
    if t.c = 0.0 then nan else (mu +. (t.b /. (2.0 *. t.c))) /. sigma
  in
  let k3 =
    let k0, beta = centered t ~mu in
    if t.c = 0.0 then k0 (* degenerate: Y = k0 + beta*delta *)
    else k0 -. (beta *. beta /. (4.0 *. t.c))
  in
  (k1, k2, k3)

let mgf_log t ~mu ~sigma tt =
  let k0, beta = centered t ~mu in
  let s2 = sigma *. sigma in
  let q = 1.0 -. (2.0 *. tt *. t.c *. s2) in
  if q <= 0.0 then raise Divergent;
  exp ((tt *. k0) +. (tt *. tt *. beta *. beta *. s2 /. (2.0 *. q)))
  /. sqrt q

let mean t ~mu ~sigma = mgf_log t ~mu ~sigma 1.0

let variance t ~mu ~sigma =
  let m1 = mgf_log t ~mu ~sigma 1.0 in
  let m2 = mgf_log t ~mu ~sigma 2.0 in
  Float.max 0.0 (m2 -. (m1 *. m1))

let std t ~mu ~sigma = sqrt (variance t ~mu ~sigma)

(* E[X_m X_n] = E[exp(c0 + beta_m d1 + beta_n d2 + c_m d1² + c_n d2²)]
   for (d1, d2) zero-mean bivariate normal; closed form via the 2x2
   Gaussian quadratic-form MGF, expanded by hand for speed (this sits in
   the inner loop of the correlation tabulation). *)
let pair_product_mean tm tn ~mu ~sigma ~rho =
  if not (rho >= -1.0 && rho <= 1.0) then
    invalid_arg "Mgf.pair_product_mean: correlation out of range";
  let k0m, bm = centered tm ~mu in
  let k0n, bn = centered tn ~mu in
  let s2 = sigma *. sigma in
  let m11 = 1.0 -. (2.0 *. s2 *. tm.c) in
  let m22 = 1.0 -. (2.0 *. s2 *. tn.c) in
  let det = (m11 *. m22) -. (4.0 *. s2 *. s2 *. rho *. rho *. tm.c *. tn.c) in
  if m11 <= 0.0 || m22 <= 0.0 || det <= 0.0 then raise Divergent;
  let one_less = 1.0 -. (rho *. rho) in
  let quad =
    (bm *. bm *. (1.0 -. (2.0 *. s2 *. tn.c *. one_less)))
    +. (2.0 *. rho *. bm *. bn)
    +. (bn *. bn *. (1.0 -. (2.0 *. s2 *. tm.c *. one_less)))
  in
  exp (k0m +. k0n +. (s2 *. quad /. (2.0 *. det))) /. sqrt det

let pair_covariance tm tn ~mu ~sigma ~rho =
  pair_product_mean tm tn ~mu ~sigma ~rho
  -. (mean tm ~mu ~sigma *. mean tn ~mu ~sigma)

let pair_correlation tm tn ~mu ~sigma ~rho =
  let sm = std tm ~mu ~sigma and sn = std tn ~mu ~sigma in
  if sm = 0.0 || sn = 0.0 then 0.0
  else pair_covariance tm tn ~mu ~sigma ~rho /. (sm *. sn)
