let state_probability ~num_inputs ~p idx =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Signal_prob: p must be in [0,1]";
  let prob = ref 1.0 in
  for bit = 0 to num_inputs - 1 do
    let one = (idx lsr bit) land 1 = 1 in
    prob := !prob *. (if one then p else 1.0 -. p)
  done;
  !prob

let state_probabilities ~num_inputs ~p =
  Array.init (1 lsl num_inputs) (state_probability ~num_inputs ~p)

type weighted = { p : float; mu : float; sigma_mixture : float }
type stats_mode = Analytic | Reference

let state_moments mode (sc : Characterize.state_char) =
  match mode with
  | Analytic -> (sc.mu_analytic, sc.sigma_analytic)
  | Reference -> (sc.mu_ref, sc.sigma_ref)

let weighted_stats ?(mode = Analytic) (char : Characterize.cell_char) ~p =
  let num_inputs = char.cell.Cell.num_inputs in
  let probs = state_probabilities ~num_inputs ~p in
  let mu = ref 0.0 and second = ref 0.0 in
  Array.iteri
    (fun idx weight ->
      let m, s = state_moments mode char.states.(idx) in
      mu := !mu +. (weight *. m);
      second := !second +. (weight *. ((s *. s) +. (m *. m))))
    probs;
  let var = Float.max 0.0 (!second -. (!mu *. !mu)) in
  { p; mu = !mu; sigma_mixture = sqrt var }

let design_mean ?(mode = Analytic) chars ~weights ~p =
  if Array.length chars <> Array.length weights then
    invalid_arg "Signal_prob.design_mean: weights length mismatch";
  let total = ref 0.0 in
  Array.iteri
    (fun i char ->
      if weights.(i) > 0.0 then begin
        let w = weighted_stats ~mode char ~p in
        total := !total +. (weights.(i) *. w.mu)
      end)
    chars;
  !total

let sweep ?(mode = Analytic) ?(points = 101) chars ~weights =
  Array.map
    (fun p -> (p, design_mean ~mode chars ~weights ~p))
    (Rgleak_num.Vector.linspace 0.0 1.0 points)

let maximizing_p ?(mode = Analytic) ?(points = 101) chars ~weights =
  let curve = sweep ~mode ~points chars ~weights in
  let best = ref curve.(0) in
  Array.iter (fun (p, v) -> if v > snd !best then best := (p, v)) curve;
  fst !best
