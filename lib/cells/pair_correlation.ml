open Rgleak_num
open Rgleak_process

let analytic (sa : Characterize.state_char) (sb : Characterize.state_char)
    ~param ~rho =
  let mu = param.Process_param.nominal in
  let sigma = Process_param.sigma_total param in
  Mgf.pair_correlation sa.fit sb.fit ~mu ~sigma ~rho

let monte_carlo (sa : Characterize.state_char) (sb : Characterize.state_char)
    ~param ~rho ~samples ~rng =
  if not (rho >= -1.0 && rho <= 1.0) then
    invalid_arg "Pair_correlation.monte_carlo: correlation out of range";
  let mu = param.Process_param.nominal in
  let sigma = Process_param.sigma_total param in
  let acc = Stats.Cov_acc.create () in
  let mix = sqrt (1.0 -. (rho *. rho)) in
  for _ = 1 to samples do
    let z1 = Rng.gaussian rng in
    let z2 = (rho *. z1) +. (mix *. Rng.gaussian rng) in
    let l1 = mu +. (sigma *. z1) in
    let l2 = mu +. (sigma *. z2) in
    Stats.Cov_acc.add acc (Characterize.leakage_at sa l1) (Characterize.leakage_at sb l2)
  done;
  Stats.Cov_acc.correlation acc

let curve ?(points = 21) ~f () =
  Array.map (fun rho -> (rho, f ~rho)) (Vector.linspace 0.0 1.0 points)

let max_identity_deviation curve =
  Array.fold_left
    (fun acc (rho, r) -> Float.max acc (Float.abs (r -. rho)))
    0.0 curve
