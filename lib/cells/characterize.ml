open Rgleak_num
open Rgleak_process
module Obs = Rgleak_obs.Obs

type state_char = {
  state_index : int;
  table : Interp.t;
  fit : Mgf.triplet;
  fit_rms_log : float;
  mu_analytic : float;
  sigma_analytic : float;
  mu_ref : float;
  sigma_ref : float;
  mu_mc : float;
  sigma_mc : float;
}

type cell_char = {
  cell : Cell.t;
  param : Process_param.t;
  states : state_char array;
}

let leakage_at sc l = Interp.eval sc.table l

(* Reference moments: integrate the tabulated curve (and its square)
   against the normal length density over the tabulated span. *)
let reference_moments table ~mu ~sigma ~span =
  let lo = mu -. (span *. sigma) and hi = mu +. (span *. sigma) in
  let pdf l =
    let z = (l -. mu) /. sigma in
    exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))
  in
  let m1 =
    Quadrature.gauss_legendre ~order:96 (fun l -> Interp.eval table l *. pdf l) ~lo ~hi
  in
  let m2 =
    Quadrature.gauss_legendre ~order:96
      (fun l ->
        let x = Interp.eval table l in
        x *. x *. pdf l)
      ~lo ~hi
  in
  (m1, sqrt (Float.max 0.0 (m2 -. (m1 *. m1))))

let characterize_state ~env ~param ~span ~l_points ~mc_samples ~rng cell
    state_index =
  let mu = param.Process_param.nominal in
  let sigma = Process_param.sigma_total param in
  let state = Cell.state_of_index cell state_index in
  let lo = mu -. (span *. sigma) and hi = mu +. (span *. sigma) in
  let ls = Vector.linspace lo hi l_points in
  let currents = Array.map (fun l -> Cell.leakage ~l_nm:l ~env cell state) ls in
  let table = Interp.of_points (Array.map2 (fun l x -> (l, x)) ls currents) in
  (* The (a,b,c) fit uses the ±3.5σ core of the grid: this mimics the
     paper's "limited sampling" and keeps the fit representative of the
     probable region rather than the extreme tails. *)
  let fit_span = Float.min span 3.5 in
  let fit_mask l = Float.abs (l -. mu) <= fit_span *. sigma +. 1e-9 in
  let fit_ls =
    Array.of_seq (Seq.filter fit_mask (Array.to_seq ls))
  in
  let fit_currents = Array.map (fun l -> Interp.eval table l) fit_ls in
  let a, b, c = Polyfit.fit_log_quadratic ~ls:fit_ls ~currents:fit_currents in
  let fit = Mgf.triplet ~a ~b ~c in
  let fit_rms_log =
    let coeffs = [| log a; b; c |] in
    Polyfit.rms_residual ~coeffs ~xs:fit_ls ~ys:(Array.map log fit_currents)
  in
  (* Boundary guardrail: a fit whose moments blow up (degenerate grid,
     divergent MGF) must surface as a typed diagnostic, not as NaN
     moments silently poisoning every downstream estimate. *)
  let check name v =
    Guard.check_finite ~site:"characterize"
      ~name:(Printf.sprintf "%s of %s state %d" name cell.Cell.name state_index)
      v
  in
  let mu_analytic = check "analytic mean" (Mgf.mean fit ~mu ~sigma) in
  let sigma_analytic = check "analytic sigma" (Mgf.std fit ~mu ~sigma) in
  let mu_ref, sigma_ref = reference_moments table ~mu ~sigma ~span in
  let mu_ref = check "reference mean" mu_ref in
  let acc = Stats.Acc.create () in
  for _ = 1 to mc_samples do
    let l = Rng.gaussian_mu_sigma rng ~mu ~sigma in
    Stats.Acc.add acc (Interp.eval table l)
  done;
  {
    state_index;
    table;
    fit;
    fit_rms_log;
    mu_analytic;
    sigma_analytic;
    mu_ref;
    sigma_ref;
    mu_mc = Stats.Acc.mean acc;
    sigma_mc = Stats.Acc.std acc;
  }

let characterize ?(l_points = 97) ?(span_sigmas = 6.0) ?(mc_samples = 20_000)
    ?(env = Rgleak_device.Mosfet.default_env) ~param ~rng cell =
  if l_points < 8 then invalid_arg "Characterize: need at least 8 grid points";
  Obs.count "characterize.states" (Cell.num_states cell);
  let states =
    Array.init (Cell.num_states cell) (fun i ->
        characterize_state ~env ~param ~span:span_sigmas ~l_points ~mc_samples
          ~rng cell i)
  in
  { cell; param; states }

let characterize_library ?l_points ?span_sigmas ?mc_samples ?env ?jobs ~param
    ~seed () =
  Obs.span "characterize.library" @@ fun () ->
  Obs.count "characterize.cells" Library.size;
  let rng = Rng.create ~seed () in
  (* Child streams are derived in canonical cell order so sequential and
     parallel runs produce bit-identical results; the single-job case
     takes the same pool path so task counters are jobs-invariant. *)
  let child_rngs = Array.map (fun _ -> Rng.split rng) Library.cells in
  let one i =
    characterize ?l_points ?span_sigmas ?mc_samples ?env ~param
      ~rng:child_rngs.(i) Library.cells.(i)
  in
  (* Pre-warm the shared quadrature memo table: the worker domains
     then only read it (Hashtbl is not safe for concurrent writes). *)
  ignore (Quadrature.gauss_legendre_nodes 96);
  Parallel.using ?jobs (fun pool ->
      Parallel.map_array ~label:"characterize.cell" pool one
        (Array.init Library.size Fun.id))

let characterize_library_result ?l_points ?span_sigmas ?mc_samples ?env ?jobs
    ~param ~seed () =
  Guard.protect
    (characterize_library ?l_points ?span_sigmas ?mc_samples ?env ?jobs ~param
       ~seed)

let default_library =
  let memo = lazy (
    characterize_library ~param:Process_param.default_channel_length ~seed:1729 ())
  in
  fun () -> Lazy.force memo
