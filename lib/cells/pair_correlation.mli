(** The leakage-correlation vs length-correlation mapping f_{m,n}
    (§2.1.3, Fig. 2).

    Two evaluation routes are provided: the exact analytical mapping
    from the fitted (a,b,c) triplets, and a Monte-Carlo estimate that
    samples correlated channel-length pairs and evaluates the tabulated
    leakage curves — the same comparison the paper plots in Fig. 2.
    Both show that leakage correlation tracks length correlation
    closely (the basis for the §3.1.2 simplified assumption). *)

val analytic :
  Characterize.state_char -> Characterize.state_char ->
  param:Rgleak_process.Process_param.t -> rho:float -> float
(** Exact leakage correlation of two characterized (cell, state) pairs
    given total channel-length correlation [rho]. *)

val monte_carlo :
  Characterize.state_char -> Characterize.state_char ->
  param:Rgleak_process.Process_param.t ->
  rho:float ->
  samples:int ->
  rng:Rgleak_num.Rng.t ->
  float
(** MC estimate of the same quantity: draws bivariate-normal length
    pairs with total correlation [rho] and correlates the tabulated
    leakages. *)

val curve :
  ?points:int ->
  f:(rho:float -> float) ->
  unit ->
  (float * float) array
(** [(ρ_L, f ρ_L)] samples over ρ_L in [\[0, 1\]] (default 21 points),
    for plotting Fig. 2-style curves. *)

val max_identity_deviation : (float * float) array -> float
(** Largest |leakage correlation − length correlation| over a curve —
    the distance from the y = x line in Fig. 2. *)
