open Rgleak_device

type stage =
  | Cmos of { pull_up : Network.t; pull_down : Network.t }
  | Nmos_pass of { net : Network.t; active : int }

type t = {
  name : string;
  num_inputs : int;
  derive : bool array -> bool array;
  stages : stage list;
  nmos : Mosfet.params;
  pmos : Mosfet.params;
  area : float;
}

let num_states t = 1 lsl t.num_inputs

let state_of_index t idx =
  Array.init t.num_inputs (fun i -> (idx lsr i) land 1 = 1)

let states t = Array.init (num_states t) (state_of_index t)

let stage_device_count = function
  | Cmos { pull_up; pull_down } ->
    Network.device_count pull_up + Network.device_count pull_down
  | Nmos_pass { net; _ } -> Network.device_count net

let device_count t =
  List.fold_left (fun acc s -> acc + stage_device_count s) 0 t.stages

let stage_max_index = function
  | Cmos { pull_up; pull_down } ->
    let max_of net = List.fold_left Stdlib.max (-1) (Network.inputs net) in
    Stdlib.max (max_of pull_up) (max_of pull_down)
  | Nmos_pass { net; active } ->
    Stdlib.max active (List.fold_left Stdlib.max (-1) (Network.inputs net))

let make ~name ~num_inputs ~derive ~stages
    ?(nmos = Mosfet.nmos ()) ?(pmos = Mosfet.pmos ()) () =
  if num_inputs < 0 || num_inputs > 10 then
    invalid_arg "Cell.make: unsupported input count";
  if stages = [] then invalid_arg "Cell.make: a cell needs at least one stage";
  let t = { name; num_inputs; derive; stages; nmos; pmos; area = 0.0 } in
  let needed =
    List.fold_left (fun acc s -> Stdlib.max acc (stage_max_index s)) (-1) stages
  in
  (* Every state must derive a node vector covering all referenced nodes. *)
  Array.iter
    (fun state ->
      let nodes = derive state in
      if Array.length nodes <= needed then
        invalid_arg
          (Printf.sprintf
             "Cell.make(%s): derived node vector too short (%d nodes, index \
              %d referenced)"
             name (Array.length nodes) needed);
      if Array.length nodes < num_inputs then
        invalid_arg
          (Printf.sprintf "Cell.make(%s): derive must keep the input bits" name))
    (states t);
  let area = 1.2 *. float_of_int (device_count t) in
  { t with area }

(* Device ordinals run pull-up first then pull-down within each Cmos
   stage, stages in list order — the same order {!device_count}
   traverses. *)
let stage_leakage ~l_of ~offset ~env ~nmos ~pmos nodes = function
  | Cmos { pull_up; pull_down } ->
    let n_up = Network.device_count pull_up in
    let up_l i = l_of (offset + i) in
    let down_l i = l_of (offset + n_up + i) in
    let up_on = Network.conducts ~kind:Mosfet.Pmos pull_up nodes in
    let down_on = Network.conducts ~kind:Mosfet.Nmos pull_down nodes in
    if up_on && down_on then
      invalid_arg "Cell: contention (both networks conduct)"
    else if up_on then
      Network.leakage ~l_of:down_l ~env ~params:nmos pull_down nodes
    else if down_on then
      Network.leakage ~l_of:up_l ~env ~params:pmos pull_up nodes
    else
      (* Tri-stated stage: both networks block and both leak. *)
      Network.leakage ~l_of:down_l ~env ~params:nmos pull_down nodes
      +. Network.leakage ~l_of:up_l ~env ~params:pmos pull_up nodes
  | Nmos_pass { net; active } ->
    if not nodes.(active) then 0.0
    else if Network.conducts ~kind:Mosfet.Nmos net nodes then 0.0
    else Network.leakage ~l_of:(fun i -> l_of (offset + i)) ~env ~params:nmos net nodes

let leakage ?(l_nm = 90.0) ?l_of_device ~env t state =
  if Array.length state <> t.num_inputs then
    invalid_arg "Cell.leakage: state vector length mismatch";
  let l_of = match l_of_device with Some f -> f | None -> fun _ -> l_nm in
  let nodes = t.derive state in
  let total, _ =
    List.fold_left
      (fun (acc, offset) stage ->
        ( acc
          +. stage_leakage ~l_of ~offset ~env ~nmos:t.nmos ~pmos:t.pmos nodes
               stage,
          offset + stage_device_count stage ))
      (0.0, 0) t.stages
  in
  total

let max_stack_depth t =
  let net_depth = Network.depth in
  List.fold_left
    (fun acc -> function
      | Cmos { pull_up; pull_down } ->
        Stdlib.max acc (Stdlib.max (net_depth pull_up) (net_depth pull_down))
      | Nmos_pass { net; _ } -> Stdlib.max acc (net_depth net))
    0 t.stages
