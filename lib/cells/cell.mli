(** Standard-cell model for leakage analysis.

    A cell is a list of stages.  Each CMOS stage has a PMOS pull-up and
    an NMOS pull-down network whose devices are gated by entries of a
    {e node vector}; the cell's [derive] function extends the external
    state bits (inputs plus stored state for sequential cells) into that
    node vector, assigning every internal node its static logic value.
    Leakage of the cell in a state is the sum over stages of the current
    through each blocking network (both networks, for stages that are
    tri-stated in that state), mirroring the HSPICE DC measurements the
    paper performs per input combination.

    All transistors in a cell see the same channel length: within-cell
    variations are fully correlated (§2.1.1). *)

type stage =
  | Cmos of { pull_up : Rgleak_device.Network.t; pull_down : Rgleak_device.Network.t }
  | Nmos_pass of { net : Rgleak_device.Network.t; active : int }
      (** A pass/access structure (e.g. SRAM access transistor) with the
          full supply across it when node [active] is 1 and zero volts
          otherwise; leaks only when blocking and active. *)

type t = private {
  name : string;
  num_inputs : int;  (** external state bits: inputs + stored state *)
  derive : bool array -> bool array;  (** inputs -> full node vector *)
  stages : stage list;
  nmos : Rgleak_device.Mosfet.params;
  pmos : Rgleak_device.Mosfet.params;
  area : float;  (** layout area in µm² (device-count heuristic) *)
}

val make :
  name:string ->
  num_inputs:int ->
  derive:(bool array -> bool array) ->
  stages:stage list ->
  ?nmos:Rgleak_device.Mosfet.params ->
  ?pmos:Rgleak_device.Mosfet.params ->
  unit ->
  t
(** Builds a cell; validates that every network input index is covered
    by the derived node vector on all 2^num_inputs states, and computes
    the area heuristic.  Raises [Invalid_argument] on inconsistency. *)

val num_states : t -> int
(** [2 ^ num_inputs]. *)

val state_of_index : t -> int -> bool array
(** Bit [i] of the index becomes input [i] (LSB = input 0). *)

val states : t -> bool array array
(** All input states, in index order. *)

val device_count : t -> int

val leakage :
  ?l_nm:float ->
  ?l_of_device:(int -> float) ->
  env:Rgleak_device.Mosfet.env ->
  t ->
  bool array ->
  float
(** Total subthreshold leakage (nA) of the cell in the given external
    state at channel length [l_nm] (default nominal 90 nm), shared by
    all devices — the paper's within-cell full-correlation assumption
    (§2.1.1).  [l_of_device] instead assigns device [i] its own length
    (ordinals: pull-up then pull-down per stage, stages in order); used
    by the experiment that quantifies what that assumption is worth. *)

val max_stack_depth : t -> int
(** Deepest series stack across all stage networks (for reporting). *)
