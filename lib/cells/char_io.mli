(** Persistence of library characterizations.

    Characterizing the 62-cell library costs a couple of seconds; a
    sign-off flow does it once per process corner and reuses the result.
    This module serializes a {!Characterize.cell_char} array to a
    versioned, line-oriented text format (leakage tables, fitted
    triplets, and all computed moments) and loads it back, verifying the
    cells still match the in-memory library.

    The format is plain text so it can be diffed and inspected:

    {v
    rgleak-characterization 1
    param channel-length 90 3 3
    cell INV_X1 2
    state 0 <moments...> <a> <b> <c> <rms> <npoints>
    <L> <leakage>
    ...
    end
    v} *)

exception Format_error of string
(** Raised by the readers on malformed or incompatible input. *)

val to_string : Characterize.cell_char array -> string
val of_string : string -> Characterize.cell_char array

val save : path:string -> Characterize.cell_char array -> unit
val load : path:string -> Characterize.cell_char array
(** [load] raises {!Format_error} if the file is malformed, names a cell
    the library does not have, or disagrees with the cell's state
    count. *)
