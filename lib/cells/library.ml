open Rgleak_device

(* Node-vector conventions: indices 0..num_inputs-1 are the external
   state bits; derive appends internal node values after them.  Each
   builder documents its node map. *)

let dev ?w_mult i = Network.device ?w_mult i
let ser = Network.series
let par = Network.parallel

let inv_stage ?w_mult i = Cell.Cmos { pull_up = dev ?w_mult i; pull_down = dev ?w_mult i }

let nand_stage ?w_mult idxs =
  Cell.Cmos
    {
      pull_up = par (List.map (fun i -> dev ?w_mult i) idxs);
      pull_down = ser (List.map (fun i -> dev ?w_mult i) idxs);
    }

let nor_stage ?w_mult idxs =
  Cell.Cmos
    {
      pull_up = ser (List.map (fun i -> dev ?w_mult i) idxs);
      pull_down = par (List.map (fun i -> dev ?w_mult i) idxs);
    }

(* Tri-state inverter: output = NOT input when enabled; en_n gates the
   NMOS side (active high), en_p the PMOS side (active low). *)
let tri_stage ?w_mult ~input ~en_n ~en_p () =
  Cell.Cmos
    {
      pull_up = ser [ dev ?w_mult input; dev ?w_mult en_p ];
      pull_down = ser [ dev ?w_mult input; dev ?w_mult en_n ];
    }

(* Inverting 2:1 mux: output = NOT (s ? b : a); [sb] is the inverted
   select. *)
let muxinv_stage ?w_mult ~a ~b ~s ~sb () =
  Cell.Cmos
    {
      pull_up =
        ser [ par [ dev ?w_mult a; dev ?w_mult sb ]; par [ dev ?w_mult b; dev ?w_mult s ] ];
      pull_down =
        par [ ser [ dev ?w_mult a; dev ?w_mult sb ]; ser [ dev ?w_mult b; dev ?w_mult s ] ];
    }

(* AOI21: output = NOT (a·b + c). *)
let aoi21_stage ?w_mult (a, b, c) =
  Cell.Cmos
    {
      pull_up = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c ];
      pull_down = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c ];
    }

(* AOI22: output = NOT (a·b + c·d). *)
let aoi22_stage ?w_mult (a, b, c, d) =
  Cell.Cmos
    {
      pull_up = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; par [ dev ?w_mult c; dev ?w_mult d ] ];
      pull_down = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; ser [ dev ?w_mult c; dev ?w_mult d ] ];
    }

(* OAI21: output = NOT ((a+b)·c). *)
let oai21_stage ?w_mult (a, b, c) =
  Cell.Cmos
    {
      pull_up = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c ];
      pull_down = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c ];
    }

(* OAI22: output = NOT ((a+b)·(c+d)). *)
let oai22_stage ?w_mult (a, b, c, d) =
  Cell.Cmos
    {
      pull_up = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; ser [ dev ?w_mult c; dev ?w_mult d ] ];
      pull_down = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; par [ dev ?w_mult c; dev ?w_mult d ] ];
    }

(* AOI211: output = NOT (a·b + c + d). *)
let aoi211_stage ?w_mult (a, b, c, d) =
  Cell.Cmos
    {
      pull_up = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c; dev ?w_mult d ];
      pull_down = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c; dev ?w_mult d ];
    }

(* OAI211: output = NOT ((a+b)·c·d). *)
let oai211_stage ?w_mult (a, b, c, d) =
  Cell.Cmos
    {
      pull_up = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c; dev ?w_mult d ];
      pull_down = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; dev ?w_mult c; dev ?w_mult d ];
    }

(* XOR2 over nodes [a; b; na; nb]: output = NOT (a·b + na·nb) = a XOR b. *)
let xor_stage ?w_mult (a, b, na, nb) =
  Cell.Cmos
    {
      pull_up = ser [ par [ dev ?w_mult a; dev ?w_mult b ]; par [ dev ?w_mult na; dev ?w_mult nb ] ];
      pull_down = par [ ser [ dev ?w_mult a; dev ?w_mult b ]; ser [ dev ?w_mult na; dev ?w_mult nb ] ];
    }

(* XNOR2: output = NOT (a·nb + na·b) = NOT (a XOR b). *)
let xnor_stage ?w_mult (a, b, na, nb) =
  Cell.Cmos
    {
      pull_up = ser [ par [ dev ?w_mult a; dev ?w_mult nb ]; par [ dev ?w_mult na; dev ?w_mult b ] ];
      pull_down = par [ ser [ dev ?w_mult a; dev ?w_mult nb ]; ser [ dev ?w_mult na; dev ?w_mult b ] ];
    }

let app nodes extra = Array.append nodes (Array.of_list extra)

(* ---------- simple combinational builders ---------- *)

let inv_cell name w =
  Cell.make ~name ~num_inputs:1 ~derive:(fun s -> s)
    ~stages:[ inv_stage ~w_mult:w 0 ] ()

let buf_cell name w =
  (* nodes: [a; na] *)
  Cell.make ~name ~num_inputs:1
    ~derive:(fun s -> app s [ not s.(0) ])
    ~stages:[ inv_stage 0; inv_stage ~w_mult:w 1 ]
    ()

let clkbuf_cell name w =
  (* nodes: [a; na]; two stages, first at half drive *)
  Cell.make ~name ~num_inputs:1
    ~derive:(fun s -> app s [ not s.(0) ])
    ~stages:[ inv_stage ~w_mult:(Float.max 1.0 (w /. 2.0)) 0; inv_stage ~w_mult:(2.0 *. w) 1 ]
    ()

let nand_cell name n w =
  let idxs = List.init n (fun i -> i) in
  Cell.make ~name ~num_inputs:n ~derive:(fun s -> s)
    ~stages:[ nand_stage ~w_mult:w idxs ] ()

let nor_cell name n w =
  let idxs = List.init n (fun i -> i) in
  Cell.make ~name ~num_inputs:n ~derive:(fun s -> s)
    ~stages:[ nor_stage ~w_mult:w idxs ] ()

let and_cell name n w =
  (* nodes: inputs @ [nand_out] *)
  let idxs = List.init n (fun i -> i) in
  Cell.make ~name ~num_inputs:n
    ~derive:(fun s -> app s [ not (Array.for_all Fun.id s) ])
    ~stages:[ nand_stage idxs; inv_stage ~w_mult:w n ]
    ()

let or_cell name n w =
  let idxs = List.init n (fun i -> i) in
  Cell.make ~name ~num_inputs:n
    ~derive:(fun s -> app s [ not (Array.exists Fun.id s) ])
    ~stages:[ nor_stage idxs; inv_stage ~w_mult:w n ]
    ()

let xor_derive s = app s [ not s.(0); not s.(1) ]

let xor_cell name w =
  (* nodes: [a; b; na; nb] *)
  Cell.make ~name ~num_inputs:2 ~derive:xor_derive
    ~stages:[ inv_stage 0; inv_stage 1; xor_stage ~w_mult:w (0, 1, 2, 3) ]
    ()

let xnor_cell name w =
  Cell.make ~name ~num_inputs:2 ~derive:xor_derive
    ~stages:[ inv_stage 0; inv_stage 1; xnor_stage ~w_mult:w (0, 1, 2, 3) ]
    ()

let complex_cell name n stage =
  Cell.make ~name ~num_inputs:n ~derive:(fun s -> s) ~stages:[ stage ] ()

let mux2_cell name w =
  (* inputs a=0 b=1 s=2; nodes: [a; b; s; sb; m; out] with
     m = NOT (s ? b : a) and out = NOT m *)
  let derive s =
    let sel = if s.(2) then s.(1) else s.(0) in
    app s [ not s.(2); not sel; sel ]
  in
  Cell.make ~name ~num_inputs:3 ~derive
    ~stages:
      [ inv_stage 2; muxinv_stage ~a:0 ~b:1 ~s:2 ~sb:3 (); inv_stage ~w_mult:w 4 ]
    ()

let mux4_cell name =
  (* inputs a b c d s0 s1 = 0..5; nodes: [...; s0b=6; s1b=7; m0b=8; m0=9;
     m1b=10; m1=11; outb=12; out=13] *)
  let derive s =
    let m0 = if s.(4) then s.(1) else s.(0) in
    let m1 = if s.(4) then s.(3) else s.(2) in
    let out = if s.(5) then m1 else m0 in
    app s [ not s.(4); not s.(5); not m0; m0; not m1; m1; not out; out ]
  in
  Cell.make ~name ~num_inputs:6 ~derive
    ~stages:
      [
        inv_stage 4;
        inv_stage 5;
        muxinv_stage ~a:0 ~b:1 ~s:4 ~sb:6 ();
        inv_stage 8;
        muxinv_stage ~a:2 ~b:3 ~s:4 ~sb:6 ();
        inv_stage 10;
        muxinv_stage ~a:9 ~b:11 ~s:5 ~sb:7 ();
        inv_stage 12;
      ]
    ()

let nand2b_cell name =
  (* output = NOT (NOT a · b); nodes: [a; b; na] *)
  Cell.make ~name ~num_inputs:2
    ~derive:(fun s -> app s [ not s.(0) ])
    ~stages:[ inv_stage 0; nand_stage [ 2; 1 ] ]
    ()

let nor2b_cell name =
  (* output = NOT (NOT a + b); nodes: [a; b; na] *)
  Cell.make ~name ~num_inputs:2
    ~derive:(fun s -> app s [ not s.(0) ])
    ~stages:[ inv_stage 0; nor_stage [ 2; 1 ] ]
    ()

let tbuf_cell name w =
  (* inputs a=0 en=1; nodes: [a; en; na; enb]; output floats when
     disabled (both networks of the tri-state block and leak) *)
  Cell.make ~name ~num_inputs:2
    ~derive:(fun s -> app s [ not s.(0); not s.(1) ])
    ~stages:[ inv_stage 0; inv_stage 1; tri_stage ~w_mult:w ~input:2 ~en_n:1 ~en_p:3 () ]
    ()

let ha_cell name w =
  (* inputs a=0 b=1; nodes: [a; b; na=2; nb=3; s=4; nc=5; c=6] *)
  let derive s =
    let a = s.(0) and b = s.(1) in
    app s [ not a; not b; a <> b; not (a && b); a && b ]
  in
  Cell.make ~name ~num_inputs:2 ~derive
    ~stages:
      [
        inv_stage 0;
        inv_stage 1;
        xor_stage ~w_mult:w (0, 1, 2, 3);
        nand_stage [ 0; 1 ];
        inv_stage ~w_mult:w 5;
      ]
    ()

(* Mirror full adder: carry-out gate is the self-dual majority, the sum
   gate reuses the inverted carry.  Stack depth reaches 3. *)
let fa_cell name w =
  (* inputs a=0 b=1 ci=2; nodes: [a; b; ci; nco=3; co=4; ns=5; s=6] *)
  let derive s =
    let a = s.(0) and b = s.(1) and ci = s.(2) in
    let maj = (a && b) || (ci && (a || b)) in
    let xor3 = (a <> b) <> ci in
    app s [ not maj; maj; not xor3; xor3 ]
  in
  let maj_topology =
    par [ ser [ dev 0; dev 1 ]; ser [ dev 2; par [ dev 0; dev 1 ] ] ]
  in
  let sum_topology =
    par [ ser [ dev 0; dev 1; dev 2 ]; ser [ dev 3; par [ dev 0; dev 1; dev 2 ] ] ]
  in
  Cell.make ~name ~num_inputs:3 ~derive
    ~stages:
      [
        Cell.Cmos { pull_up = maj_topology; pull_down = maj_topology };
        inv_stage ~w_mult:w 3;
        Cell.Cmos { pull_up = sum_topology; pull_down = sum_topology };
        inv_stage ~w_mult:w 5;
      ]
    ()

(* ---------- sequential builders ---------- *)

let dlatch_cell name ~transparent_high =
  (* inputs d=0 ck=1 stored=2; nodes: [d; ck; stored; ckb=3; q=4; qb=5] *)
  let derive s =
    let pass = if transparent_high then s.(1) else not s.(1) in
    let q = if pass then s.(0) else s.(2) in
    app s [ not s.(1); q; not q ]
  in
  let en_n, en_p = if transparent_high then (1, 3) else (3, 1) in
  Cell.make ~name ~num_inputs:3 ~derive
    ~stages:
      [
        inv_stage 1;
        tri_stage ~input:0 ~en_n ~en_p ();
        inv_stage 5;
        tri_stage ~input:4 ~en_n:en_p ~en_p:en_n ();
      ]
    ()

(* Positive-edge master/slave DFF skeleton shared by the variants:
   master transparent when ck = 0, slave when ck = 1.  Static node
   values: ck=0 -> qm = d(master input), q = stored; ck=1 -> qm = stored,
   q = stored. *)
let dff_cell name w =
  (* inputs d=0 ck=1 stored=2;
     nodes: [d; ck; st; ckb=3; qm=4; qmb=5; q=6; qb=7] *)
  let derive s =
    let d = s.(0) and ck = s.(1) and st = s.(2) in
    let qm = if ck then st else d in
    app s [ not ck; qm; not qm; st; not st ]
  in
  Cell.make ~name ~num_inputs:3 ~derive
    ~stages:
      [
        inv_stage 1;
        tri_stage ~input:0 ~en_n:3 ~en_p:1 ();
        inv_stage 5;
        tri_stage ~input:4 ~en_n:1 ~en_p:3 ();
        tri_stage ~input:4 ~en_n:1 ~en_p:3 ();
        inv_stage 7;
        tri_stage ~input:6 ~en_n:3 ~en_p:1 ();
        inv_stage ~w_mult:w 7;
      ]
    ()

let dffr_cell name =
  (* inputs d=0 ck=1 r=2 stored=3;
     nodes: [d; ck; r; st; ckb=4; qm=5; qmb=6; q=7; qb=8] *)
  let derive s =
    let d = s.(0) and ck = s.(1) and r = s.(2) and st = s.(3) in
    let qm = if r then false else if ck then st else d in
    let q = if r then false else st in
    app s [ not ck; qm; not qm; q; not q ]
  in
  Cell.make ~name ~num_inputs:4 ~derive
    ~stages:
      [
        inv_stage 1;
        tri_stage ~input:0 ~en_n:4 ~en_p:1 ();
        nor_stage [ 6; 2 ];
        tri_stage ~input:5 ~en_n:1 ~en_p:4 ();
        tri_stage ~input:5 ~en_n:1 ~en_p:4 ();
        nor_stage [ 8; 2 ];
        tri_stage ~input:7 ~en_n:4 ~en_p:1 ();
        inv_stage ~w_mult:2.0 8;
      ]
    ()

let dffs_cell name =
  (* inputs d=0 ck=1 set=2 stored=3;
     nodes: [d; ck; si; st; ckb=4; sib=5; qm=6; qmb=7; q=8; qb=9] *)
  let derive s =
    let d = s.(0) and ck = s.(1) and si = s.(2) and st = s.(3) in
    let qm = if si then true else if ck then st else d in
    let q = if si then true else st in
    app s [ not ck; not si; qm; not qm; q; not q ]
  in
  Cell.make ~name ~num_inputs:4 ~derive
    ~stages:
      [
        inv_stage 1;
        inv_stage 2;
        tri_stage ~input:0 ~en_n:4 ~en_p:1 ();
        nand_stage [ 7; 5 ];
        tri_stage ~input:6 ~en_n:1 ~en_p:4 ();
        tri_stage ~input:6 ~en_n:1 ~en_p:4 ();
        nand_stage [ 9; 5 ];
        tri_stage ~input:8 ~en_n:4 ~en_p:1 ();
        inv_stage ~w_mult:2.0 9;
      ]
    ()

let dffrs_cell name =
  (* inputs d=0 ck=1 r=2 set=3 stored=4 (reset dominant);
     nodes: [d; ck; r; si; st; ckb=5; sib=6; qm=7; qmb=8; q=9; qb=10] *)
  let derive s =
    let d = s.(0) and ck = s.(1) and r = s.(2) and si = s.(3) and st = s.(4) in
    let latch v = if r then false else if si then true else v in
    let qm = latch (if ck then st else d) in
    let q = latch st in
    app s [ not ck; not si; qm; not qm; q; not q ]
  in
  Cell.make ~name ~num_inputs:5 ~derive
    ~stages:
      [
        inv_stage 1;
        inv_stage 3;
        tri_stage ~input:0 ~en_n:5 ~en_p:1 ();
        aoi21_stage (8, 6, 2);
        tri_stage ~input:7 ~en_n:1 ~en_p:5 ();
        tri_stage ~input:7 ~en_n:1 ~en_p:5 ();
        aoi21_stage (10, 6, 2);
        tri_stage ~input:9 ~en_n:5 ~en_p:1 ();
        inv_stage ~w_mult:2.0 10;
      ]
    ()

let sdff_cell name =
  (* scan flop: inputs d=0 si=1 se=2 ck=3 stored=4;
     nodes: [d; si; se; ck; st; seb=5; mb=6; dm=7; ckb=8; qm=9; qmb=10;
     q=11; qb=12] *)
  let derive s =
    let d = s.(0) and si = s.(1) and se = s.(2) and ck = s.(3) and st = s.(4) in
    let dm = if se then si else d in
    let qm = if ck then st else dm in
    app s [ not se; not dm; dm; not ck; qm; not qm; st; not st ]
  in
  Cell.make ~name ~num_inputs:5 ~derive
    ~stages:
      [
        inv_stage 2;
        muxinv_stage ~a:0 ~b:1 ~s:2 ~sb:5 ();
        inv_stage 6;
        inv_stage 3;
        tri_stage ~input:7 ~en_n:8 ~en_p:3 ();
        inv_stage 10;
        tri_stage ~input:9 ~en_n:3 ~en_p:8 ();
        tri_stage ~input:9 ~en_n:3 ~en_p:8 ();
        inv_stage 12;
        tri_stage ~input:11 ~en_n:8 ~en_p:3 ();
        inv_stage ~w_mult:2.0 12;
      ]
    ()

let sram_cell name =
  (* input stored=0; nodes: [q; qb=1; wl=2 (held low)] *)
  let derive s = app s [ not s.(0); false ] in
  Cell.make ~name ~num_inputs:1 ~derive
    ~stages:
      [
        inv_stage ~w_mult:0.6 0;
        inv_stage ~w_mult:0.6 1;
        Cell.Nmos_pass { net = dev ~w_mult:0.8 2; active = 1 };
        Cell.Nmos_pass { net = dev ~w_mult:0.8 2; active = 0 };
      ]
    ()

(* ---------- the library ---------- *)

let cells =
  [|
    inv_cell "INV_X1" 1.0;
    inv_cell "INV_X2" 2.0;
    inv_cell "INV_X4" 4.0;
    inv_cell "INV_X8" 8.0;
    buf_cell "BUF_X1" 1.0;
    buf_cell "BUF_X2" 2.0;
    buf_cell "BUF_X4" 4.0;
    clkbuf_cell "CLKBUF_X1" 1.0;
    clkbuf_cell "CLKBUF_X2" 2.0;
    clkbuf_cell "CLKBUF_X4" 4.0;
    nand_cell "NAND2_X1" 2 1.0;
    nand_cell "NAND2_X2" 2 2.0;
    nand_cell "NAND3_X1" 3 1.0;
    nand_cell "NAND3_X2" 3 2.0;
    nand_cell "NAND4_X1" 4 1.0;
    nor_cell "NOR2_X1" 2 1.0;
    nor_cell "NOR2_X2" 2 2.0;
    nor_cell "NOR3_X1" 3 1.0;
    nor_cell "NOR3_X2" 3 2.0;
    nor_cell "NOR4_X1" 4 1.0;
    and_cell "AND2_X1" 2 1.0;
    and_cell "AND2_X2" 2 2.0;
    and_cell "AND3_X1" 3 1.0;
    and_cell "AND4_X1" 4 1.0;
    or_cell "OR2_X1" 2 1.0;
    or_cell "OR2_X2" 2 2.0;
    or_cell "OR3_X1" 3 1.0;
    or_cell "OR4_X1" 4 1.0;
    xor_cell "XOR2_X1" 1.0;
    xor_cell "XOR2_X2" 2.0;
    xnor_cell "XNOR2_X1" 1.0;
    xnor_cell "XNOR2_X2" 2.0;
    complex_cell "AOI21_X1" 3 (aoi21_stage (0, 1, 2));
    complex_cell "AOI21_X2" 3 (aoi21_stage ~w_mult:2.0 (0, 1, 2));
    complex_cell "AOI22_X1" 4 (aoi22_stage (0, 1, 2, 3));
    complex_cell "AOI22_X2" 4 (aoi22_stage ~w_mult:2.0 (0, 1, 2, 3));
    complex_cell "OAI21_X1" 3 (oai21_stage (0, 1, 2));
    complex_cell "OAI21_X2" 3 (oai21_stage ~w_mult:2.0 (0, 1, 2));
    complex_cell "OAI22_X1" 4 (oai22_stage (0, 1, 2, 3));
    complex_cell "OAI22_X2" 4 (oai22_stage ~w_mult:2.0 (0, 1, 2, 3));
    complex_cell "AOI211_X1" 4 (aoi211_stage (0, 1, 2, 3));
    complex_cell "OAI211_X1" 4 (oai211_stage (0, 1, 2, 3));
    mux2_cell "MUX2_X1" 1.0;
    mux2_cell "MUX2_X2" 2.0;
    mux4_cell "MUX4_X1";
    nand2b_cell "NAND2B_X1";
    nor2b_cell "NOR2B_X1";
    tbuf_cell "TBUF_X1" 1.0;
    tbuf_cell "TBUF_X2" 2.0;
    ha_cell "HA_X1" 1.0;
    ha_cell "HA_X2" 2.0;
    fa_cell "FA_X1" 1.0;
    fa_cell "FA_X2" 2.0;
    dlatch_cell "DLATCH_X1" ~transparent_high:true;
    dlatch_cell "DLATCHN_X1" ~transparent_high:false;
    dff_cell "DFF_X1" 2.0;
    dff_cell "DFF_X2" 4.0;
    dffr_cell "DFFR_X1";
    dffs_cell "DFFS_X1";
    dffrs_cell "DFFRS_X1";
    sdff_cell "SDFF_X1";
    sram_cell "SRAM6T";
  |]

let size = Array.length cells

let index_of name =
  let rec go i =
    if i >= size then raise Not_found
    else if cells.(i).Cell.name = name then i
    else go (i + 1)
  in
  go 0

let find name = cells.(index_of name)
let names () = Array.to_list (Array.map (fun c -> c.Cell.name) cells)
