(** Closed-form leakage statistics from the fitted cell model.

    Following Rao et al. (and §2.1.2 of the paper), a cell's leakage in
    one input state is fitted to [X = a·exp(bL + cL²)] with [L ~ N(μ,σ²)].
    With [Y = ln X], [Y = K₃ + K₁ (Z + K₂)²] for standard normal [Z]
    (Eqs. 4–5), a scaled non-central χ², whose MGF gives the exact
    moments of [X] (Eqs. 1–3).

    Note: Eq. (3) in the paper prints the [(1 − 2K₁t)] factor with
    exponent +½; the correct MGF has −½, which is what we implement (the
    implementation is verified against Monte Carlo in the test suite).

    The same machinery extends to a pair of gates whose channel lengths
    are jointly normal with correlation ρ, giving the exact leakage
    covariance and hence the f_{m,n}(ρ_L) mapping of §2.1.3. *)

type triplet = { a : float; b : float; c : float }
(** Fitted parameters of [X = a·exp(bL + cL²)]; [a > 0]. *)

val triplet : a:float -> b:float -> c:float -> triplet

exception Divergent
(** Raised when a requested moment does not exist, i.e. [1 − 2tcσ² ≤ 0]. *)

val centered : triplet -> mu:float -> float * float
(** [(k₀, β)] of the centered form [Y = k₀ + β·δ + c·δ²] with
    [δ = L − μ]; equivalent to (K₁,K₂,K₃) but defined for [c = 0] too.
    Exposed for the correlation-tabulation hot path. *)

val k_params : triplet -> mu:float -> sigma:float -> float * float * float
(** [(K₁, K₂, K₃)] of Eqs. 4–5.  [K₂] is meaningful only for [c ≠ 0];
    for [c = 0] it is returned as [nan] (the lognormal limit). *)

val mgf_log : triplet -> mu:float -> sigma:float -> float -> float
(** [mgf_log tr ~mu ~sigma t] is [M_Y(t) = E\[X^t\]].  Handles the
    [c = 0] lognormal limit.  Raises {!Divergent} if the moment does not
    exist. *)

val mean : triplet -> mu:float -> sigma:float -> float
(** [M_Y(1)] (Eq. 1). *)

val variance : triplet -> mu:float -> sigma:float -> float
(** [M_Y(2) − M_Y(1)²] (Eq. 2). *)

val std : triplet -> mu:float -> sigma:float -> float

val pair_product_mean :
  triplet -> triplet -> mu:float -> sigma:float -> rho:float -> float
(** [E\[X_m X_n\]] for two gates at locations whose channel lengths are
    bivariate normal with common [μ, σ] and correlation [rho]. *)

val pair_covariance :
  triplet -> triplet -> mu:float -> sigma:float -> rho:float -> float
(** Leakage covariance of the pair. *)

val pair_correlation :
  triplet -> triplet -> mu:float -> sigma:float -> rho:float -> float
(** The f_{m,n} mapping: leakage correlation given channel-length
    correlation [rho]. *)
