(** Signal-probability weighting of per-state leakage (§2.1.4).

    Inputs are assumed independent with a common probability [p] of
    being logic 1; a state's probability is the product over bits.  The
    per-cell leakage under this weighting is a mixture over states; for
    large circuits the state randomness averages out (Fig. 3), and the
    paper's conservative policy picks the [p] that maximizes the mean
    leakage of the design's cell mix. *)

val state_probability : num_inputs:int -> p:float -> int -> float
(** Probability of the state with the given index. *)

val state_probabilities : num_inputs:int -> p:float -> float array
(** All state probabilities; sums to 1. *)

type weighted = {
  p : float;
  mu : float;  (** mean leakage of the state mixture *)
  sigma_mixture : float;
      (** std of the mixture (state randomness + length variation):
          sqrt(Σ P(s)(σ_s² + μ_s²) − μ²) *)
}

type stats_mode = Analytic | Reference
(** Which per-state moments to weight: the (a,b,c)-fit closed forms, or
    the quadrature reference (standing in for the paper's MC mode). *)

val weighted_stats : ?mode:stats_mode -> Characterize.cell_char -> p:float -> weighted
(** Mixture statistics of one cell at signal probability [p]. *)

val design_mean :
  ?mode:stats_mode -> Characterize.cell_char array -> weights:float array -> p:float -> float
(** Mean leakage per gate of a design with the given cell-usage weights
    at signal probability [p] (the quantity plotted in Fig. 3, divided
    by the gate count). *)

val sweep :
  ?mode:stats_mode ->
  ?points:int ->
  Characterize.cell_char array ->
  weights:float array ->
  (float * float) array
(** [(p, design_mean p)] over a grid of [points] (default 101) values of
    [p] in [\[0, 1\]]. *)

val maximizing_p :
  ?mode:stats_mode -> ?points:int -> Characterize.cell_char array -> weights:float array -> float
(** The signal probability that maximizes the design mean leakage — the
    paper's conservative setting. *)
