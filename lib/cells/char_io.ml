open Rgleak_num
open Rgleak_process

exception Format_error of string

let magic = "rgleak-characterization"
let version = 1

let to_string (chars : Characterize.cell_char array) =
  let buf = Buffer.create (1 lsl 20) in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s %d\n" magic version;
  (if Array.length chars > 0 then begin
     let p = chars.(0).Characterize.param in
     pf "param %s %.17g %.17g %.17g\n" p.Process_param.name
       p.Process_param.nominal p.Process_param.sigma_d2d
       p.Process_param.sigma_wid
   end);
  Array.iter
    (fun (ch : Characterize.cell_char) ->
      pf "cell %s %d\n" ch.Characterize.cell.Cell.name
        (Array.length ch.Characterize.states);
      Array.iter
        (fun (sc : Characterize.state_char) ->
          let points = Interp.to_points sc.Characterize.table in
          pf "state %d %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g %d\n"
            sc.Characterize.state_index sc.Characterize.mu_analytic
            sc.Characterize.sigma_analytic sc.Characterize.mu_ref
            sc.Characterize.sigma_ref sc.Characterize.mu_mc
            sc.Characterize.sigma_mc sc.Characterize.fit.Mgf.a
            sc.Characterize.fit.Mgf.b sc.Characterize.fit.Mgf.c
            sc.Characterize.fit_rms_log (Array.length points);
          Array.iter (fun (l, x) -> pf "%.17g %.17g\n" l x) points)
        ch.Characterize.states)
    chars;
  pf "end\n";
  Buffer.contents buf

type cursor = { lines : string array; mutable pos : int }

let next cur =
  if cur.pos >= Array.length cur.lines then
    raise (Format_error "unexpected end of input");
  let line = cur.lines.(cur.pos) in
  cur.pos <- cur.pos + 1;
  line

let words line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let float_of ~what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Format_error (Printf.sprintf "bad float for %s: %S" what s))

let int_of ~what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Format_error (Printf.sprintf "bad integer for %s: %S" what s))

let of_string text =
  let cur =
    {
      lines =
        String.split_on_char '\n' text
        |> List.filter (fun s -> String.trim s <> "")
        |> Array.of_list;
      pos = 0;
    }
  in
  (match words (next cur) with
  | [ m; v ] when m = magic ->
    if int_of ~what:"version" v <> version then
      raise (Format_error "unsupported format version")
  | _ -> raise (Format_error "missing magic header"));
  let param =
    match words (next cur) with
    | [ "param"; name; nominal; d2d; wid ] ->
      Process_param.make ~name ~nominal:(float_of ~what:"nominal" nominal)
        ~sigma_d2d:(float_of ~what:"sigma_d2d" d2d)
        ~sigma_wid:(float_of ~what:"sigma_wid" wid)
    | _ -> raise (Format_error "expected param line")
  in
  let chars = ref [] in
  let rec read_cells () =
    match words (next cur) with
    | [ "end" ] -> ()
    | [ "cell"; name; nstates ] ->
      let cell =
        try Library.find name
        with Not_found ->
          raise (Format_error (Printf.sprintf "unknown cell %S" name))
      in
      let nstates = int_of ~what:"state count" nstates in
      if nstates <> Cell.num_states cell then
        raise
          (Format_error
             (Printf.sprintf "cell %s: expected %d states, file has %d" name
                (Cell.num_states cell) nstates));
      let states =
        Array.init nstates (fun expect_idx ->
            match words (next cur) with
            | "state" :: idx :: mu_an :: s_an :: mu_ref :: s_ref :: mu_mc
              :: s_mc :: a :: b :: c :: rms :: [ npoints ] ->
              let idx = int_of ~what:"state index" idx in
              if idx <> expect_idx then
                raise (Format_error "states out of order");
              let npoints = int_of ~what:"point count" npoints in
              let points =
                Array.init npoints (fun _ ->
                    match words (next cur) with
                    | [ l; x ] ->
                      (float_of ~what:"L" l, float_of ~what:"leakage" x)
                    | _ -> raise (Format_error "expected table point"))
              in
              {
                Characterize.state_index = idx;
                table = Interp.of_points points;
                fit =
                  Mgf.triplet ~a:(float_of ~what:"a" a)
                    ~b:(float_of ~what:"b" b) ~c:(float_of ~what:"c" c);
                fit_rms_log = float_of ~what:"rms" rms;
                mu_analytic = float_of ~what:"mu_analytic" mu_an;
                sigma_analytic = float_of ~what:"sigma_analytic" s_an;
                mu_ref = float_of ~what:"mu_ref" mu_ref;
                sigma_ref = float_of ~what:"sigma_ref" s_ref;
                mu_mc = float_of ~what:"mu_mc" mu_mc;
                sigma_mc = float_of ~what:"sigma_mc" s_mc;
              }
            | _ -> raise (Format_error "expected state line"))
      in
      chars := { Characterize.cell; param; states } :: !chars;
      read_cells ()
    | _ -> raise (Format_error "expected cell or end line")
  in
  read_cells ();
  Array.of_list (List.rev !chars)

let save ~path chars =
  let oc = open_out path in
  (try output_string oc (to_string chars)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load ~path =
  let ic = open_in path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  of_string text
