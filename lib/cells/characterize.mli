(** Cell leakage pre-characterization.

    For every cell and input state this produces (§2.1):
    - a tabulation of the deterministic leakage-vs-L curve (the
      "simulator" output; within a cell, L is fully correlated so each
      state's leakage is a function of a single scalar),
    - the analytical [(a, b, c)] fit of that curve and the resulting
      closed-form statistics (the paper's analytical technique),
    - reference statistics by Gauss–Legendre integration of the true
      curve against the length density, and
    - Monte-Carlo statistics (the paper's MC technique).

    The analytical-vs-MC discrepancies reproduce the paper's §2.1.2
    accuracy table (mean error < 2 %, σ error up to ≈ 10 %) and stem
    from the curve not being exactly log-quadratic, not from the moment
    derivation. *)

type state_char = {
  state_index : int;
  table : Rgleak_num.Interp.t;  (** leakage (nA) vs channel length (nm) *)
  fit : Mgf.triplet;
  fit_rms_log : float;  (** RMS residual of the fit in ln-space *)
  mu_analytic : float;
  sigma_analytic : float;
  mu_ref : float;
  sigma_ref : float;
  mu_mc : float;
  sigma_mc : float;
}

type cell_char = {
  cell : Cell.t;
  param : Rgleak_process.Process_param.t;
  states : state_char array;  (** indexed by state index *)
}

val characterize :
  ?l_points:int ->
  ?span_sigmas:float ->
  ?mc_samples:int ->
  ?env:Rgleak_device.Mosfet.env ->
  param:Rgleak_process.Process_param.t ->
  rng:Rgleak_num.Rng.t ->
  Cell.t ->
  cell_char
(** Characterizes one cell.  The L grid covers
    [nominal ± span_sigmas·σ_total] (default ±6σ) with [l_points]
    points (default 97); [mc_samples] defaults to 20,000.  [env]
    selects supply and temperature (default: 1 V, 300 K). *)

val characterize_library :
  ?l_points:int ->
  ?span_sigmas:float ->
  ?mc_samples:int ->
  ?env:Rgleak_device.Mosfet.env ->
  ?jobs:int ->
  param:Rgleak_process.Process_param.t ->
  seed:int ->
  unit ->
  cell_char array
(** Characterizes all of {!Library.cells}.  Deterministic given [seed],
    {e including} in parallel: per-cell RNG streams are pre-derived in
    canonical order, then the cells fan out over the
    {!Rgleak_num.Parallel} domain pool ([jobs] as in
    {!Rgleak_num.Parallel.using}; default
    {!Rgleak_num.Parallel.default_jobs}, [jobs <= 1] stays inline). *)

val characterize_library_result :
  ?l_points:int ->
  ?span_sigmas:float ->
  ?mc_samples:int ->
  ?env:Rgleak_device.Mosfet.env ->
  ?jobs:int ->
  param:Rgleak_process.Process_param.t ->
  seed:int ->
  unit ->
  (cell_char array, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising {!characterize_library} under
    {!Rgleak_num.Guard.protect}: malformed settings fold to
    [Invalid_input], non-finite fitted moments and injected pool
    faults to [Numeric]. *)

val default_library : unit -> cell_char array
(** Library characterization under {!Rgleak_process.Process_param.default_channel_length}
    with a fixed seed; computed once on the shared domain pool and
    memoized. *)

val leakage_at : state_char -> float -> float
(** Table lookup: leakage at a channel length. *)
