(** The 62-cell standard-cell library.

    A synthetic 90 nm-class library mirroring the composition the paper
    uses (§2.1.1: 62 cells including the SRAM cell, various flip-flops
    and a range of logic cells): inverters and buffers in several drive
    strengths, NAND/NOR/AND/OR up to 4 inputs, XOR/XNOR, AOI/OAI complex
    gates, multiplexers, adder cells, tri-state buffers, latches,
    flip-flop variants (plain, resettable, settable, scan) and a 6T SRAM
    bit cell.  Stack depths range from 1 to 4, which is what drives the
    per-cell differences in leakage statistics. *)

val cells : Cell.t array
(** All 62 cells.  The array order is stable and is the canonical cell
    index used by histograms and netlists. *)

val size : int
(** [Array.length cells] = 62. *)

val find : string -> Cell.t
(** Lookup by name; raises [Not_found]. *)

val index_of : string -> int
(** Canonical index of a named cell; raises [Not_found]. *)

val names : unit -> string list
