(** Series/parallel pull networks and their leakage under a given input
    state.

    A CMOS cell is a PMOS pull-up network and an NMOS pull-down network.
    For a given input state exactly one network conducts; the leakage of
    the cell is the subthreshold current through the *blocking* network,
    which exhibits the stack effect: series OFF devices raise internal
    node voltages and suppress current super-linearly.  Internal node
    voltages are found by enforcing current continuity with Brent's
    method (nested for stacks deeper than two). *)

type t =
  | Device of { input : int; w_mult : float }
      (** A transistor gated by input [input] (index into the state
          vector); [w_mult] scales the reference width. *)
  | Series of t list
  | Parallel of t list

val device : ?w_mult:float -> int -> t
val series : t list -> t
val parallel : t list -> t

val inputs : t -> int list
(** Sorted, de-duplicated input indices used by the network. *)

val depth : t -> int
(** Maximum series stack depth. *)

val device_count : t -> int

val conducts : kind:Mosfet.kind -> t -> bool array -> bool
(** [conducts ~kind net state] is true when the network forms a fully-on
    path for the given input state ([state.(i)] is the logic value of
    input [i]).  An NMOS device conducts when its input is 1, a PMOS
    device when it is 0. *)

val leakage :
  ?l_nm:float ->
  ?l_of:(int -> float) ->
  env:Mosfet.env ->
  params:Mosfet.params ->
  t ->
  bool array ->
  float
(** Subthreshold current (nA) through the network when it does not
    conduct, with the full supply across it.  ON devices are treated as
    ideal shorts; OFF devices leak per {!Mosfet.subthreshold_current}.
    Raises {!Conducting} if the network is on for this state — callers
    must query {!conducts} first.  [l_nm] defaults to the nominal 90 nm
    and is shared by every device (within-cell variations are fully
    correlated, §2.1.1); pass [l_of] to give device [i] (in traversal
    order, the {!inputs}/{!device_count} order) its own channel length —
    used to ablate the full-correlation assumption. *)

exception Conducting
(** Raised by {!leakage} when the network is on for the given state. *)
