type kind = Nmos | Pmos

type env = { vdd : float; v_thermal : float; temp_k : float }

type params = {
  kind : kind;
  i0 : float;
  vth0 : float;
  roll_amp : float;
  roll_length : float;
  n_swing : float;
  dibl : float;
  w_nm : float;
}

let boltzmann_over_q = 0.0259 /. 300.0
let vth_temp_coeff = 0.0008

let env_at ?(vdd = 1.0) ~temp_k () =
  if temp_k <= 0.0 then invalid_arg "Mosfet.env_at: temperature must be positive";
  { vdd; v_thermal = boltzmann_over_q *. temp_k; temp_k }

let default_env = env_at ~temp_k:300.0 ()

(* Calibration notes: roll_amp/roll_length give dVth/dL ~ 2.4 mV/nm at
   L = 90 nm, so a +-3 sigma (12.7 nm) length excursion moves leakage by
   roughly 5x, in line with published 90 nm subthreshold spreads. *)
let nmos ?(w_mult = 1.0) () =
  {
    kind = Nmos;
    i0 = 85.0;
    vth0 = 0.32;
    roll_amp = 0.06 *. exp (90.0 /. 25.0);
    roll_length = 25.0;
    n_swing = 1.4;
    dibl = 0.08;
    w_nm = 200.0 *. w_mult;
  }

let pmos ?(w_mult = 1.0) () =
  {
    kind = Pmos;
    i0 = 38.0;
    vth0 = 0.34;
    roll_amp = 0.055 *. exp (90.0 /. 27.0);
    roll_length = 27.0;
    n_swing = 1.45;
    dibl = 0.07;
    w_nm = 400.0 *. w_mult;
  }

let vth p ~l_nm =
  if l_nm <= 0.0 then invalid_arg "Mosfet.vth: channel length must be positive";
  p.vth0 -. (p.roll_amp *. exp (-.l_nm /. p.roll_length))

let off_current_floor = 1e-12

let subthreshold_current ?(dvt = 0.0) env p ~vgs ~vds ~l_nm =
  if vds < 0.0 then 0.0
  else begin
    let vth_eff =
      vth p ~l_nm +. dvt -. (p.dibl *. vds)
      -. (vth_temp_coeff *. (env.temp_k -. 300.0))
    in
    let exponent = (vgs -. vth_eff) /. (p.n_swing *. env.v_thermal) in
    let drain_factor = 1.0 -. exp (-.vds /. env.v_thermal) in
    let i = p.i0 *. (p.w_nm /. l_nm) *. exp exponent *. drain_factor in
    Float.max i 0.0
  end
