(** Subthreshold MOSFET leakage model.

    A BSIM-flavoured analytic model standing in for the commercial 90 nm
    SPICE models of the paper:

    [I = I0 · (W/L) · exp((V_gs − V_th(L) + η·V_ds) / (n·v_T)) · (1 − exp(−V_ds / v_T))]

    with threshold roll-off [V_th(L) = V_th0 − A·exp(−L/ℓ)].  The
    exponential dependence of leakage on channel length — the property
    the paper's [a·e^{bL+cL²}] fit captures — comes from the roll-off
    term.  Voltages are in volts, channel lengths in nanometres,
    currents in nanoamperes. *)

type kind = Nmos | Pmos

type env = {
  vdd : float;  (** supply voltage (V) *)
  v_thermal : float;  (** kT/q (V) *)
  temp_k : float;  (** junction temperature (K) *)
}

type params = {
  kind : kind;
  i0 : float;  (** leakage prefactor (nA) for W/L = 1 at V_gs = V_th *)
  vth0 : float;  (** long-channel threshold magnitude (V) *)
  roll_amp : float;  (** V_th roll-off amplitude A (V) *)
  roll_length : float;  (** roll-off characteristic length ℓ (nm) *)
  n_swing : float;  (** subthreshold slope ideality factor n *)
  dibl : float;  (** DIBL coefficient η (V/V) *)
  w_nm : float;  (** device width (nm) *)
}

val default_env : env
(** 90 nm-class: V_dd = 1.0 V, 300 K. *)

val env_at : ?vdd:float -> temp_k:float -> unit -> env
(** Environment at a junction temperature: the thermal voltage scales
    with T, and {!subthreshold_current} additionally lowers V_th by
    0.8 mV/K above 300 K — the two effects that make subthreshold
    leakage grow steeply with temperature. *)

val vth_temp_coeff : float
(** dV_th/dT magnitude (V/K) applied by the model. *)

val nmos : ?w_mult:float -> unit -> params
(** Reference NMOS device; [w_mult] scales the default 200 nm width. *)

val pmos : ?w_mult:float -> unit -> params
(** Reference PMOS device (wider, lower mobility prefactor). *)

val vth : params -> l_nm:float -> float
(** Threshold voltage magnitude at the given channel length. *)

val subthreshold_current :
  ?dvt:float -> env -> params -> vgs:float -> vds:float -> l_nm:float -> float
(** Subthreshold current (nA) for NMOS conventions: [vgs]/[vds] relative
    to source, both typically ≥ −V_dd; [dvt] is an additive threshold
    shift (random-dopant component).  For PMOS pass source-referred
    magnitudes ([vsg], [vsd]); the model is symmetric. *)

val off_current_floor : float
(** Numerical floor (nA) below which network currents are clamped, to
    keep root-finding well-behaved. *)
