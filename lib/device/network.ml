open Rgleak_num

type t =
  | Device of { input : int; w_mult : float }
  | Series of t list
  | Parallel of t list

exception Conducting

let device ?(w_mult = 1.0) input =
  if input < 0 then invalid_arg "Network.device: negative input index";
  if w_mult <= 0.0 then invalid_arg "Network.device: width must be positive";
  Device { input; w_mult }

let series = function
  | [] -> invalid_arg "Network.series: empty list"
  | [ x ] -> x
  | xs -> Series xs

let parallel = function
  | [] -> invalid_arg "Network.parallel: empty list"
  | [ x ] -> x
  | xs -> Parallel xs

let rec fold_devices f acc = function
  | Device d -> f acc d.input d.w_mult
  | Series xs | Parallel xs -> List.fold_left (fold_devices f) acc xs

let inputs net =
  fold_devices (fun acc i _ -> i :: acc) [] net
  |> List.sort_uniq compare

let rec depth = function
  | Device _ -> 1
  | Series xs -> List.fold_left (fun acc x -> acc + depth x) 0 xs
  | Parallel xs -> List.fold_left (fun acc x -> Stdlib.max acc (depth x)) 0 xs

let device_count net = fold_devices (fun acc _ _ -> acc + 1) 0 net

(* Reduced network for a fixed input state: ON devices disappear as
   shorts, OFF devices remain.  Each surviving device carries its width
   multiplier and its own channel length (device ordinals are assigned
   in traversal order before reduction, so per-device length vectors
   stay aligned whatever the state). *)
type reduced = Short | Blocking of rnet
and rnet = Rdev of float * float | Rser of rnet list | Rpar of rnet list

let device_on ~kind ~value =
  match (kind : Mosfet.kind) with Nmos -> value | Pmos -> not value

let reduce ~kind ~l_of state net =
  let ordinal = ref (-1) in
  let rec go = function
    | Device { input; w_mult } ->
      incr ordinal;
      if input >= Array.length state then
        invalid_arg "Network: input index beyond state vector";
      if device_on ~kind ~value:state.(input) then Short
      else Blocking (Rdev (w_mult, l_of !ordinal))
    | Series xs ->
      let parts =
        List.filter_map
          (fun x -> match go x with Short -> None | Blocking r -> Some r)
          xs
      in
      begin match parts with
      | [] -> Short
      | [ r ] -> Blocking r
      | rs -> Blocking (Rser rs)
      end
    | Parallel xs ->
      let reduced = List.map go xs in
      if List.exists (fun r -> r = Short) reduced then Short
      else begin
        let parts =
          List.map (function Short -> assert false | Blocking r -> r) reduced
        in
        match parts with [ r ] -> Blocking r | rs -> Blocking (Rpar rs)
      end
  in
  go net

let conducts ~kind net state =
  reduce ~kind ~l_of:(fun _ -> 90.0) state net = Short

(* Current through an OFF device between nodes at [hi] >= [lo].  The
   gate sits at the off level (0 for NMOS, vdd for PMOS); the source is
   the node nearer ground for NMOS and nearer vdd for PMOS, which is
   what produces the stack effect as internal nodes move. *)
let dev_current env (params : Mosfet.params) ~l_nm ~w_mult ~hi ~lo =
  let vgs =
    match params.Mosfet.kind with
    | Nmos -> -.lo
    | Pmos -> hi -. env.Mosfet.vdd
  in
  let i =
    Mosfet.subthreshold_current env params ~vgs ~vds:(hi -. lo) ~l_nm
  in
  Float.max (i *. w_mult) 0.0

let rec current env params rnet ~hi ~lo =
  if hi <= lo then 0.0
  else
    match rnet with
    | Rdev (w, l_nm) -> dev_current env params ~l_nm ~w_mult:w ~hi ~lo
    | Rpar xs ->
      List.fold_left (fun acc x -> acc +. current env params x ~hi ~lo) 0.0 xs
    | Rser [] -> invalid_arg "Network: empty series"
    | Rser [ x ] -> current env params x ~hi ~lo
    | Rser (x :: rest) ->
      (* Continuity at the internal node v: the current entering from
         above equals the current leaving below.  The difference is
         monotone decreasing in v, so Brent converges unconditionally. *)
      let rest_net = match rest with [ r ] -> r | rs -> Rser rs in
      let f v =
        current env params x ~hi ~lo:v
        -. current env params rest_net ~hi:v ~lo
      in
      let v =
        try Rootfind.brent ~tol:1e-11 f ~lo ~hi
        with Rootfind.No_bracket ->
          (* Degenerate: both sides carry (numerically) zero current. *)
          0.5 *. (hi +. lo)
      in
      current env params x ~hi ~lo:v

let leakage ?(l_nm = 90.0) ?l_of ~env ~params net state =
  let l_of = match l_of with Some f -> f | None -> fun _ -> l_nm in
  match reduce ~kind:params.Mosfet.kind ~l_of state net with
  | Short -> raise Conducting
  | Blocking rnet ->
    Float.max
      (current env params rnet ~hi:env.Mosfet.vdd ~lo:0.0)
      Mosfet.off_current_floor
