(** Random circuit generation matching a prescribed cell-usage
    histogram (§3.1.1's first validation experiment: "a large number of
    circuits were randomly generated so as to match a frequency of cell
    usage that was specified a priori"). *)

val random_netlist :
  ?name:string ->
  ?sampling:[ `Exact | `Multinomial ] ->
  histogram:Histogram.t ->
  n:int ->
  rng:Rgleak_num.Rng.t ->
  unit ->
  Netlist.t
(** Generates a netlist of exactly [n] gates with random DAG
    connectivity (each gate's fanins drawn from earlier gates or primary
    inputs).  With [`Exact] (default) the cell counts match the
    histogram under largest-remainder rounding; with [`Multinomial] each
    gate's type is drawn i.i.d. from the histogram, so counts fluctuate
    around the target as they would across real designs sharing a cell
    mix (this is what the Fig. 6 convergence experiment uses). *)

val random_placed :
  ?name:string ->
  ?sampling:[ `Exact | `Multinomial ] ->
  ?site_w:float ->
  ?site_h:float ->
  histogram:Histogram.t ->
  n:int ->
  rng:Rgleak_num.Rng.t ->
  unit ->
  Placer.placed
(** [random_netlist] placed randomly on a near-square array. *)

val fig6_sizes : int array
(** The square gate counts used for the Fig. 6 convergence sweep,
    ending at the paper's 11,236 (= 106²). *)
