(** Reader/writer for gate-level structural Verilog (the subset
    synthesis tools emit for standard-cell netlists).

    Supported constructs: a single [module] with a port list,
    [input]/[output]/[wire] declarations (scalar nets only — vectors are
    rejected with a clear error), and cell instantiations with named
    ([.A(n1)]) or positional connections.  Comments ([//] and
    [/* ... */]) are handled.  Example:

    {v
    module top (a, b, y);
      input a, b;
      output y;
      wire n1;
      INV_X1   u1 (.Z(n1), .A(a));
      NAND2_X1 u2 (.Z(y), .A(n1), .B(b));
    endmodule
    v}

    Port conventions for library cells: the output is named [Z] (also
    accepted on input: [ZN], [Y], [Q]); inputs are [A], [B], [C], [D]
    (or [A1..An]).  Positional connections put the output first.
    {!to_netlist} lowers a parsed module onto the 62-cell library;
    {!of_netlist} exports any library netlist. *)

type connection = Named of (string * string) list | Positional of string list

type instance = {
  cell : string;  (** library cell name *)
  inst_name : string;
  connection : connection;
}

type t = {
  name : string;
  ports : string list;
  inputs : string list;
  outputs : string list;
  wires : string list;
  instances : instance list;
}

exception Parse_error of { line : int; message : string }

val parse_string : string -> t
val parse_file : string -> t
val to_string : t -> string

val to_netlist : t -> Netlist.t
(** Lowers onto the library: resolves each instance's output/input nets
    by the port conventions, orders instances topologically (sequential
    cells cut feedback loops), and maps drivers.  Raises
    [Invalid_argument] on unknown cells, undriven nets or combinational
    cycles. *)

val of_netlist : Netlist.t -> t
(** Export with generated net names ([n<i>], [pi<k>]); cells keep their
    library names, so the output parses back with {!to_netlist}. *)
