(** Die geometry: the rectangular array of gate sites of §2.2.1 (Fig. 4).

    Sites are filled row-major; the last row may be partially occupied
    so that arbitrary gate counts are represented exactly.  The
    occurrence count of a site-offset vector (Eq. 16, generalized to the
    partial last row) is what makes the linear-time estimator exact. *)

type t = private {
  cols : int;  (** m: sites per full row *)
  full_rows : int;  (** rows that are completely occupied *)
  partial : int;  (** occupied sites in the last row (0 = none) *)
  site_w : float;  (** ΔW in µm *)
  site_h : float;  (** ΔH in µm *)
}

val square : ?site_w:float -> ?site_h:float -> n:int -> unit -> t
(** Near-square array of [n] sites with the given site pitch (defaults
    4 µm × 4 µm). *)

val of_dims : n:int -> width:float -> height:float -> t
(** Array of [n] sites filling a [width] × [height] µm die: the site
    area is (width·height)/n and the column count is chosen to keep
    sites near-square (§2.2.1: a site is the average cell area plus its
    share of routing). *)

val site_count : t -> int
(** n = cols·full_rows + partial. *)

val rows : t -> int
(** Total rows including a partial one. *)

val width : t -> float
val height : t -> float
val area : t -> float
(** width · height — note for a partial last row this is the bounding
    box of the occupied region. *)

val position : t -> int -> float * float
(** Center coordinates (µm) of site [idx] (row-major). *)

val positions : t -> (float * float) array

val distance_of_offset : t -> di:int -> dj:int -> float
(** Center-to-center distance for a column offset [di] and row offset
    [dj] (the d_ij of the paper). *)

val occurrences : t -> di:int -> dj:int -> int
(** Number of ordered occupied site pairs [(a, b)] with
    [b − a = (di, dj)]; Eq. 16 when the array is full, exact closed form
    including the partial row otherwise.  O(1). *)

val check_occurrence_total : t -> bool
(** Σ over all offsets of occurrences = n²; used by property tests. *)
