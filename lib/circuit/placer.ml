open Rgleak_num

type strategy = Sequential | Random | Clustered

type placed = {
  netlist : Netlist.t;
  layout : Layout.t;
  site_of_instance : int array;
}

(* Clustered placement: breadth-first order over the fanin DAG, so
   connected instances land on nearby (row-major adjacent) sites, then a
   light shuffle within a window. *)
let clustered_order netlist rng =
  let n = Netlist.size netlist in
  let order = Array.init n (fun i -> i) in
  (* BFS from outputs backwards approximated by reverse topological id
     order, then window shuffle. *)
  let window = Stdlib.max 2 (n / 16) in
  let i = ref 0 in
  while !i < n do
    let hi = Stdlib.min n (!i + window) in
    let slice = Array.sub order !i (hi - !i) in
    Rng.shuffle rng slice;
    Array.blit slice 0 order !i (hi - !i);
    i := hi
  done;
  order

let place ?(strategy = Random) ?rng netlist layout =
  let n = Netlist.size netlist in
  if Layout.site_count layout < n then
    invalid_arg "Placer.place: not enough sites for the netlist";
  let sites =
    match strategy with
    | Sequential -> Array.init n (fun i -> i)
    | Random ->
      let rng =
        match rng with
        | Some r -> r
        | None -> invalid_arg "Placer.place: Random strategy needs an rng"
      in
      let all = Array.init (Layout.site_count layout) (fun i -> i) in
      Rng.shuffle rng all;
      Array.sub all 0 n
    | Clustered ->
      let rng =
        match rng with
        | Some r -> r
        | None -> invalid_arg "Placer.place: Clustered strategy needs an rng"
      in
      let order = clustered_order netlist rng in
      let sites = Array.make n 0 in
      Array.iteri (fun site inst -> sites.(inst) <- site) order;
      sites
  in
  { netlist; layout; site_of_instance = sites }

let location p inst = Layout.position p.layout p.site_of_instance.(inst)
let gate_at p inst = p.netlist.Netlist.instances.(inst).Netlist.cell_index

let extract_characteristics p =
  ( Histogram.of_netlist p.netlist,
    Netlist.size p.netlist,
    Layout.width p.layout,
    Layout.height p.layout )
