open Rgleak_cells

type t = float array

let normalize weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Histogram: total weight must be positive";
  Array.map (fun w -> w /. total) weights

let of_weights pairs =
  if pairs = [] then
    Rgleak_num.Guard.invalid "Histogram.of_weights: empty cell mix";
  let weights = Array.make Library.size 0.0 in
  List.iter
    (fun (name, w) ->
      if w < 0.0 then invalid_arg "Histogram.of_weights: negative weight";
      let i = Library.index_of name in
      weights.(i) <- weights.(i) +. w)
    pairs;
  normalize weights

let of_counts counts =
  if Array.length counts <> Library.size then
    invalid_arg "Histogram.of_counts: length must equal library size";
  normalize (Array.map float_of_int counts)

let of_netlist netlist = of_counts (Netlist.cell_counts netlist)
let uniform () = normalize (Array.make Library.size 1.0)
let frequency t i = t.(i)
let to_array t = Array.copy t

let counts_for t ~n =
  if n < 0 then invalid_arg "Histogram.counts_for: negative gate count";
  let exact = Array.map (fun a -> a *. float_of_int n) t in
  let counts = Array.map (fun x -> int_of_float (Float.floor x)) exact in
  let assigned = Array.fold_left ( + ) 0 counts in
  let remainders =
    Array.mapi (fun i x -> (x -. Float.floor x, i)) exact
  in
  Array.sort (fun (r1, _) (r2, _) -> compare r2 r1) remainders;
  let missing = n - assigned in
  for k = 0 to missing - 1 do
    let _, i = remainders.(k mod Array.length remainders) in
    counts.(i) <- counts.(i) + 1
  done;
  counts

let support t =
  Array.to_list (Array.mapi (fun i a -> (i, a)) t)
  |> List.filter_map (fun (i, a) -> if a > 0.0 then Some i else None)

let distance_l1 a b =
  if Array.length a <> Array.length b then
    invalid_arg "Histogram.distance_l1: length mismatch";
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. Float.abs (x -. b.(i))) a;
  !s
