open Rgleak_cells

type connection = Named of (string * string) list | Positional of string list

type instance = {
  cell : string;
  inst_name : string;
  connection : connection;
}

type t = {
  name : string;
  ports : string list;
  inputs : string list;
  outputs : string list;
  wires : string list;
  instances : instance list;
}

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

(* ---------- tokenizer ---------- *)

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Dot
  | Kw_module
  | Kw_endmodule
  | Kw_input
  | Kw_output
  | Kw_wire

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i + 1 < n && not !closed do
        if text.[!i] = '\n' then incr line;
        if text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated block comment"
    end
    else if c = '[' then fail !line "vector nets are not supported"
    else if c = '(' then (tokens := (Lparen, !line) :: !tokens; incr i)
    else if c = ')' then (tokens := (Rparen, !line) :: !tokens; incr i)
    else if c = ',' then (tokens := (Comma, !line) :: !tokens; incr i)
    else if c = ';' then (tokens := (Semi, !line) :: !tokens; incr i)
    else if c = '.' then (tokens := (Dot, !line) :: !tokens; incr i)
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      let word = String.sub text start (!i - start) in
      let tok =
        match word with
        | "module" -> Kw_module
        | "endmodule" -> Kw_endmodule
        | "input" -> Kw_input
        | "output" -> Kw_output
        | "wire" -> Kw_wire
        | _ -> Ident word
      in
      tokens := (tok, !line) :: !tokens
    end
    else fail !line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ---------- parser ---------- *)

type cursor = { mutable toks : (token * int) list }

let peek cur =
  match cur.toks with [] -> None | (t, l) :: _ -> Some (t, l)

let advance cur =
  match cur.toks with
  | [] -> fail 0 "unexpected end of input"
  | (t, l) :: rest ->
    cur.toks <- rest;
    (t, l)

let expect cur what pred =
  let t, l = advance cur in
  match pred t with
  | Some v -> v
  | None -> fail l (Printf.sprintf "expected %s" what)

let expect_ident cur =
  expect cur "identifier" (function Ident s -> Some s | _ -> None)

let expect_tok cur what target =
  ignore (expect cur what (fun t -> if t = target then Some () else None))

let ident_list cur =
  (* ident (, ident)* ; *)
  let rec go acc =
    let id = expect_ident cur in
    match advance cur with
    | Comma, _ -> go (id :: acc)
    | Semi, _ -> List.rev (id :: acc)
    | _, l -> fail l "expected ',' or ';' in declaration"
  in
  go []

let parse_connection cur =
  (* '(' already consumed *)
  match peek cur with
  | Some (Dot, _) ->
    let rec named acc =
      expect_tok cur "'.'" Dot;
      let port = expect_ident cur in
      expect_tok cur "'('" Lparen;
      let net = expect_ident cur in
      expect_tok cur "')'" Rparen;
      match advance cur with
      | Comma, _ -> named ((port, net) :: acc)
      | Rparen, _ -> Named (List.rev ((port, net) :: acc))
      | _, l -> fail l "expected ',' or ')' in connection list"
    in
    named []
  | Some (Rparen, _) ->
    ignore (advance cur);
    Positional []
  | _ ->
    let rec positional acc =
      let net = expect_ident cur in
      match advance cur with
      | Comma, _ -> positional (net :: acc)
      | Rparen, _ -> Positional (List.rev (net :: acc))
      | _, l -> fail l "expected ',' or ')' in connection list"
    in
    positional []

let parse_string text =
  let cur = { toks = tokenize text } in
  expect_tok cur "'module'" Kw_module;
  let name = expect_ident cur in
  expect_tok cur "'('" Lparen;
  let ports =
    match peek cur with
    | Some (Rparen, _) ->
      ignore (advance cur);
      expect_tok cur "';'" Semi;
      []
    | _ ->
      let rec go acc =
        let id = expect_ident cur in
        match advance cur with
        | Comma, _ -> go (id :: acc)
        | Rparen, _ ->
          expect_tok cur "';'" Semi;
          List.rev (id :: acc)
        | _, l -> fail l "expected ',' or ')' in port list"
      in
      go []
  in
  let inputs = ref [] and outputs = ref [] and wires = ref [] in
  let instances = ref [] in
  let rec body () =
    match advance cur with
    | Kw_endmodule, _ -> ()
    | Kw_input, _ ->
      inputs := !inputs @ ident_list cur;
      body ()
    | Kw_output, _ ->
      outputs := !outputs @ ident_list cur;
      body ()
    | Kw_wire, _ ->
      wires := !wires @ ident_list cur;
      body ()
    | Ident cell, _ ->
      let inst_name = expect_ident cur in
      expect_tok cur "'('" Lparen;
      let connection = parse_connection cur in
      expect_tok cur "';'" Semi;
      instances := { cell; inst_name; connection } :: !instances;
      body ()
    | _, l -> fail l "expected declaration, instantiation or 'endmodule'"
  in
  body ();
  {
    name;
    ports;
    inputs = !inputs;
    outputs = !outputs;
    wires = !wires;
    instances = List.rev !instances;
  }

let parse_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string text

(* ---------- printer ---------- *)

let to_string t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "module %s (%s);\n" t.name (String.concat ", " t.ports);
  let decl kw = function
    | [] -> ()
    | nets -> pf "  %s %s;\n" kw (String.concat ", " nets)
  in
  decl "input" t.inputs;
  decl "output" t.outputs;
  decl "wire" t.wires;
  List.iter
    (fun inst ->
      let conn =
        match inst.connection with
        | Named pairs ->
          String.concat ", "
            (List.map (fun (p, net) -> Printf.sprintf ".%s(%s)" p net) pairs)
        | Positional nets -> String.concat ", " nets
      in
      pf "  %s %s (%s);\n" inst.cell inst.inst_name conn)
    t.instances;
  pf "endmodule\n";
  Buffer.contents buf

(* ---------- lowering ---------- *)

let output_port_names = [ "Z"; "ZN"; "Y"; "Q" ]

let split_connection ~line_ctx inst =
  match inst.connection with
  | Positional [] ->
    invalid_arg (line_ctx ^ ": instance with no connections")
  | Positional (out :: ins) -> (out, ins)
  | Named pairs ->
    let outs, ins =
      List.partition (fun (p, _) -> List.mem p output_port_names) pairs
    in
    (match outs with
    | [ (_, out) ] ->
      let ins =
        List.sort (fun (p1, _) (p2, _) -> compare p1 p2) ins
        |> List.map snd
      in
      (out, ins)
    | [] -> invalid_arg (line_ctx ^ ": no output port (Z/ZN/Y/Q)")
    | _ -> invalid_arg (line_ctx ^ ": multiple output ports"))

let is_sequential cell_name =
  let starts prefix =
    String.length cell_name >= String.length prefix
    && String.sub cell_name 0 (String.length prefix) = prefix
  in
  starts "DFF" || starts "SDFF" || starts "DLATCH"

let to_netlist t =
  let instances = Array.of_list t.instances in
  let parsed =
    Array.map
      (fun inst ->
        let ctx = Printf.sprintf "instance %s" inst.inst_name in
        (try ignore (Library.index_of inst.cell)
         with Not_found ->
           invalid_arg (Printf.sprintf "%s: unknown cell %s" ctx inst.cell));
        let out, ins = split_connection ~line_ctx:ctx inst in
        (inst, out, ins))
      instances
  in
  let driver_of = Hashtbl.create 64 in
  Array.iteri (fun i (_, out, _) -> Hashtbl.replace driver_of out i) parsed;
  let input_nets = Hashtbl.create 16 in
  List.iter (fun net -> Hashtbl.replace input_nets net ()) t.inputs;
  (* validate net usage *)
  Array.iter
    (fun ((inst : instance), _, ins) ->
      List.iter
        (fun net ->
          if
            (not (Hashtbl.mem driver_of net))
            && not (Hashtbl.mem input_nets net)
          then
            invalid_arg
              (Printf.sprintf "instance %s reads undriven net %s"
                 inst.inst_name net))
        ins)
    parsed;
  (* topological emission with sequential cuts, mirroring Techmap.map *)
  let n = Array.length parsed in
  let emitted = Array.make n false in
  let on_stack = Array.make n false in
  let order = ref [] in
  let rec visit i =
    if not emitted.(i) then begin
      if on_stack.(i) then invalid_arg "Verilog.to_netlist: combinational cycle";
      on_stack.(i) <- true;
      let inst, _, ins = parsed.(i) in
      if not (is_sequential inst.cell) then
        List.iter
          (fun net ->
            match Hashtbl.find_opt driver_of net with
            | Some j -> visit j
            | None -> ())
          ins;
      on_stack.(i) <- false;
      if not emitted.(i) then begin
        emitted.(i) <- true;
        order := i :: !order
      end
    end
  in
  for i = 0 to n - 1 do
    visit i
  done;
  let order = Array.of_list (List.rev !order) in
  let new_id = Array.make n (-1) in
  Array.iteri (fun pos old -> new_id.(old) <- pos) order;
  let id_of_net = Hashtbl.create 64 in
  Array.iteri
    (fun pos old ->
      let _, out, _ = parsed.(old) in
      Hashtbl.replace id_of_net out pos)
    order;
  let netlist_instances =
    Array.mapi
      (fun pos old ->
        let inst, _, ins = parsed.(old) in
        let fanin =
          Array.of_list
            (List.map
               (fun net ->
                 match Hashtbl.find_opt id_of_net net with
                 | Some id when id < pos -> id
                 | Some _ -> -1 (* sequential cut *)
                 | None -> -1)
               ins)
        in
        {
          Netlist.id = pos;
          cell_index = Library.index_of inst.cell;
          fanin;
        })
      order
  in
  Netlist.create ~name:t.name
    ~num_primary_inputs:(Stdlib.max 1 (List.length t.inputs))
    netlist_instances

let of_netlist (netlist : Netlist.t) =
  let n = Netlist.size netlist in
  let num_pi = Stdlib.max 1 netlist.Netlist.num_primary_inputs in
  let pi_name k = Printf.sprintf "pi%d" k in
  let net_name id = Printf.sprintf "n%d" id in
  let port_letter k = String.make 1 (Char.chr (Char.code 'A' + k)) in
  let driven = Array.make n false in
  Array.iter
    (fun inst ->
      Array.iter (fun f -> if f >= 0 then driven.(f) <- true) inst.Netlist.fanin)
    netlist.Netlist.instances;
  let instances =
    Array.to_list
      (Array.map
         (fun inst ->
           let ins =
             Array.to_list
               (Array.mapi
                  (fun port driver ->
                    let net =
                      if driver >= 0 then net_name driver
                      else pi_name ((inst.Netlist.id + port) mod num_pi)
                    in
                    (port_letter port, net))
                  inst.Netlist.fanin)
           in
           {
             cell = Library.cells.(inst.Netlist.cell_index).Cell.name;
             inst_name = Printf.sprintf "u%d" inst.Netlist.id;
             connection = Named (("Z", net_name inst.Netlist.id) :: ins);
           })
         netlist.Netlist.instances)
  in
  let inputs = List.init num_pi pi_name in
  let outputs =
    List.filter_map
      (fun id -> if driven.(id) then None else Some (net_name id))
      (List.init n Fun.id)
  in
  let wires =
    List.filter_map
      (fun id -> if driven.(id) then Some (net_name id) else None)
      (List.init n Fun.id)
  in
  {
    name = netlist.Netlist.name;
    ports = inputs @ outputs;
    inputs;
    outputs;
    wires;
    instances;
  }
