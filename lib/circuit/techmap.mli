(** Technology mapping: lowering a generic .bench gate graph onto the
    62-cell library.

    Gates with library-native arity map directly (NAND3 → NAND3_X1,
    XOR2 → XOR2_X1, NOT → INV_X1, DFF → DFF_X1, …).  Wider associative
    gates are decomposed into balanced trees of library gates — e.g. a
    5-input AND becomes AND4 feeding AND2 — and wide XOR/XNOR into
    XOR2/XNOR2 chains, preserving the function.  The result is a
    {!Netlist.t} ready for placement and estimation, so real ISCAS85
    .bench files drop straight into the late-mode flow. *)

type report = {
  native : int;  (** gates mapped one-to-one *)
  decomposed : int;  (** source gates that required a tree *)
  added : int;  (** extra library cells introduced by decomposition *)
}

val map : ?drive:[ `X1 | `X2 ] -> Bench_format.t -> Netlist.t * report
(** Maps a parsed .bench circuit; [drive] picks the drive variant where
    the library offers one (default [`X1]).  Raises [Invalid_argument]
    if the circuit fails {!Bench_format.validate}. *)

val family_of_cell : int -> (Bench_format.gate_type * int) option
(** Logic family and natural fan-in of a library cell (by canonical
    index): the projection used both by the exporter and by netlist
    logic simulation.  [None] for cells with no gate-level equivalent
    (SRAM6T). *)

val netlist_to_bench : Netlist.t -> Bench_format.t
(** Exports a library netlist back to .bench gate types (drive variants
    collapse onto their logic family; cells without a .bench equivalent
    — complex AOI/OAI, MUX, adders, SRAM — are exported as their
    NAND/NOR/NOT decompositions' nearest family and noted by name in a
    comment-safe manner: the mapping is positional, good enough for
    interchange of generated circuits).  Raises [Invalid_argument] for
    cells that have no reasonable .bench projection (SRAM6T). *)
