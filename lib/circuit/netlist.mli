(** Gate-level netlists.

    Leakage estimation needs only the gate types; connectivity (a DAG of
    driver indices) is carried so generated circuits are structurally
    plausible and so late-mode extraction has something to extract from. *)

type instance = {
  id : int;
  cell_index : int;  (** index into {!Rgleak_cells.Library.cells} *)
  fanin : int array;  (** ids of driving instances (primary inputs = -1) *)
}

type t = {
  name : string;
  num_primary_inputs : int;
  instances : instance array;
}

val create : name:string -> num_primary_inputs:int -> instance array -> t
(** Validates ids are dense 0..n-1 in order and fanins reference only
    earlier instances or primary inputs (-1). *)

val size : t -> int
val cell_counts : t -> int array
(** Gate count per library cell index. *)

val total_area : t -> float
(** Sum of instance cell areas (µm²). *)

val pp_summary : Format.formatter -> t -> unit
