(** Reader/writer for placement files (a minimal DEF-like text format).

    Late-mode estimation wants the {e actual} placement, not a random
    one; this format carries it alongside a netlist file:

    {v
    rgleak-placement 1
    die 320.0 240.0
    0 12.5 4.0
    1 20.5 4.0
    ...
    v}

    One line per instance: id, x, y (µm, cell centers).  {!apply} binds
    a placement to a netlist by snapping each coordinate to the nearest
    free site of a layout built over the declared die. *)

exception Format_error of string

type t = {
  width : float;
  height : float;
  positions : (float * float) array;  (** indexed by instance id *)
}

val to_string : t -> string
val of_string : string -> t
val save : path:string -> t -> unit
val load : path:string -> t

val of_placed : Placer.placed -> t
(** Extracts the placement of an already-placed design. *)

val apply : Netlist.t -> t -> Placer.placed
(** Binds the placement to the netlist: builds the site grid over the
    declared die and assigns every instance the nearest unoccupied site
    to its coordinate (greedy, in instance order).  Raises
    [Invalid_argument] if the instance count disagrees or the die
    cannot hold the netlist. *)

val max_snap_distance : Placer.placed -> t -> float
(** Largest distance between a requested coordinate and the assigned
    site center, for reporting placement fidelity. *)
