(** Reader/writer for the ISCAS85/89 ".bench" netlist format.

    The format the original benchmark suites are distributed in:

    {v
    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)
    v}

    Supported gate types: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUFF and
    DFF, with arbitrary fan-in for the associative ones.  Parsing
    produces a generic gate graph; {!Techmap} lowers it onto the
    62-cell library.  The writer emits any {!Netlist.t} back out (using
    the cell's logic family and fan-in), so generated circuits can be
    exported to other tools. *)

type gate_type =
  | And | Nand | Or | Nor | Xor | Xnor | Not | Buff | Dff

type gate = {
  output : string;  (** net name *)
  gate_type : gate_type;
  inputs : string list;
}

type t = {
  name : string;
  primary_inputs : string list;
  primary_outputs : string list;
  gates : gate list;  (** in file order *)
}

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> t
(** Parses the text of a .bench file.  Raises {!Parse_error} with the
    offending line number on malformed input. *)

val parse_file : string -> t
(** Parses a file; the circuit name defaults to the basename. *)

val to_string : t -> string
(** Canonical .bench text (INPUTs, OUTPUTs, then gates). *)

val gate_type_name : gate_type -> string
val gate_count : t -> int

val validate : t -> (unit, string) Stdlib.result
(** Structural checks: every gate input is a primary input or some
    gate's output; no duplicate definitions; fan-in arity sane
    (NOT/BUFF/DFF take exactly one input, others at least two). *)
