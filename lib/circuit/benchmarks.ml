open Rgleak_num

type spec = {
  name : string;
  gates : int;
  description : string;
  mix : (string * float) list;
}

(* Gate mixes follow the published functional descriptions: weights are
   approximate fractions of the gate inventory by type family. *)
let specs =
  [|
    {
      name = "c432";
      gates = 160;
      description = "27-channel interrupt controller";
      mix =
        [
          ("NAND2_X1", 30.0); ("NAND3_X1", 14.0); ("NAND4_X1", 5.0);
          ("NOR2_X1", 10.0); ("INV_X1", 40.0); ("AND2_X1", 12.0);
          ("XOR2_X1", 18.0); ("OR2_X1", 8.0); ("BUF_X1", 6.0);
          ("AOI21_X1", 9.0); ("INV_X2", 8.0);
        ];
    };
    {
      name = "c499";
      gates = 202;
      description = "32-bit single-error-correcting circuit";
      mix =
        [
          ("XOR2_X1", 104.0); ("AND2_X1", 40.0); ("NOR2_X1", 12.0);
          ("INV_X1", 26.0); ("AND4_X1", 8.0); ("OR4_X1", 6.0);
          ("BUF_X1", 6.0);
        ];
    };
    {
      name = "c880";
      gates = 383;
      description = "8-bit ALU";
      mix =
        [
          ("NAND2_X1", 87.0); ("NAND3_X1", 25.0); ("NAND4_X1", 12.0);
          ("AND2_X1", 50.0); ("OR2_X1", 29.0); ("NOR2_X1", 30.0);
          ("INV_X1", 63.0); ("XOR2_X1", 18.0); ("BUF_X1", 26.0);
          ("AOI21_X1", 15.0); ("OAI21_X1", 15.0); ("INV_X2", 13.0);
        ];
    };
    {
      name = "c1355";
      gates = 546;
      description = "32-bit SEC (c499 with XORs expanded to NANDs)";
      mix =
        [
          ("NAND2_X1", 416.0); ("AND2_X1", 40.0); ("NOR2_X1", 12.0);
          ("INV_X1", 40.0); ("AND4_X1", 8.0); ("OR4_X1", 6.0);
          ("BUF_X1", 24.0);
        ];
    };
    {
      name = "c1908";
      gates = 880;
      description = "16-bit SEC/DED";
      mix =
        [
          ("NAND2_X1", 320.0); ("XOR2_X1", 120.0); ("INV_X1", 277.0);
          ("AND2_X1", 63.0); ("NOR2_X1", 40.0); ("BUF_X1", 42.0);
          ("AOI21_X1", 10.0); ("NAND3_X1", 8.0);
        ];
    };
    {
      name = "c2670";
      gates = 1193;
      description = "12-bit ALU and controller";
      mix =
        [
          ("NAND2_X1", 260.0); ("AND2_X1", 170.0); ("OR2_X1", 80.0);
          ("NOR2_X1", 77.0); ("INV_X1", 321.0); ("BUF_X1", 130.0);
          ("XOR2_X1", 40.0); ("NAND3_X1", 40.0); ("NAND4_X1", 15.0);
          ("AOI22_X1", 20.0); ("OAI21_X1", 20.0); ("INV_X2", 20.0);
        ];
    };
    {
      name = "c3540";
      gates = 1669;
      description = "8-bit ALU with BCD arithmetic";
      mix =
        [
          ("NAND2_X1", 400.0); ("AND2_X1", 220.0); ("OR2_X1", 90.0);
          ("NOR2_X1", 160.0); ("INV_X1", 490.0); ("XOR2_X1", 60.0);
          ("NAND3_X1", 80.0); ("AOI21_X1", 60.0); ("OAI21_X1", 40.0);
          ("BUF_X1", 50.0); ("MUX2_X1", 19.0);
        ];
    };
    {
      name = "c5315";
      gates = 2307;
      description = "9-bit ALU";
      mix =
        [
          ("NAND2_X1", 520.0); ("AND2_X1", 350.0); ("OR2_X1", 160.0);
          ("NOR2_X1", 150.0); ("INV_X1", 581.0); ("BUF_X1", 150.0);
          ("XOR2_X1", 82.0); ("NAND3_X1", 110.0); ("NAND4_X1", 44.0);
          ("AOI21_X1", 70.0); ("OAI21_X1", 50.0); ("MUX2_X1", 40.0);
        ];
    };
    {
      name = "c6288";
      gates = 2406;
      description = "16x16 multiplier (carry-save array)";
      mix =
        [ ("NOR2_X1", 2128.0); ("AND2_X1", 256.0); ("INV_X1", 22.0) ];
    };
    {
      name = "c7552";
      gates = 3512;
      description = "32-bit adder/comparator";
      mix =
        [
          ("NAND2_X1", 800.0); ("AND2_X1", 540.0); ("OR2_X1", 240.0);
          ("NOR2_X1", 240.0); ("INV_X1", 876.0); ("BUF_X1", 300.0);
          ("XOR2_X1", 150.0); ("NAND3_X1", 150.0); ("AOI21_X1", 90.0);
          ("OAI21_X1", 66.0); ("MUX2_X1", 40.0); ("INV_X2", 20.0);
        ];
    };
  |]

let table1_names =
  [ "c499"; "c1355"; "c432"; "c1908"; "c880"; "c2670"; "c5315"; "c7552"; "c6288" ]

let find name =
  match Array.find_opt (fun s -> s.name = name) specs with
  | Some s -> s
  | None -> raise Not_found

let default_seed spec = 7919 + (Hashtbl.hash spec.name mod 100_000)

let netlist ?seed spec =
  let seed = match seed with Some s -> s | None -> default_seed spec in
  let rng = Rng.create ~seed () in
  let histogram = Histogram.of_weights spec.mix in
  Generator.random_netlist ~name:spec.name ~histogram ~n:spec.gates ~rng ()

let placed ?seed ?(utilization = 0.7) spec =
  let seed = match seed with Some s -> s | None -> default_seed spec in
  let rng = Rng.create ~seed () in
  let nl = netlist ~seed spec in
  let die_area = Netlist.total_area nl /. utilization in
  let side = sqrt die_area in
  let layout = Layout.of_dims ~n:(Netlist.size nl) ~width:side ~height:side in
  Placer.place ~strategy:Random ~rng nl layout
