type gate_type = And | Nand | Or | Nor | Xor | Xnor | Not | Buff | Dff

type gate = { output : string; gate_type : gate_type; inputs : string list }

type t = {
  name : string;
  primary_inputs : string list;
  primary_outputs : string list;
  gates : gate list;
}

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let gate_type_name = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buff -> "BUFF"
  | Dff -> "DFF"

let gate_type_of_string line s =
  match String.uppercase_ascii s with
  | "AND" -> And
  | "NAND" -> Nand
  | "OR" -> Or
  | "NOR" -> Nor
  | "XOR" -> Xor
  | "XNOR" -> Xnor
  | "NOT" -> Not
  | "BUF" | "BUFF" -> Buff
  | "DFF" -> Dff
  | other -> fail line (Printf.sprintf "unknown gate type %S" other)

let strip s = String.trim s

(* "INPUT(3)" -> "3"; also tolerates spaces. *)
let inside_parens ~line ~keyword s =
  let s = strip s in
  let klen = String.length keyword in
  if String.length s < klen + 2 then fail line ("malformed " ^ keyword);
  let rest = strip (String.sub s klen (String.length s - klen)) in
  if String.length rest < 2 || rest.[0] <> '(' || rest.[String.length rest - 1] <> ')'
  then fail line ("malformed " ^ keyword ^ " line");
  strip (String.sub rest 1 (String.length rest - 2))

let parse_gate_line ~line lhs rhs =
  let output = strip lhs in
  if output = "" then fail line "empty output net name";
  let rhs = strip rhs in
  match String.index_opt rhs '(' with
  | None -> fail line "expected GATE(inputs)"
  | Some open_paren ->
    if rhs.[String.length rhs - 1] <> ')' then fail line "missing closing paren";
    let gate_type =
      gate_type_of_string line (strip (String.sub rhs 0 open_paren))
    in
    let args =
      String.sub rhs (open_paren + 1) (String.length rhs - open_paren - 2)
    in
    let inputs =
      String.split_on_char ',' args |> List.map strip
      |> List.filter (fun s -> s <> "")
    in
    if inputs = [] then fail line "gate with no inputs";
    { output; gate_type; inputs }

let parse_string ?(name = "bench") text =
  let primary_inputs = ref [] in
  let primary_outputs = ref [] in
  let gates = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      (* strip comments *)
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let content = strip content in
      if content <> "" then begin
        let upper = String.uppercase_ascii content in
        if String.length upper >= 5 && String.sub upper 0 5 = "INPUT" then
          primary_inputs :=
            inside_parens ~line ~keyword:"INPUT" content :: !primary_inputs
        else if String.length upper >= 6 && String.sub upper 0 6 = "OUTPUT" then
          primary_outputs :=
            inside_parens ~line ~keyword:"OUTPUT" content :: !primary_outputs
        else begin
          match String.index_opt content '=' with
          | None -> fail line "expected INPUT, OUTPUT or assignment"
          | Some eq ->
            let lhs = String.sub content 0 eq in
            let rhs =
              String.sub content (eq + 1) (String.length content - eq - 1)
            in
            gates := parse_gate_line ~line lhs rhs :: !gates
        end
      end)
    lines;
  {
    name;
    primary_inputs = List.rev !primary_inputs;
    primary_outputs = List.rev !primary_outputs;
    gates = List.rev !gates;
  }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name text

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" t.name);
  List.iter
    (fun pi -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" pi))
    t.primary_inputs;
  List.iter
    (fun po -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" po))
    t.primary_outputs;
  Buffer.add_char buf '\n';
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" g.output
           (gate_type_name g.gate_type)
           (String.concat ", " g.inputs)))
    t.gates;
  Buffer.contents buf

let gate_count t = List.length t.gates

let validate t =
  let defined = Hashtbl.create 64 in
  List.iter (fun pi -> Hashtbl.replace defined pi ()) t.primary_inputs;
  let dup = ref None in
  List.iter
    (fun g ->
      if Hashtbl.mem defined g.output && !dup = None then
        dup := Some g.output;
      Hashtbl.replace defined g.output ())
    t.gates;
  match !dup with
  | Some net -> Error (Printf.sprintf "net %s defined more than once" net)
  | None ->
    let missing = ref None in
    List.iter
      (fun g ->
        List.iter
          (fun i ->
            if (not (Hashtbl.mem defined i)) && !missing = None then
              missing := Some (g.output, i))
          g.inputs)
      t.gates;
    (match !missing with
    | Some (out, i) ->
      Error (Printf.sprintf "gate %s reads undefined net %s" out i)
    | None ->
      let bad_arity = ref None in
      List.iter
        (fun g ->
          let n = List.length g.inputs in
          let ok =
            match g.gate_type with
            | Not | Buff | Dff -> n = 1
            | And | Nand | Or | Nor | Xor | Xnor -> n >= 2
          in
          if (not ok) && !bad_arity = None then bad_arity := Some g.output)
        t.gates;
      (match !bad_arity with
      | Some out -> Error (Printf.sprintf "gate %s has invalid fan-in" out)
      | None ->
        let po_missing =
          List.find_opt (fun po -> not (Hashtbl.mem defined po)) t.primary_outputs
        in
        (match po_missing with
        | Some po -> Error (Printf.sprintf "primary output %s is undefined" po)
        | None -> Ok ())))
