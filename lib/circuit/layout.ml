type t = {
  cols : int;
  full_rows : int;
  partial : int;
  site_w : float;
  site_h : float;
}

let make ~cols ~n ~site_w ~site_h =
  if n <= 0 then invalid_arg "Layout: need a positive site count";
  if cols <= 0 then invalid_arg "Layout: need a positive column count";
  if site_w <= 0.0 || site_h <= 0.0 then
    invalid_arg "Layout: site pitch must be positive";
  { cols; full_rows = n / cols; partial = n mod cols; site_w; site_h }

let square ?(site_w = 4.0) ?(site_h = 4.0) ~n () =
  let cols = Stdlib.max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  make ~cols ~n ~site_w ~site_h

let rows t = t.full_rows + if t.partial > 0 then 1 else 0

let of_dims ~n ~width ~height =
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Layout.of_dims: dimensions must be positive";
  let site_side = sqrt (width *. height /. float_of_int n) in
  let cols = Stdlib.max 1 (int_of_float (Float.round (width /. site_side))) in
  let t0 = make ~cols ~n ~site_w:1.0 ~site_h:1.0 in
  let site_w = width /. float_of_int cols in
  let site_h = height /. float_of_int (rows t0) in
  make ~cols ~n ~site_w ~site_h

let site_count t = (t.cols * t.full_rows) + t.partial
let width t = float_of_int t.cols *. t.site_w
let height t = float_of_int (rows t) *. t.site_h
let area t = width t *. height t

let position t idx =
  if idx < 0 || idx >= site_count t then invalid_arg "Layout.position: out of range";
  let row = idx / t.cols and col = idx mod t.cols in
  ((float_of_int col +. 0.5) *. t.site_w, (float_of_int row +. 0.5) *. t.site_h)

let positions t = Array.init (site_count t) (position t)

let distance_of_offset t ~di ~dj =
  let dx = float_of_int di *. t.site_w in
  let dy = float_of_int dj *. t.site_h in
  sqrt ((dx *. dx) +. (dy *. dy))

(* Column-overlap count: #{c : 0 <= c < w_from, 0 <= c + di < w_to}. *)
let col_overlap ~w_from ~w_to ~di =
  let lo = Stdlib.max 0 (-di) in
  let hi = Stdlib.min w_from (w_to - di) in
  Stdlib.max 0 (hi - lo)

let occurrences t ~di ~dj =
  let k = t.full_rows and m = t.cols and r = t.partial in
  if abs di >= m then 0
  else begin
    (* pairs with both endpoints in full rows *)
    let full_full =
      let row_pairs = Stdlib.max 0 (k - abs dj) in
      row_pairs * col_overlap ~w_from:m ~w_to:m ~di
    in
    if r = 0 then full_full
    else begin
      (* partial row sits at row index k *)
      let full_to_partial =
        (* a in a full row, b = a + (di, dj) in the partial row:
           a_row = k - dj must satisfy 0 <= a_row < k *)
        if dj >= 1 && dj <= k then col_overlap ~w_from:m ~w_to:r ~di else 0
      in
      let partial_to_full =
        if dj <= -1 && dj >= -k then col_overlap ~w_from:r ~w_to:m ~di else 0
      in
      let partial_partial =
        if dj = 0 then col_overlap ~w_from:r ~w_to:r ~di else 0
      in
      full_full + full_to_partial + partial_to_full + partial_partial
    end
  end

let check_occurrence_total t =
  let n = site_count t in
  let total = ref 0 in
  let row_span = rows t in
  for dj = -row_span to row_span do
    for di = -t.cols to t.cols do
      total := !total + occurrences t ~di ~dj
    done
  done;
  !total = n * n
