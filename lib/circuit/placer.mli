(** Placement: assignment of netlist instances to layout sites.

    The estimators only consume gate types at coordinates, so placement
    here is a site permutation.  [Random] placement models the paper's
    randomly generated placed circuits; [Sequential] is a degenerate
    row-major order kept for deterministic tests; [Clustered] biases
    connected instances toward nearby sites for a touch of realism. *)

type strategy = Sequential | Random | Clustered

type placed = {
  netlist : Netlist.t;
  layout : Layout.t;
  site_of_instance : int array;  (** instance id -> site index *)
}

val place :
  ?strategy:strategy ->
  ?rng:Rgleak_num.Rng.t ->
  Netlist.t ->
  Layout.t ->
  placed
(** Places every instance on a distinct site.  Raises
    [Invalid_argument] when the layout has fewer sites than the netlist
    has instances.  [Random] and [Clustered] require [rng]. *)

val location : placed -> int -> float * float
(** Coordinates (µm) of an instance. *)

val gate_at : placed -> int -> int
(** Cell index of an instance (convenience passthrough). *)

val extract_characteristics : placed -> Histogram.t * int * float * float
(** Late-mode extraction: (histogram, gate count, die width, die height)
    — exactly the high-level characteristics the RG model consumes. *)
