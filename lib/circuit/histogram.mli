(** Cell-usage histograms (the "frequency of use distribution" of the
    paper's high-level characteristics).

    A histogram is a probability vector over the canonical library cell
    order; it can be {e extracted} from a netlist (late mode) or
    {e specified} from design experience (early mode). *)

type t = private float array
(** Length {!Rgleak_cells.Library.size}; entries sum to 1. *)

val of_weights : (string * float) list -> t
(** Builds a histogram from (cell name, weight) pairs; weights need not
    be normalized.  Unlisted cells get zero.  Raises [Not_found] on an
    unknown cell name, [Invalid_argument] on non-positive total, and
    {!Rgleak_num.Guard.Error} ([Invalid_input]) on an empty mix. *)

val of_counts : int array -> t
(** Normalizes integer per-cell counts (length must equal library size). *)

val of_netlist : Netlist.t -> t
(** Late-mode extraction. *)

val uniform : unit -> t
(** Equal weight on every library cell. *)

val frequency : t -> int -> float
val to_array : t -> float array
(** A fresh copy of the underlying probabilities. *)

val counts_for : t -> n:int -> int array
(** Integer cell counts for a design of [n] gates matching the histogram
    as closely as possible (largest-remainder rounding; sums to [n]). *)

val support : t -> int list
(** Cell indices with non-zero frequency. *)

val distance_l1 : t -> t -> float
(** Total-variation-style L1 distance between two histograms. *)
