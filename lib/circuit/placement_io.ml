exception Format_error of string

type t = {
  width : float;
  height : float;
  positions : (float * float) array;
}

let magic = "rgleak-placement"
let version = 1

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" magic version);
  Buffer.add_string buf (Printf.sprintf "die %.17g %.17g\n" t.width t.height);
  Array.iteri
    (fun id (x, y) ->
      Buffer.add_string buf (Printf.sprintf "%d %.17g %.17g\n" id x y))
    t.positions;
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun s -> String.trim s <> "")
  in
  match lines with
  | header :: die :: rest ->
    (match String.split_on_char ' ' header with
    | [ m; v ] when m = magic && v = string_of_int version -> ()
    | _ -> raise (Format_error "bad header"));
    let width, height =
      match String.split_on_char ' ' die with
      | [ "die"; w; h ] -> (
        match (float_of_string_opt w, float_of_string_opt h) with
        | Some w, Some h when w > 0.0 && h > 0.0 -> (w, h)
        | _ -> raise (Format_error "bad die dimensions"))
      | _ -> raise (Format_error "expected die line")
    in
    let entries =
      List.map
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ id; x; y ] -> (
            match
              (int_of_string_opt id, float_of_string_opt x, float_of_string_opt y)
            with
            | Some id, Some x, Some y -> (id, x, y)
            | _ -> raise (Format_error ("bad position line: " ^ line)))
          | _ -> raise (Format_error ("bad position line: " ^ line)))
        rest
    in
    let n = List.length entries in
    let positions = Array.make n (0.0, 0.0) in
    let seen = Array.make n false in
    List.iter
      (fun (id, x, y) ->
        if id < 0 || id >= n then raise (Format_error "instance id out of range");
        if seen.(id) then raise (Format_error "duplicate instance id");
        seen.(id) <- true;
        positions.(id) <- (x, y))
      entries;
    { width; height; positions }
  | _ -> raise (Format_error "truncated placement file")

let save ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load ~path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string text

let of_placed placed =
  let n = Netlist.size placed.Placer.netlist in
  {
    width = Layout.width placed.Placer.layout;
    height = Layout.height placed.Placer.layout;
    positions = Array.init n (Placer.location placed);
  }

let apply netlist t =
  let n = Netlist.size netlist in
  if Array.length t.positions <> n then
    invalid_arg "Placement_io.apply: instance count mismatch";
  let layout = Layout.of_dims ~n ~width:t.width ~height:t.height in
  if Layout.site_count layout < n then
    invalid_arg "Placement_io.apply: die too small for the netlist";
  let cols = layout.Layout.cols in
  let rows = Layout.rows layout in
  let taken = Array.make (Layout.site_count layout) false in
  let site_of = Array.make n (-1) in
  let site_w = layout.Layout.site_w and site_h = layout.Layout.site_h in
  Array.iteri
    (fun id (x, y) ->
      let ix0 =
        Stdlib.max 0 (Stdlib.min (cols - 1) (int_of_float (x /. site_w)))
      in
      let iy0 =
        Stdlib.max 0 (Stdlib.min (rows - 1) (int_of_float (y /. site_h)))
      in
      (* spiral outward over ring offsets until a free site is found *)
      let best = ref (-1) in
      let radius = ref 0 in
      while !best < 0 do
        let r = !radius in
        (* scan the ring at Chebyshev distance r, keeping the nearest
           free site by Euclidean metric *)
        let best_d = ref infinity in
        for dy = -r to r do
          for dx = -r to r do
            if Stdlib.max (abs dx) (abs dy) = r then begin
              let ix = ix0 + dx and iy = iy0 + dy in
              if ix >= 0 && ix < cols && iy >= 0 && iy < rows then begin
                let site = (iy * cols) + ix in
                if site < Layout.site_count layout && not taken.(site) then begin
                  let sx, sy = Layout.position layout site in
                  let d = ((sx -. x) ** 2.0) +. ((sy -. y) ** 2.0) in
                  if d < !best_d then begin
                    best_d := d;
                    best := site
                  end
                end
              end
            end
          done
        done;
        incr radius;
        if !radius > cols + rows then
          invalid_arg "Placement_io.apply: no free site found"
      done;
      taken.(!best) <- true;
      site_of.(id) <- !best)
    t.positions;
  { Placer.netlist; layout; site_of_instance = site_of }

let max_snap_distance placed t =
  let n = Netlist.size placed.Placer.netlist in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let sx, sy = Placer.location placed i in
    let x, y = t.positions.(i) in
    worst := Float.max !worst (sqrt (((sx -. x) ** 2.0) +. ((sy -. y) ** 2.0)))
  done;
  !worst
