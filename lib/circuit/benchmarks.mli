(** ISCAS85-like benchmark circuits.

    The original ISCAS85 netlists (and the paper's placements of them)
    are not shipped here; instead each benchmark is synthesized with its
    published gate count and a gate-type mix reflecting the circuit's
    published structure (e.g. c499/c1355 are XOR-heavy error-correction
    circuits, c6288 is a NOR/AND multiplier array).  The estimators only
    consume gate types at die coordinates, so these stand-ins exercise
    exactly the same code path as the real netlists; see DESIGN.md. *)

type spec = {
  name : string;
  gates : int;  (** published ISCAS85 gate count *)
  description : string;
  mix : (string * float) list;  (** cell-usage weights *)
}

val specs : spec array
(** All ten ISCAS85 circuits (c432 … c7552). *)

val table1_names : string list
(** The nine circuits of Table 1, in the paper's column order. *)

val find : string -> spec

val netlist : ?seed:int -> spec -> Netlist.t
(** Deterministic synthesis of the benchmark (seed defaults to a hash of
    the name). *)

val placed : ?seed:int -> ?utilization:float -> spec -> Placer.placed
(** Synthesized, then placed on a die sized from total cell area at the
    given utilization (default 0.7). *)
