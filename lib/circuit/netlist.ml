open Rgleak_cells

type instance = { id : int; cell_index : int; fanin : int array }

type t = {
  name : string;
  num_primary_inputs : int;
  instances : instance array;
}

let create ~name ~num_primary_inputs instances =
  if num_primary_inputs < 0 then
    invalid_arg "Netlist.create: negative primary input count";
  Array.iteri
    (fun i inst ->
      if inst.id <> i then invalid_arg "Netlist.create: ids must be dense and ordered";
      if inst.cell_index < 0 || inst.cell_index >= Library.size then
        invalid_arg "Netlist.create: cell index out of range";
      Array.iter
        (fun f ->
          if f >= i || f < -1 then
            invalid_arg "Netlist.create: fanin must reference earlier instances")
        inst.fanin)
    instances;
  { name; num_primary_inputs; instances }

let size t = Array.length t.instances

let cell_counts t =
  let counts = Array.make Library.size 0 in
  Array.iter
    (fun inst -> counts.(inst.cell_index) <- counts.(inst.cell_index) + 1)
    t.instances;
  counts

let total_area t =
  Array.fold_left
    (fun acc inst -> acc +. Library.cells.(inst.cell_index).Cell.area)
    0.0 t.instances

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d gates, %d primary inputs, %.1f um^2" t.name
    (size t) t.num_primary_inputs (total_area t)
