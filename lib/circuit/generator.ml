open Rgleak_num
open Rgleak_cells

(* Inverse-CDF draw from a histogram. *)
let draw_type cdf rng =
  let u = Rng.uniform rng in
  let rec go i = if i >= Array.length cdf - 1 || u < cdf.(i) then i else go (i + 1) in
  go 0

let random_netlist ?(name = "random") ?(sampling = `Exact) ~histogram ~n ~rng () =
  if n <= 0 then invalid_arg "Generator.random_netlist: need a positive size";
  let types =
    match sampling with
    | `Exact ->
      let counts = Histogram.counts_for histogram ~n in
      let types = Array.make n 0 in
      let pos = ref 0 in
      Array.iteri
        (fun cell_index count ->
          for _ = 1 to count do
            types.(!pos) <- cell_index;
            incr pos
          done)
        counts;
      assert (!pos = n);
      Rng.shuffle rng types;
      types
    | `Multinomial ->
      let probs = Histogram.to_array histogram in
      let cdf = Array.make (Array.length probs) 0.0 in
      let acc = ref 0.0 in
      Array.iteri
        (fun i p ->
          acc := !acc +. p;
          cdf.(i) <- !acc)
        probs;
      Array.init n (fun _ -> draw_type cdf rng)
  in
  let num_primary_inputs = Stdlib.max 2 (n / 10) in
  let instances =
    Array.mapi
      (fun i cell_index ->
        let cell = Library.cells.(cell_index) in
        let fanin_count = Stdlib.min cell.Cell.num_inputs 4 in
        let fanin =
          Array.init fanin_count (fun _ ->
              (* Bias toward recent drivers (locality), fall back to a
                 primary input for early gates. *)
              if i = 0 || Rng.uniform rng < 0.15 then -1
              else begin
                let span = Stdlib.min i 64 in
                i - 1 - Rng.int rng span
              end)
        in
        { Netlist.id = i; cell_index; fanin })
      types
  in
  Netlist.create ~name ~num_primary_inputs instances

let random_placed ?name ?sampling ?site_w ?site_h ~histogram ~n ~rng () =
  let netlist = random_netlist ?name ?sampling ~histogram ~n ~rng () in
  let layout = Layout.square ?site_w ?site_h ~n () in
  Placer.place ~strategy:Random ~rng netlist layout

let fig6_sizes = [| 100; 225; 400; 900; 1600; 2500; 4900; 8100; 11236 |]
