open Rgleak_cells

type report = { native : int; decomposed : int; added : int }

(* Library cell choices per logic family and fan-in, with an optional
   higher-drive variant. *)
let pick ~drive x2 x1 =
  match drive with
  | `X2 -> (try Library.index_of x2 with Not_found -> Library.index_of x1)
  | `X1 -> Library.index_of x1

let cell_for ~drive (gt : Bench_format.gate_type) ~fan_in =
  match (gt, fan_in) with
  | Bench_format.Not, _ -> Some (pick ~drive "INV_X2" "INV_X1")
  | Bench_format.Buff, _ -> Some (pick ~drive "BUF_X2" "BUF_X1")
  | Bench_format.Dff, _ -> Some (pick ~drive "DFF_X2" "DFF_X1")
  | Bench_format.And, 2 -> Some (pick ~drive "AND2_X2" "AND2_X1")
  | Bench_format.And, 3 -> Some (Library.index_of "AND3_X1")
  | Bench_format.And, 4 -> Some (Library.index_of "AND4_X1")
  | Bench_format.Nand, 2 -> Some (pick ~drive "NAND2_X2" "NAND2_X1")
  | Bench_format.Nand, 3 -> Some (pick ~drive "NAND3_X2" "NAND3_X1")
  | Bench_format.Nand, 4 -> Some (Library.index_of "NAND4_X1")
  | Bench_format.Or, 2 -> Some (pick ~drive "OR2_X2" "OR2_X1")
  | Bench_format.Or, 3 -> Some (Library.index_of "OR3_X1")
  | Bench_format.Or, 4 -> Some (Library.index_of "OR4_X1")
  | Bench_format.Nor, 2 -> Some (pick ~drive "NOR2_X2" "NOR2_X1")
  | Bench_format.Nor, 3 -> Some (pick ~drive "NOR3_X2" "NOR3_X1")
  | Bench_format.Nor, 4 -> Some (Library.index_of "NOR4_X1")
  | Bench_format.Xor, 2 -> Some (pick ~drive "XOR2_X2" "XOR2_X1")
  | Bench_format.Xnor, 2 -> Some (pick ~drive "XNOR2_X2" "XNOR2_X1")
  | ( ( Bench_format.And | Bench_format.Nand | Bench_format.Or
      | Bench_format.Nor | Bench_format.Xor | Bench_format.Xnor ),
      _ ) ->
    None (* needs decomposition *)

(* Emission context: an append-only instance list with net resolution.
   Sequential loops through DFFs are cut: a reference to a net that is
   not yet emitted resolves to a primary input (-1). *)
type ctx = {
  mutable rev_instances : Netlist.instance list;
  mutable next_id : int;
  net_ids : (string, int) Hashtbl.t;
}

let resolve ctx net =
  match Hashtbl.find_opt ctx.net_ids net with Some id -> id | None -> -1

let emit ctx ~cell_index ~fanin =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  ctx.rev_instances <-
    { Netlist.id; cell_index; fanin = Array.of_list fanin } :: ctx.rev_instances;
  id

(* Balanced reduction of [ids] (already-emitted driver ids) with AND/OR
   gates of fan-in up to 4; returns the final driver id. *)
let rec reduce_tree ctx ~drive ~family ids =
  match ids with
  | [] -> invalid_arg "Techmap: empty reduction"
  | [ x ] -> x
  | ids when List.length ids <= 4 ->
    let cell =
      match cell_for ~drive family ~fan_in:(List.length ids) with
      | Some c -> c
      | None -> assert false
    in
    emit ctx ~cell_index:cell ~fanin:ids
  | ids ->
    (* group into chunks of 4 and recurse *)
    let rec chunk acc current count = function
      | [] ->
        let acc = if current = [] then acc else List.rev current :: acc in
        List.rev acc
      | x :: rest ->
        if count = 4 then chunk (List.rev current :: acc) [ x ] 1 rest
        else chunk acc (x :: current) (count + 1) rest
    in
    let groups = chunk [] [] 0 ids in
    let reduced = List.map (fun g -> reduce_tree ctx ~drive ~family g) groups in
    reduce_tree ctx ~drive ~family reduced

(* XOR/XNOR chains: parity is associative; complement only at the end. *)
let xor_chain ctx ~drive ~complement ids =
  let xor2 = match cell_for ~drive Bench_format.Xor ~fan_in:2 with
    | Some c -> c | None -> assert false
  in
  let xnor2 = match cell_for ~drive Bench_format.Xnor ~fan_in:2 with
    | Some c -> c | None -> assert false
  in
  let rec go = function
    | [] -> invalid_arg "Techmap: empty xor chain"
    | [ x ] -> x
    | [ a; b ] ->
      emit ctx ~cell_index:(if complement then xnor2 else xor2) ~fanin:[ a; b ]
    | a :: b :: rest ->
      let ab = emit ctx ~cell_index:xor2 ~fanin:[ a; b ] in
      go (ab :: rest)
  in
  go ids

let map ?(drive = `X1) (bench : Bench_format.t) =
  (match Bench_format.validate bench with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Techmap.map: invalid circuit: " ^ msg));
  let ctx = { rev_instances = []; next_id = 0; net_ids = Hashtbl.create 64 } in
  let native = ref 0 and decomposed = ref 0 and added = ref 0 in
  (* Topological order over combinational edges; DFF outputs are
     sources (their input edge is a sequential cut). *)
  let gates = Array.of_list bench.Bench_format.gates in
  let gate_of_net = Hashtbl.create 64 in
  Array.iteri
    (fun i g -> Hashtbl.replace gate_of_net g.Bench_format.output i)
    gates;
  let emitted = Array.make (Array.length gates) false in
  let on_stack = Array.make (Array.length gates) false in
  let rec visit i =
    if not emitted.(i) then begin
      if on_stack.(i) then
        invalid_arg "Techmap.map: combinational cycle in circuit";
      on_stack.(i) <- true;
      let g = gates.(i) in
      (* DFF inputs are sequential: do not recurse through them *)
      (if g.Bench_format.gate_type <> Bench_format.Dff then
         List.iter
           (fun net ->
             match Hashtbl.find_opt gate_of_net net with
             | Some j -> visit j
             | None -> ())
           g.Bench_format.inputs);
      on_stack.(i) <- false;
      if not emitted.(i) then begin
        emitted.(i) <- true;
        let fan_in = List.length g.Bench_format.inputs in
        let driver_ids = List.map (resolve ctx) g.Bench_format.inputs in
        let out_id =
          match cell_for ~drive g.Bench_format.gate_type ~fan_in with
          | Some cell ->
            incr native;
            emit ctx ~cell_index:cell ~fanin:driver_ids
          | None ->
            incr decomposed;
            let before = ctx.next_id in
            let out =
              match g.Bench_format.gate_type with
              | Bench_format.And ->
                reduce_tree ctx ~drive ~family:Bench_format.And driver_ids
              | Bench_format.Or ->
                reduce_tree ctx ~drive ~family:Bench_format.Or driver_ids
              | Bench_format.Nand ->
                (* reduce all but the last group with ANDs, finish NAND *)
                let rec split_last k acc = function
                  | [] -> (List.rev acc, [])
                  | rest when List.length rest <= k -> (List.rev acc, rest)
                  | x :: rest -> split_last k (x :: acc) rest
                in
                let head, tail = split_last 3 [] driver_ids in
                let head_ids =
                  (* reduce the head into at most 1 signal *)
                  if head = [] then []
                  else [ reduce_tree ctx ~drive ~family:Bench_format.And head ]
                in
                let final = head_ids @ tail in
                let cell =
                  match
                    cell_for ~drive Bench_format.Nand ~fan_in:(List.length final)
                  with
                  | Some c -> c
                  | None -> assert false
                in
                emit ctx ~cell_index:cell ~fanin:final
              | Bench_format.Nor ->
                let rec split_last k acc = function
                  | [] -> (List.rev acc, [])
                  | rest when List.length rest <= k -> (List.rev acc, rest)
                  | x :: rest -> split_last k (x :: acc) rest
                in
                let head, tail = split_last 3 [] driver_ids in
                let head_ids =
                  if head = [] then []
                  else [ reduce_tree ctx ~drive ~family:Bench_format.Or head ]
                in
                let final = head_ids @ tail in
                let cell =
                  match
                    cell_for ~drive Bench_format.Nor ~fan_in:(List.length final)
                  with
                  | Some c -> c
                  | None -> assert false
                in
                emit ctx ~cell_index:cell ~fanin:final
              | Bench_format.Xor -> xor_chain ctx ~drive ~complement:false driver_ids
              | Bench_format.Xnor -> xor_chain ctx ~drive ~complement:true driver_ids
              | Bench_format.Not | Bench_format.Buff | Bench_format.Dff ->
                assert false
            in
            added := !added + (ctx.next_id - before - 1);
            out
        in
        Hashtbl.replace ctx.net_ids g.Bench_format.output out_id
      end
    end
  in
  for i = 0 to Array.length gates - 1 do
    visit i
  done;
  let instances = Array.of_list (List.rev ctx.rev_instances) in
  let netlist =
    Netlist.create ~name:bench.Bench_format.name
      ~num_primary_inputs:(List.length bench.Bench_format.primary_inputs)
      instances
  in
  (netlist, { native = !native; decomposed = !decomposed; added = !added })

(* ---------- export ---------- *)

let bench_family_of_cell name =
  let starts prefix =
    String.length name >= String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  in
  if starts "INV" then Some (Bench_format.Not, 1)
  else if starts "BUF" || starts "CLKBUF" || starts "TBUF" then
    Some (Bench_format.Buff, 1)
  else if starts "NAND2B" then Some (Bench_format.Nand, 2)
  else if starts "NOR2B" then Some (Bench_format.Nor, 2)
  else if starts "NAND2" then Some (Bench_format.Nand, 2)
  else if starts "NAND3" then Some (Bench_format.Nand, 3)
  else if starts "NAND4" then Some (Bench_format.Nand, 4)
  else if starts "NOR2" then Some (Bench_format.Nor, 2)
  else if starts "NOR3" then Some (Bench_format.Nor, 3)
  else if starts "NOR4" then Some (Bench_format.Nor, 4)
  else if starts "AND2" then Some (Bench_format.And, 2)
  else if starts "AND3" then Some (Bench_format.And, 3)
  else if starts "AND4" then Some (Bench_format.And, 4)
  else if starts "OR2" then Some (Bench_format.Or, 2)
  else if starts "OR3" then Some (Bench_format.Or, 3)
  else if starts "OR4" then Some (Bench_format.Or, 4)
  else if starts "XOR2" then Some (Bench_format.Xor, 2)
  else if starts "XNOR2" then Some (Bench_format.Xnor, 2)
  else if starts "AOI21" then Some (Bench_format.Nor, 3)
  else if starts "AOI22" then Some (Bench_format.Nor, 4)
  else if starts "AOI211" then Some (Bench_format.Nor, 4)
  else if starts "OAI21" then Some (Bench_format.Nand, 3)
  else if starts "OAI22" then Some (Bench_format.Nand, 4)
  else if starts "OAI211" then Some (Bench_format.Nand, 4)
  else if starts "MUX2" then Some (Bench_format.And, 3)
  else if starts "MUX4" then Some (Bench_format.And, 6)
  else if starts "HA" then Some (Bench_format.Xor, 2)
  else if starts "FA" then Some (Bench_format.Xor, 3)
  else if starts "DFF" || starts "SDFF" || starts "DLATCH" then
    Some (Bench_format.Dff, 1)
  else None

let family_of_cell cell_index =
  bench_family_of_cell Library.cells.(cell_index).Cell.name

let netlist_to_bench (netlist : Netlist.t) =
  let n = Netlist.size netlist in
  let num_pi = Stdlib.max 1 netlist.Netlist.num_primary_inputs in
  let pi_name k = Printf.sprintf "pi%d" k in
  let net_name id = Printf.sprintf "n%d" id in
  let gates =
    Array.to_list
      (Array.map
         (fun inst ->
           let cell = Library.cells.(inst.Netlist.cell_index) in
           let family =
             match bench_family_of_cell cell.Cell.name with
             | Some f -> f
             | None ->
               invalid_arg
                 (Printf.sprintf
                    "Techmap.netlist_to_bench: cell %s has no .bench \
                     projection"
                    cell.Cell.name)
           in
           let gate_type, arity = family in
           let fanin = Array.to_list inst.Netlist.fanin in
           let resolved =
             List.mapi
               (fun port driver ->
                 if driver >= 0 then net_name driver
                 else pi_name ((inst.Netlist.id + port) mod num_pi))
               fanin
           in
           (* pad or trim to the family arity *)
           let rec take k = function
             | [] -> []
             | _ when k = 0 -> []
             | x :: rest -> x :: take (k - 1) rest
           in
           let padded =
             let have = List.length resolved in
             if have >= arity then take arity resolved
             else
               resolved
               @ List.init (arity - have) (fun k ->
                     pi_name ((inst.Netlist.id + have + k) mod num_pi))
           in
           { Bench_format.output = net_name inst.Netlist.id;
             gate_type;
             inputs = padded })
         netlist.Netlist.instances)
  in
  (* primary outputs: nets that drive nothing *)
  let driven = Array.make n false in
  Array.iter
    (fun inst ->
      Array.iter (fun f -> if f >= 0 then driven.(f) <- true) inst.Netlist.fanin)
    netlist.Netlist.instances;
  let primary_outputs =
    List.filter_map
      (fun id -> if driven.(id) then None else Some (net_name id))
      (List.init n Fun.id)
  in
  {
    Bench_format.name = netlist.Netlist.name;
    primary_inputs = List.init num_pi pi_name;
    primary_outputs;
    gates;
  }
