open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

type result = {
  mean : float;
  std : float;
  distribution : Distribution.t;
  groups : int;
  correlation_rms : float;
}

let analyze ?(levels = 5) ?p ~chars ~corr placed =
  let netlist = placed.Placer.netlist in
  let n = Netlist.size netlist in
  if n = 0 then invalid_arg "Agarwal_roy.analyze: empty netlist";
  let histogram = Histogram.of_netlist netlist in
  let p =
    match p with
    | Some p -> p
    | None ->
      Signal_prob.maximizing_p chars ~weights:(Histogram.to_array histogram)
  in
  let layout = placed.Placer.layout in
  let width = Layout.width layout and height = Layout.height layout in
  let model = Quadtree_model.build ~levels ~corr ~width ~height () in
  let param = chars.(0).Characterize.param in
  let mu_l = param.Rgleak_process.Process_param.nominal in
  let sigma_l2 = model.Quadtree_model.sigma_l *. model.Quadtree_model.sigma_l in
  let cell_state_params =
    Array.map
      (fun (ch : Characterize.cell_char) ->
        Array.map
          (fun (sc : Characterize.state_char) ->
            Mgf.centered sc.Characterize.fit ~mu:mu_l)
          ch.Characterize.states)
      chars
  in
  (* Group by (finest-level cell, library cell); gates in the same
     finest cell share the whole quadtree path, so their deviations are
     identical in this model.  Location key = finest cell index; its
     center is representative for coarser-level lookups. *)
  let finest = levels - 1 in
  let k = 1 lsl finest in
  let center cell =
    let ix = cell mod k and iy = cell / k in
    ( (float_of_int ix +. 0.5) *. (width /. float_of_int k),
      (float_of_int iy +. 0.5) *. (height /. float_of_int k) )
  in
  let cov loc1 loc2 =
    let x1, y1 = center loc1 and x2, y2 = center loc2 in
    sigma_l2 *. Quadtree_model.correlation model ~x1 ~y1 ~x2 ~y2
  in
  let counts = Hashtbl.create 256 in
  Array.iteri
    (fun i inst ->
      let x, y = Placer.location placed i in
      let cell = Quadtree_model.cell_of model ~level:finest ~x ~y in
      let key = (cell, inst.Netlist.cell_index) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    netlist.Netlist.instances;
  let groups = ref [] in
  Hashtbl.iter
    (fun (loc, cell_index) count ->
      let ch = chars.(cell_index) in
      let num_inputs = ch.Characterize.cell.Cell.num_inputs in
      let probs = Signal_prob.state_probabilities ~num_inputs ~p in
      let var_loc = cov loc loc in
      Array.iteri
        (fun state prob ->
          if prob > 0.0 then begin
            let k0, beta = cell_state_params.(cell_index).(state) in
            groups :=
              {
                Lognormal_sum.weight = float_of_int count *. prob;
                loc;
                k0;
                beta;
                s2 = beta *. beta *. var_loc;
              }
              :: !groups
          end)
        probs)
    counts;
  let correction =
    Lognormal_sum.diagonal_correction ~chars ~p ~mu_l
      ~var_of_loc:(fun loc -> cov loc loc)
      ~counts:
        (Hashtbl.fold (fun (loc, c) count acc -> (loc, c, count) :: acc) counts [])
  in
  let mean, variance =
    Lognormal_sum.sum_moments ~groups:(Array.of_list !groups) ~cov ~correction
  in
  let std = sqrt variance in
  {
    mean;
    std;
    distribution = Distribution.of_moments ~mean ~std ();
    groups = Hashtbl.length counts;
    correlation_rms =
      Quadtree_model.correlation_error model corr ~samples:2000 ~seed:97;
  }
