(** Quadtree hierarchical correlation model — the variable model of the
    Agarwal–Kang–Roy baseline (paper reference [4], ICCAD 2005).

    The die is covered by a hierarchy of grids: level 0 is one cell
    covering the whole die, level ℓ has 4^ℓ cells.  Every cell at every
    level carries an independent zero-mean Gaussian; a location's
    parameter deviation is the sum of the variables of the cells
    covering it.  Two locations are correlated exactly in proportion to
    the variance of the levels at which they share cells, so the
    correlation is piecewise-constant in space — coarser but far cheaper
    than an explicit covariance matrix.

    Level variances are calibrated against a target ρ(d): the model's
    correlation at the characteristic distance of each level is matched
    to the target in a least-squares sense by a simple pass from coarse
    to fine. *)

type t = private {
  levels : int;  (** grid levels (level 0 = whole die) *)
  width : float;
  height : float;
  level_variance : float array;  (** variance carried by each level *)
  sigma_l : float;  (** total σ the model reproduces *)
}

val build :
  ?levels:int ->
  corr:Rgleak_process.Corr_model.t ->
  width:float ->
  height:float ->
  unit ->
  t
(** Calibrates level variances against [corr] (default 5 levels).  The
    variances are non-negative and sum to the parameter's total
    variance. *)

val cell_of : t -> level:int -> x:float -> y:float -> int
(** Index of the level-[level] cell covering a coordinate. *)

val correlation : t -> x1:float -> y1:float -> x2:float -> y2:float -> float
(** Model correlation between two locations: the variance fraction of
    the levels whose covering cells coincide. *)

val correlation_error :
  t -> Rgleak_process.Corr_model.t -> samples:int -> seed:int -> float
(** RMS difference between the quadtree correlation and the target ρ(d)
    over random location pairs — the model's intrinsic coarseness. *)
