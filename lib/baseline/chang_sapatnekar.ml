open Rgleak_cells
open Rgleak_circuit
open Rgleak_core

type result = {
  mean : float;
  std : float;
  distribution : Distribution.t;
  groups : int;
  components : int;
}

let analyze ?(grid = 8) ?(variance_fraction = 0.999) ?p ~chars ~corr placed =
  let netlist = placed.Placer.netlist in
  let n = Netlist.size netlist in
  if n = 0 then invalid_arg "Chang_sapatnekar.analyze: empty netlist";
  let histogram = Histogram.of_netlist netlist in
  let p =
    match p with
    | Some p -> p
    | None ->
      Signal_prob.maximizing_p chars ~weights:(Histogram.to_array histogram)
  in
  let layout = placed.Placer.layout in
  let model =
    Grid_model.build ~grid ~variance_fraction ~corr
      ~width:(Layout.width layout) ~height:(Layout.height layout) ()
  in
  let param = chars.(0).Characterize.param in
  let mu_l = param.Rgleak_process.Process_param.nominal in
  (* Per (cell, state): first-order lognormal parameters from the fitted
     triplet, linearized at the nominal length (the C-S approximation:
     the quadratic curvature of ln X in L is dropped). *)
  let cell_state_params =
    Array.map
      (fun (ch : Characterize.cell_char) ->
        Array.map
          (fun (sc : Characterize.state_char) ->
            Mgf.centered sc.Characterize.fit ~mu:mu_l)
          ch.Characterize.states)
      chars
  in
  (* Group gates by (region, cell); expand states inside. *)
  let counts = Hashtbl.create 256 in
  Array.iteri
    (fun i inst ->
      let x, y = Placer.location placed i in
      let region = Grid_model.region_of_position model ~x ~y in
      let key = (region, inst.Netlist.cell_index) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    netlist.Netlist.instances;
  let groups = ref [] in
  Hashtbl.iter
    (fun (region, cell_index) count ->
      let ch = chars.(cell_index) in
      let num_inputs = ch.Characterize.cell.Cell.num_inputs in
      let probs = Signal_prob.state_probabilities ~num_inputs ~p in
      let var_r = Grid_model.covariance model region region in
      Array.iteri
        (fun state prob ->
          if prob > 0.0 then begin
            let k0, beta = cell_state_params.(cell_index).(state) in
            groups :=
              {
                Lognormal_sum.weight = float_of_int count *. prob;
                loc = region;
                k0;
                beta;
                s2 = beta *. beta *. var_r;
              }
              :: !groups
          end)
        probs)
    counts;
  let correction =
    Lognormal_sum.diagonal_correction ~chars ~p ~mu_l
      ~var_of_loc:(fun r -> Grid_model.covariance model r r)
      ~counts:
        (Hashtbl.fold (fun (r, c) count acc -> (r, c, count) :: acc) counts [])
  in
  let mean, variance =
    Lognormal_sum.sum_moments
      ~groups:(Array.of_list !groups)
      ~cov:(Grid_model.covariance model)
      ~correction
  in
  let std = sqrt variance in
  {
    mean;
    std;
    distribution = Distribution.of_moments ~mean ~std ();
    groups = Hashtbl.length counts;
    components = model.Grid_model.num_components;
  }
