open Rgleak_cells

type group = {
  weight : float;
  loc : int;
  k0 : float;
  beta : float;
  s2 : float;
}

let sum_moments ~groups ~cov ~correction =
  let mean =
    Array.fold_left
      (fun acc g -> acc +. (g.weight *. exp (g.k0 +. (g.s2 /. 2.0))))
      0.0 groups
  in
  let second = ref correction in
  let ng = Array.length groups in
  for a = 0 to ng - 1 do
    let ga = groups.(a) in
    for b = 0 to ng - 1 do
      let gb = groups.(b) in
      let c = ga.beta *. gb.beta *. cov ga.loc gb.loc in
      second :=
        !second
        +. (ga.weight *. gb.weight
           *. exp (ga.k0 +. gb.k0 +. (0.5 *. (ga.s2 +. gb.s2)) +. c))
    done
  done;
  (mean, Float.max 0.0 (!second -. (mean *. mean)))

let diagonal_correction ~chars ~p ~mu_l ~var_of_loc ~counts =
  List.fold_left
    (fun acc (loc, cell_index, count) ->
      let ch = chars.(cell_index) in
      let num_inputs = ch.Characterize.cell.Cell.num_inputs in
      let probs = Signal_prob.state_probabilities ~num_inputs ~p in
      let var_r = var_of_loc loc in
      let params =
        Array.map
          (fun (sc : Characterize.state_char) ->
            Mgf.centered sc.Characterize.fit ~mu:mu_l)
          ch.Characterize.states
      in
      let wrong = ref 0.0 and right = ref 0.0 in
      Array.iteri
        (fun s ps ->
          if ps > 0.0 then begin
            let k0s, bs = params.(s) in
            right :=
              !right +. (ps *. exp ((2.0 *. k0s) +. (2.0 *. bs *. bs *. var_r)));
            Array.iteri
              (fun t pt ->
                if pt > 0.0 then begin
                  let k0t, bt = params.(t) in
                  wrong :=
                    !wrong
                    +. (ps *. pt
                       *. exp
                            (k0s +. k0t
                            +. (0.5 *. var_r *. ((bs *. bs) +. (bt *. bt)))
                            +. (bs *. bt *. var_r)))
                end)
              probs
          end)
        probs;
      acc +. (float_of_int count *. (!right -. !wrong)))
    0.0 counts
