(** Gridded process-variation model with principal components — the
    variable model of the Chang–Sapatnekar DAC'05 baseline ([3] in the
    paper).

    The die is divided into a g×g grid of regions; the within-die
    channel-length deviation is constant inside a region and the region
    variables are jointly normal with covariance from the spatial
    correlation function evaluated between region centers (plus the
    shared D2D component).  A principal-component decomposition turns
    the correlated region variables into independent standard normals,
    optionally truncated to the components that carry 99.9 % of the
    variance. *)

type t = private {
  grid : int;  (** regions per axis *)
  width : float;
  height : float;
  num_components : int;
  weights : Rgleak_num.Matrix.t;
      (** region (row) × component (col): δ_r = Σ_k weights(r,k)·z_k
          with z independent standard normals *)
  sigma_l : float;  (** total channel-length σ the model reproduces *)
}

val build :
  ?grid:int ->
  ?variance_fraction:float ->
  corr:Rgleak_process.Corr_model.t ->
  width:float ->
  height:float ->
  unit ->
  t
(** [grid] regions per axis (default 8); [variance_fraction] is the PCA
    truncation level (default 0.999). *)

val num_regions : t -> int

val region_of_position : t -> x:float -> y:float -> int
(** Region index of a die coordinate (clamped at the boundary). *)

val covariance : t -> int -> int -> float
(** Covariance of the channel-length deviations of two regions, as
    represented by the (possibly truncated) components. *)

val sample : t -> Rgleak_num.Rng.t -> float array
(** One die's region deviations (for validation). *)
