open Rgleak_num
open Rgleak_process

type t = {
  levels : int;
  width : float;
  height : float;
  level_variance : float array;
  sigma_l : float;
}

let build ?(levels = 5) ~corr ~width ~height () =
  if levels < 1 then invalid_arg "Quadtree_model.build: need at least one level";
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Quadtree_model.build: dimensions must be positive";
  let param = Corr_model.param corr in
  let sigma_l = Process_param.sigma_total param in
  let total = sigma_l *. sigma_l in
  (* Coarse-to-fine calibration: the correlation of pairs that share
     levels 0..l (but not l+1) is matched to the target at the
     representative separation of level l+1 cells. *)
  let side = Float.min width height in
  let variances = Array.make levels 0.0 in
  let assigned = ref 0.0 in
  for l = 0 to levels - 2 do
    let rep_distance = side /. (2.0 ** float_of_int (l + 1)) in
    let target = total *. Corr_model.total corr rep_distance in
    let v = Float.max 0.0 (target -. !assigned) in
    variances.(l) <- v;
    assigned := !assigned +. v
  done;
  variances.(levels - 1) <- Float.max 0.0 (total -. !assigned);
  { levels; width; height; level_variance = variances; sigma_l }

let cell_of t ~level ~x ~y =
  if level < 0 || level >= t.levels then
    invalid_arg "Quadtree_model.cell_of: level out of range";
  let k = 1 lsl level in
  let clamp v = Stdlib.max 0 (Stdlib.min (k - 1) v) in
  let ix = clamp (int_of_float (x /. (t.width /. float_of_int k))) in
  let iy = clamp (int_of_float (y /. (t.height /. float_of_int k))) in
  (iy * k) + ix

let correlation t ~x1 ~y1 ~x2 ~y2 =
  let total = t.sigma_l *. t.sigma_l in
  if total = 0.0 then 0.0
  else begin
    let shared = ref 0.0 in
    for l = 0 to t.levels - 1 do
      if cell_of t ~level:l ~x:x1 ~y:y1 = cell_of t ~level:l ~x:x2 ~y:y2 then
        shared := !shared +. t.level_variance.(l)
    done;
    !shared /. total
  end

let correlation_error t corr ~samples ~seed =
  let rng = Rng.create ~seed () in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let x1 = Rng.float rng t.width and y1 = Rng.float rng t.height in
    let x2 = Rng.float rng t.width and y2 = Rng.float rng t.height in
    let d = sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0)) in
    let target = Corr_model.total corr d in
    let model = correlation t ~x1 ~y1 ~x2 ~y2 in
    acc := !acc +. ((model -. target) ** 2.0)
  done;
  sqrt (!acc /. float_of_int samples)
