(** The Agarwal–Kang–Roy-style quadtree baseline (paper reference [4],
    ICCAD 2005: "Accurate estimation and modeling of total chip leakage
    considering inter- & intra-die process variations").

    Same late-mode lognormal-sum structure as the grid/PCA baseline, but
    with the hierarchical quadtree correlation model: location
    covariances are the shared-level variances, so no covariance matrix
    or eigendecomposition is needed — the trade is a piecewise-constant
    (blocky) approximation of the true ρ(d).  Compared in experiment
    B1 alongside {!Chang_sapatnekar}. *)

type result = {
  mean : float;
  std : float;
  distribution : Rgleak_core.Distribution.t;
  groups : int;  (** (finest cell, cell type) groups formed *)
  correlation_rms : float;
      (** RMS error of the quadtree correlation vs the target ρ(d),
          sampled over the die *)
}

val analyze :
  ?levels:int ->
  ?p:float ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** Late-mode analysis with a [levels]-deep quadtree (default 5). *)
