(** Wilkinson-style moments of a sum of correlated lognormals — the
    summation engine shared by the grid/PCA and quadtree baselines.

    Gates are grouped by (location key, cell, state); each group is a
    lognormal [exp(k0 + beta·δ_loc)] with a fractional weight (gate
    count × state probability).  The pair sum treats all weights as
    independent draws, which double-counts a single gate's state mixture
    as if two gates; callers supply the per-gate diagonal correction
    computed by {!diagonal_correction}. *)

type group = {
  weight : float;
  loc : int;  (** opaque location key; covariance comes from [cov] *)
  k0 : float;
  beta : float;
  s2 : float;  (** Var(ln X) = beta²·Var(δ) *)
}

val sum_moments :
  groups:group array ->
  cov:(int -> int -> float) ->
  correction:float ->
  float * float
(** (mean, variance) of the sum.  [cov loc1 loc2] is the covariance of
    the location deviations; [correction] is added to the second
    moment. *)

val diagonal_correction :
  chars:Rgleak_cells.Characterize.cell_char array ->
  p:float ->
  mu_l:float ->
  var_of_loc:(int -> float) ->
  counts:(int * int * int) list ->
  float
(** The same-gate correction: for each (loc, cell_index, count) entry,
    replaces the erroneous independent-states pair term with the true
    per-gate second moment, both evaluated at the location's deviation
    variance [var_of_loc loc]. *)
