(** The Chang–Sapatnekar-style full-chip leakage baseline (paper
    reference [3]: "Full-chip analysis of leakage power under process
    variations, including spatial correlations", DAC 2005).

    The method the paper positions itself against: a {e late-mode}
    analysis that walks the placed netlist.  Each gate's leakage is a
    lognormal whose log is linear in its region's channel-length
    deviation (first-order model — the quadratic term of the
    [a·e^{bL+cL²}] law is dropped); region variables follow the
    grid/PCA model; and the full-chip sum of correlated lognormals is
    moment-matched to a lognormal (Wilkinson).  Gates are grouped by
    (region, cell), so the pairwise covariance work is quadratic in the
    number of groups — the netlist-level O(n²) the paper quotes is
    avoided only by this coarsening.

    Compared against the Random-Gate estimators and the exact pairwise
    reference in experiment B1. *)

type result = {
  mean : float;
  std : float;
  distribution : Rgleak_core.Distribution.t;  (** Wilkinson lognormal *)
  groups : int;  (** (region, cell) groups actually formed *)
  components : int;  (** principal components retained *)
}

val analyze :
  ?grid:int ->
  ?variance_fraction:float ->
  ?p:float ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** Late-mode analysis of a placed design.  [p] is the signal
    probability for the per-cell state weighting (default: the
    conservative maximizing setting).  [grid] regions per axis
    (default 8). *)
