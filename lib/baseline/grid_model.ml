open Rgleak_num
open Rgleak_process

type t = {
  grid : int;
  width : float;
  height : float;
  num_components : int;
  weights : Matrix.t;
  sigma_l : float;
}

let build ?(grid = 8) ?(variance_fraction = 0.999) ~corr ~width ~height () =
  if grid < 1 then invalid_arg "Grid_model.build: need at least one region";
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Grid_model.build: dimensions must be positive";
  let g2 = grid * grid in
  let param = Corr_model.param corr in
  let sigma_l = Process_param.sigma_total param in
  let center r =
    let ix = r mod grid and iy = r / grid in
    ( (float_of_int ix +. 0.5) *. (width /. float_of_int grid),
      (float_of_int iy +. 0.5) *. (height /. float_of_int grid) )
  in
  (* Total covariance (D2D + WID) between region deviations. *)
  let cov =
    Matrix.init ~rows:g2 ~cols:g2 (fun i j ->
        if i = j then sigma_l *. sigma_l
        else begin
          let xi, yi = center i and xj, yj = center j in
          let d = sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)) in
          sigma_l *. sigma_l *. Corr_model.total corr d
        end)
  in
  let decomp = Eigen.symmetric cov in
  let k = Stdlib.max 1 (Eigen.principal_components ~variance_fraction decomp) in
  let weights =
    Matrix.init ~rows:g2 ~cols:k (fun r c ->
        Matrix.get decomp.Eigen.eigenvectors r c
        *. sqrt (Float.max 0.0 decomp.Eigen.eigenvalues.(c)))
  in
  { grid; width; height; num_components = k; weights; sigma_l }

let num_regions t = t.grid * t.grid

let region_of_position t ~x ~y =
  let clamp v n = Stdlib.max 0 (Stdlib.min (n - 1) v) in
  let ix = clamp (int_of_float (x /. (t.width /. float_of_int t.grid))) t.grid in
  let iy = clamp (int_of_float (y /. (t.height /. float_of_int t.grid))) t.grid in
  (iy * t.grid) + ix

let covariance t r1 r2 =
  let s = ref 0.0 in
  for k = 0 to t.num_components - 1 do
    s := !s +. (Matrix.get t.weights r1 k *. Matrix.get t.weights r2 k)
  done;
  !s

let sample t rng =
  let z = Array.init t.num_components (fun _ -> Rng.gaussian rng) in
  Array.init (num_regions t) (fun r ->
      let s = ref 0.0 in
      for k = 0 to t.num_components - 1 do
        s := !s +. (Matrix.get t.weights r k *. z.(k))
      done;
      !s)
