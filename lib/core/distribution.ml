open Rgleak_num

type shape = Normal | Lognormal

type t = {
  mean : float;
  std : float;
  shape : shape;
  mu_ln : float;
  sigma_ln : float;
}

let of_moments ?(shape = Lognormal) ~mean ~std () =
  if mean <= 0.0 then invalid_arg "Distribution.of_moments: mean must be positive";
  if std < 0.0 then invalid_arg "Distribution.of_moments: std must be non-negative";
  (* Wilkinson: match E[X] and Var[X] of a lognormal.  The matched
     parameters are well-defined for both shapes (mean > 0 is already
     required), so they are always computed — no NaN sentinel whose
     accidental use would propagate silently. *)
  let cv2 = std *. std /. (mean *. mean) in
  (* log1p: forming 1 + cv² first loses up to half the digits of a
     small coefficient of variation. *)
  let sigma_ln2 = Float.log1p cv2 in
  let mu_ln = log mean -. (0.5 *. sigma_ln2) in
  { mean; std; shape; mu_ln; sigma_ln = sqrt sigma_ln2 }

let of_estimate ?shape (r : Estimate.result) =
  of_moments ?shape ~mean:r.Estimate.mean ~std:r.Estimate.std ()

let quantile t p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Distribution.quantile: probability must be in (0,1)";
  match t.shape with
  | Normal -> t.mean +. (t.std *. Special.normal_quantile p)
  | Lognormal -> exp (t.mu_ln +. (t.sigma_ln *. Special.normal_quantile p))

let cdf t x =
  match t.shape with
  | Normal -> Special.normal_cdf ((x -. t.mean) /. Float.max t.std 1e-300)
  | Lognormal ->
    if x <= 0.0 then 0.0
    else Special.normal_cdf ((log x -. t.mu_ln) /. Float.max t.sigma_ln 1e-300)

let pdf t x =
  match t.shape with
  | Normal -> Special.normal_pdf ((x -. t.mean) /. t.std) /. t.std
  | Lognormal ->
    if x <= 0.0 then 0.0
    else
      Special.normal_pdf ((log x -. t.mu_ln) /. t.sigma_ln)
      /. (x *. t.sigma_ln)

(* Upper-tail probability through the survival function: [1. -. cdf]
   cancels to zero once the standardized budget passes ~8σ, exactly the
   regime tail estimation cares about. *)
let exceedance t ~budget =
  match t.shape with
  | Normal -> Special.normal_sf ((budget -. t.mean) /. Float.max t.std 1e-300)
  | Lognormal ->
    if budget <= 0.0 then 1.0
    else
      Special.normal_sf
        ((log budget -. t.mu_ln) /. Float.max t.sigma_ln 1e-300)

let yield t ~budget = cdf t budget
let budget_for_yield t ~yield = quantile t yield

let pp fmt t =
  let shape = match t.shape with Normal -> "normal" | Lognormal -> "lognormal" in
  Format.fprintf fmt "%s(mean=%.4g, std=%.4g)" shape t.mean t.std
