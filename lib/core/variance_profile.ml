open Rgleak_num
open Rgleak_process

type t = {
  radii : float array;
  cumulative_share : float array;
  diagonal_share : float;
  total_variance : float;
}

(* Angular kernel of the radial Eq. 20 form, valid for any r up to the
   die diagonal because the (W - r cos t)(H - r sin t) factors clamp at
   zero where the offset leaves the rectangle. *)
let angular_kernel ~width ~height r =
  Quadrature.gauss_legendre ~order:64
    (fun theta ->
      Float.max 0.0 (width -. (r *. cos theta))
      *. Float.max 0.0 (height -. (r *. sin theta)))
    ~lo:0.0 ~hi:(Float.pi /. 2.0)

let compute ?(points = 64) ~corr ~rgcorr ~n ~width ~height () =
  if points < 2 then invalid_arg "Variance_profile.compute: need >= 2 points";
  if n <= 0 then invalid_arg "Variance_profile.compute: positive gate count";
  let nf = float_of_int n in
  let area = width *. height in
  let diag = sqrt ((width *. width) +. (height *. height)) in
  let rg = Rg_correlation.rg rgcorr in
  let diagonal = nf *. rg.Random_gate.variance in
  let scale = 4.0 *. nf *. nf /. (area *. area) in
  let radial r =
    Rg_correlation.f rgcorr ~rho_l:(Corr_model.total corr r)
    *. r
    *. angular_kernel ~width ~height r
  in
  (* cumulative integral over [0, diag] on a fine partition; each
     segment integrated with a fixed GL rule *)
  let radii = Array.init points (fun i -> float_of_int (i + 1) /. float_of_int points *. diag) in
  let cumulative = Array.make points 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i r_hi ->
      let r_lo = if i = 0 then 0.0 else radii.(i - 1) in
      acc := !acc +. Quadrature.gauss_legendre ~order:16 radial ~lo:r_lo ~hi:r_hi;
      cumulative.(i) <- diagonal +. (scale *. !acc))
    radii;
  let total_variance = cumulative.(points - 1) in
  {
    radii;
    cumulative_share = Array.map (fun v -> v /. total_variance) cumulative;
    diagonal_share = diagonal /. total_variance;
    total_variance;
  }

let radius_for_share t ~share =
  if not (share >= 0.0 && share <= 1.0) then
    invalid_arg "Variance_profile.radius_for_share: share out of [0,1]";
  let rec go i =
    if i >= Array.length t.radii - 1 then t.radii.(Array.length t.radii - 1)
    else if t.cumulative_share.(i) >= share then t.radii.(i)
    else go (i + 1)
  in
  go 0

let pp fmt t =
  Format.fprintf fmt "diagonal (same-gate) share: %.2f%%@."
    (100.0 *. t.diagonal_share);
  Format.fprintf fmt "%10s %10s@." "radius um" "cum share";
  let points = Array.length t.radii in
  for k = 1 to 10 do
    let i = Stdlib.min (points - 1) ((k * points / 10) - 1) in
    Format.fprintf fmt "%10.1f %9.2f%%@." t.radii.(i)
      (100.0 *. t.cumulative_share.(i))
  done
