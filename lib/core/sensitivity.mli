(** What-if sensitivity analysis for design planning.

    Early-mode estimation exists to steer decisions; this module
    quantifies how the leakage statistics move when the decisions move:
    shifting the cell mix toward or away from a cell (with the histogram
    renormalized), scaling the die, or growing the gate count.  Mix
    sensitivities are computed by symmetric finite differences on the
    constant-time estimator, so a full report costs a few milliseconds;
    the mean sensitivities additionally satisfy the closed-form identity
    [∂mean/∂α_i = n·(μ_i − μ̄)] (verified in the test suite). *)

type cell_sensitivity = {
  cell_index : int;
  cell_name : string;
  alpha : float;  (** current histogram frequency *)
  mean_share : float;  (** fraction of the chip mean due to this cell *)
  d_mean_d_alpha : float;
      (** nA change of the chip mean per unit of renormalized frequency
          shifted toward this cell *)
  d_std_d_alpha : float;  (** same, for the chip standard deviation *)
}

type report = {
  mean : float;
  std : float;
  cells : cell_sensitivity array;  (** support cells, largest |d_std| first *)
  d_mean_d_n : float;  (** per added gate (die grown to keep density) *)
  d_std_d_n : float;
  die_upsize_std_ratio : float;
      (** σ(1.1× linear die scale, same n) / σ — spreading the same
          design decorrelates it *)
}

val analyze :
  ?epsilon:float ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  ?p:float ->
  Estimate.spec ->
  report
(** [epsilon] is the finite-difference step on histogram frequencies
    (default 0.01). *)

val pp : Format.formatter -> report -> unit
(** Human-readable table. *)
