open Rgleak_cells
open Rgleak_circuit

type cell_sensitivity = {
  cell_index : int;
  cell_name : string;
  alpha : float;
  mean_share : float;
  d_mean_d_alpha : float;
  d_std_d_alpha : float;
}

type report = {
  mean : float;
  std : float;
  cells : cell_sensitivity array;
  d_mean_d_n : float;
  d_std_d_n : float;
  die_upsize_std_ratio : float;
}

(* Histogram with mass epsilon shifted toward cell i (all entries scaled
   by (1-eps), cell i gets +eps), staying normalized. *)
let shifted histogram ~cell ~epsilon =
  let a = Histogram.to_array histogram in
  let shifted =
    Array.mapi
      (fun j w ->
        let base = w *. (1.0 -. epsilon) in
        if j = cell then base +. epsilon else base)
      a
  in
  Histogram.of_weights
    (List.filteri
       (fun _ (_, w) -> w > 0.0)
       (List.mapi (fun j w -> (Library.cells.(j).Cell.name, w)) (Array.to_list shifted)))

let estimate_of ~chars ~corr ?p (spec : Estimate.spec) =
  Estimate.early ?p ~method_:Estimate.Integral_2d ~chars ~corr spec

let analyze ?(epsilon = 0.01) ~chars ~corr ?p (spec : Estimate.spec) =
  if not (epsilon > 0.0 && epsilon < 0.5) then
    invalid_arg "Sensitivity.analyze: epsilon out of range";
  let base = estimate_of ~chars ~corr ?p spec in
  (* fix the signal probability so mix perturbations do not re-run the
     argmax search with a different outcome *)
  let p =
    match p with
    | Some p -> p
    | None ->
      Signal_prob.maximizing_p chars
        ~weights:(Histogram.to_array spec.Estimate.histogram)
  in
  let support = Histogram.support spec.Estimate.histogram in
  let nf = float_of_int spec.Estimate.n in
  let cells =
    List.map
      (fun cell ->
        let run direction =
          let histogram =
            shifted spec.Estimate.histogram ~cell ~epsilon:(direction *. epsilon)
          in
          estimate_of ~chars ~corr ~p { spec with Estimate.histogram }
        in
        let plus = run 1.0 in
        (* a symmetric step would de-normalize for negative direction;
           use the one-sided difference against the base instead *)
        let d_mean = (plus.Estimate.mean -. base.Estimate.mean) /. epsilon in
        let d_std = (plus.Estimate.std -. base.Estimate.std) /. epsilon in
        let alpha = Histogram.frequency spec.Estimate.histogram cell in
        let rg =
          Random_gate.create ~chars ~histogram:spec.Estimate.histogram ~p ()
        in
        let mean_share =
          if base.Estimate.mean = 0.0 then 0.0
          else alpha *. Random_gate.mean_of_cell rg cell *. nf /. base.Estimate.mean
        in
        {
          cell_index = cell;
          cell_name = Library.cells.(cell).Cell.name;
          alpha;
          mean_share;
          d_mean_d_alpha = d_mean;
          d_std_d_alpha = d_std;
        })
      support
    |> List.sort (fun a b ->
           compare (Float.abs b.d_std_d_alpha) (Float.abs a.d_std_d_alpha))
    |> Array.of_list
  in
  (* gate-count sensitivity at constant density: grow the die with n *)
  let n_step = Stdlib.max 1 (spec.Estimate.n / 50) in
  let grow =
    let scale =
      sqrt (float_of_int (spec.Estimate.n + n_step) /. float_of_int spec.Estimate.n)
    in
    estimate_of ~chars ~corr ~p
      {
        spec with
        Estimate.n = spec.Estimate.n + n_step;
        width = spec.Estimate.width *. scale;
        height = spec.Estimate.height *. scale;
      }
  in
  let d_mean_d_n = (grow.Estimate.mean -. base.Estimate.mean) /. float_of_int n_step in
  let d_std_d_n = (grow.Estimate.std -. base.Estimate.std) /. float_of_int n_step in
  let upsized =
    estimate_of ~chars ~corr ~p
      {
        spec with
        Estimate.width = spec.Estimate.width *. 1.1;
        height = spec.Estimate.height *. 1.1;
      }
  in
  {
    mean = base.Estimate.mean;
    std = base.Estimate.std;
    cells;
    d_mean_d_n;
    d_std_d_n;
    die_upsize_std_ratio = upsized.Estimate.std /. base.Estimate.std;
  }

let pp fmt r =
  Format.fprintf fmt "mean %.4g nA, std %.4g nA@." r.mean r.std;
  Format.fprintf fmt "%-12s %7s %9s %14s %14s@." "cell" "alpha" "share"
    "d mean/d a" "d std/d a";
  Array.iter
    (fun c ->
      Format.fprintf fmt "%-12s %7.3f %8.1f%% %14.4g %14.4g@." c.cell_name
        c.alpha (100.0 *. c.mean_share) c.d_mean_d_alpha c.d_std_d_alpha)
    r.cells;
  Format.fprintf fmt
    "per gate: d mean = %.4g, d std = %.4g; 1.1x die upsizing scales std by %.4f@."
    r.d_mean_d_n r.d_std_d_n r.die_upsize_std_ratio
