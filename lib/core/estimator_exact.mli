(** The O(n²) "true leakage" of a specific placed design (§3: the
    pairwise-covariance sum used as the reference everywhere in the
    paper).

    Mean: Σ_a μ_{type(a)}.  Variance: Σ_a Var_mix(type(a)) +
    Σ_{a≠b} Cov_{type(a),type(b)}(ρ_L(d_ab)), with the per-cell-pair
    covariances from {!Rg_correlation} and the length correlation from
    the process model.  Distances are bucketed into a fine uniform table
    once per call so the inner loop is pure float arithmetic; only the
    upper triangle of type pairs is tabulated (covariance is symmetric).

    The pair loop runs on the {!Rgleak_num.Parallel} domain pool over
    balanced triangular row bands, each band split into fixed-size row
    tiles handed to the allocation-free flat
    {!Rgleak_num.Pair_kernel}.  Band and tile boundaries, the kernel's
    8-lane summation contract and the in-order band combine depend only
    on the gate count, so the result is bit-identical for every job
    count (and across SIMD ISAs).

    Telemetry: counters [exact.gates], [exact.types], [exact.pairs]
    (bulk), [exact.tiles] (kernel calls — all jobs-invariant), plus
    gauges [exact.pairs_per_s] and [exact.minor_words]
    (submitting-domain minor allocation across the pair loop — stays
    O(bands) because the kernel allocates nothing, but varies with the
    job count like the other pool gauges). *)

type result = { mean : float; variance : float; std : float }

val estimate :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** [distance_points] (default 512) controls the resolution of the
    distance → covariance tables (per cell pair).  [jobs] overrides the
    parallelism for this call (default: the shared
    {!Rgleak_num.Parallel.default} pool); the estimate itself does not
    depend on it.  All cells used by the netlist must be in the
    correlation structure's support.  Raises
    {!Rgleak_num.Guard.Error} ([Numeric]) if a non-finite moment
    reaches the estimator boundary, or if a pool fault is injected at
    site ["parallel"]. *)

val estimate_reference :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** Historical row-at-a-time implementation over boxed tables, kept as
    the oracle for the flat kernel.  Same tables, same moments, same
    per-pair arithmetic; differs from {!estimate} only by summation
    order (documented reassociation contract), so results agree to
    ~1e-14 relative, not bitwise. *)

val estimate_result :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising entry point: {!estimate} under
    {!Rgleak_num.Guard.protect}. *)
