(** The O(n²) "true leakage" of a specific placed design (§3: the
    pairwise-covariance sum used as the reference everywhere in the
    paper).

    Mean: Σ_a μ_{type(a)}.  Variance: Σ_a Var_mix(type(a)) +
    Σ_{a≠b} Cov_{type(a),type(b)}(ρ_L(d_ab)), with the per-cell-pair
    covariances from {!Rg_correlation} and the length correlation from
    the process model.  Distances are bucketed into a fine uniform table
    once per call so the inner loop is pure float arithmetic; only the
    upper triangle of type pairs is tabulated (covariance is symmetric).

    The pair loop runs on the {!Rgleak_num.Parallel} domain pool over
    balanced triangular row bands, each band split into fixed-size row
    tiles handed to the allocation-free flat
    {!Rgleak_num.Pair_kernel}.  Band and tile boundaries, the kernel's
    8-lane summation contract and the in-order band combine depend only
    on the gate count, so the result is bit-identical for every job
    count (and across SIMD ISAs).

    Telemetry: counters [exact.gates], [exact.types], [exact.pairs]
    (bulk), [exact.tiles] (kernel calls — all jobs-invariant), plus
    gauges [exact.pairs_per_s] and [exact.minor_words]
    (submitting-domain minor allocation across the pair loop — stays
    O(bands) because the kernel allocates nothing, but varies with the
    job count like the other pool gauges). *)

type result = { mean : float; variance : float; std : float }

(** Everything [estimate] stages before entering the pair loop, shared
    with the delta estimator (which additionally needs the instance →
    sorted-row permutation to address one cell's row/column of the pair
    sum). *)
type staged = {
  sg_n : int;  (** instance count *)
  sg_used : int array;  (** dense type → library cell index *)
  sg_nu : int;  (** number of distinct types *)
  sg_cell_ty : int array;  (** dense type per instance, original order *)
  sg_mean : float;  (** Σ μ_type(a) over instances, staging order *)
  sg_mixture_variance : float;  (** Σ Var_mix(type(a)), staging order *)
  sg_perm : int array;  (** instance index → sorted kernel row *)
  sg_buffers : Rgleak_num.Pair_kernel.buffers;
  sg_distance_points : int;
  sg_dstep : float;  (** distance bin width *)
}

val distance_grid :
  distance_points:int -> Rgleak_circuit.Layout.t -> float
(** The distance-bin width staging uses for a layout: the die diagonal
    (plus a guard epsilon) divided into [distance_points - 1] bins.
    Exposed so cache keys for prebuilt covariance tables can name the
    exact binning without re-staging. *)

val stage_buffers :
  ?distance_points:int ->
  ?cov:Rgleak_num.Pair_kernel.f64 ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  staged
(** Stage a placed design into flat kernel buffers without running the
    pair loop.  [?cov] supplies prebuilt packed covariance tables
    (e.g. from the on-disk memo) — they must match
    [tri_size nu * distance_points] elements — otherwise the tables
    are built via {!Rg_correlation.binned_pair_tables}.  Raises
    [Invalid_argument] on an empty netlist, a cell outside the RG
    support, or wrongly-sized tables. *)

val estimate :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** [distance_points] (default 512) controls the resolution of the
    distance → covariance tables (per cell pair).  [jobs] overrides the
    parallelism for this call (default: the shared
    {!Rgleak_num.Parallel.default} pool); the estimate itself does not
    depend on it.  All cells used by the netlist must be in the
    correlation structure's support.  Raises
    {!Rgleak_num.Guard.Error} ([Numeric]) if a non-finite moment
    reaches the estimator boundary, or if a pool fault is injected at
    site ["parallel"]. *)

val estimate_reference :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** Historical row-at-a-time implementation over boxed tables, kept as
    the oracle for the flat kernel.  Same tables, same moments, same
    per-pair arithmetic; differs from {!estimate} only by summation
    order (documented reassociation contract), so results agree to
    ~1e-14 relative, not bitwise. *)

val estimate_result :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising entry point: {!estimate} under
    {!Rgleak_num.Guard.protect}. *)
