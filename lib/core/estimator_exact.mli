(** The O(n²) "true leakage" of a specific placed design (§3: the
    pairwise-covariance sum used as the reference everywhere in the
    paper).

    Mean: Σ_a μ_{type(a)}.  Variance: Σ_a Var_mix(type(a)) +
    Σ_{a≠b} Cov_{type(a),type(b)}(ρ_L(d_ab)), with the per-cell-pair
    covariances from {!Rg_correlation} and the length correlation from
    the process model.  Distances are bucketed into a fine uniform table
    once per call so the inner loop is pure float arithmetic; only the
    upper triangle of type pairs is tabulated (covariance is symmetric).

    The pair loop runs on the {!Rgleak_num.Parallel} domain pool over
    balanced triangular row bands.  The banding and the reduction order
    depend only on the gate count, so the result is bit-identical for
    every job count. *)

type result = { mean : float; variance : float; std : float }

val estimate :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** [distance_points] (default 512) controls the resolution of the
    distance → covariance tables (per cell pair).  [jobs] overrides the
    parallelism for this call (default: the shared
    {!Rgleak_num.Parallel.default} pool); the estimate itself does not
    depend on it.  All cells used by the netlist must be in the
    correlation structure's support.  Raises
    {!Rgleak_num.Guard.Error} ([Numeric]) if a non-finite moment
    reaches the estimator boundary, or if a pool fault is injected at
    site ["parallel"]. *)

val estimate_result :
  ?distance_points:int ->
  ?jobs:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising entry point: {!estimate} under
    {!Rgleak_num.Guard.protect}. *)
