(** End-to-end full-chip leakage estimation (Fig. 1's block diagram).

    Inputs: a characterized library (process + cell library information)
    and the design's high-level characteristics — cell-usage histogram,
    gate count, layout dimensions — supplied directly (early mode) or
    extracted from a placed netlist (late mode).  Output: mean and
    standard deviation of full-chip leakage.

    A {!context} bundles the model state (random gate + correlation
    structure) so repeated estimates share the one-time tabulations. *)

type spec = {
  histogram : Rgleak_circuit.Histogram.t;
  n : int;
  width : float;  (** µm *)
  height : float;  (** µm *)
}
(** The paper's high-level design characteristics. *)

val spec_of_placed : Rgleak_circuit.Placer.placed -> spec
(** Late-mode extraction. *)

type method_selector =
  | Auto  (** linear for small designs, integral for large (§3.2.3) *)
  | Linear
  | Integral_2d
  | Integral_polar

type context

val context :
  ?mode:Random_gate.mode ->
  ?mapping:Rg_correlation.mapping ->
  ?p:float ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  histogram:Rgleak_circuit.Histogram.t ->
  unit ->
  context
(** Builds the RG model for a cell mix.  [p] is the signal probability;
    omitted, the conservative maximizing setting of §2.1.4 is used. *)

val context_with :
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  histogram:Rgleak_circuit.Histogram.t ->
  p:float ->
  unit ->
  context
(** A context around an externally built correlation structure (e.g.
    one restored from the content-addressed cache via
    {!Rg_correlation.of_tables}).  [p] and [histogram] must be the
    values the structure was built for. *)

val signal_p : context -> float
val random_gate : context -> Random_gate.t
val correlation : context -> Rg_correlation.t

type result = {
  mean : float;  (** nA *)
  variance : float;
  std : float;
  method_used : string;
  n : int;
  vt_mean_factor : float;
      (** multiplicative V_t correction; already applied to [mean] when
          the context was asked to (see [with_vt] below) *)
}

val run :
  ?lin_memo:Estimator_linear.memo ->
  ?method_:method_selector ->
  ?with_vt:bool ->
  context ->
  spec ->
  result
(** Estimates mean and σ of full-chip leakage for a design spec.
    [with_vt] (default false) multiplies the mean by the random-dopant
    factor.  The spec's histogram must match the context's (the context
    is built per cell mix).  [lin_memo] is consulted and filled when
    the linear tier runs (see {!Estimator_linear.estimate}); other
    tiers ignore it.  Raises [Invalid_argument] on malformed specs and
    {!Rgleak_num.Guard.Error} on numerical breakdown in the selected
    estimator tier. *)

val run_result :
  ?lin_memo:Estimator_linear.memo ->
  ?method_:method_selector ->
  ?with_vt:bool ->
  context ->
  spec ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising {!run}: every failure folds into a typed
    {!Rgleak_num.Guard.diagnostic} (invalid input, numeric breakdown
    at a named site, or internal bug).  This is the entry point for
    services and for the CLI's best-effort tier fallback. *)

val early :
  ?mode:Random_gate.mode ->
  ?mapping:Rg_correlation.mapping ->
  ?p:float ->
  ?method_:method_selector ->
  ?with_vt:bool ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  spec ->
  result
(** One-shot early-mode estimate (builds a fresh context). *)

val early_result :
  ?mode:Random_gate.mode ->
  ?mapping:Rg_correlation.mapping ->
  ?p:float ->
  ?method_:method_selector ->
  ?with_vt:bool ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  spec ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising {!early}. *)

val late :
  ?mode:Random_gate.mode ->
  ?mapping:Rg_correlation.mapping ->
  ?p:float ->
  ?method_:method_selector ->
  ?with_vt:bool ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** One-shot late-mode estimate from a placed netlist. *)

val true_leakage :
  ?mode:Random_gate.mode ->
  ?mapping:Rg_correlation.mapping ->
  ?p:float ->
  ?jobs:int ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  Rgleak_circuit.Placer.placed ->
  result
(** The O(n²) pairwise reference ("true leakage") of a placed design.
    [jobs] sizes the domain pool for the pair loop (default: the shared
    pool); the result is bit-identical for every job count. *)

val pp_result : Format.formatter -> result -> unit

val finite_size_error_bound : n:int -> float
(** Empirical bound on the relative error of the RG estimate for a
    {e specific} design of [n] gates (the Fig. 6 convergence band):
    individual designs sharing the high-level characteristics scatter
    around the RG prediction with a maximum relative deviation that
    shrinks as ~1/√n.  Calibrated on this repository's Fig. 6 run
    (≈ 2.0/√(n/10⁴): 20 % at 100 gates, ≈ 2 % at 11,236, matching the
    paper's 2.2 %).  Returns the bound as a fraction (0.02 = 2 %). *)
