(** Minimum-leakage (sleep) vector search.

    §2.1.4 shows per-gate leakage varying 10×+ with input state while
    the chip-level effect of {e random} inputs averages out.  The flip
    side is a classic standby-power technique: when a block is idle, its
    inputs (and flop states) can be {e chosen}, and a good choice parks
    every gate in a low-leakage state — e.g. exploiting the stack effect
    of all-off NAND pulldowns.  Finding the optimum is NP-hard; this
    module does the standard randomized greedy: random restarts, then
    hill-climbing over single-bit flips.

    The netlist's logic is simulated through each cell's gate-family
    projection ({!Rgleak_circuit.Techmap.family_of_cell}); flip-flops
    contribute their stored bit as a controllable input (clock parked
    low), so the sleep vector covers primary inputs plus flop states.
    The cost of a vector is the sum of the per-gate mean leakages of the
    resulting states, from the characterization tables. *)

type t
(** A compiled simulation/cost model for one netlist. *)

val compile :
  chars:Rgleak_cells.Characterize.cell_char array ->
  Rgleak_circuit.Netlist.t ->
  t
(** Raises [Invalid_argument] if the netlist uses a cell with no
    gate-level equivalent (SRAM6T). *)

val num_controls : t -> int
(** Bits in the sleep vector: primary inputs + flip-flop states. *)

val cost : t -> bool array -> float
(** Expected leakage (nA) with the block parked at this vector. *)

val random_cost_stats :
  t -> Rgleak_num.Rng.t -> samples:int -> float * float * float
(** (min, mean, max) cost over random vectors — the baseline a search
    improves upon. *)

type search_result = {
  vector : bool array;
  cost : float;
  random_mean : float;  (** mean cost of random vectors, for contrast *)
  improvement : float;  (** 1 − cost/random_mean *)
  evaluations : int;
}

val search :
  ?restarts:int -> ?samples:int -> rng:Rgleak_num.Rng.t -> t -> search_result
(** Greedy descent with [restarts] random starting vectors (default 8);
    [samples] random vectors for the baseline statistics (default 200). *)
