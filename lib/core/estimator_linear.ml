open Rgleak_process
open Rgleak_circuit
module Obs = Rgleak_obs.Obs
module Guard = Rgleak_num.Guard

type result = { mean : float; variance : float; std : float }

(* Distance-indexed memo (the Estimator_exact trick): the four offsets
   (±di, ±dj) are equidistant, so F(ρ_L(d)) is evaluated once per
   (|di|, |dj|) and reused — a 4x cut in correlation-model and F-table
   evaluations with bit-identical results.  Presence lives in an
   explicit bitmask, not a NaN sentinel: a genuinely-NaN value
   (numerical breakdown upstream, or the "linear.f" fault site) must
   memoize like any other so it is computed once and then caught at
   the estimator boundary, instead of defeating the memo forever.

   The memo is a first-class value so a caller estimating the same
   scenario repeatedly (or the batch engine, through the on-disk
   cache) can hand a filled table back in: pre-filled entries replay
   the stored floats verbatim, keeping warm runs bit-identical. *)
type memo = { m_rows : int; m_cols : int; values : float array; seen : Bytes.t }

let memo_create ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Estimator_linear.memo_create: non-positive shape";
  {
    m_rows = rows;
    m_cols = cols;
    values = Array.make (rows * cols) 0.0;
    seen = Bytes.make (rows * cols) '\000';
  }

let memo_shape m = (m.m_rows, m.m_cols)

let memo_to_list m =
  let out = ref [] in
  for idx = Array.length m.values - 1 downto 0 do
    if Bytes.get m.seen idx <> '\000' then
      out := (idx, m.values.(idx)) :: !out
  done;
  !out

let memo_set m ~idx ~value =
  if idx < 0 || idx >= Array.length m.values then
    invalid_arg "Estimator_linear.memo_set: index outside the memo shape";
  m.values.(idx) <- value;
  Bytes.set m.seen idx '\001'

(* Shared off-diagonal offset loop: folds occ(di,dj) · F(ρ_L(d)) over
   every nonzero offset of the site grid onto [init], in fixed
   (dj, di) raster order so the float association is a pure function
   of (layout, init).  [estimate] seeds it with the diagonal term; the
   delta estimator seeds it with 0 to get the bare off-diagonal sum it
   rescales per swap. *)
let fold_offsets ?memo ~corr ~rgcorr ~layout ~init () =
  let track = Obs.enabled () in
  let rows = Layout.rows layout in
  let cols = layout.Layout.cols in
  let m =
    match memo with
    | None -> memo_create ~rows ~cols
    | Some m ->
      if m.m_rows <> rows || m.m_cols <> cols then
        invalid_arg "Estimator_linear.estimate: memo shape differs from layout";
      m
  in
  let f_memo = m.values and f_seen = m.seen in
  (* Local hit/miss tallies flushed once at the end: the offset loop
     stays free of telemetry lookups even with tracing enabled. *)
  let memo_hits = ref 0 and memo_misses = ref 0 in
  let f_at ~di ~dj =
    let idx = (abs dj * cols) + abs di in
    if Bytes.unsafe_get f_seen idx = '\000' then begin
      if track then incr memo_misses;
      let d = Layout.distance_of_offset layout ~di ~dj in
      let v = Rg_correlation.f rgcorr ~rho_l:(Corr_model.total corr d) in
      let v = Guard.Fault.corrupt_nan "linear.f" v in
      f_memo.(idx) <- v;
      Bytes.unsafe_set f_seen idx '\001';
      v
    end
    else begin
      if track then incr memo_hits;
      f_memo.(idx)
    end
  in
  let acc = ref init in
  for dj = -(rows - 1) to rows - 1 do
    for di = -(cols - 1) to cols - 1 do
      if not (di = 0 && dj = 0) then begin
        let occ = Layout.occurrences layout ~di ~dj in
        if occ > 0 then acc := !acc +. (float_of_int occ *. f_at ~di ~dj)
      end
    done
  done;
  if track then begin
    Obs.count "linear.memo_hits" !memo_hits;
    Obs.count "linear.memo_misses" !memo_misses
  end;
  !acc

let estimate ?memo ~corr ~rgcorr ~layout () =
  Obs.span "linear.estimate" @@ fun () ->
  let rg = Rg_correlation.rg rgcorr in
  let n = Layout.site_count layout in
  let nf = float_of_int n in
  let mean = nf *. rg.Random_gate.mu in
  (* Diagonal offset (0,0): n self-pairs, each contributing the full RG
     variance (Eq. 11, same-location branch) — seeded as the fold's
     init so the float association matches the historical in-loop
     accumulation bit for bit. *)
  let variance =
    fold_offsets ?memo ~corr ~rgcorr ~layout
      ~init:(nf *. rg.Random_gate.variance) ()
  in
  if Obs.enabled () then Obs.count "linear.sites" n;
  let mean = Guard.check_finite ~site:"linear" ~name:"mean" mean in
  let variance = Guard.check_finite ~site:"linear" ~name:"variance" variance in
  { mean; variance; std = sqrt (Float.max 0.0 variance) }

let offdiag_sum ?memo ~corr ~rgcorr ~layout () =
  Obs.span "linear.offdiag" @@ fun () ->
  fold_offsets ?memo ~corr ~rgcorr ~layout ~init:0.0 ()

let estimate_result ?memo ~corr ~rgcorr ~layout () =
  Guard.protect (estimate ?memo ~corr ~rgcorr ~layout)
