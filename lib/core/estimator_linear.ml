open Rgleak_process
open Rgleak_circuit

type result = { mean : float; variance : float; std : float }

let estimate ~corr ~rgcorr ~layout () =
  let rg = Rg_correlation.rg rgcorr in
  let n = Layout.site_count layout in
  let nf = float_of_int n in
  let mean = nf *. rg.Random_gate.mu in
  (* Diagonal offset (0,0): n self-pairs, each contributing the full RG
     variance (Eq. 11, same-location branch). *)
  let variance = ref (nf *. rg.Random_gate.variance) in
  let rows = Layout.rows layout in
  let cols = layout.Layout.cols in
  for dj = -(rows - 1) to rows - 1 do
    for di = -(cols - 1) to cols - 1 do
      if not (di = 0 && dj = 0) then begin
        let occ = Layout.occurrences layout ~di ~dj in
        if occ > 0 then begin
          let d = Layout.distance_of_offset layout ~di ~dj in
          let rho_l = Corr_model.total corr d in
          variance :=
            !variance +. (float_of_int occ *. Rg_correlation.f rgcorr ~rho_l)
        end
      end
    done
  done;
  { mean; variance = !variance; std = sqrt (Float.max 0.0 !variance) }
