open Rgleak_process
open Rgleak_cells

type corner = { name : string; l_shift_sigmas : float; temp_c : float }

let typical = { name = "TT/25C"; l_shift_sigmas = 0.0; temp_c = 25.0 }

let standard_corners =
  [
    { name = "FF/125C"; l_shift_sigmas = -3.0; temp_c = 125.0 };
    { name = "TT/125C"; l_shift_sigmas = 0.0; temp_c = 125.0 };
    typical;
    { name = "SS/-40C"; l_shift_sigmas = 3.0; temp_c = -40.0 };
  ]

type corner_result = {
  corner : corner;
  mean : float;
  std : float;
  p3sigma : float;
}

let analyze ?(corners = standard_corners) ?(l_points = 49) ?(mc_samples = 500)
    ?p ~param ~corr ~spec () =
  List.map
    (fun corner ->
      let nominal =
        param.Process_param.nominal
        +. (corner.l_shift_sigmas *. param.Process_param.sigma_d2d)
      in
      let corner_param =
        Process_param.make
          ~name:(param.Process_param.name ^ "@" ^ corner.name)
          ~nominal ~sigma_d2d:param.Process_param.sigma_d2d
          ~sigma_wid:param.Process_param.sigma_wid
      in
      let env =
        Rgleak_device.Mosfet.env_at ~temp_k:(273.15 +. corner.temp_c) ()
      in
      let chars =
        Characterize.characterize_library ~l_points ~mc_samples ~env
          ~param:corner_param ~seed:1729 ()
      in
      let r = Estimate.early ?p ~with_vt:true ~chars ~corr spec in
      {
        corner;
        mean = r.Estimate.mean;
        std = r.Estimate.std;
        p3sigma = r.Estimate.mean +. (3.0 *. r.Estimate.std);
      })
    corners

let worst = function
  | [] -> invalid_arg "Corners.worst: empty result list"
  | first :: rest ->
    List.fold_left
      (fun best r -> if r.p3sigma > best.p3sigma then r else best)
      first rest

let pp fmt results =
  Format.fprintf fmt "%-10s %12s %12s %12s@." "corner" "mean (uA)" "std (uA)"
    "mean+3s (uA)";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %12.2f %12.2f %12.2f@." r.corner.name
        (r.mean /. 1000.0) (r.std /. 1000.0) (r.p3sigma /. 1000.0))
    results
