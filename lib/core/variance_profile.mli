(** Decomposition of the chip-leakage variance by pair separation.

    Answers "where does the σ come from?": the cumulative share of the
    total variance contributed by gate pairs closer than a radius r,
    plus the same-gate (diagonal) share.  Useful to judge how far the
    within-die correlation actually reaches into the variance — e.g.
    whether a guard-banded block placement could decorrelate anything —
    and to see the D2D floor as the residual share at the largest
    separations.

    Computed from the radial form of Eq. 20: the angular kernel
    [∫ max(0, W − r·cosθ)·max(0, H − r·sinθ) dθ] is evaluated
    numerically so the profile is valid beyond min(W, H), all the way to
    the die diagonal. *)

type t = private {
  radii : float array;  (** µm, increasing, last = die diagonal *)
  cumulative_share : float array;
      (** share of total variance from the diagonal plus pairs at
          distance ≤ radii.(i); ends at 1 *)
  diagonal_share : float;  (** same-gate share (the n·σ²_{X_I} term) *)
  total_variance : float;
}

val compute :
  ?points:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  t
(** [points] radii (default 64) spaced over (0, diagonal]. *)

val radius_for_share : t -> share:float -> float
(** Smallest tabulated radius whose cumulative share reaches [share]. *)

val pp : Format.formatter -> t -> unit
(** A compact table at decile radii. *)
