open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
module Obs = Rgleak_obs.Obs

let () = Obs.declare_hist ~owner:"mc" "mc.sample_s"

type t = {
  sampler : Variation.sampler;
  p : float;
  n : int;
  (* per gate: the characterized states of its cell *)
  gate_states : Characterize.state_char array array;
  gate_inputs : int array;
}

let prepare ~chars ~corr ~p placed =
  Obs.span "mc.prepare" @@ fun () ->
  let netlist = placed.Placer.netlist in
  let n = Netlist.size netlist in
  (* A zero-gate design has no leakage distribution to sample; without
     this guard the Cholesky/accumulator path below degenerates into
     meaningless zero statistics instead of a typed diagnostic. *)
  if n = 0 then Guard.invalid "Mc_reference.prepare: empty design (zero gates)";
  let locations =
    Array.init n (fun i ->
        let x, y = Placer.location placed i in
        { Variation.x; y })
  in
  let sampler = Variation.prepare corr locations in
  let gate_states =
    Array.map
      (fun inst -> chars.(inst.Netlist.cell_index).Characterize.states)
      netlist.Netlist.instances
  in
  let gate_inputs =
    Array.map
      (fun inst ->
        chars.(inst.Netlist.cell_index).Characterize.cell.Cell.num_inputs)
      netlist.Netlist.instances
  in
  { sampler; p; n; gate_states; gate_inputs }

let gate_count t = t.n

let draw_state t rng gate =
  let bits = t.gate_inputs.(gate) in
  let idx = ref 0 in
  for b = 0 to bits - 1 do
    if Rng.uniform rng < t.p then idx := !idx lor (1 lsl b)
  done;
  !idx

let total_with_states t lengths state_of_gate =
  (* One-slot float array, not a [ref]: without flambda a float ref
     boxes every accumulation, i.e. O(gates) minor words per replica. *)
  let acc = Array.make 1 0.0 in
  for g = 0 to t.n - 1 do
    let sc = t.gate_states.(g).(state_of_gate g) in
    acc.(0) <- acc.(0) +. Characterize.leakage_at sc lengths.(g)
  done;
  acc.(0)

(* Per-domain sampling scratch: replica sampling is the MC hot path and
   runs on every pool domain, so the per-replica float arrays (normals,
   WID field, lengths) are preallocated once per domain and grown on
   demand.  Domain.DLS keeps them race-free without locks; the arrays
   never shrink, which is fine for validation-scale designs. *)
type scratch = {
  mutable z : float array;
  mutable wid : float array;
  mutable lengths : float array;
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { z = [||]; wid = [||]; lengths = [||] })

let scratch_for n =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.z < n then begin
    s.z <- Array.make n 0.0;
    s.wid <- Array.make n 0.0;
    s.lengths <- Array.make n 0.0
  end;
  s

let sample t rng =
  let s = scratch_for t.n in
  Variation.sample_into t.sampler rng ~z:s.z ~wid:s.wid ~out:s.lengths;
  total_with_states t s.lengths (draw_state t rng)

let sample_many t rng ~count = Array.init count (fun _ -> sample t rng)

let moments t rng ~count =
  let acc = Stats.Acc.create () in
  for _ = 1 to count do
    Stats.Acc.add acc (sample t rng)
  done;
  (Stats.Acc.mean acc, Stats.Acc.std acc)

(* Replica-parallel sampling: replica i draws from its own RNG stream,
   pre-derived in O(1) from (seed, i) via SplitMix64, so the sample set
   — and therefore the estimate — is independent of the domain count. *)

let sample_stream t ~seed i = sample t (Rng.stream ~seed i)

(* Per-replica wall time: the sum gauge with the mc.replicas counter
   yields the mean sample cost, and the histogram exposes the tail
   (p99 sample time vs median — GC pauses and cold caches show up
   here).  The two clock reads are negligible against one die
   sample. *)
let timed_sample t ~seed i =
  if not (Obs.enabled ()) then sample_stream t ~seed i
  else begin
    let t0 = Obs.now_ns () in
    let x = sample_stream t ~seed i in
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
    Obs.gauge_add "mc.sample_s" dt;
    Obs.hist_record "mc.sample_s" dt;
    x
  end

(* Chunk sizing for the replica fill.  The pool's default of 64 chunks
   is tuned for the O(n²) pair loops; for replica sampling it splits
   e.g. 400 replicas into 6-or-7-sample tasks (a 17% size imbalance
   that the trailing chunks turn into idle tail time) and degenerates
   to one-sample tasks below 64 replicas.  Since each task writes
   disjoint slots (slot i = replica i), the fill is order-independent
   and the chunk count is free to follow the pool size: a few chunks
   per domain for load balancing, never fewer than [min_grain] replicas
   per chunk so scheduling overhead stays amortized. *)
let min_grain = 16
let chunks_per_job = 4

let chunks_for ~jobs ~count =
  let by_grain = (count + min_grain - 1) / min_grain in
  Int.max 1 (Int.min by_grain (chunks_per_job * jobs))

let sample_many_stream ?jobs t ~seed ~count =
  if count < 0 then invalid_arg "Mc_reference.sample_many_stream: negative count";
  Obs.span "mc.samples" @@ fun () ->
  Obs.count "mc.replicas" count;
  let out = Array.make count 0.0 in
  let words0 = if Obs.enabled () then Gc.minor_words () else 0.0 in
  Parallel.using ?jobs (fun pool ->
      let chunks = chunks_for ~jobs:(Parallel.jobs pool) ~count in
      Parallel.parallel_for_reduce ~chunks ~label:"mc.chunk" pool ~n:count
        ~init:(fun () -> ())
        ~body:(fun () i -> out.(i) <- timed_sample t ~seed i)
        ~combine:(fun () () -> ()));
  (* Submitting-domain minor words over the replica fill (a gauge, not
     a counter: pool bookkeeping makes it vary with the job count).
     With the per-domain scratch this is O(count), not O(count * n). *)
  if Obs.enabled () then
    Obs.gauge_max "mc.minor_words" (Gc.minor_words () -. words0);
  out

let moments_stream ?jobs t ~seed ~count =
  if count < 2 then invalid_arg "Mc_reference.moments_stream: need >= 2 replicas";
  Obs.span "mc.moments" @@ fun () ->
  (* The moments reduce over the filled replica array *sequentially in
     replica order*, so they are independent of the chunk decomposition
     above — bit-identical for any job count even though the chunk
     count follows the pool size.  Leakage samples are positive and of
     one scale, so the plain sum of squares loses nothing material
     against the streaming accumulator used by {!moments}. *)
  let samples = sample_many_stream ?jobs t ~seed ~count in
  let s = ref 0.0 and s2 = ref 0.0 in
  Array.iter
    (fun x ->
      s := !s +. x;
      s2 := !s2 +. (x *. x))
    samples;
  let nf = float_of_int count in
  let mean = !s /. nf in
  let var = Float.max 0.0 ((!s2 -. (!s *. !s /. nf)) /. (nf -. 1.0)) in
  (mean, sqrt var)

(* --- Importance-sampled replicas ------------------------------------- *)

let uniform_shift t ~delta = Variation.uniform_shift t.sampler ~delta

(* Expected full-chip leakage when every gate's channel length sits at
   nominal + delta, with states weighted by their Bernoulli
   probabilities — the deterministic calibration objective for picking
   a shift (no pilot MC, so calibration is exactly reproducible). *)
let expected_at_uniform t ~delta =
  let p = Variation.param t.sampler in
  let l = p.Process_param.nominal +. delta in
  let acc = Array.make 1 0.0 in
  for g = 0 to t.n - 1 do
    let states = t.gate_states.(g) in
    let bits = t.gate_inputs.(g) in
    for s = 0 to Array.length states - 1 do
      let w = Signal_prob.state_probability ~num_inputs:bits ~p:t.p s in
      acc.(0) <- acc.(0) +. (w *. Characterize.leakage_at states.(s) l)
    done
  done;
  acc.(0)

(* Span of shifts the calibration searches: inside the ±6σ
   characterization grid, so [leakage_at] never extrapolates. *)
let calibration_span_sigmas = 5.0

let calibrate_shift t ~budget =
  if not (budget > 0.0 && Float.is_finite budget) then
    invalid_arg "Mc_reference.calibrate_shift: budget must be positive and finite";
  let p = Variation.param t.sampler in
  let sigma = Process_param.sigma_total p in
  let span = calibration_span_sigmas *. sigma in
  (* Leakage is decreasing in channel length, so f is monotone
     increasing in -delta; Brent needs only the bracket. *)
  let f delta = expected_at_uniform t ~delta -. budget in
  let f_lo = f (-.span) and f_hi = f span in
  if f_lo <= 0.0 then -.span (* budget above the reachable range: max shift *)
  else if f_hi >= 0.0 then span (* budget below the nominal-ish range *)
  else Rootfind.brent ~tol:1e-9 f ~lo:(-.span) ~hi:span

let sample_shifted t rng ~shift =
  let s = scratch_for t.n in
  let log_w =
    Variation.sample_shifted_into t.sampler rng ~shift ~z:s.z ~wid:s.wid
      ~out:s.lengths
  in
  let v = total_with_states t s.lengths (draw_state t rng) in
  (v, log_w)

type weighted = { values : float array; log_weights : float array }

(* Same replica-stream + disjoint-slot-fill structure as
   [sample_many_stream]: replica i's value and log-weight depend only
   on (seed, i), so the pair of arrays is bit-identical for any job
   count. *)
let sample_weighted_stream ?jobs t ~shift ~seed ~count =
  if count < 0 then
    invalid_arg "Mc_reference.sample_weighted_stream: negative count";
  Obs.span "tail.samples" @@ fun () ->
  Obs.count "tail.replicas" count;
  let values = Array.make count 0.0 in
  let log_weights = Array.make count 0.0 in
  Parallel.using ?jobs (fun pool ->
      let chunks = chunks_for ~jobs:(Parallel.jobs pool) ~count in
      Parallel.parallel_for_reduce ~chunks ~label:"tail.chunk" pool ~n:count
        ~init:(fun () -> ())
        ~body:(fun () i ->
          let v, lw = sample_shifted t (Rng.stream ~seed i) ~shift in
          values.(i) <- v;
          log_weights.(i) <- lw)
        ~combine:(fun () () -> ()));
  { values; log_weights }

let fixed_state_sample t rng ~state_seed =
  let state_rng = Rng.create ~seed:state_seed () in
  let states = Array.init t.n (fun g -> draw_state t state_rng g) in
  let s = scratch_for t.n in
  Variation.sample_into t.sampler rng ~z:s.z ~wid:s.wid ~out:s.lengths;
  total_with_states t s.lengths (fun g -> states.(g))
