open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit

type t = {
  sampler : Variation.sampler;
  p : float;
  n : int;
  (* per gate: the characterized states of its cell *)
  gate_states : Characterize.state_char array array;
  gate_inputs : int array;
}

let prepare ~chars ~corr ~p placed =
  let netlist = placed.Placer.netlist in
  let n = Netlist.size netlist in
  let locations =
    Array.init n (fun i ->
        let x, y = Placer.location placed i in
        { Variation.x; y })
  in
  let sampler = Variation.prepare corr locations in
  let gate_states =
    Array.map
      (fun inst -> chars.(inst.Netlist.cell_index).Characterize.states)
      netlist.Netlist.instances
  in
  let gate_inputs =
    Array.map
      (fun inst ->
        chars.(inst.Netlist.cell_index).Characterize.cell.Cell.num_inputs)
      netlist.Netlist.instances
  in
  { sampler; p; n; gate_states; gate_inputs }

let gate_count t = t.n

let draw_state t rng gate =
  let bits = t.gate_inputs.(gate) in
  let idx = ref 0 in
  for b = 0 to bits - 1 do
    if Rng.uniform rng < t.p then idx := !idx lor (1 lsl b)
  done;
  !idx

let total_with_states t lengths state_of_gate =
  let total = ref 0.0 in
  for g = 0 to t.n - 1 do
    let sc = t.gate_states.(g).(state_of_gate g) in
    total := !total +. Characterize.leakage_at sc lengths.(g)
  done;
  !total

let sample t rng =
  let lengths = Variation.sample t.sampler rng in
  total_with_states t lengths (draw_state t rng)

let sample_many t rng ~count = Array.init count (fun _ -> sample t rng)

let moments t rng ~count =
  let acc = Stats.Acc.create () in
  for _ = 1 to count do
    Stats.Acc.add acc (sample t rng)
  done;
  (Stats.Acc.mean acc, Stats.Acc.std acc)

let fixed_state_sample t rng ~state_seed =
  let state_rng = Rng.create ~seed:state_seed () in
  let states = Array.init t.n (fun g -> draw_state t state_rng g) in
  let lengths = Variation.sample t.sampler rng in
  total_with_states t lengths (fun g -> states.(g))
