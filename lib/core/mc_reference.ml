open Rgleak_num
open Rgleak_process
open Rgleak_cells
open Rgleak_circuit
module Obs = Rgleak_obs.Obs

type t = {
  sampler : Variation.sampler;
  p : float;
  n : int;
  (* per gate: the characterized states of its cell *)
  gate_states : Characterize.state_char array array;
  gate_inputs : int array;
}

let prepare ~chars ~corr ~p placed =
  Obs.span "mc.prepare" @@ fun () ->
  let netlist = placed.Placer.netlist in
  let n = Netlist.size netlist in
  let locations =
    Array.init n (fun i ->
        let x, y = Placer.location placed i in
        { Variation.x; y })
  in
  let sampler = Variation.prepare corr locations in
  let gate_states =
    Array.map
      (fun inst -> chars.(inst.Netlist.cell_index).Characterize.states)
      netlist.Netlist.instances
  in
  let gate_inputs =
    Array.map
      (fun inst ->
        chars.(inst.Netlist.cell_index).Characterize.cell.Cell.num_inputs)
      netlist.Netlist.instances
  in
  { sampler; p; n; gate_states; gate_inputs }

let gate_count t = t.n

let draw_state t rng gate =
  let bits = t.gate_inputs.(gate) in
  let idx = ref 0 in
  for b = 0 to bits - 1 do
    if Rng.uniform rng < t.p then idx := !idx lor (1 lsl b)
  done;
  !idx

let total_with_states t lengths state_of_gate =
  let total = ref 0.0 in
  for g = 0 to t.n - 1 do
    let sc = t.gate_states.(g).(state_of_gate g) in
    total := !total +. Characterize.leakage_at sc lengths.(g)
  done;
  !total

let sample t rng =
  let lengths = Variation.sample t.sampler rng in
  total_with_states t lengths (draw_state t rng)

let sample_many t rng ~count = Array.init count (fun _ -> sample t rng)

let moments t rng ~count =
  let acc = Stats.Acc.create () in
  for _ = 1 to count do
    Stats.Acc.add acc (sample t rng)
  done;
  (Stats.Acc.mean acc, Stats.Acc.std acc)

(* Replica-parallel sampling: replica i draws from its own RNG stream,
   pre-derived in O(1) from (seed, i) via SplitMix64, so the sample set
   — and therefore the estimate — is independent of the domain count. *)

let sample_stream t ~seed i = sample t (Rng.stream ~seed i)

(* Per-replica wall time, accumulated into a sum gauge: with the
   mc.replicas counter this yields the mean sample cost; the two clock
   reads are negligible against one die sample. *)
let timed_sample t ~seed i =
  if not (Obs.enabled ()) then sample_stream t ~seed i
  else begin
    let t0 = Obs.now_ns () in
    let x = sample_stream t ~seed i in
    Obs.gauge_add "mc.sample_s"
      (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9);
    x
  end

let sample_many_stream ?jobs t ~seed ~count =
  if count < 0 then invalid_arg "Mc_reference.sample_many_stream: negative count";
  Obs.span "mc.samples" @@ fun () ->
  Obs.count "mc.replicas" count;
  let out = Array.make count 0.0 in
  Parallel.using ?jobs (fun pool ->
      Parallel.parallel_for_reduce ~label:"mc.chunk" pool ~n:count
        ~init:(fun () -> ())
        ~body:(fun () i -> out.(i) <- timed_sample t ~seed i)
        ~combine:(fun () () -> ()));
  out

let moments_stream ?jobs t ~seed ~count =
  if count < 2 then invalid_arg "Mc_reference.moments_stream: need >= 2 replicas";
  Obs.span "mc.moments" @@ fun () ->
  Obs.count "mc.replicas" count;
  (* Per-chunk (Σx, Σx²) partials combined in chunk order: the chunking
     depends only on [count], so the moments are bit-identical for any
     job count.  Leakage samples are positive and of one scale, so the
     plain sum of squares loses nothing material against the streaming
     accumulator used by {!moments}. *)
  let s, s2 =
    Parallel.using ?jobs (fun pool ->
        Parallel.parallel_for_reduce ~label:"mc.chunk" pool ~n:count
          ~init:(fun () -> (0.0, 0.0))
          ~body:(fun (s, s2) i ->
            let x = timed_sample t ~seed i in
            (s +. x, s2 +. (x *. x)))
          ~combine:(fun (a, b) (c, d) -> (a +. c, b +. d)))
  in
  let nf = float_of_int count in
  let mean = s /. nf in
  let var = Float.max 0.0 ((s2 -. (s *. s /. nf)) /. (nf -. 1.0)) in
  (mean, sqrt var)

let fixed_state_sample t rng ~state_seed =
  let state_rng = Rng.create ~seed:state_seed () in
  let states = Array.init t.n (fun g -> draw_state t state_rng g) in
  let lengths = Variation.sample t.sampler rng in
  total_with_states t lengths (fun g -> states.(g))
