open Rgleak_cells
open Rgleak_circuit

type spec = {
  histogram : Histogram.t;
  n : int;
  width : float;
  height : float;
}

let spec_of_placed placed =
  let histogram, n, width, height = Placer.extract_characteristics placed in
  { histogram; n; width; height }

type method_selector = Auto | Linear | Integral_2d | Integral_polar

type context = {
  corr : Rgleak_process.Corr_model.t;
  rg : Random_gate.t;
  rgcorr : Rg_correlation.t;
  p : float;
  histogram : Histogram.t;
}

let context ?(mode = Random_gate.Analytic) ?(mapping = Rg_correlation.Exact)
    ?p ~chars ~corr ~histogram () =
  let p =
    match p with
    | Some p -> p
    | None ->
      Signal_prob.maximizing_p
        ~mode:(match mode with Random_gate.Analytic -> Signal_prob.Analytic
                             | Random_gate.Reference -> Signal_prob.Reference)
        chars ~weights:(Histogram.to_array histogram)
  in
  let rg = Random_gate.create ~mode ~chars ~histogram ~p () in
  let rgcorr = Rg_correlation.create ~mapping ~chars ~rg ~p () in
  { corr; rg; rgcorr; p; histogram }

(* For callers that obtained the correlation structure elsewhere (the
   batch engine rebuilds it from cached tables): same invariants as
   [context], with the tabulation step skipped. *)
let context_with ~corr ~rgcorr ~histogram ~p () =
  { corr; rg = Rg_correlation.rg rgcorr; rgcorr; p; histogram }

let signal_p ctx = ctx.p
let random_gate ctx = ctx.rg
let correlation ctx = ctx.rgcorr

type result = {
  mean : float;
  variance : float;
  std : float;
  method_used : string;
  n : int;
  vt_mean_factor : float;
}

let finish ~with_vt ~method_used ~n (mean, variance) =
  let vt_mean_factor = Vt_correction.mean_factor () in
  let mean = if with_vt then mean *. vt_mean_factor else mean in
  { mean; variance; std = sqrt (Float.max 0.0 variance); method_used; n;
    vt_mean_factor }

let run ?lin_memo ?(method_ = Auto) ?(with_vt = false) ctx (spec : spec) =
  if spec.n <= 0 then invalid_arg "Estimate.run: need a positive gate count";
  (* Integer gate counts round the histogram, so allow small drift; a
     gross mismatch means the caller built the context for another mix. *)
  if Histogram.distance_l1 ctx.histogram spec.histogram > 0.1 then
    invalid_arg "Estimate.run: spec histogram differs from the context's";
  let polar_ok =
    Estimator_integral.polar_applicable ~corr:ctx.corr ~width:spec.width
      ~height:spec.height
  in
  let method_ =
    match method_ with
    | Auto -> if spec.n <= 2000 then Linear else if polar_ok then Integral_polar else Integral_2d
    | m -> m
  in
  match method_ with
  | Auto -> assert false
  | Linear ->
    let layout = Layout.of_dims ~n:spec.n ~width:spec.width ~height:spec.height in
    let r =
      Estimator_linear.estimate ?memo:lin_memo ~corr:ctx.corr
        ~rgcorr:ctx.rgcorr ~layout ()
    in
    finish ~with_vt ~method_used:"linear (Eq. 17)" ~n:spec.n
      (r.Estimator_linear.mean, r.Estimator_linear.variance)
  | Integral_2d ->
    let r =
      Estimator_integral.rect_2d ~corr:ctx.corr ~rgcorr:ctx.rgcorr ~n:spec.n
        ~width:spec.width ~height:spec.height ()
    in
    finish ~with_vt ~method_used:"2-D integral (Eq. 20)" ~n:spec.n
      (r.Estimator_integral.mean, r.Estimator_integral.variance)
  | Integral_polar ->
    let r =
      Estimator_integral.polar ~corr:ctx.corr ~rgcorr:ctx.rgcorr ~n:spec.n
        ~width:spec.width ~height:spec.height ()
    in
    finish ~with_vt ~method_used:"polar integral (Eqs. 25-26)" ~n:spec.n
      (r.Estimator_integral.mean, r.Estimator_integral.variance)

let run_result ?lin_memo ?method_ ?with_vt ctx spec =
  Rgleak_num.Guard.protect (fun () -> run ?lin_memo ?method_ ?with_vt ctx spec)

let early ?mode ?mapping ?p ?method_ ?with_vt ~chars ~corr (spec : spec) =
  let ctx = context ?mode ?mapping ?p ~chars ~corr ~histogram:spec.histogram () in
  run ?method_ ?with_vt ctx spec

let late ?mode ?mapping ?p ?method_ ?with_vt ~chars ~corr placed =
  early ?mode ?mapping ?p ?method_ ?with_vt ~chars ~corr (spec_of_placed placed)

let true_leakage ?mode ?mapping ?p ?jobs ~chars ~corr placed =
  let spec = spec_of_placed placed in
  let ctx = context ?mode ?mapping ?p ~chars ~corr ~histogram:spec.histogram () in
  let r = Estimator_exact.estimate ?jobs ~corr ~rgcorr:ctx.rgcorr placed in
  {
    mean = r.Estimator_exact.mean;
    variance = r.Estimator_exact.variance;
    std = r.Estimator_exact.std;
    method_used = "exact pairwise (O(n^2))";
    n = spec.n;
    vt_mean_factor = Vt_correction.mean_factor ();
  }

let early_result ?mode ?mapping ?p ?method_ ?with_vt ~chars ~corr spec =
  Rgleak_num.Guard.protect (fun () ->
      early ?mode ?mapping ?p ?method_ ?with_vt ~chars ~corr spec)

(* Calibrated on the Fig. 6 convergence run: 2.0% at n = 10^4, 1/sqrt(n). *)
let finite_size_error_bound ~n =
  if n <= 0 then invalid_arg "Estimate.finite_size_error_bound: positive n";
  0.02 /. sqrt (float_of_int n /. 10_000.0)

let pp_result fmt r =
  Format.fprintf fmt "n=%d mean=%.4g nA std=%.4g nA (%.2f%%) via %s" r.n r.mean
    r.std
    (if r.mean <> 0.0 then 100.0 *. r.std /. r.mean else 0.0)
    r.method_used
