(** The O(n) linear-time RG estimator (§3.1, Eqs. 16–17).

    The O(n²) double sum over site pairs collapses to a sum over the
    distinct offset vectors of the rectangular array, each weighted by
    its occurrence count.  With the generalized occurrence count of
    {!Rgleak_circuit.Layout.occurrences} the transformation stays exact
    for arbitrary gate counts (partial last row). *)

type result = { mean : float; variance : float; std : float }

val estimate :
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  layout:Rgleak_circuit.Layout.t ->
  unit ->
  result
(** Mean is n·μ_{X_I} (Eq. 13); variance is Eq. 17 with the diagonal
    offset contributing n·σ²_{X_I} (Eq. 11).  Raises
    [Invalid_argument] on malformed inputs and
    {!Rgleak_num.Guard.Error} ([Numeric]) if a non-finite moment
    reaches the estimator boundary. *)

val estimate_result :
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  layout:Rgleak_circuit.Layout.t ->
  unit ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising entry point: {!estimate} under
    {!Rgleak_num.Guard.protect}. *)
