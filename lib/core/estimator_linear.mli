(** The O(n) linear-time RG estimator (§3.1, Eqs. 16–17).

    The O(n²) double sum over site pairs collapses to a sum over the
    distinct offset vectors of the rectangular array, each weighted by
    its occurrence count.  With the generalized occurrence count of
    {!Rgleak_circuit.Layout.occurrences} the transformation stays exact
    for arbitrary gate counts (partial last row). *)

type result = { mean : float; variance : float; std : float }

(** {2 F memo}

    The per-offset F values are a pure function of (layout shape,
    correlation model, RG correlation structure).  A {!memo} makes that
    table a first-class value so callers can reuse it across estimates
    of the same scenario — and the batch engine can persist it in the
    content-addressed cache.  A memo pre-filled from a previous run
    replays the {e stored} values, so cached and uncached estimates are
    bit-identical. *)

type memo

val memo_create : rows:int -> cols:int -> memo
(** An empty memo for a [rows × cols] site grid (see
    {!Rgleak_circuit.Layout.rows}); {!estimate} fills it as it runs.
    Raises [Invalid_argument] on non-positive dimensions. *)

val memo_shape : memo -> int * int
(** [(rows, cols)] the memo was created for. *)

val memo_to_list : memo -> (int * float) list
(** Filled entries as [(offset index, F value)] in increasing index
    order — the offset index of [(di, dj)] is [|dj| · cols + |di|].
    Serialization order is deterministic. *)

val memo_set : memo -> idx:int -> value:float -> unit
(** Restores one entry (marks it filled).  Raises [Invalid_argument]
    when [idx] is outside the memo's shape. *)

val estimate :
  ?memo:memo ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  layout:Rgleak_circuit.Layout.t ->
  unit ->
  result
(** Mean is n·μ_{X_I} (Eq. 13); variance is Eq. 17 with the diagonal
    offset contributing n·σ²_{X_I} (Eq. 11).  [memo], when given, must
    have the layout's [(rows, cols)] shape ([Invalid_argument]
    otherwise): pre-filled entries are reused verbatim and missing ones
    are computed and recorded into it.  Raises [Invalid_argument] on
    malformed inputs and {!Rgleak_num.Guard.Error} ([Numeric]) if a
    non-finite moment reaches the estimator boundary. *)

val estimate_result :
  ?memo:memo ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  layout:Rgleak_circuit.Layout.t ->
  unit ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising entry point: {!estimate} under
    {!Rgleak_num.Guard.protect}. *)

val offdiag_sum :
  ?memo:memo ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  layout:Rgleak_circuit.Layout.t ->
  unit ->
  float
(** The bare off-diagonal covariance sum Σ_{(di,dj)≠0} occ·F(ρ_L(d))
    — {!estimate}'s variance without the diagonal n·σ² term, for unit
    per-site leakage scale.  The delta estimator computes this once
    and rescales it per swap in O(1) (per-cell scales enter the
    homogeneous offset sum only through the mean scale).  Same memo
    semantics and fault site (["linear.f"]) as {!estimate}; same fixed
    fold order, so the value is bit-stable across calls and memo
    warmth. *)
