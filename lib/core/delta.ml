open Rgleak_num
open Rgleak_circuit
module Obs = Rgleak_obs.Obs

let () = Obs.declare_hist ~owner:"delta" "delta.swap_s"

type tier = { mean : float; variance : float; std : float }

type result = { exact : tier; linear : tier; integral : tier }

let n_flavors = Array.length Vt_correction.all_flavors

(* Everything invariant under flavor swaps: the staged kernel buffers,
   per-type moments, the flavor scale table, and the scale-free
   baselines of the linear and integral tiers. *)
type shared = {
  staged : Estimator_exact.staged;
  mu_t : float array;  (** per dense type: mean leakage at SVT *)
  mvar_t : float array;  (** per dense type: mixture variance at SVT *)
  fscale : float array;  (** per flavor index: leakage scale *)
  rg_mu : float;
  rg_var : float;
  offdiag_lin : float;  (** linear tier off-diagonal sum at unit scale *)
  int_mean0 : float;  (** integral tier mean at unit scale *)
  int_var0 : float;  (** integral tier variance at unit scale *)
  self0 : float;  (** diagonal n·σ² term *)
}

(* Immutable snapshot: every swap copies the mutable pieces (O(n)),
   so old states remain valid — the revert/equivalence battery walks
   arbitrary state DAGs. *)
type state = {
  sh : shared;
  flavors : int array;  (** per instance (original order): flavor index *)
  counts : int array;  (** [ty * n_flavors + f] population counts *)
  scale : Pair_kernel.f64;  (** per sorted kernel row: leakage scale *)
  acc : Xsum.t;  (** exact Σ_{a<b} s_a s_b cov_ab *)
}

let copy_f64 (a : Pair_kernel.f64) =
  let n = Bigarray.Array1.dim a in
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.blit a b;
  b

let create ?distance_points ?cov ?jobs ?memo ?(integral_order = 96) ?flavors
    ~corr ~rgcorr placed =
  Obs.span "delta.create" @@ fun () ->
  let staged =
    Estimator_exact.stage_buffers ?distance_points ?cov ~corr ~rgcorr placed
  in
  let n = staged.Estimator_exact.sg_n in
  let nu = staged.Estimator_exact.sg_nu in
  let used = staged.Estimator_exact.sg_used in
  let cell_ty = staged.Estimator_exact.sg_cell_ty in
  let perm = staged.Estimator_exact.sg_perm in
  let rg = Rg_correlation.rg rgcorr in
  let svt = Vt_correction.flavor_index Vt_correction.Svt in
  let flavors =
    match flavors with
    | None -> Array.make n svt
    | Some fs ->
      if Array.length fs <> n then
        invalid_arg "Delta.create: flavor array length mismatch";
      Array.map Vt_correction.flavor_index fs
  in
  let fscale = Array.map Vt_correction.leakage_scale Vt_correction.all_flavors in
  let mu_t = Array.map (fun ci -> Random_gate.mean_of_cell rg ci) used in
  let mvar_t =
    Array.map (fun ci -> Random_gate.mixture_variance_of_cell rg ci) used
  in
  let counts = Array.make (nu * n_flavors) 0 in
  let scale = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    let f = flavors.(i) in
    let slot = (cell_ty.(i) * n_flavors) + f in
    counts.(slot) <- counts.(slot) + 1;
    Bigarray.Array1.unsafe_set scale perm.(i) fscale.(f)
  done;
  let acc =
    Obs.span "delta.pair_loop" (fun () ->
        Parallel.using ?jobs (fun pool ->
            Parallel.triangle_band_reduce ~label:"delta.band" pool ~n
              ~init:Xsum.create
              ~band:(fun acc ~lo ~hi ->
                Pair_kernel.acc_band staged.Estimator_exact.sg_buffers ~scale
                  ~acc ~lo ~hi;
                acc)
              ~combine:(fun a b ->
                Xsum.merge ~into:a b;
                a)))
  in
  if Obs.enabled () then Obs.count "exact.pairs" (n * (n - 1) / 2);
  let layout = placed.Placer.layout in
  let offdiag_lin = Estimator_linear.offdiag_sum ?memo ~corr ~rgcorr ~layout () in
  let int0 =
    Estimator_integral.rect_2d ~order:integral_order ~corr ~rgcorr ~n
      ~width:(Layout.width layout) ~height:(Layout.height layout) ()
  in
  let sh =
    {
      staged;
      mu_t;
      mvar_t;
      fscale;
      rg_mu = rg.Random_gate.mu;
      rg_var = rg.Random_gate.variance;
      offdiag_lin;
      int_mean0 = int0.Estimator_integral.mean;
      int_var0 = int0.Estimator_integral.variance;
      self0 = Estimator_integral.self_variance ~rgcorr ~n;
    }
  in
  { sh; flavors; counts; scale; acc }

let tier mean variance =
  let mean = Guard.check_finite ~site:"delta" ~name:"mean" mean in
  let variance = Guard.check_finite ~site:"delta" ~name:"variance" variance in
  { mean; variance; std = sqrt (Float.max 0.0 variance) }

(* Recombination: every tier is a pure function of (shared baseline,
   counts, exact accumulator), evaluated in one fixed (type asc,
   flavor asc) loop order — so equal flavor assignments yield equal
   bits no matter how the state was reached. *)
let result st =
  let sh = st.sh in
  let nu = sh.staged.Estimator_exact.sg_nu in
  let nf = float_of_int sh.staged.Estimator_exact.sg_n in
  let msum = ref 0.0
  and vsum = ref 0.0
  and s1 = ref 0.0
  and s2 = ref 0.0 in
  for t = 0 to nu - 1 do
    for f = 0 to n_flavors - 1 do
      let c = st.counts.((t * n_flavors) + f) in
      if c > 0 then begin
        let cf = float_of_int c and s = sh.fscale.(f) in
        s1 := !s1 +. (cf *. s);
        s2 := !s2 +. (cf *. (s *. s));
        msum := !msum +. (cf *. (s *. sh.mu_t.(t)));
        vsum := !vsum +. (cf *. (s *. s *. sh.mvar_t.(t)))
      end
    done
  done;
  let pair2 =
    Guard.Fault.corrupt_nan "delta" (2.0 *. Xsum.value st.acc)
  in
  let exact = tier !msum (!vsum +. pair2) in
  let sbar = !s1 /. nf and s2bar = !s2 /. nf in
  let linear =
    tier (!s1 *. sh.rg_mu)
      ((!s2 *. sh.rg_var) +. (sbar *. sbar *. sh.offdiag_lin))
  in
  (* At the all-SVT state sbar = s2bar = 1 exactly, so this reproduces
     the continuum estimator bit for bit; heterogeneous scales weight
     the diagonal by Σs²/n and the off-diagonal continuum by (Σs/n)². *)
  let integral =
    tier (sbar *. sh.int_mean0)
      ((sbar *. sbar *. sh.int_var0)
      +. ((s2bar -. (sbar *. sbar)) *. sh.self0))
  in
  { exact; linear; integral }

let apply_swap st ~cell ~flavor =
  Obs.span "delta.swap" @@ fun () ->
  let track = Obs.enabled () in
  let t0 = if track then Obs.now_ns () else 0L in
  let sh = st.sh in
  let n = sh.staged.Estimator_exact.sg_n in
  if cell < 0 || cell >= n then
    invalid_arg "Delta.apply_swap: cell out of range";
  let fnew = Vt_correction.flavor_index flavor in
  let fold = st.flavors.(cell) in
  let ty = sh.staged.Estimator_exact.sg_cell_ty.(cell) in
  let row = sh.staged.Estimator_exact.sg_perm.(cell) in
  let s_old = sh.fscale.(fold) and s_new = sh.fscale.(fnew) in
  let flavors = Array.copy st.flavors in
  let counts = Array.copy st.counts in
  let scale = copy_f64 st.scale in
  let acc = Xsum.copy st.acc in
  let buffers = sh.staged.Estimator_exact.sg_buffers in
  (* Retract the row at the old scale, re-add at the new one.  Both
     passes produce the same per-pair term doubles as a cold band pass
     (symmetric distances and tables, commutative multiply; the sign
     flip is exact), so the accumulator lands on exactly the limbs a
     cold build of the new assignment would produce. *)
  Pair_kernel.acc_row buffers ~scale ~acc ~row ~srow:(-.s_old);
  Bigarray.Array1.set scale row s_new;
  Pair_kernel.acc_row buffers ~scale ~acc ~row ~srow:s_new;
  flavors.(cell) <- fnew;
  counts.((ty * n_flavors) + fold) <- counts.((ty * n_flavors) + fold) - 1;
  counts.((ty * n_flavors) + fnew) <- counts.((ty * n_flavors) + fnew) + 1;
  let st' = { st with flavors; counts; scale; acc } in
  let r = result st' in
  if track then begin
    Obs.count "delta.swaps" 1;
    Obs.count "exact.pairs" (2 * (n - 1));
    Obs.hist_record "delta.swap_s"
      (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9)
  end;
  (st', r)

let n st = st.sh.staged.Estimator_exact.sg_n

let flavor_of st i =
  if i < 0 || i >= n st then invalid_arg "Delta.flavor_of: cell out of range";
  Vt_correction.all_flavors.(st.flavors.(i))

let flavors st = Array.map (fun f -> Vt_correction.all_flavors.(f)) st.flavors

let mean_delta st ~cell ~flavor =
  if cell < 0 || cell >= n st then
    invalid_arg "Delta.mean_delta: cell out of range";
  let sh = st.sh in
  let ty = sh.staged.Estimator_exact.sg_cell_ty.(cell) in
  let s_old = sh.fscale.(st.flavors.(cell)) in
  let s_new = sh.fscale.(Vt_correction.flavor_index flavor) in
  (s_new -. s_old) *. sh.mu_t.(ty)

let cell_mean st i =
  if i < 0 || i >= n st then invalid_arg "Delta.cell_mean: cell out of range";
  let sh = st.sh in
  sh.fscale.(st.flavors.(i)) *. sh.mu_t.(sh.staged.Estimator_exact.sg_cell_ty.(i))
