open Rgleak_cells
open Rgleak_process
module Obs = Rgleak_obs.Obs

type mapping = Exact | Simplified

type t = {
  mapping : mapping;
  rg : Random_gate.t;
  points : int;
  step : float;
  f_table : float array;
  (* dense support-cell indexing for the pair tables *)
  support_index : int array; (* library cell index -> dense index or -1 *)
  support_cells : int array;
  pair_tables : float array array; (* [si * ns + sj] -> cov per grid point *)
  sigma_bar : float;
}

(* Per-(cell,state) data needed to evaluate pairwise covariances. *)
type comp = {
  weight_in_cell : float; (* P(state) *)
  alpha_weight : float; (* alpha_cell * P(state) *)
  k0 : float;
  beta : float;
  c : float;
  mu : float;
  sigma : float;
}

let uniform_eval ~step ~table rho =
  let points = Array.length table in
  let pos = rho /. step in
  let i = int_of_float (Float.floor pos) in
  if i < 0 then table.(0)
  else if i >= points - 1 then table.(points - 1)
  else begin
    let frac = pos -. float_of_int i in
    table.(i) +. (frac *. (table.(i + 1) -. table.(i)))
  end

(* Exact pairwise product mean, specialized from Mgf.pair_product_mean
   to precomputed centered parameters (hot loop of the tabulation). *)
let product_mean ~s2 ~rho a b =
  let m11 = 1.0 -. (2.0 *. s2 *. a.c) in
  let m22 = 1.0 -. (2.0 *. s2 *. b.c) in
  let det = (m11 *. m22) -. (4.0 *. s2 *. s2 *. rho *. rho *. a.c *. b.c) in
  if m11 <= 0.0 || m22 <= 0.0 || det <= 0.0 then raise Mgf.Divergent;
  let one_less = 1.0 -. (rho *. rho) in
  let quad =
    (a.beta *. a.beta *. (1.0 -. (2.0 *. s2 *. b.c *. one_less)))
    +. (2.0 *. rho *. a.beta *. b.beta)
    +. (b.beta *. b.beta *. (1.0 -. (2.0 *. s2 *. a.c *. one_less)))
  in
  exp (a.k0 +. b.k0 +. (s2 *. quad /. (2.0 *. det))) /. sqrt det

let pair_cov ~mapping ~s2 ~rho a b =
  match mapping with
  | Simplified -> rho *. a.sigma *. b.sigma
  | Exact -> product_mean ~s2 ~rho a b -. (a.mu *. b.mu)

let create ?(mapping = Exact) ?(points = 65) ~chars ~rg ~p () =
  if points < 2 then invalid_arg "Rg_correlation.create: need >= 2 grid points";
  let param = chars.(0).Characterize.param in
  let mu_l = param.Process_param.nominal in
  let sigma_l = Process_param.sigma_total param in
  let s2 = sigma_l *. sigma_l in
  let step = 1.0 /. float_of_int (points - 1) in
  (* Support cells in canonical order. *)
  let support_cells =
    Array.of_list
      (List.sort_uniq compare
         (Array.to_list
            (Array.map
               (fun (c : Random_gate.component) -> c.Random_gate.cell_index)
               rg.Random_gate.components)))
  in
  let ns = Array.length support_cells in
  let support_index = Array.make Library.size (-1) in
  Array.iteri (fun dense ci -> support_index.(ci) <- dense) support_cells;
  (* Per support cell: the component list with state probabilities. *)
  let moments mode (sc : Characterize.state_char) =
    match (mode : Random_gate.mode) with
    | Analytic ->
      (sc.Characterize.mu_analytic, sc.Characterize.sigma_analytic)
    | Reference -> (sc.Characterize.mu_ref, sc.Characterize.sigma_ref)
  in
  let comps_of_cell ci =
    let ch = chars.(ci) in
    let num_inputs = ch.Characterize.cell.Cell.num_inputs in
    let probs = Signal_prob.state_probabilities ~num_inputs ~p in
    let alpha = rg.Random_gate.components
                |> Array.to_list
                |> List.fold_left
                     (fun acc (c : Random_gate.component) ->
                       if c.Random_gate.cell_index = ci then
                         acc +. c.Random_gate.weight
                       else acc)
                     0.0
    in
    let comps =
      Array.to_list probs
      |> List.mapi (fun state_index prob ->
             if prob <= 0.0 then None
             else begin
               let sc = ch.Characterize.states.(state_index) in
               let k0, beta = Mgf.centered sc.Characterize.fit ~mu:mu_l in
               let mu, sigma = moments rg.Random_gate.mode sc in
               Some
                 {
                   weight_in_cell = prob;
                   alpha_weight = alpha *. prob;
                   k0;
                   beta;
                   c = sc.Characterize.fit.Mgf.c;
                   mu;
                   sigma;
                 }
             end)
      |> List.filter_map Fun.id
    in
    Array.of_list comps
  in
  let cell_comps = Array.map comps_of_cell support_cells in
  (* Pair tables: state-probability-weighted covariance per cell pair. *)
  let pair_tables =
    Array.init (ns * ns) (fun idx ->
        let si = idx / ns and sj = idx mod ns in
        if sj < si then [||] (* filled from the symmetric entry below *)
        else begin
          let ca = cell_comps.(si) and cb = cell_comps.(sj) in
          Array.init points (fun k ->
              let rho = float_of_int k *. step in
              let acc = ref 0.0 in
              Array.iter
                (fun a ->
                  Array.iter
                    (fun b ->
                      acc :=
                        !acc
                        +. (a.weight_in_cell *. b.weight_in_cell
                           *. pair_cov ~mapping ~s2 ~rho a b))
                    cb)
                ca;
              !acc)
        end)
  in
  for si = 0 to ns - 1 do
    for sj = 0 to si - 1 do
      pair_tables.((si * ns) + sj) <- pair_tables.((sj * ns) + si)
    done
  done;
  (* F table: alpha-weighted aggregate over support cell pairs. *)
  let alphas =
    Array.map
      (fun comps -> Array.fold_left (fun acc c -> acc +. c.alpha_weight) 0.0 comps)
      cell_comps
  in
  let f_table =
    Array.init points (fun k ->
        let acc = ref 0.0 in
        for si = 0 to ns - 1 do
          for sj = 0 to ns - 1 do
            acc :=
              !acc
              +. (alphas.(si) *. alphas.(sj) *. pair_tables.((si * ns) + sj).(k))
          done
        done;
        !acc)
  in
  let sigma_bar =
    Array.fold_left
      (fun acc comps ->
        Array.fold_left (fun acc c -> acc +. (c.alpha_weight *. c.sigma)) acc comps)
      0.0 cell_comps
  in
  {
    mapping;
    rg;
    points;
    step;
    f_table;
    support_index;
    support_cells;
    pair_tables;
    sigma_bar;
  }

let mapping t = t.mapping
let rg t = t.rg

(* ---------- table export/import (for the content-addressed cache) ---------- *)

type tables = {
  t_mapping : mapping;
  t_points : int;
  t_support_cells : int array;
  t_f_table : float array;
  t_pair_tables : float array array;
  t_sigma_bar : float;
}

let tables t =
  {
    t_mapping = t.mapping;
    t_points = t.points;
    t_support_cells = Array.copy t.support_cells;
    t_f_table = Array.copy t.f_table;
    t_pair_tables = Array.map Array.copy t.pair_tables;
    t_sigma_bar = t.sigma_bar;
  }

let of_tables ~rg (tb : tables) =
  let ns = Array.length tb.t_support_cells in
  if tb.t_points < 2 then
    invalid_arg "Rg_correlation.of_tables: need >= 2 grid points";
  if Array.length tb.t_f_table <> tb.t_points then
    invalid_arg "Rg_correlation.of_tables: F table length mismatch";
  if Array.length tb.t_pair_tables <> ns * ns then
    invalid_arg "Rg_correlation.of_tables: pair table count mismatch";
  Array.iter
    (fun table ->
      if Array.length table <> tb.t_points then
        invalid_arg "Rg_correlation.of_tables: pair table length mismatch")
    tb.t_pair_tables;
  let support_index = Array.make Library.size (-1) in
  Array.iteri
    (fun dense ci ->
      if ci < 0 || ci >= Library.size then
        invalid_arg "Rg_correlation.of_tables: support cell outside the library";
      support_index.(ci) <- dense)
    tb.t_support_cells;
  {
    mapping = tb.t_mapping;
    rg;
    points = tb.t_points;
    step = 1.0 /. float_of_int (tb.t_points - 1);
    f_table = Array.copy tb.t_f_table;
    support_index;
    support_cells = Array.copy tb.t_support_cells;
    pair_tables = Array.map Array.copy tb.t_pair_tables;
    sigma_bar = tb.t_sigma_bar;
  }

(* Content fingerprint of the correlation structure, for cache keys:
   every table the estimators read, rendered with exact float bits so
   any numerical change (library, process params, grid resolution)
   changes the digest. *)
let table_fingerprint t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (match t.mapping with Exact -> "exact" | Simplified -> "simplified");
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int t.points);
  Array.iter (fun ci -> Buffer.add_string b ("," ^ string_of_int ci))
    t.support_cells;
  let add_f v = Buffer.add_int64_le b (Int64.bits_of_float v) in
  add_f t.sigma_bar;
  Array.iter add_f t.f_table;
  Array.iter (fun tbl -> Array.iter add_f tbl) t.pair_tables;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))

let f t ~rho_l =
  if not (rho_l >= 0.0 && rho_l <= 1.0) then
    invalid_arg "Rg_correlation.f: rho out of [0,1]";
  Obs.count "rgcorr.f_evals" 1;
  uniform_eval ~step:t.step ~table:t.f_table rho_l

let rho_rg t ~rho_l =
  let v = t.rg.Random_gate.variance in
  if v = 0.0 then 0.0 else f t ~rho_l /. v

let in_support t ci =
  ci >= 0 && ci < Array.length t.support_index && t.support_index.(ci) >= 0

let cell_pair_covariance t ~ci ~cj ~rho_l =
  let ns = Array.length t.support_cells in
  let si = t.support_index.(ci) and sj = t.support_index.(cj) in
  if si < 0 || sj < 0 then
    invalid_arg "Rg_correlation.cell_pair_covariance: cell outside support";
  Obs.count "rgcorr.pair_cov_evals" 1;
  uniform_eval ~step:t.step ~table:t.pair_tables.((si * ns) + sj) rho_l

let sigma_bar t = t.sigma_bar
let support_size t = Array.length t.support_cells

let support_dense t ci =
  if ci < 0 || ci >= Array.length t.support_index then -1
  else t.support_index.(ci)

let binned_pair_tables t ~used ~distance_points ~dstep ~rho_of_d =
  if distance_points < 2 then
    invalid_arg "Rg_correlation.binned_pair_tables: need >= 2 distance points";
  let nu = Array.length used in
  let tri = Rgleak_num.Parallel.tri_size nu in
  let cov =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
      (Stdlib.max 1 (tri * distance_points))
  in
  (* Same traversal (ti <= tj, k ascending), evaluator and telemetry as
     the historical per-estimate cov_tri build: the packed bigarray is a
     bit-for-bit relayout, not a numerical change. *)
  for ti = 0 to nu - 1 do
    for tj = ti to nu - 1 do
      let off =
        Rgleak_num.Parallel.tri_index ~n:nu ~i:ti ~j:tj * distance_points
      in
      for k = 0 to distance_points - 1 do
        let d = float_of_int k *. dstep in
        let rho_l = rho_of_d d in
        Bigarray.Array1.unsafe_set cov (off + k)
          (cell_pair_covariance t ~ci:used.(ti) ~cj:used.(tj) ~rho_l)
      done
    done
  done;
  cov

type cross = { cross_step : float; cross_table : float array }

(* A Random_gate.component carries everything the pairwise covariance
   needs: weight = alpha * P(state), moments and the fitted triplet. *)
let comp_of_component mu_l (c : Random_gate.component) =
  let k0, beta = Mgf.centered c.Random_gate.triplet ~mu:mu_l in
  {
    weight_in_cell = 0.0;
    alpha_weight = c.Random_gate.weight;
    k0;
    beta;
    c = c.Random_gate.triplet.Mgf.c;
    mu = c.Random_gate.mu;
    sigma = c.Random_gate.sigma;
  }

let create_cross ?(mapping = Exact) ?(points = 65) ~rg_a ~rg_b () =
  if
    rg_a.Random_gate.mu_l <> rg_b.Random_gate.mu_l
    || rg_a.Random_gate.sigma_l <> rg_b.Random_gate.sigma_l
  then
    invalid_arg
      "Rg_correlation.create_cross: RGs built on different length statistics";
  let mu_l = rg_a.Random_gate.mu_l in
  let s2 = rg_a.Random_gate.sigma_l *. rg_a.Random_gate.sigma_l in
  let comps_a = Array.map (comp_of_component mu_l) rg_a.Random_gate.components in
  let comps_b = Array.map (comp_of_component mu_l) rg_b.Random_gate.components in
  let step = 1.0 /. float_of_int (points - 1) in
  let cross_table =
    Array.init points (fun k ->
        let rho = float_of_int k *. step in
        let acc = ref 0.0 in
        Array.iter
          (fun a ->
            Array.iter
              (fun b ->
                acc :=
                  !acc
                  +. (a.alpha_weight *. b.alpha_weight
                     *. pair_cov ~mapping ~s2 ~rho a b))
              comps_b)
          comps_a;
        !acc)
  in
  { cross_step = step; cross_table }

let f_cross t ~rho_l =
  if not (rho_l >= 0.0 && rho_l <= 1.0) then
    invalid_arg "Rg_correlation.f_cross: rho out of [0,1]";
  uniform_eval ~step:t.cross_step ~table:t.cross_table rho_l
