(** Greedy multi-Vt leakage optimizer on the delta estimator.

    The classic post-synthesis flow: cells start on the fast, leaky
    flavor (LVT) and are downgraded toward SVT/HVT to cut leakage,
    spending a timing-slack proxy budget — Σ over applied moves of
    [delay_factor target − delay_factor current]
    ({!Vt_correction.delay_factor} units).  Each candidate move's
    leakage gain is the O(1) {!Delta.mean_delta}; gains are additive
    across cells (the mean is linear in per-cell scales), so a static
    gain/cost-density ranking is optimal within the greedy family and
    every applied move strictly decreases the mean — the monotone
    descent the tests assert.  Each applied move re-estimates through
    {!Delta.apply_swap} (O(n)), so the whole run is O(swaps · n), not
    O(swaps · n²).

    Determinism: candidates are ordered by (density desc, gain desc,
    cell asc, flavor index desc) — a total order — so the swap
    sequence and final report are pure functions of (state, budget),
    independent of the job count.

    Typed diagnostics ({!Rgleak_num.Guard.Error} with
    [Invalid_input]): non-positive/non-finite budget; an initial
    assignment with no downgradable cell (empty candidate set).
    Numeric faults injected at site ["delta"] surface through
    {!Delta.result} during the run (exit code 3 at the CLI).

    Telemetry: span [opt.run], counters [opt.swaps] /
    [opt.delta_calls] / [opt.candidates], histogram [opt.swap_s]
    (per-applied-move latency, including the delta update). *)

type move = {
  mv_cell : int;
  mv_from : Vt_correction.flavor;
  mv_to : Vt_correction.flavor;
  mv_gain : float;  (** exact-tier mean leakage reduction (> 0) *)
  mv_cost : float;  (** slack-proxy budget spent (> 0) *)
}

type report = {
  initial : Delta.result;  (** before any move *)
  final : Delta.result;  (** after the last applied move *)
  budget : float;
  spent : float;  (** Σ costs of applied moves, ≤ budget *)
  moves : move list;  (** in application order *)
  state : Delta.state;  (** final assignment *)
}

val run : budget:float -> Delta.state -> report
(** Greedy descent from the given state.  Stops when no remaining
    positive-gain move fits the remaining budget.  A run that applies
    zero moves because the budget cannot afford even the cheapest
    candidate reports [spent = 0] with empty [moves] — budget
    exhaustion is normal termination, but a budget that is
    non-positive or non-finite, and a state with {e no} candidate
    moves at all, raise [Invalid_input]. *)
