open Rgleak_num
open Rgleak_process
open Rgleak_circuit

type region = {
  label : string;
  histogram : Histogram.t;
  n : int;
  x : float;
  y : float;
  width : float;
  height : float;
}

let region ?(label = "region") ~histogram ~n ~x ~y ~width ~height () =
  if n <= 0 then invalid_arg "Multi_region.region: need a positive gate count";
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Multi_region.region: dimensions must be positive";
  { label; histogram; n; x; y; width; height }

let overlap_1d a0 a1 b0 b1 = Float.max 0.0 (Float.min a1 b1 -. Float.max a0 b0)

let overlap_area a b =
  overlap_1d a.x (a.x +. a.width) b.x (b.x +. b.width)
  *. overlap_1d a.y (a.y +. a.height) b.y (b.y +. b.height)

type result = {
  mean : float;
  variance : float;
  std : float;
  region_means : (string * float) array;
  cross_share : float;
}

(* Cross-region covariance:
     sum_{a in i, b in j} F_ij(rho(d_ab))
   ~ (n_i n_j / (A_i A_j)) * int over offset (dx, dy) of
     ox(dx) * oy(dy) * F_ij(rho(|(dx, dy)|))
   where ox(dx) is the length of the overlap of [xi, xi+wi] with
   [xj - dx, xj + wj - dx] (the interval-correlation kernel). *)
let cross_covariance ~order ~corr ~cross a b =
  let ox dx = overlap_1d a.x (a.x +. a.width) (b.x -. dx) (b.x +. b.width -. dx) in
  let oy dy = overlap_1d a.y (a.y +. a.height) (b.y -. dy) (b.y +. b.height -. dy) in
  let dx_lo = b.x -. (a.x +. a.width) and dx_hi = b.x +. b.width -. a.x in
  let dy_lo = b.y -. (a.y +. a.height) and dy_hi = b.y +. b.height -. a.y in
  let integrand dx dy =
    let w = ox dx *. oy dy in
    if w = 0.0 then 0.0
    else begin
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      w *. Rg_correlation.f_cross cross ~rho_l:(Corr_model.total corr d)
    end
  in
  let integral =
    Quadrature.gauss_legendre_2d ~order integrand ~x_lo:dx_lo ~x_hi:dx_hi
      ~y_lo:dy_lo ~y_hi:dy_hi
  in
  let area_a = a.width *. a.height and area_b = b.width *. b.height in
  float_of_int a.n *. float_of_int b.n /. (area_a *. area_b) *. integral

let estimate ?(mode = Random_gate.Analytic) ?(mapping = Rg_correlation.Exact)
    ?p ?(order = 64) ~chars ~corr regions =
  if regions = [] then invalid_arg "Multi_region.estimate: no regions";
  let rs = Array.of_list regions in
  let k = Array.length rs in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if overlap_area rs.(i) rs.(j) > 1e-9 then
        invalid_arg
          (Printf.sprintf "Multi_region.estimate: regions %s and %s overlap"
             rs.(i).label rs.(j).label)
    done
  done;
  (* Per-region contexts share the characterization; signal probability
     defaults to each region's own conservative setting. *)
  let ctxs =
    Array.map
      (fun r ->
        Estimate.context ~mode ~mapping ?p ~chars ~corr ~histogram:r.histogram ())
      rs
  in
  let mean = ref 0.0 in
  let region_means =
    Array.mapi
      (fun i r ->
        let rg = Estimate.random_gate ctxs.(i) in
        let m = float_of_int r.n *. rg.Random_gate.mu in
        mean := !mean +. m;
        (r.label, m))
      rs
  in
  (* Within-region variance: the paper's Eq. 20 on each rectangle. *)
  let self_var = ref 0.0 in
  Array.iteri
    (fun i r ->
      let v =
        (Estimator_integral.rect_2d ~order ~corr
           ~rgcorr:(Estimate.correlation ctxs.(i))
           ~n:r.n ~width:r.width ~height:r.height ())
          .Estimator_integral.variance
      in
      self_var := !self_var +. v)
    rs;
  (* Cross-region covariances. *)
  let cross_var = ref 0.0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let cross =
        Rg_correlation.create_cross ~mapping
          ~rg_a:(Estimate.random_gate ctxs.(i))
          ~rg_b:(Estimate.random_gate ctxs.(j))
          ()
      in
      cross_var :=
        !cross_var +. (2.0 *. cross_covariance ~order ~corr ~cross rs.(i) rs.(j))
    done
  done;
  let variance = !self_var +. !cross_var in
  {
    mean = !mean;
    variance;
    std = sqrt (Float.max 0.0 variance);
    region_means;
    cross_share = (if variance > 0.0 then !cross_var /. variance else 0.0);
  }
