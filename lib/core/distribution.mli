(** Full-chip leakage distribution and yield analysis.

    The paper delivers the mean and variance of total leakage; a
    downstream user usually wants quantiles ("what leakage do 99 % of
    dies stay under?") and yield against a budget.  Because the
    die-to-die component multiplies every device's leakage by a shared
    lognormal-ish factor, the total is right-skewed; a lognormal matched
    to the estimated (mean, σ) — Wilkinson moment matching — captures
    that skew, while the normal approximation is kept for comparison.
    Both are validated against brute-force Monte Carlo in the test
    suite. *)

type shape = Normal | Lognormal

type t = private {
  mean : float;
  std : float;
  shape : shape;
  mu_ln : float;
      (** log-mean of the moment-matched lognormal (always computed,
          used only by the [Lognormal] shape) *)
  sigma_ln : float;  (** log-std of the moment-matched lognormal *)
}

val of_moments : ?shape:shape -> mean:float -> std:float -> unit -> t
(** Matches the distribution to the estimated moments.  Default shape is
    [Lognormal].  Requires positive mean and non-negative std. *)

val of_estimate : ?shape:shape -> Estimate.result -> t

val quantile : t -> float -> float
(** Leakage value not exceeded with the given probability (in (0,1)). *)

val cdf : t -> float -> float
val pdf : t -> float -> float

val exceedance : t -> budget:float -> float
(** [P(X > budget)] through {!Rgleak_num.Special.normal_sf}, so it
    keeps full relative accuracy in the far tail where
    [1. -. cdf t budget] cancels to zero. *)

val yield : t -> budget:float -> float
(** Fraction of dies with leakage at or below [budget]. *)

val budget_for_yield : t -> yield:float -> float
(** Smallest leakage budget achieving the target yield. *)

val pp : Format.formatter -> t -> unit
