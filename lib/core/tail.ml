open Rgleak_num
module Obs = Rgleak_obs.Obs

let () = Obs.declare_hist ~owner:"tail" "tail.weight"

(* Tail-risk estimation: P(total leakage > budget) and high quantiles
   from importance-sampled replicas.

   The replicas come from Mc_reference.sample_weighted_stream — a
   mean-shifted Gaussian proposal with exact per-replica log
   likelihood ratios — and every reduction here runs *sequentially in
   replica order* over the filled arrays, so the result is a pure
   function of (design, budget, shift, seed, count): bit-identical
   across --jobs and across cold/warm characterization caches. *)

type ci = { lo : float; hi : float }

type quantile = { level : float; value : float }

type result = {
  budget : float;  (* nA *)
  replicas : int;
  seed : int;
  delta : float;  (* uniform length shift of the proposal, nm *)
  shift_norm2 : float;  (* |θ|² of the whitened shift *)
  p_exceed : float;  (* IS estimate of P(leakage > budget) *)
  se : float;  (* delta-method standard error of p_exceed *)
  ci_delta : ci;  (* delta-method interval at the given confidence *)
  ci_wilson : ci;  (* Wilson interval on ESS-scaled pseudo-counts *)
  hits : int;  (* replicas with leakage > budget (under the proposal) *)
  hit_rate : float;  (* hits / replicas: ~0.5 when well calibrated *)
  ess : float;  (* (Σw)² / Σw² *)
  mean_weight : float;  (* Σw / n: ≈ 1 when the proposal is healthy *)
  max_weight : float;
  quantiles : quantile list;  (* leakage at p99/p999/p9999 *)
}

let default_quantile_levels = [ 0.99; 0.999; 0.9999 ]

(* Degeneracy thresholds.  A healthy calibrated shift keeps
   ESS/n ≈ exp(-|θ|²) with |θ|² a few units, i.e. ESS well above any
   handful; an ESS this small means the estimate is carried by a
   couple of replicas and its variance estimate is itself noise. *)
let min_ess = 8.0

let check_weights ~count ~sum_w ~sum_w2 ~max_w =
  if not (Float.is_finite sum_w && Float.is_finite sum_w2) then
    Guard.numeric ~site:"tail"
      (Printf.sprintf
         "importance weight blowup: non-finite weight sum over %d replicas \
          (max weight %g); the shift overwhelms the nominal density — use a \
          smaller --shift or let calibration pick it"
         count max_w);
  if not (sum_w > 0.0) then
    Guard.numeric ~site:"tail"
      (Printf.sprintf
         "importance weights collapsed to zero over %d replicas; the shift \
          is so large every likelihood ratio underflowed"
         count);
  let ess = sum_w *. sum_w /. sum_w2 in
  if ess < min_ess then
    Guard.numeric ~site:"tail"
      (Printf.sprintf
         "effective sample size collapsed: ESS %.2f of %d replicas (max \
          weight %g, weight sum %g); the proposal shift is too aggressive \
          for this replica budget"
         ess count max_w sum_w);
  ess

(* Weighted upper-tail quantile at level q (e.g. 0.999): the smallest
   sampled leakage x with estimated P(leakage > x) <= 1 - q.  Sorting
   is by (value, replica index) descending/ascending so ties break
   deterministically. *)
let weighted_quantiles ~values ~weights ~levels =
  let n = Array.length values in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let c = compare values.(j) values.(i) in
      if c <> 0 then c else compare i j)
    order;
  let nf = float_of_int n in
  List.map
    (fun level ->
      let tail_mass = 1.0 -. level in
      let cum = ref 0.0 in
      let x = ref values.(order.(n - 1)) in
      (try
         for k = 0 to n - 1 do
           let i = order.(k) in
           cum := !cum +. (weights.(i) /. nf);
           if !cum >= tail_mass then begin
             x := values.(i);
             raise Exit
           end
         done
       with Exit -> ());
      { level; value = !x })
    levels

let estimate ?jobs ?(confidence = 0.95)
    ?(quantile_levels = default_quantile_levels) ~mc ~budget ~shift ~seed
    ~replicas () =
  if replicas < 2 then
    Guard.invalid "Tail.estimate: need at least 2 replicas";
  if not (budget > 0.0 && Float.is_finite budget) then
    Guard.invalid "Tail.estimate: budget must be positive and finite";
  List.iter
    (fun q ->
      if not (q > 0.0 && q < 1.0) then
        Guard.invalid "Tail.estimate: quantile levels must be in (0,1)")
    quantile_levels;
  Obs.span "tail.estimate" @@ fun () ->
  let { Mc_reference.values; log_weights } =
    Mc_reference.sample_weighted_stream ?jobs mc ~shift ~seed ~count:replicas
  in
  (* Sequential reduction in replica order: exponentiate each log
     weight once, accumulate the weight moments and the exceedance
     sums, and feed the per-replica weight histogram (the Obs feed is
     replica-ordered too, so bucket counts are jobs-invariant). *)
  let n = replicas in
  let nf = float_of_int n in
  let weights = Array.make n 0.0 in
  let sum_w = ref 0.0
  and sum_w2 = ref 0.0
  and max_w = ref 0.0
  and hits = ref 0
  and sum_wi = ref 0.0
  and sum_w2i = ref 0.0 in
  let telemetry = Obs.enabled () in
  for i = 0 to n - 1 do
    let w = exp log_weights.(i) in
    weights.(i) <- w;
    sum_w := !sum_w +. w;
    sum_w2 := !sum_w2 +. (w *. w);
    if w > !max_w then max_w := w;
    if telemetry then Obs.hist_record "tail.weight" w;
    if values.(i) > budget then begin
      incr hits;
      sum_wi := !sum_wi +. w;
      sum_w2i := !sum_w2i +. (w *. w)
    end
  done;
  let ess = check_weights ~count:n ~sum_w:!sum_w ~sum_w2:!sum_w2 ~max_w:!max_w in
  let p_exceed = !sum_wi /. nf in
  (* Delta-method variance of the unnormalized IS mean:
     Var(p̂) = (E_q[w²·1] - p²) / n, estimated by plug-in. *)
  let var =
    Float.max 0.0 (((!sum_w2i /. nf) -. (p_exceed *. p_exceed)) /. nf)
  in
  let se = sqrt var in
  let z = Stats.z_of_confidence confidence in
  let ci_delta =
    {
      lo = Float.max 0.0 (p_exceed -. (z *. se));
      hi = Float.min 1.0 (p_exceed +. (z *. se));
    }
  in
  (* Wilson interval on ESS-scaled pseudo-counts: treat the estimate as
     p̂ successes out of ESS effective trials.  A heuristic companion
     to the delta-method interval — it stays inside [0,1] and keeps
     sane coverage when the raw hit count is small. *)
  let ci_wilson =
    let n_eff = Float.max 1.0 (Float.round ess) in
    let k =
      let k = int_of_float (Float.round (p_exceed *. n_eff)) in
      Int.max 0 (Int.min (int_of_float n_eff) k)
    in
    let lo, hi = Stats.wilson_interval ~hits:k ~count:(int_of_float n_eff) ~z in
    { lo; hi }
  in
  let quantiles =
    weighted_quantiles ~values ~weights ~levels:quantile_levels
  in
  if telemetry then begin
    Obs.gauge_max "tail.ess" ess;
    Obs.gauge_max "tail.max_weight" !max_w
  end;
  {
    budget;
    replicas = n;
    seed;
    delta = Rgleak_process.Variation.shift_delta shift;
    shift_norm2 = Rgleak_process.Variation.shift_norm2 shift;
    p_exceed;
    se;
    ci_delta;
    ci_wilson;
    hits = !hits;
    hit_rate = float_of_int !hits /. nf;
    ess;
    mean_weight = !sum_w /. nf;
    max_weight = !max_w;
    quantiles;
  }

let estimate_result ?jobs ?confidence ?quantile_levels ~mc ~budget ~shift
    ~seed ~replicas () =
  Guard.protect (fun () ->
      estimate ?jobs ?confidence ?quantile_levels ~mc ~budget ~shift ~seed
        ~replicas ())

let pp fmt r =
  Format.fprintf fmt
    "@[<v>P(leakage > %.6g nA) = %.4g (SE %.2g, %d/%d hits)@,\
     delta-method CI [%.4g, %.4g]  wilson CI [%.4g, %.4g]@,\
     shift %.4g nm (|theta|^2 %.3g)  ESS %.1f  mean w %.4g  max w %.3g@]"
    r.budget r.p_exceed r.se r.hits r.replicas r.ci_delta.lo r.ci_delta.hi
    r.ci_wilson.lo r.ci_wilson.hi r.delta r.shift_norm2 r.ess r.mean_weight
    r.max_weight
