open Rgleak_cells
open Rgleak_circuit

type mode = Analytic | Reference

type component = {
  cell_index : int;
  state_index : int;
  weight : float;
  mu : float;
  sigma : float;
  triplet : Mgf.triplet;
}

type t = {
  components : component array;
  mode : mode;
  mu_l : float;
  sigma_l : float;
  mu : float;
  second_moment : float;
  variance : float;
  cell_mu : float array;
  cell_mixture_variance : float array;
}

let state_moments mode (sc : Characterize.state_char) =
  match mode with
  | Analytic -> (sc.mu_analytic, sc.sigma_analytic)
  | Reference -> (sc.mu_ref, sc.sigma_ref)

let create ?(mode = Analytic) ~chars ~histogram ~p () =
  if Array.length chars <> Library.size then
    invalid_arg "Random_gate.create: expected a full-library characterization";
  let param = chars.(0).Characterize.param in
  let mu_l = param.Rgleak_process.Process_param.nominal in
  let sigma_l = Rgleak_process.Process_param.sigma_total param in
  let components = ref [] in
  let cell_mu = Array.make Library.size 0.0 in
  let cell_mixture_variance = Array.make Library.size 0.0 in
  let mu = ref 0.0 and second = ref 0.0 in
  Array.iteri
    (fun cell_index (ch : Characterize.cell_char) ->
      let num_inputs = ch.Characterize.cell.Cell.num_inputs in
      let probs = Signal_prob.state_probabilities ~num_inputs ~p in
      let alpha = Histogram.frequency histogram cell_index in
      (* Per-cell state mixture (always computed: the exact estimator
         needs it for cells in a netlist even if alpha would round to 0
         in another histogram). *)
      let cmu = ref 0.0 and csecond = ref 0.0 in
      Array.iteri
        (fun state_index prob ->
          let m, s = state_moments mode ch.Characterize.states.(state_index) in
          cmu := !cmu +. (prob *. m);
          csecond := !csecond +. (prob *. ((s *. s) +. (m *. m)));
          if alpha > 0.0 && prob > 0.0 then begin
            let weight = alpha *. prob in
            components :=
              {
                cell_index;
                state_index;
                weight;
                mu = m;
                sigma = s;
                triplet = ch.Characterize.states.(state_index).Characterize.fit;
              }
              :: !components;
            mu := !mu +. (weight *. m);
            second := !second +. (weight *. ((s *. s) +. (m *. m)))
          end)
        probs;
      cell_mu.(cell_index) <- !cmu;
      cell_mixture_variance.(cell_index) <-
        Float.max 0.0 (!csecond -. (!cmu *. !cmu)))
    chars;
  {
    components = Array.of_list (List.rev !components);
    mode;
    mu_l;
    sigma_l;
    mu = !mu;
    second_moment = !second;
    variance = Float.max 0.0 (!second -. (!mu *. !mu));
    cell_mu;
    cell_mixture_variance;
  }

let sigma t = sqrt t.variance
let num_components t = Array.length t.components
let mean_of_cell t i = t.cell_mu.(i)
let mixture_variance_of_cell t i = t.cell_mixture_variance.(i)
