(** The RG leakage covariance structure (Eqs. 9–11).

    For two random gates at distinct locations whose channel lengths
    have total correlation ρ_L, the covariance is

    [F(ρ_L) = Σ_m Σ_n w_m w_n σ_m σ_n f_{m,n}(ρ_L)]   (Eq. 10)

    over the expanded (cell, state) type space.  Two mappings f_{m,n}
    are supported: [Exact] uses the closed-form pairwise-lognormal
    covariance from the fitted triplets (§2.1.3), and [Simplified]
    applies the §3.1.2 assumption ρ_{m,n} = ρ_L (the only option in MC
    characterization mode, where no triplets exist).

    Everything is tabulated once on a uniform ρ grid; evaluation inside
    the estimators is a constant-time interpolation.  Per-library-cell
    pair covariances (state-probability weighted) are also tabulated for
    the exact O(n²) estimator. *)

type mapping = Exact | Simplified

type t

val create :
  ?mapping:mapping ->
  ?points:int ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  rg:Random_gate.t ->
  p:float ->
  unit ->
  t
(** Tabulates F and the per-cell-pair covariances over [points] (default
    65) correlation values in [\[0, 1\]].  Pair tables cover only the
    histogram's support cells.  [p] must match the signal probability
    the RG was built with. *)

val mapping : t -> mapping
val rg : t -> Random_gate.t

val f : t -> rho_l:float -> float
(** Covariance between two RG leakages at distinct sites whose length
    correlation is [rho_l] (the off-diagonal branch of Eq. 11). *)

val rho_rg : t -> rho_l:float -> float
(** RG leakage correlation: [f / σ²_{X_I}] (used in Eqs. 15–17). *)

val cell_pair_covariance : t -> ci:int -> cj:int -> rho_l:float -> float
(** State-weighted leakage covariance of two library cells (by canonical
    index) at the given length correlation.  Raises [Invalid_argument]
    for cells outside the histogram support. *)

val in_support : t -> int -> bool

val sigma_bar : t -> float
(** Σ w_m σ_m — the aggregate used by the simplified mapping. *)

val support_size : t -> int
(** Number of support cells (the dense index range of
    {!support_dense}). *)

val support_dense : t -> int -> int
(** [support_dense t ci] is the dense support index of library cell
    [ci], or [-1] when the cell is outside the support.  Built once per
    correlation structure (hence once per characterized library via the
    content-addressed cache) — estimators use it instead of rescanning
    the full library per call. *)

val binned_pair_tables :
  t ->
  used:int array ->
  distance_points:int ->
  dstep:float ->
  rho_of_d:(float -> float) ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Distance-binned covariance tables for the exact kernel, packed over
    the upper triangle of the [used] type pairs: entry
    [tri_index (ti, tj) * distance_points + k] holds
    [cell_pair_covariance ~ci:used.(ti) ~cj:used.(tj)
     ~rho_l:(rho_of_d (k * dstep))].  Evaluation order, values and
    telemetry ([rgcorr.pair_cov_evals]) are identical to calling
    {!cell_pair_covariance} directly in the same ti <= tj, ascending-k
    loop; only the memory layout is flat.  Raises [Invalid_argument]
    for cells outside the support or [distance_points < 2]. *)

(** {2 Table export/import}

    The tabulated structure (F table, per-cell-pair covariance tables)
    is the expensive part of {!create} and a pure function of the
    characterized library, cell mix, signal probability and mapping —
    exactly what the content-addressed cache keys on.  {!tables}
    exports it as plain arrays; {!of_tables} rebuilds a [t] around a
    freshly constructed {!Random_gate.t} (cheap) {e without}
    re-tabulating.  A round trip is bit-identical: [of_tables ~rg
    (tables t)] evaluates {!f} and {!cell_pair_covariance} to the same
    floats as [t]. *)

type tables = {
  t_mapping : mapping;
  t_points : int;
  t_support_cells : int array;  (** canonical library cell indices *)
  t_f_table : float array;  (** length [t_points] *)
  t_pair_tables : float array array;
      (** dense [si * ns + sj] indexing over support cells; each table
          has length [t_points] *)
  t_sigma_bar : float;
}

val tables : t -> tables
(** A deep copy of the tabulated structure. *)

val table_fingerprint : t -> string
(** A hex content digest of the tabulated structure (mapping, grid
    size, support cells, exact float bits of every table).  Two
    structures with equal fingerprints evaluate {!f} and
    {!cell_pair_covariance} identically, so the digest is a sound
    cache-key component for anything derived from the tables (e.g.
    the delta estimator's packed distance-binned covariance). *)

val of_tables : rg:Random_gate.t -> tables -> t
(** Rebuilds a correlation structure from exported tables.  [rg] must
    be the random gate the tables were built for (the cache key
    guarantees this; only shape invariants are checked here).  Raises
    [Invalid_argument] on malformed table shapes. *)

(** {2 Cross-RG covariance}

    For hierarchical (multi-region) estimation: the covariance between
    the leakages of two {e different} random gates — e.g. one per die
    region, each with its own cell mix — at locations with length
    correlation ρ_L.  Same Eq. 10 structure with the two weight sets. *)

type cross

val create_cross :
  ?mapping:mapping ->
  ?points:int ->
  rg_a:Random_gate.t ->
  rg_b:Random_gate.t ->
  unit ->
  cross
(** Both RGs must come from the same characterization (same length
    statistics); this is checked. *)

val f_cross : cross -> rho_l:float -> float
(** Covariance of the two RG leakages at length correlation [rho_l]. *)
