(** Brute-force Monte-Carlo simulation of full-chip leakage.

    Ground truth beneath the analytical estimators: each sample draws a
    complete die — one D2D offset, a spatially correlated WID
    channel-length field over the actual gate locations (via a Cholesky
    factor of the WID correlation matrix), and an input state per gate
    from the signal probabilities — and sums the per-gate leakage from
    the characterization tables.

    Preparation costs O(n³) for the factorization, so this is meant for
    validation-scale designs (a few thousand gates); the analytical
    estimators are the product, this is the oracle they are tested
    against. *)

type t
(** A prepared sampler for one placed design. *)

val prepare :
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  p:float ->
  Rgleak_circuit.Placer.placed ->
  t
(** Builds the correlated-field sampler for the design's gate locations.
    [p] is the signal probability used to draw input states.  Raises
    {!Rgleak_num.Guard.Error} ([Invalid_input]) on an empty (zero-gate)
    design — there is no leakage distribution to sample. *)

val gate_count : t -> int

val sample : t -> Rgleak_num.Rng.t -> float
(** One die's total leakage (nA). *)

val sample_many : t -> Rgleak_num.Rng.t -> count:int -> float array
(** [count] independent dies. *)

val moments : t -> Rgleak_num.Rng.t -> count:int -> float * float
(** (mean, std) over [count] sampled dies. *)

(** {2 Replica-parallel sampling}

    Each replica [i] draws from {!Rgleak_num.Rng.stream}[ ~seed i], so
    the sampled dies are a pure function of [(seed, count)] — running
    on 1 or 16 domains produces bit-identical results.  These are the
    forms the bench harness and large validation runs use. *)

val sample_stream : t -> seed:int -> int -> float
(** Total leakage of replica [i] under the given master seed. *)

val chunks_for : jobs:int -> count:int -> int
(** Pool-task count used by the replica fill: about four chunks per
    domain, never fewer than 16 replicas per chunk (and at least one
    chunk).  Exposed for the chunking tests. *)

val sample_many_stream : ?jobs:int -> t -> seed:int -> count:int -> float array
(** [count] replica dies, sampled across the domain pool ([jobs] as in
    {!Rgleak_num.Parallel.using}); slot [i] holds replica [i].  The
    fill is split into {!chunks_for} tasks — each writes disjoint
    slots, so the array is identical for every job count even though
    the decomposition follows the pool size. *)

val moments_stream : ?jobs:int -> t -> seed:int -> count:int -> float * float
(** (mean, std) over [count] replica dies: the {!sample_many_stream}
    array reduced sequentially in replica order, hence bit-identical
    for any job count.  [count] must be at least 2. *)

val fixed_state_sample : t -> Rgleak_num.Rng.t -> state_seed:int -> float
(** Like {!sample} but with the per-gate input states frozen by
    [state_seed] while the process variations vary — used to separate
    state randomness from process randomness in tests. *)
