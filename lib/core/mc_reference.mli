(** Brute-force Monte-Carlo simulation of full-chip leakage.

    Ground truth beneath the analytical estimators: each sample draws a
    complete die — one D2D offset, a spatially correlated WID
    channel-length field over the actual gate locations (via a Cholesky
    factor of the WID correlation matrix), and an input state per gate
    from the signal probabilities — and sums the per-gate leakage from
    the characterization tables.

    Preparation costs O(n³) for the factorization, so this is meant for
    validation-scale designs (a few thousand gates); the analytical
    estimators are the product, this is the oracle they are tested
    against. *)

type t
(** A prepared sampler for one placed design. *)

val prepare :
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  p:float ->
  Rgleak_circuit.Placer.placed ->
  t
(** Builds the correlated-field sampler for the design's gate locations.
    [p] is the signal probability used to draw input states.  Raises
    {!Rgleak_num.Guard.Error} ([Invalid_input]) on an empty (zero-gate)
    design — there is no leakage distribution to sample. *)

val gate_count : t -> int

val sample : t -> Rgleak_num.Rng.t -> float
(** One die's total leakage (nA). *)

val sample_many : t -> Rgleak_num.Rng.t -> count:int -> float array
(** [count] independent dies. *)

val moments : t -> Rgleak_num.Rng.t -> count:int -> float * float
(** (mean, std) over [count] sampled dies. *)

(** {2 Replica-parallel sampling}

    Each replica [i] draws from {!Rgleak_num.Rng.stream}[ ~seed i], so
    the sampled dies are a pure function of [(seed, count)] — running
    on 1 or 16 domains produces bit-identical results.  These are the
    forms the bench harness and large validation runs use. *)

val sample_stream : t -> seed:int -> int -> float
(** Total leakage of replica [i] under the given master seed. *)

val chunks_for : jobs:int -> count:int -> int
(** Pool-task count used by the replica fill: about four chunks per
    domain, never fewer than 16 replicas per chunk (and at least one
    chunk).  Exposed for the chunking tests. *)

val sample_many_stream : ?jobs:int -> t -> seed:int -> count:int -> float array
(** [count] replica dies, sampled across the domain pool ([jobs] as in
    {!Rgleak_num.Parallel.using}); slot [i] holds replica [i].  The
    fill is split into {!chunks_for} tasks — each writes disjoint
    slots, so the array is identical for every job count even though
    the decomposition follows the pool size. *)

val moments_stream : ?jobs:int -> t -> seed:int -> count:int -> float * float
(** (mean, std) over [count] replica dies: the {!sample_many_stream}
    array reduced sequentially in replica order, hence bit-identical
    for any job count.  [count] must be at least 2. *)

(** {2 Importance-sampled replicas}

    Tail probabilities P(leakage > budget) are rare events under the
    nominal measure; these entry points draw from a mean-shifted
    proposal (every gate's channel length moved by the same Δ, realized
    as a minimum-norm shift in the whitened Gaussian space — see
    {!Rgleak_process.Variation.uniform_shift}) and return the exact
    Gaussian log likelihood ratio per replica, so downstream reductions
    can reweight back to the nominal measure without bias. *)

val uniform_shift : t -> delta:float -> Rgleak_process.Variation.shift
(** The minimum-norm whitened shift moving every gate's length by
    [delta] (nm).  Propagates {!Rgleak_process.Variation.uniform_shift}
    errors. *)

val expected_at_uniform : t -> delta:float -> float
(** Expected full-chip leakage (nA) with every gate's length at
    nominal + [delta] and states weighted by their Bernoulli
    probabilities — the deterministic calibration objective. *)

val calibrate_shift : t -> budget:float -> float
(** The [delta] (nm) at which {!expected_at_uniform} equals [budget],
    found by Brent's method and clamped to ±5 σ_total so the
    characterization tables never extrapolate.  Sampling at this shift
    puts roughly half the proposal mass above the budget.  Raises
    [Invalid_argument] on a non-positive or non-finite budget. *)

val sample_shifted :
  t -> Rgleak_num.Rng.t -> shift:Rgleak_process.Variation.shift -> float * float
(** One die from the shifted proposal: [(total leakage, log weight)].
    States are drawn from the nominal signal probabilities (the shift
    tilts only the Gaussian field, so the likelihood ratio is purely
    Gaussian). *)

type weighted = {
  values : float array;  (** per-replica total leakage (nA) *)
  log_weights : float array;  (** per-replica log likelihood ratio *)
}

val sample_weighted_stream :
  ?jobs:int ->
  t ->
  shift:Rgleak_process.Variation.shift ->
  seed:int ->
  count:int ->
  weighted
(** [count] importance-sampled replicas with the same replica-stream /
    disjoint-slot-fill contract as {!sample_many_stream}: slot [i] is a
    pure function of [(seed, i)], so both arrays are bit-identical for
    any job count. *)

val fixed_state_sample : t -> Rgleak_num.Rng.t -> state_seed:int -> float
(** Like {!sample} but with the per-gate input states frozen by
    [state_seed] while the process variations vary — used to separate
    state randomness from process randomness in tests. *)
