(** Process/temperature corner analysis.

    Sign-off evaluates leakage at named corners: the statistical model
    handles the {e within-corner} variation (this paper's contribution),
    while corners shift the {e center} — the global channel-length bias
    a fab excursion or a skewed lot produces, and the junction
    temperature.  Each corner re-characterizes the library at the
    shifted nominal and re-runs the estimator, so a corner report is a
    table of (mean, σ, mean+3σ) per corner.

    Conventions: [l_shift_sigmas] moves the nominal channel length in
    units of the D2D σ (negative = shorter = leakier, the "fast"
    corner); the within-die statistics keep their magnitudes. *)

type corner = {
  name : string;
  l_shift_sigmas : float;  (** nominal L shift in units of σ_d2d *)
  temp_c : float;  (** junction temperature, °C *)
}

val typical : corner  (** TT, 25 °C *)

val standard_corners : corner list
(** TT@25, FF@125 (−3σ L, hot), SS@−40 (+3σ L, cold), TT@125 — the usual
    leakage sign-off set, worst case first. *)

type corner_result = {
  corner : corner;
  mean : float;
  std : float;
  p3sigma : float;  (** mean + 3σ *)
}

val analyze :
  ?corners:corner list ->
  ?l_points:int ->
  ?mc_samples:int ->
  ?p:float ->
  param:Rgleak_process.Process_param.t ->
  corr:Rgleak_process.Corr_model.t ->
  spec:Estimate.spec ->
  unit ->
  corner_result list
(** Characterizes the library at each corner (reduced defaults:
    [l_points] 49, [mc_samples] 500 — corners need moments, not MC
    studies) and estimates the design.  Results keep the input corner
    order. *)

val worst : corner_result list -> corner_result
(** The corner with the largest mean + 3σ. *)

val pp : Format.formatter -> corner_result list -> unit
