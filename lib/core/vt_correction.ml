open Rgleak_device
open Rgleak_process

let default_sigma_vt = Process_param.default_vt_rdf_sigma

let q_of ?(env = Mosfet.default_env) ?(n_swing = 1.4) () =
  n_swing *. env.Mosfet.v_thermal

let mean_factor ?(sigma_vt = default_sigma_vt) ?env ?n_swing () =
  let q = q_of ?env ?n_swing () in
  exp (sigma_vt *. sigma_vt /. (2.0 *. q *. q))

let per_gate_variance_multiplier ?(sigma_vt = default_sigma_vt) ?env ?n_swing () =
  let q = q_of ?env ?n_swing () in
  let s2q2 = sigma_vt *. sigma_vt /. (q *. q) in
  exp s2q2 *. (exp s2q2 -. 1.0)

let chip_variance_from_vt ~rg ~n ?(sigma_vt = default_sigma_vt) () =
  let mult = per_gate_variance_multiplier ~sigma_vt () in
  (* E over the RG type distribution of the squared per-gate mean. *)
  let second_mu =
    Array.fold_left
      (fun acc (c : Random_gate.component) ->
        acc +. (c.Random_gate.weight *. c.Random_gate.mu *. c.Random_gate.mu))
      0.0 rg.Random_gate.components
  in
  float_of_int n *. second_mu *. mult

let variance_ratio ~rg ~rgcorr ~corr ~layout ?(sigma_vt = default_sigma_vt) () =
  let n = Rgleak_circuit.Layout.site_count layout in
  let vt_var = chip_variance_from_vt ~rg ~n ~sigma_vt () in
  let l_var = (Estimator_linear.estimate ~corr ~rgcorr ~layout ()).Estimator_linear.variance in
  if l_var = 0.0 then infinity else vt_var /. l_var
