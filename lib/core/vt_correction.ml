open Rgleak_device
open Rgleak_process

let default_sigma_vt = Process_param.default_vt_rdf_sigma

let q_of ?(env = Mosfet.default_env) ?(n_swing = 1.4) () =
  n_swing *. env.Mosfet.v_thermal

let mean_factor ?(sigma_vt = default_sigma_vt) ?env ?n_swing () =
  let q = q_of ?env ?n_swing () in
  exp (sigma_vt *. sigma_vt /. (2.0 *. q *. q))

let per_gate_variance_multiplier ?(sigma_vt = default_sigma_vt) ?env ?n_swing () =
  let q = q_of ?env ?n_swing () in
  let s2q2 = sigma_vt *. sigma_vt /. (q *. q) in
  exp s2q2 *. (exp s2q2 -. 1.0)

let chip_variance_from_vt ~rg ~n ?(sigma_vt = default_sigma_vt) () =
  let mult = per_gate_variance_multiplier ~sigma_vt () in
  (* E over the RG type distribution of the squared per-gate mean. *)
  let second_mu =
    Array.fold_left
      (fun acc (c : Random_gate.component) ->
        acc +. (c.Random_gate.weight *. c.Random_gate.mu *. c.Random_gate.mu))
      0.0 rg.Random_gate.components
  in
  float_of_int n *. second_mu *. mult

let variance_ratio ~rg ~rgcorr ~corr ~layout ?(sigma_vt = default_sigma_vt) () =
  let n = Rgleak_circuit.Layout.site_count layout in
  let vt_var = chip_variance_from_vt ~rg ~n ~sigma_vt () in
  let l_var = (Estimator_linear.estimate ~corr ~rgcorr ~layout ()).Estimator_linear.variance in
  if l_var = 0.0 then infinity else vt_var /. l_var

(* ---------- multi-Vt flavors ----------

   A flavor is a library-wide threshold shift: the foundry's LVT / SVT
   / HVT implant variants of the same footprint.  Subthreshold leakage
   goes as exp(−V_th / q), so a ΔV_th offset multiplies every state's
   leakage by exp(−ΔV_th / q) while leaving the variation statistics
   (driven by L, not the implant) untouched — which is what lets the
   delta estimator treat a flavor swap as a pure per-cell scale
   change.  The delay factors are the usual coarse proxy: lower V_th
   switches faster. *)

type flavor = Lvt | Svt | Hvt

let all_flavors = [| Lvt; Svt; Hvt |]

let flavor_index = function Lvt -> 0 | Svt -> 1 | Hvt -> 2

let flavor_name = function Lvt -> "lvt" | Svt -> "svt" | Hvt -> "hvt"

let flavor_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "lvt" -> Some Lvt
  | "svt" -> Some Svt
  | "hvt" -> Some Hvt
  | _ -> None

let vth_offset = function Lvt -> -0.05 | Svt -> 0.0 | Hvt -> 0.05

let leakage_scale ?env ?n_swing flavor =
  match flavor with
  | Svt -> 1.0 (* exactly: the baseline library is characterized at SVT *)
  | f -> exp (-.vth_offset f /. q_of ?env ?n_swing ())

let delay_factor = function Lvt -> 0.85 | Svt -> 1.0 | Hvt -> 1.25
