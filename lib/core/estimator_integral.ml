open Rgleak_num
open Rgleak_process
module Obs = Rgleak_obs.Obs

let () =
  Obs.declare_hist ~owner:"integral" "integral.evals";
  Obs.declare_hist ~owner:"integral" "integral.quad_s"

type result = { mean : float; variance : float; std : float }

(* Quadrature-evaluation counting: the integrand is wrapped only when
   tracing is on, and the local tally is flushed as one counter. *)
let counting_evals tally f = fun x -> incr tally; f x

let flush_evals tally =
  if !tally > 0 then begin
    Obs.count "integral.evals" !tally;
    (* Eval counts are work items (pure function of the problem), so
       this histogram is jobs-invariant, unlike the time ones. *)
    Obs.hist_record "integral.evals" (float_of_int !tally)
  end

let check_inputs ~n ~width ~height =
  if n <= 0 then invalid_arg "Estimator_integral: need a positive gate count";
  if width <= 0.0 || height <= 0.0 then
    invalid_arg "Estimator_integral: dimensions must be positive"

let mean_of rgcorr n =
  float_of_int n *. (Rg_correlation.rg rgcorr).Random_gate.mu

let self_variance ~rgcorr ~n =
  float_of_int n *. (Rg_correlation.rg rgcorr).Random_gate.variance

(* Boundary guardrail: quadrature breakdown must surface as a typed
   diagnostic, never as a silent NaN in a result record. *)
let finish ~rgcorr ~n variance =
  let mean = Guard.check_finite ~site:"integral" ~name:"mean" (mean_of rgcorr n) in
  let variance = Guard.check_finite ~site:"integral" ~name:"variance" variance in
  { mean; variance; std = sqrt (Float.max 0.0 variance) }

let rect_2d ?(order = 96) ~corr ~rgcorr ~n ~width ~height () =
  Obs.span "integral.rect2d" @@ fun () ->
  check_inputs ~n ~width ~height;
  let nf = float_of_int n in
  let area = width *. height in
  let evals = ref 0 in
  let track = Obs.enabled () in
  let integrand x y =
    if track then incr evals;
    let d = sqrt ((x *. x) +. (y *. y)) in
    let rho_l = Corr_model.total corr d in
    (width -. x) *. (height -. y) *. Rg_correlation.f rgcorr ~rho_l
  in
  (* Guarded rule: the order-[order] value is returned unchanged when
     the half-order residual check passes; a non-convergent integrand
     (or the "quadrature" fault site) takes the adaptive-Simpson
     fallback instead of silently returning garbage. *)
  let integral =
    Obs.hist_time "integral.quad_s" @@ fun () ->
    Quadrature.gauss_legendre_2d_guarded ~order integrand ~x_lo:0.0
      ~x_hi:width ~y_lo:0.0 ~y_hi:height
  in
  flush_evals evals;
  finish ~rgcorr ~n (4.0 *. nf *. nf /. (area *. area) *. integral)

let polar_2d ?(order = 96) ~corr ~rgcorr ~n ~width ~height () =
  Obs.span "integral.polar2d" @@ fun () ->
  check_inputs ~n ~width ~height;
  let nf = float_of_int n in
  let area = width *. height in
  let evals = ref 0 in
  let track = Obs.enabled () in
  (* Eq. 21: integrate over theta in [0, pi/2], r in [0, D(theta)] with
     D(theta) the distance to the rectangle boundary. *)
  (* The outer (angular) integral carries the guardrail; each angular
     evaluation runs the plain radial rule. *)
  let integral =
    Obs.hist_time "integral.quad_s" @@ fun () ->
    Quadrature.gauss_legendre_guarded ~order
      (fun theta ->
        let c = cos theta and s = sin theta in
        let d_theta =
          Float.min
            (if c > 1e-12 then width /. c else infinity)
            (if s > 1e-12 then height /. s else infinity)
        in
        Quadrature.gauss_legendre ~order
          (fun r ->
            if track then incr evals;
            let rho_l = Corr_model.total corr r in
            (width -. (r *. c)) *. (height -. (r *. s))
            *. Rg_correlation.f rgcorr ~rho_l *. r)
          ~lo:0.0 ~hi:d_theta)
      ~lo:0.0 ~hi:(Float.pi /. 2.0)
  in
  flush_evals evals;
  finish ~rgcorr ~n (4.0 *. nf *. nf /. (area *. area) *. integral)

let polar_applicable ~corr ~width ~height =
  match Corr_model.wid_dmax corr with
  | None -> false
  | Some dmax -> dmax < Float.min width height

let polar ?(order = 128) ~corr ~rgcorr ~n ~width ~height () =
  Obs.span "integral.polar" @@ fun () ->
  check_inputs ~n ~width ~height;
  let dmax =
    match Corr_model.wid_dmax corr with
    | Some d when d < Float.min width height -> d
    | Some _ | None ->
      invalid_arg
        "Estimator_integral.polar: WID correlation must vanish within the die"
  in
  let nf = float_of_int n in
  let area = width *. height in
  (* Constant (die-to-die) part: beyond dmax the total correlation sits
     at the floor rho_C, contributing exactly F(rho_C) per site pair. *)
  let f_floor = Rg_correlation.f rgcorr ~rho_l:(Corr_model.floor corr) in
  let g r =
    (0.5 *. r *. r) -. ((width +. height) *. r)
    +. (Float.pi /. 2.0 *. width *. height)
  in
  let evals = ref 0 in
  let integrand r =
    let rho_l = Corr_model.total corr r in
    (Rg_correlation.f rgcorr ~rho_l -. f_floor) *. r *. g r
  in
  let integrand =
    if Obs.enabled () then counting_evals evals integrand else integrand
  in
  let radial =
    Obs.hist_time "integral.quad_s" @@ fun () ->
    Quadrature.gauss_legendre_guarded ~order integrand ~lo:0.0 ~hi:dmax
  in
  flush_evals evals;
  finish ~rgcorr ~n
    ((4.0 *. nf *. nf /. (area *. area) *. radial) +. (nf *. nf *. f_floor))

let rect_2d_result ?order ~corr ~rgcorr ~n ~width ~height () =
  Guard.protect (rect_2d ?order ~corr ~rgcorr ~n ~width ~height)

let polar_2d_result ?order ~corr ~rgcorr ~n ~width ~height () =
  Guard.protect (polar_2d ?order ~corr ~rgcorr ~n ~width ~height)

let polar_result ?order ~corr ~rgcorr ~n ~width ~height () =
  Guard.protect (polar ?order ~corr ~rgcorr ~n ~width ~height)
