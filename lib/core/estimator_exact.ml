open Rgleak_num
open Rgleak_process
open Rgleak_circuit
module Obs = Rgleak_obs.Obs

type result = { mean : float; variance : float; std : float }

let estimate ?(distance_points = 512) ?jobs ~corr ~rgcorr placed =
  Obs.span "exact.estimate" @@ fun () ->
  let netlist = placed.Placer.netlist in
  let layout = placed.Placer.layout in
  let n = Netlist.size netlist in
  if n = 0 then invalid_arg "Estimator_exact: empty netlist";
  let rg = Rg_correlation.rg rgcorr in
  (* Dense type indices for the cells actually present. *)
  let used =
    Array.of_list
      (List.sort_uniq compare
         (Array.to_list
            (Array.map
               (fun inst -> inst.Netlist.cell_index)
               netlist.Netlist.instances)))
  in
  Array.iter
    (fun ci ->
      if not (Rg_correlation.in_support rgcorr ci) then
        invalid_arg "Estimator_exact: netlist cell outside RG support")
    used;
  let nu = Array.length used in
  let dense = Array.make Rgleak_cells.Library.size (-1) in
  Array.iteri (fun d ci -> dense.(ci) <- d) used;
  let dmax =
    let w = Layout.width layout and h = Layout.height layout in
    sqrt ((w *. w) +. (h *. h)) +. 1e-9
  in
  let dstep = dmax /. float_of_int (distance_points - 1) in
  (* Distance-indexed covariance tables, packed over the upper triangle
     of type pairs: covariance is symmetric in (ti, tj), so only the
     nu(nu+1)/2 distinct tables are built. *)
  let cov_tri = Array.make (Parallel.tri_size nu) [||] in
  Obs.count "exact.gates" n;
  Obs.count "exact.types" nu;
  Obs.span "exact.cov_tables" (fun () ->
      for ti = 0 to nu - 1 do
        for tj = ti to nu - 1 do
          cov_tri.(Parallel.tri_index ~n:nu ~i:ti ~j:tj) <-
            Array.init distance_points (fun k ->
                let d = float_of_int k *. dstep in
                let rho_l = Corr_model.total corr d in
                Rg_correlation.cell_pair_covariance rgcorr ~ci:used.(ti)
                  ~cj:used.(tj) ~rho_l)
        done
      done);
  (* Square alias view so the pair loop stays a single branch-free
     lookup; both (ti, tj) and (tj, ti) share one physical table. *)
  let table_of =
    Array.init (nu * nu) (fun idx ->
        let ti = idx / nu and tj = idx mod nu in
        let i = Stdlib.min ti tj and j = Stdlib.max ti tj in
        cov_tri.(Parallel.tri_index ~n:nu ~i ~j))
  in
  (* Instance data flattened for the O(n²) loop. *)
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let types = Array.make n 0 in
  let mean = ref 0.0 and variance = ref 0.0 in
  Array.iteri
    (fun i inst ->
      let x, y = Placer.location placed i in
      xs.(i) <- x;
      ys.(i) <- y;
      types.(i) <- dense.(inst.Netlist.cell_index);
      mean := !mean +. Random_gate.mean_of_cell rg inst.Netlist.cell_index;
      variance :=
        !variance +. Random_gate.mixture_variance_of_cell rg inst.Netlist.cell_index)
    netlist.Netlist.instances;
  let inv_dstep = 1.0 /. dstep in
  (* O(n²) pair loop over balanced row bands of the upper triangle; the
     in-order band reduction makes the sum independent of the job
     count. *)
  let pair_row acc a =
    (* One counter bump per row, not per pair: the N-1-a pairs of row a
       are counted in bulk so tracing stays out of the inner loop. *)
    if Obs.enabled () then Obs.count "exact.pairs" (n - 1 - a);
    let xa = xs.(a) and ya = ys.(a) in
    let row = types.(a) * nu in
    let acc = ref acc in
    for b = a + 1 to n - 1 do
      let dx = xs.(b) -. xa and dy = ys.(b) -. ya in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      let table = table_of.(row + types.(b)) in
      let pos = d *. inv_dstep in
      let k = int_of_float pos in
      let k = if k >= distance_points - 1 then distance_points - 2 else k in
      let frac = pos -. float_of_int k in
      acc := !acc +. table.(k) +. (frac *. (table.(k + 1) -. table.(k)))
    done;
    !acc
  in
  let t_pairs = if Obs.enabled () then Obs.now_ns () else 0L in
  let acc =
    Obs.span "exact.pair_loop" (fun () ->
        Parallel.using ?jobs (fun pool ->
            Parallel.triangle_reduce ~label:"exact.band" pool ~n
              ~init:(fun () -> 0.0)
              ~row:pair_row ~combine:( +. )))
  in
  if t_pairs <> 0L then begin
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t_pairs) /. 1e9 in
    if dt > 0.0 then
      Obs.gauge_max "exact.pairs_per_s" (float_of_int (n * (n - 1) / 2) /. dt)
  end;
  let mean = Guard.check_finite ~site:"exact" ~name:"mean" !mean in
  let variance =
    Guard.check_finite ~site:"exact" ~name:"variance" (!variance +. (2.0 *. acc))
  in
  { mean; variance; std = sqrt (Float.max 0.0 variance) }

let estimate_result ?distance_points ?jobs ~corr ~rgcorr placed =
  Guard.protect (fun () ->
      estimate ?distance_points ?jobs ~corr ~rgcorr placed)
