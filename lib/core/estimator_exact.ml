open Rgleak_num
open Rgleak_process
open Rgleak_circuit
module Obs = Rgleak_obs.Obs

type result = { mean : float; variance : float; std : float }

(* Rows per kernel call inside a band: 256 rows of float64 x/y plus the
   packed tables stay L2-resident, and the fixed tile grid keeps the
   reduction order independent of the job count. *)
let tile_rows = 256

(* Shared staging: netlist -> (used cell list, dense type per instance,
   moment sums in original instance order).  The dense per-estimate
   type map is derived from the correlation structure's support index
   (built once per characterized library) instead of rescanning the
   full cell library per call. *)
let stage ~rgcorr placed =
  let netlist = placed.Placer.netlist in
  let n = Netlist.size netlist in
  if n = 0 then invalid_arg "Estimator_exact: empty netlist";
  let rg = Rg_correlation.rg rgcorr in
  let used =
    Array.of_list
      (List.sort_uniq compare
         (Array.to_list
            (Array.map
               (fun inst -> inst.Netlist.cell_index)
               netlist.Netlist.instances)))
  in
  Array.iter
    (fun ci ->
      if not (Rg_correlation.in_support rgcorr ci) then
        invalid_arg "Estimator_exact: netlist cell outside RG support")
    used;
  let nu = Array.length used in
  (* support-dense -> estimate-dense; O(support) not O(Library.size) *)
  let support_map = Array.make (Rg_correlation.support_size rgcorr) (-1) in
  Array.iteri
    (fun d ci -> support_map.(Rg_correlation.support_dense rgcorr ci) <- d)
    used;
  let cell_ty = Array.make n 0 in
  let mean = ref 0.0 and variance = ref 0.0 in
  Array.iteri
    (fun i inst ->
      let ci = inst.Netlist.cell_index in
      cell_ty.(i) <- support_map.(Rg_correlation.support_dense rgcorr ci);
      mean := !mean +. Random_gate.mean_of_cell rg ci;
      variance := !variance +. Random_gate.mixture_variance_of_cell rg ci)
    netlist.Netlist.instances;
  (n, used, nu, cell_ty, !mean, !variance)

let distance_grid ~distance_points layout =
  let dmax =
    let w = Layout.width layout and h = Layout.height layout in
    sqrt ((w *. w) +. (h *. h)) +. 1e-9
  in
  dmax /. float_of_int (distance_points - 1)

type staged = {
  sg_n : int;
  sg_used : int array;
  sg_nu : int;
  sg_cell_ty : int array;
  sg_mean : float;
  sg_mixture_variance : float;
  sg_perm : int array;
  sg_buffers : Pair_kernel.buffers;
  sg_distance_points : int;
  sg_dstep : float;
}

(* Full staging: moments plus the flat kernel buffers.  Shared by
   [estimate] and by the delta estimator, which additionally needs the
   instance -> sorted-row permutation to address one cell's row.
   [?cov] lets a caller supply the packed covariance tables (e.g. from
   the on-disk memo) instead of rebuilding them. *)
let stage_buffers ?(distance_points = 512) ?cov ~corr ~rgcorr placed =
  let n, used, nu, cell_ty, mean, variance = stage ~rgcorr placed in
  let dstep = distance_grid ~distance_points placed.Placer.layout in
  Obs.count "exact.gates" n;
  Obs.count "exact.types" nu;
  let cov =
    match cov with
    | Some c ->
      if Bigarray.Array1.dim c <> Parallel.tri_size nu * distance_points then
        invalid_arg "Estimator_exact: supplied cov tables have wrong size";
      c
    | None ->
      Obs.span "exact.cov_tables" (fun () ->
          Rg_correlation.binned_pair_tables rgcorr ~used ~distance_points
            ~dstep
            ~rho_of_d:(fun d -> Corr_model.total corr d))
  in
  (* Cells sorted by (dense type, original index): each row's partners
     then split into <= nu contiguous segments, one L1-resident table
     each, so the kernel needs no per-pair type gather. *)
  let seg = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (nu + 1) in
  let next = Array.make nu 0 in
  Array.iter (fun t -> next.(t) <- next.(t) + 1) cell_ty;
  let start = ref 0 in
  Bigarray.Array1.set seg 0 0;
  for t = 0 to nu - 1 do
    let c = next.(t) in
    next.(t) <- !start;
    start := !start + c;
    Bigarray.Array1.set seg (t + 1) !start
  done;
  let xs = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let ys = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let ty = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let perm = Array.make n 0 in
  for i = 0 to n - 1 do
    let t = cell_ty.(i) in
    let pos = next.(t) in
    next.(t) <- pos + 1;
    perm.(i) <- pos;
    let x, y = Placer.location placed i in
    Bigarray.Array1.unsafe_set xs pos x;
    Bigarray.Array1.unsafe_set ys pos y;
    Bigarray.Array1.unsafe_set ty pos t
  done;
  let base = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (nu * nu) in
  for idx = 0 to (nu * nu) - 1 do
    let ti = idx / nu and tj = idx mod nu in
    let i = Stdlib.min ti tj and j = Stdlib.max ti tj in
    Bigarray.Array1.set base idx
      (Parallel.tri_index ~n:nu ~i ~j * distance_points)
  done;
  let buffers =
    {
      Pair_kernel.xs;
      ys;
      ty;
      seg;
      base;
      cov;
      nu;
      inv_dstep = 1.0 /. dstep;
      kmax = distance_points - 2;
    }
  in
  {
    sg_n = n;
    sg_used = used;
    sg_nu = nu;
    sg_cell_ty = cell_ty;
    sg_mean = mean;
    sg_mixture_variance = variance;
    sg_perm = perm;
    sg_buffers = buffers;
    sg_distance_points = distance_points;
    sg_dstep = dstep;
  }

let () = Obs.declare_hist ~owner:"exact" "exact.band_s"

let estimate ?(distance_points = 512) ?jobs ~corr ~rgcorr placed =
  Obs.span "exact.estimate" @@ fun () ->
  let staged = stage_buffers ~distance_points ~corr ~rgcorr placed in
  let n = staged.sg_n in
  let mean = staged.sg_mean and variance = staged.sg_mixture_variance in
  let buffers = staged.sg_buffers in
  if Obs.enabled () then Obs.count "exact.pairs" (n * (n - 1) / 2);
  let kernel_band acc ~lo ~hi =
    (* Per-band kernel time distribution: 64 fixed bands per estimate,
       so the tail (p99 vs p50) exposes band-size imbalance and NUMA /
       frequency effects that the aggregate pairs/s gauge hides. *)
    let t0 = if Obs.enabled () then Obs.now_ns () else 0L in
    let acc = ref acc in
    let tlo = ref lo in
    while !tlo < hi do
      let thi = Stdlib.min (!tlo + tile_rows) hi in
      Obs.count "exact.tiles" 1;
      acc := !acc +. Pair_kernel.sum buffers ~lo:!tlo ~hi:thi;
      tlo := thi
    done;
    if Obs.enabled () then
      Obs.hist_record "exact.band_s"
        (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9);
    !acc
  in
  let t_pairs = if Obs.enabled () then Obs.now_ns () else 0L in
  let words0 = if Obs.enabled () then Gc.minor_words () else 0.0 in
  let acc =
    Obs.span "exact.pair_loop" (fun () ->
        Parallel.using ?jobs (fun pool ->
            Parallel.triangle_band_reduce ~label:"exact.band" pool ~n
              ~init:(fun () -> 0.0)
              ~band:kernel_band ~combine:( +. )))
  in
  if t_pairs <> 0L then begin
    (* Submitting-domain minor words over the pair loop — the kernel
       itself allocates nothing, so this stays O(bands), not O(pairs).
       A gauge, not a counter: pool bookkeeping makes it vary with the
       job count, unlike the jobs-invariant counters. *)
    Obs.gauge_max "exact.minor_words" (Gc.minor_words () -. words0);
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t_pairs) /. 1e9 in
    if dt > 0.0 then
      Obs.gauge_max "exact.pairs_per_s" (float_of_int (n * (n - 1) / 2) /. dt)
  end;
  let mean = Guard.check_finite ~site:"exact" ~name:"mean" mean in
  let variance =
    Guard.check_finite ~site:"exact" ~name:"variance" (variance +. (2.0 *. acc))
  in
  { mean; variance; std = sqrt (Float.max 0.0 variance) }

(* Historical row-at-a-time implementation over boxed tables, kept as
   the oracle for the flat kernel: same tables, same clamp, sequential
   per-band accumulation.  Differs from [estimate] only by summation
   order (the documented reassociation contract). *)
let estimate_reference ?(distance_points = 512) ?jobs ~corr ~rgcorr placed =
  Obs.span "exact.estimate" @@ fun () ->
  let n, used, nu, cell_ty, mean, variance = stage ~rgcorr placed in
  let dstep = distance_grid ~distance_points placed.Placer.layout in
  Obs.count "exact.gates" n;
  Obs.count "exact.types" nu;
  let cov_tri = Array.make (Parallel.tri_size nu) [||] in
  Obs.span "exact.cov_tables" (fun () ->
      for ti = 0 to nu - 1 do
        for tj = ti to nu - 1 do
          cov_tri.(Parallel.tri_index ~n:nu ~i:ti ~j:tj) <-
            Array.init distance_points (fun k ->
                let d = float_of_int k *. dstep in
                let rho_l = Corr_model.total corr d in
                Rg_correlation.cell_pair_covariance rgcorr ~ci:used.(ti)
                  ~cj:used.(tj) ~rho_l)
        done
      done);
  let table_of =
    Array.init (nu * nu) (fun idx ->
        let ti = idx / nu and tj = idx mod nu in
        let i = Stdlib.min ti tj and j = Stdlib.max ti tj in
        cov_tri.(Parallel.tri_index ~n:nu ~i ~j))
  in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let x, y = Placer.location placed i in
    xs.(i) <- x;
    ys.(i) <- y
  done;
  let inv_dstep = 1.0 /. dstep in
  let pair_row acc a =
    if Obs.enabled () then Obs.count "exact.pairs" (n - 1 - a);
    let xa = xs.(a) and ya = ys.(a) in
    let row = cell_ty.(a) * nu in
    let acc = ref acc in
    for b = a + 1 to n - 1 do
      let dx = xs.(b) -. xa and dy = ys.(b) -. ya in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      let table = table_of.(row + cell_ty.(b)) in
      let pos = d *. inv_dstep in
      let k = int_of_float pos in
      let k = if k >= distance_points - 1 then distance_points - 2 else k in
      let frac = pos -. float_of_int k in
      acc := !acc +. table.(k) +. (frac *. (table.(k + 1) -. table.(k)))
    done;
    !acc
  in
  let acc =
    Obs.span "exact.pair_loop" (fun () ->
        Parallel.using ?jobs (fun pool ->
            Parallel.triangle_reduce ~label:"exact.band" pool ~n
              ~init:(fun () -> 0.0)
              ~row:pair_row ~combine:( +. )))
  in
  let mean = Guard.check_finite ~site:"exact" ~name:"mean" mean in
  let variance =
    Guard.check_finite ~site:"exact" ~name:"variance" (variance +. (2.0 *. acc))
  in
  { mean; variance; std = sqrt (Float.max 0.0 variance) }

let estimate_result ?distance_points ?jobs ~corr ~rgcorr placed =
  Guard.protect (fun () ->
      estimate ?distance_points ?jobs ~corr ~rgcorr placed)
