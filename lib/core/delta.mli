(** Incremental delta re-estimation for multi-Vt optimization.

    A {!state} freezes one full-chip estimation — staged pair-kernel
    buffers, per-(type, flavor) population counts, the linear tier's
    off-diagonal sum, and the continuum (integral) baseline — together
    with a per-cell Vt flavor assignment.  {!apply_swap} produces the
    state and full three-tier result after changing one cell's flavor:

    - {b exact tier in O(n)}: a flavor swap multiplies one cell's
      leakage by a scale factor, so only that cell's row/column of the
      pairwise covariance sum changes.  The pair sum is held in an
      exact superaccumulator ({!Rgleak_num.Xsum}); the swap retracts
      the row at the old scale and re-adds it at the new one — exactly
      — so the updated state is {e bit-identical} to a cold {!create}
      of the same flavor assignment, at any job count, along any swap
      path (including self-swaps and swap-then-revert).
    - {b linear tier in O(#types·#flavors)}: the homogeneous offset sum
      is computed once; scales re-enter through Σsᵢ and Σsᵢ² recombined
      from the population counts.
    - {b mean / integral / Vt terms in O(1)} (given the counts).

    Results are pure functions of (shared baseline, counts, pair
    accumulator), so any two states with equal flavor assignments
    report equal bits — the invariant test/test_delta.ml pins down.

    Telemetry: spans [delta.create] / [delta.swap], counters
    [delta.swaps] and [exact.pairs] (a swap adds 2(n−1) pair visits —
    the O(n)-not-O(n²) witness), histogram [delta.swap_s].  Guard
    fault site ["delta"] poisons the recombined exact variance ahead
    of its finiteness check. *)

type tier = { mean : float; variance : float; std : float }

type result = {
  exact : tier;  (** pairwise-covariance tier (O(n) per swap) *)
  linear : tier;  (** offset-sum tier (O(#bins) per swap) *)
  integral : tier;  (** continuum tier (O(1) per swap) *)
}

type state

val create :
  ?distance_points:int ->
  ?cov:Rgleak_num.Pair_kernel.f64 ->
  ?jobs:int ->
  ?memo:Estimator_linear.memo ->
  ?integral_order:int ->
  ?flavors:Vt_correction.flavor array ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  Rgleak_circuit.Placer.placed ->
  state
(** Cold build: stages the design ({!Estimator_exact.stage_buffers},
    honouring [?cov] from the table memo), runs the scaled pair loop
    on the domain pool into the exact accumulator, computes the linear
    off-diagonal sum (reusing [?memo]) and the integral baseline
    ({!Estimator_integral.rect_2d} at [?integral_order], default 96).
    [?flavors] assigns initial per-instance flavors (default: all
    [Svt], whose leakage scale is exactly 1).  Raises
    [Invalid_argument] on shape errors (empty netlist, flavor array
    length, cell outside RG support). *)

val result : state -> result
(** The three-tier estimate of the state's flavor assignment.  Pure:
    recombined from counts and the exact accumulator on each call,
    identical bits for identical assignments.  Raises
    {!Rgleak_num.Guard.Error} ([Numeric], site ["delta"]) on a
    non-finite recombination or an injected ["delta"] fault. *)

val apply_swap :
  state -> cell:int -> flavor:Vt_correction.flavor -> state * result
(** [apply_swap st ~cell ~flavor] is the state (and its {!result})
    after reassigning instance [cell] to [flavor].  O(n): two row
    passes against the staged buffers plus O(n) snapshot copies.  The
    input state is untouched (immutable snapshots; copy-on-write of
    the scale vector and accumulator).  A self-swap (same flavor)
    retracts and re-adds identical terms and is bit-neutral.  Raises
    [Invalid_argument] when [cell] is outside [0, n). *)

val n : state -> int
(** Instance count. *)

val flavor_of : state -> int -> Vt_correction.flavor
(** Current flavor of one instance. *)

val flavors : state -> Vt_correction.flavor array
(** Snapshot of the full assignment (fresh array). *)

val mean_delta : state -> cell:int -> flavor:Vt_correction.flavor -> float
(** Predicted O(1) change of the exact-tier mean if [cell] moved to
    [flavor]: [(s_new − s_old) · μ_type(cell)].  Exact for the mean
    (it is linear in the per-cell scales); the optimizer ranks
    candidates with this without touching the pair sum. *)

val cell_mean : state -> int -> float
(** Current mean-leakage contribution of one instance,
    [s_flavor · μ_type]. *)
