(** Hierarchical (multi-region) full-chip estimation — an extension of
    the paper's single homogeneous RG array.

    Real floorplans are not homogeneous: a cache macro, a datapath block
    and a control block have different cell mixes and densities.  Each
    region gets its own Random Gate; the total variance is

    [Σ_i var_i + Σ_{i≠j} cross_ij]

    where [var_i] is the paper's within-region integral (Eq. 20 applied
    to the region's rectangle) and the cross term integrates the
    cross-RG covariance over the two rectangles.  For rectangles the
    double area integral reduces to a 2-D integral over offset vectors
    weighted by the interval-overlap kernel, evaluated with
    Gauss–Legendre — still O(1) per region pair.

    A partition of a die into regions with identical mixes reproduces
    the single-region estimate (verified in the test suite). *)

type region = {
  label : string;
  histogram : Rgleak_circuit.Histogram.t;
  n : int;  (** gates in this region *)
  x : float;  (** lower-left corner, µm *)
  y : float;
  width : float;
  height : float;
}

val region :
  ?label:string ->
  histogram:Rgleak_circuit.Histogram.t ->
  n:int ->
  x:float -> y:float -> width:float -> height:float ->
  unit ->
  region
(** Constructor with validation (positive dimensions and count). *)

val overlap_area : region -> region -> float
(** Intersection area of the two rectangles (for the disjointness
    check). *)

type result = {
  mean : float;
  variance : float;
  std : float;
  region_means : (string * float) array;
  cross_share : float;
      (** fraction of the total variance carried by cross-region
          covariance — how wrong a regions-are-independent assumption
          would be *)
}

val estimate :
  ?mode:Random_gate.mode ->
  ?mapping:Rg_correlation.mapping ->
  ?p:float ->
  ?order:int ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  corr:Rgleak_process.Corr_model.t ->
  region list ->
  result
(** Estimates the whole die.  [p] defaults to each region's own
    conservative maximum-leakage setting; [order] is the quadrature
    order per axis (default 64).  Raises [Invalid_argument] on
    overlapping regions or an empty list. *)
