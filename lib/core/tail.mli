(** Tail-risk estimation: importance-sampled exceedance probabilities.

    Sign-off asks P(leakage > budget), a rare event that brute-force MC
    resolves only with millions of replicas.  The estimator here draws
    replicas from a mean-shifted proposal
    ({!Mc_reference.sample_weighted_stream}) whose shift is calibrated
    so the budget sits near the proposal median, reweights each replica
    by its exact Gaussian likelihood ratio, and reduces exceedance
    indicators, weighted tail quantiles, and effective-sample-size
    diagnostics sequentially in replica order — so the result is a pure
    function of (design, budget, shift, seed, replicas), bit-identical
    across [--jobs] and cold/warm caches. *)

type ci = { lo : float; hi : float }

type quantile = { level : float; value : float }

type result = {
  budget : float;  (** exceedance threshold (nA) *)
  replicas : int;
  seed : int;
  delta : float;  (** uniform channel-length shift of the proposal (nm) *)
  shift_norm2 : float;  (** |θ|² of the whitened shift *)
  p_exceed : float;  (** IS estimate of P(leakage > budget) *)
  se : float;  (** delta-method standard error *)
  ci_delta : ci;  (** delta-method interval, clamped to [0,1] *)
  ci_wilson : ci;  (** Wilson interval on ESS-scaled pseudo-counts *)
  hits : int;  (** replicas above budget under the proposal *)
  hit_rate : float;  (** [hits/replicas]; ~0.5 when well calibrated *)
  ess : float;  (** effective sample size (Σw)²/Σw² *)
  mean_weight : float;  (** Σw/n; ≈ 1 when the proposal is healthy *)
  max_weight : float;
  quantiles : quantile list;  (** leakage at the requested levels *)
}

val default_quantile_levels : float list
(** [0.99; 0.999; 0.9999]. *)

val estimate :
  ?jobs:int ->
  ?confidence:float ->
  ?quantile_levels:float list ->
  mc:Mc_reference.t ->
  budget:float ->
  shift:Rgleak_process.Variation.shift ->
  seed:int ->
  replicas:int ->
  unit ->
  result
(** Runs the importance-sampled tail estimate.  [confidence] (default
    0.95) sets both intervals' critical value.  Raises
    {!Rgleak_num.Guard.Error}: [Invalid_input] on a bad budget, replica
    count or quantile level; [Numeric] at site ["tail"] when the
    weights degenerate — non-finite or all-underflowed weights (weight
    blowup/collapse) or an effective sample size below 8 (ESS
    collapse).  Degenerate shifts therefore surface as typed
    diagnostics, never as NaN fields. *)

val estimate_result :
  ?jobs:int ->
  ?confidence:float ->
  ?quantile_levels:float list ->
  mc:Mc_reference.t ->
  budget:float ->
  shift:Rgleak_process.Variation.shift ->
  seed:int ->
  replicas:int ->
  unit ->
  (result, Rgleak_num.Guard.diagnostic) Result.t
(** {!estimate} with every failure folded into a diagnostic
    ({!Rgleak_num.Guard.protect}). *)

val pp : Format.formatter -> result -> unit
