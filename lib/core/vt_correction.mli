(** Threshold-voltage random-dopant effects (§2.1).

    Per-device V_t fluctuations are independent across the die, so for
    full-chip statistics they matter for the {e mean} (a multiplicative
    lognormal factor) but their contribution to the {e variance} scales
    as n·σ² against the n²·σ² of correlated length variation, and
    becomes negligible for large chips.  This module provides the mean
    multiplier the paper applies and the variance-ratio analysis behind
    experiment E9. *)

val mean_factor :
  ?sigma_vt:float -> ?env:Rgleak_device.Mosfet.env -> ?n_swing:float -> unit -> float
(** [E\[exp(−δ/(n·v_T))\] = exp(σ_vt² / (2 (n·v_T)²))] — the factor by
    which random-dopant fluctuations inflate the mean leakage (the
    lognormal mean term of Rao/Helms).  Defaults: σ_vt = 25 mV,
    n = 1.4, v_T at 300 K. *)

val per_gate_variance_multiplier :
  ?sigma_vt:float -> ?env:Rgleak_device.Mosfet.env -> ?n_swing:float -> unit -> float
(** Variance of the per-gate lognormal V_t factor,
    [e^{σ²/q²}(e^{σ²/q²} − 1)] with [q = n·v_T]; independent across
    gates. *)

val chip_variance_from_vt :
  rg:Random_gate.t -> n:int -> ?sigma_vt:float -> unit -> float
(** n · E\[μ_gate²\] · Var(factor): the total chip-leakage variance
    contributed by independent V_t variation. *)

val variance_ratio :
  rg:Random_gate.t -> rgcorr:Rg_correlation.t ->
  corr:Rgleak_process.Corr_model.t ->
  layout:Rgleak_circuit.Layout.t ->
  ?sigma_vt:float -> unit -> float
(** Ratio of the V_t-driven chip variance to the correlated-L-driven
    chip variance for a given die; the paper's claim is that this
    vanishes as n grows. *)

(** {1 Multi-Vt flavors}

    Foundry implant variants of the same cell footprint.  A flavor
    shifts every state's threshold by a fixed ΔV_th, multiplying its
    subthreshold leakage by [exp(−ΔV_th / q)] with [q = n·v_T] while
    leaving the length-variation statistics untouched — a flavor swap
    is a pure per-cell leakage scale, which is what the delta
    estimator exploits. *)

type flavor = Lvt | Svt | Hvt

val all_flavors : flavor array
(** [\[| Lvt; Svt; Hvt |\]], in {!flavor_index} order. *)

val flavor_index : flavor -> int
(** Dense index: Lvt = 0, Svt = 1, Hvt = 2. *)

val flavor_name : flavor -> string
(** ["lvt"], ["svt"], ["hvt"]. *)

val flavor_of_string : string -> flavor option
(** Case-insensitive inverse of {!flavor_name}. *)

val vth_offset : flavor -> float
(** Threshold shift vs the SVT baseline, in volts: −50 mV for LVT,
    0 for SVT, +50 mV for HVT. *)

val leakage_scale :
  ?env:Rgleak_device.Mosfet.env -> ?n_swing:float -> flavor -> float
(** [exp(−vth_offset / q)]: the factor multiplying a cell's leakage in
    every input state.  Exactly [1.0] for [Svt]; ≈4.2 for [Lvt] and
    ≈0.24 for [Hvt] at the default 300 K subthreshold swing. *)

val delay_factor : flavor -> float
(** Coarse timing proxy: relative cell delay vs SVT (0.85 / 1.0 /
    1.25).  Downgrading a cell to a slower flavor spends
    [delay_factor Hvt − delay_factor current] of its path's slack
    budget in the optimizer's units. *)
