open Rgleak_num
open Rgleak_process

type t = {
  nx : int;
  ny : int;
  tile_w : float;
  tile_h : float;
  mean : float array;
  p95 : float array;
  hotspot_ratio : float;
  samples : int;
}

let compute ?(tiles = 12) ?(samples = 400) ?(seed = 20_26) ~rg ~corr ~n ~width
    ~height () =
  if tiles < 2 then invalid_arg "Leakage_map.compute: need at least 2x2 tiles";
  if samples < 10 then invalid_arg "Leakage_map.compute: need at least 10 samples";
  if n <= 0 then invalid_arg "Leakage_map.compute: positive gate count";
  if not (Corr_model.psd_in_2d corr) then
    invalid_arg
      "Leakage_map.compute: correlation family must be positive definite in \
       2-D (see Corr_model.psd_in_2d)";
  let nx = tiles and ny = tiles in
  let tile_w = width /. float_of_int nx in
  let tile_h = height /. float_of_int ny in
  let gates_per_tile = float_of_int n /. float_of_int (nx * ny) in
  (* Conditional per-gate leakage at a given local channel length. *)
  let mu_l = rg.Random_gate.mu_l and sigma_l = rg.Random_gate.sigma_l in
  let curve =
    Interp.of_fun
      (fun l ->
        Array.fold_left
          (fun acc (c : Random_gate.component) ->
            let tr = c.Random_gate.triplet in
            acc
            +. (c.Random_gate.weight *. tr.Rgleak_cells.Mgf.a
               *. exp ((tr.Rgleak_cells.Mgf.b *. l)
                       +. (tr.Rgleak_cells.Mgf.c *. l *. l))))
          0.0 rg.Random_gate.components)
      ~lo:(mu_l -. (6.5 *. sigma_l))
      ~hi:(mu_l +. (6.5 *. sigma_l))
      ~n:257
  in
  let centers =
    Array.init (nx * ny) (fun idx ->
        let ix = idx mod nx and iy = idx / nx in
        {
          Variation.x = (float_of_int ix +. 0.5) *. tile_w;
          y = (float_of_int iy +. 0.5) *. tile_h;
        })
  in
  let sampler = Variation.prepare corr centers in
  let rng = Rng.create ~seed () in
  let accs = Array.init (nx * ny) (fun _ -> Stats.Acc.create ()) in
  let per_tile_samples = Array.make_matrix (nx * ny) samples 0.0 in
  let ratio_acc = Stats.Acc.create () in
  for s = 0 to samples - 1 do
    let field = Variation.sample sampler rng in
    let max_tile = ref 0.0 and sum_tile = ref 0.0 in
    Array.iteri
      (fun idx l ->
        let tile_leak = gates_per_tile *. Interp.eval curve l in
        Stats.Acc.add accs.(idx) tile_leak;
        per_tile_samples.(idx).(s) <- tile_leak;
        if tile_leak > !max_tile then max_tile := tile_leak;
        sum_tile := !sum_tile +. tile_leak)
      field;
    Stats.Acc.add ratio_acc (!max_tile /. (!sum_tile /. float_of_int (nx * ny)))
  done;
  {
    nx;
    ny;
    tile_w;
    tile_h;
    mean = Array.map Stats.Acc.mean accs;
    p95 = Array.map (fun row -> Stats.percentile row 95.0) per_tile_samples;
    hotspot_ratio = Stats.Acc.mean ratio_acc;
    samples;
  }

let tile t ~ix ~iy =
  if ix < 0 || ix >= t.nx || iy < 0 || iy >= t.ny then
    invalid_arg "Leakage_map.tile: out of range";
  let idx = (iy * t.nx) + ix in
  (t.mean.(idx), t.p95.(idx))

let total_mean t = Array.fold_left ( +. ) 0.0 t.mean

let render t =
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let lo = Array.fold_left Float.min infinity t.p95 in
  let hi = Array.fold_left Float.max neg_infinity t.p95 in
  let buf = Buffer.create ((t.nx + 1) * t.ny) in
  Buffer.add_string buf
    (Printf.sprintf "per-tile p95 leakage, %.4g .. %.4g nA ('%c' low, '%c' high)\n"
       lo hi shades.(0) shades.(9));
  for iy = t.ny - 1 downto 0 do
    for ix = 0 to t.nx - 1 do
      let v = t.p95.((iy * t.nx) + ix) in
      let level =
        if hi = lo then 0
        else Stdlib.min 9 (int_of_float ((v -. lo) /. (hi -. lo) *. 9.999))
      in
      Buffer.add_char buf shades.(level)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
