open Rgleak_num
open Rgleak_cells
open Rgleak_circuit

(* Per-instance compiled form: the logic family for output evaluation,
   the fan-in drivers (instance id or -1 = primary input), the
   control-bit slots feeding it, and the per-state mean leakage. *)
type inst = {
  family : Bench_format.gate_type;
  fanin : int array;  (** driver instance ids; -1 entries use pi_slots *)
  pi_slots : int array;  (** control index per fanin position with driver -1 *)
  dff_slot : int;  (** control index of the stored bit; -1 for combinational *)
  num_inputs : int;  (** external state bits of the library cell *)
  state_mu : float array;  (** mean leakage per state index *)
}

type t = {
  instances : inst array;
  num_controls : int;
}

let compile ~chars (netlist : Netlist.t) =
  let n = Netlist.size netlist in
  let next_control = ref netlist.Netlist.num_primary_inputs in
  let fresh_dff_slot () =
    let s = !next_control in
    incr next_control;
    s
  in
  (* primary-input slots are assigned deterministically per (instance,
     port), matching the exporter's convention *)
  let num_pi = Stdlib.max 1 netlist.Netlist.num_primary_inputs in
  let instances =
    Array.map
      (fun instn ->
        let cell_index = instn.Netlist.cell_index in
        let family =
          match Techmap.family_of_cell cell_index with
          | Some (f, _) -> f
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Sleep_vector.compile: cell %s has no gate-level model"
                 Library.cells.(cell_index).Cell.name)
        in
        let fanin = instn.Netlist.fanin in
        let pi_slots =
          Array.mapi
            (fun port driver ->
              if driver >= 0 then -1
              else (instn.Netlist.id + port) mod num_pi)
            fanin
        in
        let dff_slot =
          if family = Bench_format.Dff then fresh_dff_slot () else -1
        in
        let ch = chars.(cell_index) in
        {
          family;
          fanin;
          pi_slots;
          dff_slot;
          num_inputs = ch.Characterize.cell.Cell.num_inputs;
          state_mu =
            Array.map
              (fun (sc : Characterize.state_char) -> sc.Characterize.mu_analytic)
              ch.Characterize.states;
        })
      netlist.Netlist.instances
  in
  ignore n;
  { instances; num_controls = !next_control }

let num_controls t = t.num_controls

let eval_family family (bits : bool list) =
  match (family : Bench_format.gate_type) with
  | Bench_format.And -> List.for_all Fun.id bits
  | Bench_format.Nand -> not (List.for_all Fun.id bits)
  | Bench_format.Or -> List.exists Fun.id bits
  | Bench_format.Nor -> not (List.exists Fun.id bits)
  | Bench_format.Xor -> List.fold_left ( <> ) false bits
  | Bench_format.Xnor -> not (List.fold_left ( <> ) false bits)
  | Bench_format.Not -> not (match bits with b :: _ -> b | [] -> false)
  | Bench_format.Buff -> ( match bits with b :: _ -> b | [] -> false)
  | Bench_format.Dff -> false (* replaced by the stored bit *)

let cost t vector =
  if Array.length vector <> t.num_controls then
    invalid_arg "Sleep_vector.cost: vector length mismatch";
  let n = Array.length t.instances in
  let outputs = Array.make n false in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let inst = t.instances.(i) in
    let in_bits =
      Array.to_list
        (Array.mapi
           (fun port driver ->
             if driver >= 0 then outputs.(driver)
             else vector.(inst.pi_slots.(port)))
           inst.fanin)
    in
    (* the cell's external state: fanin bits first, then for flops the
       parked clock (low) and the stored bit; remaining bits low *)
    let state_bits = Array.make inst.num_inputs false in
    List.iteri
      (fun k b -> if k < inst.num_inputs then state_bits.(k) <- b)
      in_bits;
    if inst.dff_slot >= 0 && inst.num_inputs >= 3 then begin
      state_bits.(1) <- false (* clock *);
      state_bits.(2) <- vector.(inst.dff_slot)
    end;
    let state_index = ref 0 in
    Array.iteri
      (fun b v -> if v then state_index := !state_index lor (1 lsl b))
      state_bits;
    total := !total +. inst.state_mu.(!state_index);
    outputs.(i) <-
      (if inst.dff_slot >= 0 then vector.(inst.dff_slot)
       else eval_family inst.family in_bits)
  done;
  !total

let random_vector t rng =
  Array.init t.num_controls (fun _ -> Rng.uniform rng < 0.5)

let random_cost_stats t rng ~samples =
  let acc = Stats.Acc.create () in
  for _ = 1 to samples do
    Stats.Acc.add acc (cost t (random_vector t rng))
  done;
  (Stats.Acc.min acc, Stats.Acc.mean acc, Stats.Acc.max acc)

type search_result = {
  vector : bool array;
  cost : float;
  random_mean : float;
  improvement : float;
  evaluations : int;
}

let search ?(restarts = 8) ?(samples = 200) ~rng t =
  if t.num_controls = 0 then invalid_arg "Sleep_vector.search: nothing to control";
  let _, random_mean, _ = random_cost_stats t rng ~samples in
  let evaluations = ref samples in
  let best_vector = ref (random_vector t rng) in
  let best_cost = ref (cost t !best_vector) in
  incr evaluations;
  for _ = 1 to restarts do
    let v = random_vector t rng in
    let c = ref (cost t v) in
    incr evaluations;
    (* greedy single-bit descent to a local optimum *)
    let improved = ref true in
    while !improved do
      improved := false;
      for b = 0 to t.num_controls - 1 do
        v.(b) <- not v.(b);
        let c' = cost t v in
        incr evaluations;
        if c' < !c then begin
          c := c';
          improved := true
        end
        else v.(b) <- not v.(b)
      done
    done;
    if !c < !best_cost then begin
      best_cost := !c;
      best_vector := Array.copy v
    end
  done;
  {
    vector = !best_vector;
    cost = !best_cost;
    random_mean;
    improvement = 1.0 -. (!best_cost /. random_mean);
    evaluations = !evaluations;
  }
