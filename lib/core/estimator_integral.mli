(** The O(1) constant-time RG estimators (§3.2).

    [rect_2d] evaluates Eq. 20: a two-dimensional quadrature of
    [(W−x)(H−y)·F(ρ_L(√(x²+y²)))] over the quarter plane of offsets.

    [polar] evaluates Eqs. 24–26: when the within-die correlation
    reaches zero at D_max < min(W, H), the angular integral is the
    closed form [g(r) = 0.5 r² − (W+H) r + (π/2) W H] and only a single
    radial integral remains.  Die-to-die variation makes the correlation
    approach a non-zero floor; its covariance contribution is the exact
    constant term [n²·F(ρ_C)] (Eq. 26). *)

type result = { mean : float; variance : float; std : float }

val rect_2d :
  ?order:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  result
(** Gauss–Legendre tensor quadrature of Eq. 20 ([order] points per axis,
    default 96). *)

val polar_2d :
  ?order:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  result
(** Eq. 21: the exact polar-coordinate mapping of Eq. 20 with the
    angular bound [D(θ) = min(W/cosθ, H/sinθ)].  Always applicable
    (unlike {!polar}); numerically it must agree with {!rect_2d}, which
    the test suite checks — it exists because the paper derives it as
    the stepping stone to the single integral. *)

val polar_applicable :
  corr:Rgleak_process.Corr_model.t -> width:float -> height:float -> bool
(** True when the WID correlation has a finite zero-crossing below
    min(width, height). *)

val self_variance : rgcorr:Rg_correlation.t -> n:int -> float
(** The diagonal (same-site) variance term [n · σ²_{X_I}] (Eq. 11).
    The continuum estimators fold it into the n² scaling; the delta
    estimator needs it separately because per-cell leakage scales
    weight the diagonal by [Σ s_i²] but the off-diagonal continuum by
    [(Σ s_i / n)²]. *)

val polar :
  ?order:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  result
(** Single radial Gauss–Legendre integral (Eqs. 25–26, [order] default
    128).  Raises [Invalid_argument] when not applicable; check
    {!polar_applicable}.

    All three estimators run their quadrature through the guarded
    Gauss–Legendre rules ({!Rgleak_num.Quadrature.gauss_legendre_guarded}):
    converged integrals are returned bit-for-bit, non-convergent ones
    take the adaptive-Simpson fallback, and non-finite results raise
    {!Rgleak_num.Guard.Error} with a [Numeric] diagnostic. *)

val rect_2d_result :
  ?order:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result

val polar_2d_result :
  ?order:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result

val polar_result :
  ?order:int ->
  corr:Rgleak_process.Corr_model.t ->
  rgcorr:Rg_correlation.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  (result, Rgleak_num.Guard.diagnostic) Stdlib.result
(** Non-raising entry points: the raising estimators under
    {!Rgleak_num.Guard.protect}. *)
