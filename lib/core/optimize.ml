open Rgleak_num
module Obs = Rgleak_obs.Obs

let () = Obs.declare_hist ~owner:"optimize" "opt.swap_s"

type move = {
  mv_cell : int;
  mv_from : Vt_correction.flavor;
  mv_to : Vt_correction.flavor;
  mv_gain : float;
  mv_cost : float;
}

type report = {
  initial : Delta.result;
  final : Delta.result;
  budget : float;
  spent : float;
  moves : move list;
  state : Delta.state;
}

(* A candidate is one (cell, from → to) downgrade along the delay
   chain Lvt < Svt < Hvt.  Gains are additive across cells and static
   over the run (the mean is linear in per-cell scales and a swap
   never changes another cell's μ or scale), so all candidates can be
   ranked once.  Within one cell the chain is consumed in density
   order — Lvt→Svt always dominates Lvt→Hvt, which dominates Svt→Hvt,
   for every type (μ cancels in same-type comparisons) — so the
   eligibility check (entry's [from] must equal the cell's current
   flavor) reproduces per-move greedy exactly. *)
type cand = {
  c_cell : int;
  c_from : int;  (* flavor index *)
  c_to : int;
  c_gain : float;
  c_cost : float;
  c_density : float;
}

let run ~budget st0 =
  Obs.span "opt.run" @@ fun () ->
  if not (Float.is_finite budget && budget > 0.0) then
    Guard.invalid
      (Printf.sprintf "optimize: budget must be positive and finite (got %g)"
         budget);
  let n = Delta.n st0 in
  let flavors = Vt_correction.all_flavors in
  let nfl = Array.length flavors in
  let cands = ref [] in
  for cell = n - 1 downto 0 do
    let cur = Vt_correction.flavor_index (Delta.flavor_of st0 cell) in
    for f_from = cur to nfl - 2 do
      for f_to = f_from + 1 to nfl - 1 do
        (* gain(from → to) from the O(1) predictor, both legs relative
           to the current flavor; exact since the mean is linear. *)
        let gain =
          -.(Delta.mean_delta st0 ~cell ~flavor:flavors.(f_to)
            -. Delta.mean_delta st0 ~cell ~flavor:flavors.(f_from))
        in
        let cost =
          Vt_correction.delay_factor flavors.(f_to)
          -. Vt_correction.delay_factor flavors.(f_from)
        in
        if gain > 0.0 && cost > 0.0 then
          cands :=
            {
              c_cell = cell;
              c_from = f_from;
              c_to = f_to;
              c_gain = gain;
              c_cost = cost;
              c_density = gain /. cost;
            }
            :: !cands
      done
    done
  done;
  let cands = Array.of_list !cands in
  if Array.length cands = 0 then
    Guard.invalid
      "optimize: no candidate moves (every cell is already at the slowest \
       flavor, or all gains are zero)";
  if Obs.enabled () then Obs.count "opt.candidates" (Array.length cands);
  (* Total order: density desc, gain desc, cell asc, target asc. *)
  Array.sort
    (fun a b ->
      let c = Float.compare b.c_density a.c_density in
      if c <> 0 then c
      else
        let c = Float.compare b.c_gain a.c_gain in
        if c <> 0 then c
        else
          let c = Int.compare a.c_cell b.c_cell in
          if c <> 0 then c else Int.compare a.c_to b.c_to)
    cands;
  let track = Obs.enabled () in
  let initial = Delta.result st0 in
  if track then Obs.count "opt.delta_calls" 1;
  let st = ref st0 in
  let spent = ref 0.0 in
  let moves = ref [] in
  Array.iter
    (fun c ->
      let cur = Vt_correction.flavor_index (Delta.flavor_of !st c.c_cell) in
      if cur = c.c_from && c.c_cost <= budget -. !spent then begin
        let t0 = if track then Obs.now_ns () else 0L in
        let st', _r = Delta.apply_swap !st ~cell:c.c_cell ~flavor:flavors.(c.c_to) in
        st := st';
        spent := !spent +. c.c_cost;
        moves :=
          {
            mv_cell = c.c_cell;
            mv_from = flavors.(c.c_from);
            mv_to = flavors.(c.c_to);
            mv_gain = c.c_gain;
            mv_cost = c.c_cost;
          }
          :: !moves;
        if track then begin
          Obs.count "opt.swaps" 1;
          Obs.count "opt.delta_calls" 1;
          Obs.hist_record "opt.swap_s"
            (Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9)
        end
      end)
    cands;
  let final = if !moves = [] then initial else Delta.result !st in
  if track then Obs.count "opt.delta_calls" 1;
  {
    initial;
    final;
    budget;
    spent = !spent;
    moves = List.rev !moves;
    state = !st;
  }
