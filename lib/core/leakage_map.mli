(** Spatial leakage maps: per-tile leakage statistics over the die.

    Chip-level mean and σ say nothing about {e where} the leakage sits;
    power-grid and thermal analyses want a map.  The die is tiled, each
    tile holds its share of the Random Gate population, and within-die
    variation makes tile leakages random and spatially correlated.  This
    module samples correlated channel-length fields at the tile centers
    (tiles are assumed small against the correlation length, so gates in
    a tile share the local length) and reports per-tile statistics plus
    the hotspot ratio — the expected peak-tile to mean-tile leakage.

    Requires a correlation family that is positive definite in 2-D
    ({!Rgleak_process.Corr_model.psd_in_2d}). *)

type t = private {
  nx : int;
  ny : int;
  tile_w : float;  (** µm *)
  tile_h : float;
  mean : float array;  (** per-tile mean leakage (nA), row-major *)
  p95 : float array;  (** per-tile 95th percentile *)
  hotspot_ratio : float;
      (** E\[max tile / mean tile\] over the sampled dies *)
  samples : int;
}

val compute :
  ?tiles:int ->
  ?samples:int ->
  ?seed:int ->
  rg:Random_gate.t ->
  corr:Rgleak_process.Corr_model.t ->
  n:int ->
  width:float ->
  height:float ->
  unit ->
  t
(** [tiles] per axis (default 12), [samples] dies (default 400).  The
    conditional per-gate leakage curve Σ wₘ aₘe^{bₘL+cₘL²} is tabulated
    once; each sampled die costs one correlated-field draw plus table
    lookups. *)

val tile : t -> ix:int -> iy:int -> float * float
(** (mean, p95) of a tile by integer coordinates. *)

val total_mean : t -> float
(** Sum of per-tile means — approaches the chip mean estimate. *)

val render : t -> string
(** Small ASCII heat map of the per-tile p95 (for terminals and logs). *)
