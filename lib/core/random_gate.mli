(** The Random Gate (RG) of §2.2.2.

    A RG is a random variable over gate {e types} whose distribution is
    the design's cell-usage histogram; its leakage [X_I] lives on the
    product of the type space and the process space.  Because every cell
    is characterized per input state, we expand the type space to
    (cell, input state) pairs with weights α_i·P(state | signal
    probability): a gate type in a fixed state has a clean fitted
    [a·e^{bL+cL²}] leakage law, so Eqs. 7–11 apply directly with the
    expanded weights.

    [mu] is Eq. 7, [second_moment] Eq. 8, and [variance] their
    difference; the variance includes the gate-{e type} randomness (the
    diagonal term of Eq. 11). *)

type mode = Analytic | Reference
(** Which per-state cell moments feed the model: the (a,b,c) closed
    forms, or the quadrature reference standing in for MC mode. *)

type component = {
  cell_index : int;
  state_index : int;
  weight : float;  (** α_cell · P(state) *)
  mu : float;
  sigma : float;
  triplet : Rgleak_cells.Mgf.triplet;
}

type t = private {
  components : component array;  (** only non-zero-weight entries *)
  mode : mode;
  mu_l : float;  (** channel length mean *)
  sigma_l : float;  (** channel length total std *)
  mu : float;
  second_moment : float;
  variance : float;
  cell_mu : float array;  (** per-library-cell state-weighted mean *)
  cell_mixture_variance : float array;  (** per-library-cell mixture variance *)
}

val create :
  ?mode:mode ->
  chars:Rgleak_cells.Characterize.cell_char array ->
  histogram:Rgleak_circuit.Histogram.t ->
  p:float ->
  unit ->
  t
(** Builds the RG for a cell mix at signal probability [p].  [chars]
    must be a characterization of the full library (canonical order). *)

val sigma : t -> float
val num_components : t -> int

val mean_of_cell : t -> int -> float
(** State-weighted mean leakage of one library cell under this RG's
    signal probability (Σ_s P(s) μ_{cell,s}); 0 for cells outside the
    histogram support is NOT implied — the value is defined for any
    cell index present in the characterization. *)

val mixture_variance_of_cell : t -> int -> float
(** State-mixture variance of one cell (used as the diagonal term of
    the exact pairwise estimator). *)
