open Rgleak_num

type sample = { distance : float; correlation : float; weight : float }

let empirical ~values ~locations ?(bins = 24) () =
  let dies = Array.length values in
  if dies < 3 then invalid_arg "Corr_fit.empirical: need at least 3 dies";
  let sites = Array.length locations in
  Array.iter
    (fun row ->
      if Array.length row <> sites then
        invalid_arg "Corr_fit.empirical: ragged measurement matrix")
    values;
  let dmax = ref 0.0 in
  for i = 0 to sites - 1 do
    for j = i + 1 to sites - 1 do
      dmax := Float.max !dmax (Variation.distance locations.(i) locations.(j))
    done
  done;
  let width = !dmax /. float_of_int bins in
  let sums = Array.make bins 0.0 and counts = Array.make bins 0 in
  let mids = Array.init bins (fun b -> (float_of_int b +. 0.5) *. width) in
  for i = 0 to sites - 1 do
    for j = i + 1 to sites - 1 do
      let acc = Stats.Cov_acc.create () in
      for die = 0 to dies - 1 do
        Stats.Cov_acc.add acc values.(die).(i) values.(die).(j)
      done;
      let d = Variation.distance locations.(i) locations.(j) in
      let b = Stdlib.min (bins - 1) (int_of_float (d /. width)) in
      sums.(b) <- sums.(b) +. Stats.Cov_acc.correlation acc;
      counts.(b) <- counts.(b) + 1
    done
  done;
  Array.to_list mids
  |> List.mapi (fun b mid ->
         if counts.(b) = 0 then None
         else
           Some
             {
               distance = mid;
               correlation = sums.(b) /. float_of_int counts.(b);
               weight = float_of_int counts.(b);
             })
  |> List.filter_map Fun.id |> Array.of_list

type family = Fit_exponential | Fit_gaussian | Fit_linear | Fit_spherical

let family_name = function
  | Fit_exponential -> "exponential"
  | Fit_gaussian -> "gaussian"
  | Fit_linear -> "linear"
  | Fit_spherical -> "spherical"

type result = {
  model : Corr_model.t;
  family : family;
  scale : float;
  floor : float;
  rss : float;
}

let wid_shape family ~scale d =
  let d = Float.abs d in
  match family with
  | Fit_exponential -> exp (-.d /. scale)
  | Fit_gaussian -> exp (-.(d /. scale) *. (d /. scale))
  | Fit_linear -> Float.max 0.0 (1.0 -. (d /. scale))
  | Fit_spherical ->
    if d >= scale then 0.0
    else begin
      let r = d /. scale in
      1.0 -. (1.5 *. r) +. (0.5 *. r *. r *. r)
    end

let rss_of family ~scale ~floor samples =
  Array.fold_left
    (fun acc s ->
      let model = floor +. ((1.0 -. floor) *. wid_shape family ~scale s.distance) in
      let r = model -. s.correlation in
      acc +. (s.weight *. r *. r))
    0.0 samples

(* Golden-section minimization of a unimodal-ish 1-D objective. *)
let golden f ~lo ~hi =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let c = ref (hi -. (phi *. (hi -. lo))) in
  let d = ref (lo +. (phi *. (hi -. lo))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !b -. !a > 1e-6 *. (1.0 +. Float.abs !b) && !iter < 200 do
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end;
    incr iter
  done;
  0.5 *. (!a +. !b)

let fit_family ~sigma_total family samples =
  if Array.length samples < 3 then
    invalid_arg "Corr_fit.fit_family: need at least 3 samples";
  if sigma_total <= 0.0 then
    invalid_arg "Corr_fit.fit_family: sigma_total must be positive";
  let dmax =
    Array.fold_left (fun acc s -> Float.max acc s.distance) 0.0 samples
  in
  let best = ref (nan, nan, infinity) in
  (* coarse grid over the floor, golden-section over the scale *)
  for k = 0 to 38 do
    let floor = float_of_int k /. 40.0 in
    let scale =
      golden (fun s -> rss_of family ~scale:s ~floor samples)
        ~lo:(dmax /. 50.0) ~hi:(4.0 *. dmax)
    in
    let rss = rss_of family ~scale ~floor samples in
    let _, _, best_rss = !best in
    if rss < best_rss then best := (floor, scale, rss)
  done;
  (* refine the floor by golden-section around the best grid point *)
  let floor0, _, _ = !best in
  let floor =
    golden
      (fun fl ->
        let scale =
          golden (fun s -> rss_of family ~scale:s ~floor:fl samples)
            ~lo:(dmax /. 50.0) ~hi:(4.0 *. dmax)
        in
        rss_of family ~scale ~floor:fl samples)
      ~lo:(Float.max 0.0 (floor0 -. 0.05))
      ~hi:(Float.min 0.975 (floor0 +. 0.05))
  in
  let scale =
    golden (fun s -> rss_of family ~scale:s ~floor samples)
      ~lo:(dmax /. 50.0) ~hi:(4.0 *. dmax)
  in
  let rss = rss_of family ~scale ~floor samples in
  let sigma_d2d = sigma_total *. sqrt floor in
  let sigma_wid = sigma_total *. sqrt (1.0 -. floor) in
  let param =
    Process_param.make ~name:"extracted" ~nominal:1.0 ~sigma_d2d ~sigma_wid
  in
  let fam =
    match family with
    | Fit_exponential -> Corr_model.Exponential { range = scale }
    | Fit_gaussian -> Corr_model.Gaussian { range = scale }
    | Fit_linear -> Corr_model.Linear { dmax = scale }
    | Fit_spherical -> Corr_model.Spherical { dmax = scale }
  in
  { model = Corr_model.create fam param; family; scale; floor; rss }

let all_families = [ Fit_exponential; Fit_gaussian; Fit_linear; Fit_spherical ]

let fit ?(families = all_families) ~sigma_total samples =
  List.map (fun fam -> fit_family ~sigma_total fam samples) families
  |> List.sort (fun a b -> compare a.rss b.rss)

let best ?families ~sigma_total samples =
  match fit ?families ~sigma_total samples with
  | [] -> invalid_arg "Corr_fit.best: no families requested"
  | r :: _ -> r
