(** Process-parameter variation description.

    Following §2 of the paper, each parameter has a die-to-die (D2D)
    component shared by all devices on a die and a within-die (WID)
    component that varies across the die with spatial correlation; the
    two are independent, so [sigma² = sigma_d2d² + sigma_wid²].

    Units: channel length in nanometres, voltages in volts, distances
    across the die in micrometres. *)

type t = {
  name : string;
  nominal : float;  (** mean value of the parameter *)
  sigma_d2d : float;  (** standard deviation of the D2D component *)
  sigma_wid : float;  (** standard deviation of the WID component *)
}

val make : name:string -> nominal:float -> sigma_d2d:float -> sigma_wid:float -> t
(** Constructor with validation (non-negative sigmas, positive nominal). *)

val sigma_total : t -> float
(** [sqrt (sigma_d2d² + sigma_wid²)]. *)

val variance_total : t -> float

val d2d_fraction : t -> float
(** Fraction of the total variance carried by the D2D component; this is
    the correlation floor ρ_C of Eq. 26. *)

val default_channel_length : t
(** Synthetic 90 nm-class calibration: nominal L = 90 nm,
    sigma_d2d = 3 nm, sigma_wid = 3 nm (±3σ ≈ ±14%). *)

val default_vt_rdf_sigma : float
(** Standard deviation (V) of the purely random threshold-voltage
    component due to dopant fluctuations (25 mV), independent across
    devices per Keshavarzi et al. *)

val pp : Format.formatter -> t -> unit
