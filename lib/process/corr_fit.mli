(** Robust extraction of the spatial correlation function from
    measurements (the substrate the paper cites as Xiong–Zolotov–He,
    ISPD 2006).

    Test structures (or here: sampled dies) give noisy correlation
    estimates at a set of distances; raw estimates need not form a valid
    correlation function.  Extraction fits a parametric family — which
    is valid by construction — estimating both the die-to-die floor ρ_C
    and the within-die scale, and reports the residual so families can
    be compared. *)

type sample = { distance : float; correlation : float; weight : float }
(** One measured point; [weight] is typically the pair count behind the
    estimate. *)

val empirical :
  values:float array array ->
  locations:Variation.location array ->
  ?bins:int ->
  unit ->
  sample array
(** Builds distance-binned correlation estimates from repeated field
    measurements: [values.(die).(site)] is the parameter at a site on a
    die.  Pairwise Pearson correlations across dies are averaged within
    [bins] (default 24) equal-width distance bins. *)

type family = Fit_exponential | Fit_gaussian | Fit_linear | Fit_spherical

val family_name : family -> string

type result = {
  model : Corr_model.t;  (** the fitted, valid correlation model *)
  family : family;
  scale : float;  (** fitted range/dmax in µm *)
  floor : float;  (** fitted ρ_C *)
  rss : float;  (** weighted residual sum of squares *)
}

val fit_family :
  sigma_total:float -> family -> sample array -> result
(** Fits floor and scale for one family by grid + golden-section search;
    [sigma_total] is the parameter's known total std (from marginals),
    used to build the returned model's D2D/WID split. *)

val fit : ?families:family list -> sigma_total:float -> sample array -> result list
(** Fits every family (default: all four) and returns results sorted by
    residual, best first. *)

val best : ?families:family list -> sigma_total:float -> sample array -> result
(** Head of {!fit}. *)
