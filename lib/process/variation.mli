(** Monte-Carlo sampling of per-die parameter realizations.

    A die instance consists of one shared D2D offset plus a spatially
    correlated WID field evaluated at the requested locations (sampled
    through a Cholesky factor of the WID correlation matrix).  This is
    the ground-truth generator used to validate the analytical
    estimators. *)

type location = { x : float; y : float }
(** A die coordinate in micrometres. *)

val distance : location -> location -> float

type sampler
(** A prepared sampler for a fixed set of locations (factorization is
    done once at construction). *)

val prepare : Corr_model.t -> location array -> sampler
(** Builds the WID correlation matrix for the locations and factors it
    through {!Rgleak_num.Cholesky.decompose_robust}: rounding-level
    indefiniteness is repaired by the jitter-retry guardrail, while a
    genuinely indefinite family (one not positive definite in 2-D —
    see {!Corr_model.psd_in_2d}) raises {!Rgleak_num.Guard.Error} with
    a [Numeric] diagnostic.  Cost O(n³); intended for
    validation-scale location sets. *)

val sample : sampler -> Rgleak_num.Rng.t -> float array
(** Draws one die: returns the parameter value at each location
    (nominal + shared D2D offset + correlated WID deviation). *)

val sample_into :
  sampler ->
  Rgleak_num.Rng.t ->
  z:float array ->
  wid:float array ->
  out:float array ->
  unit
(** Allocation-free {!sample} into caller scratch: [z] receives the
    standard normals, [wid] the correlated WID field, [out] the per
    location parameter values (each of length >= the location count).
    Consumes the same RNG stream in the same order as {!sample} and
    performs identical arithmetic, so the two are bit-interchangeable.
    Raises [Invalid_argument] when a scratch array is too short. *)

type shift
(** A precomputed importance-sampling mean shift in the whitened
    Gaussian space, built so every location's parameter moves by the
    same amount while the proposal stays as close as possible to the
    nominal density (minimum whitened norm). *)

val uniform_shift : sampler -> delta:float -> shift
(** [uniform_shift t ~delta] builds the minimum-norm whitened shift
    that moves the sampled parameter at {e every} location by [delta]:
    the D2D normal shifts by [θ₀ = Δ·a/(a² + b²/Q)] and the colored
    WID field by the constant [c = Δ·b/(Q·a² + b²)], where [a]/[b] are
    the D2D/WID sigmas and [Q = |F⁻¹·1|²] comes from one forward
    substitution against the Cholesky factor (O(n²), once per shift).
    Raises [Invalid_argument] on a non-finite [delta] or a
    variation-free model, and {!Rgleak_num.Guard.Error} ([Numeric],
    site ["tail.shift"]) when the factor is singular (perfectly
    correlated locations). *)

val shift_delta : shift -> float
(** The uniform parameter displacement the shift realizes. *)

val shift_norm2 : shift -> float
(** [|θ|²], the squared whitened norm of the shift — the exponential
    tilt paid per replica ([E_q[w²] = exp |θ|²] for a pure mean
    shift). *)

val sample_shifted_into :
  sampler ->
  Rgleak_num.Rng.t ->
  shift:shift ->
  z:float array ->
  wid:float array ->
  out:float array ->
  float
(** Like {!sample_into} but draws from the shifted proposal and
    returns the log likelihood ratio [log(nominal/proposal)] =
    [-θ·z - |θ|²/2] of the drawn point — the exact Gaussian
    importance weight in log space.  Consumes the RNG stream in the
    same order as {!sample_into}; with a [delta = 0] shift it performs
    the same arithmetic and returns [0.].  Raises [Invalid_argument]
    on short scratch or a shift built for a different sampler. *)

val sample_pair :
  Corr_model.t -> rho_wid:float -> Rgleak_num.Rng.t -> float * float
(** Draws the parameter at two locations whose WID correlation is
    [rho_wid] directly (no matrix build); used by the Fig. 2 experiment
    which sweeps correlation rather than distance. *)

val locations_count : sampler -> int

val param : sampler -> Process_param.t
(** The process parameter the sampler realizes (nominal and sigmas). *)
