(** Monte-Carlo sampling of per-die parameter realizations.

    A die instance consists of one shared D2D offset plus a spatially
    correlated WID field evaluated at the requested locations (sampled
    through a Cholesky factor of the WID correlation matrix).  This is
    the ground-truth generator used to validate the analytical
    estimators. *)

type location = { x : float; y : float }
(** A die coordinate in micrometres. *)

val distance : location -> location -> float

type sampler
(** A prepared sampler for a fixed set of locations (factorization is
    done once at construction). *)

val prepare : Corr_model.t -> location array -> sampler
(** Builds the WID correlation matrix for the locations and factors it
    through {!Rgleak_num.Cholesky.decompose_robust}: rounding-level
    indefiniteness is repaired by the jitter-retry guardrail, while a
    genuinely indefinite family (one not positive definite in 2-D —
    see {!Corr_model.psd_in_2d}) raises {!Rgleak_num.Guard.Error} with
    a [Numeric] diagnostic.  Cost O(n³); intended for
    validation-scale location sets. *)

val sample : sampler -> Rgleak_num.Rng.t -> float array
(** Draws one die: returns the parameter value at each location
    (nominal + shared D2D offset + correlated WID deviation). *)

val sample_into :
  sampler ->
  Rgleak_num.Rng.t ->
  z:float array ->
  wid:float array ->
  out:float array ->
  unit
(** Allocation-free {!sample} into caller scratch: [z] receives the
    standard normals, [wid] the correlated WID field, [out] the per
    location parameter values (each of length >= the location count).
    Consumes the same RNG stream in the same order as {!sample} and
    performs identical arithmetic, so the two are bit-interchangeable.
    Raises [Invalid_argument] when a scratch array is too short. *)

val sample_pair :
  Corr_model.t -> rho_wid:float -> Rgleak_num.Rng.t -> float * float
(** Draws the parameter at two locations whose WID correlation is
    [rho_wid] directly (no matrix build); used by the Fig. 2 experiment
    which sweeps correlation rather than distance. *)

val locations_count : sampler -> int
