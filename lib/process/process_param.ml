type t = {
  name : string;
  nominal : float;
  sigma_d2d : float;
  sigma_wid : float;
}

let make ~name ~nominal ~sigma_d2d ~sigma_wid =
  if nominal <= 0.0 then invalid_arg "Process_param.make: nominal must be positive";
  if sigma_d2d < 0.0 || sigma_wid < 0.0 then
    invalid_arg "Process_param.make: sigmas must be non-negative";
  { name; nominal; sigma_d2d; sigma_wid }

let variance_total t = (t.sigma_d2d *. t.sigma_d2d) +. (t.sigma_wid *. t.sigma_wid)
let sigma_total t = sqrt (variance_total t)

let d2d_fraction t =
  let v = variance_total t in
  if v = 0.0 then 0.0 else t.sigma_d2d *. t.sigma_d2d /. v

let default_channel_length =
  make ~name:"channel-length" ~nominal:90.0 ~sigma_d2d:3.0 ~sigma_wid:3.0

let default_vt_rdf_sigma = 0.025

let pp fmt t =
  Format.fprintf fmt "%s: nominal=%g sigma_d2d=%g sigma_wid=%g (total %g)"
    t.name t.nominal t.sigma_d2d t.sigma_wid (sigma_total t)
