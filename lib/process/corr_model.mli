(** Spatial correlation of the within-die parameter component, and the
    total (D2D + WID) correlation used by the estimators.

    The WID correlation is a function of the distance between two die
    locations (Xiong-Zolotov-He style extraction gives such functions);
    several standard families are provided.  All distances are in
    micrometres. *)

type wid_family =
  | Exponential of { range : float }
      (** ρ(d) = exp(−d / range); never reaches exactly zero.
          Positive definite in any dimension. *)
  | Gaussian of { range : float }
      (** ρ(d) = exp(−(d / range)²).  Positive definite in any
          dimension. *)
  | Linear of { dmax : float }
      (** ρ(d) = max(0, 1 − d/dmax); reaches zero at [dmax].
          {b Caution}: the triangle function is a valid covariance only
          in one dimension — on dense 2-D site grids its correlation
          matrix is indefinite, so it cannot be Monte-Carlo sampled
          ({!Rgleak_num.Cholesky.decompose_semidefinite} will refuse).
          The analytical estimators accept it. *)
  | Spherical of { dmax : float }
      (** Variogram-derived: ρ(d) = 1 − 1.5 (d/dmax) + 0.5 (d/dmax)³ for
          d < dmax, else 0; reaches zero with zero slope.  Positive
          definite up to three dimensions — the recommended compactly
          supported family (admits the polar O(1) method {e and} MC
          sampling). *)
  | Truncated_exponential of { range : float; dmax : float }
      (** Exponential shifted and scaled to hit exactly zero at [dmax],
          so the polar constant-time method applies.  Not guaranteed
          positive definite in 2-D (mild truncation is harmless in
          practice, aggressive truncation is not). *)

type t
(** A complete correlation model: WID family plus the D2D floor derived
    from a parameter's variance split. *)

val create : wid_family -> Process_param.t -> t
(** Builds the total-correlation model for a parameter: the correlation
    between the parameter at two locations distance [d] apart is
    [ρ(d) = (σ²_d2d + σ²_wid · ρ_wid(d)) / (σ²_d2d + σ²_wid)]. *)

val wid : t -> float -> float
(** WID-only correlation at a distance. *)

val total : t -> float -> float
(** Total correlation at a distance (what the estimators consume). *)

val floor : t -> float
(** The constant D2D part ρ_C = σ²_d2d / σ²_total (Eq. 26). *)

val wid_dmax : t -> float option
(** Distance at which the WID correlation is exactly zero, when the
    family has one ([Linear], [Spherical], [Truncated_exponential]). *)

val psd_in_2d : t -> bool
(** Whether the WID family is guaranteed positive semi-definite on 2-D
    point sets (and hence safe for Monte-Carlo field sampling):
    true for [Exponential], [Gaussian] and [Spherical]. *)

val family : t -> wid_family
val param : t -> Process_param.t

val is_valid_correlation : t -> samples:int -> upto:float -> bool
(** Sanity predicate used by property tests: checks ρ(0)=1, values in
    [\[floor-eps, 1\]], and monotone non-increase over [samples] points
    up to distance [upto]. *)

val pp : Format.formatter -> t -> unit
