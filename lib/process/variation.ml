open Rgleak_num

type location = { x : float; y : float }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

type sampler = {
  model : Corr_model.t;
  factor : Matrix.t; (* Cholesky factor of the WID correlation matrix *)
  n : int;
}

let prepare model locations =
  let n = Array.length locations in
  let corr =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        if i = j then 1.0
        else Corr_model.wid model (distance locations.(i) locations.(j)))
  in
  (* Jitter-retry guardrail: correlation matrices that are PSD in exact
     arithmetic but indefinite through rounding are repaired with a
     negligible diagonal regularization; genuinely indefinite families
     (e.g. Linear on a dense 2-D grid -- see Corr_model.psd_in_2d)
     exhaust the ladder and surface as a typed Numeric diagnostic at
     site "cholesky". *)
  let { Cholesky.factor; _ } = Cholesky.decompose_robust corr in
  { model; factor; n }

(* Draw order is part of the sampling contract: one D2D gaussian first,
   then the WID field's standard normals in ascending component order —
   [sample] and [sample_into] consume identical RNG streams. *)
let sample_into t rng ~z ~wid ~out =
  if Array.length wid < t.n || Array.length out < t.n then
    invalid_arg "Variation.sample_into: scratch shorter than the field";
  let p = Corr_model.param t.model in
  let d2d = Rng.gaussian rng *. p.Process_param.sigma_d2d in
  Cholesky.sample_into t.factor rng ~z ~out:wid;
  for i = 0 to t.n - 1 do
    Array.unsafe_set out i
      (p.Process_param.nominal +. d2d
      +. (p.Process_param.sigma_wid *. Array.unsafe_get wid i))
  done

let sample t rng =
  let z = Array.make t.n 0.0 and wid = Array.make t.n 0.0 in
  let out = Array.make t.n 0.0 in
  sample_into t rng ~z ~wid ~out;
  out

(* Importance-sampling mean shift in the whitened space.

   The sampling model is  out_i = nominal + a·z₀ + b·(F·z)_i  with
   a = σ_d2d, b = σ_wid, F the Cholesky factor and (z₀, z) standard
   normals.  A proposal that shifts every location's parameter by the
   same Δ must satisfy  a·θ₀ + b·(F·θ_w)_i = Δ for all i; taking
   F·θ_w = c·1 (i.e. θ_w = c·v with v = F⁻¹·1) and minimizing the
   whitened norm θ₀² + c²·|v|² subject to a·θ₀ + b·c = Δ gives the
   closed form below.  Because F·θ_w is exactly the constant c, the
   shifted WID field is just (wid_i + c) — the Cholesky coloring is
   untouched — and only the likelihood ratio needs the O(n) dot
   product v·z per replica. *)
type shift = {
  sh_delta : float; (* uniform parameter shift applied to every location *)
  sh_d2d : float; (* θ₀: whitened shift on the shared D2D normal *)
  sh_field : float; (* c: uniform offset of the colored WID field *)
  sh_dir : float array; (* v = F⁻¹·1, for the per-replica dot product *)
  sh_norm2 : float; (* |θ|² = θ₀² + c²·|v|² *)
}

let shift_delta s = s.sh_delta
let shift_norm2 s = s.sh_norm2

let uniform_shift t ~delta =
  if not (Float.is_finite delta) then
    invalid_arg "Variation.uniform_shift: shift must be finite";
  let p = Corr_model.param t.model in
  let a = p.Process_param.sigma_d2d and b = p.Process_param.sigma_wid in
  if not (a > 0.0 || b > 0.0) then
    invalid_arg "Variation.uniform_shift: model has no process variation";
  (* Forward substitution F·v = 1.  A (near-)zero pivot means the
     factor is singular — perfectly correlated locations from a
     semidefinite repair — and no uniform whitened shift exists. *)
  let v = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    let acc = ref 1.0 in
    for k = 0 to i - 1 do
      acc := !acc -. (Matrix.get t.factor i k *. v.(k))
    done;
    let d = Matrix.get t.factor i i in
    if Float.abs d < 1e-12 then
      Guard.numeric ~site:"tail.shift"
        (Printf.sprintf
           "Variation.uniform_shift: singular correlation factor (zero \
            pivot at row %d — perfectly correlated locations); no \
            uniform whitened shift exists"
           i);
    v.(i) <- !acc /. d
  done;
  let q = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v in
  (* Minimum-norm split of Δ between the D2D and WID channels:
     θ₀ = Δ·a / (a² + b²/Q)  and  c = Δ·b / (Q·a² + b²); either
     formula degrades gracefully when one σ is zero. *)
  let theta0 = if a = 0.0 then 0.0 else delta *. a /. ((a *. a) +. (b *. b /. q)) in
  let c = if b = 0.0 then 0.0 else delta *. b /. ((q *. a *. a) +. (b *. b)) in
  let norm2 = (theta0 *. theta0) +. (c *. c *. q) in
  { sh_delta = delta; sh_d2d = theta0; sh_field = c; sh_dir = v; sh_norm2 = norm2 }

(* Shifted variant of [sample_into]: identical RNG stream (one D2D
   gaussian, then the WID normals), the proposal mean added on top.
   Returns the log likelihood ratio  log(p/q) = -θ·z - |θ|²/2  of the
   nominal density over the proposal at the drawn point — the exact
   Gaussian IS weight, computed in the whitened space where both
   densities are standard normals. *)
let sample_shifted_into t rng ~shift ~z ~wid ~out =
  if Array.length wid < t.n || Array.length out < t.n then
    invalid_arg "Variation.sample_shifted_into: scratch shorter than the field";
  if Array.length shift.sh_dir <> t.n then
    invalid_arg "Variation.sample_shifted_into: shift built for another sampler";
  let p = Corr_model.param t.model in
  let z0 = Rng.gaussian rng in
  Cholesky.sample_into t.factor rng ~z ~out:wid;
  let dot = ref 0.0 in
  for i = 0 to t.n - 1 do
    dot := !dot +. (Array.unsafe_get shift.sh_dir i *. Array.unsafe_get z i)
  done;
  let d2d = p.Process_param.sigma_d2d *. (z0 +. shift.sh_d2d) in
  for i = 0 to t.n - 1 do
    Array.unsafe_set out i
      (p.Process_param.nominal +. d2d
      +. (p.Process_param.sigma_wid
         *. (Array.unsafe_get wid i +. shift.sh_field)))
  done;
  (* the trailing +. 0.0 normalizes the identity proposal's -0.0 to
     +0.0, keeping zero-shift weights bitwise exact *)
  -.((shift.sh_d2d *. z0) +. (shift.sh_field *. !dot))
  -. (0.5 *. shift.sh_norm2)
  +. 0.0

let sample_pair model ~rho_wid rng =
  if not (rho_wid >= -1.0 && rho_wid <= 1.0) then
    invalid_arg "Variation.sample_pair: correlation out of range";
  let p = Corr_model.param model in
  let d2d = Rng.gaussian rng *. p.Process_param.sigma_d2d in
  let z1 = Rng.gaussian rng in
  let z2 = Rng.gaussian rng in
  let w1 = z1 in
  let w2 = (rho_wid *. z1) +. (sqrt (1.0 -. (rho_wid *. rho_wid)) *. z2) in
  let v1 = p.Process_param.nominal +. d2d +. (p.Process_param.sigma_wid *. w1) in
  let v2 = p.Process_param.nominal +. d2d +. (p.Process_param.sigma_wid *. w2) in
  (v1, v2)

let locations_count t = t.n
let param t = Corr_model.param t.model
