open Rgleak_num

type location = { x : float; y : float }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

type sampler = {
  model : Corr_model.t;
  factor : Matrix.t; (* Cholesky factor of the WID correlation matrix *)
  n : int;
}

let prepare model locations =
  let n = Array.length locations in
  let corr =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        if i = j then 1.0
        else Corr_model.wid model (distance locations.(i) locations.(j)))
  in
  (* Jitter-retry guardrail: correlation matrices that are PSD in exact
     arithmetic but indefinite through rounding are repaired with a
     negligible diagonal regularization; genuinely indefinite families
     (e.g. Linear on a dense 2-D grid -- see Corr_model.psd_in_2d)
     exhaust the ladder and surface as a typed Numeric diagnostic at
     site "cholesky". *)
  let { Cholesky.factor; _ } = Cholesky.decompose_robust corr in
  { model; factor; n }

(* Draw order is part of the sampling contract: one D2D gaussian first,
   then the WID field's standard normals in ascending component order —
   [sample] and [sample_into] consume identical RNG streams. *)
let sample_into t rng ~z ~wid ~out =
  if Array.length wid < t.n || Array.length out < t.n then
    invalid_arg "Variation.sample_into: scratch shorter than the field";
  let p = Corr_model.param t.model in
  let d2d = Rng.gaussian rng *. p.Process_param.sigma_d2d in
  Cholesky.sample_into t.factor rng ~z ~out:wid;
  for i = 0 to t.n - 1 do
    Array.unsafe_set out i
      (p.Process_param.nominal +. d2d
      +. (p.Process_param.sigma_wid *. Array.unsafe_get wid i))
  done

let sample t rng =
  let z = Array.make t.n 0.0 and wid = Array.make t.n 0.0 in
  let out = Array.make t.n 0.0 in
  sample_into t rng ~z ~wid ~out;
  out

let sample_pair model ~rho_wid rng =
  if not (rho_wid >= -1.0 && rho_wid <= 1.0) then
    invalid_arg "Variation.sample_pair: correlation out of range";
  let p = Corr_model.param model in
  let d2d = Rng.gaussian rng *. p.Process_param.sigma_d2d in
  let z1 = Rng.gaussian rng in
  let z2 = Rng.gaussian rng in
  let w1 = z1 in
  let w2 = (rho_wid *. z1) +. (sqrt (1.0 -. (rho_wid *. rho_wid)) *. z2) in
  let v1 = p.Process_param.nominal +. d2d +. (p.Process_param.sigma_wid *. w1) in
  let v2 = p.Process_param.nominal +. d2d +. (p.Process_param.sigma_wid *. w2) in
  (v1, v2)

let locations_count t = t.n
