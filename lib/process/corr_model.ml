type wid_family =
  | Exponential of { range : float }
  | Gaussian of { range : float }
  | Linear of { dmax : float }
  | Spherical of { dmax : float }
  | Truncated_exponential of { range : float; dmax : float }

type t = { fam : wid_family; p : Process_param.t }

let validate = function
  | Exponential { range } | Gaussian { range } ->
    if range <= 0.0 then invalid_arg "Corr_model: range must be positive"
  | Linear { dmax } | Spherical { dmax } ->
    if dmax <= 0.0 then invalid_arg "Corr_model: dmax must be positive"
  | Truncated_exponential { range; dmax } ->
    if range <= 0.0 || dmax <= 0.0 then
      invalid_arg "Corr_model: range and dmax must be positive"

let create fam p =
  validate fam;
  { fam; p }

let wid t d =
  let d = Float.abs d in
  match t.fam with
  | Exponential { range } -> exp (-.d /. range)
  | Gaussian { range } -> exp (-.(d /. range) *. (d /. range))
  | Linear { dmax } -> Float.max 0.0 (1.0 -. (d /. dmax))
  | Spherical { dmax } ->
    if d >= dmax then 0.0
    else begin
      let r = d /. dmax in
      1.0 -. (1.5 *. r) +. (0.5 *. r *. r *. r)
    end
  | Truncated_exponential { range; dmax } ->
    if d >= dmax then 0.0
    else begin
      (* exp(-d/range) shifted by its value at dmax and renormalized so
         that rho(0) = 1 and rho(dmax) = 0. *)
      let tail = exp (-.dmax /. range) in
      (exp (-.d /. range) -. tail) /. (1.0 -. tail)
    end

let floor t = Process_param.d2d_fraction t.p

let total t d =
  let rc = floor t in
  rc +. ((1.0 -. rc) *. wid t d)

let wid_dmax t =
  match t.fam with
  | Exponential _ | Gaussian _ -> None
  | Linear { dmax } | Spherical { dmax } | Truncated_exponential { dmax; _ } ->
    Some dmax

let psd_in_2d t =
  match t.fam with
  | Exponential _ | Gaussian _ | Spherical _ -> true
  | Linear _ | Truncated_exponential _ -> false

let family t = t.fam
let param t = t.p

let is_valid_correlation t ~samples ~upto =
  let eps = 1e-12 in
  let ok = ref (Float.abs (total t 0.0 -. 1.0) < 1e-9) in
  let prev = ref (total t 0.0) in
  for i = 1 to samples do
    let d = float_of_int i /. float_of_int samples *. upto in
    let r = total t d in
    if r > !prev +. 1e-9 then ok := false;
    if r < floor t -. eps || r > 1.0 +. eps then ok := false;
    prev := r
  done;
  !ok

let pp fmt t =
  let fam_str =
    match t.fam with
    | Exponential { range } -> Printf.sprintf "exponential(range=%g)" range
    | Gaussian { range } -> Printf.sprintf "gaussian(range=%g)" range
    | Linear { dmax } -> Printf.sprintf "linear(dmax=%g)" dmax
    | Spherical { dmax } -> Printf.sprintf "spherical(dmax=%g)" dmax
    | Truncated_exponential { range; dmax } ->
      Printf.sprintf "truncated-exponential(range=%g,dmax=%g)" range dmax
  in
  Format.fprintf fmt "%s with floor %.4f" fam_str (floor t)
