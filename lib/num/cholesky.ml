exception Not_positive_definite of int

let decompose_inner ~on_bad_pivot a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Cholesky: matrix must be square";
  let l = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (Matrix.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Matrix.get l i k *. Matrix.get l j k)
      done;
      if i = j then begin
        match on_bad_pivot with
        | None ->
          if !s <= 0.0 then raise (Not_positive_definite i);
          Matrix.set l i i (sqrt !s)
        | Some tol ->
          (* A pivot slightly below zero is numerical semi-definiteness;
             one substantially below zero means the matrix is indefinite
             and no Cholesky-like factor exists — refuse rather than
             silently produce an inflated factor. *)
          if !s < -.(1e6 *. tol) then raise (Not_positive_definite i);
          if !s > tol then Matrix.set l i i (sqrt !s)
          else Matrix.set l i i 0.0
      end
      else begin
        let ljj = Matrix.get l j j in
        (* A zero pivot in semidefinite mode means the row is linearly
           dependent; its off-diagonal contribution is zero. *)
        Matrix.set l i j (if ljj = 0.0 then 0.0 else !s /. ljj)
      end
    done;
    (* Row-norm invariant: (L Lᵀ)ᵢᵢ must reproduce aᵢᵢ.  Indefinite
       inputs in tolerant mode inflate rows through tiny pivots; catch
       that here instead of returning a corrupt factor. *)
    (match on_bad_pivot with
    | None -> ()
    | Some _ ->
      let row_norm2 = ref 0.0 in
      for k = 0 to i do
        row_norm2 := !row_norm2 +. (Matrix.get l i k *. Matrix.get l i k)
      done;
      let aii = Matrix.get a i i in
      if !row_norm2 > (aii *. 1.000001) +. 1e-6 then
        raise (Not_positive_definite i))
  done;
  l

let decompose a = decompose_inner ~on_bad_pivot:None a

let decompose_semidefinite ?(jitter = 1e-10) a =
  let n = Matrix.rows a in
  let max_diag = ref 0.0 in
  for i = 0 to n - 1 do
    max_diag := Float.max !max_diag (Float.abs (Matrix.get a i i))
  done;
  let tol = jitter *. Float.max !max_diag 1.0 in
  decompose_inner ~on_bad_pivot:(Some tol) a

type robust = { factor : Matrix.t; jitter : float; attempts : int }

(* Escalating relative regularization ladder.  The first rung is the
   unperturbed matrix; each later rung adds jitter·I with jitter a
   fixed fraction of the largest diagonal entry.  1e-2 is the ceiling:
   a matrix still indefinite after inflating its diagonal by 1% is not
   "near"-PSD and deserves a diagnostic, not a silent repair. *)
let jitter_ladder = [| 0.0; 1e-12; 1e-10; 1e-8; 1e-6; 1e-4; 1e-2 |]

let decompose_robust ?(max_attempts = Array.length jitter_ladder) a =
  if max_attempts < 1 then
    invalid_arg "Cholesky.decompose_robust: need at least one attempt";
  let n = Matrix.rows a in
  let scale = ref 0.0 in
  for i = 0 to n - 1 do
    scale := Float.max !scale (Float.abs (Matrix.get a i i))
  done;
  let scale = Float.max !scale 1.0 in
  let rungs = Stdlib.min max_attempts (Array.length jitter_ladder) in
  let rec attempt k =
    if k >= rungs then
      Guard.numeric ~site:"cholesky"
        (Printf.sprintf
           "matrix (%dx%d) is indefinite: %d jitter-retry attempts up to \
            %.1e relative regularization failed"
           n n rungs jitter_ladder.(rungs - 1))
    else begin
      let jitter = jitter_ladder.(k) *. scale in
      let candidate =
        if jitter = 0.0 then a
        else
          Matrix.init ~rows:n ~cols:n (fun i j ->
              Matrix.get a i j +. (if i = j then jitter else 0.0))
      in
      (* The fault probe counts as a failed factorization attempt, so a
         single armed site exercises the whole escalation path. *)
      if Guard.Fault.fire "cholesky" then attempt (k + 1)
      else
        match decompose_semidefinite candidate with
        | factor -> { factor; jitter; attempts = k + 1 }
        | exception Not_positive_definite _ -> attempt (k + 1)
    end
  in
  attempt 0

let solve l b =
  let n = Matrix.rows l in
  if Array.length b <> n then invalid_arg "Cholesky.solve: dimension mismatch";
  (* Forward substitution: l y = b. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Matrix.get l i k *. y.(k))
    done;
    y.(i) <- !s /. Matrix.get l i i
  done;
  (* Back substitution: lᵀ x = y. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Matrix.get l k i *. x.(k))
    done;
    x.(i) <- !s /. Matrix.get l i i
  done;
  x

let sample_into l rng ~z ~out =
  let n = Matrix.rows l in
  if Array.length z < n || Array.length out < n then
    invalid_arg "Cholesky.sample_into: scratch shorter than the factor";
  for i = 0 to n - 1 do
    z.(i) <- Rng.gaussian rng
  done;
  Matrix.lower_mul_vec_into l z out

let sample l rng =
  let n = Matrix.rows l in
  let z = Array.make n 0.0 and out = Array.make n 0.0 in
  sample_into l rng ~z ~out;
  out

let log_det l =
  let n = Matrix.rows l in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. log (Matrix.get l i i)
  done;
  2.0 *. !s
