type t = { xs : float array; ys : float array }

let of_points points =
  if Array.length points < 2 then
    invalid_arg "Interp.of_points: need at least two points";
  let sorted = Array.copy points in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) sorted;
  Array.iteri
    (fun i (x, _) ->
      if i > 0 && x = fst sorted.(i - 1) then
        invalid_arg "Interp.of_points: duplicate abscissa")
    sorted;
  { xs = Array.map fst sorted; ys = Array.map snd sorted }

let of_fun f ~lo ~hi ~n =
  if n < 2 then invalid_arg "Interp.of_fun: need at least two points";
  let xs = Vector.linspace lo hi n in
  of_points (Array.map (fun x -> (x, f x)) xs)

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    (* Binary search for the segment containing x. *)
    let rec search lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if t.xs.(mid) <= x then search mid hi else search lo mid
      end
    in
    let i = search 0 (n - 1) in
    let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
    let frac = (x -. x0) /. (x1 -. x0) in
    t.ys.(i) +. (frac *. (t.ys.(i + 1) -. t.ys.(i)))
  end

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))
let size t = Array.length t.xs
let to_points t = Array.mapi (fun i x -> (x, t.ys.(i))) t.xs
