(** Shared domain-pool parallel runtime.

    A [pool] owns a fixed set of worker domains fed from a single work
    queue; the submitting domain always participates, so a pool of size
    [j] computes with [j] domains while holding only [j - 1] spawned
    ones.  Pools are cheap to keep alive (idle workers block on a
    condition variable) and are meant to be reused across calls — the
    estimators share one lazily-created default pool sized from
    {!default_jobs}.

    {b Determinism contract.}  Work is split into chunks (or triangle
    bands) whose boundaries depend only on the problem size — never on
    the pool size — and per-chunk accumulators are combined in chunk
    order by the submitting domain.  Consequently every reduction here
    returns {e bit-identical} results for any job count, including 1.
    Parallelism only changes which domain computes which chunk.

    A pool must be driven from one domain at a time (the estimators'
    call sites all do); tasks themselves must not submit to the pool
    they run on.

    {b Telemetry.}  When [Rgleak_obs.Obs] is enabled, every task runs
    inside a span named by the caller-supplied [?label] (attached under
    the submitting domain's open span), its wall time is accounted to
    the executing worker's [pool.worker.<slot>.busy_s] gauge, and wait
    time to [pool.worker.<slot>.idle_s]; [pool.tasks], [pool.chunks]
    and [pool.bands] count the work decomposition (bit-identical across
    job counts), while [pool.queue_max] tracks the peak submit-time
    queue depth.  Telemetry never alters scheduling or results.  With
    the default decomposition the chunk/band counters are themselves
    bit-identical across job counts; a caller passing an explicit
    pool-sized [?chunks] (e.g. the MC replica fill) trades that for
    better load balance while keeping results bit-identical. *)

type pool

val create : ?jobs:int -> unit -> pool
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}, clamped to [\[1, 64\]]).  [jobs = 1] spawns
    nothing and runs everything inline. *)

val jobs : pool -> int
(** Total parallelism of the pool, including the submitting domain. *)

val shutdown : pool -> unit
(** Terminates and joins the workers.  Idempotent. *)

val with_pool : ?jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exceptions. *)

val default_jobs : unit -> int
(** The configured job count: {!set_default_jobs} if called, otherwise
    [Domain.recommended_domain_count ()] (clamped to [\[1, 64\]]). *)

val set_default_jobs : int -> unit
(** Overrides {!default_jobs} process-wide — wired to [--jobs] in the
    CLI and bench harness.  Takes effect on the next {!default} call;
    an existing shared pool of a different size is rebuilt. *)

val default : unit -> pool
(** The shared pool, created on first use with {!default_jobs} domains
    and shut down automatically at exit. *)

val using : ?jobs:int -> (pool -> 'a) -> 'a
(** [using ?jobs f]: with [jobs] absent, runs [f] on the shared
    {!default} pool; with [jobs] given, on a transient pool of that
    size (shut down afterwards).  This is the [?jobs] plumbing used by
    the estimators. *)

val run_thunks : ?label:string -> pool -> (unit -> 'a) array -> 'a array
(** Runs every thunk, scheduling across the pool, and returns their
    results in input order.  If any thunk raises, one of the raised
    exceptions is re-raised after all tasks finish.  [label] (default
    ["task"]) names the per-task telemetry spans. *)

val map_array : ?label:string -> pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] is [Array.map f xs] with one task per
    element. *)

val parallel_for_reduce :
  ?chunks:int ->
  ?label:string ->
  pool ->
  n:int ->
  init:(unit -> 'acc) ->
  body:('acc -> int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Folds [body] over [0 .. n-1]: the range is split into [chunks]
    near-equal index chunks (default 64, independent of the pool size),
    each chunk folds in index order from a fresh [init ()], and the
    per-chunk accumulators are combined left-to-right in chunk order —
    the bit-identical-across-job-counts scheme described above.
    [n = 0] returns [init ()]. *)

val triangle_bands : ?bands:int -> int -> (int * int) array
(** [triangle_bands n]: row bands for the pair loop
    [for a = 0 to n-2, for b = a+1 to n-1] —
    consecutive half-open row ranges [(lo, hi)] covering
    [0 .. n-2] exactly once, balanced so each band holds roughly
    [n(n-1)/2 / bands] pairs (row [a] weighs [n-1-a]).  Boundaries
    depend only on [n] and [bands] (default 64). *)

val triangle_reduce :
  ?bands:int ->
  ?label:string ->
  pool ->
  n:int ->
  init:(unit -> 'acc) ->
  row:('acc -> int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Deterministic parallel reduction over {!triangle_bands}: [row]
    folds one outer index [a] (the caller iterates [b > a] inside),
    bands run in parallel and combine in band order. *)

val triangle_band_reduce :
  ?bands:int ->
  ?label:string ->
  pool ->
  n:int ->
  init:(unit -> 'acc) ->
  band:('acc -> lo:int -> hi:int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Band-granular variant of {!triangle_reduce} for callers that
    consume whole row ranges at once (e.g. handing [\[lo, hi)] to a
    flat kernel): [band] folds one {!triangle_bands} range from a fresh
    [init ()], bands run in parallel and combine in band order.  Same
    determinism contract — band boundaries depend only on [n] and
    [bands], never on the pool size. *)

val tri_size : int -> int
(** [tri_size n] = [n (n+1) / 2], the packed upper-triangle length. *)

val tri_index : n:int -> i:int -> j:int -> int
(** Packed row-major upper-triangle index of [(i, j)] with
    [0 <= i <= j < n] — the mapping shared by the symmetric
    per-type-pair covariance tables and their consumers.  Raises
    [Invalid_argument] outside the triangle. *)
