(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ seeded through SplitMix64, giving
    high-quality 64-bit streams that are reproducible across runs and
    platforms.  Every stochastic component of the library threads an
    explicit [t] so experiments can be replayed bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 63-bit seed (default 42).
    Two generators with the same seed produce identical streams. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Used to give each experiment arm its own stream. *)

val stream : seed:int -> int -> t
(** [stream ~seed i] is the [i]-th replica stream of [seed] ([i >= 0]),
    derived in O(1) via SplitMix64 so any stream can be materialised
    without deriving its predecessors.  Used by the parallel Monte
    Carlo reference: replica [i] gets the same generator no matter how
    many domains run or which domain draws it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)] with 53-bit resolution. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)

val gaussian : t -> float
(** Standard normal deviate (polar Marsaglia method). *)

val gaussian_mu_sigma : t -> mu:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
