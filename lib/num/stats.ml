module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

module Cov_acc = struct
  type t = {
    mutable n : int;
    mutable mean_x : float;
    mutable mean_y : float;
    mutable c : float;
    mutable m2x : float;
    mutable m2y : float;
  }

  let create () = { n = 0; mean_x = 0.0; mean_y = 0.0; c = 0.0; m2x = 0.0; m2y = 0.0 }

  let add t x y =
    t.n <- t.n + 1;
    let nf = float_of_int t.n in
    let dx = x -. t.mean_x in
    t.mean_x <- t.mean_x +. (dx /. nf);
    t.m2x <- t.m2x +. (dx *. (x -. t.mean_x));
    let dy = y -. t.mean_y in
    t.mean_y <- t.mean_y +. (dy /. nf);
    t.m2y <- t.m2y +. (dy *. (y -. t.mean_y));
    t.c <- t.c +. (dx *. (y -. t.mean_y))

  let count t = t.n
  let covariance t = if t.n < 2 then 0.0 else t.c /. float_of_int (t.n - 1)

  let correlation t =
    if t.n < 2 then 0.0
    else begin
      let denom = sqrt (t.m2x *. t.m2y) in
      if denom = 0.0 then 0.0 else t.c /. denom
    end
end

let fold_acc xs =
  let acc = Acc.create () in
  Array.iter (Acc.add acc) xs;
  acc

let mean xs = Acc.mean (fold_acc xs)
let variance xs = Acc.variance (fold_acc xs)
let std xs = Acc.std (fold_acc xs)

let fold_cov xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats: paired arrays must have equal length";
  let acc = Cov_acc.create () in
  Array.iteri (fun i x -> Cov_acc.add acc x ys.(i)) xs;
  acc

let covariance xs ys = Cov_acc.covariance (fold_cov xs ys)
let correlation xs ys = Cov_acc.correlation (fold_cov xs ys)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Stats.percentile: p must be in [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty sample";
  let lo = Array.fold_left Float.min infinity xs in
  let hi = Array.fold_left Float.max neg_infinity xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let bin_of x =
    let b = int_of_float ((x -. lo) /. width) in
    Stdlib.min (Stdlib.max b 0) (bins - 1)
  in
  Array.iter (fun x -> counts.(bin_of x) <- counts.(bin_of x) + 1) xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let relative_error ~actual ~reference =
  if reference = 0.0 then invalid_arg "Stats.relative_error: zero reference";
  (actual -. reference) /. reference

(* ---- sampling-error intervals for Monte Carlo estimates ---- *)

let z_of_confidence confidence =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Stats.z_of_confidence: confidence must be in (0,1)";
  Special.normal_quantile (0.5 +. (confidence /. 2.0))

let mean_se ~std ~count =
  if count < 2 then invalid_arg "Stats.mean_se: need >= 2 samples";
  std /. sqrt (float_of_int count)

let std_se ~std ~count =
  if count < 2 then invalid_arg "Stats.std_se: need >= 2 samples";
  std /. sqrt (2.0 *. float_of_int (count - 1))

(* Delta-method SE of s for non-normal samples: Var(s²) ≈ σ⁴(κ−1)/n
   with κ the kurtosis E[(x−μ)⁴]/σ⁴, so SE(s) ≈ σ·√((κ−1)/4n).  κ = 3
   recovers the normal-theory [std_se]; the right-skewed leakage sums
   have κ well above 3, and using the normal SE for them understates
   the sampling noise of the MC σ several-fold. *)
let std_se_kurtosis ~std ~kurtosis ~count =
  if count < 2 then invalid_arg "Stats.std_se_kurtosis: need >= 2 samples";
  if not (Float.is_finite kurtosis) then
    invalid_arg "Stats.std_se_kurtosis: non-finite kurtosis";
  (* κ̂ < 1 is impossible in exact arithmetic; clamp the excess so a
     degenerate sample still yields a usable (normal-theory) SE. *)
  let excess = Float.max (kurtosis -. 1.0) 2.0 in
  std *. sqrt (excess /. (4.0 *. float_of_int count))

let kurtosis xs =
  let n = Array.length xs in
  if n < 4 then invalid_arg "Stats.kurtosis: need >= 4 samples";
  let nf = float_of_int n in
  let mean = Array.fold_left ( +. ) 0.0 xs /. nf in
  let m2 = ref 0.0 and m4 = ref 0.0 in
  Array.iter
    (fun x ->
      let d = x -. mean in
      let d2 = d *. d in
      m2 := !m2 +. d2;
      m4 := !m4 +. (d2 *. d2))
    xs;
  let m2 = !m2 /. nf and m4 = !m4 /. nf in
  if m2 = 0.0 then invalid_arg "Stats.kurtosis: zero variance";
  m4 /. (m2 *. m2)

let z_score ~value ~center ~se =
  if not (se > 0.0) then invalid_arg "Stats.z_score: need a positive SE";
  (value -. center) /. se

(* Wilson score interval for a binomial proportion.  Unlike the Wald
   interval it never produces endpoints outside [0,1] and keeps close
   to nominal coverage at small hit counts — exactly the regime of
   exceedance estimation, where hits may be a handful out of many. *)
let wilson_interval ~hits ~count ~z =
  if count <= 0 then invalid_arg "Stats.wilson_interval: need count > 0";
  if hits < 0 || hits > count then
    invalid_arg "Stats.wilson_interval: hits outside [0, count]";
  if not (z > 0.0 && Float.is_finite z) then
    invalid_arg "Stats.wilson_interval: need a positive finite z";
  let n = float_of_int count in
  let p = float_of_int hits /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom
    *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
