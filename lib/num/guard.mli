(** Structured errors, numeric guardrails and deterministic fault
    injection.

    The estimation pipeline distinguishes three failure classes:

    - {b Invalid input} — the caller handed us something malformed
      (unknown cell name, negative gate count, unparsable spec).
      Recoverable by fixing the input.
    - {b Numeric} — a numerical method broke down at a named {e site}
      (an indefinite covariance table, quadrature that refuses to
      converge, a NaN crossing an estimator boundary).  Often
      recoverable by a guardrail (jitter retry, rule fallback) or by
      skipping the affected tier.
    - {b Internal} — an invariant of this library is broken; a bug.

    Library entry points keep their historical raising behaviour
    ([Invalid_argument] for bad input) and additionally raise
    {!Error} with a [Numeric] payload on numerical breakdown; the
    [*_result] wrappers ({!protect}) fold every class into a
    [(_, diagnostic) result] so services never have to match on raw
    exceptions.

    {b Fault injection.}  {!Fault} compiles probe points into the
    production paths (the parallel pool, Cholesky factorization, the
    quadrature guardrail, the linear estimator's F memo).  Probes are
    dormant by default — one atomic load and a branch, the same
    discipline as the telemetry layer — and are armed per site with a
    [site:prob:seed] spec.  Decisions are a pure hash of
    [(seed, probe_index)], so a given spec produces the identical
    fault sequence on every run. *)

type diagnostic =
  | Invalid_input of string  (** malformed caller input *)
  | Numeric of { site : string; detail : string }
      (** numerical breakdown at a named site *)
  | Internal of string  (** broken invariant: a bug in this library *)

exception Error of diagnostic

val invalid : string -> 'a
(** Raises [Error (Invalid_input _)]. *)

val numeric : site:string -> string -> 'a
(** Raises [Error (Numeric _)]. *)

val internal : string -> 'a
(** Raises [Error (Internal _)]. *)

val to_string : diagnostic -> string
(** ["invalid input: ..."], ["numeric (site): ..."] or
    ["internal: ..."] — one line, suitable for stderr. *)

val class_name : diagnostic -> string
(** ["invalid-input"], ["numeric"] or ["internal"]. *)

val exit_code : diagnostic -> int
(** Per-class process exit codes: invalid input 2, numeric 3,
    internal 4 (0 is success; the CLI documents the table). *)

val protect : (unit -> 'a) -> ('a, diagnostic) result
(** [protect f] runs [f] and folds every failure into a diagnostic:
    [Error d] is returned as-is, [Invalid_argument]/[Failure] become
    [Invalid_input], [Not_found] and any other exception become
    [Internal].  Asynchronous exceptions ([Out_of_memory],
    [Stack_overflow]) are re-raised. *)

val check_finite : site:string -> name:string -> float -> float
(** Identity on finite floats; raises [Error (Numeric _)] on NaN or
    infinity.  Placed at estimator boundaries so numerical breakdown
    surfaces as a typed diagnostic instead of propagating silently. *)

(** Deterministic, seeded fault injection. *)
module Fault : sig
  type spec = { site : string; prob : float; seed : int }

  val known_sites : string list
  (** Compiled-in probe points: ["parallel"] (pool task entry),
      ["cholesky"] (factorization attempt), ["quadrature"] (forces the
      Gauss–Legendre convergence check to fail), ["linear.f"]
      (poisons the linear estimator's F memo with NaN), ["cache"]
      (makes a content-addressed cache read behave as corrupt, forcing
      the recompute fallback) and ["delta"] (poisons an incremental
      delta re-estimation result with NaN before its finiteness
      check). *)

  val parse_spec : string -> (spec, string) result
  (** Parses ["site:prob:seed"] — a known site, a probability in
      [\[0, 1\]] and an integer seed. *)

  val configure : spec list -> unit
  (** Arms the given sites (replacing any previous configuration) and
      resets their probe counters.  An empty list disarms everything.
      Raises {!Error} ([Invalid_input]) on two specs naming the same
      site — duplicates would be silently shadowed otherwise. *)

  val clear : unit -> unit
  (** Disarms all sites; probes return to the zero-cost path. *)

  val enabled : unit -> bool

  val fire : string -> bool
  (** [fire site] is the probe: [false] (one atomic load) when
      disarmed; when [site] is armed, decision [k] of that site is
      [hash (seed, k) < prob] — deterministic and independent of
      wall-clock, scheduling or other sites. *)

  val corrupt_nan : string -> float -> float
  (** [corrupt_nan site v] is [nan] when the probe fires, else [v]. *)
end
