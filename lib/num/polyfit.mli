(** Least-squares polynomial regression.

    The paper's analytical cell model fits [ln X] to a quadratic in the
    channel length [L] (Rao et al.'s form [X = a·exp(bL + cL²)]); this
    module provides that fit. *)

val fit : ?degree:int -> float array -> float array -> float array
(** [fit ~degree xs ys] returns coefficients [c] of the least-squares
    polynomial [c.(0) + c.(1) x + ... + c.(degree) x^degree].  The normal
    equations are solved by Cholesky after centering and scaling [xs]
    for conditioning.  Requires [Array.length xs > degree]. *)

val eval : float array -> float -> float
(** Horner evaluation of a coefficient array (lowest degree first). *)

val fit_log_quadratic : ls:float array -> currents:float array -> float * float * float
(** [fit_log_quadratic ~ls ~currents] fits [ln currents] to
    [ln a + b·L + c·L²] and returns [(a, b, c)].  All currents must be
    positive. *)

val rms_residual : coeffs:float array -> xs:float array -> ys:float array -> float
(** Root-mean-square residual of a fit, for quality reporting. *)
